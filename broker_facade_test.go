package noncanon_test

import (
	"sync/atomic"
	"testing"
	"time"

	"noncanon"
)

func TestBrokerHandler(t *testing.T) {
	br := noncanon.NewBroker()
	defer br.Close()

	var got atomic.Int64
	sub, err := br.Subscribe(`price > 100`, func(ev noncanon.Event) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if n, err := br.Publish(noncanon.NewEvent().Set("price", 150)); err != nil || n != 1 {
		t.Fatalf("Publish = %d, %v", n, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatalf("delivered = %d", got.Load())
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if n, _ := br.Publish(noncanon.NewEvent().Set("price", 150)); n != 0 {
		t.Errorf("matched %d after unsubscribe", n)
	}
}

func TestBrokerChannel(t *testing.T) {
	br := noncanon.NewBroker(noncanon.WithQueueSize(8), noncanon.WithBrokerCompactEncoding(), noncanon.WithBrokerReorder())
	defer br.Close()

	_, ch, err := br.SubscribeChan(`sym = "A" and not halted = true`)
	if err != nil {
		t.Fatal(err)
	}
	br.Publish(noncanon.NewEvent().Set("sym", "A").Set("halted", false))
	br.Publish(noncanon.NewEvent().Set("sym", "A").Set("halted", true))
	select {
	case ev := <-ch:
		if v, _ := ev.Get("halted"); v.Bool() {
			t.Errorf("halted event delivered: %s", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event")
	}
	st := br.Stats()
	if st.Published != 2 || st.Subscriptions != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestBrokerBadSubscription(t *testing.T) {
	br := noncanon.NewBroker()
	defer br.Close()
	if _, err := br.Subscribe(`nope =`, func(noncanon.Event) {}); err == nil {
		t.Error("bad subscription accepted")
	}
	if _, _, err := br.SubscribeChan(`(`); err == nil {
		t.Error("bad channel subscription accepted")
	}
}

func TestBrokerSubscribeExpr(t *testing.T) {
	br := noncanon.NewBroker()
	defer br.Close()
	var got atomic.Int64
	if _, err := br.SubscribeExpr(noncanon.MustParse(`a = 1`), func(noncanon.Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	br.Publish(noncanon.NewEvent().Set("a", 1))
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatal("expr subscription not delivered")
	}
}

func TestBrokerSharded(t *testing.T) {
	br := noncanon.NewBroker(noncanon.WithBrokerShards(4), noncanon.WithQueueSize(16))
	defer br.Close()

	var got atomic.Int64
	for i := 0; i < 8; i++ {
		if _, err := br.Subscribe(`price > 100`, func(ev noncanon.Event) { got.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := br.Publish(noncanon.NewEvent().Set("price", 150)); err != nil || n != 8 {
		t.Fatalf("Publish = %d, %v, want 8", n, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 8 {
		t.Fatalf("delivered = %d, want 8", got.Load())
	}
	if s := br.Stats(); s.Subscriptions != 8 {
		t.Errorf("Stats.Subscriptions = %d, want 8", s.Subscriptions)
	}
}

func TestBrokerPublishBatch(t *testing.T) {
	br := noncanon.NewBroker(noncanon.WithBrokerShards(2), noncanon.WithQueueSize(64))
	defer br.Close()

	var got atomic.Int64
	if _, err := br.Subscribe(`price > 100`, func(noncanon.Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	counts, err := br.PublishBatch([]noncanon.Event{
		noncanon.NewEvent().Set("price", 150),
		noncanon.NewEvent().Set("price", 50),
		noncanon.NewEvent().Set("price", 200),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("counts = %v, want [1 0 1]", counts)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 2 {
		t.Fatalf("delivered = %d, want 2", got.Load())
	}
	if st := br.Stats(); st.Published != 3 || st.Batches != 1 {
		t.Errorf("Stats = %+v, want Published 3 Batches 1", st)
	}
}

func TestEngineMatchBatch(t *testing.T) {
	eng := noncanon.NewEngine()
	id, err := eng.Subscribe(`(price < 20 or price > 90) and sym = "ACME"`)
	if err != nil {
		t.Fatal(err)
	}
	evs := []noncanon.Event{
		noncanon.NewEvent().Set("price", 95).Set("sym", "ACME"),
		noncanon.NewEvent().Set("price", 50).Set("sym", "ACME"),
	}
	got := eng.MatchBatch(evs)
	if len(got) != 2 || len(got[0]) != 1 || got[0][0] != id || len(got[1]) != 0 {
		t.Fatalf("MatchBatch = %v, want [[%d] []]", got, id)
	}
}

func TestBrokerAggregation(t *testing.T) {
	br := noncanon.NewBroker(noncanon.WithBrokerAggregation())
	defer br.Close()

	var got atomic.Int64
	subs := make([]*noncanon.BrokerSubscription, 0, 6)
	for i := 0; i < 6; i++ {
		// Textual variants of the same filter must intern onto one engine
		// entry (commuted conjuncts, 3 vs 3.0).
		text := `price < 10 and cat = 3`
		if i%2 == 1 {
			text = `cat = 3.0 and price < 10`
		}
		s, err := br.Subscribe(text, func(noncanon.Event) { got.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	st := br.Stats()
	if st.Subscriptions != 6 || st.DistinctFilters != 1 || st.AggregatedSubscribers != 5 {
		t.Fatalf("stats = %+v, want 6 subscribers over 1 distinct filter (5 aggregated)", st)
	}
	if n, err := br.Publish(noncanon.NewEvent().Set("price", 5).Set("cat", 3)); err != nil || n != 6 {
		t.Fatalf("Publish = %d, %v; want 6", n, err)
	}
	for _, s := range subs[:5] {
		if err := s.Unsubscribe(); err != nil {
			t.Fatal(err)
		}
	}
	if st := br.Stats(); st.Subscriptions != 1 || st.DistinctFilters != 1 {
		t.Fatalf("after partial unsubscribe: %+v", st)
	}
	if err := subs[5].Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if st := br.Stats(); st.Subscriptions != 0 || st.DistinctFilters != 0 {
		t.Fatalf("after full unsubscribe: %+v", st)
	}
}

func TestBrokerDAGAggregation(t *testing.T) {
	br := noncanon.NewBroker(noncanon.WithBrokerDAGAggregation(), noncanon.WithQueueSize(16))
	defer br.Close()

	var got atomic.Int64
	// A nested covering chain: the widest band provably covers the others,
	// so only it occupies an engine entry.
	texts := []string{
		`cat = 3 and price < 10`,
		`cat = 3 and price < 100`,
		`cat = 3 and price < 1000`,
	}
	subs := make([]*noncanon.BrokerSubscription, 0, len(texts))
	for _, text := range texts {
		s, err := br.Subscribe(text, func(noncanon.Event) { got.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	st := br.Stats()
	if st.Subscriptions != 3 || st.DistinctFilters != 3 || st.FrontierFilters != 1 || st.CoveredSubscribers != 2 {
		t.Fatalf("stats = %+v, want 3 distinct filters on a 1-entry frontier (2 covered)", st)
	}
	// price 50 fulfils the two wider bands but not the narrowest: the
	// frontier walk must re-evaluate covered filters, not blanket-deliver.
	if n, err := br.Publish(noncanon.NewEvent().Set("cat", 3).Set("price", 50)); err != nil || n != 2 {
		t.Fatalf("Publish = %d, %v; want 2", n, err)
	}
	// Dropping the frontier filter promotes the mid band; matching must not
	// gap.
	if err := subs[2].Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if st := br.Stats(); st.Subscriptions != 2 || st.FrontierFilters != 1 || st.CoveredSubscribers != 1 {
		t.Fatalf("after frontier unsubscribe: %+v", st)
	}
	if n, err := br.Publish(noncanon.NewEvent().Set("cat", 3).Set("price", 50)); err != nil || n != 1 {
		t.Fatalf("Publish after promotion = %d, %v; want 1", n, err)
	}
}
