package noncanon_test

import (
	"sync/atomic"
	"testing"
	"time"

	"noncanon"
)

func TestBrokerHandler(t *testing.T) {
	br := noncanon.NewBroker()
	defer br.Close()

	var got atomic.Int64
	sub, err := br.Subscribe(`price > 100`, func(ev noncanon.Event) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if n, err := br.Publish(noncanon.NewEvent().Set("price", 150)); err != nil || n != 1 {
		t.Fatalf("Publish = %d, %v", n, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatalf("delivered = %d", got.Load())
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if n, _ := br.Publish(noncanon.NewEvent().Set("price", 150)); n != 0 {
		t.Errorf("matched %d after unsubscribe", n)
	}
}

func TestBrokerChannel(t *testing.T) {
	br := noncanon.NewBroker(noncanon.WithQueueSize(8), noncanon.WithBrokerCompactEncoding(), noncanon.WithBrokerReorder())
	defer br.Close()

	_, ch, err := br.SubscribeChan(`sym = "A" and not halted = true`)
	if err != nil {
		t.Fatal(err)
	}
	br.Publish(noncanon.NewEvent().Set("sym", "A").Set("halted", false))
	br.Publish(noncanon.NewEvent().Set("sym", "A").Set("halted", true))
	select {
	case ev := <-ch:
		if v, _ := ev.Get("halted"); v.Bool() {
			t.Errorf("halted event delivered: %s", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event")
	}
	st := br.Stats()
	if st.Published != 2 || st.Subscriptions != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestBrokerBadSubscription(t *testing.T) {
	br := noncanon.NewBroker()
	defer br.Close()
	if _, err := br.Subscribe(`nope =`, func(noncanon.Event) {}); err == nil {
		t.Error("bad subscription accepted")
	}
	if _, _, err := br.SubscribeChan(`(`); err == nil {
		t.Error("bad channel subscription accepted")
	}
}

func TestBrokerSubscribeExpr(t *testing.T) {
	br := noncanon.NewBroker()
	defer br.Close()
	var got atomic.Int64
	if _, err := br.SubscribeExpr(noncanon.MustParse(`a = 1`), func(noncanon.Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	br.Publish(noncanon.NewEvent().Set("a", 1))
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatal("expr subscription not delivered")
	}
}

func TestBrokerSharded(t *testing.T) {
	br := noncanon.NewBroker(noncanon.WithBrokerShards(4), noncanon.WithQueueSize(16))
	defer br.Close()

	var got atomic.Int64
	for i := 0; i < 8; i++ {
		if _, err := br.Subscribe(`price > 100`, func(ev noncanon.Event) { got.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := br.Publish(noncanon.NewEvent().Set("price", 150)); err != nil || n != 8 {
		t.Fatalf("Publish = %d, %v, want 8", n, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() != 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 8 {
		t.Fatalf("delivered = %d, want 8", got.Load())
	}
	if s := br.Stats(); s.Subscriptions != 8 {
		t.Errorf("Stats.Subscriptions = %d, want 8", s.Subscriptions)
	}
}
