package noncanon_test

import (
	"fmt"
	"sort"

	"noncanon"
)

// ExampleEngine demonstrates registering an arbitrary Boolean subscription
// and matching events against it.
func ExampleEngine() {
	eng := noncanon.NewEngine()
	id, err := eng.Subscribe(`(price < 20 or price > 90) and sym = "ACME"`)
	if err != nil {
		panic(err)
	}
	cheap := noncanon.NewEvent().Set("price", 10).Set("sym", "ACME")
	mid := noncanon.NewEvent().Set("price", 50).Set("sym", "ACME")
	fmt.Println(len(eng.Match(cheap)) == 1 && eng.Match(cheap)[0] == id)
	fmt.Println(len(eng.Match(mid)))
	// Output:
	// true
	// 0
}

// ExampleEngine_negation shows full logical negation, which canonical
// (DNF-based) matchers cannot express.
func ExampleEngine_negation() {
	eng := noncanon.NewEngine()
	if _, err := eng.Subscribe(`kind = "alert" and not muted = true`); err != nil {
		panic(err)
	}
	unmuted := noncanon.NewEvent().Set("kind", "alert").Set("muted", false)
	noFlag := noncanon.NewEvent().Set("kind", "alert") // muted absent → not muted
	muted := noncanon.NewEvent().Set("kind", "alert").Set("muted", true)
	fmt.Println(len(eng.Match(unmuted)), len(eng.Match(noFlag)), len(eng.Match(muted)))
	// Output:
	// 1 1 0
}

// ExampleEngine_stats contrasts the storage of the non-canonical engine
// with a canonical baseline: the same subscription costs the counting
// algorithm 2^(|p|/2) conjunctive units.
func ExampleEngine_stats() {
	sub := `(a > 1 or a <= 0) and (b > 1 or b <= 0) and (c > 1 or c <= 0)`
	nc := noncanon.NewEngine()
	cnt := noncanon.NewEngine(noncanon.WithAlgorithm(noncanon.Counting))
	if _, err := nc.Subscribe(sub); err != nil {
		panic(err)
	}
	if _, err := cnt.Subscribe(sub); err != nil {
		panic(err)
	}
	fmt.Println("non-canonical units:", nc.Stats().StoredUnits)
	fmt.Println("counting units:     ", cnt.Stats().StoredUnits)
	// Output:
	// non-canonical units: 1
	// counting units:      8
}

// ExampleParse shows the subscription language and its printed normal form.
func ExampleParse() {
	expr, err := noncanon.Parse(`A >= 3 AND (sym PREFIX "AC" OR exists override)`)
	if err != nil {
		panic(err)
	}
	fmt.Println(expr)
	// Output:
	// A >= 3 and (sym prefix "AC" or exists override)
}

// ExampleBroker wires a subscription channel to a publication.
func ExampleBroker() {
	br := noncanon.NewBroker()
	defer br.Close()

	_, events, err := br.SubscribeChan(`sev >= 3`)
	if err != nil {
		panic(err)
	}
	if _, err := br.Publish(noncanon.NewEvent().Set("sev", 5).Set("svc", "db")); err != nil {
		panic(err)
	}
	ev := <-events
	attrs := ev.Attrs()
	sort.Strings(attrs)
	fmt.Println(attrs)
	// Output:
	// [sev svc]
}
