package noncanon_test

import (
	"testing"

	"noncanon"
)

func TestQuickstart(t *testing.T) {
	eng := noncanon.NewEngine()
	id, err := eng.Subscribe(`(price < 20 or price > 90) and sym = "ACME"`)
	if err != nil {
		t.Fatal(err)
	}
	matches := eng.Match(noncanon.NewEvent().Set("price", 95).Set("sym", "ACME"))
	if len(matches) != 1 || matches[0] != id {
		t.Fatalf("Match = %v, want [%d]", matches, id)
	}
	if got := eng.Match(noncanon.NewEvent().Set("price", 50).Set("sym", "ACME")); len(got) != 0 {
		t.Errorf("mid price matched: %v", got)
	}
	if err := eng.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if got := eng.Match(noncanon.NewEvent().Set("price", 95).Set("sym", "ACME")); len(got) != 0 {
		t.Errorf("matched after unsubscribe: %v", got)
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	subs := []string{
		`(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)`,
		`a > 100`,
		`b = 1 and c = 30`,
	}
	events := []noncanon.Event{
		noncanon.NewEvent().Set("a", 11).Set("c", 15),
		noncanon.NewEvent().Set("a", 101),
		noncanon.NewEvent().Set("b", 1).Set("c", 30),
		noncanon.NewEvent().Set("a", 7),
	}
	counts := map[noncanon.Algorithm][]int{}
	for _, alg := range []noncanon.Algorithm{noncanon.NonCanonical, noncanon.Counting, noncanon.CountingVariant} {
		eng := noncanon.NewEngine(noncanon.WithAlgorithm(alg))
		if got := eng.Algorithm(); got != alg {
			t.Errorf("Algorithm = %s, want %s", got, alg)
		}
		for _, s := range subs {
			if _, err := eng.Subscribe(s); err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
		}
		for _, ev := range events {
			counts[alg] = append(counts[alg], len(eng.Match(ev)))
		}
	}
	for i := range events {
		nc := counts[noncanon.NonCanonical][i]
		if counts[noncanon.Counting][i] != nc || counts[noncanon.CountingVariant][i] != nc {
			t.Errorf("event %d: match counts diverge: %v", i, counts)
		}
	}
}

func TestEngineOptions(t *testing.T) {
	for _, opts := range [][]noncanon.Option{
		{noncanon.WithCompactEncoding()},
		{noncanon.WithReorder()},
		{noncanon.WithSimplify()},
		{noncanon.WithCompactEncoding(), noncanon.WithReorder(), noncanon.WithSimplify()},
	} {
		eng := noncanon.NewEngine(opts...)
		id, err := eng.Subscribe(`a = 1 and a = 1 and (b = 2 or b = 2)`)
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.Match(noncanon.NewEvent().Set("a", 1).Set("b", 2)); len(got) != 1 || got[0] != id {
			t.Errorf("Match = %v", got)
		}
	}
}

func TestCountingEngineRestrictions(t *testing.T) {
	// NOT is rejected by the canonical engine unless complementing.
	cnt := noncanon.NewEngine(noncanon.WithAlgorithm(noncanon.Counting))
	if _, err := cnt.Subscribe(`not a = 1`); err == nil {
		t.Error("counting engine accepted NOT without complementation")
	}
	comp := noncanon.NewEngine(noncanon.WithAlgorithm(noncanon.Counting), noncanon.WithComplementNegations())
	id, err := comp.Subscribe(`a > 0 and not a > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.Match(noncanon.NewEvent().Set("a", 5)); len(got) != 1 || got[0] != id {
		t.Errorf("Match = %v", got)
	}
	// The non-canonical engine accepts NOT natively.
	nc := noncanon.NewEngine()
	if _, err := nc.Subscribe(`not s prefix "x"`); err != nil {
		t.Errorf("non-canonical engine rejected NOT: %v", err)
	}
	// Memory-friendly counting cannot unsubscribe.
	mf := noncanon.NewEngine(noncanon.WithAlgorithm(noncanon.Counting), noncanon.WithoutUnsubscribeSupport())
	mid, err := mf.Subscribe(`a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := mf.Unsubscribe(mid); err == nil {
		t.Error("memory-friendly counting should refuse Unsubscribe")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := noncanon.Parse(`a = `); err == nil {
		t.Error("Parse accepted bad input")
	}
	eng := noncanon.NewEngine()
	if _, err := eng.Subscribe(`a ! 1`); err == nil {
		t.Error("Subscribe accepted bad input")
	}
}

func TestStats(t *testing.T) {
	eng := noncanon.NewEngine(noncanon.WithAlgorithm(noncanon.Counting))
	if _, err := eng.Subscribe(`(a > 1 or a <= 0) and (b > 1 or b <= 0)`); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Subscriptions != 1 {
		t.Errorf("Subscriptions = %d", st.Subscriptions)
	}
	if st.StoredUnits != 4 { // 2^(4/2) DNF blow-up
		t.Errorf("StoredUnits = %d, want 4", st.StoredUnits)
	}
	if st.Predicates != 4 {
		t.Errorf("Predicates = %d, want 4", st.Predicates)
	}
	if st.MemBytes <= 0 {
		t.Errorf("MemBytes = %d", st.MemBytes)
	}
	if st.Algorithm != noncanon.Counting {
		t.Errorf("Algorithm = %s", st.Algorithm)
	}
}

func TestEventFromMap(t *testing.T) {
	ev := noncanon.EventFromMap(map[string]any{"price": 12.5, "sym": "A"})
	eng := noncanon.NewEngine()
	id, err := eng.Subscribe(`price > 12 and sym = "A"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Match(ev); len(got) != 1 || got[0] != id {
		t.Errorf("Match = %v", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	noncanon.MustParse(`((`)
}
