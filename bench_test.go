// Benchmarks regenerating the paper's evaluation artefacts as testing.B
// targets — one benchmark per table and figure (see DESIGN.md §4 and
// EXPERIMENTS.md for the mapping and recorded results):
//
//	BenchmarkTable1Workload     Table 1 workload generation + DNF blow-up
//	BenchmarkFig3               Fig. 3(a)-(f): phase-two matching time per
//	                            event for all three algorithms
//	BenchmarkMemoryPerSubscription  M1: engine bytes per subscription
//	BenchmarkCrossoverSmallN    C4: small-N regime where counting wins
//	BenchmarkAblationReorder    A1: child reordering on/off
//	BenchmarkAblationEncoding   A2: paper vs compact tree encoding
//
// The full sweeps (time vs subscription count series) are produced by
// cmd/ncbench; these benchmarks pin one representative subscription count
// per figure so `go test -bench` gives comparable single numbers.
package noncanon_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/counting"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/subtree"
	"noncanon/internal/workload"
)

// benchSubs is the pinned subscription count for figure benchmarks: large
// enough to sit past the small-N crossover, small enough to set up in
// seconds. The paper-scale axes are swept by cmd/ncbench.
const benchSubs = 20_000

type benchEnv struct {
	params workload.Params
	reg    *predicate.Registry
	idx    *index.Index
	nc     *core.Engine
	cnt    *counting.Engine
	draws  [][]predicate.ID
}

var (
	benchEnvsMu sync.Mutex
	benchEnvs   = map[string]*benchEnv{}
)

// getEnv builds (once per parameter set) engines loaded with the Table 1
// workload and a bank of fulfilled-predicate draws.
func getEnv(b *testing.B, subs, preds, fulfilled int) *benchEnv {
	b.Helper()
	key := fmt.Sprintf("%d/%d/%d", subs, preds, fulfilled)
	benchEnvsMu.Lock()
	defer benchEnvsMu.Unlock()
	if env, ok := benchEnvs[key]; ok {
		return env
	}
	params := workload.Params{
		NumSubscriptions:  subs,
		PredsPerSub:       preds,
		FulfilledPerEvent: fulfilled,
		Seed:              1,
	}
	env := &benchEnv{
		params: params,
		reg:    predicate.NewRegistry(),
		idx:    index.New(),
	}
	env.nc = core.New(env.reg, env.idx, core.Options{})
	env.cnt = counting.New(env.reg, env.idx, counting.Options{})
	for i := 0; i < subs; i++ {
		expr := params.Sub(i)
		if _, err := env.nc.Subscribe(expr); err != nil {
			b.Fatal(err)
		}
		if _, err := env.cnt.Subscribe(expr); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	env.draws = make([][]predicate.ID, 16)
	for t := range env.draws {
		env.draws[t] = params.FulfilledDraw(rng)
	}
	benchEnvs[key] = env
	return env
}

// BenchmarkTable1Workload generates Table 1 subscriptions and their DNF
// transformation for each predicate count, reporting the blow-up factor.
func BenchmarkTable1Workload(b *testing.B) {
	for _, preds := range []int{6, 8, 10} {
		preds := preds
		b.Run(fmt.Sprintf("p%d", preds), func(b *testing.B) {
			params := workload.Params{NumSubscriptions: 1 << 20, PredsPerSub: preds}
			units := 0
			for i := 0; i < b.N; i++ {
				expr := params.Sub(i)
				d, err := boolexpr.ToDNF(expr, 0)
				if err != nil {
					b.Fatal(err)
				}
				units = len(d)
			}
			b.ReportMetric(float64(units), "units/sub")
		})
	}
}

// BenchmarkFig3 measures phase-two subscription matching per event for all
// six Fig. 3 parameter combinations and all three algorithms.
func BenchmarkFig3(b *testing.B) {
	for _, v := range []struct {
		preds, fulfilled int
	}{
		{6, 5000}, {8, 5000}, {10, 5000},
		{6, 10000}, {8, 10000}, {10, 10000},
	} {
		v := v
		name := fmt.Sprintf("p%d_k%d", v.preds, v.fulfilled)
		b.Run(name+"/non-canonical", func(b *testing.B) {
			env := getEnv(b, benchSubs, v.preds, v.fulfilled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.nc.MatchPredicates(env.draws[i%len(env.draws)])
			}
		})
		b.Run(name+"/counting-variant", func(b *testing.B) {
			env := getEnv(b, benchSubs, v.preds, v.fulfilled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.cnt.MatchPredicatesAlg(counting.Variant, env.draws[i%len(env.draws)])
			}
		})
		b.Run(name+"/counting", func(b *testing.B) {
			env := getEnv(b, benchSubs, v.preds, v.fulfilled)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.cnt.MatchPredicatesAlg(counting.Classic, env.draws[i%len(env.draws)])
			}
		})
	}
}

// BenchmarkMemoryPerSubscription reports engine-owned phase-two bytes per
// original subscription (experiment M1).
func BenchmarkMemoryPerSubscription(b *testing.B) {
	for _, preds := range []int{6, 8, 10} {
		preds := preds
		env := getEnv(b, benchSubs, preds, 5000)
		b.Run(fmt.Sprintf("p%d/non-canonical", preds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = env.nc.MemBytes()
			}
			b.ReportMetric(float64(env.nc.MemBytes())/float64(benchSubs), "B/sub")
		})
		b.Run(fmt.Sprintf("p%d/counting", preds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = env.cnt.MemBytes()
			}
			b.ReportMetric(float64(env.cnt.MemBytes())/float64(benchSubs), "B/sub")
		})
	}
}

// BenchmarkCrossoverSmallN pins the small-subscription regime (C4) where
// the classic counting algorithm is expected to win.
func BenchmarkCrossoverSmallN(b *testing.B) {
	const smallSubs = 2000
	b.Run("non-canonical", func(b *testing.B) {
		env := getEnv(b, smallSubs, 6, 10000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env.nc.MatchPredicates(env.draws[i%len(env.draws)])
		}
	})
	b.Run("counting", func(b *testing.B) {
		env := getEnv(b, smallSubs, 6, 10000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env.cnt.MatchPredicatesAlg(counting.Classic, env.draws[i%len(env.draws)])
		}
	})
}

// ablationEnv builds a non-canonical engine over the Table 1 workload with
// specific compile options.
func ablationEnv(b *testing.B, opts core.Options) (*core.Engine, [][]predicate.ID) {
	b.Helper()
	params := workload.Params{NumSubscriptions: benchSubs, PredsPerSub: 10, FulfilledPerEvent: 5000, Seed: 1}
	reg := predicate.NewRegistry()
	idx := index.New()
	eng := core.New(reg, idx, opts)
	for i := 0; i < benchSubs; i++ {
		if _, err := eng.Subscribe(params.Sub(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	draws := make([][]predicate.ID, 16)
	for t := range draws {
		draws[t] = params.FulfilledDraw(rng)
	}
	return eng, draws
}

// BenchmarkAblationReorder compares matching with and without
// cheapest-first child reordering (A1).
func BenchmarkAblationReorder(b *testing.B) {
	for _, reorder := range []bool{false, true} {
		reorder := reorder
		name := "plain"
		if reorder {
			name = "reordered"
		}
		b.Run(name, func(b *testing.B) {
			eng, draws := ablationEnv(b, core.Options{Reorder: reorder})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.MatchPredicates(draws[i%len(draws)])
			}
		})
	}
}

// BenchmarkAblationEncoding compares the paper's fixed-width tree encoding
// with the compact varint encoding (A2), reporting stored tree bytes.
func BenchmarkAblationEncoding(b *testing.B) {
	for _, enc := range []subtree.Encoding{subtree.PaperEncoding, subtree.CompactEncoding} {
		enc := enc
		b.Run(enc.String(), func(b *testing.B) {
			eng, draws := ablationEnv(b, core.Options{Encoding: enc})
			b.ReportMetric(float64(eng.TreeBytes())/float64(benchSubs), "treeB/sub")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.MatchPredicates(draws[i%len(draws)])
			}
		})
	}
}

// BenchmarkFullPipelineMatch measures Match end to end (phase 1 + 2) on
// workload events, the operation a broker performs per publication.
func BenchmarkFullPipelineMatch(b *testing.B) {
	env := getEnv(b, benchSubs, 6, 5000)
	rng := rand.New(rand.NewSource(3))
	evs := make([]event.Event, 64)
	for i := range evs {
		evs[i] = env.params.Event(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.nc.Match(evs[i%len(evs)])
	}
}

// BenchmarkMatchParallel runs phase two on the paper workload from
// GOMAXPROCS goroutines at once. The engine's RWMutex store lets every
// caller match under the read lock simultaneously; compare against
// BenchmarkMatchParallelSerialized (the old single-lock architecture) for
// the concurrency speedup and against BenchmarkFig3/p6_k5000/non-canonical
// for the single-threaded baseline.
func BenchmarkMatchParallel(b *testing.B) {
	env := getEnv(b, benchSubs, 6, 5000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var local []matcher.SubID
		i := 0
		for pb.Next() {
			local = env.nc.MatchPredicates(env.draws[i%len(env.draws)])
			i++
		}
		_ = local
	})
}

// BenchmarkMatchParallelSerialized reconstructs the pre-refactor
// architecture: parallel callers funnelled through one exclusive lock, the
// way a single engine mutex used to serialise every Match.
func BenchmarkMatchParallelSerialized(b *testing.B) {
	env := getEnv(b, benchSubs, 6, 5000)
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var local []matcher.SubID
		i := 0
		for pb.Next() {
			mu.Lock()
			local = env.nc.MatchPredicates(env.draws[i%len(env.draws)])
			mu.Unlock()
			i++
		}
		_ = local
	})
}
