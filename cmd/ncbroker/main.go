// Command ncbroker runs a TCP publish/subscribe broker speaking the wire
// protocol (see internal/wire). Clients connect with ncsub and ncpub.
// Publications from different connections are matched concurrently by the
// broker's non-canonical engine, and -shards N partitions the subscription
// store across N independent engine shards so subscription churn stalls
// only 1/N of the matching work (see internal/shard).
//
// With -aggregate, subscribers with identical filters share one engine
// subscription (see internal/cover): engine size tracks distinct filters,
// not connection count, and the shutdown report shows how much was saved.
//
// With -aggregate-dag, aggregation extends to provably covered filters
// (see internal/cover/dag): only the covering frontier occupies engine
// entries, covered filters attach beneath their coverers and are
// re-evaluated during delivery, and the shutdown report additionally
// shows the frontier size and how many subscribers rode along covered.
//
// Usage:
//
//	ncbroker -addr :7070
//	ncbroker -addr :7070 -shards 8
//	ncbroker -addr :7070 -aggregate
//	ncbroker -addr :7070 -aggregate-dag
//	ncbroker -addr :7070 -metrics-addr 127.0.0.1:9090
//
// With -metrics-addr, an operational endpoint serves Prometheus text on
// /metrics, JSON on /vars and pprof on /debug/pprof/ (see internal/obs).
// Turning it on also starts the broker's latency clock, so the match and
// publish latency histograms fill.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"noncanon/internal/broker"
	"noncanon/internal/netbroker"
	"noncanon/internal/obs"
)

// config is the parsed command line.
type config struct {
	addr        string
	metricsAddr string
	opts        netbroker.ServerOptions
}

// parseArgs parses flags into a server configuration; usage and errors go
// to errOut.
func parseArgs(args []string, errOut io.Writer) (config, error) {
	fs := flag.NewFlagSet("ncbroker", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr      = fs.String("addr", ":7070", "listen address")
		queue     = fs.Int("queue", broker.DefaultQueueSize, "per-subscription delivery queue size")
		shards    = fs.Int("shards", 1, "partition subscriptions across this many engine shards (see internal/shard)")
		aggregate = fs.Bool("aggregate", false, "intern identical filters: one engine entry per distinct filter (see internal/cover)")
		aggDAG    = fs.Bool("aggregate-dag", false, "aggregate covered filters too: one engine entry per covering-frontier filter (see internal/cover/dag)")
		compact   = fs.Bool("compact", false, "use the compact subscription-tree encoding")
		reorder   = fs.Bool("reorder", false, "reorder subscription-tree children cheapest-first")
		retry     = fs.Duration("retry-after", 0, "reply Busy with this retry hint instead of accepting publishes while most subscription queues are backed up (0 disables)")
		metrics   = fs.String("metrics-addr", "", "serve /metrics, /vars and /debug/pprof on this address (also enables latency histograms)")
		quiet     = fs.Bool("quiet", false, "suppress connection diagnostics")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(errOut, "ncbroker: unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *shards < 1 || *shards > broker.MaxShards {
		fmt.Fprintf(errOut, "ncbroker: -shards must be in [1, %d], got %d\n", broker.MaxShards, *shards)
		return config{}, fmt.Errorf("invalid -shards %d", *shards)
	}

	cfg := config{
		addr:        *addr,
		metricsAddr: *metrics,
		opts: netbroker.ServerOptions{
			RetryAfter: *retry,
			Broker: broker.Options{
				QueueSize:    *queue,
				Shards:       *shards,
				Aggregate:    *aggregate,
				AggregateDAG: *aggDAG,
				Engine:       broker.EngineConfig(*compact, *reorder),
			},
		},
	}
	if !*quiet {
		cfg.opts.Logf = log.Printf
	}
	return cfg, nil
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		os.Exit(2)
	}
	if cfg.metricsAddr != "" {
		reg := obs.NewRegistry()
		cfg.opts.Broker.Metrics = reg
		ln, err := obs.Serve(cfg.metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ncbroker: metrics:", err)
			os.Exit(1)
		}
		defer ln.Close()
		log.Printf("ncbroker: metrics on http://%s/metrics", ln.Addr())
	}
	srv := netbroker.NewServer(cfg.opts)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Println("ncbroker: shutting down")
		logStats(srv.Broker().Stats())
		if err := srv.Close(); err != nil {
			log.Printf("ncbroker: close: %v", err)
		}
	}()

	log.Printf("ncbroker: listening on %s", cfg.addr)
	if err := srv.ListenAndServe(cfg.addr); err != nil && err != netbroker.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "ncbroker:", err)
		os.Exit(1)
	}
}

// logStats reports final broker activity, making aggregation observable:
// DistinctFilters counts distinct live canonical filters,
// AggregatedSubscribers the subscribes deduplicated onto an existing
// filter, FrontierFilters the engine entry count (equal to
// DistinctFilters unless DAG aggregation shrinks the frontier below it),
// and CoveredSubscribers the subscribers attached beneath a covering
// filter with no engine entry of their own.
func logStats(st broker.Stats) {
	log.Printf("ncbroker: stats: subscriptions=%d distinct_filters=%d frontier_filters=%d aggregated_subscribers=%d covered_subscribers=%d published=%d delivered=%d dropped=%d",
		st.Subscriptions, st.DistinctFilters, st.FrontierFilters, st.AggregatedSubscribers, st.CoveredSubscribers,
		st.Published, st.Delivered, st.Dropped)
}
