// Command ncbroker runs a TCP publish/subscribe broker speaking the wire
// protocol (see internal/wire). Clients connect with ncsub and ncpub.
//
// Usage:
//
//	ncbroker -addr :7070
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"noncanon/internal/broker"
	"noncanon/internal/core"
	"noncanon/internal/netbroker"
	"noncanon/internal/subtree"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		queue   = flag.Int("queue", broker.DefaultQueueSize, "per-subscription delivery queue size")
		compact = flag.Bool("compact", false, "use the compact subscription-tree encoding")
		reorder = flag.Bool("reorder", false, "reorder subscription-tree children cheapest-first")
		quiet   = flag.Bool("quiet", false, "suppress connection diagnostics")
	)
	flag.Parse()

	enc := subtree.PaperEncoding
	if *compact {
		enc = subtree.CompactEncoding
	}
	opts := netbroker.ServerOptions{
		Broker: broker.Options{
			QueueSize: *queue,
			Engine:    core.Options{Encoding: enc, Reorder: *reorder},
		},
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	srv := netbroker.NewServer(opts)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Println("ncbroker: shutting down")
		if err := srv.Close(); err != nil {
			log.Printf("ncbroker: close: %v", err)
		}
	}()

	log.Printf("ncbroker: listening on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil && err != netbroker.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "ncbroker:", err)
		os.Exit(1)
	}
}
