package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/subtree"
)

func TestParseArgsDefaults(t *testing.T) {
	var errOut bytes.Buffer
	cfg, err := parseArgs(nil, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":7070" {
		t.Errorf("addr = %q, want :7070", cfg.addr)
	}
	if cfg.opts.Broker.QueueSize != broker.DefaultQueueSize {
		t.Errorf("queue = %d, want %d", cfg.opts.Broker.QueueSize, broker.DefaultQueueSize)
	}
	if cfg.opts.Broker.Engine.Encoding != subtree.PaperEncoding {
		t.Errorf("encoding = %v, want paper", cfg.opts.Broker.Engine.Encoding)
	}
	if cfg.opts.Broker.Engine.Reorder {
		t.Error("reorder on by default")
	}
	if cfg.opts.Broker.Shards != 1 {
		t.Errorf("shards = %d, want 1", cfg.opts.Broker.Shards)
	}
	if cfg.opts.Broker.Aggregate {
		t.Error("aggregation on by default")
	}
	if cfg.opts.Broker.AggregateDAG {
		t.Error("DAG aggregation on by default")
	}
	if cfg.opts.RetryAfter != 0 {
		t.Errorf("retry-after = %v, want disabled", cfg.opts.RetryAfter)
	}
	if cfg.opts.Logf == nil {
		t.Error("diagnostics silenced by default")
	}
}

func TestParseArgsFlags(t *testing.T) {
	var errOut bytes.Buffer
	cfg, err := parseArgs([]string{"-addr", ":9000", "-queue", "128", "-shards", "8", "-aggregate", "-aggregate-dag", "-compact", "-reorder", "-retry-after", "250ms", "-quiet"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":9000" {
		t.Errorf("addr = %q", cfg.addr)
	}
	if cfg.opts.Broker.QueueSize != 128 {
		t.Errorf("queue = %d", cfg.opts.Broker.QueueSize)
	}
	if cfg.opts.Broker.Engine.Encoding != subtree.CompactEncoding {
		t.Errorf("encoding = %v, want compact", cfg.opts.Broker.Engine.Encoding)
	}
	if !cfg.opts.Broker.Engine.Reorder {
		t.Error("reorder not set")
	}
	if cfg.opts.Broker.Shards != 8 {
		t.Errorf("shards = %d, want 8", cfg.opts.Broker.Shards)
	}
	if !cfg.opts.Broker.Aggregate {
		t.Error("-aggregate not set")
	}
	if !cfg.opts.Broker.AggregateDAG {
		t.Error("-aggregate-dag not set")
	}
	if cfg.opts.RetryAfter != 250*time.Millisecond {
		t.Errorf("retry-after = %v, want 250ms", cfg.opts.RetryAfter)
	}
	if cfg.opts.Logf != nil {
		t.Error("-quiet did not silence diagnostics")
	}
}

func TestParseArgsErrors(t *testing.T) {
	var errOut bytes.Buffer
	if _, err := parseArgs([]string{"-nosuchflag"}, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "flag") {
		t.Errorf("no usage/diagnostic output: %q", errOut.String())
	}
	errOut.Reset()
	if _, err := parseArgs([]string{"stray"}, &errOut); err == nil {
		t.Error("stray positional argument accepted")
	}
	errOut.Reset()
	if _, err := parseArgs([]string{"-shards", "0"}, &errOut); err == nil {
		t.Error("-shards 0 accepted")
	}
	if !strings.Contains(errOut.String(), "-shards") {
		t.Errorf("no -shards diagnostic: %q", errOut.String())
	}
}

func TestParseArgsHelp(t *testing.T) {
	var errOut bytes.Buffer
	_, err := parseArgs([]string{"-h"}, &errOut)
	if err == nil {
		t.Fatal("-h should return flag.ErrHelp")
	}
	for _, flagName := range []string{"-addr", "-queue", "-shards", "-aggregate", "-aggregate-dag", "-compact", "-reorder", "-retry-after", "-quiet"} {
		if !strings.Contains(errOut.String(), flagName) {
			t.Errorf("help output missing %s: %q", flagName, errOut.String())
		}
	}
}
