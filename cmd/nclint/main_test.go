package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunCleanTree runs the real linter over the real module, exactly as
// CI does: exit 0, no findings on stdout.
func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module source typecheck is slow; run without -short")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-C", "../..", "-v", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on the real tree\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree printed findings:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "0 findings") {
		t.Errorf("-v summary missing: %q", errOut.String())
	}
}

// TestRunBadDirectory: an unloadable module is an operational error (exit
// 2), distinct from findings (exit 1).
func TestRunBadDirectory(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-C", "testdata-definitely-missing"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit %d for a missing directory, want 2 (stderr: %s)", code, errOut.String())
	}
	if errOut.Len() == 0 {
		t.Error("operational failure must explain itself on stderr")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d for a bad flag, want 2", code)
	}
}
