// Command nclint runs the repository's architecture and concurrency
// lints (internal/arch) over the module:
//
//   - layering: the import graph must match the declared DAG in
//     internal/arch/policy.go exactly (no new edges, no stale allowances,
//     no net/os/syscall in engine layers, router transport-agnostic);
//   - api-leak: internal/wire types never appear in engine package APIs;
//   - lock-blocking: no blocking channel operation lexically between
//     Lock/Unlock of the same mutex (the PR 5 deadlock shape);
//   - hotpath: functions annotated //nclint:hotpath are denied
//     known-allocating constructs.
//
// Usage:
//
//	nclint ./...
//
// nclint exits 0 when the tree is clean and 1 with one finding per line
// otherwise; CI treats any finding as a failure. Deliberate exceptions
// use `//nclint:allow <rule> -- <justification>` on the offending or
// preceding line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"noncanon/internal/arch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("nclint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("C", ".", "module directory to analyse")
	verbose := fs.Bool("v", false, "report the number of packages analysed")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := arch.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "nclint:", err)
		return 2
	}
	// A package that no longer typechecks yields unreliable analysis;
	// surface it loudly instead of half-checking.
	broken := false
	for _, p := range mod.Packages {
		for _, terr := range p.TypeErrs {
			fmt.Fprintf(errOut, "nclint: typecheck %s: %v\n", p.ImportPath, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}

	findings := arch.Check(mod)
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if *verbose {
		fmt.Fprintf(errOut, "nclint: %d packages, %d findings\n", len(mod.Packages), len(findings))
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
