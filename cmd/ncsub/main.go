// Command ncsub subscribes to a broker and prints matching events.
//
// Usage:
//
//	ncsub -addr localhost:7070 'price > 100 and sym = "ACME"'
//	ncsub -n 5 'exists alert'      # exit after five events
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"noncanon/internal/netbroker"
)

func main() {
	var (
		addr = flag.String("addr", "localhost:7070", "broker address")
		n    = flag.Int("n", 0, "exit after n events (0 = run until interrupted)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ncsub [flags] '<subscription>'")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*addr, flag.Arg(0), *n); err != nil {
		fmt.Fprintln(os.Stderr, "ncsub:", err)
		os.Exit(1)
	}
}

func run(addr, subText string, limit int) error {
	cli, err := netbroker.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()

	sub, err := cli.Subscribe(subText)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ncsub: subscription %d registered, waiting for events\n", sub.ID())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	seen := 0
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return fmt.Errorf("connection lost")
			}
			fmt.Println(ev)
			seen++
			if limit > 0 && seen >= limit {
				return sub.Unsubscribe()
			}
		case <-sig:
			return sub.Unsubscribe()
		}
	}
}
