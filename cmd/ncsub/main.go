// Command ncsub subscribes to a broker and prints matching events.
//
// Usage:
//
//	ncsub -addr localhost:7070 'price > 100 and sym = "ACME"'
//	ncsub -n 5 'exists alert'      # exit after five events
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"noncanon/internal/netbroker"
)

// config is the parsed command line.
type config struct {
	addr  string
	sub   string
	limit int
}

// parseArgs parses flags and the single subscription argument; usage and
// errors go to errOut.
func parseArgs(args []string, errOut io.Writer) (config, error) {
	fs := flag.NewFlagSet("ncsub", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr = fs.String("addr", "localhost:7070", "broker address")
		n    = fs.Int("n", 0, "exit after n events (0 = run until interrupted)")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(errOut, "ncsub: expected exactly one subscription argument, got %d\n", fs.NArg())
		fmt.Fprintln(errOut, "usage: ncsub [flags] '<subscription>'")
		fs.PrintDefaults()
		return config{}, fmt.Errorf("expected exactly one subscription argument, got %d", fs.NArg())
	}
	return config{addr: *addr, sub: fs.Arg(0), limit: *n}, nil
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(0)
	}
	if err != nil {
		os.Exit(2)
	}
	if err := run(cfg.addr, cfg.sub, cfg.limit); err != nil {
		fmt.Fprintln(os.Stderr, "ncsub:", err)
		os.Exit(1)
	}
}

func run(addr, subText string, limit int) error {
	cli, err := netbroker.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()

	sub, err := cli.Subscribe(subText)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ncsub: subscription %d registered, waiting for events\n", sub.ID())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	seen := 0
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return fmt.Errorf("connection lost")
			}
			fmt.Println(ev)
			seen++
			if limit > 0 && seen >= limit {
				return sub.Unsubscribe()
			}
		case <-sig:
			return sub.Unsubscribe()
		}
	}
}
