package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/netbroker"
)

// netbrokerEvent builds an event matching the test subscription `a = 1`.
func netbrokerEvent() event.Event { return event.New().Set("a", 1) }

func TestParseArgsDefaults(t *testing.T) {
	var errOut bytes.Buffer
	cfg, err := parseArgs([]string{`a > 1`}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "localhost:7070" {
		t.Errorf("addr = %q", cfg.addr)
	}
	if cfg.sub != `a > 1` {
		t.Errorf("sub = %q", cfg.sub)
	}
	if cfg.limit != 0 {
		t.Errorf("limit = %d, want 0", cfg.limit)
	}
}

func TestParseArgsFlags(t *testing.T) {
	var errOut bytes.Buffer
	cfg, err := parseArgs([]string{"-addr", "h:1", "-n", "5", `exists alert`}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "h:1" || cfg.limit != 5 || cfg.sub != `exists alert` {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestParseArgsUsageErrors(t *testing.T) {
	var errOut bytes.Buffer
	if _, err := parseArgs(nil, &errOut); err == nil {
		t.Error("missing subscription accepted")
	}
	if !strings.Contains(errOut.String(), "usage: ncsub") {
		t.Errorf("no usage output: %q", errOut.String())
	}
	errOut.Reset()
	if _, err := parseArgs([]string{"one", "two"}, &errOut); err == nil {
		t.Error("two positional arguments accepted")
	}
	errOut.Reset()
	if _, err := parseArgs([]string{"-nosuchflag", "x"}, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunAgainstLiveBroker(t *testing.T) {
	// Smoke: subscribe via run() against a real server, publish one matching
	// event from a second client, and let -n 1 end the loop.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := netbroker.NewServer(netbroker.ServerOptions{Broker: broker.Options{}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-done
	}()
	addr := ln.Addr().String()

	runDone := make(chan error, 1)
	go func() { runDone <- run(addr, `a = 1`, 1) }()

	// Publish until the subscriber (which registers asynchronously relative
	// to this goroutine) has seen its event and run returns.
	cli, err := netbroker.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	deadline := time.After(10 * time.Second)
	for {
		ev := netbrokerEvent()
		if _, err := cli.Publish(ev); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-runDone:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			return
		case <-deadline:
			t.Fatal("run did not finish")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestRunUnreachableAddress(t *testing.T) {
	// A closed port must surface a dial error, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if err := run(addr, `a = 1`, 1); err == nil {
		t.Fatal("run succeeded against closed port")
	}
}
