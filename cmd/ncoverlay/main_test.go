package main

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/netoverlay"
	"noncanon/internal/predicate"
)

func TestRunTopologies(t *testing.T) {
	for _, topo := range []string{"line", "star", "tree"} {
		for _, coverOn := range []bool{false, true} {
			sc := simConfig{Nodes: 7, Topology: topo, Fanout: 2, Subs: 20, Events: 100, Seed: 1, Cover: coverOn}
			if err := run(sc); err != nil {
				t.Errorf("%s (cover=%v): %v", topo, coverOn, err)
			}
		}
	}
}

func TestRunUnknownTopology(t *testing.T) {
	if err := run(simConfig{Nodes: 7, Topology: "ring", Fanout: 2, Subs: 20, Events: 100, Seed: 1}); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunSingleNode(t *testing.T) {
	if err := run(simConfig{Nodes: 1, Topology: "line", Fanout: 2, Subs: 5, Events: 20, Seed: 1, Cover: true}); err != nil {
		t.Errorf("single node: %v", err)
	}
}

func TestRunCustomWatermarks(t *testing.T) {
	sc := simConfig{
		Nodes: 5, Topology: "line", Fanout: 2, Subs: 20, Events: 100, Seed: 1,
		LinkHighWater: 1 << 20, LinkLowWater: 1 << 19,
	}
	if err := run(sc); err != nil {
		t.Errorf("custom watermarks: %v", err)
	}
}

func TestRunFederatedNeedsID(t *testing.T) {
	if err := runFederated(&bytes.Buffer{}, fedConfig{Listen: "127.0.0.1:0"}); err == nil {
		t.Error("federation mode without -id accepted")
	}
}

func TestRunFederatedListenOnly(t *testing.T) {
	var buf bytes.Buffer
	err := runFederated(&buf, fedConfig{
		ID: 1, Listen: "127.0.0.1:0", Subs: 5, Events: 0,
		Seed: 1, Settle: 50 * time.Millisecond,
		LinkHighWater: 1 << 20, EvictAfter: -1, Ping: -1, ReadIdle: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "listening on") {
		t.Errorf("missing listen line in output:\n%s", buf.String())
	}
}

// TestRunFederatedAgainstPeer links the command path to a live parent
// broker over loopback TCP: the process's subscriptions must flood to the
// parent and its events must reach the parent's subscriber.
func TestRunFederatedAgainstPeer(t *testing.T) {
	for _, coverOn := range []bool{false, true} {
		parent := netoverlay.NewBroker(netoverlay.Options{NodeID: 99, Cover: coverOn})
		addr, err := parent.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var atParent atomic.Int64
		if _, err := parent.Subscribe(
			boolexpr.Pred("price", predicate.Ge, 0),
			func(event.Event) { atParent.Add(1) },
		); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		err = runFederated(&buf, fedConfig{
			ID: 2, Peers: []string{addr.String()},
			Subs: 10, Events: 50, Seed: 1, Cover: coverOn,
			Settle: 75 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("cover=%v: %v\n%s", coverOn, err, buf.String())
		}
		out := buf.String()
		if !strings.Contains(out, "linked to") || !strings.Contains(out, "events/s") {
			t.Errorf("cover=%v: unexpected output:\n%s", coverOn, out)
		}
		if !strings.Contains(out, "flow control") || !strings.Contains(out, "0 peers evicted") {
			t.Errorf("cover=%v: missing flow-control line:\n%s", coverOn, out)
		}
		if strings.Contains(out, "ANOMALIES") {
			t.Errorf("cover=%v: routing anomalies reported:\n%s", coverOn, out)
		}
		// Every published event matches the parent's catch-all filter. The
		// child quiesced before returning, but the parent may still be
		// draining the last frames off its socket.
		deadline := time.Now().Add(10 * time.Second)
		for atParent.Load() != 50 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := atParent.Load(); got != 50 {
			t.Errorf("cover=%v: parent saw %d events, want 50", coverOn, got)
		}
		if st := parent.Stats(); st.SubscriptionMsgs == 0 {
			t.Errorf("cover=%v: no subscription flood reached the parent", coverOn)
		}
		parent.Close()
	}
}

func TestConnectRetryGivesUp(t *testing.T) {
	b := netoverlay.NewBroker(netoverlay.Options{NodeID: 5})
	defer b.Close()
	// Nothing listens here; the retry loop must eventually fail, not hang.
	done := make(chan error, 1)
	go func() { done <- connectRetry(b, "127.0.0.1:1") }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("connect to dead address succeeded")
		}
	case <-time.After(dialRetry + 10*time.Second):
		t.Fatal("connectRetry did not give up")
	}
}
