package main

import "testing"

func TestRunTopologies(t *testing.T) {
	for _, topo := range []string{"line", "star", "tree"} {
		for _, coverOn := range []bool{false, true} {
			if err := run(7, topo, 2, 20, 100, 1, coverOn); err != nil {
				t.Errorf("%s (cover=%v): %v", topo, coverOn, err)
			}
		}
	}
}

func TestRunUnknownTopology(t *testing.T) {
	if err := run(7, "ring", 2, 20, 100, 1, false); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunSingleNode(t *testing.T) {
	if err := run(1, "line", 2, 5, 20, 1, true); err != nil {
		t.Errorf("single node: %v", err)
	}
}
