package main

import "testing"

func TestRunTopologies(t *testing.T) {
	for _, topo := range []string{"line", "star", "tree"} {
		if err := run(7, topo, 2, 20, 100, 1); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
	}
}

func TestRunUnknownTopology(t *testing.T) {
	if err := run(7, "ring", 2, 20, 100, 1); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunSingleNode(t *testing.T) {
	if err := run(1, "line", 2, 5, 20, 1); err != nil {
		t.Errorf("single node: %v", err)
	}
}
