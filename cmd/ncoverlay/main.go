// Command ncoverlay runs a broker-overlay simulation: N brokers in a
// line/star/tree topology, random Boolean subscriptions spread over the
// brokers, random events published at random brokers, routing statistics
// printed at the end.
//
// With -cover, subscription flooding is pruned by covering (a filter is
// not forwarded past a link already carrying a broader one; see
// internal/cover) — the "sub flood msgs" statistic shows the saving.
//
// Usage:
//
//	ncoverlay -nodes 15 -topology tree -subs 200 -events 1000
//	ncoverlay -nodes 15 -topology tree -subs 200 -events 1000 -cover
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/overlay"
	"noncanon/internal/predicate"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 15, "broker count")
		topology = flag.String("topology", "tree", "line | star | tree")
		fanout   = flag.Int("fanout", 2, "tree fanout")
		subs     = flag.Int("subs", 200, "subscription count")
		events   = flag.Int("events", 1000, "events to publish")
		seed     = flag.Int64("seed", 1, "workload seed")
		coverOn  = flag.Bool("cover", false, "prune subscription flooding by covering (see internal/cover)")
	)
	flag.Parse()
	if err := run(*nodes, *topology, *fanout, *subs, *events, *seed, *coverOn); err != nil {
		fmt.Fprintln(os.Stderr, "ncoverlay:", err)
		os.Exit(1)
	}
}

func run(nodes int, topology string, fanout, subs, events int, seed int64, coverOn bool) error {
	var (
		nw  *overlay.Network
		err error
	)
	cfg := overlay.Config{Cover: coverOn}
	switch topology {
	case "line":
		nw, err = overlay.NewLine(nodes, cfg)
	case "star":
		nw, err = overlay.NewStar(nodes, cfg)
	case "tree":
		nw, err = overlay.NewTree(nodes, fanout, cfg)
	default:
		return fmt.Errorf("unknown topology %q", topology)
	}
	if err != nil {
		return err
	}
	defer nw.Close()

	rng := rand.New(rand.NewSource(seed))
	var delivered atomic.Int64

	// Random subscriptions: interest in a price band of one of a few
	// symbols, optionally requiring an alert flag.
	symbols := []string{"ACME", "GLOBEX", "INITECH", "UMBRELLA"}
	for i := 0; i < subs; i++ {
		sym := symbols[rng.Intn(len(symbols))]
		lo := rng.Intn(80)
		expr := boolexpr.NewAnd(
			boolexpr.Pred("sym", predicate.Eq, sym),
			boolexpr.NewOr(
				boolexpr.Pred("price", predicate.Lt, lo),
				boolexpr.Pred("price", predicate.Gt, lo+20),
			),
		)
		at := overlay.NodeID(rng.Intn(nodes))
		if _, err := nw.Subscribe(at, expr, func(event.Event) { delivered.Add(1) }); err != nil {
			return err
		}
	}
	nw.Flush()

	start := time.Now()
	for i := 0; i < events; i++ {
		ev := event.New().
			Set("sym", symbols[rng.Intn(len(symbols))]).
			Set("price", rng.Intn(100)).
			Set("seq", i)
		if err := nw.Publish(overlay.NodeID(rng.Intn(nodes)), ev); err != nil {
			return err
		}
	}
	nw.Flush()
	elapsed := time.Since(start)

	st := nw.Stats()
	fmt.Printf("topology        %s (%d brokers)\n", topology, nodes)
	fmt.Printf("subscriptions   %d\n", subs)
	fmt.Printf("events          %d in %v (%.0f events/s)\n",
		events, elapsed.Round(time.Millisecond), float64(events)/elapsed.Seconds())
	fmt.Printf("deliveries      %d (%.2f per event)\n",
		delivered.Load(), float64(delivered.Load())/float64(events))
	fmt.Printf("link crossings  %d (%.2f per event; filtering prunes the rest)\n",
		st.Forwarded, float64(st.Forwarded)/float64(events))
	fmt.Printf("sub flood msgs  %d\n", st.SubscriptionMsgs)
	if coverOn {
		fmt.Printf("cover pruned    %d forwards\n", st.CoverSuppressed)
	}
	return nil
}
