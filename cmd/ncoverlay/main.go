// Command ncoverlay runs a broker overlay, in one of two modes.
//
// Simulation (default): N brokers in a line/star/tree topology inside one
// process, random Boolean subscriptions spread over the brokers, random
// events published at random brokers, routing statistics printed at the
// end.
//
// Federation (-listen / -peer): this process IS one broker, federated with
// other ncoverlay processes over real TCP using the wire protocol. Links
// must form a tree across the deployment; each process contributes -subs
// local subscriptions and publishes -events local events, then keeps
// serving for -hold before printing its routing statistics.
//
//	# process-per-broker quickstart: a three-broker line on one machine
//	ncoverlay -listen :7001 -id 1 -subs 50 -events 0 -hold 20s &
//	ncoverlay -listen :7002 -id 2 -peer localhost:7001 -subs 50 -events 0 -hold 15s &
//	ncoverlay -id 3 -peer localhost:7002 -subs 0 -events 1000
//
// With -cover, subscription flooding is pruned by covering (a filter is
// not forwarded past a link already carrying a broader one; see
// internal/cover) — the "sub flood msgs" statistic shows the saving.
//
// Usage:
//
//	ncoverlay -nodes 15 -topology tree -subs 200 -events 1000
//	ncoverlay -nodes 15 -topology tree -subs 200 -events 1000 -cover
//	ncoverlay -listen :7001 -id 1 -hold 30s
//	ncoverlay -id 2 -peer host:7001 -subs 100 -events 500 -cover
//
// With -metrics-addr, an operational endpoint serves Prometheus text on
// /metrics, JSON on /vars, recent hop traces on /traces and pprof on
// /debug/pprof/ (see internal/obs). In federation mode, -trace-every N
// stamps every Nth locally published event with a trace ID and origin
// timestamp that ride the wire: each broker the event crosses records the
// hop into its hop-latency histogram and trace ring.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"noncanon/internal/event"
	"noncanon/internal/netoverlay"
	"noncanon/internal/obs"
	"noncanon/internal/overlay"
	"noncanon/internal/workload"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 15, "broker count (simulation mode)")
		topology = flag.String("topology", "tree", "line | star | tree (simulation mode)")
		fanout   = flag.Int("fanout", 2, "tree fanout (simulation mode)")
		subs     = flag.Int("subs", 200, "subscription count (local to this process in federation mode)")
		events   = flag.Int("events", 1000, "events to publish (local in federation mode)")
		seed     = flag.Int64("seed", 1, "workload seed")
		coverOn  = flag.Bool("cover", false, "prune subscription flooding by covering (see internal/cover)")

		listen = flag.String("listen", "", "federation mode: accept peer brokers on this address")
		peers  = flag.String("peer", "", "federation mode: comma-separated parent broker addresses to link to")
		id     = flag.Uint("id", 0, "federation mode: this broker's node ID (distinct per process; required)")
		settle = flag.Duration("settle", 500*time.Millisecond, "federation mode: quiet window treated as quiescence")
		hold   = flag.Duration("hold", 0, "federation mode: keep serving this long after the local workload")

		highWater = flag.Int("link-highwater", 0, "per-link spill queue byte bound before event shedding starts (0 = default)")
		lowWater  = flag.Int("link-lowwater", 0, "queue bytes below which a congested link clears (0 = highwater/2)")
		evict     = flag.Duration("evict-after", 0, "federation mode: evict a peer congested this long, retracting its routes (0 = default, <0 disables)")
		ping      = flag.Duration("ping", 0, "federation mode: keep-alive ping interval (0 = default, <0 disables)")
		readIdle  = flag.Duration("read-idle", 0, "federation mode: detach a peer silent this long (0 = default, <0 disables)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /vars, /traces and /debug/pprof on this address")
		traceEvery  = flag.Int("trace-every", 0, "federation mode: stamp every Nth local event with a cross-hop trace (0 disables)")
	)
	flag.Parse()
	var err error
	if *listen != "" || *peers != "" {
		err = runFederated(os.Stdout, fedConfig{
			ID:            uint32(*id),
			Listen:        *listen,
			Peers:         splitPeers(*peers),
			Subs:          *subs,
			Events:        *events,
			Seed:          *seed,
			Cover:         *coverOn,
			Settle:        *settle,
			Hold:          *hold,
			LinkHighWater: *highWater,
			LinkLowWater:  *lowWater,
			EvictAfter:    *evict,
			Ping:          *ping,
			ReadIdle:      *readIdle,
			MetricsAddr:   *metricsAddr,
			TraceEvery:    *traceEvery,
		})
	} else {
		err = run(simConfig{
			Nodes: *nodes, Topology: *topology, Fanout: *fanout,
			Subs: *subs, Events: *events, Seed: *seed, Cover: *coverOn,
			LinkHighWater: *highWater, LinkLowWater: *lowWater,
			MetricsAddr: *metricsAddr,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncoverlay:", err)
		os.Exit(1)
	}
}

func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// fedConfig parameterises one federated broker process.
type fedConfig struct {
	ID     uint32
	Listen string
	Peers  []string
	Subs   int
	Events int
	Seed   int64
	Cover  bool
	Settle time.Duration
	Hold   time.Duration

	// Flow control and liveness (zero values pick netoverlay defaults).
	LinkHighWater int
	LinkLowWater  int
	EvictAfter    time.Duration
	Ping          time.Duration
	ReadIdle      time.Duration

	// MetricsAddr serves the operational endpoint; TraceEvery samples
	// every Nth local event for cross-hop tracing (0 disables each).
	MetricsAddr string
	TraceEvery  int
}

// dialRetry covers peers started in any order: a parent that is still
// coming up is retried for this long before the link fails.
const (
	dialRetry    = 10 * time.Second
	dialInterval = 200 * time.Millisecond
)

func runFederated(w io.Writer, cfg fedConfig) error {
	if cfg.ID == 0 {
		return fmt.Errorf("federation mode needs a distinct -id per process")
	}
	b := netoverlay.NewBroker(netoverlay.Options{
		NodeID:             cfg.ID,
		Cover:              cfg.Cover,
		TraceSampleEvery:   cfg.TraceEvery,
		LinkHighWater:      cfg.LinkHighWater,
		LinkLowWater:       cfg.LinkLowWater,
		CongestionDeadline: cfg.EvictAfter,
		PingInterval:       cfg.Ping,
		ReadIdleTimeout:    cfg.ReadIdle,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	defer b.Close()
	if cfg.MetricsAddr != "" {
		ep := obs.Endpoint{Registry: b.Metrics(), Ring: b.Traces()}
		ln, err := ep.Serve(cfg.MetricsAddr)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(w, "broker %d metrics on http://%s/metrics\n", cfg.ID, ln.Addr())
	}
	if cfg.Listen != "" {
		addr, err := b.Listen(cfg.Listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "broker %d listening on %s\n", cfg.ID, addr)
	}
	for _, p := range cfg.Peers {
		if err := connectRetry(b, p); err != nil {
			return err
		}
		fmt.Fprintf(w, "broker %d linked to %s\n", cfg.ID, p)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var delivered atomic.Int64
	for i := 0; i < cfg.Subs; i++ {
		if _, err := b.Subscribe(workload.StockSub(rng), func(event.Event) { delivered.Add(1) }); err != nil {
			return err
		}
	}
	b.Quiesce(cfg.Settle)

	var elapsed time.Duration
	if cfg.Events > 0 {
		start := time.Now()
		for i := 0; i < cfg.Events; i++ {
			if err := b.Publish(workload.StockEvent(rng, i)); err != nil {
				return err
			}
		}
		b.Quiesce(cfg.Settle)
		// Quiesce by construction spends its last cfg.Settle observing an
		// already-quiet broker; don't bill that to throughput.
		elapsed = time.Since(start) - cfg.Settle
		if elapsed <= 0 {
			elapsed = time.Millisecond
		}
	}
	if cfg.Hold > 0 {
		time.Sleep(cfg.Hold)
	}

	st := b.Stats()
	fmt.Fprintf(w, "broker          %d (federated, cover=%v)\n", cfg.ID, cfg.Cover)
	fmt.Fprintf(w, "peers           %d\n", st.Peers)
	fmt.Fprintf(w, "local subs      %d\n", cfg.Subs)
	if cfg.Events > 0 {
		fmt.Fprintf(w, "events          %d in %v (%.0f events/s)\n",
			cfg.Events, elapsed.Round(time.Millisecond), float64(cfg.Events)/elapsed.Seconds())
	}
	fmt.Fprintf(w, "deliveries      %d local handler calls\n", delivered.Load())
	fmt.Fprintf(w, "link crossings  %d events forwarded to peers\n", st.Forwarded)
	fmt.Fprintf(w, "sub flood msgs  %d\n", st.SubscriptionMsgs)
	if cfg.Cover {
		fmt.Fprintf(w, "cover pruned    %d forwards\n", st.CoverSuppressed)
	}
	fmt.Fprintf(w, "flow control    %d events shed (%d bytes spilled), %d bytes queued, %d peers evicted\n",
		st.Shed, st.SpilledBytes, st.QueuedBytes, st.Evicted)
	if st.HopDropped != 0 || st.InstallErrors != 0 {
		fmt.Fprintf(w, "ANOMALIES       hop-dropped %d, install errors %d\n", st.HopDropped, st.InstallErrors)
	}
	return nil
}

func connectRetry(b *netoverlay.Broker, addr string) error {
	deadline := time.Now().Add(dialRetry)
	for {
		err := b.Connect(addr)
		if err == nil {
			return nil
		}
		// Retrying is for peers still starting up; a handshake rejection
		// (version mismatch, duplicate link, self-link) is deterministic.
		if errors.Is(err, netoverlay.ErrHandshake) || time.Now().After(deadline) {
			return fmt.Errorf("link to %s: %w", addr, err)
		}
		time.Sleep(dialInterval)
	}
}

// simConfig parameterises one in-process simulation run.
type simConfig struct {
	Nodes    int
	Topology string
	Fanout   int
	Subs     int
	Events   int
	Seed     int64
	Cover    bool

	LinkHighWater int
	LinkLowWater  int
	MetricsAddr   string
}

func run(sc simConfig) error {
	var (
		nw  *overlay.Network
		err error
	)
	cfg := overlay.Config{
		Cover:         sc.Cover,
		LinkHighWater: sc.LinkHighWater,
		LinkLowWater:  sc.LinkLowWater,
	}
	if sc.MetricsAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		ln, err := obs.Serve(sc.MetricsAddr, cfg.Metrics)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		defer ln.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}
	switch sc.Topology {
	case "line":
		nw, err = overlay.NewLine(sc.Nodes, cfg)
	case "star":
		nw, err = overlay.NewStar(sc.Nodes, cfg)
	case "tree":
		nw, err = overlay.NewTree(sc.Nodes, sc.Fanout, cfg)
	default:
		return fmt.Errorf("unknown topology %q", sc.Topology)
	}
	if err != nil {
		return err
	}
	defer nw.Close()

	rng := rand.New(rand.NewSource(sc.Seed))
	var delivered atomic.Int64

	for i := 0; i < sc.Subs; i++ {
		at := overlay.NodeID(rng.Intn(sc.Nodes))
		if _, err := nw.Subscribe(at, workload.StockSub(rng), func(event.Event) { delivered.Add(1) }); err != nil {
			return err
		}
	}
	nw.Flush()

	start := time.Now()
	for i := 0; i < sc.Events; i++ {
		if err := nw.Publish(overlay.NodeID(rng.Intn(sc.Nodes)), workload.StockEvent(rng, i)); err != nil {
			return err
		}
	}
	nw.Flush()
	elapsed := time.Since(start)

	st := nw.Stats()
	fmt.Printf("topology        %s (%d brokers)\n", sc.Topology, sc.Nodes)
	fmt.Printf("subscriptions   %d\n", sc.Subs)
	fmt.Printf("events          %d in %v (%.0f events/s)\n",
		sc.Events, elapsed.Round(time.Millisecond), float64(sc.Events)/elapsed.Seconds())
	fmt.Printf("deliveries      %d (%.2f per event)\n",
		delivered.Load(), float64(delivered.Load())/float64(sc.Events))
	fmt.Printf("link crossings  %d (%.2f per event; filtering prunes the rest)\n",
		st.Forwarded, float64(st.Forwarded)/float64(sc.Events))
	fmt.Printf("sub flood msgs  %d\n", st.SubscriptionMsgs)
	if sc.Cover {
		fmt.Printf("cover pruned    %d forwards\n", st.CoverSuppressed)
	}
	if st.Shed != 0 {
		fmt.Printf("flow control    %d events shed (%d bytes spilled)\n", st.Shed, st.SpilledBytes)
	}
	return nil
}
