// Command ncbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ncbench -exp fig3c                      # one experiment, 1/50 scale
//	ncbench -exp all -scale 0.1             # every experiment at 1/10 scale
//	ncbench -exp fig3b -swap                # with the 512 MB swap model (M2)
//	ncbench -exp fig3a -csv > fig3a.csv     # machine-readable series
//	ncbench -exp parallel                   # match throughput vs workers (P1)
//	ncbench -exp batch                      # publish events/s vs batch size over TCP (B1)
//	ncbench -exp cover                      # aggregation + covering vs popularity skew (C1)
//	ncbench -exp million                    # covering-DAG vs flat aggregation to 1M subs (M1 (million))
//	ncbench -exp federate                   # TCP-federated broker tree vs node count (F1)
//	ncbench -exp cover -json                # machine-readable series (BENCH_*.json)
//	ncbench -exp hotpath                    # publish-spine stage costs (H1)
//	ncbench -exp hotpath -regress BENCH_PR10.json   # perf gate vs recorded trajectory
//	ncbench -list                           # experiment inventory
//
// -scale 1 reproduces the paper's subscription counts (the DNF baselines
// then need multi-gigabyte memory — which is the paper's point).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"noncanon/internal/bench"
	"noncanon/internal/memmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ncbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ncbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id (see -list) or 'all'")
		list    = fs.Bool("list", false, "list experiments and exit")
		scale   = fs.Float64("scale", 0.02, "fraction of the paper's subscription counts")
		points  = fs.Int("points", 10, "sweep points per figure")
		trials  = fs.Int("trials", 5, "measured events per point")
		seed    = fs.Int64("seed", 1, "workload seed")
		csv     = fs.Bool("csv", false, "CSV output")
		jsonOut = fs.Bool("json", false, "JSON output (experiment id + measurement series; single -exp only)")
		regress = fs.String("regress", "", "BENCH_*.json trajectory to gate the H1 run against (use with -exp hotpath)")
		regTol  = fs.Float64("regress-tol", bench.DefaultRegressTolerancePct, "ns/op regression tolerance in percent")
		swap    = fs.Bool("swap", false, "apply the page-swap cost model (experiment M2)")
		budget  = fs.Int("swap-budget-mb", 512, "swap model memory budget in MiB")
		penalty = fs.Float64("swap-penalty", memmodel.DefaultPenalty, "swap model slowdown factor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(out, "%-18s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list)")
	}
	cfg := bench.Config{
		Out:    out,
		Scale:  *scale,
		Points: *points,
		Trials: *trials,
		Seed:   *seed,
		CSV:    *csv,
	}
	if *swap {
		cfg.Swap = &memmodel.SwapModel{BudgetBytes: *budget << 20, Penalty: *penalty}
	}
	if *regress != "" {
		if *exp != "hotpath" {
			return fmt.Errorf("-regress gates the H1 hot-path benchmark; use it with -exp hotpath")
		}
		doc, err := os.ReadFile(*regress)
		if err != nil {
			return fmt.Errorf("read baseline: %w", err)
		}
		return bench.RunRegress(cfg, doc, *regTol)
	}
	if *exp == "all" {
		if *jsonOut {
			return fmt.Errorf("-json requires a single -exp (one JSON document per experiment)")
		}
		for _, e := range bench.Experiments() {
			fmt.Fprintf(out, "=== %s: %s ===\n", e.ID, e.Title)
			if err := e.Run(cfg); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q; use -list", *exp)
	}
	if *jsonOut {
		return bench.RunJSON(e, cfg)
	}
	return e.Run(cfg)
}
