package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig3a", "fig3f", "memory", "crossover"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in -list output", want)
		}
	}
}

func TestMissingExp(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing -exp accepted")
	}
}

func TestUnknownExp(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AND, OR") {
		t.Errorf("table1 output:\n%s", buf.String())
	}
}

func TestRunFigureTinyWithSwap(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-exp", "fig3a", "-scale", "0.0005", "-points", "2", "-trials", "1", "-swap", "-swap-budget-mb", "1"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "non-canonical") {
		t.Errorf("fig3a output:\n%s", buf.String())
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-exp", "fig3a", "-scale", "0.0005", "-points", "2", "-trials", "1", "-csv"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "subs,") {
		t.Errorf("csv output:\n%s", buf.String())
	}
}

func TestRunBatchTiny(t *testing.T) {
	// Smoke the B1 experiment end to end (real loopback TCP) at tiny
	// parameters, so the batch path in the experiment binary cannot rot.
	var buf bytes.Buffer
	args := []string{"-exp", "batch", "-scale", "0.001", "-trials", "1"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "B1:") || !strings.Contains(out, "batch") {
		t.Errorf("batch output:\n%s", out)
	}
}

func TestRunCoverTiny(t *testing.T) {
	// Smoke the C1 experiment (broker aggregation + overlay covering) at
	// tiny parameters.
	var buf bytes.Buffer
	args := []string{"-exp", "cover", "-scale", "0.004", "-trials", "1"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "C1:") || !strings.Contains(buf.String(), "skew") {
		t.Errorf("cover output:\n%s", buf.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-exp", "cover", "-scale", "0.004", "-trials", "1", "-json"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string           `json:"experiment"`
		Points     []map[string]any `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Experiment != "cover" || len(doc.Points) == 0 {
		t.Errorf("unexpected JSON document: %+v", doc)
	}
}

func TestRunJSONRejectsAll(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "all", "-json"}, &buf); err == nil {
		t.Error("-exp all -json accepted")
	}
}
