// Command ncpub publishes events to a broker.
//
// Attributes are key=value pairs; values parse as int, float, bool or
// string (quote-free).
//
// Usage:
//
//	ncpub -addr localhost:7070 price=150 sym=ACME hot=true ratio=2.5
//	ncpub -count 100 -interval 10ms seq=auto price=42
//	ncpub -count 1000 -batch 64 seq=auto price=42
//
// With seq=auto an incrementing sequence number is attached per event.
// With -batch N events go out in batches of N over one wire frame each,
// amortising the per-event round trip; -interval then delays between
// batches.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"noncanon/internal/event"
	"noncanon/internal/netbroker"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7070", "broker address")
		count    = flag.Int("count", 1, "number of events to publish")
		interval = flag.Duration("interval", 0, "delay between events (with -batch: between batches)")
		batch    = flag.Int("batch", 1, "events per published batch (1 = unbatched)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ncpub [flags] key=value [key=value ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(os.Stdout, *addr, flag.Args(), *count, *interval, *batch); err != nil {
		fmt.Fprintln(os.Stderr, "ncpub:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, addr string, pairs []string, count int, interval time.Duration, batch int) error {
	if batch < 1 {
		batch = 1
	}
	cli, err := netbroker.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()

	if batch == 1 {
		for i := 0; i < count; i++ {
			ev, err := buildEvent(pairs, i)
			if err != nil {
				return err
			}
			n, err := cli.Publish(ev)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "published %s -> %d subscription(s)\n", ev, n)
			if interval > 0 && i < count-1 {
				time.Sleep(interval)
			}
		}
		return nil
	}

	for i := 0; i < count; i += batch {
		n := batch
		if i+n > count {
			n = count - i
		}
		evs := make([]event.Event, n)
		for j := range evs {
			ev, err := buildEvent(pairs, i+j)
			if err != nil {
				return err
			}
			evs[j] = ev
		}
		counts, err := cli.PublishBatch(evs)
		if err != nil {
			return err
		}
		total := 0
		for j, ev := range evs {
			fmt.Fprintf(out, "published %s -> %d subscription(s)\n", ev, counts[j])
			total += counts[j]
		}
		fmt.Fprintf(out, "batch of %d -> %d enqueue(s)\n", n, total)
		if interval > 0 && i+batch < count {
			time.Sleep(interval)
		}
	}
	return nil
}

func buildEvent(pairs []string, seq int) (event.Event, error) {
	ev := event.New()
	for _, p := range pairs {
		k, v, ok := strings.Cut(p, "=")
		if !ok || k == "" {
			return event.Event{}, fmt.Errorf("bad attribute %q (want key=value)", p)
		}
		ev = ev.Set(k, parseValue(v, seq))
	}
	return ev, nil
}

// parseValue guesses the most specific type: auto-sequence, int, float,
// bool, then string.
func parseValue(s string, seq int) any {
	if s == "auto" {
		return seq
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return b
	}
	return s
}
