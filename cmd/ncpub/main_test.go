package main

import (
	"testing"

	"noncanon/internal/value"
)

func TestParseValue(t *testing.T) {
	tests := []struct {
		in   string
		want value.Value
	}{
		{"42", value.OfInt(42)},
		{"-7", value.OfInt(-7)},
		{"2.5", value.OfFloat(2.5)},
		{"true", value.OfBool(true)},
		{"false", value.OfBool(false)},
		{"hello", value.OfString("hello")},
		{"", value.OfString("")},
	}
	for _, tt := range tests {
		got := value.Of(parseValue(tt.in, 9))
		if !got.Equal(tt.want) && got.Kind() != tt.want.Kind() {
			t.Errorf("parseValue(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if got := value.Of(parseValue("auto", 9)); !got.Equal(value.OfInt(9)) {
		t.Errorf("auto = %v, want 9", got)
	}
}

func TestBuildEvent(t *testing.T) {
	ev, err := buildEvent([]string{"price=150", "sym=ACME", "seq=auto"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ev.Get("price"); v.Int() != 150 {
		t.Errorf("price = %v", v)
	}
	if v, _ := ev.Get("sym"); v.Str() != "ACME" {
		t.Errorf("sym = %v", v)
	}
	if v, _ := ev.Get("seq"); v.Int() != 3 {
		t.Errorf("seq = %v", v)
	}
	if _, err := buildEvent([]string{"novalue"}, 0); err == nil {
		t.Error("missing '=' accepted")
	}
	if _, err := buildEvent([]string{"=x"}, 0); err == nil {
		t.Error("empty key accepted")
	}
}
