package main

import (
	"bytes"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/netbroker"
	"noncanon/internal/sublang"
	"noncanon/internal/value"
)

// noncanonExpr parses a subscription for registration on the embedded
// broker.
func noncanonExpr(t *testing.T, s string) boolexpr.Expr {
	t.Helper()
	x, err := sublang.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestParseValue(t *testing.T) {
	tests := []struct {
		in   string
		want value.Value
	}{
		{"42", value.OfInt(42)},
		{"-7", value.OfInt(-7)},
		{"2.5", value.OfFloat(2.5)},
		{"true", value.OfBool(true)},
		{"false", value.OfBool(false)},
		{"hello", value.OfString("hello")},
		{"", value.OfString("")},
	}
	for _, tt := range tests {
		got := value.Of(parseValue(tt.in, 9))
		if !got.Equal(tt.want) && got.Kind() != tt.want.Kind() {
			t.Errorf("parseValue(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if got := value.Of(parseValue("auto", 9)); !got.Equal(value.OfInt(9)) {
		t.Errorf("auto = %v, want 9", got)
	}
}

func TestBuildEvent(t *testing.T) {
	ev, err := buildEvent([]string{"price=150", "sym=ACME", "seq=auto"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := ev.Get("price"); v.Int() != 150 {
		t.Errorf("price = %v", v)
	}
	if v, _ := ev.Get("sym"); v.Str() != "ACME" {
		t.Errorf("sym = %v", v)
	}
	if v, _ := ev.Get("seq"); v.Int() != 3 {
		t.Errorf("seq = %v", v)
	}
	if _, err := buildEvent([]string{"novalue"}, 0); err == nil {
		t.Error("missing '=' accepted")
	}
	if _, err := buildEvent([]string{"=x"}, 0); err == nil {
		t.Error("empty key accepted")
	}
}

// TestRunBatchAgainstLiveBroker smokes the -batch publish path end to
// end: a live TCP server, one matching subscription registered on the
// embedded broker, and run() driving PublishBatch in chunks. Per-event
// and per-batch lines must land on stdout with the right match counts.
func TestRunBatchAgainstLiveBroker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := netbroker.NewServer(netbroker.ServerOptions{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-done
	}()

	var delivered atomic.Int64
	if _, err := srv.Broker().Subscribe(
		noncanonExpr(t, `price = 42`),
		func(event.Event) { delivered.Add(1) },
	); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(&buf, ln.Addr().String(), []string{"price=42", "seq=auto"}, 5, 0, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "published "); got != 5 {
		t.Fatalf("published lines = %d, want 5:\n%s", got, out)
	}
	// 5 events in batches of 2 → batches of 2, 2, 1.
	for _, want := range []string{"batch of 2 -> 2 enqueue(s)", "batch of 1 -> 1 enqueue(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for delivered.Load() != 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := delivered.Load(); got != 5 {
		t.Fatalf("delivered = %d, want 5", got)
	}
}
