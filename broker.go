package noncanon

import (
	"fmt"

	"noncanon/internal/broker"
	"noncanon/internal/core"
	"noncanon/internal/obs"
	"noncanon/internal/subtree"
)

// Metrics is a namespaced registry of zero-allocation instruments
// (counters, gauges, latency histograms). Pass one to NewBroker via
// WithBrokerMetrics to make the broker record into it; expose it with
// obs.Serve-style endpoints from your main package, or read it directly
// with Snapshot. See internal/obs for the instrument semantics.
type Metrics = obs.Registry

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Broker is a single-process publish/subscribe broker: subscribers register
// Boolean subscriptions with handlers or channels and receive matching
// events asynchronously. It is safe for concurrent use, and Publish calls
// match in parallel — the underlying engine serialises matching only
// against subscription changes, never against other matches.
//
// Delivery never blocks publishers: each subscription owns a bounded queue
// drained by its own goroutine, and events beyond the queue are dropped and
// counted (BrokerSubscription.Dropped).
type Broker struct {
	b *broker.Broker
}

// BrokerSubscription is a live broker registration.
type BrokerSubscription = broker.Subscription

// BrokerStats is a broker activity snapshot.
type BrokerStats = broker.Stats

// BrokerOption configures a Broker.
type BrokerOption func(*brokerConfig)

type brokerConfig struct {
	queueSize    int
	shards       int
	aggregate    bool
	aggregateDAG bool
	engine       core.Options
	metrics      *obs.Registry
}

// WithQueueSize sets the per-subscription delivery queue capacity.
func WithQueueSize(n int) BrokerOption {
	return func(c *brokerConfig) { c.queueSize = n }
}

// WithBrokerShards partitions the broker's subscriptions across n
// independent engine shards: Subscribe/Unsubscribe then write-lock a
// single shard (churn stalls only 1/n of each publication's matching),
// and one Publish matches on up to GOMAXPROCS cores. The shard index
// lives in the high bits of every subscription ID (see internal/shard).
func WithBrokerShards(n int) BrokerOption {
	return func(c *brokerConfig) { c.shards = n }
}

// WithBrokerAggregation interns filters by canonical key: subscribers with
// identical filters (modulo operand/operator-order normalisation, see
// internal/cover) share one engine subscription fanning out to all of
// them, so engine size — and matching cost — tracks the number of
// distinct filters instead of the number of subscribers. Unsubscribe
// detaches the shared engine entry only when its last subscriber leaves.
// Delivery semantics are unchanged.
func WithBrokerAggregation() BrokerOption {
	return func(c *brokerConfig) { c.aggregate = true }
}

// WithBrokerDAGAggregation extends aggregation from identical filters to
// provably covered ones: live filters are arranged in an incrementally
// maintained covering poset (internal/cover/dag), and only the frontier —
// filters no other live filter provably covers — occupies engine entries.
// A subscription whose filter is covered attaches beneath its coverer with
// no engine mutation at all; matched events descend from frontier entries
// through covered filters, re-evaluating each, so delivery semantics are
// unchanged. Unsubscribing a frontier filter promotes newly uncovered
// descendants into the engine before the dying entry is retracted, so
// matching never gaps. Engine size — and matching cost — then tracks the
// covering frontier rather than the number of distinct filters (see
// BrokerStats.FrontierFilters). Takes precedence over
// WithBrokerAggregation when both are set.
func WithBrokerDAGAggregation() BrokerOption {
	return func(c *brokerConfig) { c.aggregateDAG = true }
}

// WithBrokerCompactEncoding stores subscription trees in the compact varint
// encoding.
func WithBrokerCompactEncoding() BrokerOption {
	return func(c *brokerConfig) { c.engine.Encoding = subtree.CompactEncoding }
}

// WithBrokerReorder enables cheapest-first subscription-tree child
// reordering.
func WithBrokerReorder() BrokerOption {
	return func(c *brokerConfig) { c.engine.Reorder = true }
}

// WithBrokerMetrics registers the broker's instruments — publish and
// delivery counters, match/publish latency histograms, engine-size
// gauges — in m, turning on the latency clock. Without this option the
// broker still counts (Stats works) but pays no timing overhead and
// exposes nothing. The increment path allocates nothing either way.
func WithBrokerMetrics(m *Metrics) BrokerOption {
	return func(c *brokerConfig) { c.metrics = m }
}

// NewBroker builds a broker backed by the non-canonical matching engine.
func NewBroker(opts ...BrokerOption) *Broker {
	var cfg brokerConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &Broker{b: broker.New(broker.Options{
		QueueSize:    cfg.queueSize,
		Shards:       cfg.shards,
		Aggregate:    cfg.aggregate,
		AggregateDAG: cfg.aggregateDAG,
		Engine:       cfg.engine,
		Metrics:      cfg.metrics,
	})}
}

// Subscribe parses and registers a textual subscription with a handler. The
// handler runs on the subscription's delivery goroutine.
//
// Ownership: events a handler receives are always owned — the broker
// calls Retain before enqueueing, so even an event decoded in the wire
// layer's zero-copy aliasing mode no longer references any network
// buffer by the time it reaches a subscriber. Handlers may keep a
// delivered Event indefinitely; Events are immutable and safe to share.
func (br *Broker) Subscribe(sub string, h func(ev Event)) (*BrokerSubscription, error) {
	x, err := Parse(sub)
	if err != nil {
		return nil, fmt.Errorf("noncanon: %w", err)
	}
	return br.b.Subscribe(x, broker.Handler(h))
}

// SubscribeChan parses and registers a textual subscription, returning the
// event stream. The channel closes after Unsubscribe (or broker Close) once
// queued events drain.
func (br *Broker) SubscribeChan(sub string) (*BrokerSubscription, <-chan Event, error) {
	x, err := Parse(sub)
	if err != nil {
		return nil, nil, fmt.Errorf("noncanon: %w", err)
	}
	s, ch, err := br.b.SubscribeChan(x)
	if err != nil {
		return nil, nil, err
	}
	return s, ch, nil
}

// SubscribeExpr registers an already-parsed subscription with a handler.
func (br *Broker) SubscribeExpr(x Expr, h func(ev Event)) (*BrokerSubscription, error) {
	return br.b.Subscribe(x, broker.Handler(h))
}

// Publish routes an event to all matching subscriptions; it returns how
// many subscriptions it was enqueued for and never blocks on slow
// consumers.
func (br *Broker) Publish(ev Event) (int, error) { return br.b.Publish(ev) }

// PublishBatch routes a batch of events in one pass: the broker's lock
// and the engine's matching fan-out are taken once for the whole batch,
// so per-event overhead is amortised across it. It returns the
// per-event enqueue counts,
// aligned with evs — each entry is exactly what Publish of that event
// would have returned — and, like Publish, never blocks on slow
// consumers.
func (br *Broker) PublishBatch(evs []Event) ([]int, error) { return br.b.PublishBatch(evs) }

// Stats returns an activity snapshot.
func (br *Broker) Stats() BrokerStats { return br.b.Stats() }

// Close stops intake and waits for all deliveries to drain.
func (br *Broker) Close() error { return br.b.Close() }
