module noncanon

go 1.22
