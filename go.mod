module noncanon

go 1.21
