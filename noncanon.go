// Package noncanon is a content-based publish/subscribe filtering library
// built around non-canonical matching: subscriptions are arbitrary Boolean
// expressions (AND, OR, NOT over attribute-operator-value predicates) and
// are filtered directly as encoded Boolean trees — never rewritten into
// disjunctive normal form.
//
// The library reproduces the system of Bittner & Hinze, "On the Benefits of
// Non-Canonical Filtering in Publish/Subscribe Systems" (ICDCS Workshops
// 2005), including the canonical counting-algorithm baselines the paper
// compares against, a local broker, a multi-broker overlay simulation and a
// TCP broker. See README.md for an overview and EXPERIMENTS.md for the
// reproduced evaluation.
//
// Quick start:
//
//	eng := noncanon.NewEngine()
//	id, err := eng.Subscribe(`(price < 20 or price > 90) and sym = "ACME"`)
//	matches := eng.Match(noncanon.NewEvent().Set("price", 95).Set("sym", "ACME"))
//	// matches == []noncanon.SubID{id}
package noncanon

import (
	"fmt"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/counting"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/sublang"
	"noncanon/internal/subtree"
)

// Event is a published notification: a set of named, typed attributes.
type Event = event.Event

// SubID identifies a registered subscription within an engine or broker.
type SubID = matcher.SubID

// Expr is a parsed subscription expression.
type Expr = boolexpr.Expr

// NewEvent returns an empty event; populate it with Set.
func NewEvent() Event { return event.New() }

// EventFromMap builds an event from native Go values (ints, floats,
// strings, bools).
func EventFromMap(m map[string]any) Event { return event.FromMap(m) }

// Parse parses a subscription in the textual subscription language, e.g.
//
//	(price < 20 or price > 90) and sym = "ACME" and not halted = true
//
// Keywords are case-insensitive; see internal/sublang for the grammar.
func Parse(sub string) (Expr, error) { return sublang.Parse(sub) }

// MustParse is Parse panicking on error, for literal subscriptions in
// examples and tests.
func MustParse(sub string) Expr { return sublang.MustParse(sub) }

// Algorithm selects a filtering engine implementation.
type Algorithm string

// Available algorithms. NonCanonical is the paper's contribution and the
// default; the two counting variants are the canonical (DNF-transforming)
// baselines, provided for comparison and benchmarking.
const (
	NonCanonical    Algorithm = "non-canonical"
	Counting        Algorithm = "counting"
	CountingVariant Algorithm = "counting-variant"
)

// Option configures an Engine.
type Option func(*engineConfig)

type engineConfig struct {
	algorithm           Algorithm
	compactEncoding     bool
	reorder             bool
	simplify            bool
	complementNegations bool
	unsubscribeSupport  bool
}

// WithAlgorithm selects the filtering algorithm (default NonCanonical).
func WithAlgorithm(a Algorithm) Option {
	return func(c *engineConfig) { c.algorithm = a }
}

// WithCompactEncoding stores subscription trees in the varint encoding
// instead of the paper's fixed-width layout (non-canonical engine only).
func WithCompactEncoding() Option {
	return func(c *engineConfig) { c.compactEncoding = true }
}

// WithReorder enables cheapest-first child reordering of subscription trees
// (non-canonical engine only).
func WithReorder() Option {
	return func(c *engineConfig) { c.reorder = true }
}

// WithSimplify applies structural simplification (idempotence, absorption,
// flattening) before registration.
func WithSimplify() Option {
	return func(c *engineConfig) { c.simplify = true }
}

// WithComplementNegations lets the counting engines accept NOT by rewriting
// negated predicates into complemented operators. Caution: this strong
// semantics differs from logical negation on events lacking the attribute.
func WithComplementNegations() Option {
	return func(c *engineConfig) { c.complementNegations = true }
}

// WithoutUnsubscribeSupport configures the counting engines like the
// paper's memory-friendly baseline: less memory, but Unsubscribe fails.
// The non-canonical engine always supports unsubscription.
func WithoutUnsubscribeSupport() Option {
	return func(c *engineConfig) { c.unsubscribeSupport = false }
}

// Engine is a single-process filtering engine over its own predicate
// registry and index. It is safe for concurrent use; with the default
// NonCanonical algorithm, Match calls additionally run concurrently with
// each other — only Subscribe/Unsubscribe briefly exclude matching while
// they mutate the subscription store. The counting baselines serialise all
// operations behind one mutex.
type Engine struct {
	m   matcher.Matcher
	reg *predicate.Registry
	idx *index.Index
}

// NewEngine builds an engine. With no options it is the paper's
// non-canonical matcher with the paper's tree encoding.
func NewEngine(opts ...Option) *Engine {
	cfg := engineConfig{algorithm: NonCanonical, unsubscribeSupport: true}
	for _, o := range opts {
		o(&cfg)
	}
	reg := predicate.NewRegistry()
	idx := index.New()
	var m matcher.Matcher
	switch cfg.algorithm {
	case Counting, CountingVariant:
		alg := counting.Classic
		if cfg.algorithm == CountingVariant {
			alg = counting.Variant
		}
		m = counting.New(reg, idx, counting.Options{
			Algorithm:           alg,
			ComplementNegations: cfg.complementNegations,
			SupportUnsubscribe:  cfg.unsubscribeSupport,
		})
	default:
		enc := subtree.PaperEncoding
		if cfg.compactEncoding {
			enc = subtree.CompactEncoding
		}
		m = core.New(reg, idx, core.Options{
			Encoding: enc,
			Reorder:  cfg.reorder,
			Simplify: cfg.simplify,
		})
	}
	return &Engine{m: m, reg: reg, idx: idx}
}

// Subscribe parses and registers a textual subscription.
func (e *Engine) Subscribe(sub string) (SubID, error) {
	x, err := sublang.Parse(sub)
	if err != nil {
		return 0, fmt.Errorf("noncanon: %w", err)
	}
	return e.m.Subscribe(x)
}

// SubscribeExpr registers an already-parsed subscription.
func (e *Engine) SubscribeExpr(x Expr) (SubID, error) {
	return e.m.Subscribe(x)
}

// Unsubscribe removes a subscription.
func (e *Engine) Unsubscribe(id SubID) error { return e.m.Unsubscribe(id) }

// Match returns the IDs of all subscriptions the event fulfils.
func (e *Engine) Match(ev Event) []SubID { return e.m.Match(ev) }

// MatchBatch matches every event in one pass under a single lock
// acquisition and returns the per-event match sets, aligned with evs.
// Results are identical to calling Match per event against an unchanging
// engine; a batch just pays the per-call envelope once.
func (e *Engine) MatchBatch(evs []Event) [][]SubID { return e.m.MatchBatch(evs) }

// Algorithm reports the engine's filtering algorithm.
func (e *Engine) Algorithm() Algorithm { return Algorithm(e.m.Name()) }

// Stats summarises engine state.
type Stats struct {
	// Algorithm is the engine implementation name.
	Algorithm Algorithm
	// Subscriptions is the number of registered (original) subscriptions.
	Subscriptions int
	// StoredUnits is the number of internal filtering units; for the
	// canonical engines this exceeds Subscriptions by the DNF blow-up.
	StoredUnits int
	// Predicates is the number of distinct live predicates.
	Predicates int
	// MemBytes estimates resident memory of all filtering structures.
	MemBytes int
}

// Stats returns a snapshot of engine state.
func (e *Engine) Stats() Stats {
	return Stats{
		Algorithm:     Algorithm(e.m.Name()),
		Subscriptions: e.m.NumSubscriptions(),
		StoredUnits:   e.m.NumUnits(),
		Predicates:    e.reg.Len(),
		MemBytes:      e.m.MemBytes() + e.reg.MemBytes() + e.idx.MemBytes(),
	}
}
