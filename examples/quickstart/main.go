// Quickstart: register arbitrary Boolean subscriptions and match events,
// entirely through the public API.
package main

import (
	"fmt"

	"noncanon"
)

func main() {
	eng := noncanon.NewEngine()

	// The paper's Fig. 1 subscription: an AND of ORs no conjunctive-only
	// matcher can store without DNF-expanding it into nine subscriptions.
	fig1, err := eng.Subscribe(
		`(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)`)
	if err != nil {
		panic(err)
	}
	// Negation is first-class — impossible in canonical matchers.
	quiet, err := eng.Subscribe(`kind = "alert" and not muted = true`)
	if err != nil {
		panic(err)
	}

	events := []noncanon.Event{
		noncanon.NewEvent().Set("a", 3).Set("c", 30),
		noncanon.NewEvent().Set("a", 7).Set("c", 30),
		noncanon.NewEvent().Set("kind", "alert").Set("muted", false),
		noncanon.NewEvent().Set("kind", "alert").Set("muted", true),
		noncanon.NewEvent().Set("kind", "alert"), // muted absent → not muted
	}
	names := map[noncanon.SubID]string{fig1: "fig1", quiet: "unmuted-alerts"}
	for _, ev := range events {
		var hit []string
		for _, id := range eng.Match(ev) {
			hit = append(hit, names[id])
		}
		fmt.Printf("%-46s -> %v\n", ev, hit)
	}

	st := eng.Stats()
	fmt.Printf("\nengine: %s, %d subscriptions, %d predicates, ~%d bytes\n",
		st.Algorithm, st.Subscriptions, st.Predicates, st.MemBytes)
}
