// Stockmon: a stock-quote monitoring broker — the workload the paper's
// introduction motivates. Traders register rich Boolean interest profiles;
// a simulated feed publishes quotes; matching deliveries stream to each
// trader asynchronously.
package main

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"noncanon"
)

type trader struct {
	name     string
	sub      string
	received atomic.Int64
}

func main() {
	// The feed below publishes in a tight burst, so give each trader a
	// queue deep enough to absorb it; the broker never blocks publishers —
	// overflow would be dropped and counted instead.
	br := noncanon.NewBroker(noncanon.WithQueueSize(16_384))
	defer br.Close()

	traders := []*trader{
		{name: "breakout", sub: `sym = "ACME" and (price < 20 or price > 90)`},
		{name: "value", sub: `(sym = "GLOBEX" or sym = "INITECH") and price <= 35 and volume > 5000`},
		{name: "momentum", sub: `change >= 2.5 and volume > 8000 and not sym = "UMBRELLA"`},
		{name: "everything-acme", sub: `sym = "ACME"`},
		{name: "panic", sub: `change <= -4.0 or (price < 10 and volume > 9000)`},
	}
	for _, tr := range traders {
		tr := tr
		if _, err := br.Subscribe(tr.sub, func(ev noncanon.Event) {
			tr.received.Add(1)
		}); err != nil {
			panic(err)
		}
	}

	// Simulated quote feed.
	rng := rand.New(rand.NewSource(42))
	symbols := []string{"ACME", "GLOBEX", "INITECH", "UMBRELLA"}
	const quotes = 10_000
	matchedTotal := 0
	for i := 0; i < quotes; i++ {
		ev := noncanon.NewEvent().
			Set("sym", symbols[rng.Intn(len(symbols))]).
			Set("price", rng.Intn(100)).
			Set("volume", rng.Intn(10_000)).
			Set("change", rng.NormFloat64()*2)
		n, err := br.Publish(ev)
		if err != nil {
			panic(err)
		}
		matchedTotal += n
	}
	br.Close() // drain deliveries before reading counters

	fmt.Printf("published %d quotes, %d deliveries enqueued\n\n", quotes, matchedTotal)
	for _, tr := range traders {
		fmt.Printf("%-16s %6d quotes   (%s)\n", tr.name, tr.received.Load(), tr.sub)
	}
	st := br.Stats()
	fmt.Printf("\nbroker: delivered=%d dropped=%d\n", st.Delivered, st.Dropped)
}
