// Overlaydemo: a 13-broker overlay routing events to the subscribers'
// brokers only — the peer-to-peer deployment the paper motivates for
// resource-constrained filtering nodes. (The overlay simulation lives in an
// internal package; this example doubles as its usage reference.)
package main

import (
	"fmt"
	"sync/atomic"

	"noncanon/internal/event"
	"noncanon/internal/overlay"
	"noncanon/internal/sublang"
)

func main() {
	// A binary tree of 13 brokers: 0 is the root, 1..2 its children, etc.
	nw, err := overlay.NewTree(13, 2, overlay.Config{})
	if err != nil {
		panic(err)
	}
	defer nw.Close()

	// Regional subscribers at the leaves.
	var eu, us atomic.Int64
	mustSubscribe(nw, 7, `region = "eu" and severity >= 3`, func(event.Event) { eu.Add(1) })
	mustSubscribe(nw, 12, `region = "us" and (severity >= 3 or service = "payments")`, func(event.Event) { us.Add(1) })
	nw.Flush()

	// Alerts published at the root flow only toward interested leaves.
	alerts := []event.Event{
		event.New().Set("region", "eu").Set("severity", 5).Set("service", "db"),
		event.New().Set("region", "us").Set("severity", 1).Set("service", "payments"),
		event.New().Set("region", "us").Set("severity", 1).Set("service", "web"),
		event.New().Set("region", "apac").Set("severity", 5).Set("service", "db"),
	}
	for _, ev := range alerts {
		if err := nw.Publish(0, ev); err != nil {
			panic(err)
		}
	}
	nw.Flush()

	st := nw.Stats()
	fmt.Printf("published       %d alerts at the root broker\n", st.Published)
	fmt.Printf("eu deliveries   %d (expected 1)\n", eu.Load())
	fmt.Printf("us deliveries   %d (expected 1)\n", us.Load())
	fmt.Printf("link crossings  %d — a broadcast would have needed %d\n",
		st.Forwarded, len(alerts)*(nw.NumNodes()-1))
}

func mustSubscribe(nw *overlay.Network, at overlay.NodeID, sub string, h overlay.Handler) {
	expr, err := sublang.Parse(sub)
	if err != nil {
		panic(err)
	}
	if _, err := nw.Subscribe(at, expr, h); err != nil {
		panic(err)
	}
}
