// Auction: an online-auction notification service comparing the three
// filtering algorithms on identical subscriptions — the paper's argument in
// miniature. Bidders register disjunction-rich watch profiles; the DNF
// blow-up of the canonical engines and the resulting memory gap are printed
// side by side.
package main

import (
	"fmt"
	"math/rand"

	"noncanon"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	categories := []string{"art", "books", "coins", "cards", "maps"}

	// Watch profiles: "category X under my limit, or any closing auction I
	// can still afford, or rarities regardless" — ANDs of ORs, like the
	// paper's Table 1 workload.
	var subs []string
	for i := 0; i < 2000; i++ {
		cat := categories[rng.Intn(len(categories))]
		limit := 20 + rng.Intn(200)
		subs = append(subs, fmt.Sprintf(
			`(category = %q or rarity >= %d) and (price <= %d or closing_min <= %d) and (seller_score > %d or insured = true)`,
			cat, 8+rng.Intn(2), limit, 1+rng.Intn(10), 50+rng.Intn(40)))
	}

	engines := []*noncanon.Engine{
		noncanon.NewEngine(),
		noncanon.NewEngine(noncanon.WithAlgorithm(noncanon.CountingVariant)),
		noncanon.NewEngine(noncanon.WithAlgorithm(noncanon.Counting)),
	}
	for _, eng := range engines {
		for _, s := range subs {
			if _, err := eng.Subscribe(s); err != nil {
				panic(err)
			}
		}
	}

	fmt.Println("identical subscriptions registered in all three engines:")
	fmt.Printf("%-18s %-15s %-14s %-12s\n", "algorithm", "subscriptions", "stored units", "mem (bytes)")
	for _, eng := range engines {
		st := eng.Stats()
		fmt.Printf("%-18s %-15d %-14d %-12d\n", st.Algorithm, st.Subscriptions, st.StoredUnits, st.MemBytes)
	}

	// Matching agreement on a burst of auction events.
	agreement := true
	matches := make([]int, len(engines))
	for i := 0; i < 2000; i++ {
		ev := noncanon.NewEvent().
			Set("category", categories[rng.Intn(len(categories))]).
			Set("rarity", rng.Intn(10)).
			Set("price", rng.Intn(250)).
			Set("closing_min", rng.Intn(60)).
			Set("seller_score", rng.Intn(100)).
			Set("insured", rng.Intn(2) == 0)
		var counts []int
		for j, eng := range engines {
			n := len(eng.Match(ev))
			counts = append(counts, n)
			matches[j] += n
		}
		if counts[0] != counts[1] || counts[0] != counts[2] {
			agreement = false
			fmt.Printf("DISAGREEMENT on %s: %v\n", ev, counts)
		}
	}
	fmt.Printf("\n2000 events matched; total matches %v; algorithms agree: %v\n", matches[:1], agreement)

	// Unsubscription churn: supported natively by the non-canonical engine.
	nc := engines[0]
	id, _ := nc.Subscribe(`category = "art" and price <= 10`)
	if err := nc.Unsubscribe(id); err != nil {
		panic(err)
	}
	fmt.Printf("unsubscription churn on %s engine: ok\n", nc.Algorithm())
}
