package netbroker

import (
	"sync"
	"sync/atomic"
	"time"

	"noncanon/internal/event"
	"noncanon/internal/wire"
)

// BatchPublisher defaults.
const (
	// DefaultMaxBatch is the flush threshold in pending events.
	DefaultMaxBatch = 64
	// DefaultMaxDelay is the longest an event waits before its batch is
	// flushed regardless of size.
	DefaultMaxDelay = 5 * time.Millisecond
)

// BatchPublisherOptions configures a BatchPublisher.
type BatchPublisherOptions struct {
	// MaxBatch flushes when this many events are pending (default
	// DefaultMaxBatch, capped at wire.MaxBatchEvents).
	MaxBatch int
	// MaxDelay flushes this long after the first event of a batch arrived
	// (default DefaultMaxDelay), bounding the latency batching adds.
	MaxDelay time.Duration
	// QueueSize bounds the intake queue between Publish callers and the
	// flushing goroutine (default 4×MaxBatch). Publish never blocks: events
	// beyond the queue are dropped and counted, the same back-pressure
	// posture as the broker's per-subscriber queues.
	QueueSize int
}

func (o BatchPublisherOptions) withDefaults() BatchPublisherOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxBatch > wire.MaxBatchEvents {
		o.MaxBatch = wire.MaxBatchEvents
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = DefaultMaxDelay
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 4 * o.MaxBatch
	}
	return o
}

// BatchPublisher coalesces Publish calls into MsgPublishBatch frames: a
// batch is flushed as soon as MaxBatch events are pending or MaxDelay
// after its first event, whichever comes first. It amortises the
// per-event round trip without making any caller wait longer than
// MaxDelay, and it is safe for concurrent use.
//
// Publish is fire-and-forget (per-event match counts are not reported
// back); the first error of any flush is retained and returned by Flush
// and Close. Callers that need per-event counts use Client.PublishBatch
// directly.
type BatchPublisher struct {
	c    *Client
	opts BatchPublisherOptions

	in    chan event.Event
	flush chan chan error
	done  chan struct{}

	mu     sync.Mutex
	closed bool

	errMu   sync.Mutex
	lastErr error

	published atomic.Uint64 // events acknowledged by the broker
	dropped   atomic.Uint64 // events discarded: intake queue full
	lost      atomic.Uint64 // events abandoned by a failed flush
}

// NewBatchPublisher starts a publisher that batches onto c. Close it
// before closing the client.
func NewBatchPublisher(c *Client, opts BatchPublisherOptions) *BatchPublisher {
	p := &BatchPublisher{
		c:     c,
		opts:  opts.withDefaults(),
		flush: make(chan chan error),
		done:  make(chan struct{}),
	}
	p.in = make(chan event.Event, p.opts.QueueSize)
	go p.loop()
	return p
}

// Publish enqueues an event for the next batch. It never blocks: when the
// intake queue is full the event is dropped and counted (Dropped), like a
// slow subscriber's deliveries. After Close it reports ErrClientClosed.
func (p *BatchPublisher) Publish(ev event.Event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClientClosed
	}
	select {
	case p.in <- ev:
	default:
		p.dropped.Add(1)
	}
	return nil
}

// Flush sends every event accepted before the call. Like a bufio.Writer
// the publisher's error is sticky: Flush returns the first error any
// flush has hit so far, even if this one delivered cleanly — a caller
// that needs per-delivery confirmation uses Client.PublishBatch
// directly.
func (p *BatchPublisher) Flush() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClientClosed
	}
	p.mu.Unlock()
	ack := make(chan error, 1)
	select {
	case p.flush <- ack:
		return <-ack
	case <-p.done:
		return ErrClientClosed
	}
}

// Close flushes pending events, stops the flushing goroutine and returns
// the first flush error. It is idempotent.
func (p *BatchPublisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return p.err()
	}
	p.closed = true
	close(p.in)
	p.mu.Unlock()
	<-p.done
	return p.err()
}

// Published returns how many events the broker has acknowledged. Every
// accepted event is eventually counted exactly once across Published,
// Dropped and Lost (plus those still pending flush).
func (p *BatchPublisher) Published() uint64 { return p.published.Load() }

// Dropped returns how many events were discarded because the intake queue
// was full.
func (p *BatchPublisher) Dropped() uint64 { return p.dropped.Load() }

// Lost returns how many events were abandoned because their flush failed
// after they left the intake queue. Events of chunks the broker
// acknowledged before the failure count as Published, not Lost.
func (p *BatchPublisher) Lost() uint64 { return p.lost.Load() }

func (p *BatchPublisher) err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

func (p *BatchPublisher) setErr(err error) {
	p.errMu.Lock()
	if p.lastErr == nil {
		p.lastErr = err
	}
	p.errMu.Unlock()
}

// loop drains the intake queue into batches. The timer is armed when a
// batch gains its first event and disarmed on every flush, so an event
// waits at most MaxDelay.
func (p *BatchPublisher) loop() {
	defer close(p.done)
	buf := make([]event.Event, 0, p.opts.MaxBatch)
	timer := time.NewTimer(p.opts.MaxDelay)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			<-timer.C
		}
		armed = false
	}
	doFlush := func() {
		disarm()
		if len(buf) == 0 {
			return
		}
		// On error PublishBatch still returns counts for the chunks the
		// broker acknowledged; only the unacknowledged remainder is lost.
		counts, err := p.c.PublishBatch(buf)
		p.published.Add(uint64(len(counts)))
		if err != nil {
			p.setErr(err)
			p.lost.Add(uint64(len(buf) - len(counts)))
		}
		buf = buf[:0]
	}
	for {
		select {
		case ev, ok := <-p.in:
			if !ok {
				doFlush()
				return
			}
			buf = append(buf, ev)
			if len(buf) >= p.opts.MaxBatch {
				doFlush()
			} else if !armed {
				timer.Reset(p.opts.MaxDelay)
				armed = true
			}
		case <-timer.C:
			armed = false
			doFlush()
		case ack := <-p.flush:
			// Drain whatever Publish already queued, then flush it all:
			// every event accepted before the Flush call is covered. No
			// MaxBatch cap — Client.PublishBatch chunks oversized batches.
		drain:
			for {
				select {
				case ev, ok := <-p.in:
					if !ok {
						break drain
					}
					buf = append(buf, ev)
				default:
					break drain
				}
			}
			doFlush()
			ack <- p.err()
		}
	}
}
