// Package netbroker exposes the local broker over TCP using the wire
// protocol: clients subscribe with textual subscriptions, publish events and
// receive matched events as asynchronous pushes.
//
// Each connection is served by its own goroutine, and the broker's Publish
// path runs entirely under read locks, so publications from different
// clients are matched concurrently — the server never funnels matching
// through an exclusive engine lock.
package netbroker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/sublang"
	"noncanon/internal/wire"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("netbroker: server closed")

// writeTimeout bounds how long a slow client can stall one of its own
// delivery goroutines.
const writeTimeout = 10 * time.Second

// ServerOptions configures a broker server.
type ServerOptions struct {
	// Broker configures the embedded matching broker.
	Broker broker.Options
	// RetryAfter enables publish backpressure: while the embedded broker
	// reports Congested, MsgPublish/MsgPublishBatch requests are rejected
	// with a MsgBusy reply hinting this retry delay instead of being
	// matched and silently dropped per-subscriber. Zero disables the
	// behaviour (the pre-flow-control posture).
	RetryAfter time.Duration
	// Logf receives connection-level diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Server serves the broker protocol over a listener.
type Server struct {
	opts ServerOptions
	br   *broker.Broker

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server with an embedded broker.
func NewServer(opts ServerOptions) *Server {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Server{
		opts:  opts,
		br:    broker.New(opts.Broker),
		conns: make(map[*conn]struct{}),
	}
}

// Broker exposes the embedded broker (e.g. for local subscriptions beside
// the network interface).
func (s *Server) Broker() *broker.Broker { return s.br }

// Serve accepts connections until Close. It always returns a non-nil error;
// after Close the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("netbroker: accept: %w", err)
		}
		c := &conn{srv: s, nc: nc, subs: make(map[uint64]*broker.Subscription)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("netbroker: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Close stops accepting, disconnects clients, shuts the broker down and
// waits for connection goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.nc.Close()
	}
	s.wg.Wait()
	return s.br.Close()
}

// conn is one client connection.
type conn struct {
	srv *Server
	nc  net.Conn

	wmu sync.Mutex // serialises response and event writes
	enc []byte     // event-push encode buffer; guarded by wmu

	smu     sync.Mutex
	nextSub uint64 // connection-local subscription handle source
	subs    map[uint64]*broker.Subscription

	// Reader-loop state, touched only by serve's goroutine: the reused
	// frame buffer and the recycled batch slice for alias decode.
	rbuf    []byte
	evBatch []event.Event
}

func (c *conn) serve() {
	defer c.cleanup()
	for {
		// The frame buffer is reused across iterations: handle must not
		// keep payload (or anything aliasing it) past its return. Events
		// go through broker.Publish, which Retains before enqueueing.
		typ, payload, buf, err := wire.ReadFrameInto(c.nc, c.rbuf)
		c.rbuf = buf
		if err != nil {
			return // disconnect (clean EOF or protocol error)
		}
		if err := c.handle(typ, payload); err != nil {
			c.srv.opts.Logf("netbroker: %s: %v", c.nc.RemoteAddr(), err)
			return
		}
	}
}

func (c *conn) cleanup() {
	c.nc.Close()
	c.smu.Lock()
	subs := make([]*broker.Subscription, 0, len(c.subs))
	for _, sub := range c.subs {
		subs = append(subs, sub)
	}
	c.subs = map[uint64]*broker.Subscription{}
	c.smu.Unlock()
	for _, sub := range subs {
		if err := sub.Unsubscribe(); err != nil {
			c.srv.opts.Logf("netbroker: cleanup unsubscribe: %v", err)
		}
	}
}

func (c *conn) handle(typ byte, payload []byte) error {
	reqID, rest, err := wire.ReadU32(payload)
	if err != nil {
		return fmt.Errorf("request without id: %w", err)
	}
	switch typ {
	case wire.MsgSubscribe:
		return c.handleSubscribe(reqID, rest)
	case wire.MsgUnsubscribe:
		return c.handleUnsubscribe(reqID, rest)
	case wire.MsgPublish:
		return c.handlePublish(reqID, rest)
	case wire.MsgPublishBatch:
		return c.handlePublishBatch(reqID, rest)
	case wire.MsgPing:
		return c.write(wire.MsgPong, wire.AppendU32(nil, reqID))
	default:
		return c.writeError(reqID, fmt.Sprintf("unknown message type 0x%02x", typ))
	}
}

func (c *conn) handleSubscribe(reqID uint32, rest []byte) error {
	text, _, err := wire.ReadString(rest)
	if err != nil {
		return c.writeError(reqID, "malformed subscribe: "+err.Error())
	}
	expr, err := sublang.Parse(text)
	if err != nil {
		return c.writeError(reqID, err.Error())
	}
	// Subscriptions are identified on the wire by a connection-local
	// handle, never by the engine ID: with broker aggregation two
	// identical filters on one connection share an engine entry, and the
	// handle keeps them separately addressable.
	c.smu.Lock()
	c.nextSub++
	handle := c.nextSub
	c.smu.Unlock()
	sub, err := c.srv.br.Subscribe(expr, func(ev event.Event) {
		c.deliverFor(handle, ev)
	})
	if err != nil {
		return c.writeError(reqID, err.Error())
	}
	c.smu.Lock()
	c.subs[handle] = sub
	c.smu.Unlock()
	resp := wire.AppendU32(nil, reqID)
	resp = wire.AppendU64(resp, handle)
	return c.write(wire.MsgSubscribed, resp)
}

func (c *conn) handleUnsubscribe(reqID uint32, rest []byte) error {
	id, _, err := wire.ReadU64(rest)
	if err != nil {
		return c.writeError(reqID, "malformed unsubscribe: "+err.Error())
	}
	c.smu.Lock()
	sub, ok := c.subs[id]
	delete(c.subs, id)
	c.smu.Unlock()
	if !ok {
		return c.writeError(reqID, fmt.Sprintf("unknown subscription %d", id))
	}
	if err := sub.Unsubscribe(); err != nil {
		return c.writeError(reqID, err.Error())
	}
	return c.write(wire.MsgOK, wire.AppendU32(nil, reqID))
}

// writeBusyIfCongested sends the MsgBusy backpressure reply when the server
// has RetryAfter configured and the broker is congested, reporting whether
// it did so (in which case the publish request must not proceed).
func (c *conn) writeBusyIfCongested(reqID uint32) (bool, error) {
	if c.srv.opts.RetryAfter <= 0 || !c.srv.br.Congested() {
		return false, nil
	}
	millis := uint32(c.srv.opts.RetryAfter / time.Millisecond)
	if millis == 0 {
		millis = 1
	}
	return true, c.write(wire.MsgBusy, wire.AppendBusy(nil, reqID, millis))
}

func (c *conn) handlePublish(reqID uint32, rest []byte) error {
	// Alias decode: the event borrows the reader-loop frame buffer, which
	// stays untouched until the next ReadFrameInto — after this handler
	// returns. Publish Retains before any enqueue, so nothing escaping
	// this call still references the buffer.
	ev, _, err := wire.ReadEventAlias(rest)
	if err != nil {
		return c.writeError(reqID, "malformed event: "+err.Error())
	}
	if busy, err := c.writeBusyIfCongested(reqID); busy || err != nil {
		return err
	}
	n, err := c.srv.br.Publish(ev)
	if err != nil {
		return c.writeError(reqID, err.Error())
	}
	resp := wire.AppendU32(nil, reqID)
	resp = wire.AppendU32(resp, uint32(n))
	return c.write(wire.MsgPublished, resp)
}

// handlePublishBatch feeds a whole event batch to the broker in one
// PublishBatch call and replies with the per-event match counts. Batches
// the decoder rejects — malformed bytes or more than wire.MaxBatchEvents
// events — earn an error reply, not a disconnect: the frame itself was
// well-delimited, so the connection state is intact.
func (c *conn) handlePublishBatch(reqID uint32, rest []byte) error {
	// Alias decode into the connection's recycled batch slice; see
	// handlePublish for the buffer-lifetime argument (PublishBatch
	// Retains every event it enqueues).
	evs, _, err := wire.ReadEventBatchAlias(rest, c.evBatch)
	if err != nil {
		return c.writeError(reqID, "malformed batch: "+err.Error())
	}
	c.evBatch = evs[:0]
	if busy, err := c.writeBusyIfCongested(reqID); busy || err != nil {
		return err
	}
	counts, err := c.srv.br.PublishBatch(evs)
	if err != nil {
		return c.writeError(reqID, err.Error())
	}
	resp := wire.AppendU32(nil, reqID)
	resp = wire.AppendU32(resp, uint32(len(counts)))
	for _, n := range counts {
		resp = wire.AppendU32(resp, uint32(n))
	}
	return c.write(wire.MsgPublishedBatch, resp)
}

// deliverFor pushes one matched event to the client, tagged with the
// connection-local handle of the subscription it matched. It runs on the
// broker's per-subscription delivery goroutine; the event is owned (the
// broker Retained it before enqueueing — that is the subscriber-side half
// of the Retain contract), so encoding here never touches a frame buffer.
// The encode buffer is recycled under the write lock, making steady-state
// delivery allocation-free.
func (c *conn) deliverFor(handle uint64, ev event.Event) {
	c.wmu.Lock()
	buf := wire.AppendU64(c.enc[:0], handle)
	buf = wire.AppendEvent(buf, ev)
	c.enc = buf
	err := c.writeLocked(wire.MsgEvent, buf)
	c.wmu.Unlock()
	if err != nil {
		c.srv.opts.Logf("netbroker: push to %s: %v", c.nc.RemoteAddr(), err)
		c.nc.Close() // reader will clean up
	}
}

func (c *conn) write(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeLocked(typ, payload)
}

func (c *conn) writeLocked(typ byte, payload []byte) error {
	if err := c.nc.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		return err
	}
	return wire.WriteFrame(c.nc, typ, payload)
}

func (c *conn) writeError(reqID uint32, msg string) error {
	payload := wire.AppendU32(nil, reqID)
	payload = wire.AppendString(payload, msg)
	return c.write(wire.MsgError, payload)
}
