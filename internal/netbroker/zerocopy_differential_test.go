package netbroker

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/sublang"
	"noncanon/internal/wire"
)

// Differential proof that the zero-copy decode path is invisible: for
// every broker engine shape, an event decoded in aliasing mode (and
// Retained, with its frame buffer then clobbered) matches exactly the
// same subscriptions and delivers exactly the same payloads as the same
// bytes decoded in copying mode. The package sits here rather than in
// internal/broker because the experiment needs both the broker and the
// wire codec, and layering lets only the transports see both.

// advFilters are textual subscriptions whose operands probe float64 edge
// cases: the 2^53 integer-precision boundary, huge magnitudes, negative
// zero, plus string and existence predicates over the adversarial values.
func advFilters() []string {
	return []string{
		`price > 9007199254740992`,  // 2^53
		`price >= 9007199254740993`, // 2^53+1: rounds to 2^53 as float
		`price < -9007199254740992`,
		`price != 0`,
		`price = 0`, // hits -0.0 vs +0 equality
		`price <= 1.5`,
		`qty > 4611686018427387904`, // 2^62: int vs float ordering
		`qty != 42`,
		`exists price`,
		`exists missing`,
		`sym = "AAPL"`,
		`sym prefix ""`,
		`sym contains "üb"`,
		`flag = true`,
		`price > 0 and qty < 100`,
		`sym = "" or price >= 1e308`,
		`not (price < 9007199254740993)`,
	}
}

// advEvents generates events drawing values from the adversarial pool:
// NaN, the infinities, the 2^53 boundary and its neighbours, negative
// zero, extreme ints, and volatile strings (which the aliasing decoder
// borrows from the frame buffer).
func advEvents(rng *rand.Rand, n int) []event.Event {
	floats := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), 0,
		9007199254740992, 9007199254740993, -9007199254740993,
		1.5, 1e308, -1e308,
	}
	ints := []int64{math.MaxInt64, math.MinInt64, 0, 42, 1 << 62}
	strs := []string{"", "\x00", "üben", "AAPL", "a longer volatile string value"}
	evs := make([]event.Event, n)
	for i := range evs {
		ev := event.New()
		if rng.Intn(4) > 0 {
			if rng.Intn(2) == 0 {
				ev = ev.Set("price", floats[rng.Intn(len(floats))])
			} else {
				ev = ev.Set("price", ints[rng.Intn(len(ints))])
			}
		}
		if rng.Intn(4) > 0 {
			ev = ev.Set("qty", ints[rng.Intn(len(ints))])
		}
		if rng.Intn(4) > 0 {
			ev = ev.Set("sym", strs[rng.Intn(len(strs))])
		}
		if rng.Intn(2) == 0 {
			ev = ev.Set("flag", rng.Intn(2) == 0)
		}
		evs[i] = ev
	}
	return evs
}

// recorder collects delivered event renderings per subscription slot.
type recorder struct {
	mu   sync.Mutex
	got  [][]string
	seen int
}

func newRecorder(slots int) *recorder { return &recorder{got: make([][]string, slots)} }

func (r *recorder) handler(slot int) func(event.Event) {
	return func(ev event.Event) {
		r.mu.Lock()
		r.got[slot] = append(r.got[slot], ev.String())
		r.seen++
		r.mu.Unlock()
	}
}

func (r *recorder) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

func (r *recorder) snapshot() [][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]string, len(r.got))
	for i, g := range r.got {
		out[i] = append([]string(nil), g...)
		sort.Strings(out[i])
	}
	return out
}

func TestDifferentialAliasDecodeAcrossEngines(t *testing.T) {
	configs := []struct {
		name string
		opts broker.Options
	}{
		{"plain", broker.Options{}},
		{"sharded", broker.Options{Shards: 4}},
		{"aggregate", broker.Options{Aggregate: true}},
		{"dag", broker.Options{AggregateDAG: true}},
	}
	filters := advFilters()
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.QueueSize = 4096
			bCopy := broker.New(opts)
			defer bCopy.Close()
			bAlias := broker.New(opts)
			defer bAlias.Close()
			recCopy := newRecorder(len(filters))
			recAlias := newRecorder(len(filters))
			for i, f := range filters {
				expr, err := sublang.Parse(f)
				if err != nil {
					t.Fatalf("parse %q: %v", f, err)
				}
				if _, err := bCopy.Subscribe(expr, recCopy.handler(i)); err != nil {
					t.Fatal(err)
				}
				expr2, err := sublang.Parse(f)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := bAlias.Subscribe(expr2, recAlias.handler(i)); err != nil {
					t.Fatal(err)
				}
			}

			rng := rand.New(rand.NewSource(7))
			want := 0
			for i, ev := range advEvents(rng, 300) {
				enc := wire.AppendEvent(nil, ev)
				evCopy, _, err := wire.ReadEvent(enc)
				if err != nil {
					t.Fatalf("event %d: copy decode: %v", i, err)
				}
				aliasBuf := append([]byte(nil), enc...)
				evAlias, _, err := wire.ReadEventAlias(aliasBuf)
				if err != nil {
					t.Fatalf("event %d: alias decode: %v", i, err)
				}
				evAlias = evAlias.Retain()
				for j := range aliasBuf { // the reader loop's next frame
					aliasBuf[j] = 0xFF
				}
				if !evCopy.Equal(evAlias) {
					t.Fatalf("event %d: alias+Retain diverged from copy:\n copy  %s\n alias %s",
						i, evCopy, evAlias)
				}
				nC, err := bCopy.Publish(evCopy)
				if err != nil {
					t.Fatal(err)
				}
				nA, err := bAlias.Publish(evAlias)
				if err != nil {
					t.Fatal(err)
				}
				if nC != nA {
					t.Fatalf("event %d %s: copy matched %d subs, alias matched %d", i, evCopy, nC, nA)
				}
				want += nC
			}

			deadline := time.Now().Add(5 * time.Second)
			for recCopy.total() < want || recAlias.total() < want {
				if time.Now().After(deadline) {
					t.Fatalf("deliveries incomplete: copy %d alias %d want %d",
						recCopy.total(), recAlias.total(), want)
				}
				time.Sleep(time.Millisecond)
			}
			gotCopy, gotAlias := recCopy.snapshot(), recAlias.snapshot()
			for i := range filters {
				if fmt.Sprint(gotCopy[i]) != fmt.Sprint(gotAlias[i]) {
					t.Errorf("filter %q delivered different events:\n copy  %v\n alias %v",
						filters[i], gotCopy[i], gotAlias[i])
				}
			}
		})
	}
}
