package netbroker

import (
	"testing"

	"noncanon/internal/broker"
	"noncanon/internal/event"
)

// TestAggregatedServerDuplicateFilters pins the wire-handle layer over an
// aggregating broker: two identical filters on one connection share an
// engine entry but remain separately addressable — both receive matching
// events, and unsubscribing one must not detach the other.
func TestAggregatedServerDuplicateFilters(t *testing.T) {
	addr, srv := startServer(t, ServerOptions{
		Broker: broker.Options{Aggregate: true},
	})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	s1, err := cli.Subscribe(`price > 100 and sym = "ACME"`)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cli.Subscribe(`sym = "ACME" and price > 100`) // same filter, commuted
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID() == s2.ID() {
		t.Fatalf("wire handles collide: %d", s1.ID())
	}
	if st := srv.Broker().Stats(); st.DistinctFilters != 1 || st.Subscriptions != 2 {
		t.Fatalf("server stats = %+v, want 2 subscribers over 1 distinct filter", st)
	}

	ev := event.New().Set("price", 150).Set("sym", "ACME")
	if n, err := cli.Publish(ev); err != nil || n != 2 {
		t.Fatalf("Publish = %d, %v; want 2", n, err)
	}
	if got := recvEvent(t, s1.C()); !got.Equal(ev) {
		t.Error("s1 received wrong event")
	}
	if got := recvEvent(t, s2.C()); !got.Equal(ev) {
		t.Error("s2 received wrong event")
	}

	if err := s1.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Broker().Stats(); st.DistinctFilters != 1 || st.Subscriptions != 1 {
		t.Fatalf("after one unsubscribe: %+v, want engine entry kept alive", st)
	}
	if n, err := cli.Publish(ev); err != nil || n != 1 {
		t.Fatalf("Publish after unsubscribe = %d, %v; want 1", n, err)
	}
	if got := recvEvent(t, s2.C()); !got.Equal(ev) {
		t.Error("s2 lost its delivery after s1 unsubscribed")
	}
	if err := s2.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Broker().Stats(); st.DistinctFilters != 0 {
		t.Fatalf("after both unsubscribes: %+v, want empty engine", st)
	}
}
