package netbroker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/wire"
)

// startServer runs a server on a loopback listener and returns its address
// and a shutdown func.
func startServer(t *testing.T, opts ServerOptions) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(opts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return ln.Addr().String(), srv
}

func recvEvent(t *testing.T, ch <-chan event.Event) event.Event {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for event")
		return event.Event{}
	}
}

func TestSubscribePublishRoundTrip(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	sub, err := cli.Subscribe(`price > 100 and sym = "ACME"`)
	if err != nil {
		t.Fatal(err)
	}
	want := event.New().Set("price", 150).Set("sym", "ACME")
	n, err := cli.Publish(want)
	if err != nil || n != 1 {
		t.Fatalf("Publish = %d, %v", n, err)
	}
	got := recvEvent(t, sub.C())
	if !got.Equal(want) {
		t.Errorf("received %s, want %s", got, want)
	}
	// Non-matching event.
	if n, err := cli.Publish(event.New().Set("price", 50).Set("sym", "ACME")); err != nil || n != 0 {
		t.Errorf("Publish = %d, %v", n, err)
	}
}

func TestTwoClients(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	subCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer subCli.Close()
	pubCli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pubCli.Close()

	sub, err := subCli.Subscribe(`kind = "alert" and (sev >= 3 or source = "core")`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pubCli.Publish(event.New().Set("kind", "alert").Set("sev", 5)); err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, sub.C())
	if v, _ := ev.Get("sev"); v.Int() != 5 {
		t.Errorf("event = %s", ev)
	}
}

func TestUnsubscribeStopsEvents(t *testing.T) {
	addr, srv := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	sub, err := cli.Subscribe(`a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-sub.C(); open {
		t.Error("channel should close on unsubscribe")
	}
	if n, err := cli.Publish(event.New().Set("a", 1)); err != nil || n != 0 {
		t.Errorf("Publish after unsubscribe = %d, %v", n, err)
	}
	if srv.Broker().NumSubscriptions() != 0 {
		t.Errorf("server still has %d subscriptions", srv.Broker().NumSubscriptions())
	}
	// Idempotent.
	if err := sub.Unsubscribe(); err != nil {
		t.Errorf("second Unsubscribe: %v", err)
	}
}

func TestServerRejectsBadSubscription(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(`a = `); !errors.Is(err, ErrRemote) {
		t.Errorf("bad subscription err = %v", err)
	}
	// Connection survives the error.
	if err := cli.Ping(); err != nil {
		t.Errorf("Ping after error: %v", err)
	}
}

func TestClientDisconnectCleansSubscriptions(t *testing.T) {
	addr, srv := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Subscribe(`a = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Subscribe(`b = 2`); err != nil {
		t.Fatal(err)
	}
	if srv.Broker().NumSubscriptions() != 2 {
		t.Fatalf("subscriptions = %d", srv.Broker().NumSubscriptions())
	}
	cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Broker().NumSubscriptions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server kept %d subscriptions after disconnect", srv.Broker().NumSubscriptions())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMalformedFrameDisconnects(t *testing.T) {
	addr, srv := startServer(t, ServerOptions{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A subscribe request without a request ID is malformed; the server
	// drops the connection.
	if err := wire.WriteFrame(nc, wire.MsgSubscribe, []byte{0x01}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	if _, err := nc.Read(buf); err == nil {
		// Server may send an error frame first; the connection must close
		// eventually either way.
		if _, err := nc.Read(buf); err == nil {
			t.Error("connection survived malformed frame")
		}
	}
	_ = srv
}

func TestUnknownMessageTypeGetsError(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.roundTrip(0x7F, func(id uint32) []byte {
		return wire.AppendU32(nil, id)
	})
	if !errors.Is(err, ErrRemote) {
		t.Errorf("unknown type resp=%+v err = %v", resp, err)
	}
}

func TestPing(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 10; i++ {
		if err := cli.Ping(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{Broker: broker.Options{QueueSize: 512}})

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			sub, err := cli.Subscribe(`a >= 0`)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 20; j++ {
				if _, err := cli.Publish(event.New().Set("a", i*100+j)); err != nil {
					t.Error(err)
					return
				}
			}
			// Every client sees at least its own events (cross-client
			// deliveries may be dropped if buffers fill, counted not lost).
			seen := 0
			timeout := time.After(10 * time.Second)
			for seen < 20 {
				select {
				case _, ok := <-sub.C():
					if !ok {
						t.Error("event channel closed early")
						return
					}
					seen++
				case <-timeout:
					t.Errorf("client %d saw only %d events (dropped %d)", i, seen, sub.Dropped())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestParallelPublishersWithChurn drives the concurrent engine read path
// through the network layer: half the clients publish continuously while the
// other half register and remove subscriptions, so matching under the read
// lock overlaps store mutation under the write lock. Run with -race.
func TestParallelPublishersWithChurn(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{Broker: broker.Options{QueueSize: 512}})

	const pairs = 4
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		i := i
		wg.Add(2)
		go func() { // publisher
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for j := 0; j < 50; j++ {
				if _, err := cli.Publish(event.New().Set("a", i*100+j)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() { // churner
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for j := 0; j < 25; j++ {
				sub, err := cli.Subscribe(`a >= 0 and a < 1000`)
				if err != nil {
					t.Error(err)
					return
				}
				if err := sub.Unsubscribe(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerCloseFailsClients(t *testing.T) {
	addr, srv := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sub, err := cli.Subscribe(`a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The subscription channel closes and subsequent requests fail.
	select {
	case _, ok := <-sub.C():
		if ok {
			t.Error("unexpected event")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription channel not closed on server shutdown")
	}
	if err := cli.Ping(); err == nil {
		t.Error("Ping succeeded after server close")
	}
}

func TestClientOverPipe(t *testing.T) {
	// NewClient works over any net.Conn; exercise with net.Pipe and a
	// manual server loop speaking the wire protocol.
	cEnd, sEnd := net.Pipe()
	defer sEnd.Close()
	go func() {
		for {
			typ, payload, err := wire.ReadFrame(sEnd)
			if err != nil {
				return
			}
			reqID, _, _ := wire.ReadU32(payload)
			if typ == wire.MsgPing {
				wire.WriteFrame(sEnd, wire.MsgPong, wire.AppendU32(nil, reqID))
			}
		}
	}()
	cli := NewClient(cEnd)
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedServerRoundTrip drives the TCP stack against a sharded
// broker (the -shards deployment of cmd/ncbroker): subscription IDs carry
// the shard index in their high bits and must route pushes and
// unsubscribes unchanged through the wire protocol.
func TestShardedServerRoundTrip(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{Broker: broker.Options{Shards: 4}})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	subs := make([]*ClientSub, 8)
	for i := range subs {
		sub, err := cli.Subscribe(fmt.Sprintf("k = %d", i))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	for i := range subs {
		n, err := cli.Publish(event.New().Set("k", i))
		if err != nil || n != 1 {
			t.Fatalf("Publish k=%d = %d, %v", i, n, err)
		}
		ev := recvEvent(t, subs[i].C())
		if v, _ := ev.Get("k"); v.Int() != int64(i) {
			t.Fatalf("k=%d received %v", i, ev)
		}
	}
	// Unsubscribe half over the wire; their events must stop.
	for i := 0; i < len(subs); i += 2 {
		if err := subs[i].Unsubscribe(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range subs {
		want := i % 2 // odd IDs still subscribed
		n, err := cli.Publish(event.New().Set("k", i))
		if err != nil || n != want {
			t.Fatalf("post-unsubscribe Publish k=%d = %d, %v (want %d)", i, n, err, want)
		}
	}
}
