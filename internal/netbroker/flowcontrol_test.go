package netbroker

import (
	"errors"
	"testing"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/sublang"
)

// TestPublishBusyUnderCongestion drives the embedded broker into congestion
// with a deliberately stalled subscriber and checks that publishes are
// rejected with the MsgBusy backpressure reply — and accepted again once
// the subscriber drains.
func TestPublishBusyUnderCongestion(t *testing.T) {
	const retryAfter = 250 * time.Millisecond
	addr, srv := startServer(t, ServerOptions{
		Broker:     broker.Options{QueueSize: 1},
		RetryAfter: retryAfter,
	})

	expr, err := sublang.Parse(`kind = "x"`)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	sub, err := srv.Broker().Subscribe(expr, func(event.Event) { <-block })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// One event stalls in the handler, one fills the queue, one overflows
	// and flips the subscription congested. None of these publishes may be
	// rejected — congestion starts only once a drop happens.
	ev := event.New().Set("kind", "x")
	for i := 0; i < 3; i++ {
		if _, err := cli.Publish(ev); err != nil {
			t.Fatalf("publish %d before congestion: %v", i, err)
		}
	}

	var busy *BusyError
	_, pubErr := cli.Publish(ev)
	if !errors.As(pubErr, &busy) {
		t.Fatalf("publish while congested: err = %v, want *BusyError", pubErr)
	}
	if !errors.Is(pubErr, ErrBusy) {
		t.Errorf("errors.Is(err, ErrBusy) = false")
	}
	if busy.RetryAfter != retryAfter {
		t.Errorf("RetryAfter = %v, want %v", busy.RetryAfter, retryAfter)
	}
	if _, err := cli.PublishBatch([]event.Event{ev, ev}); !errors.Is(err, ErrBusy) {
		t.Errorf("batch publish while congested: err = %v, want ErrBusy", err)
	}
	if subs := srv.Broker().Stats().CongestedSubscribers; subs != 1 {
		t.Errorf("CongestedSubscribers = %d, want 1", subs)
	}

	// Unblock the handler; the queue drains, congestion clears and
	// publishes flow again.
	close(block)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cli.Publish(ev); err == nil {
			break
		} else if !errors.Is(err, ErrBusy) {
			t.Fatalf("publish while draining: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("broker never recovered from congestion")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
