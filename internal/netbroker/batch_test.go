package netbroker

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/wire"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// TestPublishBatchPartialCounts pins the per-event reply accounting: a
// batch whose events match one, zero and two subscriptions respectively
// must come back as [1 0 2], and every matched event must reach its
// subscribers.
func TestPublishBatchPartialCounts(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	subA, err := cli.Subscribe(`a = 1`)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := cli.Subscribe(`b = 2`)
	if err != nil {
		t.Fatal(err)
	}

	evs := []event.Event{
		event.New().Set("a", 1),             // matches subA only
		event.New().Set("a", 9).Set("b", 9), // matches nothing
		event.New().Set("a", 1).Set("b", 2), // matches both
	}
	counts, err := cli.PublishBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 0, 2}; len(counts) != len(want) ||
		counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] {
		t.Fatalf("counts = %v, want %v", counts, want)
	}

	// subA receives events 0 and 2; subB receives event 2.
	for i, want := range []event.Event{evs[0], evs[2]} {
		if got := recvEvent(t, subA.C()); !got.Equal(want) {
			t.Fatalf("subA event %d: got %s, want %s", i, got, want)
		}
	}
	if got := recvEvent(t, subB.C()); !got.Equal(evs[2]) {
		t.Fatalf("subB: got %s, want %s", got, evs[2])
	}
}

// TestPublishBatchEmptyAndChunked covers the degenerate and oversized
// client-side cases: an empty batch is a no-op, and a batch larger than
// one frame's event limit is split transparently with counts for every
// event.
func TestPublishBatchEmptyAndChunked(t *testing.T) {
	// The queue must hold the whole batch: enqueue counts only reach
	// len(evs) when nothing is dropped on a full subscriber queue.
	addr, _ := startServer(t, ServerOptions{Broker: broker.Options{QueueSize: 2 * wire.MaxBatchEvents}})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if counts, err := cli.PublishBatch(nil); err != nil || len(counts) != 0 {
		t.Fatalf("empty batch: %v, %v", counts, err)
	}

	if _, err := cli.Subscribe(`a >= 0`); err != nil {
		t.Fatal(err)
	}
	n := wire.MaxBatchEvents + 3
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.New().Set("a", i)
	}
	counts, err := cli.PublishBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != n {
		t.Fatalf("got %d counts, want %d", len(counts), n)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("count[%d] = %d, want 1", i, c)
		}
	}
}

// TestOversizedBatchRejectedWithoutDisconnect sends a raw MsgPublishBatch
// frame whose event count exceeds wire.MaxBatchEvents. The server must
// answer with MsgError and keep serving the connection — a bad request is
// not a protocol violation.
func TestOversizedBatchRejectedWithoutDisconnect(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	payload := wire.AppendU32(nil, 1) // reqID
	payload = wire.AppendU32(payload, wire.MaxBatchEvents+1)
	if err := wire.WriteFrame(nc, wire.MsgPublishBatch, payload); err != nil {
		t.Fatal(err)
	}
	typ, resp, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("response type = 0x%02x, want MsgError", typ)
	}
	_, rest, err := wire.ReadU32(resp)
	if err != nil {
		t.Fatal(err)
	}
	msg, _, err := wire.ReadString(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "batch") {
		t.Errorf("error message %q does not mention the batch", msg)
	}

	// The connection must still serve requests: ping it.
	if err := wire.WriteFrame(nc, wire.MsgPing, wire.AppendU32(nil, 2)); err != nil {
		t.Fatal(err)
	}
	typ, resp, err = wire.ReadFrame(nc)
	if err != nil {
		t.Fatalf("connection dead after oversized batch: %v", err)
	}
	if typ != wire.MsgPong {
		t.Fatalf("post-reject response type = 0x%02x, want MsgPong", typ)
	}
	if id, _, _ := wire.ReadU32(resp); id != 2 {
		t.Fatalf("pong reqID = %d, want 2", id)
	}
}

// TestMalformedBatchRejectedWithoutDisconnect: a batch whose count
// overruns its payload is malformed, but the frame was well-delimited —
// error reply, connection stays up.
func TestMalformedBatchRejectedWithoutDisconnect(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	payload := wire.AppendU32(nil, 1)       // reqID
	payload = wire.AppendU32(payload, 1000) // promises 1000 events
	payload = append(payload, 0x00)         // delivers one stray byte
	if err := wire.WriteFrame(nc, wire.MsgPublishBatch, payload); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("response type = 0x%02x, want MsgError", typ)
	}
	if err := wire.WriteFrame(nc, wire.MsgPing, wire.AppendU32(nil, 2)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err = wire.ReadFrame(nc); err != nil || typ != wire.MsgPong {
		t.Fatalf("connection unusable after malformed batch: type 0x%02x, %v", typ, err)
	}
}

// TestBatchInterleavedWithConcurrentSubscribers races batch publishers
// against clients that subscribe, receive and unsubscribe, over real TCP
// connections. Every batch must come back fully counted, and subscribers
// that stay put must keep receiving.
func TestBatchInterleavedWithConcurrentSubscribers(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{Broker: broker.Options{Shards: 4, QueueSize: 256}})

	stable, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stable.Close()
	stableSub, err := stable.Subscribe(`stable = true`)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		churnWG.Add(1)
		go func(w int) {
			defer churnWG.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Errorf("churn dial: %v", err)
				return
			}
			defer cli.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := cli.Subscribe(fmt.Sprintf(`w%d = %d`, w, i%5))
				if err != nil {
					t.Errorf("churn subscribe: %v", err)
					return
				}
				if err := sub.Unsubscribe(); err != nil {
					t.Errorf("churn unsubscribe: %v", err)
					return
				}
			}
		}(w)
	}

	var pubWG sync.WaitGroup
	const publishers, batches, batchSize = 3, 20, 16
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Errorf("publisher dial: %v", err)
				return
			}
			defer cli.Close()
			for i := 0; i < batches; i++ {
				evs := make([]event.Event, batchSize)
				for j := range evs {
					evs[j] = event.New().Set("stable", true).Set("p", p).Set("i", i*batchSize+j)
				}
				counts, err := cli.PublishBatch(evs)
				if err != nil {
					t.Errorf("publisher %d: %v", p, err)
					return
				}
				if len(counts) != batchSize {
					t.Errorf("publisher %d: %d counts for %d events", p, len(counts), batchSize)
					return
				}
				for j, n := range counts {
					// The stable subscription matches every event; churn
					// subscriptions may add more.
					if n < 1 {
						t.Errorf("publisher %d batch %d event %d: count %d < 1", p, i, j, n)
						return
					}
				}
			}
		}(p)
	}
	pubWG.Wait()
	close(stop)
	churnWG.Wait()

	// The stable subscriber sees every published event (publishers×batches×
	// batchSize), minus any dropped beyond its buffers; require at least one
	// full batch to prove pushes flowed during the interleaving.
	received := 0
	deadline := time.After(10 * time.Second)
	for received < publishers*batches*batchSize {
		select {
		case _, ok := <-stableSub.C():
			if !ok {
				t.Fatal("stable subscription channel closed")
			}
			received++
		case <-deadline:
			t.Fatalf("timed out with %d events received", received)
		case <-time.After(200 * time.Millisecond):
			// Quiescent: everything still in flight has been dropped on a
			// full buffer. Accept if we saw a meaningful stream.
			if received >= batchSize {
				return
			}
			t.Fatalf("stream stalled after only %d events", received)
		}
	}
}

// TestBatchPublisherFlushAndThresholds covers the auto-flushing writer:
// a size-threshold flush happens without waiting for the timer, a
// sub-threshold batch flushes after MaxDelay, Flush forces the rest out,
// and Close is terminal.
func TestBatchPublisherFlushAndThresholds(t *testing.T) {
	addr, srv := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(`n >= 0`); err != nil {
		t.Fatal(err)
	}

	pub := NewBatchPublisher(cli, BatchPublisherOptions{MaxBatch: 4, MaxDelay: 50 * time.Millisecond})
	published := func() uint64 { return pub.Published() }

	// Size threshold: 4 events flush promptly, well inside MaxDelay.
	for i := 0; i < 4; i++ {
		if err := pub.Publish(event.New().Set("n", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return published() == 4 }, "size-threshold flush did not happen")

	// Latency threshold: a lone event flushes after ~MaxDelay.
	if err := pub.Publish(event.New().Set("n", 99)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return published() == 5 }, "latency-threshold flush did not happen")

	// Flush forces pending events out immediately.
	if err := pub.Publish(event.New().Set("n", 100)); err != nil {
		t.Fatal(err)
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := published(); got != 6 {
		t.Fatalf("after Flush: published = %d, want 6", got)
	}

	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(event.New().Set("n", 101)); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Publish after Close = %v, want ErrClientClosed", err)
	}
	if err := pub.Flush(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Flush after Close = %v, want ErrClientClosed", err)
	}
	if err := pub.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}

	// All six events reached the broker.
	if got := srv.Broker().Stats().Published; got != 6 {
		t.Fatalf("broker saw %d events, want 6", got)
	}
}

// TestBatchPublisherCloseFlushesPending: events accepted before Close are
// delivered by it, and concurrent publishers hammering one BatchPublisher
// under -race stay consistent.
func TestBatchPublisherCloseFlushesPending(t *testing.T) {
	addr, srv := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	pub := NewBatchPublisher(cli, BatchPublisherOptions{MaxBatch: 32, MaxDelay: time.Hour, QueueSize: 4096})
	const workers, perWorker = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := pub.Publish(event.New().Set("w", w).Set("i", i)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	want := uint64(workers*perWorker) - pub.Dropped()
	if got := pub.Published(); got != want {
		t.Fatalf("published %d, want %d (dropped %d)", got, want, pub.Dropped())
	}
	if got := srv.Broker().Stats().Published; got != want {
		t.Fatalf("broker saw %d events, want %d", got, want)
	}
	if pub.Dropped() != 0 {
		t.Logf("note: %d events dropped on intake (queue sized to avoid this)", pub.Dropped())
	}
}

// TestPublishBatchChunksBySize: a batch whose encoded form exceeds one
// frame must split by payload size, not just event count, and still come
// back fully counted.
func TestPublishBatchChunksBySize(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{Broker: broker.Options{QueueSize: 2 * wire.MaxBatchEvents}})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Subscribe(`big = true`); err != nil {
		t.Fatal(err)
	}

	// ~1000 events × ~2 KiB ≈ 2 MiB encoded: far beyond MaxFrameSize but
	// nowhere near MaxBatchEvents, so only size-based chunking can pass.
	blob := strings.Repeat("x", 2048)
	const n = 1000
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.New().Set("big", true).Set("i", i).Set("blob", blob)
	}
	counts, err := cli.PublishBatch(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != n {
		t.Fatalf("got %d counts, want %d", len(counts), n)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("count[%d] = %d, want 1", i, c)
		}
	}
}

// TestBatchPublisherLostAccounting: when a flush fails, events the broker
// never acknowledged are counted as Lost, and accepted events reconcile
// across Published+Dropped+Lost.
func TestBatchPublisherLostAccounting(t *testing.T) {
	addr, _ := startServer(t, ServerOptions{})
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	pub := NewBatchPublisher(cli, BatchPublisherOptions{MaxBatch: 64, MaxDelay: time.Hour})
	const accepted = 5
	for i := 0; i < accepted; i++ {
		if err := pub.Publish(event.New().Set("n", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the connection under the publisher, then force a flush.
	cli.Close()
	if err := pub.Flush(); err == nil {
		t.Fatal("Flush over a dead client reported success")
	}
	if err := pub.Close(); err == nil {
		t.Fatal("Close after failed flush reported success")
	}
	got := pub.Published() + pub.Dropped() + pub.Lost()
	if got != accepted {
		t.Fatalf("Published %d + Dropped %d + Lost %d = %d, want %d",
			pub.Published(), pub.Dropped(), pub.Lost(), got, accepted)
	}
	if pub.Lost() == 0 {
		t.Fatal("failed flush recorded no Lost events")
	}
}
