package netbroker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"noncanon/internal/event"
	"noncanon/internal/wire"
)

// Client errors.
var (
	// ErrClientClosed is returned by operations on a closed client.
	ErrClientClosed = errors.New("netbroker: client closed")
	// ErrRemote wraps error messages returned by the broker.
	ErrRemote = errors.New("netbroker: remote error")
	// ErrBusy matches (errors.Is) publish rejections caused by broker
	// congestion; the concrete error is a *BusyError carrying the hint.
	ErrBusy = errors.New("netbroker: broker busy")
)

// BusyError is a publish rejection under backpressure: the broker is
// congested and asks the publisher to retry after the hinted delay. It
// matches ErrBusy via errors.Is.
type BusyError struct {
	// RetryAfter is the server's suggested delay before retrying.
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("netbroker: broker busy, retry after %v", e.RetryAfter)
}

// Is reports ErrBusy as a match, so errors.Is(err, ErrBusy) works without
// unwrapping to the concrete type.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// busyError builds the *BusyError for a MsgBusy response payload (the
// retry-after hint in milliseconds; the request ID was already consumed).
func busyError(payload []byte) error {
	millis, _, err := wire.ReadU32(payload)
	if err != nil {
		return fmt.Errorf("%w: malformed busy reply: %v", ErrRemote, err)
	}
	return &BusyError{RetryAfter: time.Duration(millis) * time.Millisecond}
}

// DefaultSubBuffer is the per-subscription client-side event buffer.
const DefaultSubBuffer = 64

// Client is a broker connection. It is safe for concurrent use; requests
// are multiplexed over the connection by request ID.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serialises frame writes

	mu      sync.Mutex
	pending map[uint32]chan response
	subs    map[uint64]*ClientSub
	closed  bool
	readErr error

	reqID atomic.Uint32
	wg    sync.WaitGroup
}

type response struct {
	typ     byte
	payload []byte
}

// ClientSub is a live remote subscription. Events arrive on C; events
// beyond the buffer are dropped client-side (Dropped counts them).
type ClientSub struct {
	id      uint64
	c       *Client
	ch      chan event.Event
	dropped atomic.Uint64
	once    sync.Once
}

// Dial connects to a broker server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netbroker: dial %s: %w", addr, err)
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:      nc,
		pending: make(map[uint32]chan response),
		subs:    make(map[uint64]*ClientSub),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	var buf []byte // reused frame buffer; payloads below alias it
	for {
		typ, payload, bufOut, err := wire.ReadFrameInto(c.nc, buf)
		buf = bufOut
		if err != nil {
			c.failAll(err)
			return
		}
		if typ == wire.MsgEvent {
			c.dispatchEvent(payload)
			continue
		}
		reqID, rest, err := wire.ReadU32(payload)
		if err != nil {
			c.failAll(fmt.Errorf("netbroker: malformed response: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[reqID]
		delete(c.pending, reqID)
		c.mu.Unlock()
		if ok {
			// The waiter consumes the payload after this loop has moved
			// on to the next frame, so it must not alias the reused
			// buffer. Responses are small (counts, IDs, error strings);
			// the copy is cheap next to the round trip it concludes.
			ch <- response{typ: typ, payload: append([]byte(nil), rest...)}
		}
	}
}

func (c *Client) dispatchEvent(payload []byte) {
	subID, rest, err := wire.ReadU64(payload)
	if err != nil {
		return
	}
	// Alias decode, then Retain before the channel send: the subscriber
	// drains sub.ch at its own pace, long after the frame buffer has been
	// overwritten, so the event must own its strings by then. Retain
	// copies only the volatile ones (un-interned names, string values).
	ev, _, err := wire.ReadEventAlias(rest)
	if err != nil {
		return
	}
	ev = ev.Retain()
	c.mu.Lock()
	sub := c.subs[subID]
	c.mu.Unlock()
	if sub == nil {
		return // raced with unsubscribe
	}
	select {
	case sub.ch <- ev:
	default:
		sub.dropped.Add(1)
	}
}

// failAll wakes every pending request and closes subscription channels.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	pending := c.pending
	c.pending = make(map[uint32]chan response)
	subs := c.subs
	c.subs = make(map[uint64]*ClientSub)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	for _, s := range subs {
		close(s.ch)
	}
}

// roundTrip sends a request frame and waits for its response.
func (c *Client) roundTrip(typ byte, build func(reqID uint32) []byte) (response, error) {
	id := c.reqID.Add(1)
	ch := make(chan response, 1)

	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return response{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.WriteFrame(c.nc, typ, build(id))
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return response{}, fmt.Errorf("netbroker: send: %w", err)
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return response{}, err
	}
	if resp.typ == wire.MsgError {
		msg, _, merr := wire.ReadString(resp.payload)
		if merr != nil {
			msg = "unreadable error payload"
		}
		return response{}, fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	return resp, nil
}

// Subscribe registers a textual subscription and returns the event stream.
func (c *Client) Subscribe(sub string) (*ClientSub, error) {
	resp, err := c.roundTrip(wire.MsgSubscribe, func(id uint32) []byte {
		b := wire.AppendU32(nil, id)
		return wire.AppendString(b, sub)
	})
	if err != nil {
		return nil, err
	}
	if resp.typ != wire.MsgSubscribed {
		return nil, fmt.Errorf("%w: unexpected response type 0x%02x", ErrRemote, resp.typ)
	}
	subID, _, err := wire.ReadU64(resp.payload)
	if err != nil {
		return nil, err
	}
	s := &ClientSub{id: subID, c: c, ch: make(chan event.Event, DefaultSubBuffer)}
	c.mu.Lock()
	c.subs[subID] = s
	c.mu.Unlock()
	return s, nil
}

// ID returns the server-side subscription ID.
func (s *ClientSub) ID() uint64 { return s.id }

// C returns the event stream. It is closed on Unsubscribe or connection
// loss.
func (s *ClientSub) C() <-chan event.Event { return s.ch }

// Dropped reports events discarded because the local buffer was full.
func (s *ClientSub) Dropped() uint64 { return s.dropped.Load() }

// Unsubscribe removes the subscription at the broker and closes C.
func (s *ClientSub) Unsubscribe() error {
	var err error
	s.once.Do(func() {
		s.c.mu.Lock()
		_, live := s.c.subs[s.id]
		delete(s.c.subs, s.id)
		s.c.mu.Unlock()
		if live {
			_, err = s.c.roundTrip(wire.MsgUnsubscribe, func(id uint32) []byte {
				b := wire.AppendU32(nil, id)
				return wire.AppendU64(b, s.id)
			})
			close(s.ch)
		}
	})
	return err
}

// Publish sends an event and returns the number of subscriptions it matched
// at the broker.
func (c *Client) Publish(ev event.Event) (int, error) {
	resp, err := c.roundTrip(wire.MsgPublish, func(id uint32) []byte {
		b := wire.AppendU32(nil, id)
		return wire.AppendEvent(b, ev)
	})
	if err != nil {
		return 0, err
	}
	if resp.typ == wire.MsgBusy {
		return 0, busyError(resp.payload)
	}
	if resp.typ != wire.MsgPublished {
		return 0, fmt.Errorf("%w: unexpected response type 0x%02x", ErrRemote, resp.typ)
	}
	n, _, err := wire.ReadU32(resp.payload)
	return int(n), err
}

// PublishBatch sends a batch of events in as few frames as possible and
// returns the per-event matched-subscription counts, aligned with evs. A
// batch costs one request round trip per chunk instead of one per event,
// which is the whole point: over TCP the round trip, not the matching,
// dominates per-event publish cost.
//
// Chunking is transparent and bounded both ways: a chunk closes at
// wire.MaxBatchEvents events or when its encoded payload would exceed
// the frame size limit, whichever comes first, so batches of many large
// events split rather than fail. Only a single event too large for one
// frame is unsendable (ErrFrameTooLarge).
//
// On error the returned counts are still valid for the events already
// acknowledged — a prefix of evs — so callers can account for what the
// broker actually enqueued before the failure.
func (c *Client) PublishBatch(evs []event.Event) ([]int, error) {
	if len(evs) == 0 {
		return nil, nil
	}
	// chunkBudget is what a chunk's encoded events may occupy: the frame
	// limit minus the type byte, request ID and event count.
	const chunkBudget = wire.MaxFrameSize - 1 - 4 - 4
	counts := make([]int, 0, len(evs))
	var body, scratch []byte
	n := 0
	sendChunk := func() error {
		if n == 0 {
			return nil
		}
		got, err := c.publishChunk(n, body)
		if err != nil {
			return err
		}
		counts = append(counts, got...)
		body, n = body[:0], 0
		return nil
	}
	for _, ev := range evs {
		scratch = wire.AppendEvent(scratch[:0], ev)
		if n > 0 && (n >= wire.MaxBatchEvents || len(body)+len(scratch) > chunkBudget) {
			if err := sendChunk(); err != nil {
				return counts, err
			}
		}
		body = append(body, scratch...)
		n++
	}
	if err := sendChunk(); err != nil {
		return counts, err
	}
	return counts, nil
}

// publishChunk round-trips one MsgPublishBatch frame carrying n
// pre-encoded events.
func (c *Client) publishChunk(n int, body []byte) ([]int, error) {
	resp, err := c.roundTrip(wire.MsgPublishBatch, func(id uint32) []byte {
		b := wire.AppendU32(make([]byte, 0, 8+len(body)), id)
		b = wire.AppendU32(b, uint32(n))
		return append(b, body...)
	})
	if err != nil {
		return nil, err
	}
	if resp.typ == wire.MsgBusy {
		return nil, busyError(resp.payload)
	}
	if resp.typ != wire.MsgPublishedBatch {
		return nil, fmt.Errorf("%w: unexpected response type 0x%02x", ErrRemote, resp.typ)
	}
	got, rest, err := wire.ReadU32(resp.payload)
	if err != nil {
		return nil, err
	}
	if int(got) != n {
		return nil, fmt.Errorf("%w: batch reply counts %d events, sent %d", ErrRemote, got, n)
	}
	counts := make([]int, got)
	for i := range counts {
		var v uint32
		v, rest, err = wire.ReadU32(rest)
		if err != nil {
			return nil, err
		}
		counts[i] = int(v)
	}
	return counts, nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(wire.MsgPing, func(id uint32) []byte {
		return wire.AppendU32(nil, id)
	})
	if err != nil {
		return err
	}
	if resp.typ != wire.MsgPong {
		return fmt.Errorf("%w: unexpected response type 0x%02x", ErrRemote, resp.typ)
	}
	return nil
}

// Close tears down the connection; pending requests fail and subscription
// channels close.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	c.wg.Wait()
	return err
}
