package substore

import (
	"math/rand"
	"path/filepath"
	"testing"

	"noncanon/internal/predicate"
	"noncanon/internal/subtree"
	"noncanon/internal/workload"
)

// benchStore fills a store with compiled Table 1 subscription trees and
// returns the locations. This measures the F1 extension: candidate
// evaluation over trees that live on disk instead of the heap.
func benchStore(b *testing.B, s Store, n int) []Loc {
	b.Helper()
	params := workload.Params{NumSubscriptions: n, PredsPerSub: 10}
	var next predicate.ID
	intern := func(predicate.P) predicate.ID { next++; return next }
	locs := make([]Loc, n)
	for i := 0; i < n; i++ {
		c, err := subtree.Compile(params.Sub(i), intern, subtree.Options{})
		if err != nil {
			b.Fatal(err)
		}
		loc, err := s.Put(c.Code)
		if err != nil {
			b.Fatal(err)
		}
		locs[i] = loc
	}
	return locs
}

// evalFrom simulates candidate evaluation: fetch the tree and evaluate it
// against an empty fulfilled set.
func evalFrom(b *testing.B, s Store, locs []Loc, rng *rand.Rand) {
	b.Helper()
	loc := locs[rng.Intn(len(locs))]
	code, err := s.Get(loc)
	if err != nil {
		b.Fatal(err)
	}
	subtree.EvalMarked(code, nil, 1)
}

func BenchmarkCandidateEvalMem(b *testing.B) {
	s := NewMemStore()
	defer s.Close()
	locs := benchStore(b, s, 10_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalFrom(b, s, locs, rng)
	}
}

func BenchmarkCandidateEvalDiskHot(b *testing.B) {
	// Cache large enough for the full working set: disk store at memory
	// speed after warm-up.
	s, err := NewDiskStore(filepath.Join(b.TempDir(), "t.dat"), DiskStoreOptions{CacheBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	locs := benchStore(b, s, 10_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalFrom(b, s, locs, rng)
	}
}

func BenchmarkCandidateEvalDiskCold(b *testing.B) {
	// Cache a tiny fraction of the trees: most candidate fetches hit the
	// file (page cache in practice — still far cheaper than 2005 swap).
	s, err := NewDiskStore(filepath.Join(b.TempDir(), "t.dat"), DiskStoreOptions{CacheBytes: 8 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	locs := benchStore(b, s, 10_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalFrom(b, s, locs, rng)
	}
}
