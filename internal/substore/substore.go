// Package substore implements subscription-tree storage beyond main
// memory — the paper's §5 future work ("the development of filtering
// strategies exploiting other resources than main memory").
//
// A Store maps locations to encoded subscription trees (the loc(s) values
// of the paper's subscription location table). MemStore keeps trees on the
// heap, matching the in-memory engine. DiskStore keeps them in a single
// record file with an in-memory offset table and a byte-bounded LRU cache
// of hot trees: candidate evaluation touches only the trees of candidate
// subscriptions, so a cache sized to the working set preserves matching
// speed while the bulk of subscription storage moves to disk.
package substore

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Loc locates a stored subscription tree.
type Loc uint64

// Store abstracts subscription-tree storage.
type Store interface {
	// Put stores a tree and returns its location.
	Put(code []byte) (Loc, error)
	// Get retrieves the tree at loc. The returned slice must be treated as
	// read-only and is only valid until the next store operation.
	Get(loc Loc) ([]byte, error)
	// Free releases the tree at loc.
	Free(loc Loc) error
	// Len returns the number of stored trees.
	Len() int
	// MemBytes estimates resident main-memory bytes (for DiskStore this
	// excludes the file itself — that is the point).
	MemBytes() int
	// Close releases resources.
	Close() error
}

// Store errors.
var (
	ErrUnknownLoc = errors.New("substore: unknown location")
	ErrClosed     = errors.New("substore: closed")
)

// --- MemStore ---

// MemStore is heap storage; Loc is an index into a slot table.
type MemStore struct {
	mu    sync.Mutex
	slots [][]byte
	free  []Loc
	n     int
	bytes int
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Put implements Store.
func (s *MemStore) Put(code []byte) (Loc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// make (not append to nil) so that zero-length trees stay non-nil:
	// a nil slot marks a freed location.
	cp := make([]byte, len(code))
	copy(cp, code)
	var loc Loc
	if n := len(s.free); n > 0 {
		loc = s.free[n-1]
		s.free = s.free[:n-1]
		s.slots[loc] = cp
	} else {
		s.slots = append(s.slots, cp)
		loc = Loc(len(s.slots) - 1)
	}
	s.n++
	s.bytes += len(cp)
	return loc, nil
}

// Get implements Store.
func (s *MemStore) Get(loc Loc) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(loc) >= len(s.slots) || s.slots[loc] == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownLoc, loc)
	}
	return s.slots[loc], nil
}

// Free implements Store.
func (s *MemStore) Free(loc Loc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(loc) >= len(s.slots) || s.slots[loc] == nil {
		return fmt.Errorf("%w: %d", ErrUnknownLoc, loc)
	}
	s.bytes -= len(s.slots[loc])
	s.slots[loc] = nil
	s.free = append(s.free, loc)
	s.n--
	return nil
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// MemBytes implements Store.
func (s *MemStore) MemBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	const sliceHeader = 24
	return s.bytes + len(s.slots)*sliceHeader + len(s.free)*8
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// --- DiskStore ---

// recordHeader is [u32 capacity][u32 length]; records are reused for new
// trees that fit their capacity.
const recordHeader = 8

// DiskStoreOptions tunes the disk store.
type DiskStoreOptions struct {
	// CacheBytes bounds the LRU cache of decoded trees (default 1 MiB;
	// 0 uses the default, negative disables caching).
	CacheBytes int
}

// DiskStore keeps trees in a record file. The offset table, free list and
// LRU cache live in main memory.
type DiskStore struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	end    int64         // append offset
	live   map[Loc]int   // loc → payload length
	frees  map[int][]Loc // capacity → reusable records
	closed bool

	cacheCap   int
	cacheBytes int
	cache      map[Loc]*list.Element
	lru        *list.List // front = most recent; values are cacheEntry

	hits, misses uint64
}

type cacheEntry struct {
	loc  Loc
	code []byte
}

var _ Store = (*DiskStore)(nil)

// NewDiskStore creates (truncating) a record file at path.
func NewDiskStore(path string, opts DiskStoreOptions) (*DiskStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("substore: open %s: %w", path, err)
	}
	cacheCap := opts.CacheBytes
	if cacheCap == 0 {
		cacheCap = 1 << 20
	}
	if cacheCap < 0 {
		cacheCap = 0
	}
	return &DiskStore{
		f:        f,
		path:     path,
		live:     make(map[Loc]int),
		frees:    make(map[int][]Loc),
		cacheCap: cacheCap,
		cache:    make(map[Loc]*list.Element),
		lru:      list.New(),
	}, nil
}

// Put implements Store.
func (s *DiskStore) Put(code []byte) (Loc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	capacity := len(code)
	var off int64
	if locs := s.frees[capacity]; len(locs) > 0 {
		off = int64(locs[len(locs)-1])
		s.frees[capacity] = locs[:len(locs)-1]
	} else {
		off = s.end
		s.end += int64(recordHeader + capacity)
	}
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(capacity))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(code)))
	if _, err := s.f.WriteAt(hdr[:], off); err != nil {
		return 0, fmt.Errorf("substore: write header: %w", err)
	}
	if _, err := s.f.WriteAt(code, off+recordHeader); err != nil {
		return 0, fmt.Errorf("substore: write record: %w", err)
	}
	loc := Loc(off)
	s.live[loc] = len(code)
	s.cachePutLocked(loc, append([]byte(nil), code...))
	return loc, nil
}

// Get implements Store.
func (s *DiskStore) Get(loc Loc) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	n, ok := s.live[loc]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownLoc, loc)
	}
	if el, ok := s.cache[loc]; ok {
		s.hits++
		s.lru.MoveToFront(el)
		return el.Value.(cacheEntry).code, nil
	}
	s.misses++
	code := make([]byte, n)
	if _, err := s.f.ReadAt(code, int64(loc)+recordHeader); err != nil {
		return nil, fmt.Errorf("substore: read record: %w", err)
	}
	s.cachePutLocked(loc, code)
	return code, nil
}

// Free implements Store.
func (s *DiskStore) Free(loc Loc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.live[loc]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownLoc, loc)
	}
	var hdr [4]byte
	if _, err := s.f.ReadAt(hdr[:], int64(loc)); err != nil {
		return fmt.Errorf("substore: read capacity: %w", err)
	}
	capacity := int(binary.LittleEndian.Uint32(hdr[:]))
	delete(s.live, loc)
	s.frees[capacity] = append(s.frees[capacity], loc)
	if el, ok := s.cache[loc]; ok {
		s.cacheBytes -= len(el.Value.(cacheEntry).code)
		s.lru.Remove(el)
		delete(s.cache, loc)
	}
	return nil
}

func (s *DiskStore) cachePutLocked(loc Loc, code []byte) {
	if s.cacheCap == 0 || len(code) > s.cacheCap {
		return
	}
	if el, ok := s.cache[loc]; ok {
		s.cacheBytes += len(code) - len(el.Value.(cacheEntry).code)
		el.Value = cacheEntry{loc: loc, code: code}
		s.lru.MoveToFront(el)
	} else {
		s.cache[loc] = s.lru.PushFront(cacheEntry{loc: loc, code: code})
		s.cacheBytes += len(code)
	}
	for s.cacheBytes > s.cacheCap {
		el := s.lru.Back()
		if el == nil {
			break
		}
		ent := el.Value.(cacheEntry)
		s.cacheBytes -= len(ent.code)
		s.lru.Remove(el)
		delete(s.cache, ent.loc)
	}
}

// Len implements Store.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// MemBytes implements Store: offset table, free lists and cache — the
// resident footprint that replaces full in-heap tree storage.
func (s *DiskStore) MemBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	const mapEntry = 48
	n := len(s.live)*mapEntry + s.cacheBytes + len(s.cache)*mapEntry
	for _, locs := range s.frees {
		n += mapEntry + len(locs)*8
	}
	return n
}

// FileBytes returns the record file size.
func (s *DiskStore) FileBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// CacheStats reports cache hits and misses.
func (s *DiskStore) CacheStats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Close removes the record file.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Close()
	if rmErr := os.Remove(s.path); err == nil {
		err = rmErr
	}
	return err
}
