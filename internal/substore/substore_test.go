package substore

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

// storeFactories builds each implementation for shared conformance tests.
func storeFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore() },
		"disk": func() Store {
			s, err := NewDiskStore(filepath.Join(t.TempDir(), "trees.dat"), DiskStoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"disk-nocache": func() Store {
			s, err := NewDiskStore(filepath.Join(t.TempDir(), "trees.dat"), DiskStoreOptions{CacheBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func TestPutGetFreeConformance(t *testing.T) {
	for name, mk := range storeFactories(t) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()

			codes := [][]byte{
				[]byte("alpha"),
				[]byte("beta-longer-record"),
				{},
				bytes.Repeat([]byte{0xCD}, 4096),
			}
			locs := make([]Loc, len(codes))
			for i, c := range codes {
				loc, err := s.Put(c)
				if err != nil {
					t.Fatalf("Put %d: %v", i, err)
				}
				locs[i] = loc
			}
			if s.Len() != len(codes) {
				t.Fatalf("Len = %d", s.Len())
			}
			for i, loc := range locs {
				got, err := s.Get(loc)
				if err != nil {
					t.Fatalf("Get %d: %v", i, err)
				}
				if !bytes.Equal(got, codes[i]) {
					t.Fatalf("Get %d: %d bytes, want %d", i, len(got), len(codes[i]))
				}
			}
			// Free and verify.
			if err := s.Free(locs[1]); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(locs[1]); !errors.Is(err, ErrUnknownLoc) {
				t.Errorf("Get after Free err = %v", err)
			}
			if err := s.Free(locs[1]); !errors.Is(err, ErrUnknownLoc) {
				t.Errorf("double Free err = %v", err)
			}
			if s.Len() != len(codes)-1 {
				t.Errorf("Len after free = %d", s.Len())
			}
			// Unknown loc.
			if _, err := s.Get(Loc(1 << 40)); !errors.Is(err, ErrUnknownLoc) {
				t.Errorf("unknown Get err = %v", err)
			}
			if s.MemBytes() < 0 {
				t.Error("negative MemBytes")
			}
		})
	}
}

func TestRandomisedAgainstModel(t *testing.T) {
	for name, mk := range storeFactories(t) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			rng := rand.New(rand.NewSource(9))
			model := map[Loc][]byte{}
			var locs []Loc
			for step := 0; step < 3000; step++ {
				switch {
				case len(locs) == 0 || rng.Intn(3) > 0:
					code := make([]byte, rng.Intn(200))
					rng.Read(code)
					loc, err := s.Put(code)
					if err != nil {
						t.Fatal(err)
					}
					if _, dup := model[loc]; dup {
						t.Fatalf("step %d: loc %d reused while live", step, loc)
					}
					model[loc] = code
					locs = append(locs, loc)
				case rng.Intn(2) == 0:
					i := rng.Intn(len(locs))
					loc := locs[i]
					got, err := s.Get(loc)
					if err != nil {
						t.Fatalf("step %d: Get: %v", step, err)
					}
					if !bytes.Equal(got, model[loc]) {
						t.Fatalf("step %d: content mismatch at %d", step, loc)
					}
				default:
					i := rng.Intn(len(locs))
					loc := locs[i]
					if err := s.Free(loc); err != nil {
						t.Fatalf("step %d: Free: %v", step, err)
					}
					delete(model, loc)
					locs = append(locs[:i], locs[i+1:]...)
				}
				if s.Len() != len(model) {
					t.Fatalf("step %d: Len=%d model=%d", step, s.Len(), len(model))
				}
			}
		})
	}
}

func TestDiskStoreRecordReuse(t *testing.T) {
	s, err := NewDiskStore(filepath.Join(t.TempDir(), "trees.dat"), DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code := bytes.Repeat([]byte{0xAA}, 100)
	loc1, err := s.Put(code)
	if err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := s.FileBytes()
	if err := s.Free(loc1); err != nil {
		t.Fatal(err)
	}
	// Same-size record reuses the freed slot: the file must not grow.
	loc2, err := s.Put(bytes.Repeat([]byte{0xBB}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if loc2 != loc1 {
		t.Errorf("freed record not reused: %d vs %d", loc2, loc1)
	}
	if s.FileBytes() != sizeAfterFirst {
		t.Errorf("file grew on reuse: %d -> %d", sizeAfterFirst, s.FileBytes())
	}
	got, err := s.Get(loc2)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xBB}, 100)) {
		t.Errorf("reused record content wrong: %v", err)
	}
}

func TestDiskStoreCacheEviction(t *testing.T) {
	s, err := NewDiskStore(filepath.Join(t.TempDir(), "trees.dat"), DiskStoreOptions{CacheBytes: 250})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var locs []Loc
	for i := 0; i < 10; i++ {
		loc, err := s.Put(bytes.Repeat([]byte{byte(i)}, 100)) // 100B each, cache fits 2
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	// Read them all; early ones must have been evicted, forcing misses.
	for _, loc := range locs {
		if _, err := s.Get(loc); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := s.CacheStats()
	if misses == 0 {
		t.Errorf("expected cache misses with a 250B cache; hits=%d misses=%d", hits, misses)
	}
	// Re-reading the most recent one must hit.
	h0, _ := s.CacheStats()
	if _, err := s.Get(locs[len(locs)-1]); err != nil {
		t.Fatal(err)
	}
	h1, _ := s.CacheStats()
	if h1 != h0+1 {
		t.Errorf("hot re-read should hit the cache: hits %d -> %d", h0, h1)
	}
}

func TestDiskStoreClosed(t *testing.T) {
	s, err := NewDiskStore(filepath.Join(t.TempDir(), "trees.dat"), DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := s.Put([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close err = %v", err)
	}
	if _, err := s.Get(loc); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close err = %v", err)
	}
	if err := s.Free(loc); !errors.Is(err, ErrClosed) {
		t.Errorf("Free after close err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestMemStoreSlotReuse(t *testing.T) {
	s := NewMemStore()
	loc1, _ := s.Put([]byte("a"))
	if err := s.Free(loc1); err != nil {
		t.Fatal(err)
	}
	loc2, _ := s.Put([]byte("b"))
	if loc2 != loc1 {
		t.Errorf("slot not reused: %d vs %d", loc2, loc1)
	}
}
