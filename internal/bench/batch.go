package bench

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/netbroker"
	"noncanon/internal/predicate"
)

// BatchPoint is one batch size of the batching sweep (experiment B1),
// measured over loopback TCP, quiet and again under subscription churn.
// Latencies are per publish call (one round trip), so a batch point's
// P50 covers Batch events.
type BatchPoint struct {
	Batch int

	// Quiet store: no concurrent Subscribe/Unsubscribe.
	EventsPerSec float64
	P50          time.Duration
	P99          time.Duration

	// Under churn: one writer loops Subscribe/Unsubscribe on the broker
	// while the same publication load runs.
	ChurnEventsPerSec float64
	ChurnP50          time.Duration
	ChurnP99          time.Duration
	ChurnOpsPerSec    float64 // sustained Subscribe+Unsubscribe ops
}

// BatchResult is the regenerated batching sweep.
type BatchResult struct {
	GOMAXPROCS int
	Subs       int
	Events     int // events published per measurement
	Points     []BatchPoint
}

// batchSizes returns the swept batch sizes. 1 is the unbatched baseline
// (the plain MsgPublish path); the rest amortise the round trip.
func batchSizes() []int { return []int{1, 4, 16, 64, 256} }

// batchSub builds a moderately selective subscription: one bucket
// equality plus a price band, so ~1/bucketCount of the store matches an
// event and delivery work stays proportional instead of all-pairs.
func batchSub(i int) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("bucket", predicate.Eq, int64(i/8)),
		boolexpr.NewOr(
			boolexpr.Pred("price", predicate.Gt, int64(i%1000)),
			boolexpr.Pred("price", predicate.Le, int64(i%1000)-500),
		),
	)
}

// batchEvent draws an event for the bucketed workload.
func batchEvent(rng *rand.Rand, buckets int) event.Event {
	return event.New().
		Set("bucket", int64(rng.Intn(buckets))).
		Set("price", int64(rng.Intn(1000)))
}

// MeasureBatch measures publish throughput and per-call latency against
// the batch size over a real loopback TCP connection — the pipeline the
// batching work targets: wire frame, server dispatch, broker lock, engine
// fan-out and per-subscriber enqueue, all amortised per batch.
//
// The same event sequence (same seed) is replayed at every batch size, so
// points differ only in how the events are framed.
func MeasureBatch(cfg Config) (BatchResult, error) {
	cfg = cfg.withDefaults()
	subs := scaleCount(100_000, cfg.Scale)
	events := 256 * cfg.Trials

	srv := netbroker.NewServer(netbroker.ServerOptions{
		Broker: broker.Options{QueueSize: 1024},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BatchResult{}, fmt.Errorf("bench: listen: %w", err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-serveDone
	}()

	for i := 0; i < subs; i++ {
		if _, err := srv.Broker().Subscribe(batchSub(i), func(event.Event) {}); err != nil {
			return BatchResult{}, fmt.Errorf("bench: batch subscribe %d: %w", i, err)
		}
	}

	cli, err := netbroker.Dial(ln.Addr().String())
	if err != nil {
		return BatchResult{}, fmt.Errorf("bench: dial: %w", err)
	}
	defer cli.Close()

	res := BatchResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Subs:       subs,
		Events:     events,
	}
	buckets := subs/8 + 1
	for _, size := range batchSizes() {
		pt := BatchPoint{Batch: size}
		pt.EventsPerSec, pt.P50, pt.P99, err = publishLatency(cli, cfg.Seed, events, size, buckets)
		if err != nil {
			return BatchResult{}, err
		}

		churn := newBrokerChurner(srv.Broker(), subs)
		pt.ChurnEventsPerSec, pt.ChurnP50, pt.ChurnP99, err = publishLatency(cli, cfg.Seed, events, size, buckets)
		ops := churn.stop()
		if err != nil {
			return BatchResult{}, err
		}
		pt.ChurnOpsPerSec = ops

		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// publishLatency publishes the deterministic event sequence in calls of
// `size` events and returns aggregate throughput with p50/p99 per-call
// latencies. One unmeasured warmup call precedes the measurement.
func publishLatency(cli *netbroker.Client, seed int64, events, size, buckets int) (evPerSec float64, p50, p99 time.Duration, err error) {
	rng := rand.New(rand.NewSource(seed + 11))
	evs := make([]event.Event, events)
	for i := range evs {
		evs[i] = batchEvent(rng, buckets)
	}

	// Warmup outside the measurement window.
	if size == 1 {
		if _, err := cli.Publish(evs[0]); err != nil {
			return 0, 0, 0, fmt.Errorf("bench: warmup publish: %w", err)
		}
	} else if _, err := cli.PublishBatch(evs[:size]); err != nil {
		return 0, 0, 0, fmt.Errorf("bench: warmup batch: %w", err)
	}

	durs := make([]time.Duration, 0, (events+size-1)/size)
	t0 := time.Now()
	for off := 0; off < events; off += size {
		end := off + size
		if end > events {
			end = events
		}
		c0 := time.Now()
		if size == 1 {
			_, err = cli.Publish(evs[off])
		} else {
			_, err = cli.PublishBatch(evs[off:end])
		}
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bench: publish (batch %d): %w", size, err)
		}
		durs = append(durs, time.Since(c0))
	}
	total := time.Since(t0)
	if total <= 0 {
		total = time.Nanosecond
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return float64(events) / total.Seconds(), percentile(durs, 50), percentile(durs, 99), nil
}

// brokerChurner drives one goroutine of maximal Subscribe/Unsubscribe
// load against the embedded broker, like the shard experiment's churner
// does against a bare engine.
type brokerChurner struct {
	ops  atomic.Int64
	quit chan struct{}
	done chan struct{}
	t0   time.Time
}

func newBrokerChurner(br *broker.Broker, base int) *brokerChurner {
	c := &brokerChurner{quit: make(chan struct{}), done: make(chan struct{}), t0: time.Now()}
	noop := func(event.Event) {}
	// One synchronous cycle guarantees measurable churn even when the
	// scheduler starves the background writer (tiny windows, 1 vCPU).
	if sub, err := br.Subscribe(batchSub(base), noop); err == nil {
		if err := sub.Unsubscribe(); err == nil {
			c.ops.Add(2)
		}
	}
	go func() {
		defer close(c.done)
		for i := 1; ; i++ {
			select {
			case <-c.quit:
				return
			default:
			}
			sub, err := br.Subscribe(batchSub(base+i), noop)
			if err != nil {
				return
			}
			if err := sub.Unsubscribe(); err != nil {
				return
			}
			c.ops.Add(2)
			// Yield between cycles: a publish round trip needs several
			// goroutine wakeups (client writer, server conn, broker), and a
			// spinning writer on a small box starves them for whole
			// preemption slices — the experiment measures lock and fan-out
			// interference, not scheduler monopolisation.
			runtime.Gosched()
		}
	}()
	return c
}

// stop ends the churn and returns its sustained operation rate.
func (c *brokerChurner) stop() float64 {
	close(c.quit)
	<-c.done
	dur := time.Since(c.t0).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(c.ops.Load()) / dur
}

// RunBatch regenerates the batching sweep and prints its series.
func RunBatch(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureBatch(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "batch,quiet_ev_s,quiet_p50_s,quiet_p99_s,churn_ev_s,churn_p50_s,churn_p99_s,churn_ops_s\n")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%d,%.1f,%.9f,%.9f,%.1f,%.9f,%.9f,%.1f\n",
				p.Batch, p.EventsPerSec, p.P50.Seconds(), p.P99.Seconds(),
				p.ChurnEventsPerSec, p.ChurnP50.Seconds(), p.ChurnP99.Seconds(), p.ChurnOpsPerSec)
		}
		return nil
	}
	fmt.Fprintf(w, "B1: batched publish vs batch size over loopback TCP (GOMAXPROCS %d)\n", res.GOMAXPROCS)
	fmt.Fprintf(w, "workload: %d bucketed subscriptions, %d events per point, one publisher connection\n", res.Subs, res.Events)
	fmt.Fprintf(w, "latencies are per publish call (a call carries `batch` events)\n\n")
	fmt.Fprintf(w, "%-8s %-12s %-10s %-10s | %-12s %-10s %-10s %-12s\n",
		"batch", "quiet ev/s", "p50", "p99", "churn ev/s", "p50", "p99", "churn ops/s")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-8d %-12.1f %-10s %-10s | %-12.1f %-10s %-10s %-12.1f\n",
			p.Batch, p.EventsPerSec, fmtDur(p.P50), fmtDur(p.P99),
			p.ChurnEventsPerSec, fmtDur(p.ChurnP50), fmtDur(p.ChurnP99), p.ChurnOpsPerSec)
	}
	fmt.Fprintln(w)
	return nil
}
