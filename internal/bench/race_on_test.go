//go:build race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector; see race_off_test.go.
const raceEnabled = true
