package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"noncanon/internal/event"
	"noncanon/internal/shard"
	"noncanon/internal/workload"
)

// ShardPoint is one shard count of the sharding sweep (experiment S1),
// measured quiet and again under maximal subscription churn.
type ShardPoint struct {
	Shards int

	// Quiet store: no concurrent Subscribe/Unsubscribe.
	EventsPerSec float64
	P50          time.Duration
	P99          time.Duration

	// Under churn: one writer loops Subscribe/Unsubscribe as fast as the
	// locks admit while the same matchers run.
	ChurnEventsPerSec float64
	ChurnP50          time.Duration
	ChurnP99          time.Duration
	ChurnOpsPerSec    float64 // sustained Subscribe+Unsubscribe ops
}

// ShardResult is the regenerated sharding sweep.
type ShardResult struct {
	GOMAXPROCS int
	Subs       int
	Workers    int
	Points     []ShardPoint
}

// shardCounts returns 1, 2, 4, … up to max(4, GOMAXPROCS): even a
// single-core box sweeps far enough to show the churn-isolation effect,
// which needs no parallel hardware — only independent locks.
func shardCounts() []int {
	max := runtime.GOMAXPROCS(0)
	if max < 4 {
		max = 4
	}
	return workerCounts(max)
}

// MeasureShard measures full-pipeline matching (phase 1 + 2, the broker's
// per-publication work) against the shard count, with and without
// concurrent subscription churn.
//
// Two separable effects appear:
//
//   - On a multi-core host the quiet series improves with shards up to
//     GOMAXPROCS: Match fans one event out across cores.
//   - Under churn the single-engine p99 collapses — every Subscribe
//     excludes all matching — while the sharded p99 holds, because a
//     writer locks one shard and matching proceeds on the other N-1.
//     This effect shows even on one core, where the quiet series is flat.
func MeasureShard(cfg Config) (ShardResult, error) {
	cfg = cfg.withDefaults()
	subs := scaleCount(1_000_000, cfg.Scale)
	params := workload.Params{
		NumSubscriptions:  subs,
		PredsPerSub:       6,
		FulfilledPerEvent: 5000,
		Seed:              cfg.Seed,
	}
	if err := params.Validate(); err != nil {
		return ShardResult{}, err
	}

	res := ShardResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Subs:       subs,
		Workers:    runtime.GOMAXPROCS(0),
	}
	perWorker := 30 * cfg.Trials
	for _, n := range shardCounts() {
		eng := shard.New(shard.Options{Shards: n})
		for i := 0; i < subs; i++ {
			if _, err := eng.Subscribe(params.Sub(i)); err != nil {
				return ShardResult{}, fmt.Errorf("bench: shard subscribe %d: %w", i, err)
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 5))
		events := make([]event.Event, 16)
		for i := range events {
			events[i] = params.Event(rng)
		}

		pt := ShardPoint{Shards: n}
		pt.EventsPerSec, pt.P50, pt.P99 = matchLatency(res.Workers, perWorker, events, eng)

		churn := newChurner(eng, params, subs)
		pt.ChurnEventsPerSec, pt.ChurnP50, pt.ChurnP99 = matchLatency(res.Workers, perWorker, events, eng)
		pt.ChurnOpsPerSec = churn.stop()

		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// churner drives one goroutine of maximal Subscribe/Unsubscribe load.
type churner struct {
	ops  atomic.Int64
	quit chan struct{}
	done chan struct{}
	t0   time.Time
}

func newChurner(eng *shard.Engine, params workload.Params, base int) *churner {
	c := &churner{quit: make(chan struct{}), done: make(chan struct{}), t0: time.Now()}
	// One synchronous cycle guarantees measurable churn even when the
	// scheduler starves the background writer (tiny windows, 1 vCPU).
	if id, err := eng.Subscribe(params.Sub(base)); err == nil {
		if err := eng.Unsubscribe(id); err == nil {
			c.ops.Add(2)
		}
	}
	go func() {
		defer close(c.done)
		for i := 1; ; i++ {
			select {
			case <-c.quit:
				return
			default:
			}
			id, err := eng.Subscribe(params.Sub(base + i))
			if err != nil {
				return
			}
			if err := eng.Unsubscribe(id); err != nil {
				return
			}
			c.ops.Add(2)
		}
	}()
	return c
}

// stop ends the churn and returns its sustained operation rate.
func (c *churner) stop() float64 {
	close(c.quit)
	<-c.done
	dur := time.Since(c.t0).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(c.ops.Load()) / dur
}

// matchLatency runs perWorker Match calls on each of w workers, recording
// every call's duration, and returns aggregate throughput with the p50
// and p99 latencies. One warmup call per worker precedes the measurement,
// mirroring timeMatch; any concurrent churn load is the caller's to run.
func matchLatency(w, perWorker int, events []event.Event, eng *shard.Engine) (evPerSec float64, p50, p99 time.Duration) {
	durs := make([][]time.Duration, w)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			eng.Match(events[off%len(events)])
			mine := make([]time.Duration, 0, perWorker)
			<-start
			for j := 0; j < perWorker; j++ {
				t0 := time.Now()
				eng.Match(events[(off+j)%len(events)])
				mine = append(mine, time.Since(t0))
			}
			durs[off] = mine
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	total := time.Since(t0)
	if total <= 0 {
		total = time.Nanosecond
	}

	all := make([]time.Duration, 0, w*perWorker)
	for _, d := range durs {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return float64(w*perWorker) / total.Seconds(), percentile(all, 50), percentile(all, 99)
}

// percentile returns the p-th percentile of sorted durations (nearest
// rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// RunShard regenerates the sharding sweep and prints its series.
func RunShard(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureShard(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "shards,quiet_ev_s,quiet_p50_s,quiet_p99_s,churn_ev_s,churn_p50_s,churn_p99_s,churn_ops_s\n")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%d,%.1f,%.9f,%.9f,%.1f,%.9f,%.9f,%.1f\n",
				p.Shards, p.EventsPerSec, p.P50.Seconds(), p.P99.Seconds(),
				p.ChurnEventsPerSec, p.ChurnP50.Seconds(), p.ChurnP99.Seconds(), p.ChurnOpsPerSec)
		}
		return nil
	}
	fmt.Fprintf(w, "S1: sharded matching vs shard count (GOMAXPROCS %d, %d match workers)\n", res.GOMAXPROCS, res.Workers)
	fmt.Fprintf(w, "workload: %d subscriptions, 6 preds/sub, 5000 fulfilled/event; full Match (phase 1+2)\n", res.Subs)
	fmt.Fprintf(w, "churn columns: one writer loops Subscribe/Unsubscribe concurrently\n\n")
	fmt.Fprintf(w, "%-8s %-12s %-10s %-10s | %-12s %-10s %-10s %-12s\n",
		"shards", "quiet ev/s", "p50", "p99", "churn ev/s", "p50", "p99", "churn ops/s")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-8d %-12.1f %-10s %-10s | %-12.1f %-10s %-10s %-12.1f\n",
			p.Shards, p.EventsPerSec, fmtDur(p.P50), fmtDur(p.P99),
			p.ChurnEventsPerSec, fmtDur(p.ChurnP50), fmtDur(p.ChurnP99), p.ChurnOpsPerSec)
	}
	fmt.Fprintln(w)
	return nil
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
