package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"noncanon/internal/memmodel"
)

// tinyConfig keeps harness tests fast: ~2000 subscriptions max.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Out: buf, Scale: 0.0005, Points: 4, Trials: 2, Seed: 7}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	wantIDs := []string{
		"table1", "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f",
		"memory", "crossover", "ablation-reorder", "ablation-encoding",
		"parallel", "shard", "batch", "cover", "million", "federate", "chaos",
		"obs", "hotpath",
	}
	if len(exps) != len(wantIDs) {
		t.Fatalf("%d experiments, want %d", len(exps), len(wantIDs))
	}
	for i, want := range wantIDs {
		if exps[i].ID != want {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, want)
		}
	}
	if _, ok := Lookup("fig3c"); !ok {
		t.Error("Lookup(fig3c) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) should fail")
	}
}

func TestFig3VariantsMatchPaper(t *testing.T) {
	vs := Fig3Variants()
	if len(vs) != 6 {
		t.Fatalf("%d variants", len(vs))
	}
	for _, v := range vs {
		switch v.PredsPerSub {
		case 6:
			if v.PaperMaxSubs != 5_000_000 {
				t.Errorf("%s: max %d", v.ID, v.PaperMaxSubs)
			}
		case 8:
			if v.PaperMaxSubs != 4_000_000 {
				t.Errorf("%s: max %d", v.ID, v.PaperMaxSubs)
			}
		case 10:
			if v.PaperMaxSubs != 2_500_000 {
				t.Errorf("%s: max %d", v.ID, v.PaperMaxSubs)
			}
		}
		if v.Fulfilled != 5000 && v.Fulfilled != 10000 {
			t.Errorf("%s: fulfilled %d", v.ID, v.Fulfilled)
		}
		if !strings.Contains(v.Title(), "predicates") {
			t.Errorf("%s title: %s", v.ID, v.Title())
		}
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable1(tinyConfig(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "6 to 10", "8 to 32", "AND, OR"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureFig3SmallScale(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	v := Fig3Variants()[0] // fig3a
	res, err := MeasureFig3(cfg, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
	last := res.Points[len(res.Points)-1]
	if last.Subs != scaleCount(v.PaperMaxSubs, cfg.Scale) {
		t.Errorf("last point subs = %d", last.Subs)
	}
	for _, p := range res.Points {
		if p.NonCanonical < 0 || p.Counting <= 0 || p.CountingVariant <= 0 {
			t.Errorf("non-positive duration at %d: %+v", p.Subs, p)
		}
	}
	// No shape assertion here: at tiny scale the classic counting algorithm
	// legitimately wins (the paper's own small-N observation, §4.1);
	// TestFig3ShapeAtModerateScale checks the headline ordering.
}

// TestFig3ShapeAtModerateScale verifies claim C2 where it is expected to
// hold: past the small-N crossover region, the non-canonical engine beats
// the classic counting scan, and the counting variant sits in between or
// above the non-canonical engine.
func TestFig3ShapeAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale sweep skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping the perf-shape comparison under -race: instrumentation taxes the engines unevenly and inverts the ordering")
	}
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Scale: 0.02, Points: 2, Trials: 3, Seed: 7}
	res, err := MeasureFig3(cfg, Fig3Variants()[2]) // fig3c: |p|=10, 32× blow-up
	if err != nil {
		t.Fatal(err)
	}
	last := res.Points[len(res.Points)-1] // 50k subscriptions, 1.6M units
	if last.NonCanonical >= last.Counting {
		t.Errorf("non-canonical (%v) should beat classic counting (%v) at %d subs",
			last.NonCanonical, last.Counting, last.Subs)
	}
	if last.NonCanonical > last.CountingVariant {
		t.Errorf("non-canonical (%v) should not lose to the counting variant (%v)",
			last.NonCanonical, last.CountingVariant)
	}
}

func TestRunFig3Formats(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	if err := RunFig3(cfg, Fig3Variants()[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "non-canonical") {
		t.Errorf("table output:\n%s", buf.String())
	}
	buf.Reset()
	cfg.CSV = true
	if err := RunFig3(cfg, Fig3Variants()[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "subs,non_canonical_s") {
		t.Errorf("csv output:\n%s", buf.String())
	}
}

func TestMeasureFig3WithSwapModel(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	// A budget of zero bytes forces the swap penalty everywhere.
	cfg.Swap = &memmodel.SwapModel{BudgetBytes: 1, Penalty: 10}
	res, err := MeasureFig3(cfg, Fig3Variants()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("swap-model sweep produced no points")
	}
	if testing.Short() {
		t.Skip("skipping the wall-clock shape comparison under -short: it races two timed runs and inverts under CPU contention")
	}
	// Swapped runs must be slower than raw runs at the same points. Both
	// sides are wall-clock measurements of tiny runs, so a loaded machine
	// can invert a single pair; re-measure a few times before calling the
	// model broken.
	for attempt := 1; ; attempt++ {
		cfg.Swap = nil
		raw, err := MeasureFig3(cfg, Fig3Variants()[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.Points[len(res.Points)-1].Counting > raw.Points[len(raw.Points)-1].Counting {
			return
		}
		if attempt == 3 {
			t.Error("swap model did not inflate counting time in any of 3 attempts")
			return
		}
		cfg.Swap = &memmodel.SwapModel{BudgetBytes: 1, Penalty: 10}
		res, err = MeasureFig3(cfg, Fig3Variants()[0])
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMeasureMemory(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	rows, err := MeasureMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	prevRatio := 0.0
	for _, r := range rows {
		if r.Counting.Units != r.Counting.Subscriptions*(1<<(r.PredsPerSub/2)) {
			t.Errorf("|p|=%d: units=%d subs=%d", r.PredsPerSub, r.Counting.Units, r.Counting.Subscriptions)
		}
		if r.Ratio() <= 1 {
			t.Errorf("|p|=%d: counting should need more memory per sub (ratio %.2f)", r.PredsPerSub, r.Ratio())
		}
		if r.Ratio() < prevRatio {
			t.Errorf("ratio should grow with |p|: %v", rows)
		}
		prevRatio = r.Ratio()
		if r.CapacityNonCanon <= r.CapacityCounting {
			t.Errorf("|p|=%d: non-canonical capacity %d should exceed counting %d",
				r.PredsPerSub, r.CapacityNonCanon, r.CapacityCounting)
		}
	}
	// C1: at |p|=10 the paper reports a ≥4× capacity advantage; the
	// analytic §3.3 byte model reproduces that factor exactly. The measured
	// Go structures carry slice-header and bookkeeping overhead a 2005 C
	// implementation lacks, which flattens the measured ratio — assert the
	// direction (>2×) here; EXPERIMENTS.md records both numbers.
	last := rows[2]
	if f := float64(last.CapacityNonCanon) / float64(last.CapacityCounting); f < 2 {
		t.Errorf("|p|=10 measured capacity factor = %.2f, want >= 2", f)
	}
	if f := last.PaperCountingPerSub / last.PaperNonCanonPerSub; f < 4 {
		t.Errorf("|p|=10 analytic model factor = %.2f, want >= 4 (paper §4.1)", f)
	}
	if err := RunMemory(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "capacity") {
		t.Errorf("memory output:\n%s", buf.String())
	}
}

func TestMeasureCrossover(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	res, err := MeasureCrossover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	if err := RunCrossover(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crossover") && !strings.Contains(buf.String(), "counting") {
		t.Errorf("crossover output:\n%s", buf.String())
	}
}

func TestMeasureAblationReorder(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	res, err := MeasureAblationReorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reordering must reduce inspected leaves on the unbalanced workload.
	if res.ReorderedLeaves >= res.PlainLeaves {
		t.Errorf("reorder did not reduce leaf inspections: plain=%.2f reordered=%.2f",
			res.PlainLeaves, res.ReorderedLeaves)
	}
	if err := RunAblationReorder(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reorder") {
		t.Errorf("ablation output:\n%s", buf.String())
	}
}

func TestMeasureAblationEncoding(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	res, err := MeasureAblationEncoding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompactBytes >= res.PaperBytes {
		t.Errorf("compact encoding should be smaller: paper=%d compact=%d",
			res.PaperBytes, res.CompactBytes)
	}
	if err := RunAblationEncoding(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "encoding") {
		t.Errorf("ablation output:\n%s", buf.String())
	}
}

func TestSweepPoints(t *testing.T) {
	pts := sweepPoints(1000, 4)
	want := []int{250, 500, 750, 1000}
	if len(pts) != len(want) {
		t.Fatalf("sweepPoints = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("sweepPoints = %v, want %v", pts, want)
		}
	}
	// Tiny max: no zero or duplicate points.
	pts = sweepPoints(3, 10)
	for i, p := range pts {
		if p <= 0 {
			t.Errorf("non-positive point %d", p)
		}
		if i > 0 && pts[i] <= pts[i-1] {
			t.Errorf("non-increasing points %v", pts)
		}
	}
}

func TestMeasureParallel(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	res, err := MeasureParallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GOMAXPROCS < 1 || res.Subs <= 0 {
		t.Fatalf("bad result header: %+v", res)
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
	if res.Points[0].Workers != 1 {
		t.Errorf("first point workers = %d, want 1", res.Points[0].Workers)
	}
	if last := res.Points[len(res.Points)-1]; last.Workers != res.GOMAXPROCS {
		t.Errorf("last point workers = %d, want GOMAXPROCS %d", last.Workers, res.GOMAXPROCS)
	}
	for _, p := range res.Points {
		if p.EventsPerSec <= 0 || p.SerializedPerSec <= 0 || p.Speedup <= 0 {
			t.Errorf("non-positive throughput at %d workers: %+v", p.Workers, p)
		}
	}
	// Output paths: text and CSV.
	if err := RunParallel(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workers") {
		t.Errorf("text output missing header: %q", buf.String())
	}
	buf.Reset()
	cfg.CSV = true
	if err := RunParallel(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workers,concurrent_ev_s") {
		t.Errorf("CSV output missing header: %q", buf.String())
	}
}

func TestMeasureShard(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	res, err := MeasureShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 2 {
		t.Fatalf("want at least shard counts 1 and 2, got %+v", res.Points)
	}
	if res.Points[0].Shards != 1 {
		t.Errorf("first point shards = %d, want 1", res.Points[0].Shards)
	}
	for _, p := range res.Points {
		if p.EventsPerSec <= 0 || p.ChurnEventsPerSec <= 0 {
			t.Errorf("non-positive throughput at %d shards: %+v", p.Shards, p)
		}
		if p.P99 < p.P50 || p.ChurnP99 < p.ChurnP50 {
			t.Errorf("p99 below p50 at %d shards: %+v", p.Shards, p)
		}
		if p.ChurnOpsPerSec <= 0 {
			t.Errorf("churner made no progress at %d shards", p.Shards)
		}
	}
	// Output paths: text and CSV.
	if err := RunShard(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shards") {
		t.Errorf("text output missing header: %q", buf.String())
	}
	buf.Reset()
	cfg.CSV = true
	if err := RunShard(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "shards,quiet_ev_s") {
		t.Errorf("CSV output missing header: %q", buf.String())
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(ds, 50); p != 5 {
		t.Errorf("p50 = %d, want 5", p)
	}
	if p := percentile(ds, 99); p != 10 {
		t.Errorf("p99 = %d, want 10", p)
	}
	if p := percentile(ds, 100); p != 10 {
		t.Errorf("p100 = %d, want 10", p)
	}
	if p := percentile(nil, 99); p != 0 {
		t.Errorf("empty percentile = %d, want 0", p)
	}
	if p := percentile([]time.Duration{7}, 1); p != 7 {
		t.Errorf("singleton p1 = %d, want 7", p)
	}
}

func TestWorkerCounts(t *testing.T) {
	tests := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
	}
	for _, tt := range tests {
		got := workerCounts(tt.max)
		if len(got) != len(tt.want) {
			t.Errorf("workerCounts(%d) = %v, want %v", tt.max, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("workerCounts(%d) = %v, want %v", tt.max, got, tt.want)
				break
			}
		}
	}
}

func TestAllExperimentsRunTiny(t *testing.T) {
	// Smoke: every registered experiment completes at tiny scale.
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(tinyConfig(&buf)); err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", exp.ID)
			}
		})
	}
}
