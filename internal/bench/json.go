package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// JSONResult is the machine-readable envelope emitted by `ncbench -json`:
// the experiment ID plus its measurement series, one object per sweep
// point, numeric where the value parses as a number. It is the format of
// the per-PR perf trajectory files (BENCH_*.json).
type JSONResult struct {
	Experiment string           `json:"experiment"`
	Points     []map[string]any `json:"points"`
}

// RunJSON runs an experiment and re-emits its measurement series as JSON.
// Every experiment with a CSV series supports it; the few that print only
// prose tables (e.g. table1) return an error naming the limitation.
func RunJSON(e Experiment, cfg Config) error {
	cfg = cfg.withDefaults()
	out := cfg.Out
	var buf bytes.Buffer
	csvCfg := cfg
	csvCfg.CSV = true
	csvCfg.Out = &buf
	if err := e.Run(csvCfg); err != nil {
		return err
	}
	res, err := csvToJSON(e.ID, buf.String())
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// csvToJSON converts a one-header CSV series into the JSON envelope.
func csvToJSON(id, csv string) (JSONResult, error) {
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) == 0 || !strings.Contains(lines[0], ",") {
		return JSONResult{}, fmt.Errorf("experiment %s emits no tabular series; -json is unsupported for it", id)
	}
	cols := strings.Split(lines[0], ",")
	res := JSONResult{Experiment: id, Points: []map[string]any{}}
	for _, ln := range lines[1:] {
		fields := strings.Split(ln, ",")
		pt := make(map[string]any, len(cols))
		for i, f := range fields {
			if i >= len(cols) {
				break
			}
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				pt[cols[i]] = v
			} else {
				pt[cols[i]] = f
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}
