package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/wire"
	"noncanon/internal/workload"
)

// hotpathSubs is the fixed subscription population of the H1 stages that
// involve matching. H1 is a trajectory benchmark, not a sweep: the shape
// stays constant across PRs so the per-stage numbers in BENCH_*.json are
// comparable release to release.
const hotpathSubs = 1000

// HotpathStage is one measured stage of the publish spine (experiment H1).
type HotpathStage struct {
	Stage       string
	NsPerOp     float64
	AllocsPerOp float64
	// EventsPerSecCore is single-goroutine throughput, i.e. per-core: the
	// loop runs one event at a time on one OS thread.
	EventsPerSecCore float64
}

// HotpathResult is the regenerated per-stage cost profile of the publish
// spine, from wire decode to broker delivery.
type HotpathResult struct {
	GOMAXPROCS int
	Events     int // distinct events per round
	Rounds     int
	Stages     []HotpathStage
}

// minRoundTime is the floor for one timed round. Cheap stages (a decode
// is a few hundred nanoseconds) repeat their event pass until a round
// lasts at least this long, so round times sit far above scheduler and
// timer granularity — a millisecond-scale round can swing tens of percent
// from one run to the next, which no regression tolerance survives.
const minRoundTime = 25 * time.Millisecond

// measureStage times fn over rounds and samples the allocator's Mallocs
// counter around the whole run. fn(i) performs operation i of a pass over
// the n events; a full untimed pass warms pools and growth tables first,
// and a timed estimate sizes how many passes one round needs to reach
// minRoundTime. ns/op is the FASTEST round: ambient noise (GC, steal,
// descheduling) is strictly additive, so the minimum is the stablest
// estimator of the code's own cost — which is what the regression gate
// needs to compare across runs on a shared machine. Allocations are
// deterministic per op and average over every round.
func measureStage(name string, n, rounds int, fn func(i int)) HotpathStage {
	pass := func() {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	pass() // warm
	start := time.Now()
	pass()
	est := time.Since(start)
	reps := 1
	if est > 0 && est < minRoundTime {
		reps = int(minRoundTime/est) + 1
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	best := time.Duration(0)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for p := 0; p < reps; p++ {
			pass()
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&after)
	ops := n * reps
	ns := float64(best.Nanoseconds()) / float64(ops)
	return HotpathStage{
		Stage:            name,
		NsPerOp:          ns,
		AllocsPerOp:      float64(after.Mallocs-before.Mallocs) / float64(ops*rounds),
		EventsPerSecCore: 1e9 / ns,
	}
}

// MeasureHotpath profiles the publish spine stage by stage (experiment
// H1): copying decode vs aliasing decode of the same encoded events, the
// engine's pooled MatchInto, and the full broker Publish. Everything runs
// single-goroutine so ns/op inverts to events/s-per-core, the unit the
// zero-copy refactor optimizes for.
func MeasureHotpath(cfg Config) (HotpathResult, error) {
	cfg = cfg.withDefaults()
	events := 1000 * cfg.Trials
	rounds := 4
	res := HotpathResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Events: events, Rounds: rounds}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// One encoded frame payload per event, each in its own allocation, so
	// the aliasing decode references stable bytes exactly as it would a
	// reader-loop frame buffer between ReadFrameInto calls.
	evs := make([]event.Event, events)
	payloads := make([][]byte, events)
	for i := range evs {
		evs[i] = workload.StockEvent(rng, i)
		payloads[i] = wire.AppendEvent(nil, evs[i])
	}

	res.Stages = append(res.Stages, measureStage("decode_copy", events, rounds, func(i int) {
		if _, _, err := wire.ReadEvent(payloads[i]); err != nil {
			panic(err)
		}
	}))
	res.Stages = append(res.Stages, measureStage("decode_alias", events, rounds, func(i int) {
		if _, _, err := wire.ReadEventAlias(payloads[i]); err != nil {
			panic(err)
		}
	}))

	// Matching: a fixed stock-subscription population and the pooled
	// append-style spine the broker publishes through.
	reg := predicate.NewRegistry()
	idx := index.New()
	eng := core.New(reg, idx, core.Options{})
	subRng := rand.New(rand.NewSource(cfg.Seed + 1))
	for i := 0; i < hotpathSubs; i++ {
		if _, err := eng.Subscribe(workload.StockSub(subRng)); err != nil {
			return res, fmt.Errorf("bench: hotpath subscribe %d: %w", i, err)
		}
	}
	var buf []matcher.SubID
	res.Stages = append(res.Stages, measureStage("match", events, rounds, func(i int) {
		buf = eng.MatchInto(evs[i], buf[:0])
	}))

	// Full publish: matching plus fan-out enqueue onto no-op subscribers.
	b := broker.New(broker.Options{QueueSize: 4 * hotpathSubs})
	defer b.Close()
	subRng = rand.New(rand.NewSource(cfg.Seed + 1))
	for i := 0; i < hotpathSubs; i++ {
		if _, err := b.Subscribe(workload.StockSub(subRng), func(event.Event) {}); err != nil {
			return res, fmt.Errorf("bench: hotpath broker subscribe %d: %w", i, err)
		}
	}
	res.Stages = append(res.Stages, measureStage("publish", events, rounds, func(i int) {
		if _, err := b.Publish(evs[i]); err != nil {
			panic(err)
		}
	}))
	return res, nil
}

// RunHotpath reports the publish-spine stage profile (experiment H1).
func RunHotpath(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureHotpath(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "stage,ns_op,allocs_op,ev_s_core\n")
		for _, s := range res.Stages {
			fmt.Fprintf(w, "%s,%.1f,%.3f,%.1f\n", s.Stage, s.NsPerOp, s.AllocsPerOp, s.EventsPerSecCore)
		}
		return nil
	}
	fmt.Fprintf(w, "H1: publish-spine stage costs (GOMAXPROCS %d, single-goroutine)\n", res.GOMAXPROCS)
	fmt.Fprintf(w, "workload: %d stock events x %d rounds, %d subscriptions on the match stages\n\n",
		res.Events, res.Rounds, hotpathSubs)
	fmt.Fprintf(w, "%-14s %-12s %-12s %-14s\n", "stage", "ns/op", "allocs/op", "events/s/core")
	for _, s := range res.Stages {
		fmt.Fprintf(w, "%-14s %-12.1f %-12.3f %-14.1f\n", s.Stage, s.NsPerOp, s.AllocsPerOp, s.EventsPerSecCore)
	}
	fmt.Fprintf(w, "\ndecode_alias vs decode_copy is the zero-copy saving; match and publish\n")
	fmt.Fprintf(w, "ride the pooled MatchInto spine (alloc budgets pin their floors).\n")
	return nil
}
