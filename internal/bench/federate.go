package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/netoverlay"
)

// FederatePoint is one node-count setting of the federation sweep (F1): the
// same workload routed through N real TCP-federated broker processes, with
// and without covering-pruned subscription forwarding.
type FederatePoint struct {
	Nodes int

	// Loopback-TCP publish throughput: events/s from first publish until
	// the federation quiesces, with covering off and on.
	EventsPerSecOff float64
	EventsPerSecOn  float64

	// Subscription flood link messages for the same registration sequence.
	FloodMsgsOff uint64
	FloodMsgsOn  uint64
	// Suppressed counts the forwards covering pruned.
	Suppressed uint64

	// Delivered is the total handler invocations across the federation —
	// identical for both configurations and equal to the matching oracle's
	// expectation (each (subscriber, event) match delivered exactly once);
	// MeasureFederate fails otherwise.
	Delivered uint64
}

// FederateResult is the federation sweep.
type FederateResult struct {
	Subscribers int
	Events      int
	Points      []FederatePoint
}

// federateSettle is the quiescence window for the loopback federation; it
// is subtracted from measured elapsed time (Settle by construction spends
// at least this long observing an already-quiet network).
const federateSettle = 60 * time.Millisecond

// federateNodeCounts returns the swept federation sizes (binary trees).
func federateNodeCounts() []int { return []int{3, 7, 15} }

// MeasureFederate measures what broker federation costs and covering buys
// when the brokers are genuinely distributed: N netoverlay brokers in one
// process, linked into a binary tree over real loopback TCP sockets,
// carrying the C1 workload (Zipf-popular nested band filters). For every
// point the measured deliveries are checked against a naive evaluation
// oracle — every matching (subscriber, event) pair exactly once, federation
// wide — so the experiment doubles as an end-to-end correctness smoke.
func MeasureFederate(cfg Config) (FederateResult, error) {
	cfg = cfg.withDefaults()
	subs := scaleCount(20_000, cfg.Scale)
	events := scaleCount(25_000, cfg.Scale)
	pool := subs / 16
	if pool < coverCategories {
		pool = coverCategories
	}
	res := FederateResult{Subscribers: subs, Events: events}
	for _, nodes := range federateNodeCounts() {
		pt := FederatePoint{Nodes: nodes}
		var deliveredOff, deliveredOn uint64
		var err error
		pt.EventsPerSecOff, pt.FloodMsgsOff, _, deliveredOff, err =
			federateRun(cfg, nodes, subs, events, pool, false)
		if err != nil {
			return FederateResult{}, err
		}
		pt.EventsPerSecOn, pt.FloodMsgsOn, pt.Suppressed, deliveredOn, err =
			federateRun(cfg, nodes, subs, events, pool, true)
		if err != nil {
			return FederateResult{}, err
		}
		if deliveredOff != deliveredOn {
			return FederateResult{}, fmt.Errorf(
				"bench: federate %d nodes: covering changed deliveries: %d plain, %d covered",
				nodes, deliveredOff, deliveredOn)
		}
		if pt.Suppressed == 0 {
			return FederateResult{}, fmt.Errorf(
				"bench: federate %d nodes: covering never suppressed a forward on the nested-band workload", nodes)
		}
		pt.Delivered = deliveredOff
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// federateRun registers the workload into a fresh loopback-TCP federation
// and measures flood messages and publish throughput, verifying deliveries
// against the naive oracle.
func federateRun(cfg Config, nodes, subs, events, pool int, coverOn bool) (eventsPerSec float64, floodMsgs, suppressed, delivered uint64, err error) {
	brokers := make([]*netoverlay.Broker, nodes)
	addrs := make([]string, nodes)
	defer func() {
		for _, b := range brokers {
			if b != nil {
				b.Close()
			}
		}
	}()
	var anomalyMu sync.Mutex
	var anomaly error
	for i := range brokers {
		brokers[i] = netoverlay.NewBroker(netoverlay.Options{
			NodeID: uint32(i + 1),
			Cover:  coverOn,
			OnError: func(err error) {
				anomalyMu.Lock()
				if anomaly == nil {
					anomaly = err
				}
				anomalyMu.Unlock()
			},
		})
		addr, err := brokers[i].Listen("127.0.0.1:0")
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("bench: federate listen: %w", err)
		}
		addrs[i] = addr.String()
	}
	for i := 1; i < nodes; i++ {
		if err := brokers[i].Connect(addrs[(i-1)/2]); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("bench: federate link %d->%d: %w", i, (i-1)/2, err)
		}
	}

	// Registration: the C1 draw, homed round the tree. counts[s][e] tracks
	// exactly-once delivery per (subscriber, event) pair.
	rng := rand.New(rand.NewSource(cfg.Seed + 211))
	ranks := coverRanks(rng, 1.1, subs, pool)
	filters := make([]boolexpr.Expr, subs)
	counts := make([][]uint32, subs)
	for s, r := range ranks {
		s := s
		filters[s] = coverFilter(r, pool)
		counts[s] = make([]uint32, events)
		home := brokers[rng.Intn(nodes)]
		if _, err := home.Subscribe(filters[s], func(ev event.Event) {
			v, _ := ev.Get("seq")
			atomic.AddUint32(&counts[s][v.Int()], 1)
		}); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("bench: federate subscribe: %w", err)
		}
	}
	netoverlay.Settle(federateSettle, brokers...)

	evs := make([]event.Event, events)
	for e := range evs {
		evs[e] = coverEvent(rng, pool).Set("seq", int64(e))
	}
	origins := make([]int, events)
	for e := range origins {
		origins[e] = rng.Intn(nodes)
	}
	t0 := time.Now()
	for e, ev := range evs {
		if err := brokers[origins[e]].Publish(ev); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("bench: federate publish: %w", err)
		}
	}
	netoverlay.Settle(federateSettle, brokers...)
	elapsed := time.Since(t0) - federateSettle
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}

	// Exactly-once check against the naive oracle.
	for s := range counts {
		for e := range counts[s] {
			want := uint32(0)
			if filters[s].Eval(evs[e]) {
				want = 1
			}
			if got := atomic.LoadUint32(&counts[s][e]); got != want {
				return 0, 0, 0, 0, fmt.Errorf(
					"bench: federate %d nodes cover=%v: subscriber %d saw event %d %d times, want %d",
					nodes, coverOn, s, e, got, want)
			}
		}
	}
	for _, b := range brokers {
		st := b.Stats()
		floodMsgs += st.SubscriptionMsgs
		suppressed += st.CoverSuppressed
		delivered += st.Delivered
		if st.HopDropped != 0 || st.InstallErrors != 0 {
			return 0, 0, 0, 0, fmt.Errorf("bench: federate node %d: drops/anomalies %+v", b.NodeID(), st)
		}
	}
	anomalyMu.Lock()
	firstAnomaly := anomaly
	anomalyMu.Unlock()
	if firstAnomaly != nil {
		return 0, 0, 0, 0, fmt.Errorf("bench: federate routing anomaly: %w", firstAnomaly)
	}
	return float64(events) / elapsed.Seconds(), floodMsgs, suppressed, delivered, nil
}

// RunFederate regenerates the federation sweep and prints its series.
func RunFederate(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureFederate(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "nodes,events_s_off,events_s_on,flood_off,flood_on,suppressed,delivered\n")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%d,%.1f,%.1f,%d,%d,%d,%d\n",
				p.Nodes, p.EventsPerSecOff, p.EventsPerSecOn,
				p.FloodMsgsOff, p.FloodMsgsOn, p.Suppressed, p.Delivered)
		}
		return nil
	}
	fmt.Fprintf(w, "F1: broker federation over loopback TCP vs node count\n")
	fmt.Fprintf(w, "workload: %d subscribers (Zipf 1.1 nested bands), %d events, binary broker tree;\n",
		res.Subscribers, res.Events)
	fmt.Fprintf(w, "every (subscriber, event) match verified delivered exactly once, federation-wide\n\n")
	fmt.Fprintf(w, "%-6s | %-24s| %-26s| %s\n",
		"", "publish events/s", "sub flood msgs", "")
	fmt.Fprintf(w, "%-6s | %-11s %-12s| %-8s %-8s %-8s| %s\n",
		"nodes", "plain", "cover", "plain", "cover", "pruned", "delivered")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-6d | %-11.0f %-12.0f| %-8d %-8d %-8d| %d\n",
			p.Nodes, p.EventsPerSecOff, p.EventsPerSecOn,
			p.FloodMsgsOff, p.FloodMsgsOn, p.Suppressed, p.Delivered)
	}
	fmt.Fprintln(w)
	return nil
}
