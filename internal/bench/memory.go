package bench

import (
	"fmt"

	"noncanon/internal/core"
	"noncanon/internal/memmodel"
	"noncanon/internal/predicate"
	"noncanon/internal/subtree"
	"noncanon/internal/workload"
)

// MemoryRow summarises memory behaviour for one predicate count.
type MemoryRow struct {
	PredsPerSub int
	NonCanon    memmodel.Report
	Counting    memmodel.Report
	// Analytic §3.3 models, per original subscription.
	PaperNonCanonPerSub float64
	PaperCountingPerSub float64
	// Capacity within the 512 MB paper machine (marginal-cost
	// extrapolation).
	CapacityNonCanon int
	CapacityCounting int
}

// Ratio is counting memory per subscription over non-canonical memory per
// subscription — the scalability factor of claim C1.
func (r MemoryRow) Ratio() float64 {
	d := r.NonCanon.BytesPerSubscription()
	if d == 0 {
		return 0
	}
	return r.Counting.BytesPerSubscription() / d
}

// MeasureMemory builds both engines at a probe size for each |p| and
// extrapolates capacities.
func MeasureMemory(cfg Config) ([]MemoryRow, error) {
	cfg = cfg.withDefaults()
	probe := scaleCount(200_000, cfg.Scale)
	var rows []MemoryRow
	for _, preds := range []int{6, 8, 10} {
		params := workload.Params{NumSubscriptions: probe, PredsPerSub: preds, Seed: cfg.Seed}
		es := newEngines(core.Options{})
		if err := es.grow(params, 0, probe); err != nil {
			return nil, err
		}
		row := MemoryRow{
			PredsPerSub: preds,
			NonCanon: memmodel.Report{
				Name:          es.nc.Name(),
				Subscriptions: es.nc.NumSubscriptions(),
				Units:         es.nc.NumUnits(),
				EngineBytes:   es.nc.MemBytes(),
				RegistryBytes: es.reg.MemBytes(),
				IndexBytes:    es.idx.MemBytes(),
			},
			Counting: memmodel.Report{
				Name:          es.cnt.Name(),
				Subscriptions: es.cnt.NumSubscriptions(),
				Units:         es.cnt.NumUnits(),
				EngineBytes:   es.cnt.MemBytes(),
				RegistryBytes: es.reg.MemBytes(),
				IndexBytes:    es.idx.MemBytes(),
			},
		}
		// Analytic paper models per original subscription.
		units := params.TransformedPerSub()
		assocCounting := units * params.PredsPerTransformed()
		row.PaperCountingPerSub = float64(memmodel.PaperCountingBytes(units, preds, assocCounting))
		treeBytes := paperTreeBytes(params)
		row.PaperNonCanonPerSub = float64(memmodel.PaperNonCanonicalBytes(treeBytes, 1, preds))
		// Capacity extrapolation from measured marginal engine bytes. The
		// shared phase-one structures (registry, index) are identical for
		// every algorithm — the paper's comparison is about the phase-two
		// subscription storage, so capacities are computed over the
		// differing structures only. (A Go registry entry also carries map
		// overhead a 2005 C implementation would not; folding it in equally
		// would only mask the algorithmic difference.)
		row.CapacityNonCanon = memmodel.MaxSubscriptions(
			memmodel.PaperBudgetBytes, 0, row.NonCanon.BytesPerSubscription())
		row.CapacityCounting = memmodel.MaxSubscriptions(
			memmodel.PaperBudgetBytes, 0, row.Counting.BytesPerSubscription())
		rows = append(rows, row)
	}
	return rows, nil
}

// paperTreeBytes computes the paper-encoding size of one workload
// subscription tree.
func paperTreeBytes(p workload.Params) int {
	n := predicate.ID(0)
	intern := func(predicate.P) predicate.ID { n++; return n }
	compiled, err := subtree.Compile(p.Sub(0), intern, subtree.Options{})
	if err != nil {
		return 0
	}
	return len(compiled.Code)
}

// RunMemory prints the M1 table.
func RunMemory(cfg Config) error {
	cfg = cfg.withDefaults()
	rows, err := MeasureMemory(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintln(w, "preds,nc_bytes_per_sub,counting_bytes_per_sub,ratio,nc_capacity_512mb,counting_capacity_512mb")
		for _, r := range rows {
			fmt.Fprintf(w, "%d,%.1f,%.1f,%.2f,%d,%d\n", r.PredsPerSub,
				r.NonCanon.BytesPerSubscription(), r.Counting.BytesPerSubscription(),
				r.Ratio(), r.CapacityNonCanon, r.CapacityCounting)
		}
		return nil
	}
	fmt.Fprintf(w, "M1: engine memory per original subscription and capacity within %s\n\n",
		memmodel.FormatBytes(memmodel.PaperBudgetBytes))
	fmt.Fprintf(w, "%-6s %-14s %-14s %-7s %-22s %-22s\n",
		"preds", "non-canonical", "counting", "ratio", "capacity non-canon", "capacity counting")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %-14.1f %-14.1f %-7.2f %-22d %-22d\n",
			r.PredsPerSub, r.NonCanon.BytesPerSubscription(), r.Counting.BytesPerSubscription(),
			r.Ratio(), r.CapacityNonCanon, r.CapacityCounting)
	}
	fmt.Fprintf(w, "\nAnalytic §3.3 per-subscription models (bytes):\n")
	fmt.Fprintf(w, "%-6s %-14s %-14s\n", "preds", "non-canonical", "counting")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %-14.1f %-14.1f\n", r.PredsPerSub, r.PaperNonCanonPerSub, r.PaperCountingPerSub)
	}
	fmt.Fprintln(w)
	return nil
}
