//go:build !race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector. Wall-clock perf-shape assertions are skipped under -race:
// instrumentation taxes the engines unevenly (the non-canonical engine's
// pointer-heavy tree walk pays far more per access than the counting
// scan), which inverts orderings that hold on uninstrumented builds.
const raceEnabled = false
