package bench

import (
	"fmt"
	"math/rand"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/index"
	"noncanon/internal/predicate"
	"noncanon/internal/subtree"
	"noncanon/internal/workload"
)

// unbalancedSub builds a deliberately lopsided subscription for the
// reordering ablation: a wide OR over many predicates ANDed with a single
// cheap pair. Authored big-child-first, so an evaluator without reordering
// always wades through the wide OR even when the cheap pair already decides
// the conjunction.
func unbalancedSub(i, widePreds int) boolexpr.Expr {
	wide := make([]boolexpr.Expr, widePreds)
	for k := range wide {
		wide[k] = boolexpr.Pred(workload.Attr(k), predicate.Eq, int64(i)*int64(widePreds)+int64(k))
	}
	cheap := boolexpr.NewOr(
		boolexpr.Pred("g", predicate.Gt, int64(i)*4+1),
		boolexpr.Pred("g", predicate.Le, int64(i)*4),
	)
	return boolexpr.NewAnd(boolexpr.NewOr(wide...), cheap)
}

// AblationReorderResult compares evaluation with and without cheapest-first
// child reordering (A1; the paper's §3.2 future-work optimisation).
type AblationReorderResult struct {
	Subs            int
	PlainTime       time.Duration
	ReorderedTime   time.Duration
	PlainLeaves     float64 // mean leaves inspected per candidate evaluation
	ReorderedLeaves float64
}

// MeasureAblationReorder builds two non-canonical engines over the same
// unbalanced workload, one with Reorder enabled, and times phase two.
func MeasureAblationReorder(cfg Config) (AblationReorderResult, error) {
	cfg = cfg.withDefaults()
	subs := scaleCount(500_000, cfg.Scale)
	const widePreds = 12
	rng := rand.New(rand.NewSource(cfg.Seed + 3))

	build := func(reorder bool) (*core.Engine, *predicate.Registry) {
		reg := predicate.NewRegistry()
		idx := index.New()
		eng := core.New(reg, idx, core.Options{Reorder: reorder})
		return eng, reg
	}
	plain, _ := build(false)
	reordered, _ := build(true)
	for i := 0; i < subs; i++ {
		expr := unbalancedSub(i, widePreds)
		if _, err := plain.Subscribe(expr); err != nil {
			return AblationReorderResult{}, err
		}
		if _, err := reordered.Subscribe(expr); err != nil {
			return AblationReorderResult{}, err
		}
	}
	// Fulfilled draws over the per-engine universe: both engines intern the
	// same predicates in the same order, so IDs coincide. Cap the draw at a
	// quarter of the universe so small-scale runs keep realistic predicate
	// selectivity (a saturated draw makes every first leaf match and hides
	// the ordering effect).
	universe := subs * (widePreds + 2)
	k := 5000
	if k > universe/4 {
		k = universe / 4
	}
	if k < 1 {
		k = 1
	}
	draws := make([][]predicate.ID, cfg.Trials)
	for t := range draws {
		draws[t] = drawIDs(rng, universe, k)
	}
	res := AblationReorderResult{Subs: subs}
	res.PlainTime = timeMatch(plain.MatchPredicates, draws)
	res.ReorderedTime = timeMatch(reordered.MatchPredicates, draws)
	res.PlainLeaves = meanLeaves(plain, draws)
	res.ReorderedLeaves = meanLeaves(reordered, draws)
	return res, nil
}

func drawIDs(rng *rand.Rand, universe, k int) []predicate.ID {
	if k > universe {
		k = universe
	}
	out := make([]predicate.ID, 0, k)
	seen := make(map[predicate.ID]struct{}, k)
	for len(out) < k {
		id := predicate.ID(rng.Int63n(int64(universe)) + 1)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// meanLeaves estimates leaves inspected per candidate evaluation using the
// instrumented evaluator over a sample of candidate subscriptions.
func meanLeaves(e *core.Engine, draws [][]predicate.ID) float64 {
	total, evals := 0, 0
	for _, d := range draws {
		leaves, n := e.InstrumentedMatch(d)
		total += leaves
		evals += n
	}
	if evals == 0 {
		return 0
	}
	return float64(total) / float64(evals)
}

// RunAblationReorder prints the A1 comparison.
func RunAblationReorder(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureAblationReorder(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintln(w, "variant,time_s,leaves_per_eval")
		fmt.Fprintf(w, "plain,%.9f,%.2f\n", res.PlainTime.Seconds(), res.PlainLeaves)
		fmt.Fprintf(w, "reordered,%.9f,%.2f\n", res.ReorderedTime.Seconds(), res.ReorderedLeaves)
		return nil
	}
	fmt.Fprintf(w, "A1: subscription-tree child reordering (unbalanced workload, %d subscriptions)\n\n", res.Subs)
	fmt.Fprintf(w, "%-12s %-16s %-18s\n", "variant", "time (s)", "leaves/evaluation")
	fmt.Fprintf(w, "%-12s %-16.9f %-18.2f\n", "plain", res.PlainTime.Seconds(), res.PlainLeaves)
	fmt.Fprintf(w, "%-12s %-16.9f %-18.2f\n", "reordered", res.ReorderedTime.Seconds(), res.ReorderedLeaves)
	fmt.Fprintln(w)
	return nil
}

// AblationEncodingResult compares the paper's fixed-width encoding with the
// compact varint encoding (A2; the paper's "improved encoding" future work).
type AblationEncodingResult struct {
	Subs         int
	PaperBytes   int
	CompactBytes int
	PaperTime    time.Duration
	CompactTime  time.Duration
}

// MeasureAblationEncoding builds one engine per encoding over the Table 1
// workload and compares tree storage and matching time.
func MeasureAblationEncoding(cfg Config) (AblationEncodingResult, error) {
	cfg = cfg.withDefaults()
	subs := scaleCount(500_000, cfg.Scale)
	params := workload.Params{NumSubscriptions: subs, PredsPerSub: 10, FulfilledPerEvent: 5000, Seed: cfg.Seed}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))

	build := func(enc subtree.Encoding) (*core.Engine, error) {
		reg := predicate.NewRegistry()
		idx := index.New()
		eng := core.New(reg, idx, core.Options{Encoding: enc})
		for i := 0; i < subs; i++ {
			if _, err := eng.Subscribe(params.Sub(i)); err != nil {
				return nil, err
			}
		}
		return eng, nil
	}
	paper, err := build(subtree.PaperEncoding)
	if err != nil {
		return AblationEncodingResult{}, err
	}
	compact, err := build(subtree.CompactEncoding)
	if err != nil {
		return AblationEncodingResult{}, err
	}
	draws := make([][]predicate.ID, cfg.Trials)
	drawParams := params
	for t := range draws {
		draws[t] = drawParams.FulfilledDraw(rng)
	}
	return AblationEncodingResult{
		Subs:         subs,
		PaperBytes:   paper.TreeBytes(),
		CompactBytes: compact.TreeBytes(),
		PaperTime:    timeMatch(paper.MatchPredicates, draws),
		CompactTime:  timeMatch(compact.MatchPredicates, draws),
	}, nil
}

// RunAblationEncoding prints the A2 comparison.
func RunAblationEncoding(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureAblationEncoding(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintln(w, "encoding,tree_bytes,time_s")
		fmt.Fprintf(w, "paper,%d,%.9f\n", res.PaperBytes, res.PaperTime.Seconds())
		fmt.Fprintf(w, "compact,%d,%.9f\n", res.CompactBytes, res.CompactTime.Seconds())
		return nil
	}
	fmt.Fprintf(w, "A2: tree encoding (|p|=10 workload, %d subscriptions)\n\n", res.Subs)
	fmt.Fprintf(w, "%-10s %-14s %-16s\n", "encoding", "tree bytes", "time (s)")
	fmt.Fprintf(w, "%-10s %-14d %-16.9f\n", "paper", res.PaperBytes, res.PaperTime.Seconds())
	fmt.Fprintf(w, "%-10s %-14d %-16.9f\n", "compact", res.CompactBytes, res.CompactTime.Seconds())
	if res.PaperBytes > 0 {
		fmt.Fprintf(w, "\ncompact/paper size ratio: %.2f\n\n", float64(res.CompactBytes)/float64(res.PaperBytes))
	}
	return nil
}
