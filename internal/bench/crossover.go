package bench

import (
	"fmt"
	"math/rand"

	"noncanon/internal/core"
	"noncanon/internal/predicate"
	"noncanon/internal/workload"
)

// CrossoverResult captures the small-N sweep of claim C4: "for small
// subscription numbers the counting algorithm behaves most efficient …
// due to the small number of required comparisons" (paper §4.1, e.g. up to
// ~700,000 subscriptions in Fig. 3(d)).
type CrossoverResult struct {
	Points []Fig3Point
	// CrossoverSubs is the start of the stable suffix of sweep points where
	// the non-canonical engine is at least as fast as the classic counting
	// algorithm, or 0 if counting still wins at the largest point. The
	// suffix rule tolerates single-point timing noise.
	CrossoverSubs int
}

// MeasureCrossover sweeps small subscription counts at fine granularity.
func MeasureCrossover(cfg Config) (CrossoverResult, error) {
	cfg = cfg.withDefaults()
	// The paper's crossover region is below ~700k subscriptions at |p|=6;
	// sweep the scaled equivalent with doubled point density.
	maxSubs := scaleCount(700_000, cfg.Scale)
	params := workload.Params{
		NumSubscriptions:  maxSubs,
		PredsPerSub:       6,
		FulfilledPerEvent: 10000,
		Seed:              cfg.Seed,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	es := newEngines(core.Options{})
	var res CrossoverResult
	cur := 0
	for _, n := range sweepPoints(maxSubs, cfg.Points*2) {
		if err := es.grow(params, cur, n); err != nil {
			return CrossoverResult{}, err
		}
		cur = n
		drawParams := params
		drawParams.NumSubscriptions = n
		draws := make([][]predicate.ID, cfg.Trials)
		for t := range draws {
			draws[t] = drawParams.FulfilledDraw(rng)
		}
		pt := Fig3Point{
			Subs:            n,
			NonCanonical:    timeMatch(es.nc.MatchPredicates, draws),
			CountingVariant: timeMatch(variantFn(es.cnt), draws),
			Counting:        timeMatch(classicFn(es.cnt), draws),
		}
		res.Points = append(res.Points, pt)
	}
	// Stable crossover: the earliest point from which non-canonical never
	// loses to classic counting again.
	for i := len(res.Points) - 1; i >= 0; i-- {
		if res.Points[i].NonCanonical > res.Points[i].Counting {
			break
		}
		res.CrossoverSubs = res.Points[i].Subs
	}
	return res, nil
}

// RunCrossover prints the C4 sweep.
func RunCrossover(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureCrossover(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintln(w, "subs,non_canonical_s,counting_variant_s,counting_s")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%d,%.9f,%.9f,%.9f\n", p.Subs,
				p.NonCanonical.Seconds(), p.CountingVariant.Seconds(), p.Counting.Seconds())
		}
		return nil
	}
	fmt.Fprintf(w, "C4: crossover sweep, 6 predicates, 10000 fulfilled (scaled small-N region)\n\n")
	fmt.Fprintf(w, "%-12s %-16s %-18s %-16s\n", "subs", "non-canonical", "counting-variant", "counting")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-12d %-16.9f %-18.9f %-16.9f\n", p.Subs,
			p.NonCanonical.Seconds(), p.CountingVariant.Seconds(), p.Counting.Seconds())
	}
	if res.CrossoverSubs > 0 {
		fmt.Fprintf(w, "\nnon-canonical overtakes counting at ~%d subscriptions\n\n", res.CrossoverSubs)
	} else {
		fmt.Fprintf(w, "\ncounting still fastest at the largest swept point (paper: crossover below ~700k unscaled)\n\n")
	}
	return nil
}
