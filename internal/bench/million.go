package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/memmodel"
)

// MillionPoint is one (subscriber count, skew) cell of the M1 (million)
// sweep: the same power-law filter draw registered into a flat-aggregating
// broker (Options.Aggregate: one engine entry per distinct filter) and a
// DAG-aggregating broker (Options.AggregateDAG: one engine entry per
// covering-frontier filter).
type MillionPoint struct {
	Subs int
	Skew float64

	// Flat aggregation: engine entries equal distinct filters.
	FlatEngine  int
	FlatSubsSec float64
	FlatP50     time.Duration
	FlatP99     time.Duration
	FlatHeap    int

	// DAG aggregation: engine entries equal the covering frontier.
	DAGEngine   int // frontier filters — the engine entry count
	DAGDistinct int // poset nodes (distinct live filters)
	DAGCovered  int // subscribers attached beneath a coverer
	DAGSubsSec  float64
	DAGP50      time.Duration
	DAGP99      time.Duration
	DAGHeap     int
}

// MillionResult is the regenerated M1 (million) sweep.
type MillionResult struct {
	Counts []int
	Points []MillionPoint
}

// millionCounts returns the swept subscriber counts (10k, 100k, 1M at
// scale 1).
func millionCounts(scale float64) []int {
	return uniqueInts([]int{
		scaleCount(10_000, scale),
		scaleCount(100_000, scale),
		scaleCount(1_000_000, scale),
	})
}

// millionSkews returns the swept power-law exponents. The flatter settings
// are the stress case for DAG aggregation — the draw spreads across the
// pool and the poset holds many distinct filters — while 2.0 is the regime
// the paper's covering argument targets: popularity concentrated on broad
// filters.
func millionSkews() []float64 { return []float64{0.5, 1.0, 2.0} }

// millionRanks draws every subscriber's filter rank from a finite-pool
// power law with weight 1/(rank+1)^skew. rand.NewZipf only supports
// exponents strictly above 1, and the sweep needs 0.5 and 1.0, so draws
// invert a cumulative weight table instead.
func millionRanks(rng *rand.Rand, skew float64, n, pool int) []int {
	cum := make([]float64, pool)
	total := 0.0
	for r := 0; r < pool; r++ {
		total += math.Pow(float64(r+1), -skew)
		cum[r] = total
	}
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = sort.SearchFloat64s(cum, rng.Float64()*total)
	}
	return ranks
}

// millionBrokerRun registers the drawn filters into a fresh broker and
// measures engine entries, subscribe throughput, live heap after
// registration, and publish latency. The pool reuses the C1 nested-band
// shape (coverFilter), so within a category every broader band provably
// covers the narrower ones.
func millionBrokerRun(cfg Config, ranks []int, pool int, dagMode bool) (pt MillionPoint, err error) {
	// QueueSize 1 keeps the per-subscriber fixed cost (queue buffer +
	// delivery goroutine) as small as possible: at 1M subscribers that
	// fixed cost dominates the heap reading, and it is identical across
	// the two modes, so the flat-vs-DAG heap delta isolates the engine
	// and poset structures.
	br := broker.New(broker.Options{QueueSize: 1, Aggregate: !dagMode, AggregateDAG: dagMode})
	defer br.Close()
	noop := func(event.Event) {}

	t0 := time.Now()
	for _, r := range ranks {
		if _, err := br.Subscribe(coverFilter(r, pool), noop); err != nil {
			return pt, fmt.Errorf("bench: million subscribe: %w", err)
		}
	}
	subDur := time.Since(t0)
	if subDur <= 0 {
		subDur = time.Nanosecond
	}
	st := br.Stats()
	heap := memmodel.HeapInuseBytes()

	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	publishes := 64 * cfg.Trials
	durs := make([]time.Duration, 0, publishes)
	if _, err := br.Publish(coverEvent(rng, pool)); err != nil { // warmup
		return pt, err
	}
	for i := 0; i < publishes; i++ {
		ev := coverEvent(rng, pool)
		c0 := time.Now()
		if _, err := br.Publish(ev); err != nil {
			return pt, err
		}
		durs = append(durs, time.Since(c0))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })

	subsSec := float64(len(ranks)) / subDur.Seconds()
	p50, p99 := percentile(durs, 50), percentile(durs, 99)
	if dagMode {
		pt.DAGEngine = st.FrontierFilters
		pt.DAGDistinct = st.DistinctFilters
		pt.DAGCovered = st.CoveredSubscribers
		pt.DAGSubsSec, pt.DAGP50, pt.DAGP99, pt.DAGHeap = subsSec, p50, p99, heap
	} else {
		pt.FlatEngine = st.DistinctFilters
		pt.FlatSubsSec, pt.FlatP50, pt.FlatP99, pt.FlatHeap = subsSec, p50, p99, heap
	}
	return pt, nil
}

// MeasureMillion measures how engine size scales with subscriber count
// under the two aggregation modes (experiment M1 (million)). For every
// (count, skew) cell, one power-law draw over a nested-band filter pool is
// registered into a flat-aggregating and a DAG-aggregating broker. The
// headline claim: flat engine entries track the number of distinct filters
// drawn — which keeps growing with the subscriber count until the pool is
// exhausted — while DAG engine entries track the covering frontier, which
// is bounded by the pool's band structure and goes sublinear much earlier,
// the more so the more the skew concentrates draws on broad filters.
func MeasureMillion(cfg Config) (MillionResult, error) {
	cfg = cfg.withDefaults()
	res := MillionResult{Counts: millionCounts(cfg.Scale)}
	for _, subs := range res.Counts {
		pool := subs / 16
		if pool < coverCategories {
			pool = coverCategories
		}
		for _, skew := range millionSkews() {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(subs) + int64(skew*1000)))
			ranks := millionRanks(rng, skew, subs, pool)

			flat, err := millionBrokerRun(cfg, ranks, pool, false)
			if err != nil {
				return MillionResult{}, err
			}
			dag, err := millionBrokerRun(cfg, ranks, pool, true)
			if err != nil {
				return MillionResult{}, err
			}
			pt := dag
			pt.Subs, pt.Skew = subs, skew
			pt.FlatEngine, pt.FlatSubsSec, pt.FlatHeap = flat.FlatEngine, flat.FlatSubsSec, flat.FlatHeap
			pt.FlatP50, pt.FlatP99 = flat.FlatP50, flat.FlatP99
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// RunMillion regenerates the M1 (million) sweep and prints its series.
func RunMillion(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureMillion(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "subs,skew,flat_engine,dag_engine,dag_distinct,dag_covered,flat_subs_s,dag_subs_s,flat_pub_p50_s,flat_pub_p99_s,dag_pub_p50_s,dag_pub_p99_s,flat_heap_bytes,dag_heap_bytes\n")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%d,%.2f,%d,%d,%d,%d,%.1f,%.1f,%.9f,%.9f,%.9f,%.9f,%d,%d\n",
				p.Subs, p.Skew, p.FlatEngine, p.DAGEngine, p.DAGDistinct, p.DAGCovered,
				p.FlatSubsSec, p.DAGSubsSec,
				p.FlatP50.Seconds(), p.FlatP99.Seconds(), p.DAGP50.Seconds(), p.DAGP99.Seconds(),
				p.FlatHeap, p.DAGHeap)
		}
		return nil
	}
	fmt.Fprintf(w, "M1 (million): engine size under flat vs covering-DAG aggregation\n")
	fmt.Fprintf(w, "workload: power-law draws over nested band pools (pool = subs/16, %d categories);\n", coverCategories)
	fmt.Fprintf(w, "flat = one engine entry per distinct filter, dag = one per covering-frontier filter\n\n")
	fmt.Fprintf(w, "%-9s %-5s| %-16s %-9s %-8s| %-21s| %-33s| %s\n",
		"subs", "skew", "engine flat/dag", "distinct", "covered", "subscribe ops/s", "publish p50/p99", "heap flat/dag")
	for _, p := range res.Points {
		flatLat := fmtDur(p.FlatP50) + "/" + fmtDur(p.FlatP99)
		dagLat := fmtDur(p.DAGP50) + "/" + fmtDur(p.DAGP99)
		fmt.Fprintf(w, "%-9d %-5.2f| %-7d %-8d %-9d %-8d| %-10.0f %-10.0f| %-16s %-16s| %s / %s\n",
			p.Subs, p.Skew, p.FlatEngine, p.DAGEngine, p.DAGDistinct, p.DAGCovered,
			p.FlatSubsSec, p.DAGSubsSec, flatLat, dagLat,
			memmodel.FormatBytes(p.FlatHeap), memmodel.FormatBytes(p.DAGHeap))
	}
	fmt.Fprintln(w)
	return nil
}
