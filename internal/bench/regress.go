package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The perf-regression gate: a benchstat-style comparator (stdlib only)
// between a fresh H1 run and a recorded BENCH_*.json trajectory document.
// CI runs `ncbench -exp hotpath -regress BENCH_PRn.json` and fails the
// build when a stage's ns/op regresses beyond the tolerance or its
// allocs/op climb above the recorded floor. Time gets a percentage
// tolerance (shared runners are noisy); allocations are counted, not
// sampled, so they get only a small absolute slack for measurement jitter
// from the runtime's own background allocation.

// DefaultRegressTolerancePct is the ns/op regression threshold.
const DefaultRegressTolerancePct = 10

// allocSlack absorbs sub-allocation jitter (background goroutines, timer
// wheels) in the Mallocs-delta sampling; a real extra allocation per op
// always exceeds it.
const allocSlack = 0.5

// nsGrace is an absolute floor added to the time tolerance. Cross-process
// drift on a shared machine (CPU steal, frequency phases, ASLR-shifted
// code layout) moves a sub-microsecond stage by tens of nanoseconds in
// either direction — more than 10% of a ~250ns decode, environmental
// rather than algorithmic. Fifty nanoseconds is invisible at the
// microsecond scale of the match/publish stages (0.3%) but keeps the
// percentage gate honest on the nanosecond ones; a reintroduced
// per-attribute copy costs well over it.
const nsGrace = 50

// RegressLine is one stage's old-vs-new comparison.
type RegressLine struct {
	Stage                  string
	OldNsOp, NewNsOp       float64
	NsDeltaPct             float64
	OldAllocsOp, NewAllocs float64
	Failed                 bool
	Reason                 string // empty when the stage passes
}

// ParseTrajectory decodes one BENCH_*.json document (the `ncbench -json`
// envelope).
func ParseTrajectory(data []byte) (JSONResult, error) {
	var res JSONResult
	if err := json.Unmarshal(data, &res); err != nil {
		return JSONResult{}, fmt.Errorf("bench: malformed trajectory document: %w", err)
	}
	return res, nil
}

// num extracts a numeric column from a trajectory point.
func num(pt map[string]any, col string) (float64, bool) {
	v, ok := pt[col].(float64)
	return v, ok
}

// CompareHotpath compares a fresh H1 result against a recorded hotpath
// trajectory, stage by stage. Stages present on only one side are skipped
// (the trajectory predates or postdates them); a baseline with no stage
// overlap is an error rather than a silent pass.
func CompareHotpath(baseline JSONResult, cur HotpathResult, tolPct float64) ([]RegressLine, error) {
	if baseline.Experiment != "hotpath" {
		return nil, fmt.Errorf("bench: baseline records experiment %q, want hotpath", baseline.Experiment)
	}
	if tolPct <= 0 {
		tolPct = DefaultRegressTolerancePct
	}
	old := make(map[string]map[string]any, len(baseline.Points))
	for _, pt := range baseline.Points {
		if name, ok := pt["stage"].(string); ok {
			old[name] = pt
		}
	}
	var lines []RegressLine
	for _, s := range cur.Stages {
		pt, ok := old[s.Stage]
		if !ok {
			continue // new stage: nothing to regress against
		}
		oldNs, okNs := num(pt, "ns_op")
		oldAllocs, okAllocs := num(pt, "allocs_op")
		if !okNs || !okAllocs {
			continue
		}
		l := RegressLine{
			Stage:       s.Stage,
			OldNsOp:     oldNs,
			NewNsOp:     s.NsPerOp,
			NsDeltaPct:  (s.NsPerOp - oldNs) / oldNs * 100,
			OldAllocsOp: oldAllocs,
			NewAllocs:   s.AllocsPerOp,
		}
		switch {
		case s.NsPerOp > oldNs*(1+tolPct/100)+nsGrace:
			l.Failed = true
			l.Reason = fmt.Sprintf("ns/op regressed %.1f%% (> %.0f%% tolerance)", l.NsDeltaPct, tolPct)
		case s.AllocsPerOp > oldAllocs+allocSlack:
			l.Failed = true
			l.Reason = fmt.Sprintf("allocs/op grew %.3f -> %.3f", oldAllocs, s.AllocsPerOp)
		}
		lines = append(lines, l)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("bench: baseline shares no stages with the current H1 run")
	}
	return lines, nil
}

// regressAttempts bounds the measure-and-retry loop in RunRegress.
const regressAttempts = 3

// RunRegress runs the H1 experiment and gates it against a recorded
// trajectory document. It prints the comparison table and returns an
// error naming the regressed stages if any stage fails, so callers can
// turn it into a non-zero exit.
//
// A failing comparison re-measures (up to regressAttempts runs) and keeps
// each stage's best observation before the final verdict. The baseline is
// itself a best-case record, and cross-process drift on a shared machine
// — CPU steal, frequency scaling, cache pollution — can move a
// sub-microsecond stage by tens of percent in either direction between
// runs, which no per-run estimator cancels. Ambient drift rarely loses
// three independent runs in a row; a genuine code regression loses all of
// them.
func RunRegress(cfg Config, baselineDoc []byte, tolPct float64) error {
	cfg = cfg.withDefaults()
	baseline, err := ParseTrajectory(baselineDoc)
	if err != nil {
		return err
	}
	var lines []RegressLine
	best := map[string]HotpathStage{}
	for attempt := 0; attempt < regressAttempts; attempt++ {
		res, err := MeasureHotpath(cfg)
		if err != nil {
			return err
		}
		for _, s := range res.Stages {
			if b, ok := best[s.Stage]; !ok || s.NsPerOp < b.NsPerOp {
				if ok && b.AllocsPerOp < s.AllocsPerOp {
					s.AllocsPerOp = b.AllocsPerOp
				}
				best[s.Stage] = s
			}
		}
		merged := res
		merged.Stages = append([]HotpathStage(nil), res.Stages...)
		for i, s := range merged.Stages {
			merged.Stages[i] = best[s.Stage]
		}
		lines, err = CompareHotpath(baseline, merged, tolPct)
		if err != nil {
			return err
		}
		failed := false
		for _, l := range lines {
			failed = failed || l.Failed
		}
		if !failed {
			break
		}
	}
	printRegress(cfg.Out, lines)
	var failed []string
	for _, l := range lines {
		if l.Failed {
			failed = append(failed, l.Stage)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("bench: perf regression in stage(s) %s", strings.Join(failed, ", "))
	}
	return nil
}

func printRegress(w io.Writer, lines []RegressLine) {
	fmt.Fprintf(w, "H1 regression gate (old = recorded trajectory, new = this run)\n\n")
	fmt.Fprintf(w, "%-14s %-12s %-12s %-9s %-12s %-12s %s\n",
		"stage", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "verdict")
	for _, l := range lines {
		verdict := "ok"
		if l.Failed {
			verdict = "FAIL: " + l.Reason
		}
		fmt.Fprintf(w, "%-14s %-12.1f %-12.1f %-+8.1f%% %-12.3f %-12.3f %s\n",
			l.Stage, l.OldNsOp, l.NewNsOp, l.NsDeltaPct, l.OldAllocsOp, l.NewAllocs, verdict)
	}
	fmt.Fprintln(w)
}
