package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/obs"
	"noncanon/internal/workload"
)

// ObsPoint is one subscriber count of the metrics-overhead sweep
// (experiment O1): broker publish throughput with no metrics registry
// against the same workload with a live registry — counters, latency
// histograms and the publish-path clock all on. The histogram quantiles
// come straight from the instrumented run's registry, so the experiment
// also demonstrates what turning metrics on buys.
type ObsPoint struct {
	Subs int

	BaseEventsPerSec    float64 // Options.Metrics == nil
	MetricsEventsPerSec float64 // live registry + latency clock
	DeltaPct            float64 // (base-metrics)/base*100; positive = overhead

	MatchP50   time.Duration // broker_match_latency_seconds p50
	MatchP99   time.Duration
	PublishP99 time.Duration // broker_publish_latency_seconds p99
}

// ObsResult is the regenerated metrics-overhead sweep.
type ObsResult struct {
	GOMAXPROCS int
	Events     int // events published per measurement
	Points     []ObsPoint
}

// obsSubCounts returns the swept subscriber counts.
func obsSubCounts() []int { return []int{250, 1000, 2000} }

// obsRounds is how many times the whole event stream is replayed through
// the paired slices; more rounds average more host-load drift away.
const obsRounds = 4

// obsWarmBroker builds a broker with nsubs stock subscriptions and warm
// pools (a slice of the events has already been published).
func obsWarmBroker(opts broker.Options, nsubs int, evs []event.Event, seed int64) (*broker.Broker, error) {
	opts.QueueSize = 4 * nsubs
	b := broker.New(opts)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nsubs; i++ {
		if _, err := b.Subscribe(workload.StockSub(rng), func(ev event.Event) {}); err != nil {
			b.Close()
			return nil, err
		}
	}
	for i := 0; i < len(evs)/10; i++ {
		if _, err := b.Publish(evs[i]); err != nil {
			b.Close()
			return nil, err
		}
	}
	return b, nil
}

// obsPublishSlice publishes one slice of events and returns the elapsed
// wall time.
func obsPublishSlice(b *broker.Broker, evs []event.Event) (time.Duration, error) {
	start := time.Now()
	for _, ev := range evs {
		if _, err := b.Publish(ev); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// MeasureObs measures the metrics overhead (experiment O1). Base and
// instrumented runs interleave per point and keep the best of each, so
// ambient machine drift hits both sides alike instead of masquerading as
// instrument cost.
func MeasureObs(cfg Config) (ObsResult, error) {
	cfg = cfg.withDefaults()
	events := 1000 * cfg.Trials
	res := ObsResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Events: events}
	for _, subs := range obsSubCounts() {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(subs)))
		// Events carry an unknown symbol, so no subscription matches: the
		// measured loop is the deterministic part of Publish — engine scan,
		// counters, and (instrumented) the latency clock — without the
		// delivery goroutines' scheduling noise drowning a sub-microsecond
		// delta. The quantile columns still fill from these runs.
		evs := make([]event.Event, events)
		for i := range evs {
			evs[i] = workload.StockEvent(rng, i).Set("sym", "UNLISTED")
		}
		// Paired slice interleaving: both brokers live side by side and
		// the event stream is published in short alternating slices, the
		// per-side wall times accumulating separately. Host-load drift then
		// hits both sides almost identically instead of masquerading as
		// (or hiding) instrument cost; over many rounds the accumulated
		// totals compare a sub-microsecond per-op delta stably even on a
		// shared machine.
		// Two broker pairs, constructed in opposite orders: the engine
		// built second lands in an allocator already grown by the first
		// and measurably benefits from the warmer heap, so measuring one
		// pair alone would bias whichever side was built later. Half the
		// rounds run on each pair and the pooled ratios cancel the bias.
		reg := obs.NewRegistry()
		baseBroker, err := obsWarmBroker(broker.Options{}, subs, evs, cfg.Seed)
		if err != nil {
			return res, err
		}
		instBroker, err := obsWarmBroker(broker.Options{Metrics: reg}, subs, evs, cfg.Seed)
		if err != nil {
			baseBroker.Close()
			return res, err
		}
		instBroker2, err := obsWarmBroker(broker.Options{Metrics: reg}, subs, evs, cfg.Seed)
		if err != nil {
			baseBroker.Close()
			instBroker.Close()
			return res, err
		}
		baseBroker2, err := obsWarmBroker(broker.Options{}, subs, evs, cfg.Seed)
		if err != nil {
			baseBroker.Close()
			instBroker.Close()
			instBroker2.Close()
			return res, err
		}
		const slices = 40
		sliceLen := len(evs) / slices
		var baseDur []time.Duration
		var ratios []float64
		for r := 0; r < obsRounds; r++ {
			bb, ib := baseBroker, instBroker
			if r >= obsRounds/2 {
				bb, ib = baseBroker2, instBroker2
			}
			// Swap which broker goes first each round: the second slice of
			// a pair tends to absorb GC cycles triggered by the first, and
			// without alternation that bias reads as instrument cost.
			b1, b2 := bb, ib
			if r%2 == 1 {
				b1, b2 = ib, bb
			}
			for i := 0; i+sliceLen <= len(evs); i += sliceLen {
				slice := evs[i : i+sliceLen]
				d1, err := obsPublishSlice(b1, slice)
				if err != nil {
					break
				}
				d2, err := obsPublishSlice(b2, slice)
				if err != nil {
					break
				}
				if r%2 == 1 {
					d1, d2 = d2, d1
				}
				baseDur = append(baseDur, d1)
				ratios = append(ratios, float64(d2)/float64(d1))
			}
		}
		baseBroker.Close()
		instBroker.Close()
		baseBroker2.Close()
		instBroker2.Close()
		if len(baseDur) == 0 {
			return res, fmt.Errorf("obs: empty measurement at %d subs", subs)
		}
		// The statistic is the median of per-pair duration ratios: the two
		// slices of a pair run milliseconds apart, so host-load drift and
		// CPU steal hit both nearly identically and cancel in the ratio,
		// while a GC cycle or descheduling spike landing in one slice puts
		// that pair in the tail where the median never sees it. Comparing
		// independent per-side medians instead would re-admit everything
		// that moved between their time windows.
		sort.Slice(baseDur, func(i, j int) bool { return baseDur[i] < baseDur[j] })
		sort.Float64s(ratios)
		base := float64(sliceLen) / baseDur[len(baseDur)/2].Seconds()
		ratio := ratios[len(ratios)/2]
		instrumented := base / ratio
		p := ObsPoint{
			Subs:                subs,
			BaseEventsPerSec:    base,
			MetricsEventsPerSec: instrumented,
			DeltaPct:            (base - instrumented) / base * 100,
		}
		if s, ok := reg.Get("broker_match_latency_seconds"); ok {
			p.MatchP50 = s.Hist.Quantile(0.50)
			p.MatchP99 = s.Hist.Quantile(0.99)
		}
		if s, ok := reg.Get("broker_publish_latency_seconds"); ok {
			p.PublishP99 = s.Hist.Quantile(0.99)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// RunObs reports the metrics-overhead sweep (experiment O1).
func RunObs(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureObs(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "subs,base_ev_s,metrics_ev_s,delta_pct,match_p50_us,match_p99_us,publish_p99_us\n")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%d,%.1f,%.1f,%.2f,%.1f,%.1f,%.1f\n",
				p.Subs, p.BaseEventsPerSec, p.MetricsEventsPerSec, p.DeltaPct,
				float64(p.MatchP50.Nanoseconds())/1e3, float64(p.MatchP99.Nanoseconds())/1e3,
				float64(p.PublishP99.Nanoseconds())/1e3)
		}
		return nil
	}
	fmt.Fprintf(w, "O1: metrics overhead on the broker publish path (GOMAXPROCS %d)\n", res.GOMAXPROCS)
	fmt.Fprintf(w, "workload: stock events, %d per measurement, median of paired alternating slices\n\n", res.Events)
	fmt.Fprintf(w, "%-8s %-14s %-14s %-10s %-12s %-12s %-12s\n",
		"subs", "base ev/s", "metrics ev/s", "delta %", "match p50", "match p99", "publish p99")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-8d %-14.1f %-14.1f %-10.2f %-12v %-12v %-12v\n",
			p.Subs, p.BaseEventsPerSec, p.MetricsEventsPerSec, p.DeltaPct,
			p.MatchP50.Round(time.Microsecond), p.MatchP99.Round(time.Microsecond),
			p.PublishP99.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "\nThe instrumented runs add two clock reads and a handful of atomic\n")
	fmt.Fprintf(w, "increments per publish; the delta column is the price of knowing the\n")
	fmt.Fprintf(w, "latency quantiles on the right.\n")
	return nil
}
