// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§4), plus the ablations listed in DESIGN.md.
//
// Experiment identifiers:
//
//	table1            echo the workload parameters (Table 1)
//	fig3a … fig3f     subscription-matching time sweeps (Fig. 3 a-f)
//	memory            per-engine memory, capacity within 512 MB (M1)
//	million           engine entries vs subscriber count, DAG vs flat aggregation (M1 (million))
//	crossover         fine-grained small-N sweep (C4)
//	ablation-reorder  child-reordering effect (A1)
//	ablation-encoding paper vs compact tree encoding (A2)
//
// All sweeps measure phase two (subscription matching) only, exactly like
// the paper: phase one is shared between the algorithms. Sizes scale with
// Config.Scale so the same shapes can be regenerated on any machine; the
// default 1/50 scale finishes in seconds, -scale 1 reproduces the paper's
// subscription counts (the DNF baselines then need multi-gigabyte memory,
// which is the paper's point).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"noncanon/internal/core"
	"noncanon/internal/counting"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/memmodel"
	"noncanon/internal/predicate"
	"noncanon/internal/workload"
)

// Config controls experiment execution.
type Config struct {
	// Out receives the experiment report.
	Out io.Writer
	// Scale multiplies the paper's subscription counts (default 0.02).
	Scale float64
	// Points is the number of sweep points per figure (default 10).
	Points int
	// Trials is the number of measured events per point (default 5).
	Trials int
	// Seed drives workload generation and fulfilled-predicate draws.
	Seed int64
	// Swap, when non-nil, applies the page-swap cost model to every
	// measured duration using each engine's resident size (experiment M2).
	Swap *memmodel.SwapModel
	// CSV switches the output from aligned text to comma-separated values.
	CSV bool
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Points <= 0 {
		c.Points = 10
	}
	if c.Trials <= 0 {
		c.Trials = 5
	}
	return c
}

// Experiment is a named, runnable reproduction artefact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) error
}

// Experiments returns every experiment in presentation order.
func Experiments() []Experiment {
	exps := []Experiment{
		{ID: "table1", Title: "Table 1: experiment parameters", Run: RunTable1},
	}
	for _, f := range Fig3Variants() {
		f := f
		exps = append(exps, Experiment{
			ID:    f.ID,
			Title: f.Title(),
			Run:   func(cfg Config) error { return RunFig3(cfg, f) },
		})
	}
	exps = append(exps,
		Experiment{ID: "memory", Title: "M1: memory per engine and 512 MB capacity", Run: RunMemory},
		Experiment{ID: "crossover", Title: "C4: small-N crossover, counting vs non-canonical", Run: RunCrossover},
		Experiment{ID: "ablation-reorder", Title: "A1: subscription-tree child reordering", Run: RunAblationReorder},
		Experiment{ID: "ablation-encoding", Title: "A2: paper vs compact tree encoding", Run: RunAblationEncoding},
		Experiment{ID: "parallel", Title: "P1: concurrent match throughput vs workers (RWMutex vs single lock)", Run: RunParallel},
		Experiment{ID: "shard", Title: "S1: sharded matching throughput and p99 vs shard count (± churn)", Run: RunShard},
		Experiment{ID: "batch", Title: "B1: batched publish events/s and p50/p99 vs batch size over TCP (± churn)", Run: RunBatch},
		Experiment{ID: "cover", Title: "C1: filter aggregation + covering flood pruning vs popularity skew", Run: RunCover},
		Experiment{ID: "million", Title: "M1 (million): engine entries track the covering frontier — DAG vs flat aggregation to 1M subscribers", Run: RunMillion},
		Experiment{ID: "federate", Title: "F1: federated broker tree over loopback TCP — events/s and flood msgs vs node count (± cover)", Run: RunFederate},
		Experiment{ID: "chaos", Title: "FC1: chaos federation — bounded spill queues, shedding and slow-peer eviction under a stalled link", Run: RunChaos},
		Experiment{ID: "obs", Title: "O1: metrics overhead on the broker publish path (base vs instrumented, latency quantiles)", Run: RunObs},
		Experiment{ID: "hotpath", Title: "H1: publish-spine stage costs — decode (copy vs alias), match, publish; ns/op, allocs/op, events/s-per-core", Run: RunHotpath},
	)
	return exps
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Fig3Variant names one subplot of Fig. 3.
type Fig3Variant struct {
	ID          string
	PredsPerSub int
	Fulfilled   int
	// PaperMaxSubs is the x-axis limit of the subplot in the paper.
	PaperMaxSubs int
}

// Title renders the subplot caption.
func (f Fig3Variant) Title() string {
	return fmt.Sprintf("Fig. 3(%s): %d predicates, %d fulfilled ones",
		f.ID[len(f.ID)-1:], f.PredsPerSub, f.Fulfilled)
}

// Fig3Variants returns the six subplots of Fig. 3.
func Fig3Variants() []Fig3Variant {
	return []Fig3Variant{
		{ID: "fig3a", PredsPerSub: 6, Fulfilled: 5000, PaperMaxSubs: 5_000_000},
		{ID: "fig3b", PredsPerSub: 8, Fulfilled: 5000, PaperMaxSubs: 4_000_000},
		{ID: "fig3c", PredsPerSub: 10, Fulfilled: 5000, PaperMaxSubs: 2_500_000},
		{ID: "fig3d", PredsPerSub: 6, Fulfilled: 10000, PaperMaxSubs: 5_000_000},
		{ID: "fig3e", PredsPerSub: 8, Fulfilled: 10000, PaperMaxSubs: 4_000_000},
		{ID: "fig3f", PredsPerSub: 10, Fulfilled: 10000, PaperMaxSubs: 2_500_000},
	}
}

// RunTable1 prints the paper's Table 1 with this harness's concrete values.
func RunTable1(cfg Config) error {
	cfg = cfg.withDefaults()
	maxSubs := int(float64(5_000_000) * cfg.Scale)
	fmt.Fprintf(cfg.Out, "Table 1. Parameters in experiments (scale %.3g).\n\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-42s %s\n", "Parameter", "Value")
	rows := [][2]string{
		{"Number of subscriptions", fmt.Sprintf("%d - %d", scaleCount(2000, cfg.Scale), maxSubs)},
		{"Original (unique) predicates per subscription", "6 to 10"},
		{"Subscriptions per subscription after transformation", "8 to 32"},
		{"Used Boolean operators", "AND, OR"},
		{"Matching predicates per event", "5,000 - 10,000"},
	}
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-42s %s\n", r[0], r[1])
	}
	return nil
}

func scaleCount(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 100 {
		s = 100
	}
	return s
}

// sweepPoints returns Points subscription counts from roughly max/Points up
// to max.
func sweepPoints(maxSubs, points int) []int {
	if maxSubs < points {
		points = maxSubs
	}
	out := make([]int, 0, points)
	for i := 1; i <= points; i++ {
		out = append(out, maxSubs*i/points)
	}
	// Dedup (tiny maxSubs can repeat).
	out = uniqueInts(out)
	return out
}

func uniqueInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// engines bundles the three measured algorithms over shared phase-one
// structures.
type engines struct {
	reg *predicate.Registry
	idx *index.Index
	nc  *core.Engine
	cnt *counting.Engine // timed with both Classic and Variant
}

func newEngines(coreOpts core.Options) *engines {
	reg := predicate.NewRegistry()
	idx := index.New()
	return &engines{
		reg: reg,
		idx: idx,
		nc:  core.New(reg, idx, coreOpts),
		cnt: counting.New(reg, idx, counting.Options{Algorithm: counting.Classic}),
	}
}

// grow registers subscriptions [from, to) of the workload into both engines.
func (es *engines) grow(p workload.Params, from, to int) error {
	for i := from; i < to; i++ {
		expr := p.Sub(i)
		if _, err := es.nc.Subscribe(expr); err != nil {
			return fmt.Errorf("bench: non-canonical subscribe %d: %w", i, err)
		}
		if _, err := es.cnt.Subscribe(expr); err != nil {
			return fmt.Errorf("bench: counting subscribe %d: %w", i, err)
		}
	}
	return nil
}

// timeMatch measures the mean phase-two duration over the draws. One
// unmeasured warmup pass touches the engine's scratch structures (first-use
// growth, cold caches) and a garbage collection drains registration debris,
// so measurements reflect steady-state matching like the paper's repeated
// runs ("we have run our experiments several times", §4).
func timeMatch(fn func([]predicate.ID) []matcher.SubID, draws [][]predicate.ID) time.Duration {
	fn(draws[0])
	runtime.GC()
	start := time.Now()
	for _, d := range draws {
		fn(d)
	}
	return time.Duration(int64(time.Since(start)) / int64(len(draws)))
}

// Fig3Point is one x-position of a Fig. 3 subplot.
type Fig3Point struct {
	Subs            int
	NonCanonical    time.Duration
	CountingVariant time.Duration
	Counting        time.Duration
}

// Fig3Result is a regenerated subplot.
type Fig3Result struct {
	Variant Fig3Variant
	Points  []Fig3Point
}

// MeasureFig3 regenerates one subplot and returns the series.
func MeasureFig3(cfg Config, v Fig3Variant) (Fig3Result, error) {
	cfg = cfg.withDefaults()
	maxSubs := scaleCount(v.PaperMaxSubs, cfg.Scale)
	params := workload.Params{
		NumSubscriptions:  maxSubs,
		PredsPerSub:       v.PredsPerSub,
		FulfilledPerEvent: v.Fulfilled,
		Seed:              cfg.Seed,
	}
	if err := params.Validate(); err != nil {
		return Fig3Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	es := newEngines(core.Options{})
	res := Fig3Result{Variant: v}
	cur := 0
	for _, n := range sweepPoints(maxSubs, cfg.Points) {
		if err := es.grow(params, cur, n); err != nil {
			return Fig3Result{}, err
		}
		cur = n
		// Draw fulfilled sets over the predicates registered so far.
		drawParams := params
		drawParams.NumSubscriptions = n
		draws := make([][]predicate.ID, cfg.Trials)
		for t := range draws {
			draws[t] = drawParams.FulfilledDraw(rng)
		}
		pt := Fig3Point{
			Subs:            n,
			NonCanonical:    timeMatch(es.nc.MatchPredicates, draws),
			CountingVariant: timeMatch(variantFn(es.cnt), draws),
			Counting:        timeMatch(classicFn(es.cnt), draws),
		}
		if cfg.Swap != nil {
			shared := es.reg.MemBytes() + es.idx.MemBytes()
			pt.NonCanonical = cfg.Swap.Apply(pt.NonCanonical, shared+es.nc.MemBytes())
			pt.CountingVariant = cfg.Swap.Apply(pt.CountingVariant, shared+es.cnt.MemBytes())
			pt.Counting = cfg.Swap.Apply(pt.Counting, shared+es.cnt.MemBytes())
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func variantFn(e *counting.Engine) func([]predicate.ID) []matcher.SubID {
	return func(f []predicate.ID) []matcher.SubID {
		return e.MatchPredicatesAlg(counting.Variant, f)
	}
}

func classicFn(e *counting.Engine) func([]predicate.ID) []matcher.SubID {
	return func(f []predicate.ID) []matcher.SubID {
		return e.MatchPredicatesAlg(counting.Classic, f)
	}
}

// RunFig3 regenerates one subplot and prints its series.
func RunFig3(cfg Config, v Fig3Variant) error {
	cfg = cfg.withDefaults()
	res, err := MeasureFig3(cfg, v)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "subs,non_canonical_s,counting_variant_s,counting_s\n")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%d,%.9f,%.9f,%.9f\n", p.Subs,
				p.NonCanonical.Seconds(), p.CountingVariant.Seconds(), p.Counting.Seconds())
		}
		return nil
	}
	fmt.Fprintf(w, "%s — subscription matching time per event (seconds)\n", v.Title())
	fmt.Fprintf(w, "scale: workload of up to %d subscriptions (paper: %d)\n\n",
		scaleCount(v.PaperMaxSubs, cfg.Scale), v.PaperMaxSubs)
	fmt.Fprintf(w, "%-12s %-16s %-18s %-16s\n", "subs", "non-canonical", "counting-variant", "counting")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-12d %-16.9f %-18.9f %-16.9f\n", p.Subs,
			p.NonCanonical.Seconds(), p.CountingVariant.Seconds(), p.Counting.Seconds())
	}
	fmt.Fprintln(w)
	return nil
}
