package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/broker"
	"noncanon/internal/event"
	"noncanon/internal/overlay"
	"noncanon/internal/predicate"
)

// CoverPoint is one popularity-skew setting of the covering/aggregation
// sweep (experiment C1). A skew of 0 draws filters uniformly from the
// pool; larger values draw by a Zipf law with that exponent (popular
// filters are both frequent and broad).
type CoverPoint struct {
	Skew float64

	// Broker with and without Options.Aggregate: engine entries after all
	// subscribes, subscribe throughput, and publish latency.
	EngineOff     int
	EngineOn      int
	SubsPerSecOff float64
	SubsPerSecOn  float64
	P50Off        time.Duration
	P99Off        time.Duration
	P50On         time.Duration
	P99On         time.Duration

	// Overlay flood with and without Config.Cover: subscription link
	// messages for the same registration sequence, and how many forwards
	// covering pruned.
	FloodMsgsOff uint64
	FloodMsgsOn  uint64
	Suppressed   uint64
}

// CoverResult is the regenerated covering sweep.
type CoverResult struct {
	Subscribers  int
	Pool         int
	Categories   int
	OverlayNodes int
	Points       []CoverPoint
}

// coverCategories is the number of filter categories in the pool; filters
// within a category are nested price bands, so low Zipf ranks are broad
// AND popular — the regime covering exploits.
const coverCategories = 16

// coverFilter returns distinct filter #rank of a pool of `pool`: an
// equality on the category plus a price band whose width shrinks with the
// rank. Within a category, a lower rank covers every higher one.
func coverFilter(rank, pool int) boolexpr.Expr {
	levels := pool/coverCategories + 1
	cat := rank % coverCategories
	width := levels - rank/coverCategories // 1 … levels, broad first
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(cat)),
		boolexpr.Pred("price", predicate.Lt, int64(10*width)),
	)
}

func coverEvent(rng *rand.Rand, pool int) event.Event {
	levels := pool/coverCategories + 1
	return event.New().
		Set("cat", int64(rng.Intn(coverCategories))).
		Set("price", int64(rng.Intn(10*levels)))
}

// coverRanks draws the filter rank of every subscriber under the given
// skew (0 = uniform, otherwise the Zipf exponent).
func coverRanks(rng *rand.Rand, skew float64, n, pool int) []int {
	ranks := make([]int, n)
	if skew == 0 {
		for i := range ranks {
			ranks[i] = rng.Intn(pool)
		}
		return ranks
	}
	z := rand.NewZipf(rng, skew, 1, uint64(pool-1))
	for i := range ranks {
		ranks[i] = int(z.Uint64())
	}
	return ranks
}

// coverSkews returns the swept skew settings.
func coverSkews() []float64 { return []float64{0, 1.1, 1.5, 2.0} }

// MeasureCover measures what subscription aggregation and covering buy
// under filter-popularity skew: N subscribers draw from a pool of distinct
// filters by a Zipf law, and the same draw is registered into an
// aggregating and a non-aggregating broker (engine size, subscribe
// throughput, publish latency) and flooded through a covering and a plain
// overlay (subscription link messages).
//
// The headline effects: with aggregation the engine grows with the number
// of *distinct* filters drawn, not with the subscriber count, and with
// covering the overlay forwards a fraction of the subscription messages —
// both improving as the skew concentrates popularity on broad filters.
func MeasureCover(cfg Config) (CoverResult, error) {
	cfg = cfg.withDefaults()
	subs := scaleCount(200_000, cfg.Scale)
	pool := subs / 16
	if pool < coverCategories {
		pool = coverCategories
	}
	const overlayNodes = 15

	res := CoverResult{
		Subscribers:  subs,
		Pool:         pool,
		Categories:   coverCategories,
		OverlayNodes: overlayNodes,
	}
	for _, skew := range coverSkews() {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(skew*1000)))
		ranks := coverRanks(rng, skew, subs, pool)

		pt := CoverPoint{Skew: skew}
		var err error
		pt.EngineOff, pt.SubsPerSecOff, pt.P50Off, pt.P99Off, err =
			coverBrokerRun(cfg, ranks, pool, false)
		if err != nil {
			return CoverResult{}, err
		}
		pt.EngineOn, pt.SubsPerSecOn, pt.P50On, pt.P99On, err =
			coverBrokerRun(cfg, ranks, pool, true)
		if err != nil {
			return CoverResult{}, err
		}

		// Overlay flood: same draw spread over the tree's nodes. The plain
		// network floods every subscription across all links; the covering
		// one prunes forwards shadowed by broader filters.
		pt.FloodMsgsOff, _, err = coverOverlayRun(cfg, ranks, pool, overlayNodes, false)
		if err != nil {
			return CoverResult{}, err
		}
		pt.FloodMsgsOn, pt.Suppressed, err = coverOverlayRun(cfg, ranks, pool, overlayNodes, true)
		if err != nil {
			return CoverResult{}, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// coverBrokerRun registers the drawn filters into a fresh broker and
// measures engine entries, subscribe throughput and publish latency.
func coverBrokerRun(cfg Config, ranks []int, pool int, aggregate bool) (engineEntries int, subsPerSec float64, p50, p99 time.Duration, err error) {
	br := broker.New(broker.Options{QueueSize: 1024, Aggregate: aggregate})
	defer br.Close()
	noop := func(event.Event) {}

	t0 := time.Now()
	for _, r := range ranks {
		if _, err := br.Subscribe(coverFilter(r, pool), noop); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("bench: cover subscribe: %w", err)
		}
	}
	subDur := time.Since(t0)
	if subDur <= 0 {
		subDur = time.Nanosecond
	}
	subsPerSec = float64(len(ranks)) / subDur.Seconds()
	engineEntries = br.Stats().DistinctFilters

	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	publishes := 64 * cfg.Trials
	durs := make([]time.Duration, 0, publishes)
	if _, err := br.Publish(coverEvent(rng, pool)); err != nil { // warmup
		return 0, 0, 0, 0, err
	}
	for i := 0; i < publishes; i++ {
		ev := coverEvent(rng, pool)
		c0 := time.Now()
		if _, err := br.Publish(ev); err != nil {
			return 0, 0, 0, 0, err
		}
		durs = append(durs, time.Since(c0))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return engineEntries, subsPerSec, percentile(durs, 50), percentile(durs, 99), nil
}

// coverOverlayRun floods the drawn filters through a fresh tree overlay
// and reports the subscription link-message count (and suppressions).
func coverOverlayRun(cfg Config, ranks []int, pool, nodes int, coverOn bool) (floodMsgs, suppressed uint64, err error) {
	// Overlay flooding is O(subs × nodes); cap the registration count so
	// the sweep stays proportionate to the broker side.
	if len(ranks) > 4096 {
		ranks = ranks[:4096]
	}
	// The registration storm runs unthrottled: spill-queue forwarding means
	// a full inbox can delay but never deadlock the flood, so the old
	// oversized-inbox + periodic-quiescing workaround is gone.
	nw, err := overlay.NewTree(nodes, 2, overlay.Config{Cover: coverOn})
	if err != nil {
		return 0, 0, err
	}
	defer nw.Close()
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	noop := func(event.Event) {}
	for _, r := range ranks {
		at := overlay.NodeID(rng.Intn(nodes))
		if _, err := nw.Subscribe(at, coverFilter(r, pool), noop); err != nil {
			return 0, 0, fmt.Errorf("bench: cover overlay subscribe: %w", err)
		}
	}
	nw.Flush()
	st := nw.Stats()
	return st.SubscriptionMsgs, st.CoverSuppressed, nil
}

// RunCover regenerates the covering sweep and prints its series.
func RunCover(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureCover(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "skew,engine_off,engine_on,subs_s_off,subs_s_on,pub_p50_off_s,pub_p99_off_s,pub_p50_on_s,pub_p99_on_s,flood_off,flood_on,suppressed\n")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%.2f,%d,%d,%.1f,%.1f,%.9f,%.9f,%.9f,%.9f,%d,%d,%d\n",
				p.Skew, p.EngineOff, p.EngineOn, p.SubsPerSecOff, p.SubsPerSecOn,
				p.P50Off.Seconds(), p.P99Off.Seconds(), p.P50On.Seconds(), p.P99On.Seconds(),
				p.FloodMsgsOff, p.FloodMsgsOn, p.Suppressed)
		}
		return nil
	}
	fmt.Fprintf(w, "C1: subscription aggregation and covering vs filter-popularity skew\n")
	fmt.Fprintf(w, "workload: %d subscribers over %d distinct filters (%d categories of nested bands);\n",
		res.Subscribers, res.Pool, res.Categories)
	fmt.Fprintf(w, "overlay: %d-node binary tree, first %d registrations; skew 0 = uniform draw\n\n",
		res.OverlayNodes, min(res.Subscribers, 4096))
	fmt.Fprintf(w, "%-6s | %-18s| %-22s| %-32s| %s\n",
		"", "engine entries", "subscribe ops/s", "publish p50/p99", "overlay flood msgs")
	fmt.Fprintf(w, "%-6s | %-8s %-9s| %-10s %-11s| %-15s %-16s| %-8s %-8s %-8s\n",
		"skew", "plain", "aggr", "plain", "aggr", "plain", "aggr", "plain", "cover", "pruned")
	for _, p := range res.Points {
		off := fmtDur(p.P50Off) + "/" + fmtDur(p.P99Off)
		on := fmtDur(p.P50On) + "/" + fmtDur(p.P99On)
		fmt.Fprintf(w, "%-6.2f | %-8d %-9d| %-10.0f %-11.0f| %-15s %-16s| %-8d %-8d %-8d\n",
			p.Skew, p.EngineOff, p.EngineOn, p.SubsPerSecOff, p.SubsPerSecOn,
			off, on, p.FloodMsgsOff, p.FloodMsgsOn, p.Suppressed)
	}
	fmt.Fprintln(w)
	return nil
}
