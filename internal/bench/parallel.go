package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"noncanon/internal/core"
	"noncanon/internal/index"
	"noncanon/internal/predicate"
	"noncanon/internal/workload"
)

// ParallelPoint is one worker count of the concurrency sweep: phase-two
// throughput with the RWMutex read path against the same callers funnelled
// through a single exclusive lock (the pre-refactor engine architecture).
type ParallelPoint struct {
	Workers          int
	EventsPerSec     float64 // concurrent read path
	SerializedPerSec float64 // single-lock reference
	Speedup          float64 // EventsPerSec / SerializedPerSec
}

// ParallelResult is the regenerated concurrency sweep (experiment P1).
type ParallelResult struct {
	GOMAXPROCS int
	Subs       int
	Points     []ParallelPoint
}

// workerCounts returns 1, 2, 4, … capped at and always including max.
func workerCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// MeasureParallel measures phase-two matching throughput (events/s) for
// increasing worker counts over a fixed workload, pairing every point with
// the serialized single-lock reference. On a multi-core host the concurrent
// series should scale with the worker count while the serialized one stays
// flat — the motivation for the engine's RWMutex store. With GOMAXPROCS=1
// both series coincide (no hardware parallelism to exploit).
func MeasureParallel(cfg Config) (ParallelResult, error) {
	cfg = cfg.withDefaults()
	subs := scaleCount(1_000_000, cfg.Scale)
	params := workload.Params{
		NumSubscriptions:  subs,
		PredsPerSub:       6,
		FulfilledPerEvent: 5000,
		Seed:              cfg.Seed,
	}
	if err := params.Validate(); err != nil {
		return ParallelResult{}, err
	}
	eng := core.New(predicate.NewRegistry(), index.New(), core.Options{})
	for i := 0; i < subs; i++ {
		if _, err := eng.Subscribe(params.Sub(i)); err != nil {
			return ParallelResult{}, fmt.Errorf("bench: parallel subscribe %d: %w", i, err)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	draws := make([][]predicate.ID, 16)
	for t := range draws {
		draws[t] = params.FulfilledDraw(rng)
	}

	perWorker := 20 * cfg.Trials
	res := ParallelResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Subs: subs}
	for _, w := range workerCounts(res.GOMAXPROCS) {
		concurrent := throughput(w, perWorker, draws, func(d []predicate.ID) {
			eng.MatchPredicates(d)
		})
		var mu sync.Mutex
		serialized := throughput(w, perWorker, draws, func(d []predicate.ID) {
			mu.Lock()
			eng.MatchPredicates(d)
			mu.Unlock()
		})
		res.Points = append(res.Points, ParallelPoint{
			Workers:          w,
			EventsPerSec:     concurrent,
			SerializedPerSec: serialized,
			Speedup:          concurrent / serialized,
		})
	}
	return res, nil
}

// throughput measures aggregate events per second for perWorker match calls
// on each of w workers, repeating the measurement and keeping the best run
// (like the paper's repeated experiments, best-of filters scheduler and GC
// noise). One unmeasured warmup call per worker touches scratch structures
// before each timed run, mirroring timeMatch.
func throughput(w, perWorker int, draws [][]predicate.ID, match func([]predicate.ID)) float64 {
	const reps = 3
	best := 0.0
	for r := 0; r < reps; r++ {
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				match(draws[off%len(draws)])
				<-start
				for j := 0; j < perWorker; j++ {
					match(draws[(off+j)%len(draws)])
				}
			}(i)
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		dur := time.Since(t0)
		if dur <= 0 {
			dur = time.Nanosecond
		}
		if evs := float64(w*perWorker) / dur.Seconds(); evs > best {
			best = evs
		}
	}
	return best
}

// RunParallel regenerates the concurrency sweep and prints its series.
func RunParallel(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureParallel(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "workers,concurrent_ev_s,serialized_ev_s,speedup\n")
		for _, p := range res.Points {
			fmt.Fprintf(w, "%d,%.1f,%.1f,%.3f\n", p.Workers, p.EventsPerSec, p.SerializedPerSec, p.Speedup)
		}
		return nil
	}
	fmt.Fprintf(w, "P1: concurrent match throughput vs workers (GOMAXPROCS %d)\n", res.GOMAXPROCS)
	fmt.Fprintf(w, "workload: %d subscriptions, 6 preds/sub, 5000 fulfilled/event\n\n", res.Subs)
	fmt.Fprintf(w, "%-8s %-18s %-18s %-8s\n", "workers", "concurrent ev/s", "serialized ev/s", "speedup")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-8d %-18.1f %-18.1f %-8.3f\n", p.Workers, p.EventsPerSec, p.SerializedPerSec, p.Speedup)
	}
	fmt.Fprintln(w)
	return nil
}
