package bench

import (
	"strings"
	"testing"
)

func hotpathBaseline(t *testing.T) JSONResult {
	t.Helper()
	res, err := ParseTrajectory([]byte(`{
	  "experiment": "hotpath",
	  "points": [
	    {"stage": "decode_copy",  "ns_op": 1000, "allocs_op": 12, "ev_s_core": 1000000},
	    {"stage": "decode_alias", "ns_op": 400,  "allocs_op": 1,  "ev_s_core": 2500000},
	    {"stage": "match",        "ns_op": 2000, "allocs_op": 0,  "ev_s_core": 500000}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCompareHotpathVerdicts drives the comparator through a pass, an
// ns/op regression beyond tolerance, an allocs/op climb, and an
// improvement, pinning the failure reasons.
func TestCompareHotpathVerdicts(t *testing.T) {
	base := hotpathBaseline(t)
	cur := HotpathResult{Stages: []HotpathStage{
		{Stage: "decode_copy", NsPerOp: 1050, AllocsPerOp: 12}, // +5%: within tolerance
		{Stage: "decode_alias", NsPerOp: 500, AllocsPerOp: 1},  // +25%: ns/op regression
		{Stage: "match", NsPerOp: 1500, AllocsPerOp: 1.0},      // faster but now allocates
		{Stage: "publish", NsPerOp: 9999, AllocsPerOp: 99},     // not in baseline: skipped
	}}
	lines, err := CompareHotpath(base, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (publish has no baseline): %+v", len(lines), lines)
	}
	byStage := map[string]RegressLine{}
	for _, l := range lines {
		byStage[l.Stage] = l
	}
	if l := byStage["decode_copy"]; l.Failed {
		t.Errorf("decode_copy within tolerance but failed: %+v", l)
	}
	if l := byStage["decode_alias"]; !l.Failed || !strings.Contains(l.Reason, "ns/op regressed") {
		t.Errorf("decode_alias should fail on ns/op: %+v", l)
	}
	if l := byStage["match"]; !l.Failed || !strings.Contains(l.Reason, "allocs/op grew") {
		t.Errorf("match should fail on allocs despite being faster: %+v", l)
	}
}

// TestCompareHotpathAllocSlack: sub-allocation jitter under the slack
// passes; a whole extra allocation fails.
func TestCompareHotpathAllocSlack(t *testing.T) {
	base := hotpathBaseline(t)
	jitter := HotpathResult{Stages: []HotpathStage{{Stage: "match", NsPerOp: 2000, AllocsPerOp: 0.3}}}
	lines, err := CompareHotpath(base, jitter, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Failed {
		t.Errorf("0.3 allocs jitter over a 0 baseline should pass: %+v", lines[0])
	}
	extra := HotpathResult{Stages: []HotpathStage{{Stage: "match", NsPerOp: 2000, AllocsPerOp: 1.0}}}
	lines, err = CompareHotpath(base, extra, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !lines[0].Failed {
		t.Errorf("a full extra allocation over a 0 baseline should fail: %+v", lines[0])
	}
}

// TestCompareHotpathRejectsForeignBaseline: gating against a document
// from another experiment is an error, not a vacuous pass.
func TestCompareHotpathRejectsForeignBaseline(t *testing.T) {
	obsDoc, err := ParseTrajectory([]byte(`{"experiment": "obs", "points": []}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareHotpath(obsDoc, HotpathResult{}, 10); err == nil {
		t.Error("foreign baseline accepted")
	}
	disjoint := hotpathBaseline(t)
	cur := HotpathResult{Stages: []HotpathStage{{Stage: "brand_new", NsPerOp: 1, AllocsPerOp: 0}}}
	if _, err := CompareHotpath(disjoint, cur, 10); err == nil {
		t.Error("stage-disjoint comparison accepted")
	}
}
