package bench

import (
	"fmt"
	"strings"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/chaos"
	"noncanon/internal/event"
	"noncanon/internal/memmodel"
	"noncanon/internal/netoverlay"
	"noncanon/internal/predicate"
)

// Chaos experiment (FC1) parameters: a deliberately small per-link byte
// budget and a short eviction deadline keep the fault cycle inside a bench
// run; padded storm events make queue bytes dominated by payload, the
// regime the watermark accounting is for.
const (
	chaosHighWater  = 64 << 10
	chaosDeadline   = 150 * time.Millisecond
	chaosPadBytes   = 8 << 10
	chaosStormCap   = 30_000
	chaosHeapBound  = 64 << 20
	chaosHeartbeats = 10 // one oracle heartbeat per this many storm events
)

// ChaosPhase is one phase of the FC1 fault cycle.
type ChaosPhase struct {
	Phase  string
	Events int // events published in this phase

	// Oracle verdict over the phase's tracked deliveries.
	Expected   int
	Delivered  int
	Missing    int
	Duplicated int

	// Flow-control counters at the root broker after the phase.
	Shed            uint64
	SpilledBytes    uint64
	PeakQueuedBytes uint64
	Evicted         uint64

	// HeapDeltaBytes is the peak live-heap growth over the pre-storm
	// baseline (storm phase only).
	HeapDeltaBytes int
}

// ChaosResult is the FC1 chaos run.
type ChaosResult struct {
	HighWater int
	Phases    []ChaosPhase
}

// chaosBand is an FC1 filter: category 1, price below hi. The greedy
// (stalled) subscriber takes a wide band, the healthy one a narrow band
// nested inside it, so covering and re-flood-before-retract are exercised
// by the eviction.
func chaosBand(hi int64) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(1)),
		boolexpr.Pred("price", predicate.Lt, hi),
	)
}

func chaosEvent(price int64, seq int) event.Event {
	return event.New().Set("cat", int64(1)).Set("price", price).Set("seq", int64(seq))
}

// MeasureChaos runs the FC1 fault cycle against a real loopback-TCP
// federation: a root broker with a tight link byte budget, a healthy
// narrow subscriber, and a greedy wide subscriber connected through a
// stallable relay.
//
// Phase storm: the relay freezes (a half-open peer: connections open,
// nothing moves) and the root publishes padded wide-matching events until
// flow control sheds and the congestion monitor evicts the peer — while
// interleaved heartbeat events prove the healthy subscriber still gets
// exactly-once delivery and the live heap stays bounded by the watermark
// budget, not the storm size (the old unbounded queue grew linearly here).
//
// Phase evict: after eviction the dead peer's routes are retracted — a
// matching publish forwards only to the healthy peer.
//
// Phase recover: the evicted broker is killed and a replacement with the
// same node ID reconnects (directly), re-subscribes, and both subscribers
// see every new event exactly once.
func MeasureChaos(cfg Config) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	res := ChaosResult{HighWater: chaosHighWater}

	newBroker := func(id uint32, opts netoverlay.Options) *netoverlay.Broker {
		opts.NodeID = id
		opts.Cover = true
		return netoverlay.NewBroker(opts)
	}
	root := newBroker(1, netoverlay.Options{
		LinkHighWater:      chaosHighWater,
		CongestionDeadline: chaosDeadline,
	})
	defer root.Close()
	rootAddr, err := root.Listen("127.0.0.1:0")
	if err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos listen: %w", err)
	}

	healthy := newBroker(2, netoverlay.Options{})
	defer healthy.Close()
	if err := healthy.Connect(rootAddr.String()); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos link healthy: %w", err)
	}
	heartbeatOracle := chaos.NewOracle()
	if _, err := healthy.Subscribe(chaosBand(10), func(ev event.Event) {
		v, _ := ev.Get("seq")
		heartbeatOracle.Record(uint64(v.Int()))
	}); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos subscribe healthy: %w", err)
	}

	proxy, err := chaos.NewProxy(rootAddr.String())
	if err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos proxy: %w", err)
	}
	defer proxy.Close()
	greedy := newBroker(3, netoverlay.Options{})
	defer greedy.Close()
	if err := greedy.Connect(proxy.Addr()); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos link greedy: %w", err)
	}
	if _, err := greedy.Subscribe(chaosBand(1000), func(event.Event) {}); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos subscribe greedy: %w", err)
	}
	netoverlay.Settle(federateSettle, root, healthy, greedy)

	// --- phase storm ---
	heapBase := memmodel.HeapInuseBytes()
	proxy.Stall()
	pad := strings.Repeat("x", chaosPadBytes)
	storm := ChaosPhase{Phase: "storm"}
	heartbeats := 0
	var heapPeak int
	var st netoverlay.Stats
	for i := 0; i < chaosStormCap; i++ {
		// Wide-only events (price 500) feed the stalled link; periodic
		// heartbeats (price 5) also match the healthy narrow band and are
		// oracle-tracked.
		if err := root.Publish(chaosEvent(500, i).Set("pad", pad)); err != nil {
			return ChaosResult{}, fmt.Errorf("bench: chaos storm publish: %w", err)
		}
		storm.Events++
		if i%chaosHeartbeats == 0 {
			if err := root.Publish(chaosEvent(5, heartbeats)); err != nil {
				return ChaosResult{}, fmt.Errorf("bench: chaos heartbeat publish: %w", err)
			}
			storm.Events++
			heartbeats++
		}
		st = root.Stats()
		if st.QueuedBytes > storm.PeakQueuedBytes {
			storm.PeakQueuedBytes = st.QueuedBytes
		}
		if st.Evicted > 0 {
			break
		}
		if i%50 == 49 {
			// Sustained congestion needs wall time for the monitor to see.
			time.Sleep(time.Millisecond)
		}
		if i%2000 == 1999 {
			if h := memmodel.HeapInuseBytes(); h > heapPeak {
				heapPeak = h
			}
		}
	}
	// The storm stops at eviction; if the cap ran out first the congestion
	// is durable by now, so give the monitor one deadline's grace.
	for end := time.Now().Add(10 * chaosDeadline); root.Stats().Evicted == 0 && time.Now().Before(end); {
		time.Sleep(chaosDeadline / 10)
	}
	if h := memmodel.HeapInuseBytes(); h > heapPeak {
		heapPeak = h
	}
	netoverlay.Settle(federateSettle, root, healthy)

	st = root.Stats()
	storm.Shed, storm.SpilledBytes, storm.Evicted = st.Shed, st.SpilledBytes, st.Evicted
	if d := heapPeak - heapBase; d > 0 {
		storm.HeapDeltaBytes = d
	}
	v := heartbeatOracle.Verify(0, uint64(heartbeats))
	storm.Expected, storm.Delivered, storm.Missing, storm.Duplicated =
		v.Expected, v.Delivered, v.Missing, v.Duplicated
	res.Phases = append(res.Phases, storm)

	if st.Evicted != 1 {
		return ChaosResult{}, fmt.Errorf("bench: chaos: stalled peer not evicted after %d events (stats %+v)", storm.Events, st)
	}
	if st.Shed == 0 || st.SpilledBytes == 0 {
		return ChaosResult{}, fmt.Errorf("bench: chaos: no shed/spill accounting under storm (stats %+v)", st)
	}
	if err := v.Err(); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos: healthy subscriber lost events while connected: %w", err)
	}
	if storm.HeapDeltaBytes > chaosHeapBound {
		return ChaosResult{}, fmt.Errorf("bench: chaos: heap grew %s under storm, bound %s — spill queue is not bounded",
			memmodel.FormatBytes(storm.HeapDeltaBytes), memmodel.FormatBytes(chaosHeapBound))
	}

	// --- phase evict: routes retracted, healthy delivery intact ---
	evict := ChaosPhase{Phase: "evict", Evicted: st.Evicted}
	forwardedBefore := st.Forwarded
	evictOracle := chaos.NewOracle()
	if _, err := healthy.Subscribe(chaosBand(20), func(ev event.Event) {
		v, _ := ev.Get("seq")
		evictOracle.Record(uint64(v.Int()))
	}); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos subscribe post-evict: %w", err)
	}
	netoverlay.Settle(federateSettle, root, healthy)
	const evictEvents = 50
	for i := 0; i < evictEvents; i++ {
		if err := root.Publish(chaosEvent(15, i)); err != nil {
			return ChaosResult{}, fmt.Errorf("bench: chaos evict publish: %w", err)
		}
	}
	netoverlay.Settle(federateSettle, root, healthy)
	evict.Events = evictEvents
	v = evictOracle.Verify(0, evictEvents)
	evict.Expected, evict.Delivered, evict.Missing, evict.Duplicated =
		v.Expected, v.Delivered, v.Missing, v.Duplicated
	st = root.Stats()
	evict.Shed, evict.SpilledBytes = st.Shed, st.SpilledBytes
	res.Phases = append(res.Phases, evict)
	if err := v.Err(); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos: post-eviction delivery broken: %w", err)
	}
	// price 15 is outside the healthy broker's original narrow band (10)
	// but inside the new band (20) and the dead peer's wide band: each
	// event must forward exactly once (healthy), never toward the evicted
	// link.
	if d := st.Forwarded - forwardedBefore; d != evictEvents {
		return ChaosResult{}, fmt.Errorf("bench: chaos: %d forwards for %d post-eviction events; routes not retracted cleanly",
			d, evictEvents)
	}

	// --- phase recover: kill the evicted broker, restart, full delivery ---
	greedy.Close()
	proxy.Close()
	reborn := newBroker(3, netoverlay.Options{})
	defer reborn.Close()
	if err := reborn.Connect(rootAddr.String()); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos reconnect: %w", err)
	}
	rebornOracle := chaos.NewOracle()
	if _, err := reborn.Subscribe(chaosBand(1000), func(ev event.Event) {
		v, _ := ev.Get("seq")
		rebornOracle.Record(uint64(v.Int()))
	}); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos re-subscribe: %w", err)
	}
	recoverOracle := chaos.NewOracle()
	if _, err := healthy.Subscribe(chaosBand(1000), func(ev event.Event) {
		v, _ := ev.Get("seq")
		recoverOracle.Record(uint64(v.Int()))
	}); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: chaos subscribe recover: %w", err)
	}
	netoverlay.Settle(federateSettle, root, healthy, reborn)

	recover := ChaosPhase{Phase: "recover"}
	events := scaleCount(500, cfg.Scale)
	for i := 0; i < events; i++ {
		if err := root.Publish(chaosEvent(900, i)); err != nil {
			return ChaosResult{}, fmt.Errorf("bench: chaos recover publish: %w", err)
		}
	}
	netoverlay.Settle(federateSettle, root, healthy, reborn)
	recover.Events = events
	for _, o := range []*chaos.Oracle{rebornOracle, recoverOracle} {
		v = o.Verify(0, uint64(events))
		recover.Expected += v.Expected
		recover.Delivered += v.Delivered
		recover.Missing += v.Missing
		recover.Duplicated += v.Duplicated
	}
	st = root.Stats()
	recover.Shed, recover.SpilledBytes, recover.Evicted = st.Shed, st.SpilledBytes, st.Evicted
	res.Phases = append(res.Phases, recover)
	if recover.Missing != 0 || recover.Duplicated != 0 {
		return ChaosResult{}, fmt.Errorf("bench: chaos: post-restart delivery broken: %d missing, %d duplicated of %d",
			recover.Missing, recover.Duplicated, recover.Expected)
	}
	for _, b := range []*netoverlay.Broker{root, healthy, reborn} {
		if bst := b.Stats(); bst.HopDropped != 0 || bst.InstallErrors != 0 {
			return ChaosResult{}, fmt.Errorf("bench: chaos node %d: drops/anomalies %+v", b.NodeID(), bst)
		}
	}
	return res, nil
}

// RunChaos regenerates the FC1 chaos run and prints its phase table.
func RunChaos(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := MeasureChaos(cfg)
	if err != nil {
		return err
	}
	w := cfg.Out
	if cfg.CSV {
		fmt.Fprintf(w, "phase,events,expected,delivered,missing,duplicated,shed,spilled_bytes,peak_queued_bytes,evicted,heap_delta_bytes\n")
		for _, p := range res.Phases {
			fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				p.Phase, p.Events, p.Expected, p.Delivered, p.Missing, p.Duplicated,
				p.Shed, p.SpilledBytes, p.PeakQueuedBytes, p.Evicted, p.HeapDeltaBytes)
		}
		return nil
	}
	fmt.Fprintf(w, "FC1: chaos federation — flow control under a stalled peer\n")
	fmt.Fprintf(w, "link high watermark %s, eviction deadline %v; oracle-checked exactly-once while connected\n\n",
		memmodel.FormatBytes(res.HighWater), chaosDeadline)
	fmt.Fprintf(w, "%-8s | %-7s %-9s %-8s %-5s| %-9s %-11s %-11s %-7s| %s\n",
		"phase", "events", "delivered", "missing", "dup", "shed", "spilled", "peak queue", "evicted", "heap delta")
	for _, p := range res.Phases {
		fmt.Fprintf(w, "%-8s | %-7d %-9d %-8d %-5d| %-9d %-11s %-11s %-7d| %s\n",
			p.Phase, p.Events, p.Delivered, p.Missing, p.Duplicated,
			p.Shed, memmodel.FormatBytes(int(p.SpilledBytes)), memmodel.FormatBytes(int(p.PeakQueuedBytes)),
			p.Evicted, memmodel.FormatBytes(p.HeapDeltaBytes))
	}
	fmt.Fprintln(w)
	return nil
}
