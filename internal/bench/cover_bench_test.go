package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCoverFilterPool(t *testing.T) {
	const pool = 64
	// Distinct ranks must yield distinct filters (the pool size is the
	// aggregated engine's ceiling).
	seen := map[string]int{}
	for r := 0; r < pool; r++ {
		s := coverFilter(r, pool).String()
		if prev, dup := seen[s]; dup {
			t.Fatalf("ranks %d and %d collide: %s", prev, r, s)
		}
		seen[s] = r
	}
}

func TestMeasureCover(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Scale: 0.004, Trials: 1, Seed: 7}
	res, err := MeasureCover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(coverSkews()) {
		t.Fatalf("%d points, want %d", len(res.Points), len(coverSkews()))
	}
	for _, p := range res.Points {
		// The headline claims of C1, at every skew setting:
		// engine size tracks distinct filters, not subscribers…
		if p.EngineOff != res.Subscribers {
			t.Errorf("skew %.2f: plain engine = %d, want %d", p.Skew, p.EngineOff, res.Subscribers)
		}
		if p.EngineOn > res.Pool {
			t.Errorf("skew %.2f: aggregated engine = %d entries > pool %d", p.Skew, p.EngineOn, res.Pool)
		}
		if p.EngineOn >= p.EngineOff {
			t.Errorf("skew %.2f: aggregation did not shrink the engine (%d vs %d)",
				p.Skew, p.EngineOn, p.EngineOff)
		}
		// …and covering prunes the subscription flood.
		if p.FloodMsgsOn >= p.FloodMsgsOff {
			t.Errorf("skew %.2f: covering did not prune the flood (%d vs %d)",
				p.Skew, p.FloodMsgsOn, p.FloodMsgsOff)
		}
		if p.Suppressed == 0 {
			t.Errorf("skew %.2f: no suppressions recorded", p.Skew)
		}
		if p.SubsPerSecOff <= 0 || p.SubsPerSecOn <= 0 {
			t.Errorf("skew %.2f: non-positive subscribe throughput", p.Skew)
		}
		if p.P99Off < p.P50Off || p.P99On < p.P50On {
			t.Errorf("skew %.2f: p99 below p50", p.Skew)
		}
	}

	// Output paths: text and CSV.
	if err := RunCover(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "C1:") {
		t.Errorf("text output missing header: %q", buf.String())
	}
	buf.Reset()
	cfg.CSV = true
	if err := RunCover(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "skew,engine_off") {
		t.Errorf("CSV output missing header: %q", buf.String())
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Scale: 0.004, Trials: 1, Seed: 7}
	e, ok := Lookup("cover")
	if !ok {
		t.Fatal("cover experiment not registered")
	}
	if err := RunJSON(e, cfg); err != nil {
		t.Fatal(err)
	}
	var res JSONResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if res.Experiment != "cover" {
		t.Errorf("experiment = %q", res.Experiment)
	}
	if len(res.Points) != len(coverSkews()) {
		t.Fatalf("%d points, want %d", len(res.Points), len(coverSkews()))
	}
	for _, key := range []string{"skew", "engine_off", "engine_on", "flood_off", "flood_on", "pub_p50_on_s", "pub_p99_on_s"} {
		if _, ok := res.Points[0][key]; !ok {
			t.Errorf("point missing %q: %v", key, res.Points[0])
		}
	}
	if _, isNum := res.Points[0]["engine_on"].(float64); !isNum {
		t.Errorf("engine_on not numeric: %T", res.Points[0]["engine_on"])
	}

	// Experiments without a CSV series must refuse -json cleanly.
	table1, _ := Lookup("table1")
	if err := RunJSON(table1, cfg); err == nil {
		t.Error("table1 accepted -json despite having no tabular series")
	}
}
