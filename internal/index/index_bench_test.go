package index

import (
	"math/rand"
	"strconv"
	"testing"

	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// benchIndex registers n range/point predicates over 8 attributes.
func benchIndex(n int) *Index {
	ix := New()
	for i := 0; i < n; i++ {
		attr := "a" + strconv.Itoa(i%8)
		switch i % 4 {
		case 0:
			ix.Add(predicate.ID(i+1), predicate.New(attr, predicate.Eq, i))
		case 1:
			ix.Add(predicate.ID(i+1), predicate.New(attr, predicate.Gt, i))
		case 2:
			ix.Add(predicate.ID(i+1), predicate.New(attr, predicate.Le, i))
		default:
			ix.Add(predicate.ID(i+1), predicate.New(attr, predicate.Ne, i))
		}
	}
	return ix
}

// BenchmarkMatchPhase1 measures predicate matching (phase one) against an
// index of 100k predicates — shared by all engines, so not part of the
// paper's comparison, but the fixed per-event cost of the full pipeline.
func BenchmarkMatchPhase1(b *testing.B) {
	const n = 100_000
	ix := benchIndex(n)
	rng := rand.New(rand.NewSource(1))
	evs := make([]event.Event, 32)
	for i := range evs {
		ev := event.New()
		for a := 0; a < 8; a++ {
			ev = ev.Set("a"+strconv.Itoa(a), rng.Intn(n))
		}
		evs[i] = ev
	}
	var buf []predicate.ID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.Match(evs[i%len(evs)], buf[:0])
	}
}

func BenchmarkAddRemove(b *testing.B) {
	ix := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := predicate.New("a", predicate.Gt, i)
		ix.Add(predicate.ID(i+1), p)
		ix.Remove(predicate.ID(i+1), p)
	}
}
