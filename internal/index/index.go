// Package index implements predicate matching — the first filtering phase
// (paper §3.2, Fig. 2): given an event, determine the identifiers of all
// predicates it fulfils.
//
// Per attribute, predicates are organised by operator class exactly as the
// paper prescribes: point predicates (=) use hash tables; range predicates
// (<, <=, >, >=) use B+ trees over their constants. Additional operator
// classes are indexed with appropriate structures: prefix/suffix predicates
// by hash lookup over the event value's prefixes/suffixes, exists and !=
// predicates by per-attribute lists (a != predicate matches every comparable
// value except one, so a list is the natural representation), and substring
// (contains) predicates by a per-attribute scan list.
//
// Both the non-canonical engine and the counting baselines share this phase:
// "the first phases use the same indexes in the same way in both
// approaches" (paper §4).
package index

import (
	"noncanon/internal/event"
	"noncanon/internal/intern"
	"noncanon/internal/predicate"
	"noncanon/internal/value"

	"noncanon/internal/index/btree"
)

// rangeEntry is a B+ tree payload: the predicate and whether its bound is
// inclusive (Le/Ge as opposed to Lt/Gt).
type rangeEntry struct {
	id   predicate.ID
	incl bool
}

// neEntry records a != predicate and the operand it excludes.
type neEntry struct {
	id  predicate.ID
	key value.Key
}

// attrIndex holds all predicate structures for one attribute.
type attrIndex struct {
	// eq: point predicates by operand (hash index, Fig. 2).
	eq map[value.Key][]predicate.ID

	// Numeric range predicates (B+ tree index, Fig. 2). Keys are the
	// predicate constants as float64.
	//
	// upperNum holds "attr < c" / "attr <= c": an event value v fulfils
	// entries with c > v, and c == v when inclusive.
	// lowerNum holds "attr > c" / "attr >= c": v fulfils entries with
	// c < v, and c == v when inclusive.
	upperNum *btree.Tree[float64, rangeEntry]
	lowerNum *btree.Tree[float64, rangeEntry]

	// String range predicates, same organisation with string keys.
	upperStr *btree.Tree[string, rangeEntry]
	lowerStr *btree.Tree[string, rangeEntry]

	// ne: inequality predicates. All match a comparable event value except
	// those whose operand equals it.
	neNum  []neEntry
	neStr  []neEntry
	neBool []neEntry

	// prefix/suffix: hash on the operand; matched by probing every
	// prefix/suffix of the event value.
	prefix map[string][]predicate.ID
	suffix map[string][]predicate.ID

	// contains: scan list (no sublinear index for substring predicates).
	contains []containsEntry

	// exists: predicates fulfilled by attribute presence.
	exists []predicate.ID
}

type containsEntry struct {
	id  predicate.ID
	sub string
}

func newAttrIndex() *attrIndex {
	return &attrIndex{
		eq:       make(map[value.Key][]predicate.ID, 4),
		upperNum: btree.New[float64, rangeEntry](btree.DefaultOrder),
		lowerNum: btree.New[float64, rangeEntry](btree.DefaultOrder),
		upperStr: btree.New[string, rangeEntry](btree.DefaultOrder),
		lowerStr: btree.New[string, rangeEntry](btree.DefaultOrder),
		prefix:   make(map[string][]predicate.ID),
		suffix:   make(map[string][]predicate.ID),
	}
}

// Index is the phase-one structure set across all attributes. Attributes
// are keyed by their interned symbol: Add interns (subscription vocabulary
// is local and bounded), and Match dispatches on the symbols already
// carried by the event's attributes, so the per-attribute probe hashes a
// u32 instead of a string.
type Index struct {
	bySym map[intern.Sym]*attrIndex
	n     int // live predicate entries
}

// New returns an empty predicate index.
func New() *Index {
	return &Index{bySym: make(map[intern.Sym]*attrIndex, 64)}
}

// NumPredicates returns the number of indexed predicate entries.
func (ix *Index) NumPredicates() int { return ix.n }

// Add indexes predicate p under id. Each (id, p) pair must be added at most
// once (the predicate registry interns predicates, so engines add a
// predicate only when its refcount rises from zero).
func (ix *Index) Add(id predicate.ID, p predicate.P) {
	sym := p.Sym
	if sym == intern.None {
		sym = intern.Of(p.Attr) // registering a subscription: local vocabulary
	}
	ai, ok := ix.bySym[sym]
	if !ok {
		ai = newAttrIndex()
		ix.bySym[sym] = ai
	}
	ix.n++
	switch p.Op {
	case predicate.Eq:
		k := p.Operand.Key()
		ai.eq[k] = append(ai.eq[k], id)
	case predicate.Ne:
		e := neEntry{id: id, key: p.Operand.Key()}
		switch p.Operand.Kind() {
		case value.Int, value.Float:
			ai.neNum = append(ai.neNum, e)
		case value.String:
			ai.neStr = append(ai.neStr, e)
		case value.Bool:
			ai.neBool = append(ai.neBool, e)
		}
	case predicate.Lt, predicate.Le:
		incl := p.Op == predicate.Le
		if f, ok := p.Operand.AsFloat(); ok {
			ai.upperNum.Insert(f, rangeEntry{id: id, incl: incl})
		} else if p.Operand.Kind() == value.String {
			ai.upperStr.Insert(p.Operand.Str(), rangeEntry{id: id, incl: incl})
		}
	case predicate.Gt, predicate.Ge:
		incl := p.Op == predicate.Ge
		if f, ok := p.Operand.AsFloat(); ok {
			ai.lowerNum.Insert(f, rangeEntry{id: id, incl: incl})
		} else if p.Operand.Kind() == value.String {
			ai.lowerStr.Insert(p.Operand.Str(), rangeEntry{id: id, incl: incl})
		}
	case predicate.Prefix:
		s := p.Operand.Str()
		ai.prefix[s] = append(ai.prefix[s], id)
	case predicate.Suffix:
		s := p.Operand.Str()
		ai.suffix[s] = append(ai.suffix[s], id)
	case predicate.Contains:
		ai.contains = append(ai.contains, containsEntry{id: id, sub: p.Operand.Str()})
	case predicate.Exists:
		ai.exists = append(ai.exists, id)
	}
}

// Remove unindexes the (id, p) pair added by Add. It reports whether the
// entry was found.
func (ix *Index) Remove(id predicate.ID, p predicate.P) bool {
	sym := p.Sym
	if sym == intern.None {
		// Lookup, not Of: removing a predicate never added must not
		// grow the symbol table.
		var ok bool
		if sym, ok = intern.Lookup(p.Attr); !ok {
			return false
		}
	}
	ai, ok := ix.bySym[sym]
	if !ok {
		return false
	}
	removed := false
	switch p.Op {
	case predicate.Eq:
		k := p.Operand.Key()
		ai.eq[k], removed = removeID(ai.eq[k], id)
		if len(ai.eq[k]) == 0 {
			delete(ai.eq, k)
		}
	case predicate.Ne:
		switch p.Operand.Kind() {
		case value.Int, value.Float:
			ai.neNum, removed = removeNe(ai.neNum, id)
		case value.String:
			ai.neStr, removed = removeNe(ai.neStr, id)
		case value.Bool:
			ai.neBool, removed = removeNe(ai.neBool, id)
		}
	case predicate.Lt, predicate.Le:
		incl := p.Op == predicate.Le
		if f, ok := p.Operand.AsFloat(); ok {
			removed = ai.upperNum.Delete(f, rangeEntry{id: id, incl: incl})
		} else if p.Operand.Kind() == value.String {
			removed = ai.upperStr.Delete(p.Operand.Str(), rangeEntry{id: id, incl: incl})
		}
	case predicate.Gt, predicate.Ge:
		incl := p.Op == predicate.Ge
		if f, ok := p.Operand.AsFloat(); ok {
			removed = ai.lowerNum.Delete(f, rangeEntry{id: id, incl: incl})
		} else if p.Operand.Kind() == value.String {
			removed = ai.lowerStr.Delete(p.Operand.Str(), rangeEntry{id: id, incl: incl})
		}
	case predicate.Prefix:
		s := p.Operand.Str()
		ai.prefix[s], removed = removeID(ai.prefix[s], id)
		if len(ai.prefix[s]) == 0 {
			delete(ai.prefix, s)
		}
	case predicate.Suffix:
		s := p.Operand.Str()
		ai.suffix[s], removed = removeID(ai.suffix[s], id)
		if len(ai.suffix[s]) == 0 {
			delete(ai.suffix, s)
		}
	case predicate.Contains:
		for i, e := range ai.contains {
			if e.id == id {
				ai.contains = append(ai.contains[:i:i], ai.contains[i+1:]...)
				removed = true
				break
			}
		}
	case predicate.Exists:
		ai.exists, removed = removeID(ai.exists, id)
	}
	if removed {
		ix.n--
	}
	return removed
}

func removeID(s []predicate.ID, id predicate.ID) ([]predicate.ID, bool) {
	for i, x := range s {
		if x == id {
			return append(s[:i:i], s[i+1:]...), true
		}
	}
	return s, false
}

func removeNe(s []neEntry, id predicate.ID) ([]neEntry, bool) {
	for i, e := range s {
		if e.id == id {
			return append(s[:i:i], s[i+1:]...), true
		}
	}
	return s, false
}

// Match appends the IDs of every predicate fulfilled by e to out and returns
// the extended slice. Each fulfilled predicate appears exactly once (the
// registry interns predicates, and each lives in exactly one structure).
// out is caller-owned: growing it is the caller's capacity contract.
//
//nclint:hotpath
func (ix *Index) Match(e event.Event, out []predicate.ID) []predicate.ID {
	for _, a := range e.All() {
		sym := a.Sym
		if sym == intern.None {
			// The event was decoded before this name was ever interned
			// (or built by hand); resolve it now so late subscriptions on
			// early-decoded events still match.
			var ok bool
			if sym, ok = intern.Lookup(a.Name); !ok {
				continue // no subscription ever mentioned this attribute
			}
		}
		if ai, ok := ix.bySym[sym]; ok {
			out = ai.match(a.Val, out)
		}
	}
	return out
}

//nclint:hotpath
func (ai *attrIndex) match(v value.Value, out []predicate.ID) []predicate.ID {
	// Point predicates: one hash probe.
	out = append(out, ai.eq[v.Key()]...)

	// Range predicates.
	if f, isNum := v.AsFloat(); isNum {
		// upper bounds: need c > f, or c == f when inclusive.
		ai.upperNum.ScanFrom(f, func(c float64, es []rangeEntry) bool {
			strict := c > f
			for _, e := range es {
				if strict || e.incl {
					out = append(out, e.id)
				}
			}
			return true
		})
		// lower bounds: need c < f, or c == f when inclusive.
		ai.lowerNum.ScanUpTo(f, func(_ float64, es []rangeEntry) bool {
			for _, e := range es {
				out = append(out, e.id)
			}
			return true
		})
		for _, e := range ai.lowerNum.Get(f) {
			if e.incl {
				out = append(out, e.id)
			}
		}
		// Inequality: all numeric != whose operand differs.
		key := v.Key()
		for _, e := range ai.neNum {
			if e.key != key {
				out = append(out, e.id)
			}
		}
	} else if v.Kind() == value.String {
		s := v.Str()
		ai.upperStr.ScanFrom(s, func(c string, es []rangeEntry) bool {
			strict := c > s
			for _, e := range es {
				if strict || e.incl {
					out = append(out, e.id)
				}
			}
			return true
		})
		ai.lowerStr.ScanUpTo(s, func(_ string, es []rangeEntry) bool {
			for _, e := range es {
				out = append(out, e.id)
			}
			return true
		})
		for _, e := range ai.lowerStr.Get(s) {
			if e.incl {
				out = append(out, e.id)
			}
		}
		key := v.Key()
		for _, e := range ai.neStr {
			if e.key != key {
				out = append(out, e.id)
			}
		}
		// prefix: probe every prefix of s (including empty and full).
		if len(ai.prefix) > 0 {
			for l := 0; l <= len(s); l++ {
				out = append(out, ai.prefix[s[:l]]...)
			}
		}
		if len(ai.suffix) > 0 {
			for l := 0; l <= len(s); l++ {
				out = append(out, ai.suffix[s[len(s)-l:]]...)
			}
		}
		for _, e := range ai.contains {
			if containsSub(s, e.sub) {
				out = append(out, e.id)
			}
		}
	} else if v.Kind() == value.Bool {
		key := v.Key()
		for _, e := range ai.neBool {
			if e.key != key {
				out = append(out, e.id)
			}
		}
	}

	// Presence predicates.
	out = append(out, ai.exists...)
	return out
}

func containsSub(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// MemBytes estimates resident bytes of all index structures (experiment M1).
func (ix *Index) MemBytes() int {
	const (
		mapEntryOverhead = 48
		idSize           = 4
		neEntrySize      = 40
		rangeEntrySize   = 8
	)
	total := 0
	for sym, ai := range ix.bySym {
		total += mapEntryOverhead + len(intern.Name(sym))
		for _, ids := range ai.eq {
			total += mapEntryOverhead + len(ids)*idSize
		}
		total += ai.upperNum.MemBytes(8, rangeEntrySize)
		total += ai.lowerNum.MemBytes(8, rangeEntrySize)
		total += ai.upperStr.MemBytes(16, rangeEntrySize)
		total += ai.lowerStr.MemBytes(16, rangeEntrySize)
		total += (len(ai.neNum) + len(ai.neStr) + len(ai.neBool)) * neEntrySize
		for s, ids := range ai.prefix {
			total += mapEntryOverhead + len(s) + len(ids)*idSize
		}
		for s, ids := range ai.suffix {
			total += mapEntryOverhead + len(s) + len(ids)*idSize
		}
		for _, ce := range ai.contains {
			total += 24 + len(ce.sub)
		}
		total += len(ai.exists) * idSize
	}
	return total
}
