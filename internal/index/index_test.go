package index

import (
	"math/rand"
	"sort"
	"testing"

	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

func ids(xs ...predicate.ID) []predicate.ID { return xs }

func sortedIDs(s []predicate.ID) []predicate.ID {
	out := append([]predicate.ID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []predicate.ID) bool {
	a, b = sortedIDs(a), sortedIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMatchPointPredicates(t *testing.T) {
	ix := New()
	ix.Add(1, predicate.New("a", predicate.Eq, 10))
	ix.Add(2, predicate.New("a", predicate.Eq, 20))
	ix.Add(3, predicate.New("b", predicate.Eq, 10))
	ix.Add(4, predicate.New("a", predicate.Eq, "10"))

	got := ix.Match(event.New().Set("a", 10), nil)
	if !sameIDs(got, ids(1)) {
		t.Errorf("Match = %v, want [1]", got)
	}
	// Numeric unification: float event value matches int operand.
	got = ix.Match(event.New().Set("a", 10.0), nil)
	if !sameIDs(got, ids(1)) {
		t.Errorf("Match(10.0) = %v, want [1]", got)
	}
	// String "10" only matches the string predicate.
	got = ix.Match(event.New().Set("a", "10"), nil)
	if !sameIDs(got, ids(4)) {
		t.Errorf("Match(\"10\") = %v, want [4]", got)
	}
	// Unknown attribute: nothing.
	if got = ix.Match(event.New().Set("zz", 10), nil); len(got) != 0 {
		t.Errorf("Match(zz) = %v", got)
	}
}

func TestMatchRangePredicates(t *testing.T) {
	ix := New()
	ix.Add(1, predicate.New("p", predicate.Lt, 10))  // v < 10
	ix.Add(2, predicate.New("p", predicate.Le, 10))  // v <= 10
	ix.Add(3, predicate.New("p", predicate.Gt, 10))  // v > 10
	ix.Add(4, predicate.New("p", predicate.Ge, 10))  // v >= 10
	ix.Add(5, predicate.New("p", predicate.Lt, 5.5)) // v < 5.5

	tests := []struct {
		v    any
		want []predicate.ID
	}{
		{4, ids(1, 2, 5)},
		{5.5, ids(1, 2)},
		{9, ids(1, 2)},
		{10, ids(2, 4)},
		{10.0, ids(2, 4)},
		{11, ids(3, 4)},
	}
	for _, tt := range tests {
		got := ix.Match(event.New().Set("p", tt.v), nil)
		if !sameIDs(got, tt.want) {
			t.Errorf("Match(p=%v) = %v, want %v", tt.v, sortedIDs(got), tt.want)
		}
	}
}

func TestMatchStringRange(t *testing.T) {
	ix := New()
	ix.Add(1, predicate.New("s", predicate.Lt, "m"))
	ix.Add(2, predicate.New("s", predicate.Ge, "m"))
	if got := ix.Match(event.New().Set("s", "apple"), nil); !sameIDs(got, ids(1)) {
		t.Errorf("apple = %v", got)
	}
	if got := ix.Match(event.New().Set("s", "m"), nil); !sameIDs(got, ids(2)) {
		t.Errorf("m = %v", got)
	}
	if got := ix.Match(event.New().Set("s", "zebra"), nil); !sameIDs(got, ids(2)) {
		t.Errorf("zebra = %v", got)
	}
}

func TestMatchNe(t *testing.T) {
	ix := New()
	ix.Add(1, predicate.New("a", predicate.Ne, 5))
	ix.Add(2, predicate.New("a", predicate.Ne, "x"))
	ix.Add(3, predicate.New("a", predicate.Ne, true))

	if got := ix.Match(event.New().Set("a", 7), nil); !sameIDs(got, ids(1)) {
		t.Errorf("a=7: %v", got)
	}
	// Equal value: no match; string and bool predicates incomparable.
	if got := ix.Match(event.New().Set("a", 5), nil); len(got) != 0 {
		t.Errorf("a=5: %v", got)
	}
	if got := ix.Match(event.New().Set("a", "y"), nil); !sameIDs(got, ids(2)) {
		t.Errorf("a=y: %v", got)
	}
	if got := ix.Match(event.New().Set("a", "x"), nil); len(got) != 0 {
		t.Errorf("a=x: %v", got)
	}
	if got := ix.Match(event.New().Set("a", false), nil); !sameIDs(got, ids(3)) {
		t.Errorf("a=false: %v", got)
	}
}

func TestMatchStringOps(t *testing.T) {
	ix := New()
	ix.Add(1, predicate.New("s", predicate.Prefix, "AC"))
	ix.Add(2, predicate.New("s", predicate.Prefix, "ACME"))
	ix.Add(3, predicate.New("s", predicate.Suffix, "ME"))
	ix.Add(4, predicate.New("s", predicate.Contains, "CM"))
	ix.Add(5, predicate.New("s", predicate.Prefix, ""))

	got := ix.Match(event.New().Set("s", "ACME"), nil)
	if !sameIDs(got, ids(1, 2, 3, 4, 5)) {
		t.Errorf("ACME = %v", sortedIDs(got))
	}
	got = ix.Match(event.New().Set("s", "AC"), nil)
	if !sameIDs(got, ids(1, 5)) {
		t.Errorf("AC = %v", sortedIDs(got))
	}
	// Numeric value matches no string predicate.
	if got = ix.Match(event.New().Set("s", 5), nil); len(got) != 0 {
		t.Errorf("s=5: %v", got)
	}
}

func TestMatchExists(t *testing.T) {
	ix := New()
	ix.Add(1, predicate.New("a", predicate.Exists, nil))
	if got := ix.Match(event.New().Set("a", 1), nil); !sameIDs(got, ids(1)) {
		t.Errorf("a=1: %v", got)
	}
	if got := ix.Match(event.New().Set("a", "s"), nil); !sameIDs(got, ids(1)) {
		t.Errorf("a=s: %v", got)
	}
	if got := ix.Match(event.New().Set("b", 1), nil); len(got) != 0 {
		t.Errorf("b=1: %v", got)
	}
}

func TestRemove(t *testing.T) {
	ix := New()
	preds := []predicate.P{
		predicate.New("a", predicate.Eq, 10),
		predicate.New("a", predicate.Ne, 10),
		predicate.New("a", predicate.Lt, 10),
		predicate.New("a", predicate.Ge, 10),
		predicate.New("s", predicate.Lt, "m"),
		predicate.New("s", predicate.Prefix, "A"),
		predicate.New("s", predicate.Suffix, "Z"),
		predicate.New("s", predicate.Contains, "Q"),
		predicate.New("s", predicate.Exists, nil),
	}
	for i, p := range preds {
		ix.Add(predicate.ID(i+1), p)
	}
	if ix.NumPredicates() != len(preds) {
		t.Fatalf("NumPredicates = %d", ix.NumPredicates())
	}
	for i, p := range preds {
		if !ix.Remove(predicate.ID(i+1), p) {
			t.Errorf("Remove(%d, %s) failed", i+1, p)
		}
	}
	if ix.NumPredicates() != 0 {
		t.Errorf("NumPredicates after removal = %d", ix.NumPredicates())
	}
	// Everything gone: no event matches.
	evs := []event.Event{
		event.New().Set("a", 5),
		event.New().Set("a", 100),
		event.New().Set("s", "AQZ"),
	}
	for _, ev := range evs {
		if got := ix.Match(ev, nil); len(got) != 0 {
			t.Errorf("after removal Match(%s) = %v", ev, got)
		}
	}
	// Removing again fails.
	if ix.Remove(1, preds[0]) {
		t.Error("double Remove should be false")
	}
	// Removing from unknown attribute fails.
	if ix.Remove(1, predicate.New("zz", predicate.Eq, 1)) {
		t.Error("Remove on unknown attribute should be false")
	}
}

func TestMatchAppendsToProvidedSlice(t *testing.T) {
	ix := New()
	ix.Add(1, predicate.New("a", predicate.Eq, 1))
	buf := make([]predicate.ID, 0, 16)
	out := ix.Match(event.New().Set("a", 1), buf)
	if len(out) != 1 || out[0] != 1 {
		t.Errorf("out = %v", out)
	}
	out2 := ix.Match(event.New().Set("a", 1), out)
	if len(out2) != 2 {
		t.Errorf("append semantics broken: %v", out2)
	}
}

// TestMatchAgainstBruteForceProperty registers random predicates and checks
// that index matching agrees exactly with direct evaluation of every
// predicate — the phase-one correctness contract.
func TestMatchAgainstBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	attrs := []string{"a", "b", "c", "d"}
	ops := []predicate.Op{
		predicate.Eq, predicate.Ne, predicate.Lt, predicate.Le, predicate.Gt, predicate.Ge,
		predicate.Prefix, predicate.Suffix, predicate.Contains, predicate.Exists,
	}
	strPool := []string{"", "a", "ab", "abc", "b", "bc", "xyz"}

	randomPred := func() predicate.P {
		attr := attrs[rng.Intn(len(attrs))]
		op := ops[rng.Intn(len(ops))]
		switch op {
		case predicate.Prefix, predicate.Suffix, predicate.Contains:
			return predicate.New(attr, op, strPool[rng.Intn(len(strPool))])
		case predicate.Exists:
			return predicate.New(attr, op, nil)
		default:
			switch rng.Intn(4) {
			case 0:
				return predicate.New(attr, op, strPool[rng.Intn(len(strPool))])
			case 1:
				return predicate.New(attr, op, float64(rng.Intn(20))/2)
			default:
				return predicate.New(attr, op, rng.Intn(10))
			}
		}
	}
	randomEvent := func() event.Event {
		ev := event.New()
		for _, a := range attrs {
			switch rng.Intn(5) {
			case 0: // absent
			case 1:
				ev = ev.Set(a, strPool[rng.Intn(len(strPool))])
			case 2:
				ev = ev.Set(a, float64(rng.Intn(20))/2)
			case 3:
				ev = ev.Set(a, rng.Intn(2) == 0)
			default:
				ev = ev.Set(a, rng.Intn(10))
			}
		}
		return ev
	}

	for round := 0; round < 30; round++ {
		ix := New()
		// Distinct predicates only (interning contract): dedupe by string.
		seen := map[string]bool{}
		var regd []predicate.P
		for len(regd) < 60 {
			p := randomPred()
			if seen[p.String()] {
				continue
			}
			seen[p.String()] = true
			regd = append(regd, p)
			ix.Add(predicate.ID(len(regd)), p)
		}
		// Remove a random third to exercise deletion paths.
		removed := map[int]bool{}
		for i := 0; i < 20; i++ {
			j := rng.Intn(len(regd))
			if removed[j] {
				continue
			}
			if !ix.Remove(predicate.ID(j+1), regd[j]) {
				t.Fatalf("round %d: Remove(%d, %s) failed", round, j+1, regd[j])
			}
			removed[j] = true
		}
		for trial := 0; trial < 40; trial++ {
			ev := randomEvent()
			var want []predicate.ID
			for j, p := range regd {
				if !removed[j] && p.Eval(ev) {
					want = append(want, predicate.ID(j+1))
				}
			}
			got := ix.Match(ev, nil)
			if !sameIDs(got, want) {
				t.Fatalf("round %d: Match(%s)\n got %v\nwant %v", round, ev, sortedIDs(got), sortedIDs(want))
			}
		}
	}
}

func TestMemBytes(t *testing.T) {
	ix := New()
	empty := ix.MemBytes()
	for i := 0; i < 100; i++ {
		ix.Add(predicate.ID(i+1), predicate.New("a", predicate.Lt, i))
	}
	if full := ix.MemBytes(); full <= empty {
		t.Errorf("MemBytes did not grow: %d -> %d", empty, full)
	}
}
