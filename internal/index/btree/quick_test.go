package btree

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickInsertedKeysRetrievable: after inserting any key/value sequence,
// every pair is retrievable, the scan is sorted, and counters agree.
func TestQuickInsertedKeysRetrievable(t *testing.T) {
	f := func(keys []int16, vals []uint8) bool {
		tr := New[int16, uint8](8)
		type pair struct {
			k int16
			v uint8
		}
		var pairs []pair
		for i, k := range keys {
			v := uint8(i)
			if i < len(vals) {
				v = vals[i]
			}
			tr.Insert(k, v)
			pairs = append(pairs, pair{k, v})
		}
		if err := tr.check(); err != nil {
			return false
		}
		if tr.NumValues() != len(pairs) {
			return false
		}
		// Every inserted pair is present.
		counts := map[pair]int{}
		for _, p := range pairs {
			counts[p]++
		}
		for p, want := range counts {
			got := 0
			for _, v := range tr.Get(p.k) {
				if v == p.v {
					got++
				}
			}
			if got != want {
				return false
			}
		}
		// Scan is sorted and covers all distinct keys.
		var scanned []int16
		tr.Scan(func(k int16, _ []uint8) bool {
			scanned = append(scanned, k)
			return true
		})
		if !sort.SliceIsSorted(scanned, func(i, j int) bool { return scanned[i] < scanned[j] }) {
			return false
		}
		distinct := map[int16]bool{}
		for _, k := range keys {
			distinct[k] = true
		}
		return len(scanned) == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickInsertDeleteInverse: deleting everything that was inserted
// leaves an empty, structurally valid tree.
func TestQuickInsertDeleteInverse(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New[int16, int](4)
		for i, k := range keys {
			tr.Insert(k, i)
		}
		for i, k := range keys {
			if !tr.Delete(k, i) {
				return false
			}
			if err := tr.check(); err != nil {
				return false
			}
		}
		return tr.Len() == 0 && tr.NumValues() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickScanFromEquivalence: ScanFrom(k) visits exactly the sorted keys
// >= k.
func TestQuickScanFromEquivalence(t *testing.T) {
	f := func(keys []int16, start int16) bool {
		tr := New[int16, int](8)
		distinct := map[int16]bool{}
		for i, k := range keys {
			tr.Insert(k, i)
			distinct[k] = true
		}
		var want []int16
		for k := range distinct {
			if k >= start {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int16
		tr.ScanFrom(start, func(k int16, _ []int) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
