// Package btree implements an in-memory B+ tree used as the one-dimensional
// index for range predicates (paper §3.2: "point predicates utilise hash
// tables, for range predicates we deploy B+ trees").
//
// The tree is a multi-map: each key holds a list of values (several
// predicates may use the same constant). Leaves are linked for ordered
// scans. The tree is not safe for concurrent mutation; engines serialise
// access.
package btree

import (
	"cmp"
	"fmt"
)

// DefaultOrder is the default maximum number of children per internal node.
const DefaultOrder = 32

// Tree is a B+ tree multi-map from K to lists of V.
type Tree[K cmp.Ordered, V comparable] struct {
	root    *node[K, V]
	order   int // max children per internal node
	numKeys int // distinct keys
	numVals int // total values
}

// node is either an internal node (children parallel to keys+1) or a leaf
// (vals parallel to keys, next links leaves in key order).
type node[K cmp.Ordered, V comparable] struct {
	leaf     bool
	keys     []K
	children []*node[K, V] // internal only: len(children) == len(keys)+1
	vals     [][]V         // leaf only: vals[i] are the values of keys[i]
	next     *node[K, V]   // leaf only
}

// New returns an empty tree with the given order (maximum children per
// internal node). Orders below 4 are raised to 4.
func New[K cmp.Ordered, V comparable](order int) *Tree[K, V] {
	if order < 4 {
		order = 4
	}
	return &Tree[K, V]{
		root:  &node[K, V]{leaf: true},
		order: order,
	}
}

// maxKeys is the maximum number of keys any node may hold.
func (t *Tree[K, V]) maxKeys() int { return t.order - 1 }

// minKeys is the minimum fill of any non-root node.
func (t *Tree[K, V]) minKeys() int { return t.maxKeys() / 2 }

// Len returns the number of distinct keys.
func (t *Tree[K, V]) Len() int { return t.numKeys }

// NumValues returns the total number of stored values.
func (t *Tree[K, V]) NumValues() int { return t.numVals }

// Get returns the values stored under k. The returned slice is internal
// storage; callers must not modify it.
func (t *Tree[K, V]) Get(k K) []V {
	n := t.root
	for !n.leaf {
		n = n.children[upperBound(n.keys, k)]
	}
	i, ok := find(n.keys, k)
	if !ok {
		return nil
	}
	return n.vals[i]
}

// Insert adds v under k. Duplicate (k, v) pairs are stored multiple times;
// predicate indexes never insert duplicates because predicates are interned.
func (t *Tree[K, V]) Insert(k K, v V) {
	up, sep := t.insert(t.root, k, v)
	if up != nil {
		t.root = &node[K, V]{
			keys:     []K{sep},
			children: []*node[K, V]{t.root, up},
		}
	}
	t.numVals++
}

// insert adds (k,v) below n. If n splits, the new right sibling and the
// separator key are returned.
func (t *Tree[K, V]) insert(n *node[K, V], k K, v V) (*node[K, V], K) {
	var zero K
	if n.leaf {
		i, ok := find(n.keys, k)
		if ok {
			n.vals[i] = append(n.vals[i], v)
			return nil, zero
		}
		i = upperBound(n.keys, k)
		n.keys = insertAt(n.keys, i, k)
		n.vals = insertAt(n.vals, i, []V{v})
		t.numKeys++
		if len(n.keys) <= t.maxKeys() {
			return nil, zero
		}
		return t.splitLeaf(n)
	}
	idx := upperBound(n.keys, k)
	up, sep := t.insert(n.children[idx], k, v)
	if up == nil {
		return nil, zero
	}
	n.keys = insertAt(n.keys, idx, sep)
	n.children = insertAt(n.children, idx+1, up)
	if len(n.keys) <= t.maxKeys() {
		return nil, zero
	}
	return t.splitInternal(n)
}

func (t *Tree[K, V]) splitLeaf(n *node[K, V]) (*node[K, V], K) {
	mid := len(n.keys) / 2
	right := &node[K, V]{
		leaf: true,
		keys: append([]K(nil), n.keys[mid:]...),
		vals: append([][]V(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right, right.keys[0]
}

func (t *Tree[K, V]) splitInternal(n *node[K, V]) (*node[K, V], K) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node[K, V]{
		keys:     append([]K(nil), n.keys[mid+1:]...),
		children: append([]*node[K, V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, sep
}

// Delete removes one occurrence of v under k. It reports whether the pair
// was present.
func (t *Tree[K, V]) Delete(k K, v V) bool {
	deleted := t.delete(t.root, k, v)
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	if deleted {
		t.numVals--
	}
	return deleted
}

// delete removes (k,v) below n and rebalances children of n as needed.
func (t *Tree[K, V]) delete(n *node[K, V], k K, v V) bool {
	if n.leaf {
		i, ok := find(n.keys, k)
		if !ok {
			return false
		}
		vi := indexOf(n.vals[i], v)
		if vi < 0 {
			return false
		}
		n.vals[i] = removeAt(n.vals[i], vi)
		if len(n.vals[i]) == 0 {
			n.keys = removeAt(n.keys, i)
			n.vals = removeAt(n.vals, i)
			t.numKeys--
		}
		return true
	}
	idx := upperBound(n.keys, k)
	child := n.children[idx]
	deleted := t.delete(child, k, v)
	if deleted && len(child.keys) < t.minKeys() {
		t.rebalance(n, idx)
	}
	return deleted
}

// rebalance fixes an underflowing child n.children[idx] by borrowing from a
// sibling or merging with one.
func (t *Tree[K, V]) rebalance(n *node[K, V], idx int) {
	child := n.children[idx]
	// Try borrowing from the left sibling.
	if idx > 0 {
		left := n.children[idx-1]
		if len(left.keys) > t.minKeys() {
			if child.leaf {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[last])
				child.vals = insertAt(child.vals, 0, left.vals[last])
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				n.keys[idx-1] = child.keys[0]
			} else {
				child.keys = insertAt(child.keys, 0, n.keys[idx-1])
				n.keys[idx-1] = left.keys[len(left.keys)-1]
				child.children = insertAt(child.children, 0, left.children[len(left.children)-1])
				left.keys = left.keys[:len(left.keys)-1]
				left.children = left.children[:len(left.children)-1]
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if idx < len(n.children)-1 {
		right := n.children[idx+1]
		if len(right.keys) > t.minKeys() {
			if child.leaf {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				n.keys[idx] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[idx])
				n.keys[idx] = right.keys[0]
				child.children = append(child.children, right.children[0])
				right.keys = removeAt(right.keys, 0)
				right.children = removeAt(right.children, 0)
			}
			return
		}
	}
	// Merge with a sibling.
	if idx > 0 {
		t.merge(n, idx-1)
	} else {
		t.merge(n, idx)
	}
}

// merge combines n.children[i] and n.children[i+1] into the left node and
// removes the separator n.keys[i].
func (t *Tree[K, V]) merge(n *node[K, V], i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = removeAt(n.keys, i)
	n.children = removeAt(n.children, i+1)
}

// Min returns the smallest key, with ok=false on an empty tree.
func (t *Tree[K, V]) Min() (K, bool) {
	var zero K
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return zero, false
	}
	return n.keys[0], true
}

// Max returns the largest key, with ok=false on an empty tree.
func (t *Tree[K, V]) Max() (K, bool) {
	var zero K
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		return zero, false
	}
	return n.keys[len(n.keys)-1], true
}

// Height returns the number of levels (a lone leaf root has height 1).
func (t *Tree[K, V]) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// MemBytes estimates the resident size of the tree: node headers, key
// storage and value storage. keySize should be the per-key byte width
// (e.g. 8 for float64 keys).
func (t *Tree[K, V]) MemBytes(keySize, valSize int) int {
	const nodeOverhead = 96 // slice headers + next pointer + bookkeeping
	nodes := 0
	var count func(n *node[K, V])
	count = func(n *node[K, V]) {
		nodes++
		for _, c := range n.children {
			count(c)
		}
	}
	count(t.root)
	return nodes*nodeOverhead + t.numKeys*(keySize+24) + t.numVals*valSize
}

// check verifies every structural invariant and panics with a description on
// violation; the tests call this after random operation batches.
func (t *Tree[K, V]) check() error {
	leafDepth := -1
	var prevLeaf *node[K, V]
	var walk func(n *node[K, V], depth int, lo, hi *K) error
	walk = func(n *node[K, V], depth int, lo, hi *K) error {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("keys out of order at depth %d: %v", depth, n.keys)
			}
		}
		for _, k := range n.keys {
			if lo != nil && k < *lo {
				return fmt.Errorf("key %v below lower bound %v", k, *lo)
			}
			if hi != nil && k >= *hi {
				return fmt.Errorf("key %v not below upper bound %v", k, *hi)
			}
		}
		if n != t.root && len(n.keys) < t.minKeys() {
			return fmt.Errorf("underfull node at depth %d: %d keys (min %d)", depth, len(n.keys), t.minKeys())
		}
		if len(n.keys) > t.maxKeys() {
			return fmt.Errorf("overfull node at depth %d: %d keys (max %d)", depth, len(n.keys), t.maxKeys())
		}
		if n.leaf {
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("leaf vals/keys mismatch: %d vs %d", len(n.vals), len(n.keys))
			}
			for i, vs := range n.vals {
				if len(vs) == 0 {
					return fmt.Errorf("empty value list under key %v", n.keys[i])
				}
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("leaves at depths %d and %d", leafDepth, depth)
			}
			if prevLeaf != nil && prevLeaf.next != n {
				return fmt.Errorf("leaf chain broken")
			}
			prevLeaf = n
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("children/keys mismatch: %d vs %d", len(n.children), len(n.keys))
		}
		for i, c := range n.children {
			var clo, chi *K
			if i > 0 {
				clo = &n.keys[i-1]
			} else {
				clo = lo
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			} else {
				chi = hi
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, nil, nil); err != nil {
		return err
	}
	if prevLeaf != nil && prevLeaf.next != nil {
		return fmt.Errorf("last leaf has dangling next")
	}
	return nil
}

// --- small slice helpers ---

// upperBound returns the first index i with keys[i] > k.
func upperBound[K cmp.Ordered](keys []K, k K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first index i with keys[i] >= k.
func lowerBound[K cmp.Ordered](keys []K, k K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// find locates k exactly.
func find[K cmp.Ordered](keys []K, k K) (int, bool) {
	i := lowerBound(keys, k)
	if i < len(keys) && keys[i] == k {
		return i, true
	}
	return 0, false
}

func insertAt[T any](s []T, i int, v T) []T {
	s = append(s, v)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	var zero T
	s[len(s)-1] = zero
	return s[:len(s)-1]
}

func indexOf[V comparable](s []V, v V) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
