package btree

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmptyTree(t *testing.T) {
	tr := New[int, int](8)
	if tr.Len() != 0 || tr.NumValues() != 0 {
		t.Error("empty tree should have no keys or values")
	}
	if got := tr.Get(5); got != nil {
		t.Errorf("Get on empty = %v", got)
	}
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty should report !ok")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty should report !ok")
	}
	if tr.Height() != 1 {
		t.Errorf("empty height = %d", tr.Height())
	}
	if tr.Delete(1, 1) {
		t.Error("Delete on empty should be false")
	}
	called := false
	tr.Scan(func(int, []int) bool { called = true; return true })
	if called {
		t.Error("Scan on empty tree called fn")
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetBasic(t *testing.T) {
	tr := New[int, int](4)
	for i := 0; i < 100; i++ {
		tr.Insert(i, i*10)
	}
	if tr.Len() != 100 || tr.NumValues() != 100 {
		t.Fatalf("Len=%d NumValues=%d", tr.Len(), tr.NumValues())
	}
	for i := 0; i < 100; i++ {
		vs := tr.Get(i)
		if len(vs) != 1 || vs[0] != i*10 {
			t.Fatalf("Get(%d) = %v", i, vs)
		}
	}
	if tr.Get(-1) != nil || tr.Get(100) != nil {
		t.Error("Get of absent keys should be nil")
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() <= 1 {
		t.Error("100 keys at order 4 must split")
	}
}

func TestMultiValue(t *testing.T) {
	tr := New[int, string](8)
	tr.Insert(1, "a")
	tr.Insert(1, "b")
	tr.Insert(1, "c")
	if tr.Len() != 1 || tr.NumValues() != 3 {
		t.Fatalf("Len=%d NumValues=%d", tr.Len(), tr.NumValues())
	}
	if vs := tr.Get(1); len(vs) != 3 {
		t.Fatalf("Get = %v", vs)
	}
	if !tr.Delete(1, "b") {
		t.Fatal("Delete(1,b) failed")
	}
	if vs := tr.Get(1); len(vs) != 2 {
		t.Fatalf("after delete Get = %v", vs)
	}
	if tr.Delete(1, "b") {
		t.Error("double delete should be false")
	}
	tr.Delete(1, "a")
	tr.Delete(1, "c")
	if tr.Len() != 0 {
		t.Error("key should vanish when last value is removed")
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int, int](4)
	for _, k := range []int{50, 20, 80, 10, 90, 55} {
		tr.Insert(k, k)
	}
	if mn, _ := tr.Min(); mn != 10 {
		t.Errorf("Min = %d", mn)
	}
	if mx, _ := tr.Max(); mx != 90 {
		t.Errorf("Max = %d", mx)
	}
}

func TestScanOrder(t *testing.T) {
	tr := New[int, int](4)
	keys := rand.New(rand.NewSource(1)).Perm(500)
	for _, k := range keys {
		tr.Insert(k, k)
	}
	var got []int
	tr.Scan(func(k int, vals []int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 500 {
		t.Fatalf("scanned %d keys", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Error("Scan must be ascending")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := New[int, int](4)
	for i := 0; i < 100; i++ {
		tr.Insert(i, i)
	}
	n := 0
	tr.Scan(func(int, []int) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("visited %d, want 7", n)
	}
}

func TestScanFrom(t *testing.T) {
	tr := New[int, int](4)
	for i := 0; i < 100; i += 2 { // even keys 0..98
		tr.Insert(i, i)
	}
	collect := func(start int) []int {
		var ks []int
		tr.ScanFrom(start, func(k int, _ []int) bool {
			ks = append(ks, k)
			return true
		})
		return ks
	}
	// Exact key start.
	if ks := collect(50); len(ks) != 25 || ks[0] != 50 {
		t.Errorf("ScanFrom(50): len=%d first=%v", len(ks), ks[:min(3, len(ks))])
	}
	// Between-keys start.
	if ks := collect(51); len(ks) != 24 || ks[0] != 52 {
		t.Errorf("ScanFrom(51): len=%d first=%v", len(ks), ks[:min(3, len(ks))])
	}
	// Below all.
	if ks := collect(-5); len(ks) != 50 || ks[0] != 0 {
		t.Errorf("ScanFrom(-5): len=%d", len(ks))
	}
	// Above all.
	if ks := collect(99); len(ks) != 0 {
		t.Errorf("ScanFrom(99): %v", ks)
	}
}

func TestScanUpToAndRange(t *testing.T) {
	tr := New[int, int](6)
	for i := 0; i < 50; i++ {
		tr.Insert(i, i)
	}
	var ks []int
	tr.ScanUpTo(10, func(k int, _ []int) bool { ks = append(ks, k); return true })
	if len(ks) != 10 || ks[9] != 9 {
		t.Errorf("ScanUpTo(10) = %v", ks)
	}
	ks = nil
	tr.ScanRange(10, 20, func(k int, _ []int) bool { ks = append(ks, k); return true })
	if len(ks) != 10 || ks[0] != 10 || ks[9] != 19 {
		t.Errorf("ScanRange(10,20) = %v", ks)
	}
}

func TestDeleteRebalancing(t *testing.T) {
	// Insert ascending, delete ascending: stresses merge-left paths.
	tr := New[int, int](4)
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert(i, i)
	}
	for i := 0; i < n; i++ {
		if !tr.Delete(i, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
		if err := tr.check(); err != nil {
			t.Fatalf("after Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 0 || tr.NumValues() != 0 {
		t.Errorf("tree not empty: Len=%d", tr.Len())
	}

	// Insert ascending, delete descending: stresses merge-right paths.
	for i := 0; i < n; i++ {
		tr.Insert(i, i)
	}
	for i := n - 1; i >= 0; i-- {
		if !tr.Delete(i, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Error("tree not empty after descending deletes")
	}
}

func TestFloatKeys(t *testing.T) {
	tr := New[float64, uint32](16)
	tr.Insert(1.5, 1)
	tr.Insert(2.5, 2)
	tr.Insert(1.5, 3)
	if vs := tr.Get(1.5); len(vs) != 2 {
		t.Errorf("Get(1.5) = %v", vs)
	}
	var ks []float64
	tr.ScanFrom(2.0, func(k float64, _ []uint32) bool { ks = append(ks, k); return true })
	if len(ks) != 1 || ks[0] != 2.5 {
		t.Errorf("ScanFrom(2.0) = %v", ks)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](8)
	words := []string{"pear", "apple", "cherry", "banana", "apricot"}
	for i, w := range words {
		tr.Insert(w, i)
	}
	var got []string
	tr.Scan(func(k string, _ []int) bool { got = append(got, k); return true })
	want := []string{"apple", "apricot", "banana", "cherry", "pear"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Scan order = %v, want %v", got, want)
		}
	}
}

func TestLowOrderClamp(t *testing.T) {
	tr := New[int, int](1) // clamped to 4
	for i := 0; i < 100; i++ {
		tr.Insert(i, i)
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestMemBytes(t *testing.T) {
	tr := New[float64, uint32](32)
	empty := tr.MemBytes(8, 4)
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(i), uint32(i))
	}
	full := tr.MemBytes(8, 4)
	if full <= empty {
		t.Errorf("MemBytes did not grow: %d -> %d", empty, full)
	}
	if full < 1000*12 {
		t.Errorf("MemBytes %d too small for 1000 entries", full)
	}
}

// TestRandomisedAgainstModel drives the tree with random operations and
// compares every observable behaviour against a simple map+sort model.
func TestRandomisedAgainstModel(t *testing.T) {
	for _, order := range []int{4, 5, 8, 32} {
		order := order
		t.Run("order", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(order) * 7))
			tr := New[int, int](order)
			model := map[int][]int{}

			for step := 0; step < 8000; step++ {
				k := rng.Intn(200)
				v := rng.Intn(5)
				switch rng.Intn(3) {
				case 0, 1: // insert twice as often as delete
					tr.Insert(k, v)
					model[k] = append(model[k], v)
				case 2:
					got := tr.Delete(k, v)
					want := false
					if vs, ok := model[k]; ok {
						for i, x := range vs {
							if x == v {
								model[k] = append(vs[:i:i], vs[i+1:]...)
								if len(model[k]) == 0 {
									delete(model, k)
								}
								want = true
								break
							}
						}
					}
					if got != want {
						t.Fatalf("step %d: Delete(%d,%d) = %v, want %v", step, k, v, got, want)
					}
				}
				if step%500 == 0 {
					if err := tr.check(); err != nil {
						t.Fatalf("step %d: invariant: %v", step, err)
					}
					verifyAgainstModel(t, tr, model, step)
				}
			}
			if err := tr.check(); err != nil {
				t.Fatal(err)
			}
			verifyAgainstModel(t, tr, model, -1)
		})
	}
}

func verifyAgainstModel(t *testing.T, tr *Tree[int, int], model map[int][]int, step int) {
	t.Helper()
	if tr.Len() != len(model) {
		t.Fatalf("step %d: Len=%d model=%d", step, tr.Len(), len(model))
	}
	total := 0
	keys := make([]int, 0, len(model))
	for k, vs := range model {
		total += len(vs)
		keys = append(keys, k)
		got := tr.Get(k)
		if len(got) != len(vs) {
			t.Fatalf("step %d: Get(%d) len=%d model=%d", step, k, len(got), len(vs))
		}
	}
	if tr.NumValues() != total {
		t.Fatalf("step %d: NumValues=%d model=%d", step, tr.NumValues(), total)
	}
	sort.Ints(keys)
	var scanned []int
	tr.Scan(func(k int, _ []int) bool { scanned = append(scanned, k); return true })
	if len(scanned) != len(keys) {
		t.Fatalf("step %d: scanned %d keys, model %d", step, len(scanned), len(keys))
	}
	for i := range keys {
		if scanned[i] != keys[i] {
			t.Fatalf("step %d: scan order mismatch at %d: %d vs %d", step, i, scanned[i], keys[i])
		}
	}
	// Spot-check ScanFrom at a random boundary.
	if len(keys) > 0 {
		start := keys[len(keys)/2]
		wantFrom := keys[sort.SearchInts(keys, start):]
		var gotFrom []int
		tr.ScanFrom(start, func(k int, _ []int) bool { gotFrom = append(gotFrom, k); return true })
		if len(gotFrom) != len(wantFrom) {
			t.Fatalf("step %d: ScanFrom(%d) len=%d want %d", step, start, len(gotFrom), len(wantFrom))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
