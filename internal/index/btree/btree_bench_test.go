package btree

import (
	"math/rand"
	"testing"
)

func benchTree(n int) *Tree[float64, uint32] {
	tr := New[float64, uint32](DefaultOrder)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		tr.Insert(rng.Float64()*float64(n), uint32(i))
	}
	return tr
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[float64, uint32](DefaultOrder)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1e6, uint32(i))
	}
}

func BenchmarkGet(b *testing.B) {
	const n = 100_000
	tr := benchTree(n)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(rng.Float64() * n)
	}
}

func BenchmarkScanFrom(b *testing.B) {
	const n = 100_000
	tr := benchTree(n)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Scan a ~100-key window, the typical phase-1 range probe.
		count := 0
		tr.ScanFrom(rng.Float64()*n, func(float64, []uint32) bool {
			count++
			return count < 100
		})
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	const n = 100_000
	tr := benchTree(n)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := rng.Float64() * n
		tr.Insert(k, uint32(i))
		tr.Delete(k, uint32(i))
	}
}
