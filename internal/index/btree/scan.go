package btree

import "cmp"

// Scan visits all keys in ascending order, calling fn with each key and its
// values, until fn returns false. The values slice is internal storage and
// must not be modified.
func (t *Tree[K, V]) Scan(fn func(k K, vals []V) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	scanLeaves(n, 0, fn)
}

// ScanFrom visits keys >= start in ascending order until fn returns false.
// This is the access path for matching lower-bound predicates: for an event
// value v, predicates "attr < c" with c > v are found by ScanFrom over the
// constants (paper §3.2, B+ tree index).
func (t *Tree[K, V]) ScanFrom(start K, fn func(k K, vals []V) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[upperBound(n.keys, start)]
	}
	// The target leaf may have keys below start; skip them.
	i := lowerBound(n.keys, start)
	if i == len(n.keys) {
		// start is above every key in this leaf; continue at the next.
		if n = n.next; n == nil {
			return
		}
		i = 0
	}
	scanLeaves(n, i, fn)
}

// ScanUpTo visits keys < limit in ascending order until fn returns false.
// This is the access path for matching upper-bound predicates.
func (t *Tree[K, V]) ScanUpTo(limit K, fn func(k K, vals []V) bool) {
	t.Scan(func(k K, vals []V) bool {
		if k >= limit {
			return false
		}
		return fn(k, vals)
	})
}

// ScanRange visits keys in [lo, hi) in ascending order until fn returns
// false.
func (t *Tree[K, V]) ScanRange(lo, hi K, fn func(k K, vals []V) bool) {
	t.ScanFrom(lo, func(k K, vals []V) bool {
		if k >= hi {
			return false
		}
		return fn(k, vals)
	})
}

func scanLeaves[K cmp.Ordered, V comparable](n *node[K, V], startIdx int, fn func(k K, vals []V) bool) {
	i := startIdx
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}
