package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
)

// The differential property: for any workload, shard.Engine.Match,
// core.Engine.Match and naive boolexpr evaluation agree on every event.
//
// The workloads deliberately include what the paper's AND/OR experiments
// never exercise: NOT nodes, zero-satisfiable expressions (true under the
// all-false assignment, e.g. `not a0 = 1`), unsatisfiable expressions,
// and interleaved Unsubscribe that recycles IDs in both engines.

// diffSub tracks one logical subscription across the three evaluators.
type diffSub struct {
	expr    boolexpr.Expr
	shardID matcher.SubID
	coreID  matcher.SubID
	alive   bool
}

// diffHarness registers the same expressions into a sharded and an
// unsharded engine and evaluates them naively.
type diffHarness struct {
	t       *testing.T
	sharded *Engine
	ref     *core.Engine
	subs    []*diffSub
	byShard map[matcher.SubID]int
	byCore  map[matcher.SubID]int
}

func newDiffHarness(t *testing.T, shards, parallel int) *diffHarness {
	return &diffHarness{
		t:       t,
		sharded: New(Options{Shards: shards, Parallel: parallel}),
		ref:     core.New(predicate.NewRegistry(), index.New(), core.Options{}),
		byShard: map[matcher.SubID]int{},
		byCore:  map[matcher.SubID]int{},
	}
}

func (h *diffHarness) subscribe(x boolexpr.Expr) {
	h.t.Helper()
	sid, err := h.sharded.Subscribe(x)
	if err != nil {
		h.t.Fatalf("sharded subscribe %v: %v", x, err)
	}
	cid, err := h.ref.Subscribe(x)
	if err != nil {
		h.t.Fatalf("core subscribe %v: %v", x, err)
	}
	i := len(h.subs)
	h.subs = append(h.subs, &diffSub{expr: x, shardID: sid, coreID: cid, alive: true})
	h.byShard[sid] = i
	h.byCore[cid] = i
}

func (h *diffHarness) unsubscribe(i int) {
	h.t.Helper()
	s := h.subs[i]
	if !s.alive {
		return
	}
	if err := h.sharded.Unsubscribe(s.shardID); err != nil {
		h.t.Fatalf("sharded unsubscribe %d: %v", s.shardID, err)
	}
	if err := h.ref.Unsubscribe(s.coreID); err != nil {
		h.t.Fatalf("core unsubscribe %d: %v", s.coreID, err)
	}
	s.alive = false
	delete(h.byShard, s.shardID)
	delete(h.byCore, s.coreID)
}

// check asserts the three evaluators agree on ev. Dead IDs may have been
// recycled, so the ID→logical maps only ever contain live subscriptions.
func (h *diffHarness) check(ev event.Event) {
	h.t.Helper()
	naive := []int{}
	for i, s := range h.subs {
		if s.alive && s.expr.Eval(ev) {
			naive = append(naive, i)
		}
	}
	shardSet := h.project(h.sharded.Match(ev), h.byShard, "sharded")
	coreSet := h.project(h.ref.Match(ev), h.byCore, "core")
	if !equalInts(naive, shardSet) {
		h.t.Fatalf("event %v:\n  naive   %v\n  sharded %v", ev, naive, shardSet)
	}
	if !equalInts(naive, coreSet) {
		h.t.Fatalf("event %v:\n  naive %v\n  core  %v", ev, naive, coreSet)
	}
}

func (h *diffHarness) project(ids []matcher.SubID, of map[matcher.SubID]int, name string) []int {
	h.t.Helper()
	out := make([]int, 0, len(ids))
	seen := map[int]bool{}
	for _, id := range ids {
		i, ok := of[id]
		if !ok {
			h.t.Fatalf("%s returned ID %d which maps to no live subscription", name, id)
		}
		if seen[i] {
			h.t.Fatalf("%s returned logical subscription %d twice", name, i)
		}
		seen[i] = true
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// diffEvent draws a random event over the RandomExpr attribute pool
// a0..a7: ints and floats in the operand domain, matching strings,
// booleans, and randomly absent attributes.
func diffEvent(rng *rand.Rand) event.Event {
	ev := event.New()
	for i := 0; i < 8; i++ {
		attr := "a" + fmt.Sprint(i)
		switch rng.Intn(6) {
		case 0: // absent
		case 1:
			ev = ev.Set(attr, rng.Intn(100))
		case 2:
			ev = ev.Set(attr, float64(rng.Intn(100))+0.5)
		case 3:
			ev = ev.Set(attr, "s"+fmt.Sprint(rng.Intn(100)))
		case 4:
			ev = ev.Set(attr, rng.Intn(2) == 0)
		default:
			ev = ev.Set(attr, rng.Intn(10)) // dense small ints hit Eq operands
		}
	}
	return ev
}

// handPicked returns corner-case expressions the random generator only
// rarely produces: zero-satisfiable, unsatisfiable, and double negation.
func handPicked() []boolexpr.Expr {
	a0eq1 := boolexpr.Pred("a0", predicate.Eq, 1)
	return []boolexpr.Expr{
		boolexpr.NewNot(a0eq1),                         // zero-satisfiable
		boolexpr.NewAnd(a0eq1, boolexpr.NewNot(a0eq1)), // unsatisfiable
		boolexpr.NewNot(boolexpr.NewAnd(
			boolexpr.Pred("a1", predicate.Gt, 50),
			boolexpr.Pred("a2", predicate.Exists, nil),
		)), // zero-satisfiable via De Morgan
		boolexpr.NewOr(
			boolexpr.NewNot(boolexpr.Pred("a3", predicate.Exists, nil)),
			boolexpr.Pred("a3", predicate.Ge, 0),
		), // matches every event one way or the other
	}
}

func TestDifferentialRandomWorkloads(t *testing.T) {
	configs := []struct {
		shards, parallel int
	}{
		{1, 1}, {3, 1}, {4, 2}, {8, 4},
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, c := range configs {
		for _, seed := range seeds {
			c, seed := c, seed
			t.Run(fmt.Sprintf("shards=%d/par=%d/seed=%d", c.shards, c.parallel, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				h := newDiffHarness(t, c.shards, c.parallel)
				cfg := boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true}

				for _, x := range handPicked() {
					h.subscribe(x)
				}
				const rounds, perRound = 6, 25
				for r := 0; r < rounds; r++ {
					for i := 0; i < perRound; i++ {
						h.subscribe(boolexpr.RandomExpr(rng, cfg))
					}
					// Interleave unsubscription of ~1/4 of the live population,
					// recycling IDs in both engines.
					for i := range h.subs {
						if h.subs[i].alive && rng.Intn(4) == 0 {
							h.unsubscribe(i)
						}
					}
					for e := 0; e < 20; e++ {
						h.check(diffEvent(rng))
					}
					// The empty event: only zero-satisfiable subscriptions match.
					h.check(event.New())
				}
				if h.sharded.NumSubscriptions() != h.ref.NumSubscriptions() {
					t.Fatalf("live count diverged: sharded %d, core %d",
						h.sharded.NumSubscriptions(), h.ref.NumSubscriptions())
				}
			})
		}
	}
}

// TestDifferentialMatchPredicatesSingleShard extends the differential
// check to the phase-two-only entry point, where per-shard predicate IDs
// are exact for N=1: both engines see the same fulfilled-ID universe.
func TestDifferentialMatchPredicatesSingleShard(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := newDiffHarness(t, 1, 1)
	cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3, AllowNot: true}
	for i := 0; i < 120; i++ {
		h.subscribe(boolexpr.RandomExpr(rng, cfg))
	}
	for i := range h.subs {
		if rng.Intn(5) == 0 {
			h.unsubscribe(i)
		}
	}
	for trial := 0; trial < 40; trial++ {
		var fulfilled []predicate.ID
		for id := 1; id <= 200; id++ {
			if rng.Intn(8) == 0 {
				fulfilled = append(fulfilled, predicate.ID(id))
			}
		}
		got := h.sharded.MatchPredicates(fulfilled)
		want := h.ref.MatchPredicates(fulfilled)
		if len(got) != len(want) {
			t.Fatalf("trial %d: sharded %v != core %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sharded %v != core %v", trial, got, want)
			}
		}
	}
}

// TestDifferentialMatchBatch extends the differential property to the
// batched entry point: for sharded and unsharded engines under ID-recycling
// churn, MatchBatch agrees per event with Match and with naive evaluation.
func TestDifferentialMatchBatch(t *testing.T) {
	for _, c := range []struct{ shards, parallel int }{{1, 1}, {4, 2}, {8, 4}} {
		c := c
		t.Run(fmt.Sprintf("shards=%d/par=%d", c.shards, c.parallel), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			h := newDiffHarness(t, c.shards, c.parallel)
			cfg := boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true}
			for _, x := range handPicked() {
				h.subscribe(x)
			}
			for r := 0; r < 4; r++ {
				for i := 0; i < 30; i++ {
					h.subscribe(boolexpr.RandomExpr(rng, cfg))
				}
				for i := range h.subs {
					if h.subs[i].alive && rng.Intn(4) == 0 {
						h.unsubscribe(i)
					}
				}
				evs := make([]event.Event, 1+rng.Intn(40))
				for i := range evs {
					evs[i] = diffEvent(rng)
				}
				evs[0] = event.New() // the empty event rides in every batch
				batch := h.sharded.MatchBatch(evs)
				if len(batch) != len(evs) {
					t.Fatalf("MatchBatch returned %d results for %d events", len(batch), len(evs))
				}
				for i, ev := range evs {
					got := h.project(batch[i], h.byShard, "sharded-batch")
					single := h.project(h.sharded.Match(ev), h.byShard, "sharded")
					naive := []int{}
					for j, s := range h.subs {
						if s.alive && s.expr.Eval(ev) {
							naive = append(naive, j)
						}
					}
					if !equalInts(got, naive) {
						t.Fatalf("event %d (%v):\n  batch %v\n  naive %v", i, ev, got, naive)
					}
					if !equalInts(got, single) {
						t.Fatalf("event %d (%v):\n  batch  %v\n  single %v", i, ev, got, single)
					}
				}
			}
		})
	}
}
