package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"noncanon/internal/event"
	"noncanon/internal/workload"
)

// benchEngine loads a sharded engine with the Table 1 workload and draws
// a pool of events for it.
func benchEngine(b *testing.B, shards, subs int) (*Engine, []event.Event) {
	b.Helper()
	params := workload.Params{
		NumSubscriptions:  subs,
		PredsPerSub:       6,
		FulfilledPerEvent: 5000,
		Seed:              1,
	}
	e := New(Options{Shards: shards})
	for i := 0; i < subs; i++ {
		if _, err := e.Subscribe(params.Sub(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	events := make([]event.Event, 16)
	for i := range events {
		events[i] = params.Event(rng)
	}
	return e, events
}

// BenchmarkShardMatch measures full-pipeline Match (phase 1 + 2 on every
// shard) against the shard count; on a multi-core host higher shard
// counts cut single-event latency.
func BenchmarkShardMatch(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, events := benchEngine(b, shards, 20_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Match(events[i%len(events)])
			}
		})
	}
}

// BenchmarkShardMatchUnderChurn runs the same measurement while one
// goroutine churns Subscribe/Unsubscribe as fast as it can: with one
// shard every write excludes the matcher, with N shards only a 1/N slice
// of each fan-out can stall behind the writer.
func BenchmarkShardMatchUnderChurn(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e, events := benchEngine(b, shards, 20_000)
			params := workload.Params{
				NumSubscriptions: 1 << 30, PredsPerSub: 6,
				FulfilledPerEvent: 5000, Seed: 3,
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					id, err := e.Subscribe(params.Sub(1_000_000 + i))
					if err != nil {
						b.Error(err)
						return
					}
					if err := e.Unsubscribe(id); err != nil {
						b.Error(err)
						return
					}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Match(events[i%len(events)])
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}
