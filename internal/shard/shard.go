// Package shard scales the non-canonical engine across cores by
// hash-partitioning subscriptions over N independent core.Engine shards.
//
// Each shard owns a full engine stack — predicate registry, phase-one
// index, subscription store and lock — so the shards share no mutable
// state at all. That buys two things the single engine cannot provide:
//
//   - Write-side churn stops stalling matching globally. Subscribe and
//     Unsubscribe route to exactly one shard and take only that shard's
//     write lock; matching proceeds unimpeded on the other N-1 shards.
//   - A single event can use more than one core. Match fans the event out
//     to all shards — sequentially for small N, or through a bounded
//     worker pool for GOMAXPROCS-wide parallel single-event matching —
//     and merges the per-shard results.
//
// Subscription identity stays stable and routable across the partition:
// the shard index lives in the high ShardBits of every matcher.SubID
// (see Join/Split), so Unsubscribe finds its shard with a shift, no
// global lookup table required. Shard 0's IDs coincide with the wrapped
// engine's own IDs, making a 1-shard Engine bit-for-bit compatible with a
// bare core.Engine.
//
// Routing hashes the subscription's textual form (FNV-1a), so identical
// subscriptions land on the same shard where the registry interns their
// predicates once — content-hashing preserves the sharing that makes the
// paper's association table compact.
package shard

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
)

// SubID layout: the shard index occupies the high ShardBits of the 64-bit
// ID, the shard-local ID the low bits. Exported so wire-level consumers
// (dashboards, debug tooling) can decode where a subscription lives.
const (
	// ShardBits is the width of the shard-index field.
	ShardBits = 16
	// MaxShards is the largest permitted shard count.
	MaxShards = 1 << ShardBits
	// localBits is the width of the shard-local ID field.
	localBits = 64 - ShardBits
	// MaxLocalID is the largest shard-local subscription ID that fits the
	// layout (2^48-1 ≈ 2.8·10^14 live subscriptions per shard).
	MaxLocalID = matcher.SubID(1)<<localBits - 1
)

// Join combines a shard index and a shard-local ID into a global SubID.
func Join(shard int, local matcher.SubID) matcher.SubID {
	return matcher.SubID(shard)<<localBits | local
}

// Split decomposes a global SubID into its shard index and shard-local ID.
func Split(id matcher.SubID) (shard int, local matcher.SubID) {
	return int(id >> localBits), id & MaxLocalID
}

// Options configures a sharded engine.
type Options struct {
	// Shards is the number of partitions (default 1, max MaxShards).
	Shards int
	// Parallel bounds the worker pool a single Match fans out over
	// (default GOMAXPROCS, capped at Shards). 1 forces sequential fan-out.
	Parallel int
	// Engine configures every underlying core.Engine identically.
	Engine core.Options
}

// Engine partitions subscriptions across N core engines. It implements
// matcher.Matcher; see the package comment for the concurrency win over a
// single engine.
//
// MatchPredicates is supported for N=1 only, where it coincides with
// core.Engine.MatchPredicates. With more shards each shard owns a
// private registry, so a fulfilled-predicate ID names a different
// predicate on every shard and no correct answer exists; rather than
// return plausible-looking garbage, the call panics. Full-event Match —
// where each shard runs its own phase one — is the operation sharding
// is built for.
type Engine struct {
	shards []*core.Engine
	par    int
	churn  atomic.Uint64 // completed Subscribe/Unsubscribe count
}

var _ matcher.Matcher = (*Engine)(nil)

// normalize clamps out-of-range option values to the documented defaults
// rather than rejecting them, mirroring broker.Options.
func (o Options) normalize() (shards, parallel int) {
	shards = o.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	parallel = o.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > shards {
		parallel = shards
	}
	return shards, parallel
}

// New builds a sharded engine; see Options.normalize for value clamping.
func New(opts Options) *Engine {
	n, par := opts.normalize()
	e := &Engine{shards: make([]*core.Engine, n), par: par}
	for i := range e.shards {
		e.shards[i] = core.New(predicate.NewRegistry(), index.New(), opts.Engine)
	}
	return e
}

// Name implements matcher.Matcher.
func (e *Engine) Name() string {
	return fmt.Sprintf("sharded-non-canonical(%d)", len(e.shards))
}

// NumShards returns the partition count.
func (e *Engine) NumShards() int { return len(e.shards) }

// ShardOf returns the shard index a global SubID routes to. It does not
// check liveness; Unsubscribe reports unknown IDs.
func (e *Engine) ShardOf(id matcher.SubID) int {
	s, _ := Split(id)
	return s
}

// route picks the shard for a new subscription: FNV-1a over the textual
// form, so identical subscriptions co-locate and intern their predicates
// once.
func (e *Engine) route(expr boolexpr.Expr) int {
	h := fnv.New64a()
	h.Write([]byte(expr.String()))
	return int(h.Sum64() % uint64(len(e.shards)))
}

// Subscribe registers the subscription on its content-hashed shard,
// taking only that shard's write lock.
func (e *Engine) Subscribe(expr boolexpr.Expr) (matcher.SubID, error) {
	if expr == nil {
		return 0, fmt.Errorf("shard: nil subscription expression")
	}
	s := e.route(expr)
	local, err := e.shards[s].Subscribe(expr)
	if err != nil {
		return 0, err
	}
	if local > MaxLocalID {
		// Unreachable at any realistic scale (2^48 live IDs per shard), but
		// an overflowing ID must not silently alias another shard.
		_ = e.shards[s].Unsubscribe(local)
		return 0, fmt.Errorf("shard: shard %d exhausted its local ID space", s)
	}
	e.churn.Add(1)
	return Join(s, local), nil
}

// Unsubscribe removes the subscription from the shard encoded in its ID,
// touching no other shard.
func (e *Engine) Unsubscribe(id matcher.SubID) error {
	s, local := Split(id)
	if s >= len(e.shards) {
		return fmt.Errorf("%w: %d (shard %d of %d)", matcher.ErrUnknownSubscription, id, s, len(e.shards))
	}
	if err := e.shards[s].Unsubscribe(local); err != nil {
		return err
	}
	e.churn.Add(1)
	return nil
}

// Churn returns the total number of completed Subscribe/Unsubscribe
// operations (observability for the shard experiment).
func (e *Engine) Churn() uint64 { return e.churn.Load() }

// Match fans the event out to every shard — each runs both filtering
// phases over its private index and store — and merges the results in
// shard order. Fan-out is sequential when the engine was configured with
// Parallel=1 or has a single shard; otherwise up to Parallel workers pull
// shards off a shared counter, so one event's matching spreads across
// cores while churn on any shard blocks only that shard's slice of the
// work.
//
//nclint:hotpath
func (e *Engine) Match(ev event.Event) []matcher.SubID {
	return e.fanOut(func(s *core.Engine) []matcher.SubID { return s.Match(ev) })
}

// MatchInto is Match in append style (see core.Engine.MatchInto): matches
// are appended to the caller-owned out. Sequential fan-out globalises
// shard-local IDs in place, so nothing is allocated beyond out's own
// growth; the parallel fan-out path needs per-shard result buffers and
// falls back to Match's allocation pattern.
//
//nclint:hotpath
func (e *Engine) MatchInto(ev event.Event, out []matcher.SubID) []matcher.SubID {
	n := len(e.shards)
	if n == 1 {
		// Shard 0: Join is the identity.
		return e.shards[0].MatchInto(ev, out)
	}
	if e.par <= 1 {
		for i := 0; i < n; i++ {
			start := len(out)
			out = e.shards[i].MatchInto(ev, out)
			for j := start; j < len(out); j++ {
				out[j] = Join(i, out[j])
			}
		}
		return out
	}
	return append(out, e.Match(ev)...)
}

// MatchBatch fans the whole batch out to every shard at once — one
// fan-out (and one per-shard lock acquisition) per batch instead of per
// event — and merges the per-shard results per event in shard order.
// Within one batch every event observes the same state of each shard.
//
//nclint:hotpath
func (e *Engine) MatchBatch(evs []event.Event) [][]matcher.SubID {
	if len(evs) == 0 {
		return nil
	}
	n := len(e.shards)
	if n == 1 {
		// Shard 0: Join is the identity, reuse the engine's fresh slices.
		return e.shards[0].MatchBatch(evs)
	}
	perShard := make([][][]matcher.SubID, n)
	e.eachShard(func(i int) { perShard[i] = e.shards[i].MatchBatch(evs) })
	out := make([][]matcher.SubID, len(evs))
	for ev := range evs {
		total := 0
		for s := 0; s < n; s++ {
			total += len(perShard[s][ev])
		}
		ids := make([]matcher.SubID, 0, total)
		for s := 0; s < n; s++ {
			for _, local := range perShard[s][ev] {
				ids = append(ids, Join(s, local))
			}
		}
		out[ev] = ids
	}
	return out
}

// MatchPredicates runs phase two on the single shard. It panics on a
// multi-shard engine, where fulfilled IDs are ambiguous (see the Engine
// comment); use Match, which runs phase one per shard.
func (e *Engine) MatchPredicates(fulfilled []predicate.ID) []matcher.SubID {
	if len(e.shards) > 1 {
		panic(fmt.Sprintf("shard: MatchPredicates is ambiguous across %d shards with private registries; use Match", len(e.shards)))
	}
	return e.shards[0].MatchPredicates(fulfilled)
}

// fanOut runs fn on every shard and concatenates the globalised results
// in shard order, so output is deterministic for a given store state
// regardless of worker scheduling.
//
//nclint:hotpath
func (e *Engine) fanOut(fn func(*core.Engine) []matcher.SubID) []matcher.SubID {
	n := len(e.shards)
	if n == 1 {
		// Shard 0: Join is the identity, reuse the engine's fresh slice.
		return fn(e.shards[0])
	}
	perShard := make([][]matcher.SubID, n)
	e.eachShard(func(i int) { perShard[i] = fn(e.shards[i]) })
	total := 0
	for _, ids := range perShard {
		total += len(ids)
	}
	out := make([]matcher.SubID, 0, total)
	for i, ids := range perShard {
		for _, local := range ids {
			out = append(out, Join(i, local))
		}
	}
	return out
}

// eachShard runs fn for every shard index — sequentially when the engine
// was configured with Parallel=1, otherwise through a bounded worker pool
// pulling indexes off a shared counter. Both Match (per event) and
// MatchBatch (per batch) fan out through here.
func (e *Engine) eachShard(fn func(i int)) {
	n := len(e.shards)
	if e.par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < e.par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// NumSubscriptions sums the live subscriptions over all shards. Each
// shard is read under its own lock; concurrent churn may be counted in
// one shard and not another, like any sharded aggregate.
func (e *Engine) NumSubscriptions() int {
	total := 0
	for _, s := range e.shards {
		total += s.NumSubscriptions()
	}
	return total
}

// NumUnits implements matcher.Matcher: one stored unit per subscription,
// like the engine it partitions.
func (e *Engine) NumUnits() int {
	total := 0
	for _, s := range e.shards {
		total += s.NumUnits()
	}
	return total
}

// MemBytes sums the engine-owned phase-two memory over all shards.
func (e *Engine) MemBytes() int {
	total := 0
	for _, s := range e.shards {
		total += s.MemBytes()
	}
	return total
}

// Expr reconstructs the registered expression of a subscription, like
// core.Engine.Expr.
func (e *Engine) Expr(id matcher.SubID) (boolexpr.Expr, error) {
	s, local := Split(id)
	if s >= len(e.shards) {
		return nil, fmt.Errorf("%w: %d (shard %d of %d)", matcher.ErrUnknownSubscription, id, s, len(e.shards))
	}
	return e.shards[s].Expr(local)
}

// ShardSizes returns the live subscription count per shard, for balance
// introspection and the shard experiment.
func (e *Engine) ShardSizes() []int {
	out := make([]int, len(e.shards))
	for i, s := range e.shards {
		out[i] = s.NumSubscriptions()
	}
	return out
}
