package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
)

func TestIDLayoutRoundTrip(t *testing.T) {
	cases := []struct {
		shard int
		local matcher.SubID
	}{
		{0, 1}, {0, MaxLocalID}, {1, 1}, {7, 12345},
		{MaxShards - 1, 1}, {MaxShards - 1, MaxLocalID},
	}
	for _, c := range cases {
		id := Join(c.shard, c.local)
		s, l := Split(id)
		if s != c.shard || l != c.local {
			t.Errorf("Join(%d,%d)=%d splits to (%d,%d)", c.shard, c.local, id, s, l)
		}
	}
	// Shard 0 IDs must be bit-for-bit the local IDs.
	if Join(0, 42) != 42 {
		t.Errorf("Join(0, 42) = %d, want 42", Join(0, 42))
	}
}

func TestOptionsClamping(t *testing.T) {
	// normalize is tested directly: constructing MaxShards engines just to
	// observe the clamp would allocate 65536 registries.
	cases := []struct {
		opts         Options
		wantN, wantP int
	}{
		{Options{}, 1, 1},
		{Options{Shards: -3}, 1, 1},
		{Options{Shards: MaxShards + 5, Parallel: 2}, MaxShards, 2},
		{Options{Shards: 2, Parallel: 64}, 2, 2},
	}
	for _, c := range cases {
		n, p := c.opts.normalize()
		if n != c.wantN {
			t.Errorf("%+v: shards = %d, want %d", c.opts, n, c.wantN)
		}
		if c.opts.Parallel > 0 && p != c.wantP {
			t.Errorf("%+v: parallel = %d, want %d", c.opts, p, c.wantP)
		}
	}
	if n := New(Options{Shards: 3}).NumShards(); n != 3 {
		t.Errorf("NumShards = %d, want 3", n)
	}
}

// testExpr builds a deterministic expression whose identity i is
// recoverable: it matches exactly events with k = i.
func testExpr(i int) boolexpr.Expr {
	return boolexpr.NewOr(
		boolexpr.Pred("k", predicate.Eq, i),
		boolexpr.NewAnd(
			boolexpr.Pred("k", predicate.Ge, i),
			boolexpr.Pred("k", predicate.Le, i),
		),
	)
}

// TestSingleShardMatchesCore pins the acceptance criterion: a 1-shard
// engine returns exactly what a bare core.Engine returns — same IDs, same
// order — for the same registration sequence.
func TestSingleShardMatchesCore(t *testing.T) {
	sharded := New(Options{Shards: 1})
	bare := core.New(predicate.NewRegistry(), index.New(), core.Options{})

	const n = 200
	for i := 0; i < n; i++ {
		x := testExpr(i % 50) // duplicates exercise interning
		sid, err := sharded.Subscribe(x)
		if err != nil {
			t.Fatal(err)
		}
		bid, err := bare.Subscribe(x)
		if err != nil {
			t.Fatal(err)
		}
		if sid != bid {
			t.Fatalf("sub %d: sharded ID %d != core ID %d", i, sid, bid)
		}
	}
	// Interleave removals.
	for i := 5; i < n; i += 7 {
		if err := sharded.Unsubscribe(matcher.SubID(i)); err != nil {
			t.Fatal(err)
		}
		if err := bare.Unsubscribe(matcher.SubID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 50; k++ {
		ev := event.New().Set("k", k)
		got := sharded.Match(ev)
		want := bare.Match(ev)
		if len(got) != len(want) {
			t.Fatalf("k=%d: sharded %v != core %v", k, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("k=%d: sharded %v != core %v", k, got, want)
			}
		}
	}
	if sharded.NumSubscriptions() != bare.NumSubscriptions() {
		t.Errorf("NumSubscriptions: sharded %d, core %d",
			sharded.NumSubscriptions(), bare.NumSubscriptions())
	}
}

// TestShardedMatchesUnsharded checks, for several shard counts and both
// fan-out modes, that partitioning never changes the match *set* (IDs are
// remapped, so compare via expression identity).
func TestShardedMatchesUnsharded(t *testing.T) {
	const n = 300
	for _, shards := range []int{2, 3, 8} {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/par=%d", shards, par), func(t *testing.T) {
				e := New(Options{Shards: shards, Parallel: par})
				ref := core.New(predicate.NewRegistry(), index.New(), core.Options{})
				idOf := map[matcher.SubID]int{}  // sharded ID -> logical i
				refOf := map[matcher.SubID]int{} // core ID -> logical i
				for i := 0; i < n; i++ {
					x := testExpr(i)
					sid, err := e.Subscribe(x)
					if err != nil {
						t.Fatal(err)
					}
					rid, err := ref.Subscribe(x)
					if err != nil {
						t.Fatal(err)
					}
					idOf[sid] = i
					refOf[rid] = i
				}
				for k := 0; k < n; k += 17 {
					ev := event.New().Set("k", k)
					got := logical(t, e.Match(ev), idOf)
					want := logical(t, ref.Match(ev), refOf)
					if !equalInts(got, want) {
						t.Fatalf("k=%d: sharded %v != reference %v", k, got, want)
					}
				}
			})
		}
	}
}

func logical(t *testing.T, ids []matcher.SubID, of map[matcher.SubID]int) []int {
	t.Helper()
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		i, ok := of[id]
		if !ok {
			t.Fatalf("unknown ID %d in match result", id)
		}
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRoutingBalance checks the FNV partition spreads a randomized
// workload roughly evenly and that Subscribe touches exactly one shard.
func TestRoutingBalance(t *testing.T) {
	const shards, n = 8, 4000
	e := New(Options{Shards: shards})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		if _, err := e.Subscribe(boolexpr.RandomExpr(rng, boolexpr.RandomConfig{})); err != nil {
			t.Fatal(err)
		}
	}
	sizes := e.ShardSizes()
	total := 0
	for s, c := range sizes {
		total += c
		// Expect n/shards = 500 per shard; allow a generous ±50% band.
		if c < n/shards/2 || c > n*3/shards/2 {
			t.Errorf("shard %d holds %d of %d subscriptions — poor balance %v", s, c, n, sizes)
		}
	}
	if total != n || e.NumSubscriptions() != n {
		t.Errorf("total %d, NumSubscriptions %d, want %d", total, e.NumSubscriptions(), n)
	}
}

// TestIdenticalSubscriptionsCoLocate pins the content-hash routing
// property that makes predicate interning effective.
func TestIdenticalSubscriptionsCoLocate(t *testing.T) {
	e := New(Options{Shards: 8})
	x := testExpr(7)
	first, err := e.Subscribe(x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Split(first)
	for i := 0; i < 20; i++ {
		id, err := e.Subscribe(testExpr(7))
		if err != nil {
			t.Fatal(err)
		}
		if s, _ := Split(id); s != want {
			t.Fatalf("identical subscription landed on shard %d, want %d", s, want)
		}
	}
}

func TestUnsubscribeErrors(t *testing.T) {
	e := New(Options{Shards: 4})
	id, err := e.Subscribe(testExpr(1))
	if err != nil {
		t.Fatal(err)
	}
	// Unknown local ID on a valid shard.
	if err := e.Unsubscribe(id + 1); !errors.Is(err, matcher.ErrUnknownSubscription) {
		t.Errorf("Unsubscribe(unknown local) = %v", err)
	}
	// Shard index beyond the configured count.
	if err := e.Unsubscribe(Join(4, 1)); !errors.Is(err, matcher.ErrUnknownSubscription) {
		t.Errorf("Unsubscribe(bad shard) = %v", err)
	}
	if err := e.Unsubscribe(id); err != nil {
		t.Errorf("Unsubscribe(live) = %v", err)
	}
	if err := e.Unsubscribe(id); !errors.Is(err, matcher.ErrUnknownSubscription) {
		t.Errorf("double Unsubscribe = %v", err)
	}
	if got := e.Churn(); got != 2 { // one Subscribe + one successful Unsubscribe
		t.Errorf("Churn() = %d, want 2", got)
	}
}

func TestExprRoundTrip(t *testing.T) {
	e := New(Options{Shards: 4})
	x := testExpr(9)
	id, err := e.Subscribe(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := e.Expr(id)
	if err != nil {
		t.Fatal(err)
	}
	if !boolexpr.Equal(x, back) {
		t.Errorf("Expr round trip: got %v, want %v", back, x)
	}
	if _, err := e.Expr(Join(9, 1)); !errors.Is(err, matcher.ErrUnknownSubscription) {
		t.Errorf("Expr(bad shard) = %v", err)
	}
	if e.ShardOf(id) >= e.NumShards() {
		t.Errorf("ShardOf(%d) = %d out of range", id, e.ShardOf(id))
	}
}

// TestMatchPredicatesSingleShard: with one shard the broadcast semantics
// coincide with core.Engine.MatchPredicates exactly.
func TestMatchPredicatesSingleShard(t *testing.T) {
	e := New(Options{Shards: 1})
	ref := core.New(predicate.NewRegistry(), index.New(), core.Options{})
	for i := 0; i < 64; i++ {
		x := testExpr(i)
		if _, err := e.Subscribe(x); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	fulfilled := []predicate.ID{1, 2, 5, 9}
	got := e.MatchPredicates(fulfilled)
	want := ref.MatchPredicates(fulfilled)
	if len(got) != len(want) {
		t.Fatalf("MatchPredicates: %v != %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("MatchPredicates: %v != %v", got, want)
		}
	}
}

// TestMatchPredicatesMultiShardPanics pins the loud-failure contract:
// fulfilled predicate IDs are shard-local, so broadcasting them across
// shards with private registries has no correct answer.
func TestMatchPredicatesMultiShardPanics(t *testing.T) {
	e := New(Options{Shards: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("MatchPredicates on a 2-shard engine did not panic")
		}
	}()
	e.MatchPredicates([]predicate.ID{1})
}
