package shard

import (
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
)

// stormExpr builds a small random AND/OR/NOT expression over integer
// attributes a0..a3 with operands in [0, 50), like the core engine's race
// test — the stable population the matchers cross-check.
func stormExpr(rng *rand.Rand, depth int) boolexpr.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		attr := "a" + strconv.Itoa(rng.Intn(4))
		ops := []predicate.Op{predicate.Eq, predicate.Lt, predicate.Le, predicate.Gt, predicate.Ge}
		return boolexpr.Pred(attr, ops[rng.Intn(len(ops))], rng.Intn(50))
	}
	switch rng.Intn(3) {
	case 0:
		return boolexpr.NewAnd(stormExpr(rng, depth-1), stormExpr(rng, depth-1))
	case 1:
		return boolexpr.NewOr(stormExpr(rng, depth-1), stormExpr(rng, depth-1))
	default:
		return boolexpr.NewNot(stormExpr(rng, depth-1))
	}
}

func stormEvent(rng *rand.Rand) event.Event {
	ev := event.New()
	for i := 0; i < 4; i++ {
		ev = ev.Set("a"+strconv.Itoa(i), rng.Intn(50))
	}
	return ev
}

// churnExpr yields throw-away subscriptions over the dedicated "churn"
// attribute, which storm events never carry. Eq predicates are not
// zero-satisfiable, so a churn subscription can never legitimately match
// a storm event: any churn (or recycled-churn) ID in a Match result is a
// delivery for a subscription that is dead or was never fulfilled.
func churnExpr(rng *rand.Rand) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("churn", predicate.Eq, rng.Intn(1000)),
		boolexpr.Pred("churn", predicate.Ge, 0),
	)
}

// TestShardChurnRaceCrossCheck is the churn race test of ISSUE 2: run
// -race stress with concurrent Subscribe/Unsubscribe/Match across shards,
// asserting that recycled SubIDs are never delivered for a dead
// subscription and NumSubscriptions stays consistent.
//
// While core's race test exercises one store, this one additionally pins
// the sharded property: churn constantly write-locks *some* shard, yet
// every Match must still decide the whole stable population correctly —
// matching never waits on all shards at once.
func TestShardChurnRaceCrossCheck(t *testing.T) {
	const shards = 4
	e := New(Options{Shards: shards, Parallel: 2})
	rng := rand.New(rand.NewSource(17))

	const stableN = 150
	stable := make(map[matcher.SubID]boolexpr.Expr, stableN)
	for i := 0; i < stableN; i++ {
		x := stormExpr(rng, 3)
		id, err := e.Subscribe(x)
		if err != nil {
			t.Fatal(err)
		}
		stable[id] = x
	}

	iters := 300
	if testing.Short() {
		iters = 75
	}
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}

	var stop atomic.Bool
	var churnWG, matchWG sync.WaitGroup
	var leftover atomic.Int64

	// Churn goroutines: register and remove throw-away subscriptions that
	// can never match a storm event, landing on whichever shard the
	// content hash picks — write locks keep rotating through the shards.
	for w := 0; w < workers/2; w++ {
		churnWG.Add(1)
		go func(seed int64) {
			defer churnWG.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []matcher.SubID
			for !stop.Load() {
				if len(mine) < 8 && rng.Intn(2) == 0 {
					id, err := e.Subscribe(churnExpr(rng))
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				} else if len(mine) > 0 {
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := e.Unsubscribe(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
			leftover.Add(int64(len(mine)))
		}(300 + int64(w))
	}

	// Match goroutines: every result must decide the stable population
	// exactly like naive evaluation, and must never contain a non-stable
	// ID — churn subscriptions cannot match storm events, so a stray ID is
	// a dead or recycled delivery.
	for w := 0; w < (workers+1)/2; w++ {
		matchWG.Add(1)
		go func(seed int64) {
			defer matchWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				ev := stormEvent(rng)
				got := e.Match(ev)
				gotStable := make(map[matcher.SubID]bool, len(got))
				for _, id := range got {
					if _, ok := stable[id]; !ok {
						t.Errorf("event %v: matched non-stable subscription %d (shard %d) — dead or recycled delivery",
							ev, id, e.ShardOf(id))
						return
					}
					gotStable[id] = true
				}
				for id, x := range stable {
					if want := x.Eval(ev); want != gotStable[id] {
						t.Errorf("event %v: stable sub %d: naive=%v engine=%v (expr %v)",
							ev, id, want, gotStable[id], x)
						return
					}
				}
				// The live count must never dip below the stable floor,
				// whatever the churn is doing on other shards.
				if n := e.NumSubscriptions(); n < stableN {
					t.Errorf("NumSubscriptions = %d < stable floor %d", n, stableN)
					return
				}
			}
		}(400 + int64(w))
	}

	matchWG.Wait()
	stop.Store(true)
	churnWG.Wait()

	// Post-storm consistency: the engine-level count equals the stable
	// population plus the churn leftovers and the sum over shards.
	want := stableN + int(leftover.Load())
	if got := e.NumSubscriptions(); got != want {
		t.Errorf("post-storm NumSubscriptions = %d, want %d", got, want)
	}
	sum := 0
	for _, c := range e.ShardSizes() {
		sum += c
	}
	if sum != want {
		t.Errorf("post-storm shard sizes sum to %d, want %d (%v)", sum, want, e.ShardSizes())
	}

	// And a final serial cross-check of the intact store.
	ev := stormEvent(rng)
	got := map[matcher.SubID]bool{}
	for _, id := range e.Match(ev) {
		got[id] = true
	}
	for id, x := range stable {
		if x.Eval(ev) != got[id] {
			t.Fatalf("post-storm mismatch on stable sub %d", id)
		}
	}
}

// TestShardChurnDoesNotBlockOtherShards pins the structural claim behind
// the tentpole: holding one shard's write lock must not stop Match from
// completing on an engine whose fan-out is sequential over the remaining
// shards... it cannot literally hold a core lock from outside, so instead
// it drives sustained churn onto ONE shard (identical expressions
// co-locate) while timing that matching throughput on the whole engine
// continues — an existence proof that Subscribe on shard k excludes only
// shard k. The strict latency experiment lives in internal/bench.
func TestShardChurnDoesNotBlockOtherShards(t *testing.T) {
	e := New(Options{Shards: 4, Parallel: 1})
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		if _, err := e.Subscribe(stormExpr(rng, 3)); err != nil {
			t.Fatal(err)
		}
	}

	// All churn lands on one shard: the expression is constant.
	pin := boolexpr.Pred("churn", predicate.Eq, 42)
	pinID, err := e.Subscribe(pin)
	if err != nil {
		t.Fatal(err)
	}
	pinShard, _ := Split(pinID)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			id, err := e.Subscribe(pin)
			if err != nil {
				t.Error(err)
				return
			}
			if s, _ := Split(id); s != pinShard {
				t.Errorf("pinned churn landed on shard %d, want %d", s, pinShard)
				return
			}
			if err := e.Unsubscribe(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < 200; i++ {
		e.Match(stormEvent(rng))
	}
	stop.Store(true)
	wg.Wait()

	// The pinned shard saw all the churn; the others none.
	sizes := e.ShardSizes()
	total := 0
	for _, c := range sizes {
		total += c
	}
	if total != 101 {
		t.Errorf("post-churn population %d, want 101 (%v)", total, sizes)
	}
}
