package router

import (
	"sync"
	"testing"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/predicate"
)

// recorder is a Transport that appends every send.
type recorder struct {
	sent []sentMsg
}

type sentMsg struct {
	link int
	m    Msg
}

func (r *recorder) Send(link int, m Msg) { r.sent = append(r.sent, sentMsg{link: link, m: m}) }

func (r *recorder) ofKind(k Kind) []sentMsg {
	var out []sentMsg
	for _, s := range r.sent {
		if s.m.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

func newEngine() *core.Engine {
	return core.New(predicate.NewRegistry(), index.New(), core.Options{})
}

func band(c, hi int) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(c)),
		boolexpr.Pred("price", predicate.Lt, int64(hi)),
	)
}

func bandEvent(c, price int) event.Event {
	return event.New().Set("cat", int64(c)).Set("price", int64(price))
}

func newRouter(t *testing.T, links int, coverOn bool) (*Router, *recorder) {
	t.Helper()
	tr := &recorder{}
	r := New(Config{Links: links, Cover: coverOn, Engine: newEngine(), Transport: tr})
	return r, tr
}

func TestSubscribeFloodsAllOtherLinks(t *testing.T) {
	r, tr := newRouter(t, 3, false)
	installed, err := r.HandleSubscribe(1, band(1, 100), func(event.Event) {}, 2)
	if err != nil || !installed {
		t.Fatalf("HandleSubscribe = %v, %v", installed, err)
	}
	subs := tr.ofKind(Sub)
	if len(subs) != 2 {
		t.Fatalf("flooded %d links, want 2 (all except origin)", len(subs))
	}
	for _, s := range subs {
		if s.link == 2 {
			t.Errorf("flooded back to origin link")
		}
	}
	if got := r.Counts().SubMsgs; got != 2 {
		t.Errorf("SubMsgs = %d, want 2", got)
	}
}

func TestDuplicateSubscribeReportsNotInstalled(t *testing.T) {
	r, _ := newRouter(t, 2, false)
	if installed, _ := r.HandleSubscribe(7, band(0, 10), nil, 0); !installed {
		t.Fatal("first install failed")
	}
	installed, err := r.HandleSubscribe(7, band(0, 20), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if installed {
		t.Error("duplicate subscription ID installed twice")
	}
	if r.NumRoutes() != 1 {
		t.Errorf("NumRoutes = %d, want 1", r.NumRoutes())
	}
}

func TestInstallErrorIsReturnedNotPanicked(t *testing.T) {
	r, tr := newRouter(t, 2, false)
	// > 255 children in one And is uncompilable in the paper encoding.
	xs := make([]boolexpr.Expr, 256)
	for i := range xs {
		xs[i] = boolexpr.Pred("a", predicate.Eq, int64(i))
	}
	if _, err := r.HandleSubscribe(1, boolexpr.And{Xs: xs}, nil, -1); err == nil {
		t.Fatal("uncompilable subscription accepted")
	}
	if r.NumRoutes() != 0 {
		t.Errorf("failed install left a route behind")
	}
	if len(tr.sent) != 0 {
		t.Errorf("failed install was flooded: %d messages", len(tr.sent))
	}
}

func TestEventRoutesToNextHopsOnly(t *testing.T) {
	r, tr := newRouter(t, 3, false)
	// Two subscriptions toward link 1, one local, none toward link 2.
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(2, band(1, 50), nil, 1); err != nil {
		t.Fatal(err)
	}
	var local int
	if _, err := r.HandleSubscribe(3, band(1, 30), func(event.Event) { local++ }, -1); err != nil {
		t.Fatal(err)
	}
	tr.sent = nil
	r.HandleEvent(bandEvent(1, 10), 0, 2)
	evs := tr.ofKind(Event)
	if len(evs) != 1 || evs[0].link != 1 {
		t.Fatalf("event forwards = %+v, want exactly one over link 1", evs)
	}
	if evs[0].m.Hops != 1 {
		t.Errorf("forwarded hops = %d, want 1", evs[0].m.Hops)
	}
	if local != 1 {
		t.Errorf("local deliveries = %d, want 1", local)
	}
	c := r.Counts()
	if c.Forwarded != 1 || c.Delivered != 1 {
		t.Errorf("Counts = %+v", c)
	}
}

func TestMaxHopsDropIsCounted(t *testing.T) {
	r, tr := newRouter(t, 2, false)
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, 0); err != nil {
		t.Fatal(err)
	}
	r.HandleEvent(bandEvent(1, 10), MaxHops, 1)
	if got := r.Counts().HopDropped; got != 1 {
		t.Errorf("HopDropped = %d, want 1", got)
	}
	if len(tr.ofKind(Event)) != 0 {
		t.Error("event forwarded past MaxHops")
	}
}

func TestCoverSuppressionAndReflood(t *testing.T) {
	r, tr := newRouter(t, 1, true)
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(2, band(1, 10), nil, -1); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.ofKind(Sub)); got != 1 {
		t.Fatalf("flooded %d subscriptions, want 1 (narrow covered)", got)
	}
	if got := r.Counts().CoverSuppressed; got != 1 {
		t.Fatalf("CoverSuppressed = %d, want 1", got)
	}
	// Retracting the coverer must re-flood the narrow filter BEFORE the
	// retraction message.
	tr.sent = nil
	r.HandleUnsubscribe(1, -1)
	if len(tr.sent) != 2 {
		t.Fatalf("unsubscribe emitted %d messages, want 2 (re-flood + retract)", len(tr.sent))
	}
	if tr.sent[0].m.Kind != Sub || tr.sent[0].m.SubID != 2 {
		t.Errorf("first message = %+v, want re-flood of sub 2", tr.sent[0].m)
	}
	if tr.sent[1].m.Kind != Unsub || tr.sent[1].m.SubID != 1 {
		t.Errorf("second message = %+v, want retraction of sub 1", tr.sent[1].m)
	}
	fwd, covered, coverers := r.CoverState(0)
	if fwd != 1 || covered != 0 || coverers != 0 {
		t.Errorf("cover state after reflood = %d/%d/%d, want 1/0/0", fwd, covered, coverers)
	}
}

func TestSyncLinkFloodsExistingRoutes(t *testing.T) {
	r, tr := newRouter(t, 1, true)
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(2, band(2, 50), nil, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(3, band(1, 10), nil, -1); err != nil {
		t.Fatal(err)
	}
	tr.sent = nil
	link := r.AddLink()
	r.SyncLink(link)
	subs := tr.ofKind(Sub)
	// Covering applies on the fresh link too: sub 3 is shadowed by sub 1.
	if len(subs) != 2 {
		t.Fatalf("sync flooded %d subscriptions, want 2 (one covered)", len(subs))
	}
	for _, s := range subs {
		if s.link != link {
			t.Errorf("sync sent over link %d, want %d", s.link, link)
		}
	}
}

func TestRemoveLinkRetractsLearnedRoutes(t *testing.T) {
	r, tr := newRouter(t, 3, false)
	// Learned over link 0, flooded to links 1 and 2.
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, 0); err != nil {
		t.Fatal(err)
	}
	// Local subscription survives.
	if _, err := r.HandleSubscribe(2, band(2, 50), func(event.Event) {}, -1); err != nil {
		t.Fatal(err)
	}
	tr.sent = nil
	r.RemoveLink(0)
	if r.HasRoute(1) {
		t.Error("route learned over the dead link survived")
	}
	if !r.HasRoute(2) {
		t.Error("local route was retracted with the link")
	}
	unsubs := tr.ofKind(Unsub)
	if len(unsubs) != 2 {
		t.Fatalf("retraction crossed %d links, want 2", len(unsubs))
	}
	for _, u := range unsubs {
		if u.link == 0 {
			t.Error("retraction sent over the dead link itself")
		}
	}
	// Later floods skip the dead link.
	tr.sent = nil
	if _, err := r.HandleSubscribe(3, band(0, 10), nil, -1); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.ofKind(Sub) {
		if s.link == 0 {
			t.Error("flood used a dead link")
		}
	}
}

func TestQueueFIFOAndClose(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d, %v", i, v, ok)
		}
	}
	// A blocked Pop wakes on Push…
	done := make(chan int, 1)
	go func() {
		v, _ := q.Pop()
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(42)
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("woken Pop = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop did not wake on Push")
	}
	// …and on Close.
	closed := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		closed <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-closed:
		if ok {
			t.Fatal("Pop returned ok after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop did not wake on Close")
	}
	q.Push(1) // dropped, not panicking
	if _, ok := q.Pop(); ok {
		t.Error("Pop delivered after Close")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue[int]()
	const producers, per = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(p*per + i)
			}
		}(p)
	}
	got := make(chan map[int]bool, 1)
	go func() {
		seen := make(map[int]bool, producers*per)
		for len(seen) < producers*per {
			v, ok := q.Pop()
			if !ok {
				break
			}
			if seen[v] {
				break
			}
			seen[v] = true
		}
		got <- seen
	}()
	wg.Wait()
	select {
	case seen := <-got:
		if len(seen) != producers*per {
			t.Fatalf("consumed %d distinct items, want %d", len(seen), producers*per)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("consumer stuck")
	}
	q.Close()
}
