package router

import (
	"sync"
	"testing"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/obs"
	"noncanon/internal/predicate"
)

// recorder is a Transport that appends every send.
type recorder struct {
	sent []sentMsg
}

type sentMsg struct {
	link int
	m    Msg
}

func (r *recorder) Send(link int, m Msg) { r.sent = append(r.sent, sentMsg{link: link, m: m}) }

func (r *recorder) ofKind(k Kind) []sentMsg {
	var out []sentMsg
	for _, s := range r.sent {
		if s.m.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

func newEngine() *core.Engine {
	return core.New(predicate.NewRegistry(), index.New(), core.Options{})
}

func band(c, hi int) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(c)),
		boolexpr.Pred("price", predicate.Lt, int64(hi)),
	)
}

func bandEvent(c, price int) event.Event {
	return event.New().Set("cat", int64(c)).Set("price", int64(price))
}

func newRouter(t *testing.T, links int, coverOn bool) (*Router, *recorder) {
	t.Helper()
	tr := &recorder{}
	r := New(Config{Links: links, Cover: coverOn, Engine: newEngine(), Transport: tr})
	return r, tr
}

func TestSubscribeFloodsAllOtherLinks(t *testing.T) {
	r, tr := newRouter(t, 3, false)
	installed, err := r.HandleSubscribe(1, band(1, 100), func(event.Event) {}, 2)
	if err != nil || !installed {
		t.Fatalf("HandleSubscribe = %v, %v", installed, err)
	}
	subs := tr.ofKind(Sub)
	if len(subs) != 2 {
		t.Fatalf("flooded %d links, want 2 (all except origin)", len(subs))
	}
	for _, s := range subs {
		if s.link == 2 {
			t.Errorf("flooded back to origin link")
		}
	}
	if got := r.Counts().SubMsgs; got != 2 {
		t.Errorf("SubMsgs = %d, want 2", got)
	}
}

func TestDuplicateSubscribeReportsNotInstalled(t *testing.T) {
	r, _ := newRouter(t, 2, false)
	if installed, _ := r.HandleSubscribe(7, band(0, 10), nil, 0); !installed {
		t.Fatal("first install failed")
	}
	installed, err := r.HandleSubscribe(7, band(0, 20), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if installed {
		t.Error("duplicate subscription ID installed twice")
	}
	if r.NumRoutes() != 1 {
		t.Errorf("NumRoutes = %d, want 1", r.NumRoutes())
	}
}

func TestInstallErrorIsReturnedNotPanicked(t *testing.T) {
	r, tr := newRouter(t, 2, false)
	// > 255 children in one And is uncompilable in the paper encoding.
	xs := make([]boolexpr.Expr, 256)
	for i := range xs {
		xs[i] = boolexpr.Pred("a", predicate.Eq, int64(i))
	}
	if _, err := r.HandleSubscribe(1, boolexpr.And{Xs: xs}, nil, -1); err == nil {
		t.Fatal("uncompilable subscription accepted")
	}
	if r.NumRoutes() != 0 {
		t.Errorf("failed install left a route behind")
	}
	if len(tr.sent) != 0 {
		t.Errorf("failed install was flooded: %d messages", len(tr.sent))
	}
}

func TestEventRoutesToNextHopsOnly(t *testing.T) {
	r, tr := newRouter(t, 3, false)
	// Two subscriptions toward link 1, one local, none toward link 2.
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(2, band(1, 50), nil, 1); err != nil {
		t.Fatal(err)
	}
	var local int
	if _, err := r.HandleSubscribe(3, band(1, 30), func(event.Event) { local++ }, -1); err != nil {
		t.Fatal(err)
	}
	tr.sent = nil
	r.HandleEvent(bandEvent(1, 10), 0, 2)
	evs := tr.ofKind(Event)
	if len(evs) != 1 || evs[0].link != 1 {
		t.Fatalf("event forwards = %+v, want exactly one over link 1", evs)
	}
	if evs[0].m.Hops != 1 {
		t.Errorf("forwarded hops = %d, want 1", evs[0].m.Hops)
	}
	if local != 1 {
		t.Errorf("local deliveries = %d, want 1", local)
	}
	c := r.Counts()
	if c.Forwarded != 1 || c.Delivered != 1 {
		t.Errorf("Counts = %+v", c)
	}
}

func TestMaxHopsDropIsCounted(t *testing.T) {
	r, tr := newRouter(t, 2, false)
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, 0); err != nil {
		t.Fatal(err)
	}
	r.HandleEvent(bandEvent(1, 10), MaxHops, 1)
	if got := r.Counts().HopDropped; got != 1 {
		t.Errorf("HopDropped = %d, want 1", got)
	}
	if len(tr.ofKind(Event)) != 0 {
		t.Error("event forwarded past MaxHops")
	}
}

func TestCoverSuppressionAndReflood(t *testing.T) {
	r, tr := newRouter(t, 1, true)
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(2, band(1, 10), nil, -1); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.ofKind(Sub)); got != 1 {
		t.Fatalf("flooded %d subscriptions, want 1 (narrow covered)", got)
	}
	if got := r.Counts().CoverSuppressed; got != 1 {
		t.Fatalf("CoverSuppressed = %d, want 1", got)
	}
	// Retracting the coverer must re-flood the narrow filter BEFORE the
	// retraction message.
	tr.sent = nil
	r.HandleUnsubscribe(1, -1)
	if len(tr.sent) != 2 {
		t.Fatalf("unsubscribe emitted %d messages, want 2 (re-flood + retract)", len(tr.sent))
	}
	if tr.sent[0].m.Kind != Sub || tr.sent[0].m.SubID != 2 {
		t.Errorf("first message = %+v, want re-flood of sub 2", tr.sent[0].m)
	}
	if tr.sent[1].m.Kind != Unsub || tr.sent[1].m.SubID != 1 {
		t.Errorf("second message = %+v, want retraction of sub 1", tr.sent[1].m)
	}
	fwd, covered, coverers := r.CoverState(0)
	if fwd != 1 || covered != 0 || coverers != 0 {
		t.Errorf("cover state after reflood = %d/%d/%d, want 1/0/0", fwd, covered, coverers)
	}
}

func TestSyncLinkFloodsExistingRoutes(t *testing.T) {
	r, tr := newRouter(t, 1, true)
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(2, band(2, 50), nil, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(3, band(1, 10), nil, -1); err != nil {
		t.Fatal(err)
	}
	tr.sent = nil
	link := r.AddLink()
	r.SyncLink(link)
	subs := tr.ofKind(Sub)
	// Covering applies on the fresh link too: sub 3 is shadowed by sub 1.
	if len(subs) != 2 {
		t.Fatalf("sync flooded %d subscriptions, want 2 (one covered)", len(subs))
	}
	for _, s := range subs {
		if s.link != link {
			t.Errorf("sync sent over link %d, want %d", s.link, link)
		}
	}
}

func TestRemoveLinkRetractsLearnedRoutes(t *testing.T) {
	r, tr := newRouter(t, 3, false)
	// Learned over link 0, flooded to links 1 and 2.
	if _, err := r.HandleSubscribe(1, band(1, 100), nil, 0); err != nil {
		t.Fatal(err)
	}
	// Local subscription survives.
	if _, err := r.HandleSubscribe(2, band(2, 50), func(event.Event) {}, -1); err != nil {
		t.Fatal(err)
	}
	tr.sent = nil
	r.RemoveLink(0)
	if r.HasRoute(1) {
		t.Error("route learned over the dead link survived")
	}
	if !r.HasRoute(2) {
		t.Error("local route was retracted with the link")
	}
	unsubs := tr.ofKind(Unsub)
	if len(unsubs) != 2 {
		t.Fatalf("retraction crossed %d links, want 2", len(unsubs))
	}
	for _, u := range unsubs {
		if u.link == 0 {
			t.Error("retraction sent over the dead link itself")
		}
	}
	// Later floods skip the dead link.
	tr.sent = nil
	if _, err := r.HandleSubscribe(3, band(0, 10), nil, -1); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.ofKind(Sub) {
		if s.link == 0 {
			t.Error("flood used a dead link")
		}
	}
}

func TestQueueFIFOAndClose(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d, %v", i, v, ok)
		}
	}
	// A blocked Pop wakes on Push…
	done := make(chan int, 1)
	go func() {
		v, _ := q.Pop()
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(42)
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("woken Pop = %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop did not wake on Push")
	}
	// …and on Close.
	closed := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		closed <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-closed:
		if ok {
			t.Fatal("Pop returned ok after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop did not wake on Close")
	}
	q.Push(1) // dropped, not panicking
	if _, ok := q.Pop(); ok {
		t.Error("Pop delivered after Close")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue[int]()
	const producers, per = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(p*per + i)
			}
		}(p)
	}
	got := make(chan map[int]bool, 1)
	go func() {
		seen := make(map[int]bool, producers*per)
		for len(seen) < producers*per {
			v, ok := q.Pop()
			if !ok {
				break
			}
			if seen[v] {
				break
			}
			seen[v] = true
		}
		got <- seen
	}()
	wg.Wait()
	select {
	case seen := <-got:
		if len(seen) != producers*per {
			t.Fatalf("consumed %d distinct items, want %d", len(seen), producers*per)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("consumer stuck")
	}
	q.Close()
}

// TestCoverCacheDifferential replays the same churny workload through a
// memoizing router and through raw cover.Covers, asserting identical
// routing decisions — the cache must be invisible except in the hit
// counters. (Both paths are deterministic: the memo is keyed by canonical
// cover.Key pairs, and a cached verdict is exactly the verdict Covers
// returns for that key pair's expressions.)
func TestCoverCacheDifferential(t *testing.T) {
	run := func() (*Router, *recorder) {
		r, tr := newRouter(t, 3, true)
		id := uint64(0)
		for round := 0; round < 3; round++ {
			for c := 0; c < 4; c++ {
				for _, hi := range []int{10, 100, 1000} {
					id++
					if _, err := r.HandleSubscribe(id, band(c, hi), nil, -1); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Retract the wide filters so their coverees re-flood (which
			// re-checks pairs — cache hits on the second round).
			for retract := id - 11; retract <= id; retract += 3 {
				r.HandleUnsubscribe(retract, -1)
			}
		}
		return r, tr
	}
	r1, tr1 := run()
	r2, tr2 := run()
	if len(tr1.sent) != len(tr2.sent) {
		t.Fatalf("runs diverged: %d vs %d sends", len(tr1.sent), len(tr2.sent))
	}
	for i := range tr1.sent {
		a, b := tr1.sent[i], tr2.sent[i]
		if a.link != b.link || a.m.Kind != b.m.Kind || a.m.SubID != b.m.SubID {
			t.Fatalf("send %d diverged: %+v vs %+v", i, a, b)
		}
	}
	c1, c2 := r1.Counts(), r2.Counts()
	hits, misses := c1.CoverCacheHits, c1.CoverCacheMisses
	// Hit/miss totals are not compared across runs: the covering loop
	// walks a map, so how many pairs are checked before a coverer is found
	// varies run to run (it did before memoization too). The routing
	// outcome must not.
	c1.CoverCacheHits, c1.CoverCacheMisses = 0, 0
	c2.CoverCacheHits, c2.CoverCacheMisses = 0, 0
	if c1 != c2 {
		t.Errorf("counts diverged: %+v vs %+v", c1, c2)
	}
	if hits == 0 {
		t.Error("workload produced no cache hits; memoization untested")
	}
	if misses == 0 {
		t.Error("no cache misses recorded")
	}
}

// TestCoverCacheSuppressionEquivalence pins that memoized covering makes
// the same suppression decisions as PR 4's un-memoized router did: a
// covered subscription still never crosses the link, and retraction still
// re-floods it.
func TestCoverCacheSuppressionEquivalence(t *testing.T) {
	r, tr := newRouter(t, 2, true)
	wide := band(1, 1000)
	narrow := band(1, 10)
	if _, err := r.HandleSubscribe(1, wide, nil, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.HandleSubscribe(2, narrow, nil, -1); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.ofKind(Sub)); got != 2 { // one per link for wide only
		t.Fatalf("subs sent = %d, want 2 (narrow suppressed)", got)
	}
	// Same narrow filter again on another ID: covering check hits the cache.
	if _, err := r.HandleSubscribe(3, band(1, 10), nil, -1); err != nil {
		t.Fatal(err)
	}
	c := r.Counts()
	if c.CoverSuppressed != 4 { // subs 2 and 3 over both links
		t.Errorf("suppressed = %d, want 4", c.CoverSuppressed)
	}
	if c.CoverCacheHits == 0 {
		t.Errorf("identical filter re-check missed the cache: %+v", c)
	}
}

// TestHandleEventMsgPreservesTrace pins that a traced event keeps its
// trace across a forward — the property the federation's hop records
// depend on.
func TestHandleEventMsgPreservesTrace(t *testing.T) {
	r, tr := newRouter(t, 2, false)
	if _, err := r.HandleSubscribe(7, band(1, 100), nil, 1); err != nil {
		t.Fatal(err)
	}
	trace := Trace{ID: 0xfeed, OriginNanos: 123456789}
	r.HandleEventMsg(Msg{Kind: Event, Ev: bandEvent(1, 5), Hops: 2, Trace: trace}, 0)
	fwds := tr.ofKind(Event)
	if len(fwds) != 1 {
		t.Fatalf("forwards = %d, want 1", len(fwds))
	}
	if got := fwds[0].m; got.Trace != trace || got.Hops != 3 {
		t.Errorf("forwarded msg = %+v, want trace %+v hops 3", got, trace)
	}
	// The wrapper sends untraced messages, zero Trace.
	r.HandleEvent(bandEvent(1, 5), 0, -1)
	fwds = tr.ofKind(Event)
	if len(fwds) != 2 || fwds[1].m.Trace != (Trace{}) {
		t.Fatalf("HandleEvent wrapper attached a trace: %+v", fwds[len(fwds)-1].m)
	}
}

// TestRouterSharedRegistryTotals pins the shared-registry contract: two
// routers on one registry share counters, so either's Counts reports the
// pair's totals.
func TestRouterSharedRegistryTotals(t *testing.T) {
	reg := obs.NewRegistry()
	tr := &recorder{}
	ra := New(Config{Links: 1, Engine: newEngine(), Transport: tr, Metrics: reg})
	rb := New(Config{Links: 1, Engine: newEngine(), Transport: tr, Metrics: reg})
	if _, err := ra.HandleSubscribe(1, band(1, 100), nil, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.HandleSubscribe(2, band(1, 100), nil, -1); err != nil {
		t.Fatal(err)
	}
	if got := ra.Counts().SubMsgs; got != 2 {
		t.Errorf("shared SubMsgs = %d, want 2", got)
	}
	if s, ok := reg.Get("router_sub_msgs_total"); !ok || s.Value != 2 {
		t.Errorf("registry counter = %+v %v", s, ok)
	}
}
