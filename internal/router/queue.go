package router

import (
	"sync"
	"time"
)

// DefaultHighWater is the default congestion threshold of a flow-controlled
// queue, in accounted bytes.
const DefaultHighWater = 8 << 20

// Queue is a multi-producer FIFO ring buffer with a blocking consumer and
// credit-based flow control. It is the spill buffer that makes broker
// forwarding non-blocking: a broker goroutine pushes outbound messages here
// (never waiting on a peer), and a dedicated writer goroutine drains them
// toward the link at whatever pace the link sustains. Because Push never
// blocks, the classic A↔B full-inbox cycle — each broker stuck sending into
// the other's full queue, neither draining its own — cannot form.
//
// Flow control (NewFlowQueue) bounds what a slow or stalled consumer can
// pin in memory. The queue accounts bytes: the link's credit is the high
// watermark minus the queued bytes, and when credit runs out the queue is
// *congested*. Offer — the path for sheddable traffic (events) — then
// drops-and-counts instead of enqueueing, while Push — the path for control
// traffic (subscriptions, retractions) — always enqueues, so routing state
// stays consistent no matter how congested a link gets. Congestion clears
// with hysteresis once the consumer drains the queue below the low
// watermark. Control traffic is bounded by the subscription population, so
// shedding the event stream is what bounds the queue overall.
type Queue[T any] struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond

	// Ring storage: n items starting at head. Popped slots are zeroed so
	// they don't pin values, and the backing array really is reused — a
	// steady-state Push/Pop cycle allocates nothing.
	buf  []T
	head int
	n    int

	bytes  int
	closed bool

	sizeOf func(T) int
	high   int
	low    int

	congested      bool
	congestedSince time.Time

	pushed       uint64
	shed         uint64
	spilledBytes uint64
}

// QueueStats is a point-in-time accounting snapshot. Pushed, Shed and
// SpilledBytes are cumulative and survive Close; Items, Bytes and Congested
// describe the current queue state.
type QueueStats struct {
	// Items and Bytes are the currently queued message count and their
	// accounted size.
	Items int
	Bytes int
	// Pushed counts messages accepted (Push and successful Offer).
	Pushed uint64
	// Shed counts messages Offer dropped while congested.
	Shed uint64
	// SpilledBytes is the cumulative accounted size of accepted messages.
	SpilledBytes uint64
	// Congested reports whether the queue is out of credit.
	Congested bool
}

// NewQueue builds an empty open queue without flow control: Offer behaves
// like Push and the queue never reports congestion. Broker-to-peer paths
// must use NewFlowQueue instead.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// NewFlowQueue builds an empty open queue with credit-based flow control.
// sizeOf estimates one item's accounted bytes (nil counts every item as 1,
// making the watermarks message counts). The queue turns congested when the
// accounted bytes reach high (default DefaultHighWater) and clears once
// they drain below low (default high/2).
func NewFlowQueue[T any](sizeOf func(T) int, high, low int) *Queue[T] {
	if high <= 0 {
		high = DefaultHighWater
	}
	if low <= 0 || low > high {
		low = high / 2
	}
	q := &Queue[T]{sizeOf: sizeOf, high: high, low: low}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// size returns one item's accounted bytes.
func (q *Queue[T]) size(item T) int {
	if q.sizeOf == nil {
		return 1
	}
	return q.sizeOf(item)
}

// enqueueLocked appends item to the ring, growing the backing array only
// when full.
func (q *Queue[T]) enqueueLocked(item T, sz int) {
	if q.n == len(q.buf) {
		grown := make([]T, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = item
	q.n++
	q.bytes += sz
	q.pushed++
	q.spilledBytes += uint64(sz)
	if q.high > 0 && !q.congested && q.bytes >= q.high {
		q.congested = true
		q.congestedSince = time.Now()
	}
	q.nonEmpty.Signal()
}

// Push appends an item unconditionally — the control path: subscription
// floods and retractions are never shed, whatever the congestion state, so
// re-flood-before-retract ordering and routing-table consistency survive
// congestion. It never blocks. Pushes after Close are dropped.
func (q *Queue[T]) Push(item T) {
	q.mu.Lock()
	if !q.closed {
		q.enqueueLocked(item, q.size(item))
	}
	q.mu.Unlock()
}

// Offer appends an item unless the queue is congested or closed — the
// sheddable path for event traffic. A false return means the item was
// dropped; congestion drops are counted (QueueStats.Shed).
func (q *Queue[T]) Offer(item T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	if q.congested {
		q.shed++
		return false
	}
	q.enqueueLocked(item, q.size(item))
	return true
}

// Pop removes the oldest item, blocking while the queue is empty. It
// returns ok=false once the queue is closed — a close wakes the consumer
// immediately, discarding queued items (shutdown is not a delivery
// guarantee). Draining below the low watermark restores the queue's credit.
func (q *Queue[T]) Pop() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.closed {
		var zero T
		return zero, false
	}
	item = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.bytes -= q.size(item)
	if q.congested && q.bytes < q.low {
		q.congested = false
	}
	return item, true
}

// Len reports the queued item count.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Stats returns an accounting snapshot.
func (q *Queue[T]) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Items:        q.n,
		Bytes:        q.bytes,
		Pushed:       q.pushed,
		Shed:         q.shed,
		SpilledBytes: q.spilledBytes,
		Congested:    q.congested,
	}
}

// CongestedFor returns how long the queue has been continuously congested,
// or zero when it is not. Eviction policies compare this against their
// deadline.
func (q *Queue[T]) CongestedFor() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.congested {
		return 0
	}
	return time.Since(q.congestedSince)
}

// Close wakes the consumer and discards queued items. Cumulative counters
// remain readable. Idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.buf, q.head, q.n, q.bytes = nil, 0, 0, 0
	q.congested = false
	q.nonEmpty.Broadcast()
	q.mu.Unlock()
}

// msgOverheadBytes is the fixed accounted cost of one routing message:
// struct, frame header and queue bookkeeping.
const msgOverheadBytes = 64

// subEstimateBytes is the accounted cost of a subscription flood beyond the
// fixed overhead. Filters cross the wire in text form; walking the
// expression on every push is not worth exactness for control traffic, so
// a generous flat estimate stands in.
const subEstimateBytes = 256

// EstimateMsgBytes estimates one routing message's accounted size for
// flow-controlled spill queues. Event payloads are measured (they dominate
// congested queues); control messages use flat estimates.
func EstimateMsgBytes(m Msg) int {
	switch m.Kind {
	case Event:
		return msgOverheadBytes + m.Ev.MemBytes()
	case Sub:
		return msgOverheadBytes + subEstimateBytes
	default:
		return msgOverheadBytes
	}
}
