package router

import "sync"

// Queue is an unbounded multi-producer FIFO with a blocking consumer. It is
// the spill buffer that makes broker forwarding non-blocking: a broker
// goroutine pushes outbound messages here (never waiting on a peer), and a
// dedicated writer goroutine drains them toward the link at whatever pace
// the link sustains. Because Push never blocks, the classic A↔B full-inbox
// cycle — each broker stuck sending into the other's full queue, neither
// draining its own — cannot form.
type Queue[T any] struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	items    []T
	closed   bool
}

// NewQueue builds an empty open queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// Push appends an item. It never blocks. Pushes after Close are dropped.
func (q *Queue[T]) Push(item T) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, item)
		q.nonEmpty.Signal()
	}
	q.mu.Unlock()
}

// Pop removes the oldest item, blocking while the queue is empty. It
// returns ok=false once the queue is closed and drained of nothing — a
// close wakes the consumer immediately, discarding queued items (shutdown
// is not a delivery guarantee).
func (q *Queue[T]) Pop() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.closed {
		var zero T
		return zero, false
	}
	item = q.items[0]
	// Slide rather than re-slice so the backing array is reusable and the
	// popped slot doesn't pin its value.
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.items = q.items[:0:cap(q.items)]
	}
	return item, true
}

// Len reports the queued item count.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close wakes the consumer and discards queued items. Idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.items = nil
	q.nonEmpty.Broadcast()
	q.mu.Unlock()
}
