package router

import (
	"testing"
	"time"
)

// flowQueue builds a byte-accounted int queue where every item costs its
// own value in bytes, making watermark arithmetic explicit in tests.
func flowQueue(high, low int) *Queue[int] {
	return NewFlowQueue[int](func(v int) int { return v }, high, low)
}

func TestQueueWatermarkHysteresis(t *testing.T) {
	q := flowQueue(100, 50)

	// Below the high watermark the queue accepts Offers.
	if !q.Offer(40) || !q.Offer(40) {
		t.Fatal("Offer rejected below the high watermark")
	}
	if st := q.Stats(); st.Congested {
		t.Fatalf("congested at %d bytes, high watermark is 100", st.Bytes)
	}
	// The Offer crossing the watermark is admitted; the queue then turns
	// congested and sheds subsequent Offers.
	if !q.Offer(40) {
		t.Fatal("watermark-crossing Offer rejected")
	}
	if st := q.Stats(); !st.Congested || st.Bytes != 120 {
		t.Fatalf("Stats after crossing = %+v, want congested at 120 bytes", st)
	}
	if q.Offer(10) {
		t.Fatal("Offer accepted while congested")
	}
	if st := q.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
	// Control traffic is never shed, congested or not.
	q.Push(40)
	if st := q.Stats(); st.Bytes != 160 || st.Pushed != 4 {
		t.Fatalf("Stats after congested Push = %+v", st)
	}

	// Draining to 80 bytes (≥ low watermark 50) must NOT clear congestion…
	q.Pop()
	q.Pop()
	if st := q.Stats(); !st.Congested || st.Bytes != 80 {
		t.Fatalf("Stats mid-drain = %+v, want still congested at 80 bytes", st)
	}
	if q.Offer(10) {
		t.Fatal("Offer accepted above the low watermark")
	}
	// …and draining below it must.
	q.Pop()
	if st := q.Stats(); st.Congested || st.Bytes != 40 {
		t.Fatalf("Stats after drain = %+v, want credit restored at 40 bytes", st)
	}
	if !q.Offer(10) {
		t.Fatal("Offer rejected after congestion cleared")
	}
	if st := q.Stats(); st.Shed != 2 {
		t.Fatalf("final Shed = %d, want 2", st.Shed)
	}
}

func TestQueueCongestedFor(t *testing.T) {
	q := flowQueue(10, 5)
	if d := q.CongestedFor(); d != 0 {
		t.Fatalf("CongestedFor on fresh queue = %v", d)
	}
	q.Push(10)
	time.Sleep(5 * time.Millisecond)
	if d := q.CongestedFor(); d < 5*time.Millisecond {
		t.Fatalf("CongestedFor = %v, want >= 5ms", d)
	}
	q.Pop()
	if d := q.CongestedFor(); d != 0 {
		t.Fatalf("CongestedFor after drain = %v", d)
	}
}

func TestQueueCloseEdges(t *testing.T) {
	q := flowQueue(100, 50)
	q.Push(10)
	q.Close()

	// Push and Offer after Close are dropped without panicking, and the
	// drop is not a congestion shed.
	q.Push(1)
	if q.Offer(1) {
		t.Error("Offer accepted after Close")
	}
	if st := q.Stats(); st.Items != 0 || st.Shed != 0 || st.Pushed != 1 {
		t.Errorf("Stats after Close = %+v", st)
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop delivered after Close")
	}
	q.Close() // idempotent

	// A Pop blocked on an empty queue wakes on Close.
	q2 := flowQueue(100, 50)
	woke := make(chan bool, 1)
	go func() {
		_, ok := q2.Pop()
		woke <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q2.Close()
	select {
	case ok := <-woke:
		if ok {
			t.Error("blocked Pop returned ok after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Pop did not wake on Close")
	}
}

func TestQueueRingWrapsFIFO(t *testing.T) {
	// Interleave pushes and pops so head wraps around the ring repeatedly.
	q := NewQueue[int]()
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			v, ok := q.Pop()
			if !ok || v != want {
				t.Fatalf("Pop = %d, %v; want %d", v, ok, want)
			}
			want++
		}
	}
	for want < next {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("drain Pop = %d, %v; want %d", v, ok, want)
		}
		want++
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestEstimateMsgBytes(t *testing.T) {
	ev := bandEvent(1, 10)
	if got := EstimateMsgBytes(Msg{Kind: Event, Ev: ev}); got <= msgOverheadBytes {
		t.Errorf("event estimate = %d, want > fixed overhead", got)
	}
	if got := EstimateMsgBytes(Msg{Kind: Sub}); got != msgOverheadBytes+subEstimateBytes {
		t.Errorf("sub estimate = %d", got)
	}
	if got := EstimateMsgBytes(Msg{Kind: Unsub}); got != msgOverheadBytes {
		t.Errorf("unsub estimate = %d", got)
	}
}

// BenchmarkQueueSteadyState shows the ring reuses its backing array: once
// warm, a Push/Pop cycle allocates nothing (the old slice-based queue lost
// capacity on every Pop and reallocated continually under steady load).
func BenchmarkQueueSteadyState(b *testing.B) {
	q := NewFlowQueue[int](func(int) int { return 1 }, 1<<20, 1<<19)
	for i := 0; i < 16; i++ {
		q.Push(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	q := NewFlowQueue[int](func(int) int { return 1 }, 1<<20, 1<<19)
	for i := 0; i < 16; i++ {
		q.Push(i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		q.Push(1)
		q.Pop()
	})
	if allocs != 0 {
		t.Errorf("steady-state Push/Pop allocates %.1f per op, want 0", allocs)
	}
}
