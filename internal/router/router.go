// Package router is the transport-agnostic core of a content-routed broker:
// the SIENA-style routing state machine the overlay simulation and the TCP
// federation both run, specialised to acyclic (tree) broker topologies.
//
//   - A subscription registered at a broker is flooded through the tree.
//     Every broker installs it in its local non-canonical engine and
//     remembers the link it arrived on — the next hop toward the
//     subscriber.
//   - An event is matched at every broker it visits. Local subscribers are
//     notified; for remote matches the event is forwarded once per distinct
//     next-hop link (never back where it came from). On a tree this
//     delivers every matching subscription exactly once while filtering
//     prunes all branches without subscribers.
//
// With Config.Cover the flood is pruned by subscription covering
// (internal/cover): a broker does not forward a subscription over a link
// that already carries one covering it. The suppressed subscription is
// remembered against its coverer; when the coverer is unsubscribed the
// broker re-floods the filters it was shadowing over that link — each
// re-checked against the remaining forwarded set, so a second coverer
// re-suppresses instead of re-flooding. The re-floods are sent BEFORE the
// retraction so the far side never carries neither filter.
//
// A Router is owned by a single broker goroutine: all Handle* methods must
// be called from that goroutine. Outbound messages leave through the
// Transport, whose Send must never block — implementations queue (see
// Queue) so that a broker goroutine can never be wedged by a congested
// peer. Counters are atomic and may be read from any goroutine.
package router

import (
	"fmt"
	"sort"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/cover"
	"noncanon/internal/event"
	"noncanon/internal/matcher"
	"noncanon/internal/obs"
)

// MaxHops bounds event forwarding as a safety net; tree routing never
// reaches it. Drops are counted in Counts.HopDropped rather than silent.
const MaxHops = 255

// Handler consumes events delivered to a local subscriber. Handlers run on
// the owning broker's goroutine and must not block.
type Handler func(ev event.Event)

// Kind tags a routing message.
type Kind uint8

// Routing message kinds.
const (
	// Sub floods a subscription: SubID + Expr.
	Sub Kind = iota + 1
	// Unsub retracts a subscription network-wide: SubID.
	Unsub
	// Event forwards a publication: Ev + Hops.
	Event
)

// Trace identifies a sampled event for cross-broker latency tracing: a
// non-zero ID plus the origin broker's publish timestamp (UnixNano). The
// zero Trace means "not sampled" and costs nothing anywhere.
type Trace struct {
	ID          uint64
	OriginNanos int64
}

// Msg is one broker-to-broker routing message.
type Msg struct {
	Kind  Kind
	SubID uint64
	Expr  boolexpr.Expr
	Ev    event.Event
	Hops  int
	// Trace rides along on Event messages; the router preserves it across
	// forwards so every hop of a sampled event can be timed.
	Trace Trace
}

// Transport carries routing messages toward a neighbouring broker. Send is
// invoked on the broker goroutine and MUST NOT block: queue the message
// (Queue is the intended buffer) and let a writer goroutine drain it.
type Transport interface {
	Send(link int, m Msg)
}

// Config assembles a router.
type Config struct {
	// Links is the initial link count; AddLink grows it.
	Links int
	// Cover enables covering-based flood pruning.
	Cover bool
	// Engine is the broker's local matching engine; the router installs
	// every known subscription into it.
	Engine *core.Engine
	// Transport carries outbound messages.
	Transport Transport
	// Metrics is the registry the router's counters live in; nil gets a
	// private registry (Counts still works, nothing is exported). Routers
	// sharing a registry share instruments — the overlay exploits this to
	// read network totals in one snapshot.
	Metrics *obs.Registry
}

// Counts is a snapshot of router activity.
type Counts struct {
	// Forwarded counts event copies sent over links.
	Forwarded uint64
	// Delivered counts local handler invocations.
	Delivered uint64
	// SubMsgs counts subscription-propagation link messages (floods and
	// retractions).
	SubMsgs uint64
	// CoverSuppressed counts subscription forwards pruned because the link
	// already carried a covering subscription (Config.Cover only).
	CoverSuppressed uint64
	// HopDropped counts events discarded at the MaxHops safety net — on a
	// tree this staying zero is a routing invariant.
	HopDropped uint64
	// CoverCacheHits and CoverCacheMisses count lookups in the memoized
	// covering test (Config.Cover only): hits skipped a pairwise Covers
	// proof, misses ran one and cached it.
	CoverCacheHits   uint64
	CoverCacheMisses uint64
}

// route is the broker's view of one overlay subscription.
type route struct {
	subID    uint64
	engineID matcher.SubID
	expr     boolexpr.Expr // kept for covering re-floods and link syncs
	key      string        // cover.Key(expr), the memoization key (Cover only)
	handler  Handler       // non-nil only at the subscriber's home broker
	nextHop  int           // link index toward the subscriber; -1 when local
}

// fwdEntry is one subscription actually forwarded over a link, with its
// canonical key alongside so covering checks against it can hit the cache.
type fwdEntry struct {
	expr boolexpr.Expr
	key  string
}

// coverPair keys one memoized Covers(a, b) verdict by the operands'
// canonical keys. cover.Key equality implies identical matched-event
// sets, so a cached true transfers soundly to any expression with the
// same key; a cached false merely forgoes pruning, which covering is
// always allowed to do.
type coverPair struct {
	a, b string
}

// coverCacheMax bounds the memo table; churn past it clears and restarts
// rather than growing without bound (the next storm re-warms it).
const coverCacheMax = 1 << 16

// Router is the per-broker routing state machine.
type Router struct {
	eng   *core.Engine
	tr    Transport
	cover bool

	routes   map[uint64]*route
	byEngine map[matcher.SubID]*route

	// links[i] is false once RemoveLink(i) declared the link dead; floods
	// and forwards skip dead links but indexes stay stable.
	links []bool

	// Covering state (Config.Cover only), indexed by link. fwd[i] holds
	// the subscriptions this broker actually sent over link i; coveredBy[i]
	// maps a suppressed subscription to the forwarded one that shadows it,
	// and coverees[i] is the reverse index consulted on unsubscribe.
	fwd       []map[uint64]fwdEntry
	coveredBy []map[uint64]uint64
	coverees  []map[uint64]map[uint64]struct{}

	// coverCache memoizes pairwise Covers proofs across links and floods
	// (broker-goroutine-owned, like the rest of the routing state).
	coverCache map[coverPair]bool

	forwarded     *obs.Counter
	delivered     *obs.Counter
	subMsgs       *obs.Counter
	coverSuppress *obs.Counter
	hopDropped    *obs.Counter
	coverHits     *obs.Counter
	coverMisses   *obs.Counter
}

// New builds a router over the given engine and transport.
func New(cfg Config) *Router {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{
		eng:      cfg.Engine,
		tr:       cfg.Transport,
		cover:    cfg.Cover,
		routes:   make(map[uint64]*route),
		byEngine: make(map[matcher.SubID]*route),
	}
	if cfg.Cover {
		r.coverCache = make(map[coverPair]bool)
	}
	// Cause-counters before effect-counters: Registry.Snapshot reads in
	// reverse registration order, so registering subMsgs → … → forwarded
	// means a snapshot reads forwarded (effect) before the counters whose
	// activity produced it, and totals reconcile mid-storm. Callers that
	// register their own cause (overlay's published) must do so before
	// constructing routers.
	r.subMsgs = reg.Counter("router_sub_msgs_total")
	r.coverMisses = reg.Counter("router_cover_cache_misses_total")
	r.coverHits = reg.Counter("router_cover_cache_hits_total")
	r.coverSuppress = reg.Counter("router_cover_suppressed_total")
	r.hopDropped = reg.Counter("router_hop_dropped_total")
	r.delivered = reg.Counter("router_delivered_total")
	r.forwarded = reg.Counter("router_forwarded_total")
	for i := 0; i < cfg.Links; i++ {
		r.AddLink()
	}
	return r
}

// AddLink registers a new link and returns its index. The caller must be
// ready to receive Transport.Send for the index before calling SyncLink.
func (r *Router) AddLink() int {
	i := len(r.links)
	r.links = append(r.links, true)
	if r.cover {
		r.fwd = append(r.fwd, make(map[uint64]fwdEntry))
		r.coveredBy = append(r.coveredBy, make(map[uint64]uint64))
		r.coverees = append(r.coverees, make(map[uint64]map[uint64]struct{}))
	}
	return i
}

// SyncLink floods every route this broker knows over a freshly added link,
// covering-pruned like any other flood. Brokers that join an existing
// federation call it once the link's writer is running, so subscriptions
// registered before the link existed still attract events across it.
func (r *Router) SyncLink(link int) {
	ids := make([]uint64, 0, len(r.routes))
	for id := range r.routes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		rt := r.routes[id]
		if rt.nextHop == link {
			continue // defensive; a fresh link cannot be a next hop yet
		}
		r.sendSubOverLink(link, id, rt.expr, rt.key)
	}
}

// RemoveLink declares a link dead: its covering bookkeeping is dropped and
// every route learned through it is retracted locally and from the rest of
// the network, exactly as if each had been unsubscribed from that side.
func (r *Router) RemoveLink(link int) {
	if link < 0 || link >= len(r.links) || !r.links[link] {
		return
	}
	r.links[link] = false
	if r.cover {
		r.fwd[link] = make(map[uint64]fwdEntry)
		r.coveredBy[link] = make(map[uint64]uint64)
		r.coverees[link] = make(map[uint64]map[uint64]struct{})
	}
	var dead []uint64
	for id, rt := range r.routes {
		if rt.nextHop == link {
			dead = append(dead, id)
		}
	}
	sort.Slice(dead, func(a, b int) bool { return dead[a] < dead[b] })
	for _, id := range dead {
		r.HandleUnsubscribe(id, link)
	}
}

// NumLinks reports the registered link count (dead links included).
func (r *Router) NumLinks() int { return len(r.links) }

// NumRoutes reports how many subscriptions this broker knows.
func (r *Router) NumRoutes() int { return len(r.routes) }

// HasRoute reports whether a subscription is installed here.
func (r *Router) HasRoute(subID uint64) bool {
	_, ok := r.routes[subID]
	return ok
}

// CoverState reports the covering bookkeeping sizes for one link; tests use
// it to assert churn leaves no residue.
func (r *Router) CoverState(link int) (fwd, covered, coverers int) {
	if !r.cover {
		return 0, 0, 0
	}
	return len(r.fwd[link]), len(r.coveredBy[link]), len(r.coverees[link])
}

// Counts snapshots the activity counters; safe from any goroutine. With a
// shared Config.Metrics registry the counters are shared too, so Counts
// then reports totals across every router on the registry.
func (r *Router) Counts() Counts {
	return Counts{
		Forwarded:        r.forwarded.Value(),
		Delivered:        r.delivered.Value(),
		SubMsgs:          r.subMsgs.Value(),
		CoverSuppressed:  r.coverSuppress.Value(),
		HopDropped:       r.hopDropped.Value(),
		CoverCacheHits:   r.coverHits.Value(),
		CoverCacheMisses: r.coverMisses.Value(),
	}
}

// HandleSubscribe installs a subscription arriving on link `from` (-1 for
// the broker's own API) and floods it to every other live link. It returns
// installed=false for a duplicate subscription ID — impossible on a tree,
// so callers should surface it as a topology anomaly — and a non-nil error
// when the engine rejects the filter (the route is then not installed and
// nothing is flooded).
func (r *Router) HandleSubscribe(subID uint64, expr boolexpr.Expr, h Handler, from int) (installed bool, err error) {
	if _, dup := r.routes[subID]; dup {
		return false, nil
	}
	engineID, err := r.eng.Subscribe(expr)
	if err != nil {
		return false, fmt.Errorf("router: install subscription %d: %w", subID, err)
	}
	rt := &route{subID: subID, engineID: engineID, expr: expr, nextHop: from}
	if r.cover {
		rt.key = cover.Key(expr) // once per route, not once per pairwise proof
	}
	if from == -1 {
		rt.handler = h
	}
	r.routes[subID] = rt
	r.byEngine[engineID] = rt
	for i := range r.links {
		if i == from || !r.links[i] {
			continue
		}
		r.sendSubOverLink(i, subID, expr, rt.key)
	}
	return true, nil
}

// coversCached answers cover.Covers(a, b) through the key-pair memo. The
// proof is recomputed at most once per distinct (Key(a), Key(b)) pair for
// the cache's lifetime — SyncLink and covering re-floods stop re-proving
// the same pairs once per link.
func (r *Router) coversCached(aKey string, a boolexpr.Expr, bKey string, b boolexpr.Expr) bool {
	p := coverPair{aKey, bKey}
	if v, ok := r.coverCache[p]; ok {
		r.coverHits.Inc()
		return v
	}
	if len(r.coverCache) >= coverCacheMax {
		r.coverCache = make(map[coverPair]bool)
	}
	r.coverMisses.Inc()
	v := cover.Covers(a, b)
	r.coverCache[p] = v
	return v
}

// sendSubOverLink forwards a subscription over one link unless a
// subscription already forwarded there covers it: the far side then
// already attracts a superset of the matching events toward this broker, so
// routing stays exact and the flood is pruned. Suppressions are recorded
// so an unsubscribe of the coverer can re-flood them.
func (r *Router) sendSubOverLink(i int, subID uint64, expr boolexpr.Expr, key string) {
	if !r.cover {
		r.subMsgs.Inc()
		r.tr.Send(i, Msg{Kind: Sub, SubID: subID, Expr: expr})
		return
	}
	for tid, te := range r.fwd[i] {
		if r.coversCached(te.key, te.expr, key, expr) {
			r.coveredBy[i][subID] = tid
			set := r.coverees[i][tid]
			if set == nil {
				set = make(map[uint64]struct{})
				r.coverees[i][tid] = set
			}
			set[subID] = struct{}{}
			r.coverSuppress.Inc()
			return
		}
	}
	r.fwd[i][subID] = fwdEntry{expr: expr, key: key}
	r.subMsgs.Inc()
	r.tr.Send(i, Msg{Kind: Sub, SubID: subID, Expr: expr})
}

// HandleUnsubscribe removes a subscription arriving on link `from` (-1 for
// the broker's own API) and propagates the retraction. Unknown IDs are
// ignored (the retraction may have overtaken the flood on another branch).
func (r *Router) HandleUnsubscribe(subID uint64, from int) bool {
	rt, ok := r.routes[subID]
	if !ok {
		return false
	}
	delete(r.routes, subID)
	delete(r.byEngine, rt.engineID)
	if err := r.eng.Unsubscribe(rt.engineID); err != nil {
		// The engine accepted this ID at install time; failure here means
		// the route tables and engine disagree — corrupted state worth
		// stopping for even in production brokers.
		panic(fmt.Sprintf("router: remove subscription %d: %v", subID, err))
	}
	for i := range r.links {
		if i == from || !r.links[i] {
			continue
		}
		r.unsubOverLink(i, subID)
	}
	return true
}

// unsubOverLink retracts a subscription from one link. Only subscriptions
// actually forwarded there need a link message; a suppressed one just
// clears its shadow bookkeeping. Retracting a forwarded subscription
// re-floods everything it was covering (in deterministic order), each
// re-checked against the remaining forwarded set so another coverer can
// re-suppress it.
//
// Ordering matters: the re-floods are sent BEFORE the retraction. The far
// side then briefly carries both the coverer and the re-flooded filters —
// which routes a single event copy anyway (next-hop links are
// deduplicated) — whereas the opposite order would open a window carrying
// neither, dropping events for stable subscribers.
func (r *Router) unsubOverLink(i int, subID uint64) {
	if !r.cover {
		r.subMsgs.Inc()
		r.tr.Send(i, Msg{Kind: Unsub, SubID: subID})
		return
	}
	if _, sent := r.fwd[i][subID]; !sent {
		if cid, covered := r.coveredBy[i][subID]; covered {
			delete(r.coveredBy[i], subID)
			if set := r.coverees[i][cid]; set != nil {
				delete(set, subID)
				if len(set) == 0 {
					delete(r.coverees[i], cid)
				}
			}
		}
		return
	}
	delete(r.fwd[i], subID) // before re-flooding: no self-covering
	if shadowed := r.coverees[i][subID]; len(shadowed) > 0 {
		delete(r.coverees[i], subID)
		ids := make([]uint64, 0, len(shadowed))
		for sid := range shadowed {
			ids = append(ids, sid)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, sid := range ids {
			delete(r.coveredBy[i], sid)
			if rr, live := r.routes[sid]; live {
				r.sendSubOverLink(i, sid, rr.expr, rr.key)
			}
		}
	} else {
		delete(r.coverees[i], subID)
	}
	r.subMsgs.Inc()
	r.tr.Send(i, Msg{Kind: Unsub, SubID: subID})
}

// HandleEvent matches an event arriving on link `from` (-1 for the
// broker's own API), delivers to local subscribers and forwards one copy
// per distinct next-hop link.
func (r *Router) HandleEvent(ev event.Event, hops, from int) {
	r.HandleEventMsg(Msg{Kind: Event, Ev: ev, Hops: hops}, from)
}

// HandleEventMsg is HandleEvent taking the full routing message, so
// per-message extras — today the trace — survive the forward instead of
// being flattened away at every hop.
func (r *Router) HandleEventMsg(m Msg, from int) {
	ev, hops := m.Ev, m.Hops
	if hops >= MaxHops {
		r.hopDropped.Inc()
		return
	}
	matched := r.eng.Match(ev)
	// Deliver locally; collect distinct next-hop links.
	var hopSet uint64 // bitset over link indexes; brokers here have < 64 links
	var bigHops map[int]bool
	for _, engineID := range matched {
		rt, ok := r.byEngine[engineID]
		if !ok {
			continue
		}
		if rt.nextHop == -1 {
			rt.handler(ev)
			r.delivered.Inc()
			continue
		}
		if rt.nextHop == from {
			continue // never bounce an event back (cannot happen on a tree)
		}
		if rt.nextHop < 64 {
			hopSet |= 1 << uint(rt.nextHop)
		} else {
			if bigHops == nil {
				bigHops = make(map[int]bool)
			}
			bigHops[rt.nextHop] = true
		}
	}
	fwd := m // keep Trace (and any future per-message extras) intact
	fwd.Kind = Event
	fwd.Hops = hops + 1
	for i := range r.links {
		use := false
		if i < 64 {
			use = hopSet&(1<<uint(i)) != 0
		} else {
			use = bigHops[i]
		}
		if !use || !r.links[i] {
			continue
		}
		r.forwarded.Inc()
		r.tr.Send(i, fwd)
	}
}
