package sublang

import "testing"

func BenchmarkParseSimple(b *testing.B) {
	const in = `price > 100`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseFig1(b *testing.B) {
	const in = `(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	const in = `not (kind = "alert" and (sev >= 3 or source prefix "core-")) ` +
		`or (exists override and region != "eu" and load <= 0.75)`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(in); err != nil {
			b.Fatal(err)
		}
	}
}
