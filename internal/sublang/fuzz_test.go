package sublang

import (
	"testing"

	"noncanon/internal/boolexpr"
)

// FuzzParse exercises the lexer and parser with arbitrary input. For any
// input the parser must terminate without panicking; for input it
// accepts, the printed form must re-parse to a structurally equal
// expression (the String contract the round-trip property tests pin for
// generated expressions — the fuzzer extends it to adversarial ones).
//
// Seeds beyond the inline f.Add corpus are checked in under
// testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		``,
		`a = 1`,
		`(price < 20 or price > 90) and sym = "ACME"`,
		`not (a = 1 or b = 2) and exists c`,
		`s prefix "AB" or s suffix "YZ" or s contains "MID"`,
		`a >= 1.5 and b <= -2 and c != true`,
		`not not not a = 1`,
		`a = "unterminated`,
		`((((a = 1))))`,
		`a = 1 and`,
		`AND OR NOT exists`,
		"a = 1 \x00 and b = 2",
		`ключ = "значение"`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		expr, err := Parse(input)
		if err != nil {
			if expr != nil {
				t.Fatalf("Parse(%q) returned both an expression and %v", input, err)
			}
			return
		}
		if expr == nil {
			t.Fatalf("Parse(%q) returned nil expression without error", input)
		}
		text := expr.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of printed form failed\n  input: %q\n  printed: %q\n  error: %v",
				input, text, err)
		}
		if !boolexpr.Equal(expr, back) {
			t.Fatalf("print/parse round trip differs\n  input: %q\n  printed: %q\n  back: %q",
				input, text, back)
		}
	})
}
