package sublang

import (
	"math/rand"
	"strings"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

func TestParseSimplePredicates(t *testing.T) {
	tests := []struct {
		in   string
		want boolexpr.Expr
	}{
		{`a = 1`, boolexpr.Pred("a", predicate.Eq, 1)},
		{`a == 1`, boolexpr.Pred("a", predicate.Eq, 1)},
		{`a != 1`, boolexpr.Pred("a", predicate.Ne, 1)},
		{`a < 1`, boolexpr.Pred("a", predicate.Lt, 1)},
		{`a <= 1`, boolexpr.Pred("a", predicate.Le, 1)},
		{`a > 1`, boolexpr.Pred("a", predicate.Gt, 1)},
		{`a >= 1`, boolexpr.Pred("a", predicate.Ge, 1)},
		{`a = -3`, boolexpr.Pred("a", predicate.Eq, -3)},
		{`a = 2.5`, boolexpr.Pred("a", predicate.Eq, 2.5)},
		{`a = 1e3`, boolexpr.Pred("a", predicate.Eq, 1000.0)},
		{`a = -1.5e-2`, boolexpr.Pred("a", predicate.Eq, -0.015)},
		{`a = "x"`, boolexpr.Pred("a", predicate.Eq, "x")},
		{`a = true`, boolexpr.Pred("a", predicate.Eq, true)},
		{`a = false`, boolexpr.Pred("a", predicate.Eq, false)},
		{`exists a`, boolexpr.Pred("a", predicate.Exists, nil)},
		{`s prefix "AB"`, boolexpr.Pred("s", predicate.Prefix, "AB")},
		{`s suffix "AB"`, boolexpr.Pred("s", predicate.Suffix, "AB")},
		{`s contains "AB"`, boolexpr.Pred("s", predicate.Contains, "AB")},
		{`attr_1.x-y = 1`, boolexpr.Pred("attr_1.x-y", predicate.Eq, 1)},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if !boolexpr.Equal(got, tt.want) {
			t.Errorf("Parse(%q) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// and binds tighter than or; not tighter than and.
	e := MustParse(`a = 1 or b = 2 and c = 3`)
	or, ok := e.(boolexpr.Or)
	if !ok || len(or.Xs) != 2 {
		t.Fatalf("top must be Or of 2: %s", e)
	}
	if _, ok := or.Xs[1].(boolexpr.And); !ok {
		t.Fatalf("right operand must be And: %s", e)
	}

	e2 := MustParse(`not a = 1 and b = 2`)
	and, ok := e2.(boolexpr.And)
	if !ok || len(and.Xs) != 2 {
		t.Fatalf("top must be And: %s", e2)
	}
	if _, ok := and.Xs[0].(boolexpr.Not); !ok {
		t.Fatalf("left operand must be Not: %s", e2)
	}
}

func TestParseParens(t *testing.T) {
	e := MustParse(`(a = 1 or b = 2) and c = 3`)
	and, ok := e.(boolexpr.And)
	if !ok || len(and.Xs) != 2 {
		t.Fatalf("top must be And: %s", e)
	}
	if _, ok := and.Xs[0].(boolexpr.Or); !ok {
		t.Fatalf("left operand must be Or: %s", e)
	}
}

func TestParseFig1(t *testing.T) {
	// The paper's Fig. 1 subscription in textual form.
	e := MustParse(`(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)`)
	ev := event.New().Set("a", 3).Set("c", 30)
	if !e.Eval(ev) {
		t.Error("fig1 should match a=3,c=30")
	}
	if e.Eval(event.New().Set("a", 7).Set("c", 30)) {
		t.Error("fig1 should not match a=7")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	e := MustParse(`a = 1 AND b = 2 Or NOT c = 3`)
	if _, ok := e.(boolexpr.Or); !ok {
		t.Fatalf("mixed-case keywords should parse: %s", e)
	}
}

func TestParseStringEscapes(t *testing.T) {
	e := MustParse(`a = "x\"y\\z\n\t\r"`)
	leaf := e.(boolexpr.Leaf)
	if got, want := leaf.Pred.Operand.Str(), "x\"y\\z\n\t\r"; got != want {
		t.Errorf("escaped string = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		in      string
		wantSub string
	}{
		{``, "empty subscription"},
		{`   `, "empty subscription"},
		{`a`, "expected comparison operator"},
		{`a =`, "expected literal"},
		{`= 1`, "expected predicate"},
		{`a = 1 and`, "expected predicate"},
		{`a = 1 or or b = 2`, "expected predicate"},
		{`(a = 1`, "expected ')'"},
		{`a = 1)`, "unexpected ')'"},
		{`a = 1 b = 2`, "unexpected identifier"},
		{`a ! 1`, "expected '='"},
		{`a = "unterminated`, "unterminated string"},
		{`a = "bad \q escape"`, "unknown escape"},
		{`a = 1.`, "expected digit after '.'"},
		{`a = 1e`, "expected digit in exponent"},
		{`a = -`, "expected digit after '-'"},
		{`a = #`, "unexpected character"},
		{`exists 5`, "expected attribute"},
		{`s prefix 5`, "expected string"},
		{`not`, "expected predicate"},
	}
	for _, tt := range tests {
		_, err := Parse(tt.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tt.in, tt.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tt.in, err, tt.wantSub)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse(`a = 1 and b @ 2`)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T, want *ParseError", err)
	}
	if pe.Pos != 12 {
		t.Errorf("error Pos = %d, want 12", pe.Pos)
	}
}

func TestMaxPredicatesLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i <= MaxPredicates; i++ {
		if i > 0 {
			b.WriteString(" and ")
		}
		b.WriteString("a = 1")
	}
	if _, err := Parse(b.String()); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized subscription error = %v", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input should panic")
		}
	}()
	MustParse(`a =`)
}

func TestPrintParseRoundTripProperty(t *testing.T) {
	// parse(e.String()) must be structurally equal to e for random
	// expressions: the printer and parser agree on precedence and syntax.
	rng := rand.New(rand.NewSource(31))
	cfg := boolexpr.RandomConfig{MaxDepth: 5, MaxFanout: 4, AllowNot: true}
	for i := 0; i < 500; i++ {
		e := boolexpr.RandomExpr(rng, cfg)
		text := e.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("iter %d: Parse(%q): %v", i, text, err)
		}
		if !boolexpr.Equal(e, back) {
			t.Fatalf("iter %d: round trip differs\n  orig: %s\n  back: %s", i, e, back)
		}
	}
}

func TestParseIdempotentPrint(t *testing.T) {
	// Printing a parsed expression and re-parsing yields a fixed point.
	inputs := []string{
		`a = 1 and (b = 2 or c = 3)`,
		`not (a = 1 or b = 2) and exists c`,
		`s prefix "AB" or s suffix "YZ" or s contains "MID"`,
	}
	for _, in := range inputs {
		e1 := MustParse(in)
		e2 := MustParse(e1.String())
		if !boolexpr.Equal(e1, e2) {
			t.Errorf("fixed point failed for %q:\n  e1: %s\n  e2: %s", in, e1, e2)
		}
	}
}
