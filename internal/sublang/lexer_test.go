package sublang

import (
	"strings"
	"testing"
)

func TestTokenKindStrings(t *testing.T) {
	wants := map[tokenKind]string{
		tokEOF:      "end of input",
		tokIdent:    "identifier",
		tokNumber:   "number",
		tokString:   "string",
		tokOp:       "operator",
		tokLParen:   "'('",
		tokRParen:   "')'",
		tokAnd:      "'and'",
		tokOr:       "'or'",
		tokNot:      "'not'",
		tokExists:   "'exists'",
		tokPrefix:   "'prefix'",
		tokSuffix:   "'suffix'",
		tokContains: "'contains'",
		tokTrue:     "'true'",
		tokFalse:    "'false'",
	}
	for k, want := range wants {
		if got := k.String(); got != want {
			t.Errorf("tokenKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := tokenKind(200).String(); got != "unknown token" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestLexerEscapedSlash(t *testing.T) {
	e := MustParse(`a = "x\/y"`)
	if !strings.Contains(e.String(), "x/y") {
		t.Errorf("escaped slash: %s", e)
	}
}

func TestLexerNumberForms(t *testing.T) {
	// Exponent with explicit plus sign.
	e := MustParse(`a = 1e+3`)
	if got := e.String(); got != "a = 1000" {
		t.Errorf("1e+3 parsed as %s", got)
	}
	// Huge integer falls back to float.
	if _, err := Parse(`a = 99999999999999999999999999`); err != nil {
		t.Errorf("big number should parse as float: %v", err)
	}
}

func TestLexerUnicodeIdentifiers(t *testing.T) {
	e := MustParse(`prix_élevé > 10`)
	leaves := e.String()
	if !strings.Contains(leaves, "prix_élevé") {
		t.Errorf("unicode identifier mangled: %s", leaves)
	}
	// Unicode garbage outside identifiers errors cleanly.
	if _, err := Parse("a = 1 ☃"); err == nil {
		t.Error("snowman accepted")
	}
}
