package sublang

import (
	"fmt"
	"strconv"
	"strings"

	"noncanon/internal/boolexpr"
	"noncanon/internal/predicate"
	"noncanon/internal/value"
)

// ParseError describes a syntax error with its byte position in the input.
type ParseError struct {
	Pos   int
	Msg   string
	Input string
}

// Error renders the message with a caret excerpt of the offending input.
func (e *ParseError) Error() string {
	excerpt := e.Input
	const window = 30
	lo := e.Pos - window
	if lo < 0 {
		lo = 0
	}
	hi := e.Pos + window
	if hi > len(excerpt) {
		hi = len(excerpt)
	}
	return fmt.Sprintf("sublang: %s at offset %d near %q", e.Msg, e.Pos, excerpt[lo:hi])
}

// MaxPredicates bounds the number of predicate leaves in one subscription so
// that a hostile input cannot exhaust broker memory. It matches the
// counting-baseline assumption of at most 256 predicates per subscription
// (paper §3.3).
const MaxPredicates = 256

type parser struct {
	lx    *lexer
	tok   token
	npred int
}

// Parse parses a subscription expression.
func Parse(input string) (boolexpr.Expr, error) {
	if strings.TrimSpace(input) == "" {
		return nil, &ParseError{Pos: 0, Msg: "empty subscription", Input: input}
	}
	p := &parser{lx: &lexer{src: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok.kind)
	}
	return e, nil
}

// MustParse parses input and panics on error. For tests and examples with
// literal subscriptions only.
func MustParse(input string) boolexpr.Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) advance() error {
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...), Input: p.lx.src}
}

func (p *parser) parseOr() (boolexpr.Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	xs := []boolexpr.Expr{x}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		xs = append(xs, y)
	}
	return boolexpr.NewOr(xs...), nil
}

func (p *parser) parseAnd() (boolexpr.Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	xs := []boolexpr.Expr{x}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		xs = append(xs, y)
	}
	return boolexpr.NewAnd(xs...), nil
}

func (p *parser) parseUnary() (boolexpr.Expr, error) {
	switch p.tok.kind {
	case tokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return boolexpr.NewNot(x), nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', got %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return x, nil
	case tokExists:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected attribute after 'exists', got %s", p.tok.kind)
		}
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.leaf(predicate.Make(attr, predicate.Exists, value.Value{}))
	case tokIdent:
		return p.parsePredicate()
	default:
		return nil, p.errorf("expected predicate, 'not' or '(', got %s", p.tok.kind)
	}
}

func (p *parser) parsePredicate() (boolexpr.Expr, error) {
	attr := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tokOp:
		op, err := relOp(p.tok.text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		operand, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return p.leaf(predicate.Make(attr, op, operand))
	case tokPrefix, tokSuffix, tokContains:
		op := map[tokenKind]predicate.Op{
			tokPrefix:   predicate.Prefix,
			tokSuffix:   predicate.Suffix,
			tokContains: predicate.Contains,
		}[p.tok.kind]
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errorf("expected string after '%s', got %s", op, p.tok.kind)
		}
		operand := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.leaf(predicate.New(attr, op, operand))
	default:
		return nil, p.errorf("expected comparison operator after %q, got %s", attr, p.tok.kind)
	}
}

func (p *parser) leaf(pred predicate.P) (boolexpr.Expr, error) {
	p.npred++
	if p.npred > MaxPredicates {
		return nil, p.errorf("subscription exceeds %d predicates", MaxPredicates)
	}
	return boolexpr.Leaf{Pred: pred}, nil
}

func relOp(text string) (predicate.Op, error) {
	switch text {
	case "=":
		return predicate.Eq, nil
	case "!=":
		return predicate.Ne, nil
	case "<":
		return predicate.Lt, nil
	case "<=":
		return predicate.Le, nil
	case ">":
		return predicate.Gt, nil
	case ">=":
		return predicate.Ge, nil
	default:
		return 0, fmt.Errorf("unknown operator %q", text)
	}
}

func (p *parser) parseLiteral() (value.Value, error) {
	switch p.tok.kind {
	case tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return value.Value{}, err
		}
		if !strings.ContainsAny(text, ".eE") {
			if n, err := strconv.ParseInt(text, 10, 64); err == nil {
				return value.OfInt(n), nil
			}
			// Fall through to float for out-of-range integers.
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value.Value{}, p.errorf("bad number %q", text)
		}
		return value.OfFloat(f), nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return value.Value{}, err
		}
		return value.OfString(s), nil
	case tokTrue, tokFalse:
		b := p.tok.kind == tokTrue
		if err := p.advance(); err != nil {
			return value.Value{}, err
		}
		return value.OfBool(b), nil
	default:
		return value.Value{}, p.errorf("expected literal, got %s", p.tok.kind)
	}
}
