// Package sublang parses the textual subscription language into boolexpr
// trees.
//
// Grammar (case-insensitive keywords):
//
//	expr      := orExpr
//	orExpr    := andExpr { "or" andExpr }
//	andExpr   := unary { "and" unary }
//	unary     := "not" unary | "(" expr ")" | pred
//	pred      := "exists" IDENT
//	           | IDENT relop literal
//	           | IDENT strop STRING
//	relop     := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
//	strop     := "prefix" | "suffix" | "contains"
//	literal   := NUMBER | STRING | "true" | "false"
//	IDENT     := letter { letter | digit | "_" | "." | "-" } (not a keyword)
//	STRING    := '"' ... '"' (Go escaping)
//	NUMBER    := optional "-", digits, optional fraction/exponent
//
// Example: (price < 20 or price > 90) and sym = "ACME" and not halted = true
package sublang

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // relational operator
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
	tokExists
	tokPrefix
	tokSuffix
	tokContains
	tokTrue
	tokFalse
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokOp:
		return "operator"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokAnd:
		return "'and'"
	case tokOr:
		return "'or'"
	case tokNot:
		return "'not'"
	case tokExists:
		return "'exists'"
	case tokPrefix:
		return "'prefix'"
	case tokSuffix:
		return "'suffix'"
	case tokContains:
		return "'contains'"
	case tokTrue:
		return "'true'"
	case tokFalse:
		return "'false'"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in input
}

var keywords = map[string]tokenKind{
	"and":      tokAnd,
	"or":       tokOr,
	"not":      tokNot,
	"exists":   tokExists,
	"prefix":   tokPrefix,
	"suffix":   tokSuffix,
	"contains": tokContains,
	"true":     tokTrue,
	"false":    tokFalse,
}

type lexer struct {
	src string
	pos int
}

func (lx *lexer) errorf(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...), Input: lx.src}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c == '(':
		lx.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '"':
		return lx.lexString()
	case c == '=' || c == '<' || c == '>' || c == '!':
		return lx.lexOp()
	case c == '-' || (c >= '0' && c <= '9'):
		return lx.lexNumber()
	default:
		r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if unicode.IsLetter(r) || r == '_' {
			return lx.lexIdent()
		}
		return token{}, lx.errorf(start, "unexpected character %q", r)
	}
}

func (lx *lexer) lexOp() (token, error) {
	start := lx.pos
	c := lx.src[lx.pos]
	lx.pos++
	two := func(second byte) bool {
		if lx.pos < len(lx.src) && lx.src[lx.pos] == second {
			lx.pos++
			return true
		}
		return false
	}
	switch c {
	case '=':
		two('=') // accept both = and ==
		return token{kind: tokOp, text: "=", pos: start}, nil
	case '!':
		if !two('=') {
			return token{}, lx.errorf(start, "expected '=' after '!'")
		}
		return token{kind: tokOp, text: "!=", pos: start}, nil
	case '<':
		if two('=') {
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil
	case '>':
		if two('=') {
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		return token{kind: tokOp, text: ">", pos: start}, nil
	}
	return token{}, lx.errorf(start, "unexpected operator start %q", c)
}

func (lx *lexer) lexString() (token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case '"':
			lx.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(start, "unterminated string")
			}
			esc := lx.src[lx.pos]
			switch esc {
			case '"', '\\', '/':
				b.WriteByte(esc)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'a':
				b.WriteByte('\a')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'v':
				b.WriteByte('\v')
			case 'x', 'u', 'U':
				// Hex escapes as emitted by strconv.Quote, which prints
				// string operands: \xHH is a raw byte, \uHHHH and
				// \UHHHHHHHH are runes. Without these, printed
				// subscriptions containing non-printable or non-UTF-8
				// string operands would not re-parse.
				n := 2
				if esc == 'u' {
					n = 4
				} else if esc == 'U' {
					n = 8
				}
				v, err := lx.hexDigits(n)
				if err != nil {
					return token{}, err
				}
				if esc == 'x' {
					b.WriteByte(byte(v))
				} else {
					if v > unicode.MaxRune || (v >= 0xD800 && v <= 0xDFFF) {
						return token{}, lx.errorf(lx.pos, "escape \\%c is not a valid rune", esc)
					}
					b.WriteRune(rune(v))
				}
			default:
				return token{}, lx.errorf(lx.pos, "unknown escape \\%c", esc)
			}
			lx.pos++
		default:
			b.WriteByte(c)
			lx.pos++
		}
	}
	return token{}, lx.errorf(start, "unterminated string")
}

// hexDigits consumes n hex digits following the current escape letter and
// returns their value, leaving lx.pos on the last digit.
func (lx *lexer) hexDigits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		lx.pos++
		if lx.pos >= len(lx.src) {
			return 0, lx.errorf(lx.pos, "truncated hex escape")
		}
		c := lx.src[lx.pos]
		var d byte
		switch {
		case c >= '0' && c <= '9':
			d = c - '0'
		case c >= 'a' && c <= 'f':
			d = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			d = c - 'A' + 10
		default:
			return 0, lx.errorf(lx.pos, "bad hex digit %q in escape", c)
		}
		v = v<<4 | uint32(d)
	}
	return v, nil
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	if lx.src[lx.pos] == '-' {
		lx.pos++
		if lx.pos >= len(lx.src) || lx.src[lx.pos] < '0' || lx.src[lx.pos] > '9' {
			return token{}, lx.errorf(start, "expected digit after '-'")
		}
	}
	digits := func() {
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
	}
	digits()
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		lx.pos++
		if lx.pos >= len(lx.src) || lx.src[lx.pos] < '0' || lx.src[lx.pos] > '9' {
			return token{}, lx.errorf(lx.pos, "expected digit after '.'")
		}
		digits()
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos >= len(lx.src) || lx.src[lx.pos] < '0' || lx.src[lx.pos] > '9' {
			return token{}, lx.errorf(lx.pos, "expected digit in exponent")
		}
		digits()
	}
	return token{kind: tokNumber, text: lx.src[start:lx.pos], pos: start}, nil
}

func (lx *lexer) lexIdent() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, w := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' || r == '-' {
			lx.pos += w
			continue
		}
		break
	}
	text := lx.src[start:lx.pos]
	if kind, ok := keywords[strings.ToLower(text)]; ok {
		return token{kind: kind, text: text, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}
