// Package wire defines the binary protocol of the TCP broker: length-
// prefixed frames carrying a one-byte message type and a typed payload.
//
// Frame layout:
//
//	u32be  payload length (including the type byte)
//	u8     message type
//	...    payload
//
// Requests carry a client-chosen u32 request ID echoed in the response;
// events pushed by the server carry the subscription ID they matched.
// Events serialise as a u16 attribute count followed by name/kind/value
// triples with varint-length strings.
//
// Zero-copy contract: ReadFrameInto reuses a caller-owned buffer across
// frames, and the *Alias decode variants build borrowed events whose
// strings reference that buffer directly. A borrowed event is valid only
// until the buffer's next reuse; whoever keeps one longer — subscriber
// delivery, queues, durable references — must call Event.Retain first.
// Attribute names are resolved against the intern table with Lookup only
// (never Of), so a hostile peer streaming fabricated names cannot grow
// the process-wide symbol table.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"

	"noncanon/internal/event"
	"noncanon/internal/intern"
	"noncanon/internal/value"
)

// MaxFrameSize bounds a frame's payload, protecting brokers from hostile
// or corrupted clients.
const MaxFrameSize = 1 << 20

// Message types.
const (
	// MsgSubscribe: u32 reqID, subscription text.
	MsgSubscribe byte = iota + 1
	// MsgSubscribed: u32 reqID, u64 subID.
	MsgSubscribed
	// MsgUnsubscribe: u32 reqID, u64 subID.
	MsgUnsubscribe
	// MsgOK: u32 reqID.
	MsgOK
	// MsgPublish: u32 reqID, event.
	MsgPublish
	// MsgPublished: u32 reqID, u32 matched-subscription count.
	MsgPublished
	// MsgEvent: u64 subID, event (server push).
	MsgEvent
	// MsgError: u32 reqID, error text.
	MsgError
	// MsgPing: u32 reqID.
	MsgPing
	// MsgPong: u32 reqID.
	MsgPong
	// MsgPublishBatch: u32 reqID, event batch (u32 count, then events).
	MsgPublishBatch
	// MsgPublishedBatch: u32 reqID, u32 count, count × u32 per-event
	// matched-subscription counts, aligned with the request's events.
	MsgPublishedBatch

	// Broker federation frames (internal/netoverlay). Brokers are peers:
	// these frames carry no request IDs and expect no replies — routing
	// state is eventually consistent across the tree.

	// MsgHello: u32 protocol version, u32 node ID. First frame in both
	// directions of a broker-to-broker connection.
	MsgHello
	// MsgSubForward: u64 subscription ID, filter text (sublang).
	MsgSubForward
	// MsgUnsubForward: u64 subscription ID.
	MsgUnsubForward
	// MsgEventForward: u8 hop count, event.
	MsgEventForward

	// MsgBusy: u32 reqID, u32 retry-after millis. A backpressure reply to
	// MsgPublish/MsgPublishBatch: the broker is congested and did not
	// accept the request; the client should retry after the hinted delay.
	MsgBusy
)

// FederationVersion is the broker federation protocol version carried in
// MsgHello; peers speaking a different version are rejected at handshake.
const FederationVersion = 1

// MaxBatchEvents bounds the events in one MsgPublishBatch frame. The frame
// size limit already bounds total bytes; this bounds the per-frame work a
// single request can demand from the broker, so an oversized batch is a
// rejectable request, not a protocol violation that drops the connection.
const MaxBatchEvents = 4096

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrMalformed     = errors.New("wire: malformed payload")
	ErrBatchTooLarge = errors.New("wire: batch exceeds event limit")
)

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("wire: write payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame into a fresh buffer. Reader loops should use
// ReadFrameInto instead and reuse the buffer across frames; ReadFrame is
// the compatibility wrapper for cold paths (handshakes, tests).
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	typ, payload, _, err = ReadFrameInto(r, nil)
	return typ, payload, err
}

// ReadFrameInto reads one frame into buf, growing it as needed, and
// returns the (possibly reallocated) buffer for the next call. payload
// aliases buf and is valid only until buf's next reuse: callers that keep
// any part of it — or any borrowed event decoded from it — past that
// point must copy (for events, Event.Retain). The steady state of a
// reader loop is zero allocations per frame once buf has grown to the
// connection's working frame size.
func ReadFrameInto(r io.Reader, buf []byte) (typ byte, payload []byte, bufOut []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, buf, fmt.Errorf("%w: empty frame", ErrMalformed)
	}
	if n > MaxFrameSize {
		return 0, nil, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: read payload: %w", err)
	}
	return buf[0], buf[1:], buf, nil
}

// --- payload primitives ---

// AppendU32 appends a big-endian u32.
func AppendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// AppendU64 appends a big-endian u64.
func AppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// AppendString appends a uvarint-length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// ReadU32 consumes a big-endian u32.
func ReadU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("%w: short u32", ErrMalformed)
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

// ReadU64 consumes a big-endian u64.
func ReadU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: short u64", ErrMalformed)
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// ReadString consumes a uvarint-length-prefixed string.
func ReadString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return "", nil, fmt.Errorf("%w: bad string length", ErrMalformed)
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

// --- event encoding ---

// Value kind tags on the wire.
const (
	kindInt byte = iota + 1
	kindFloat
	kindString
	kindBool
)

// AppendEvent appends the wire form of an event.
func AppendEvent(b []byte, ev event.Event) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(ev.Len()))
	// All() is already name-sorted, which keeps encodings canonical.
	for _, a := range ev.All() {
		v := a.Val
		b = AppendString(b, a.Name)
		switch v.Kind() {
		case value.Int:
			b = append(b, kindInt)
			b = binary.AppendVarint(b, v.Int())
		case value.Float:
			b = append(b, kindFloat)
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.Float()))
		case value.String:
			b = append(b, kindString)
			b = AppendString(b, v.Str())
		case value.Bool:
			b = append(b, kindBool)
			if v.Bool() {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	}
	return b
}

// AppendEventBatch appends the wire form of an event batch: a u32 event
// count followed by the events back to back. Callers publishing over the
// protocol must keep len(evs) within MaxBatchEvents and the encoded batch
// within MaxFrameSize.
func AppendEventBatch(b []byte, evs []event.Event) []byte {
	b = AppendU32(b, uint32(len(evs)))
	for _, ev := range evs {
		b = AppendEvent(b, ev)
	}
	return b
}

// ReadEventBatch consumes the wire form of an event batch. Counts beyond
// MaxBatchEvents fail with ErrBatchTooLarge; counts the remaining payload
// cannot possibly hold (every event costs at least its two-byte attribute
// count) fail with ErrMalformed before any event allocation happens.
func ReadEventBatch(b []byte) ([]event.Event, []byte, error) {
	return readEventBatch(b, nil, false)
}

// ReadEventBatchAlias is ReadEventBatch in zero-copy mode: every decoded
// event is borrowed (see ReadEventAlias) and must be Retained before the
// frame buffer is reused. evs, when non-nil, is recycled as the result's
// backing storage so a reader loop amortises the batch slice too; in the
// steady state the batch costs one allocation per event (each event's
// attribute slice) and nothing else.
func ReadEventBatchAlias(b []byte, evs []event.Event) ([]event.Event, []byte, error) {
	return readEventBatch(b, evs[:0], true)
}

func readEventBatch(b []byte, evs []event.Event, alias bool) ([]event.Event, []byte, error) {
	n, b, err := ReadU32(b)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: short batch header", ErrMalformed)
	}
	if n > MaxBatchEvents {
		return nil, nil, fmt.Errorf("%w: %d events (max %d)", ErrBatchTooLarge, n, MaxBatchEvents)
	}
	if uint64(n)*2 > uint64(len(b)) {
		return nil, nil, fmt.Errorf("%w: batch count %d exceeds payload", ErrMalformed, n)
	}
	if cap(evs) < int(n) {
		evs = make([]event.Event, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		var ev event.Event
		ev, b, err = readEvent(b, alias)
		if err != nil {
			return nil, nil, err
		}
		evs = append(evs, ev)
	}
	return evs, b, nil
}

// --- broker federation payloads ---

// AppendHello appends a MsgHello payload: protocol version and node ID.
func AppendHello(b []byte, version, nodeID uint32) []byte {
	b = AppendU32(b, version)
	return AppendU32(b, nodeID)
}

// ReadHello consumes a MsgHello payload.
func ReadHello(b []byte) (version, nodeID uint32, err error) {
	version, b, err = ReadU32(b)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: short hello version", ErrMalformed)
	}
	nodeID, _, err = ReadU32(b)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: short hello node ID", ErrMalformed)
	}
	return version, nodeID, nil
}

// AppendSubForward appends a MsgSubForward payload: subscription ID and the
// filter in sublang text form (the same textual protocol clients speak, so
// a federation of heterogeneous broker builds stays interoperable).
func AppendSubForward(b []byte, subID uint64, filter string) []byte {
	b = AppendU64(b, subID)
	return AppendString(b, filter)
}

// ReadSubForward consumes a MsgSubForward payload.
func ReadSubForward(b []byte) (subID uint64, filter string, err error) {
	subID, b, err = ReadU64(b)
	if err != nil {
		return 0, "", fmt.Errorf("%w: short sub-forward ID", ErrMalformed)
	}
	filter, _, err = ReadString(b)
	if err != nil {
		return 0, "", err
	}
	return subID, filter, nil
}

// AppendUnsubForward appends a MsgUnsubForward payload.
func AppendUnsubForward(b []byte, subID uint64) []byte { return AppendU64(b, subID) }

// ReadUnsubForward consumes a MsgUnsubForward payload.
func ReadUnsubForward(b []byte) (subID uint64, err error) {
	subID, _, err = ReadU64(b)
	if err != nil {
		return 0, fmt.Errorf("%w: short unsub-forward ID", ErrMalformed)
	}
	return subID, nil
}

// AppendEventForward appends a MsgEventForward payload: the hop count the
// event has already travelled plus the event itself.
func AppendEventForward(b []byte, hops uint8, ev event.Event) []byte {
	b = append(b, hops)
	return AppendEvent(b, ev)
}

// ReadEventForward consumes a MsgEventForward payload.
func ReadEventForward(b []byte) (hops uint8, ev event.Event, err error) {
	if len(b) < 1 {
		return 0, event.Event{}, fmt.Errorf("%w: short event-forward header", ErrMalformed)
	}
	hops = b[0]
	ev, _, err = ReadEvent(b[1:])
	if err != nil {
		return 0, event.Event{}, err
	}
	return hops, ev, nil
}

// AppendEventForwardTrace appends a MsgEventForward payload with the
// optional trace suffix: after the event, a non-zero trace ID and the
// event's origin timestamp (UnixNano). A zero traceID appends nothing and
// the frame is byte-identical to AppendEventForward's.
//
// The suffix is the protocol's versioning seam for event forwards:
// ReadEventForward deliberately ignores bytes after the event, so a
// version-1 peer that predates tracing parses a traced frame correctly
// (it just drops the trace), and a traced peer reading an untraced frame
// sees no suffix and reports traceID 0. No FederationVersion bump — the
// handshake is exact-match, and absence-by-default is what keeps mixed
// fleets interoperable. Future suffix fields must extend the same way:
// append-only, ignored when absent.
func AppendEventForwardTrace(b []byte, hops uint8, ev event.Event, traceID uint64, originNanos int64) []byte {
	b = append(b, hops)
	b = AppendEvent(b, ev)
	if traceID != 0 {
		b = AppendU64(b, traceID)
		b = AppendU64(b, uint64(originNanos))
	}
	return b
}

// ReadEventForwardTrace consumes a MsgEventForward payload including the
// optional trace suffix; traceID is 0 when the sender attached none.
func ReadEventForwardTrace(b []byte) (hops uint8, ev event.Event, traceID uint64, originNanos int64, err error) {
	return readEventForwardTrace(b, false)
}

// ReadEventForwardTraceAlias is ReadEventForwardTrace in zero-copy mode:
// the event is borrowed (see ReadEventAlias) and must be Retained before
// the frame buffer is reused.
func ReadEventForwardTraceAlias(b []byte) (hops uint8, ev event.Event, traceID uint64, originNanos int64, err error) {
	return readEventForwardTrace(b, true)
}

func readEventForwardTrace(b []byte, alias bool) (hops uint8, ev event.Event, traceID uint64, originNanos int64, err error) {
	if len(b) < 1 {
		return 0, event.Event{}, 0, 0, fmt.Errorf("%w: short event-forward header", ErrMalformed)
	}
	hops = b[0]
	var rest []byte
	ev, rest, err = readEvent(b[1:], alias)
	if err != nil {
		return 0, event.Event{}, 0, 0, err
	}
	if len(rest) >= 16 { // ≥, not ==: later suffix fields extend past ours
		traceID = binary.BigEndian.Uint64(rest)
		originNanos = int64(binary.BigEndian.Uint64(rest[8:]))
	}
	return hops, ev, traceID, originNanos, nil
}

// AppendBusy appends a MsgBusy payload: the rejected request's ID and the
// suggested retry delay in milliseconds.
func AppendBusy(b []byte, reqID uint32, retryAfterMillis uint32) []byte {
	b = AppendU32(b, reqID)
	return AppendU32(b, retryAfterMillis)
}

// ReadBusy consumes a MsgBusy payload.
func ReadBusy(b []byte) (reqID uint32, retryAfterMillis uint32, err error) {
	reqID, b, err = ReadU32(b)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: short busy request ID", ErrMalformed)
	}
	retryAfterMillis, _, err = ReadU32(b)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: short busy retry hint", ErrMalformed)
	}
	return reqID, retryAfterMillis, nil
}

// readStringBytes consumes a uvarint-length-prefixed string without
// copying: the returned bytes alias b.
func readStringBytes(b []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return nil, nil, fmt.Errorf("%w: bad string length", ErrMalformed)
	}
	return b[n : n+int(l)], b[n+int(l):], nil
}

// aliasString views b as a string without copying. The result is only as
// immutable as b: it must never escape the frame buffer's lifetime, which
// is exactly the borrowed-event contract enforced by Event.Retain. This is
// the single unsafe seam of the zero-copy path, confined to the transport
// layer — kernel through engine ban unsafe outright (internal/arch).
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// ReadEvent consumes the wire form of an event, copying every string out
// of b: the result owns its storage. Use ReadEventAlias on hot reader
// loops and Retain what outlives the frame.
func ReadEvent(b []byte) (event.Event, []byte, error) {
	return readEvent(b, false)
}

// ReadEventAlias consumes the wire form of an event in zero-copy mode:
// string values and unknown attribute names in the result alias b. The
// event is borrowed — Event.Borrowed reports true — and must be Retained
// before b is reused or the event is shared across goroutines. Attribute
// names already in the intern table resolve to their canonical owned
// strings and cost nothing; in the steady state (known names, no string
// values kept) decode is one allocation per event.
func ReadEventAlias(b []byte) (event.Event, []byte, error) {
	return readEvent(b, true)
}

func readEvent(b []byte, alias bool) (event.Event, []byte, error) {
	if len(b) < 2 {
		return event.Event{}, nil, fmt.Errorf("%w: short event header", ErrMalformed)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	// Every attribute costs at least three bytes (one-byte name length,
	// kind tag, one value byte), so a count the payload cannot hold is
	// rejected before it sizes any allocation.
	if n*3 > len(b) {
		return event.Event{}, nil, fmt.Errorf("%w: attribute count %d exceeds payload", ErrMalformed, n)
	}
	var attrs []event.Attr
	if n > 0 {
		attrs = make([]event.Attr, 0, n)
	}
	for i := 0; i < n; i++ {
		var nb []byte
		var err error
		nb, b, err = readStringBytes(b)
		if err != nil {
			return event.Event{}, nil, err
		}
		// Lookup only — remote names never grow the symbol table. A hit
		// yields the table's canonical owned string, so known names cost
		// no copy in either mode.
		var name string
		sym, known := intern.LookupBytes(nb)
		switch {
		case known:
			name = intern.Name(sym)
		case alias:
			name = aliasString(nb)
		default:
			name = string(nb)
		}
		if len(b) < 1 {
			return event.Event{}, nil, fmt.Errorf("%w: missing value kind", ErrMalformed)
		}
		kind := b[0]
		b = b[1:]
		var val value.Value
		switch kind {
		case kindInt:
			v, vn := binary.Varint(b)
			if vn <= 0 {
				return event.Event{}, nil, fmt.Errorf("%w: bad int", ErrMalformed)
			}
			b = b[vn:]
			val = value.OfInt(v)
		case kindFloat:
			if len(b) < 8 {
				return event.Event{}, nil, fmt.Errorf("%w: short float", ErrMalformed)
			}
			val = value.OfFloat(math.Float64frombits(binary.BigEndian.Uint64(b)))
			b = b[8:]
		case kindString:
			var sb []byte
			var err error
			sb, b, err = readStringBytes(b)
			if err != nil {
				return event.Event{}, nil, err
			}
			if alias {
				val = value.OfString(aliasString(sb))
			} else {
				val = value.OfString(string(sb))
			}
		case kindBool:
			if len(b) < 1 {
				return event.Event{}, nil, fmt.Errorf("%w: short bool", ErrMalformed)
			}
			val = value.OfBool(b[0] != 0)
			b = b[1:]
		default:
			return event.Event{}, nil, fmt.Errorf("%w: unknown value kind 0x%02x", ErrMalformed, kind)
		}
		attrs = append(attrs, event.Attr{Name: name, Sym: sym, Val: val})
	}
	if alias {
		return event.FromBorrowedAttrs(attrs), b, nil
	}
	return event.FromAttrs(attrs), b, nil
}
