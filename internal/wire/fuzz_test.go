package wire

import (
	"bytes"
	"math"
	"testing"

	"noncanon/internal/event"
	"noncanon/internal/value"
)

// hasNaN reports whether any float attribute of ev is NaN.
func hasNaN(ev event.Event) bool {
	nan := false
	ev.Range(func(_ string, v value.Value) bool {
		if v.Kind() == value.Float && math.IsNaN(v.Float()) {
			nan = true
			return false
		}
		return true
	})
	return nan
}

// FuzzDecodeEvent is the native-fuzzing promotion of the old
// random-bytes test (TestEventFuzzNoPanics): ReadEvent and ReadString
// must reject arbitrary garbage gracefully, and any payload ReadEvent
// accepts must survive a canonical re-encode/decode round trip —
// AppendEvent of the decoded event re-reads equal, and re-encoding is a
// byte-level fixed point (events encode attributes in sorted order, so
// the second encoding is canonical regardless of the input's ordering).
//
// Seeds beyond the inline f.Add corpus are checked in under
// testdata/fuzz/FuzzDecodeEvent.
func FuzzDecodeEvent(f *testing.F) {
	// Valid encodings of representative events.
	events := []event.Event{
		event.New(),
		event.New().Set("price", 150).Set("sym", "ACME"),
		event.New().Set("f", 1.5).Set("b", true).Set("s", ""),
		event.New().Set("neg", -1234567890),
	}
	for _, ev := range events {
		f.Add(AppendEvent(nil, ev))
	}
	// Malformed corners: truncated header, bad kind tag, short values.
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x01, 0x01, 'a', 0x09})       // unknown kind 0x09
	f.Add([]byte{0x00, 0x01, 0x01, 'a', 0x02, 0x40}) // short float
	f.Add([]byte{0xff, 0xff})                        // 65535 attrs, no data
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ReadString(data) // must not panic
		ev, rest, err := ReadEvent(data)
		if err != nil {
			return
		}
		// Canonical round trip. ReadEvent may leave trailing bytes in rest
		// (frames carry their own length); only the consumed prefix
		// participates in the re-encoding.
		_ = rest
		enc := AppendEvent(nil, ev)
		ev2, rest2, err := ReadEvent(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v (input %x)", err, data)
		}
		if len(rest2) != 0 {
			t.Fatalf("canonical encoding left %d trailing bytes (input %x)", len(rest2), data)
		}
		// Event.Equal is IEEE equality, under which NaN differs from
		// itself; for NaN-carrying events the byte-level fixed point below
		// is the (stronger) round-trip witness.
		if !hasNaN(ev) && !ev.Equal(ev2) {
			t.Fatalf("round trip changed event\n  input: %x\n  first: %s\n  second: %s", data, ev, ev2)
		}
		if enc2 := AppendEvent(nil, ev2); !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixed point\n  input: %x\n  enc1: %x\n  enc2: %x", data, enc, enc2)
		}
	})
}

// FuzzDecodePublishBatch covers the MsgPublishBatch payload decoder:
// ReadEventBatch must reject arbitrary garbage gracefully (including
// hostile event counts, which are bounds-checked against MaxBatchEvents
// and the remaining payload before anything is allocated), and any batch
// it accepts must survive a canonical re-encode/decode round trip, like
// FuzzDecodeEvent for single events.
//
// Seeds beyond the inline f.Add corpus are checked in under
// testdata/fuzz/FuzzDecodePublishBatch: the empty batch, a single-event
// batch, a max-count batch truncated after its header, and a truncated
// count prefix.
func FuzzDecodePublishBatch(f *testing.F) {
	// Valid batches: empty, single event, mixed kinds, and the largest
	// permitted count (empty events keep the seed small).
	batches := [][]event.Event{
		nil,
		{event.New().Set("price", 150).Set("sym", "ACME")},
		{
			event.New(),
			event.New().Set("f", 1.5).Set("b", true).Set("s", ""),
			event.New().Set("neg", -1234567890),
		},
	}
	maxBatch := make([]event.Event, MaxBatchEvents)
	for i := range maxBatch {
		maxBatch[i] = event.New()
	}
	batches = append(batches, maxBatch)
	for _, evs := range batches {
		f.Add(AppendEventBatch(nil, evs))
	}
	// Malformed corners: truncated count, count exceeding the payload,
	// count exceeding MaxBatchEvents, malformed inner event.
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add(AppendU32(nil, 7))
	f.Add(AppendU32(nil, MaxBatchEvents+1))
	f.Add(append(AppendU32(nil, 1), 0x00, 0x01, 0x01, 'a', 0x63))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, _, err := ReadEventBatch(data)
		if err != nil {
			return
		}
		if len(evs) > MaxBatchEvents {
			t.Fatalf("decoder admitted %d events (max %d)", len(evs), MaxBatchEvents)
		}
		enc := AppendEventBatch(nil, evs)
		evs2, rest, err := ReadEventBatch(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v (input %x)", err, data)
		}
		if len(rest) != 0 {
			t.Fatalf("canonical encoding left %d trailing bytes (input %x)", len(rest), data)
		}
		if len(evs2) != len(evs) {
			t.Fatalf("round trip changed batch size %d -> %d (input %x)", len(evs), len(evs2), data)
		}
		for i := range evs {
			if !hasNaN(evs[i]) && !evs[i].Equal(evs2[i]) {
				t.Fatalf("round trip changed event %d\n  input: %x\n  first: %s\n  second: %s",
					i, data, evs[i], evs2[i])
			}
		}
		if enc2 := AppendEventBatch(nil, evs2); !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixed point\n  input: %x\n  enc1: %x\n  enc2: %x", data, enc, enc2)
		}
	})
}
