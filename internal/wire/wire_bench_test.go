package wire

import (
	"bytes"
	"testing"

	"noncanon/internal/event"
)

func benchEvent() event.Event {
	return event.New().
		Set("sym", "ACME").
		Set("price", 150).
		Set("change", -1.25).
		Set("volume", 90210).
		Set("halted", false)
}

func BenchmarkAppendEvent(b *testing.B) {
	ev := benchEvent()
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEvent(buf[:0], ev)
	}
}

func BenchmarkReadEvent(b *testing.B) {
	buf := AppendEvent(nil, benchEvent())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadEvent(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := AppendEvent(nil, benchEvent())
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, MsgPublish, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
