package wire

import (
	"bytes"
	"testing"

	"noncanon/internal/event"
	"noncanon/internal/intern"
	"noncanon/internal/value"
)

// FuzzDecodeEventAlias differentially compares the copying and zero-copy
// decoders: on every input they must agree on error-vs-success, consume
// the same number of bytes, and — after Retain — produce byte-identical
// canonical encodings. It then clobbers the input buffer and checks the
// retained event is unaffected, which is the whole point of the
// Retain()/copy-on-keep contract.
//
// Seeds beyond the inline f.Add corpus are checked in under
// testdata/fuzz/FuzzDecodeEventAlias.
func FuzzDecodeEventAlias(f *testing.F) {
	events := []event.Event{
		event.New(),
		event.New().Set("price", 150).Set("sym", "ACME"),
		event.New().Set("f", 1.5).Set("b", true).Set("s", "payload"),
		event.New().Set("neg", -1234567890).Set("never-interned-fuzz-name", "x"),
	}
	for _, ev := range events {
		f.Add(AppendEvent(nil, ev))
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x01, 'a', 0x09})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode from a private copy so we can clobber it afterwards.
		buf := append([]byte(nil), data...)
		evA, restA, errA := ReadEventAlias(buf)
		evC, restC, errC := ReadEvent(data)
		if (errA == nil) != (errC == nil) {
			t.Fatalf("decoders disagree on error: alias=%v copy=%v (input %x)", errA, errC, data)
		}
		if errA != nil {
			return
		}
		if len(restA) != len(restC) {
			t.Fatalf("decoders consumed different lengths: alias left %d, copy left %d (input %x)",
				len(restA), len(restC), data)
		}
		if !evA.Borrowed() {
			t.Fatal("alias decode did not mark the event borrowed")
		}
		if evC.Borrowed() {
			t.Fatal("copying decode produced a borrowed event")
		}
		retained := evA.Retain()
		encC := AppendEvent(nil, evC)
		if encA := AppendEvent(nil, retained); !bytes.Equal(encA, encC) {
			t.Fatalf("alias+Retain and copy decode diverge\n  input: %x\n  alias: %x\n  copy:  %x", data, encA, encC)
		}
		// The frame buffer is reused: the retained event must not notice.
		for i := range buf {
			buf[i] = 0xAA
		}
		if encA := AppendEvent(nil, retained); !bytes.Equal(encA, encC) {
			t.Fatalf("retained event changed when its frame buffer was clobbered\n  input: %x\n  after: %x\n  want:  %x",
				data, encA, encC)
		}
	})
}

// TestRetainSurvivesBufferReuse is the deterministic core of the fuzz
// property: decode in alias mode, Retain, overwrite the frame buffer,
// and check every attribute — including a never-interned name and a
// string value, the two volatile kinds — still reads back intact.
func TestRetainSurvivesBufferReuse(t *testing.T) {
	const volatileName = "retain-test-never-interned-name"
	src := event.New().
		Set("sym", "ACME").
		Set("note", "hold me").
		Set("price", 42)
	enc := AppendEvent(nil, src)
	// Splice in an attribute whose name is NOT in the intern table, built
	// by hand so event.Set can't intern it: bump the count and append
	// name/kind/value.
	enc[1] += 1
	enc = AppendString(enc, volatileName)
	enc = append(enc, kindString, 5)
	enc = append(enc, "fresh"...)

	buf := append([]byte(nil), enc...)
	ev, rest, err := ReadEventAlias(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("alias decode: %v (rest %d)", err, len(rest))
	}
	if _, known := intern.Lookup(volatileName); known {
		t.Fatalf("%q unexpectedly interned; decode must not have done that", volatileName)
	}
	ev = ev.Retain()
	if ev.Borrowed() {
		t.Fatal("Retain left the event borrowed")
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	checks := []struct {
		attr string
		want any
	}{
		{"sym", "ACME"}, {"note", "hold me"}, {"price", int64(42)}, {volatileName, "fresh"},
	}
	for _, c := range checks {
		v, ok := ev.Get(c.attr)
		if !ok {
			t.Fatalf("attribute %q lost after buffer reuse", c.attr)
		}
		switch want := c.want.(type) {
		case string:
			if v.Kind() != value.String || v.Str() != want {
				t.Fatalf("attribute %q = %v, want %q", c.attr, v, want)
			}
		case int64:
			if v.Kind() != value.Int || v.Int() != want {
				t.Fatalf("attribute %q = %v, want %d", c.attr, v, want)
			}
		}
	}
}

// TestBorrowedEventAliasesBuffer proves the zero-copy mode really does
// alias (no silent defensive copy): mutating the buffer before Retain is
// visible through an un-retained string value. This is a test of the
// mechanism, not a usage pattern — real readers Retain before reuse.
func TestBorrowedEventAliasesBuffer(t *testing.T) {
	enc := AppendEvent(nil, event.New().Set("s", "abcd"))
	buf := append([]byte(nil), enc...)
	ev, _, err := ReadEventAlias(buf)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := ev.Get("s")
	if v.Str() != "abcd" {
		t.Fatalf("got %q", v.Str())
	}
	// Flip the last byte of the payload, which is the 'd' of "abcd".
	buf[len(buf)-1] = 'X'
	v, _ = ev.Get("s")
	if v.Str() != "abcX" {
		t.Fatalf("borrowed string did not alias the buffer: %q", v.Str())
	}
}

// TestReadFrameIntoReusesBuffer pins the zero-allocation steady state of
// a reader loop: once the buffer has grown, further frames of equal or
// smaller size must not reallocate.
func TestReadFrameIntoReusesBuffer(t *testing.T) {
	var stream bytes.Buffer
	payloads := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 50),
		bytes.Repeat([]byte{3}, 100),
	}
	for _, p := range payloads {
		if err := WriteFrame(&stream, MsgPublish, p); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	var typ byte
	var payload []byte
	var err error
	typ, payload, buf, err = ReadFrameInto(&stream, buf)
	if err != nil || typ != MsgPublish || len(payload) != 100 {
		t.Fatalf("frame 1: typ=%d len=%d err=%v", typ, len(payload), err)
	}
	first := &buf[0]
	for i, want := range []int{50, 100} {
		_, payload, buf, err = ReadFrameInto(&stream, buf)
		if err != nil || len(payload) != want {
			t.Fatalf("frame %d: len=%d err=%v", i+2, len(payload), err)
		}
		if &buf[0] != first {
			t.Fatalf("frame %d reallocated the buffer", i+2)
		}
	}
}
