package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"noncanon/internal/event"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		nil,
		{},
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 10_000),
	}
	for i, p := range payloads {
		buf.Reset()
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Errorf("frame %d: typ=%d len=%d", i, typ, len(got))
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, MaxFrameSize)
	if err := WriteFrame(&buf, 1, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized write err = %v", err)
	}
	// Oversized length header on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized read err = %v", err)
	}
	// Zero-length frame.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty frame err = %v", err)
	}
}

func TestFrameEOFAndTruncation(t *testing.T) {
	// Clean EOF at a frame boundary.
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("EOF err = %v", err)
	}
	// Truncated header.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated header accepted")
	}
	// Truncated payload.
	var buf bytes.Buffer
	WriteFrame(&buf, 1, []byte("hello"))
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestPrimitivesRoundTrip(t *testing.T) {
	b := AppendU32(nil, 0xDEADBEEF)
	b = AppendU64(b, 0x1122334455667788)
	b = AppendString(b, "hello world")
	b = AppendString(b, "")

	u32, b2, err := ReadU32(b)
	if err != nil || u32 != 0xDEADBEEF {
		t.Fatalf("ReadU32 = %x, %v", u32, err)
	}
	u64, b3, err := ReadU64(b2)
	if err != nil || u64 != 0x1122334455667788 {
		t.Fatalf("ReadU64 = %x, %v", u64, err)
	}
	s1, b4, err := ReadString(b3)
	if err != nil || s1 != "hello world" {
		t.Fatalf("ReadString = %q, %v", s1, err)
	}
	s2, rest, err := ReadString(b4)
	if err != nil || s2 != "" || len(rest) != 0 {
		t.Fatalf("empty ReadString = %q, rest=%d, %v", s2, len(rest), err)
	}
}

func TestPrimitivesShortInput(t *testing.T) {
	if _, _, err := ReadU32([]byte{1, 2}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short u32 err = %v", err)
	}
	if _, _, err := ReadU64([]byte{1}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short u64 err = %v", err)
	}
	// String length beyond buffer.
	b := AppendString(nil, strings.Repeat("x", 100))
	if _, _, err := ReadString(b[:20]); !errors.Is(err, ErrMalformed) {
		t.Errorf("short string err = %v", err)
	}
	if _, _, err := ReadString(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty string buf err = %v", err)
	}
}

func TestEventRoundTrip(t *testing.T) {
	events := []event.Event{
		event.New(),
		event.New().Set("price", 42),
		event.New().Set("price", -42).Set("ratio", 2.5).Set("sym", "ACME").Set("hot", true),
		event.New().Set("neg", false).Set("empty", ""),
		event.New().Set("big", int64(1)<<60),
	}
	for i, ev := range events {
		b := AppendEvent(nil, ev)
		got, rest, err := ReadEvent(b)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Errorf("event %d: %d trailing bytes", i, len(rest))
		}
		if !got.Equal(ev) {
			t.Errorf("event %d: got %s, want %s", i, got, ev)
		}
	}
}

func TestEventRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		ev := event.New()
		for a := 0; a < rng.Intn(6); a++ {
			attr := "a" + string(rune('0'+a))
			switch rng.Intn(4) {
			case 0:
				ev = ev.Set(attr, rng.Int63()-rng.Int63())
			case 1:
				ev = ev.Set(attr, rng.NormFloat64())
			case 2:
				ev = ev.Set(attr, strings.Repeat("s", rng.Intn(20)))
			default:
				ev = ev.Set(attr, rng.Intn(2) == 0)
			}
		}
		got, _, err := ReadEvent(AppendEvent(nil, ev))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if !got.Equal(ev) {
			t.Fatalf("iter %d: got %s, want %s", i, got, ev)
		}
	}
}

func TestEventMalformedInputs(t *testing.T) {
	cases := [][]byte{
		{},                      // no header
		{0},                     // short header
		{0, 1},                  // one attr promised, nothing follows
		{0, 1, 1, 'a'},          // attr name but no kind
		{0, 1, 1, 'a', 99},      // unknown kind
		{0, 1, 1, 'a', 2, 1, 2}, // short float
		{0, 1, 1, 'a', 4},       // short bool
		{0, 1, 1, 'a', 3, 10},   // string length overrun
	}
	for i, b := range cases {
		if _, _, err := ReadEvent(b); err == nil {
			t.Errorf("case %d: malformed event accepted", i)
		}
	}
}

// TestEventFuzzNoPanics feeds random bytes to the decoder; it must reject
// garbage gracefully. The native fuzz target FuzzDecodeEvent (fuzz_test.go)
// extends this with coverage guidance and round-trip assertions; this
// deterministic sweep remains as an always-on smoke pass.
func TestEventFuzzNoPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		_, _, _ = ReadEvent(b) // must not panic
		_, _, _ = ReadString(b)
	}
}

func TestEventBatchRoundTrip(t *testing.T) {
	batches := [][]event.Event{
		nil, // empty batch
		{event.New()},
		{
			event.New().Set("price", 150).Set("sym", "ACME"),
			event.New(),
			event.New().Set("f", 2.5).Set("b", true).Set("s", "x"),
		},
	}
	for i, evs := range batches {
		enc := AppendEventBatch(nil, evs)
		got, rest, err := ReadEventBatch(enc)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("batch %d: %d trailing bytes", i, len(rest))
		}
		if len(got) != len(evs) {
			t.Fatalf("batch %d: got %d events, want %d", i, len(got), len(evs))
		}
		for j := range evs {
			if !got[j].Equal(evs[j]) {
				t.Fatalf("batch %d event %d: got %s, want %s", i, j, got[j], evs[j])
			}
		}
	}
}

func TestEventBatchTrailingBytes(t *testing.T) {
	enc := AppendEventBatch(nil, []event.Event{event.New().Set("a", 1)})
	enc = append(enc, 0xde, 0xad)
	_, rest, err := ReadEventBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d bytes, want 2", len(rest))
	}
}

func TestEventBatchMalformedInputs(t *testing.T) {
	overCount := AppendU32(nil, MaxBatchEvents+1)
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty input", nil, ErrMalformed},
		{"truncated count", []byte{0, 0}, ErrMalformed},
		{"count exceeds payload", AppendU32(nil, 3), ErrMalformed},
		{"oversized count", overCount, ErrBatchTooLarge},
		{"bad inner event", append(AppendU32(nil, 1), 0, 1, 1, 'a', 99), ErrMalformed},
	}
	for _, tc := range cases {
		if _, _, err := ReadEventBatch(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestEventBatchMaxCountAccepted(t *testing.T) {
	// Exactly MaxBatchEvents empty events decode fine; the bound is not
	// off by one.
	evs := make([]event.Event, MaxBatchEvents)
	for i := range evs {
		evs[i] = event.New()
	}
	got, _, err := ReadEventBatch(AppendEventBatch(nil, evs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxBatchEvents {
		t.Fatalf("got %d events, want %d", len(got), MaxBatchEvents)
	}
}

func TestFederationPayloadRoundTrips(t *testing.T) {
	ver, node, err := ReadHello(AppendHello(nil, FederationVersion, 42))
	if err != nil {
		t.Fatal(err)
	}
	if ver != FederationVersion || node != 42 {
		t.Errorf("hello = v%d node %d", ver, node)
	}

	const filter = `cat = 1 and price < 100`
	subID, text, err := ReadSubForward(AppendSubForward(nil, 7<<32|9, filter))
	if err != nil {
		t.Fatal(err)
	}
	if subID != 7<<32|9 || text != filter {
		t.Errorf("sub forward = %d %q", subID, text)
	}

	unsubID, err := ReadUnsubForward(AppendUnsubForward(nil, 99))
	if err != nil {
		t.Fatal(err)
	}
	if unsubID != 99 {
		t.Errorf("unsub forward = %d", unsubID)
	}

	ev := event.New().Set("sym", "ACME").Set("price", int64(7)).Set("hot", true)
	hops, got, err := ReadEventForward(AppendEventForward(nil, 3, ev))
	if err != nil {
		t.Fatal(err)
	}
	if hops != 3 {
		t.Errorf("hops = %d, want 3", hops)
	}
	if !got.Equal(ev) {
		t.Errorf("event round trip: got %v, want %v", got, ev)
	}
}

func TestBusyRoundTrip(t *testing.T) {
	reqID, retry, err := ReadBusy(AppendBusy(nil, 0xdeadbeef, 250))
	if err != nil {
		t.Fatal(err)
	}
	if reqID != 0xdeadbeef || retry != 250 {
		t.Errorf("busy = req %#x retry %dms", reqID, retry)
	}
	if _, _, err := ReadBusy([]byte{1, 2}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short busy err = %v", err)
	}
	if _, _, err := ReadBusy(AppendU32(nil, 1)); !errors.Is(err, ErrMalformed) {
		t.Errorf("busy missing retry err = %v", err)
	}
}

func TestFederationPayloadShortInputs(t *testing.T) {
	if _, _, err := ReadHello([]byte{1, 2}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short hello err = %v", err)
	}
	if _, _, err := ReadHello(AppendU32(nil, 1)); !errors.Is(err, ErrMalformed) {
		t.Errorf("hello missing node err = %v", err)
	}
	if _, _, err := ReadSubForward([]byte{1}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short sub forward err = %v", err)
	}
	if _, _, err := ReadSubForward(AppendU64(nil, 1)); !errors.Is(err, ErrMalformed) {
		t.Errorf("sub forward missing filter err = %v", err)
	}
	if _, err := ReadUnsubForward([]byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short unsub err = %v", err)
	}
	if _, _, err := ReadEventForward(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty event forward err = %v", err)
	}
	if _, _, err := ReadEventForward([]byte{1, 0}); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated event forward err = %v", err)
	}
}

func TestEventForwardTraceRoundTrip(t *testing.T) {
	ev := event.New().Set("sym", "ACME").Set("price", int64(7))

	// Traced frame round-trips all four fields.
	b := AppendEventForwardTrace(nil, 2, ev, 0xabcdef0123456789, -5e9)
	hops, got, traceID, origin, err := ReadEventForwardTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	if hops != 2 || !got.Equal(ev) {
		t.Errorf("hops/event = %d %v", hops, got)
	}
	if traceID != 0xabcdef0123456789 || origin != -5e9 {
		t.Errorf("trace = %#x origin %d", traceID, origin)
	}

	// Backward compatibility both ways. An old reader parses a traced
	// frame, silently dropping the suffix...
	oldHops, oldEv, err := ReadEventForward(b)
	if err != nil {
		t.Fatalf("old reader rejected traced frame: %v", err)
	}
	if oldHops != 2 || !oldEv.Equal(ev) {
		t.Errorf("old reader on traced frame = %d %v", oldHops, oldEv)
	}
	// ...and a traced reader reports no trace on an old frame.
	hops, got, traceID, origin, err = ReadEventForwardTrace(AppendEventForward(nil, 3, ev))
	if err != nil {
		t.Fatal(err)
	}
	if hops != 3 || !got.Equal(ev) || traceID != 0 || origin != 0 {
		t.Errorf("untraced frame = %d %v trace %d origin %d", hops, got, traceID, origin)
	}

	// A zero trace ID encodes byte-identically to the untraced form.
	plain := AppendEventForward(nil, 3, ev)
	traced := AppendEventForwardTrace(nil, 3, ev, 0, 12345)
	if string(plain) != string(traced) {
		t.Errorf("zero-trace frame differs from plain frame")
	}

	// A partial suffix (future field, or truncation past the event) is
	// ignored, not an error — same contract as trailing bytes today.
	if _, _, traceID, _, err = ReadEventForwardTrace(append(AppendEventForward(nil, 1, ev), 1, 2, 3)); err != nil || traceID != 0 {
		t.Errorf("short suffix: trace %d err %v", traceID, err)
	}
	if _, _, _, _, err = ReadEventForwardTrace(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty traced forward err = %v", err)
	}
}
