package counting

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
)

func newEngine(opts Options) (*Engine, *predicate.Registry, *index.Index) {
	reg := predicate.NewRegistry()
	idx := index.New()
	return New(reg, idx, opts), reg, idx
}

func fig1() boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.NewOr(
			boolexpr.Pred("a", predicate.Gt, 10),
			boolexpr.Pred("a", predicate.Le, 5),
			boolexpr.Pred("b", predicate.Eq, 1),
		),
		boolexpr.NewOr(
			boolexpr.Pred("c", predicate.Le, 20),
			boolexpr.Pred("c", predicate.Eq, 30),
			boolexpr.Pred("d", predicate.Eq, 5),
		),
	)
}

func sameSubs(got []matcher.SubID, want map[matcher.SubID]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for _, id := range got {
		if !want[id] {
			return false
		}
	}
	return true
}

func TestDNFExpansion(t *testing.T) {
	e, _, _ := newEngine(Options{})
	id, err := e.Subscribe(fig1())
	if err != nil {
		t.Fatal(err)
	}
	// The paper: fig1 "results in 9 disjunctions that are required to be
	// treated separately".
	if e.NumUnits() != 9 {
		t.Errorf("NumUnits = %d, want 9", e.NumUnits())
	}
	if e.NumSubscriptions() != 1 {
		t.Errorf("NumSubscriptions = %d, want 1", e.NumSubscriptions())
	}
	_ = id
}

func TestMatchFig1BothAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{Classic, Variant} {
		t.Run(alg.String(), func(t *testing.T) {
			e, _, _ := newEngine(Options{Algorithm: alg})
			id, err := e.Subscribe(fig1())
			if err != nil {
				t.Fatal(err)
			}
			tests := []struct {
				ev   event.Event
				want bool
			}{
				{event.New().Set("a", 11).Set("c", 15), true},
				{event.New().Set("a", 3).Set("c", 30), true},
				{event.New().Set("b", 1).Set("d", 5), true},
				{event.New().Set("a", 7).Set("c", 15), false},
				{event.New().Set("a", 11).Set("c", 25), false},
			}
			for i, tt := range tests {
				got := e.Match(tt.ev)
				if tt.want && !sameSubs(got, map[matcher.SubID]bool{id: true}) {
					t.Errorf("case %d: Match = %v, want [%d]", i, got, id)
				}
				if !tt.want && len(got) != 0 {
					t.Errorf("case %d: Match = %v, want none", i, got)
				}
			}
		})
	}
}

func TestMatchDedupsAcrossUnits(t *testing.T) {
	// An event fulfilling several disjuncts must report the original
	// subscription once.
	e, _, _ := newEngine(Options{})
	id, _ := e.Subscribe(boolexpr.NewOr(
		boolexpr.Pred("a", predicate.Gt, 1),
		boolexpr.Pred("a", predicate.Gt, 2),
		boolexpr.Pred("a", predicate.Gt, 3),
	))
	got := e.Match(event.New().Set("a", 10)) // all three disjuncts fulfilled
	if len(got) != 1 || got[0] != id {
		t.Errorf("Match = %v, want exactly [%d]", got, id)
	}
}

func TestNegationRejectedByDefault(t *testing.T) {
	e, _, _ := newEngine(Options{})
	_, err := e.Subscribe(boolexpr.NewNot(boolexpr.Pred("a", predicate.Eq, 1)))
	if !errors.Is(err, boolexpr.ErrNegativeLiteral) {
		t.Errorf("err = %v, want ErrNegativeLiteral", err)
	}
	// Non-complementable operators fail even with ComplementNegations.
	e2, _, _ := newEngine(Options{ComplementNegations: true})
	_, err = e2.Subscribe(boolexpr.NewNot(boolexpr.Pred("s", predicate.Prefix, "x")))
	if !errors.Is(err, boolexpr.ErrNotNegatable) {
		t.Errorf("err = %v, want ErrNotNegatable", err)
	}
}

func TestComplementNegations(t *testing.T) {
	e, _, _ := newEngine(Options{ComplementNegations: true})
	id, err := e.Subscribe(boolexpr.NewAnd(
		boolexpr.Pred("a", predicate.Gt, 0),
		boolexpr.NewNot(boolexpr.Pred("a", predicate.Gt, 10)), // → a <= 10
	))
	if err != nil {
		t.Fatal(err)
	}
	// Attribute-complete events: strong semantics coincides with negation.
	if got := e.Match(event.New().Set("a", 5)); len(got) != 1 || got[0] != id {
		t.Errorf("a=5: %v", got)
	}
	if got := e.Match(event.New().Set("a", 15)); len(got) != 0 {
		t.Errorf("a=15: %v", got)
	}
}

func TestUnsatisfiableRejected(t *testing.T) {
	e, _, _ := newEngine(Options{ComplementNegations: true})
	p := boolexpr.Pred("a", predicate.Eq, 1)
	if _, err := e.Subscribe(boolexpr.NewAnd(p, boolexpr.NewNot(p))); err == nil {
		t.Error("unsatisfiable subscription should be rejected")
	}
}

func TestMaxDisjunctsLimit(t *testing.T) {
	e, _, _ := newEngine(Options{MaxDisjuncts: 8})
	pairs := make([]boolexpr.Expr, 4) // 2^4 = 16 disjuncts > 8
	for i := range pairs {
		a := "a" + fmt.Sprint(i)
		pairs[i] = boolexpr.NewOr(
			boolexpr.Pred(a, predicate.Gt, 10),
			boolexpr.Pred(a, predicate.Le, 5),
		)
	}
	if _, err := e.Subscribe(boolexpr.NewAnd(pairs...)); !errors.Is(err, boolexpr.ErrDNFTooLarge) {
		t.Errorf("err = %v, want ErrDNFTooLarge", err)
	}
}

func TestConjTooWideRejected(t *testing.T) {
	e, _, _ := newEngine(Options{})
	xs := make([]boolexpr.Expr, MaxConjPredicates+1)
	for i := range xs {
		xs[i] = boolexpr.Pred("a", predicate.Eq, i)
	}
	if _, err := e.Subscribe(boolexpr.And{Xs: xs}); err == nil {
		t.Error("256-predicate conjunction must exceed the 1-byte counter")
	}
}

func TestUnsubscribeUnsupportedByDefault(t *testing.T) {
	e, _, _ := newEngine(Options{})
	id, _ := e.Subscribe(fig1())
	if err := e.Unsubscribe(id); !errors.Is(err, matcher.ErrUnsubscribeUnsupported) {
		t.Errorf("err = %v, want ErrUnsubscribeUnsupported", err)
	}
}

func TestUnsubscribeWithSupport(t *testing.T) {
	e, reg, idx := newEngine(Options{SupportUnsubscribe: true})
	id1, _ := e.Subscribe(fig1())
	id2, _ := e.Subscribe(boolexpr.Pred("a", predicate.Gt, 10))

	if err := e.Unsubscribe(id1); err != nil {
		t.Fatal(err)
	}
	if e.NumSubscriptions() != 1 || e.NumUnits() != 1 {
		t.Errorf("after unsub: subs=%d units=%d", e.NumSubscriptions(), e.NumUnits())
	}
	if reg.Len() != 1 || idx.NumPredicates() != 1 {
		t.Errorf("after unsub: reg=%d idx=%d, want 1/1", reg.Len(), idx.NumPredicates())
	}
	got := e.Match(event.New().Set("a", 11).Set("c", 15))
	if len(got) != 1 || got[0] != id2 {
		t.Errorf("Match = %v, want [%d]", got, id2)
	}
	if err := e.Unsubscribe(id1); !errors.Is(err, matcher.ErrUnknownSubscription) {
		t.Errorf("double unsub err = %v", err)
	}
	if err := e.Unsubscribe(id2); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 || idx.NumPredicates() != 0 || e.NumUnits() != 0 {
		t.Error("engine not empty after last unsubscribe")
	}
	// Unit slots are reused.
	id3, _ := e.Subscribe(fig1())
	if e.NumUnits() != 9 {
		t.Errorf("NumUnits = %d after reuse", e.NumUnits())
	}
	_ = id3
}

func TestMemBytesUnsubscribeSupportCostsMemory(t *testing.T) {
	// The paper (§2.1 fn.1, §3.3) points out that supporting unsubscription
	// requires storing per-subscription predicate lists. Verify the memory
	// accounting reflects that.
	without, _, _ := newEngine(Options{})
	with, _, _ := newEngine(Options{SupportUnsubscribe: true})
	for i := 0; i < 50; i++ {
		expr := boolexpr.NewAnd(
			boolexpr.NewOr(boolexpr.Pred("a", predicate.Gt, i), boolexpr.Pred("a", predicate.Le, i-10)),
			boolexpr.NewOr(boolexpr.Pred("b", predicate.Gt, i), boolexpr.Pred("b", predicate.Le, i-10)),
		)
		if _, err := without.Subscribe(expr); err != nil {
			t.Fatal(err)
		}
		if _, err := with.Subscribe(expr); err != nil {
			t.Fatal(err)
		}
	}
	if with.MemBytes() <= without.MemBytes() {
		t.Errorf("unsubscription support should cost memory: with=%d without=%d",
			with.MemBytes(), without.MemBytes())
	}
}

func TestAlgorithmName(t *testing.T) {
	if Classic.String() != "counting" || Variant.String() != "counting-variant" {
		t.Error("algorithm names wrong")
	}
	e, _, _ := newEngine(Options{Algorithm: Variant})
	if e.Name() != "counting-variant" {
		t.Errorf("Name = %q", e.Name())
	}
}

// TestEnginesAgreeProperty is the central cross-validation of the
// reproduction: the non-canonical engine and both counting baselines are
// registered with the same random subscriptions over a SHARED registry and
// index (the paper's setup) and must produce identical match sets on random
// events — and identical phase-two results on random fulfilled-predicate
// draws.
func TestEnginesAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	cfg := boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 3, NegatableOnly: true, Domain: 25}

	reg := predicate.NewRegistry()
	idx := index.New()
	nc := core.New(reg, idx, core.Options{})
	classic := New(reg, idx, Options{Algorithm: Classic})
	variant := New(reg, idx, Options{Algorithm: Variant, SupportUnsubscribe: true})

	type entry struct {
		expr boolexpr.Expr
		nc   matcher.SubID
		cl   matcher.SubID
		va   matcher.SubID
	}
	var subs []entry
	for len(subs) < 60 {
		x := boolexpr.RandomExpr(rng, cfg)
		// Skip expressions the canonical engines cannot register; the
		// non-canonical engine accepts them all — that asymmetry is the
		// paper's expressiveness point, covered elsewhere.
		d, err := boolexpr.ToDNF(x, DefaultMaxDisjuncts)
		if err != nil || !d.AllPositive() || len(d) == 0 {
			continue
		}
		ncID, err := nc.Subscribe(x)
		if err != nil {
			t.Fatal(err)
		}
		clID, err := classic.Subscribe(x)
		if err != nil {
			t.Fatal(err)
		}
		vaID, err := variant.Subscribe(x)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, entry{expr: x, nc: ncID, cl: clID, va: vaID})
	}

	// Full-pipeline agreement on random events.
	for trial := 0; trial < 300; trial++ {
		ev := randomEvent(rng)
		want := map[int]bool{} // index into subs
		for i, s := range subs {
			if s.expr.Eval(ev) {
				want[i] = true
			}
		}
		checkMatch(t, "non-canonical", nc.Match(ev), want, func(i int) matcher.SubID { return subs[i].nc }, ev)
		checkMatch(t, "counting", classic.Match(ev), want, func(i int) matcher.SubID { return subs[i].cl }, ev)
		checkMatch(t, "variant", variant.Match(ev), want, func(i int) matcher.SubID { return subs[i].va }, ev)
	}

	// Phase-two agreement on random fulfilled-predicate draws.
	maxID := reg.Cap()
	for trial := 0; trial < 200; trial++ {
		var fulfilled []predicate.ID
		assign := map[predicate.ID]bool{}
		for id := 1; id <= maxID; id++ {
			if rng.Intn(4) == 0 {
				fulfilled = append(fulfilled, predicate.ID(id))
				assign[predicate.ID(id)] = true
			}
		}
		evalWith := func(x boolexpr.Expr) bool {
			return x.EvalWith(func(p predicate.P) bool {
				// Identify the predicate's ID by re-interning.
				pid := reg.Intern(p)
				reg.Release(pid)
				return assign[pid]
			})
		}
		want := map[int]bool{}
		for i, s := range subs {
			if evalWith(s.expr) {
				want[i] = true
			}
		}
		checkMatch(t, "non-canonical/p2", nc.MatchPredicates(fulfilled), want, func(i int) matcher.SubID { return subs[i].nc }, event.Event{})
		checkMatch(t, "counting/p2", classic.MatchPredicates(fulfilled), want, func(i int) matcher.SubID { return subs[i].cl }, event.Event{})
		checkMatch(t, "variant/p2", variant.MatchPredicates(fulfilled), want, func(i int) matcher.SubID { return subs[i].va }, event.Event{})
	}
}

// TestConcurrentAccess exercises the counting engine under parallel
// subscribe, unsubscribe and match; run with -race.
func TestConcurrentAccess(t *testing.T) {
	e, _, _ := newEngine(Options{SupportUnsubscribe: true})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []matcher.SubID
			for i := 0; i < 200; i++ {
				switch rng.Intn(3) {
				case 0:
					id, err := e.Subscribe(boolexpr.NewOr(
						boolexpr.Pred("a", predicate.Gt, rng.Intn(50)),
						boolexpr.Pred("b", predicate.Lt, rng.Intn(50)),
					))
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				case 1:
					if len(mine) > 0 {
						id := mine[len(mine)-1]
						mine = mine[:len(mine)-1]
						if err := e.Unsubscribe(id); err != nil {
							t.Error(err)
							return
						}
					}
				default:
					e.Match(event.New().Set("a", rng.Intn(50)).Set("b", rng.Intn(50)))
				}
			}
		}()
	}
	wg.Wait()
}

func checkMatch(t *testing.T, name string, got []matcher.SubID, want map[int]bool, idOf func(int) matcher.SubID, ev event.Event) {
	t.Helper()
	wantIDs := map[matcher.SubID]bool{}
	for i := range want {
		wantIDs[idOf(i)] = true
	}
	if !sameSubs(got, wantIDs) {
		t.Fatalf("%s: Match(%s) = %v, want %v", name, ev, got, wantIDs)
	}
}

func randomEvent(rng *rand.Rand) event.Event {
	ev := event.New()
	for i := 0; i < 8; i++ {
		if rng.Intn(2) == 0 {
			continue
		}
		attr := "a" + string(rune('0'+i))
		switch rng.Intn(4) {
		case 0:
			ev = ev.Set(attr, "s"+fmt.Sprint(rng.Intn(25)))
		case 1:
			ev = ev.Set(attr, float64(rng.Intn(25))+0.5)
		default:
			ev = ev.Set(attr, rng.Intn(25))
		}
	}
	return ev
}
