// Package counting implements the paper's two baselines: the classic
// counting algorithm and its candidate-driven variant (paper §3.3).
//
// Both accept only conjunctive subscriptions, so arbitrary Boolean
// subscriptions are transformed into DNF at registration and every disjunct
// is registered as a separate conjunctive subscription — the canonical
// treatment the paper argues against (§2). The data structures follow the
// memory-friendly list/array implementation of Ashayer et al. referenced by
// the paper: a subscription-predicate count vector and a hit vector with one
// byte per (transformed) subscription, plus the predicate-subscription
// association table.
//
// Subscription matching:
//
//   - classic: increment hit counters for every subscription of every
//     fulfilled predicate, then scan ALL registered conjunctive
//     subscriptions comparing hits against predicate counts. The scan is
//     linear in the transformed subscription count — the source of the
//     linear curves in Fig. 3.
//   - variant: record each conjunctive subscription on first touch while
//     incrementing, then compare only those candidates. Matching work
//     scales with the fulfilled-predicate count instead of the total
//     subscription count.
//
// Matches of conjunctive units are deduplicated back to their original
// subscription before being returned.
package counting

import (
	"fmt"
	"sync"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
)

// Algorithm selects the subscription-matching strategy.
type Algorithm uint8

// The two baseline algorithms.
const (
	// Classic is the counting algorithm with a full scan over all
	// transformed subscriptions per event.
	Classic Algorithm = iota + 1
	// Variant compares only candidate subscriptions (paper §3.3).
	Variant
)

func (a Algorithm) String() string {
	switch a {
	case Classic:
		return "counting"
	case Variant:
		return "counting-variant"
	default:
		return fmt.Sprintf("algorithm(%d)", uint8(a))
	}
}

// MaxConjPredicates is the paper's bound: "we assume a maximum of 256
// predicates per subscription and use 1 byte per entry in hit and
// subscription-predicate count vector". With one byte per counter the
// largest representable predicate count is 255.
const MaxConjPredicates = 255

// DefaultMaxDisjuncts bounds the DNF blow-up accepted per subscription.
const DefaultMaxDisjuncts = 1 << 16

// Options configures the engine.
type Options struct {
	// Algorithm selects Classic or Variant (default Classic).
	Algorithm Algorithm
	// MaxDisjuncts bounds the DNF size per subscription
	// (default DefaultMaxDisjuncts).
	MaxDisjuncts int
	// ComplementNegations rewrites negated literals into complemented
	// operators (¬(a<5) → a≥5) instead of rejecting them. This is the
	// strong-negation semantics; see boolexpr.ComplementLiterals for the
	// caveat on absent attributes.
	ComplementNegations bool
	// SupportUnsubscribe retains per-unit predicate lists so that
	// Unsubscribe works. The paper's memory-friendly configuration turns
	// this off (§3.3) — doing so makes Unsubscribe return
	// matcher.ErrUnsubscribeUnsupported and is visible in MemBytes.
	SupportUnsubscribe bool
}

// Engine implements both counting baselines.
type Engine struct {
	mu   sync.Mutex
	reg  *predicate.Registry
	idx  *index.Index
	opts Options

	// Per-conjunctive-unit vectors ("1 byte per entry").
	counts    []uint8 // subscription-predicate count vector
	hits      []uint8 // hit vector
	orig      []matcher.SubID
	unitPreds [][]predicate.ID // only with SupportUnsubscribe
	liveUnit  []bool

	freeUnits []uint32
	liveUnits int

	// assoc is the predicate-subscription association table over units,
	// dense-indexed by predicate ID (array storage, following the paper's
	// memory-friendly implementation of the baseline).
	assoc [][]uint32 // assoc[pid-1] = units containing pid

	// Original subscriptions.
	subs    map[matcher.SubID][]uint32 // original → its units
	nextSub matcher.SubID

	// Scratch.
	origMark map[matcher.SubID]uint64
	epoch    uint64
	candBuf  []uint32
	predBuf  []predicate.ID
}

var _ matcher.Matcher = (*Engine)(nil)

// New builds a counting engine over the shared registry and index.
func New(reg *predicate.Registry, idx *index.Index, opts Options) *Engine {
	if opts.Algorithm == 0 {
		opts.Algorithm = Classic
	}
	if opts.MaxDisjuncts == 0 {
		opts.MaxDisjuncts = DefaultMaxDisjuncts
	}
	return &Engine{
		reg:      reg,
		idx:      idx,
		opts:     opts,
		subs:     make(map[matcher.SubID][]uint32, 1024),
		origMark: make(map[matcher.SubID]uint64, 1024),
	}
}

// Name implements matcher.Matcher.
func (e *Engine) Name() string { return e.opts.Algorithm.String() }

// Subscribe transforms the subscription into DNF and registers each
// disjunct as a conjunctive subscription.
func (e *Engine) Subscribe(expr boolexpr.Expr) (matcher.SubID, error) {
	if expr == nil {
		return 0, fmt.Errorf("counting: nil subscription expression")
	}
	dnf, err := boolexpr.ToDNF(expr, e.opts.MaxDisjuncts)
	if err != nil {
		return 0, fmt.Errorf("counting: canonicalise subscription: %w", err)
	}
	if !dnf.AllPositive() {
		if !e.opts.ComplementNegations {
			return 0, fmt.Errorf("counting: %w (enable ComplementNegations or use the non-canonical engine)",
				boolexpr.ErrNegativeLiteral)
		}
		if dnf, err = boolexpr.ComplementLiterals(dnf); err != nil {
			return 0, fmt.Errorf("counting: canonicalise subscription: %w", err)
		}
	}
	if len(dnf) == 0 {
		return 0, fmt.Errorf("counting: subscription is unsatisfiable after canonicalisation")
	}
	for _, conj := range dnf {
		if len(conj) > MaxConjPredicates {
			return 0, fmt.Errorf("counting: disjunct with %d predicates exceeds the %d-predicate counter limit",
				len(conj), MaxConjPredicates)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	e.nextSub++
	sid := e.nextSub
	units := make([]uint32, 0, len(dnf))
	for _, conj := range dnf {
		u := e.allocUnitLocked()
		e.counts[u] = uint8(len(conj))
		e.hits[u] = 0
		e.orig[u] = sid
		e.liveUnit[u] = true
		var keep []predicate.ID
		if e.opts.SupportUnsubscribe {
			keep = make([]predicate.ID, 0, len(conj))
		}
		for _, lit := range conj {
			pid := e.reg.Intern(lit.Pred)
			if e.reg.Refs(pid) == 1 {
				e.idx.Add(pid, lit.Pred)
			}
			ai := int(pid) - 1
			if ai >= len(e.assoc) {
				e.assoc = append(e.assoc, make([][]uint32, ai+1-len(e.assoc))...)
			}
			e.assoc[ai] = append(e.assoc[ai], u)
			if e.opts.SupportUnsubscribe {
				keep = append(keep, pid)
			}
		}
		if e.opts.SupportUnsubscribe {
			e.unitPreds[u] = keep
		}
		units = append(units, u)
	}
	e.subs[sid] = units
	e.liveUnits += len(units)
	return sid, nil
}

func (e *Engine) allocUnitLocked() uint32 {
	if n := len(e.freeUnits); n > 0 {
		u := e.freeUnits[n-1]
		e.freeUnits = e.freeUnits[:n-1]
		return u
	}
	e.counts = append(e.counts, 0)
	e.hits = append(e.hits, 0)
	e.orig = append(e.orig, 0)
	e.liveUnit = append(e.liveUnit, false)
	if e.opts.SupportUnsubscribe {
		e.unitPreds = append(e.unitPreds, nil)
	}
	return uint32(len(e.counts) - 1)
}

// Unsubscribe removes an original subscription and all its conjunctive
// units. Without SupportUnsubscribe the engine does not retain the
// per-unit predicate lists required to shrink the association table, and
// the paper notes this complication (§2.1, footnote 1): it returns
// matcher.ErrUnsubscribeUnsupported.
func (e *Engine) Unsubscribe(id matcher.SubID) error {
	if !e.opts.SupportUnsubscribe {
		return matcher.ErrUnsubscribeUnsupported
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	units, ok := e.subs[id]
	if !ok {
		return fmt.Errorf("%w: %d", matcher.ErrUnknownSubscription, id)
	}
	for _, u := range units {
		for _, pid := range e.unitPreds[u] {
			ai := int(pid) - 1
			e.assoc[ai] = removeUnit(e.assoc[ai], u)
			if len(e.assoc[ai]) == 0 {
				e.assoc[ai] = nil // release backing storage
			}
			p, err := e.reg.Get(pid)
			if err != nil {
				return fmt.Errorf("counting: unsubscribe %d: %w", id, err)
			}
			died, err := e.reg.Release(pid)
			if err != nil {
				return fmt.Errorf("counting: unsubscribe %d: %w", id, err)
			}
			if died {
				e.idx.Remove(pid, p)
			}
		}
		e.unitPreds[u] = nil
		e.liveUnit[u] = false
		e.counts[u] = 0
		e.hits[u] = 0
		e.orig[u] = 0
		e.freeUnits = append(e.freeUnits, u)
	}
	e.liveUnits -= len(units)
	delete(e.subs, id)
	return nil
}

func removeUnit(s []uint32, u uint32) []uint32 {
	for i, x := range s {
		if x == u {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Match runs both filtering phases.
func (e *Engine) Match(ev event.Event) []matcher.SubID {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.predBuf = e.idx.Match(ev, e.predBuf[:0])
	return e.matchPredicatesLocked(e.predBuf)
}

// MatchBatch runs both filtering phases for every event under a single
// lock acquisition; the per-call scratch vectors are reused across the
// batch like they are across sequential Match calls.
func (e *Engine) MatchBatch(evs []event.Event) [][]matcher.SubID {
	if len(evs) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]matcher.SubID, len(evs))
	for i, ev := range evs {
		e.predBuf = e.idx.Match(ev, e.predBuf[:0])
		out[i] = e.matchPredicatesLocked(e.predBuf)
	}
	return out
}

// MatchPredicates runs phase two only.
func (e *Engine) MatchPredicates(fulfilled []predicate.ID) []matcher.SubID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.matchPredicatesLocked(fulfilled)
}

// MatchPredicatesAlg runs phase two with an explicit algorithm choice,
// overriding the configured one. The benchmark harness uses it to time both
// counting strategies over a single registered engine (their registration
// state is identical; only subscription matching differs).
func (e *Engine) MatchPredicatesAlg(alg Algorithm, fulfilled []predicate.ID) []matcher.SubID {
	e.mu.Lock()
	defer e.mu.Unlock()
	if alg == Variant {
		return e.matchVariantLocked(fulfilled)
	}
	return e.matchClassicLocked(fulfilled)
}

func (e *Engine) matchPredicatesLocked(fulfilled []predicate.ID) []matcher.SubID {
	if e.opts.Algorithm == Variant {
		return e.matchVariantLocked(fulfilled)
	}
	return e.matchClassicLocked(fulfilled)
}

// matchClassicLocked: predicate counting then a full scan of the hit and
// count vectors — "the number of matching predicates has to be compared to
// the total number of predicates for all registered subscriptions".
func (e *Engine) matchClassicLocked(fulfilled []predicate.ID) []matcher.SubID {
	for _, pid := range fulfilled {
		for _, u := range e.assocOf(pid) {
			e.hits[u]++
		}
	}
	var out []matcher.SubID
	e.epoch++
	for u := range e.hits {
		if e.hits[u] != 0 {
			if e.hits[u] == e.counts[u] && e.liveUnit[u] {
				out = e.appendOrigLocked(out, e.orig[u])
			}
			e.hits[u] = 0
		}
	}
	return out
}

// matchVariantLocked: candidate subscriptions are recorded on first touch;
// only their counters are compared and reset.
func (e *Engine) matchVariantLocked(fulfilled []predicate.ID) []matcher.SubID {
	e.candBuf = e.candBuf[:0]
	for _, pid := range fulfilled {
		for _, u := range e.assocOf(pid) {
			if e.hits[u] == 0 {
				e.candBuf = append(e.candBuf, u)
			}
			e.hits[u]++
		}
	}
	var out []matcher.SubID
	e.epoch++
	for _, u := range e.candBuf {
		if e.hits[u] == e.counts[u] && e.liveUnit[u] {
			out = e.appendOrigLocked(out, e.orig[u])
		}
		e.hits[u] = 0
	}
	return out
}

// appendOrigLocked deduplicates matched units back to original
// subscriptions via an epoch-stamped map.
func (e *Engine) appendOrigLocked(out []matcher.SubID, sid matcher.SubID) []matcher.SubID {
	if e.origMark[sid] == e.epoch {
		return out
	}
	e.origMark[sid] = e.epoch
	return append(out, sid)
}

// NumSubscriptions implements matcher.Matcher.
func (e *Engine) NumSubscriptions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.subs)
}

// NumUnits returns the number of live conjunctive (post-DNF) subscriptions —
// the problem size the counting algorithms actually filter over.
func (e *Engine) NumUnits() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.liveUnits
}

// MemBytes estimates phase-two memory: the hit vector, the count vector, the
// unit→original mapping, the association table, and — only with
// unsubscription support — the per-unit predicate lists.
func (e *Engine) MemBytes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	const (
		mapEntryOverhead = 48
		sliceHeader      = 24
		unitIDSize       = 4
		subIDSize        = 8
	)
	total := len(e.counts) // count vector, 1 byte per unit
	total += len(e.hits)   // hit vector, 1 byte per unit
	total += len(e.orig) * subIDSize
	total += len(e.liveUnit)
	total += len(e.assoc) * sliceHeader
	for _, units := range e.assoc {
		total += len(units) * unitIDSize
	}
	for _, units := range e.subs {
		total += mapEntryOverhead + len(units)*unitIDSize
	}
	if e.opts.SupportUnsubscribe {
		for _, preds := range e.unitPreds {
			total += 24 + len(preds)*4
		}
	}
	return total
}

// assocOf returns the units containing pid, tolerating predicates that were
// registered only by another engine sharing the registry.
func (e *Engine) assocOf(pid predicate.ID) []uint32 {
	if i := int(pid) - 1; i < len(e.assoc) {
		return e.assoc[i]
	}
	return nil
}
