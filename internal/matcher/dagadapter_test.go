package matcher_test

import (
	"fmt"
	"sync"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/cover/dag"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
)

// dagEngine is a test-local Matcher that fronts a core engine with the
// covering poset of internal/cover/dag, mirroring the broker's
// AggregateDAG wiring: only frontier (uncovered-maximal) filters occupy
// engine entries, covered subscriptions hang off poset nodes and are
// re-evaluated during the post-match frontier walk. Registering it in
// engines() makes the whole contract suite exercise the aggregation
// path: ID stability, fresh-slice aliasing, bookkeeping, and
// MatchBatch ≡ sequential Match.
type dagEngine struct {
	mu   sync.Mutex
	eng  matcher.Matcher
	d    *dag.DAG
	next matcher.SubID
	subs map[matcher.SubID]*dag.Node // live subscription -> its poset node

	engID     map[*dag.Node]matcher.SubID // frontier node -> engine entry
	nodeByEng map[matcher.SubID]*dag.Node // engine entry -> frontier node
}

// dagMembers is the per-node subscriber set stored in Node.Data.
type dagMembers map[matcher.SubID]bool

func newDAGEngine() *dagEngine {
	return &dagEngine{
		eng:       core.New(predicate.NewRegistry(), index.New(), core.Options{}),
		d:         dag.New(),
		subs:      make(map[matcher.SubID]*dag.Node),
		engID:     make(map[*dag.Node]matcher.SubID),
		nodeByEng: make(map[matcher.SubID]*dag.Node),
	}
}

func (m *dagEngine) Name() string { return "dag-aggregated" }

func (m *dagEngine) members(n *dag.Node) dagMembers {
	ms, ok := n.Data.(dagMembers)
	if !ok {
		ms = make(dagMembers)
		n.Data = ms
	}
	return ms
}

func (m *dagEngine) Subscribe(expr boolexpr.Expr) (matcher.SubID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := m.d.Add(expr)
	if res.New && res.Frontier {
		eid, err := m.eng.Subscribe(expr)
		if err != nil {
			res.Node.Data = nil
			m.d.Release(res.Node)
			return 0, err
		}
		m.engID[res.Node] = eid
		m.nodeByEng[eid] = res.Node
	}
	// Subscribe-before-retract: the demoted entries' subscribers stay
	// reachable through the new node's subtree.
	for _, dem := range res.Demoted {
		eid := m.engID[dem]
		if err := m.eng.Unsubscribe(eid); err != nil {
			return 0, err
		}
		delete(m.engID, dem)
		delete(m.nodeByEng, eid)
	}
	m.next++
	id := m.next
	m.members(res.Node)[id] = true
	m.subs[id] = res.Node
	return id, nil
}

func (m *dagEngine) Unsubscribe(id matcher.SubID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.subs[id]
	if !ok {
		return fmt.Errorf("dag-aggregated: %w: %d", matcher.ErrUnknownSubscription, id)
	}
	delete(m.subs, id)
	delete(m.members(n), id)
	rel := m.d.Release(n)
	if !rel.Died {
		return nil
	}
	// Promote orphaned descendants into the engine before retracting the
	// dying entry, so no covered subscriber is ever unreachable.
	for _, p := range rel.Promoted {
		eid, err := m.eng.Subscribe(p.Expr())
		if err != nil {
			return err
		}
		m.engID[p] = eid
		m.nodeByEng[eid] = p
	}
	if rel.WasFrontier {
		eid := m.engID[n]
		delete(m.engID, n)
		delete(m.nodeByEng, eid)
		if err := m.eng.Unsubscribe(eid); err != nil {
			return err
		}
	}
	n.Data = nil
	return nil
}

// collect appends the subscriber IDs of n (already known to match) and of
// every covered descendant that the event also fulfils. A failing node
// soundly prunes its subtree: descendants match subsets of their parents.
func (m *dagEngine) collect(n *dag.Node, ev event.Event, visited map[*dag.Node]bool, out []matcher.SubID) []matcher.SubID {
	if visited[n] {
		return out
	}
	visited[n] = true
	if ms, ok := n.Data.(dagMembers); ok {
		for id := range ms {
			out = append(out, id)
		}
	}
	for _, c := range n.Children() {
		if visited[c] || !c.Expr().Eval(ev) {
			if !visited[c] {
				visited[c] = true
			}
			continue
		}
		out = m.collect(c, ev, visited, out)
	}
	return out
}

func (m *dagEngine) matchLocked(ev event.Event) []matcher.SubID {
	out := make([]matcher.SubID, 0, 4)
	visited := make(map[*dag.Node]bool)
	for _, eid := range m.eng.Match(ev) {
		out = m.collect(m.nodeByEng[eid], ev, visited, out)
	}
	return out
}

func (m *dagEngine) Match(ev event.Event) []matcher.SubID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.matchLocked(ev)
}

func (m *dagEngine) MatchBatch(evs []event.Event) [][]matcher.SubID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]matcher.SubID, len(evs))
	for i, ev := range evs {
		out[i] = m.matchLocked(ev)
	}
	return out
}

// MatchPredicates cannot be supported by the aggregation wrapper: covered
// descendants are decided by re-evaluating the event, and a fulfilled-
// predicate set carries no event. No contract test exercises it on the
// engines() map; failing loudly here beats returning an unsound subset.
func (m *dagEngine) MatchPredicates([]predicate.ID) []matcher.SubID {
	panic("dag-aggregated test adapter: MatchPredicates unsupported (descendant evaluation needs the event)")
}

func (m *dagEngine) NumSubscriptions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.subs)
}

// NumUnits reports the engine-resident units — the covering frontier.
// That it can be far below NumSubscriptions is the aggregation claim
// itself; the contract suite only requires NumUnits ≥ NumSubscriptions
// for a single registered subscription, which trivially holds.
func (m *dagEngine) NumUnits() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.NumUnits()
}

func (m *dagEngine) MemBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.MemBytes()
}
