package matcher_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/counting"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/shard"
)

// engines returns every Matcher implementation over its own fresh
// registry/index pair.
func engines() map[string]matcher.Matcher {
	newNC := func() matcher.Matcher {
		return core.New(predicate.NewRegistry(), index.New(), core.Options{})
	}
	newCnt := func(alg counting.Algorithm) matcher.Matcher {
		return counting.New(predicate.NewRegistry(), index.New(), counting.Options{
			Algorithm: alg, SupportUnsubscribe: true,
		})
	}
	return map[string]matcher.Matcher{
		"non-canonical":    newNC(),
		"counting":         newCnt(counting.Classic),
		"counting-variant": newCnt(counting.Variant),
		"sharded-1":        shard.New(shard.Options{Shards: 1}),
		"sharded-4":        shard.New(shard.Options{Shards: 4, Parallel: 2}),
		"dag-aggregated":   newDAGEngine(),
	}
}

func TestErrorValues(t *testing.T) {
	if matcher.ErrUnknownSubscription == nil || matcher.ErrUnsubscribeUnsupported == nil {
		t.Fatal("contract errors must be non-nil sentinels")
	}
	if errors.Is(matcher.ErrUnknownSubscription, matcher.ErrUnsubscribeUnsupported) {
		t.Fatal("sentinel errors must be distinct")
	}
	// Engines wrap the sentinels with %w, so errors.Is must see through.
	wrapped := fmt.Errorf("core: %w: 17", matcher.ErrUnknownSubscription)
	if !errors.Is(wrapped, matcher.ErrUnknownSubscription) {
		t.Fatal("wrapped sentinel not recognised by errors.Is")
	}
}

func TestUnsubscribeUnknownIsSentinel(t *testing.T) {
	for name, m := range engines() {
		if err := m.Unsubscribe(12345); !errors.Is(err, matcher.ErrUnknownSubscription) {
			t.Errorf("%s: Unsubscribe(unknown) = %v, want ErrUnknownSubscription", name, err)
		}
	}
}

func TestUnsubscribeUnsupportedIsSentinel(t *testing.T) {
	m := counting.New(predicate.NewRegistry(), index.New(), counting.Options{
		Algorithm: counting.Classic, SupportUnsubscribe: false,
	})
	id, err := m.Subscribe(boolexpr.Pred("a", predicate.Eq, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Unsubscribe(id); !errors.Is(err, matcher.ErrUnsubscribeUnsupported) {
		t.Errorf("Unsubscribe = %v, want ErrUnsubscribeUnsupported", err)
	}
}

// TestMatchReturnsFreshSlice pins the documented aliasing contract: the
// slice returned by Match must not be overwritten by a later call.
func TestMatchReturnsFreshSlice(t *testing.T) {
	for name, m := range engines() {
		id1, err := m.Subscribe(boolexpr.Pred("a", predicate.Eq, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Subscribe(boolexpr.Pred("a", predicate.Eq, 2)); err != nil {
			t.Fatal(err)
		}
		first := m.Match(event.New().Set("a", 1))
		second := m.Match(event.New().Set("a", 2))
		if len(first) != 1 || first[0] != id1 {
			t.Errorf("%s: first match corrupted after second call: %v (second %v)", name, first, second)
		}
	}
}

// TestCountsAndName pins the bookkeeping part of the contract.
func TestCountsAndName(t *testing.T) {
	for name, m := range engines() {
		if m.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
		if m.NumSubscriptions() != 0 || m.NumUnits() != 0 {
			t.Errorf("%s: fresh engine not empty", name)
		}
		base := m.MemBytes()
		id, err := m.Subscribe(boolexpr.NewOr(
			boolexpr.Pred("a", predicate.Eq, 1),
			boolexpr.Pred("b", predicate.Eq, 2),
		))
		if err != nil {
			t.Fatal(err)
		}
		if m.NumSubscriptions() != 1 {
			t.Errorf("%s: NumSubscriptions = %d, want 1", name, m.NumSubscriptions())
		}
		if m.NumUnits() < m.NumSubscriptions() {
			t.Errorf("%s: NumUnits %d < NumSubscriptions %d", name, m.NumUnits(), m.NumSubscriptions())
		}
		if m.MemBytes() <= base {
			t.Errorf("%s: MemBytes did not grow on Subscribe", name)
		}
		if err := m.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
		if m.NumSubscriptions() != 0 {
			t.Errorf("%s: NumSubscriptions after Unsubscribe = %d", name, m.NumSubscriptions())
		}
	}
}

// sortedIDs returns a sorted copy for order-insensitive comparison.
func sortedIDs(ids []matcher.SubID) []matcher.SubID {
	out := append([]matcher.SubID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []matcher.SubID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchEvent draws a random event over the attribute pool a0..a5 with the
// value shapes the random expressions quantify over.
func batchEvent(rng *rand.Rand) event.Event {
	ev := event.New()
	for i := 0; i < 6; i++ {
		attr := fmt.Sprintf("a%d", i)
		switch rng.Intn(5) {
		case 0: // absent
		case 1:
			ev = ev.Set(attr, rng.Intn(50))
		case 2:
			ev = ev.Set(attr, float64(rng.Intn(50))+0.5)
		case 3:
			ev = ev.Set(attr, "s"+fmt.Sprint(rng.Intn(20)))
		default:
			ev = ev.Set(attr, rng.Intn(2) == 0)
		}
	}
	return ev
}

// TestMatchBatchConsistency pins the batch part of the contract: one
// MatchBatch pass returns exactly what N sequential Match calls return
// against the same store, for every engine. (The counting engines reject
// NOT, so the random workload stays within AND/OR.)
func TestMatchBatchConsistency(t *testing.T) {
	for name, m := range engines() {
		rng := rand.New(rand.NewSource(11))
		cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3}
		for i := 0; i < 60; i++ {
			if _, err := m.Subscribe(boolexpr.RandomExpr(rng, cfg)); err != nil {
				t.Fatalf("%s: subscribe %d: %v", name, i, err)
			}
		}
		evs := make([]event.Event, 32)
		for i := range evs {
			evs[i] = batchEvent(rng)
		}
		batch := m.MatchBatch(evs)
		if len(batch) != len(evs) {
			t.Fatalf("%s: MatchBatch returned %d results for %d events", name, len(batch), len(evs))
		}
		anyMatch := false
		for i, ev := range evs {
			single := m.Match(ev)
			if !equalIDs(sortedIDs(batch[i]), sortedIDs(single)) {
				t.Fatalf("%s: event %d diverged\n  batch:  %v\n  single: %v", name, i, batch[i], single)
			}
			anyMatch = anyMatch || len(single) > 0
		}
		if !anyMatch {
			t.Fatalf("%s: workload produced no matches at all; test is vacuous", name)
		}
		if got := m.MatchBatch(nil); len(got) != 0 {
			t.Errorf("%s: MatchBatch(nil) = %v, want empty", name, got)
		}
	}
}

// TestMatchBatchReturnsFreshSlices extends the aliasing contract to
// batches: neither a later MatchBatch nor a later Match may overwrite a
// previously returned batch result.
func TestMatchBatchReturnsFreshSlices(t *testing.T) {
	for name, m := range engines() {
		id1, err := m.Subscribe(boolexpr.Pred("a", predicate.Eq, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Subscribe(boolexpr.Pred("a", predicate.Eq, 2)); err != nil {
			t.Fatal(err)
		}
		first := m.MatchBatch([]event.Event{event.New().Set("a", 1)})
		m.MatchBatch([]event.Event{event.New().Set("a", 2)})
		m.Match(event.New().Set("a", 2))
		if len(first) != 1 || len(first[0]) != 1 || first[0][0] != id1 {
			t.Errorf("%s: first batch result corrupted by later calls: %v", name, first)
		}
	}
}

// TestCountingMatchPredicatesAlg covers the counting engine's explicit-
// algorithm entry point, which the suite previously skipped: on the same
// registered state, MatchPredicatesAlg(Classic) and
// MatchPredicatesAlg(Variant) must agree with each other and with
// MatchPredicates of an engine configured for that algorithm, regardless
// of which algorithm the receiving engine was configured with.
func TestCountingMatchPredicatesAlg(t *testing.T) {
	newCnt := func(alg counting.Algorithm) *counting.Engine {
		return counting.New(predicate.NewRegistry(), index.New(), counting.Options{
			Algorithm: alg, SupportUnsubscribe: true,
		})
	}
	classic, variant := newCnt(counting.Classic), newCnt(counting.Variant)
	rng := rand.New(rand.NewSource(23))
	cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3}
	for i := 0; i < 80; i++ {
		x := boolexpr.RandomExpr(rng, cfg)
		if _, err := classic.Subscribe(x); err != nil {
			t.Fatal(err)
		}
		if _, err := variant.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	// Both engines registered identical workloads against fresh registries,
	// so predicate IDs coincide and a fulfilled set means the same thing to
	// both.
	anyMatch := false
	for trial := 0; trial < 50; trial++ {
		var fulfilled []predicate.ID
		for id := 1; id <= 300; id++ {
			if rng.Intn(6) == 0 {
				fulfilled = append(fulfilled, predicate.ID(id))
			}
		}
		want := sortedIDs(classic.MatchPredicates(fulfilled))
		anyMatch = anyMatch || len(want) > 0
		cases := map[string][]matcher.SubID{
			"classic.Alg(Classic)": classic.MatchPredicatesAlg(counting.Classic, fulfilled),
			"classic.Alg(Variant)": classic.MatchPredicatesAlg(counting.Variant, fulfilled),
			"variant.Alg(Classic)": variant.MatchPredicatesAlg(counting.Classic, fulfilled),
			"variant.Alg(Variant)": variant.MatchPredicatesAlg(counting.Variant, fulfilled),
			"variant.configured":   variant.MatchPredicates(fulfilled),
		}
		for label, got := range cases {
			if !equalIDs(sortedIDs(got), want) {
				t.Fatalf("trial %d: %s = %v, want %v", trial, label, got, want)
			}
		}
	}
	if !anyMatch {
		t.Fatal("no trial produced matches; test is vacuous")
	}
}
