package matcher_test

import (
	"errors"
	"fmt"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/counting"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/shard"
)

// engines returns every Matcher implementation over its own fresh
// registry/index pair.
func engines() map[string]matcher.Matcher {
	newNC := func() matcher.Matcher {
		return core.New(predicate.NewRegistry(), index.New(), core.Options{})
	}
	newCnt := func(alg counting.Algorithm) matcher.Matcher {
		return counting.New(predicate.NewRegistry(), index.New(), counting.Options{
			Algorithm: alg, SupportUnsubscribe: true,
		})
	}
	return map[string]matcher.Matcher{
		"non-canonical":    newNC(),
		"counting":         newCnt(counting.Classic),
		"counting-variant": newCnt(counting.Variant),
		"sharded-1":        shard.New(shard.Options{Shards: 1}),
		"sharded-4":        shard.New(shard.Options{Shards: 4, Parallel: 2}),
	}
}

func TestErrorValues(t *testing.T) {
	if matcher.ErrUnknownSubscription == nil || matcher.ErrUnsubscribeUnsupported == nil {
		t.Fatal("contract errors must be non-nil sentinels")
	}
	if errors.Is(matcher.ErrUnknownSubscription, matcher.ErrUnsubscribeUnsupported) {
		t.Fatal("sentinel errors must be distinct")
	}
	// Engines wrap the sentinels with %w, so errors.Is must see through.
	wrapped := fmt.Errorf("core: %w: 17", matcher.ErrUnknownSubscription)
	if !errors.Is(wrapped, matcher.ErrUnknownSubscription) {
		t.Fatal("wrapped sentinel not recognised by errors.Is")
	}
}

func TestUnsubscribeUnknownIsSentinel(t *testing.T) {
	for name, m := range engines() {
		if err := m.Unsubscribe(12345); !errors.Is(err, matcher.ErrUnknownSubscription) {
			t.Errorf("%s: Unsubscribe(unknown) = %v, want ErrUnknownSubscription", name, err)
		}
	}
}

func TestUnsubscribeUnsupportedIsSentinel(t *testing.T) {
	m := counting.New(predicate.NewRegistry(), index.New(), counting.Options{
		Algorithm: counting.Classic, SupportUnsubscribe: false,
	})
	id, err := m.Subscribe(boolexpr.Pred("a", predicate.Eq, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Unsubscribe(id); !errors.Is(err, matcher.ErrUnsubscribeUnsupported) {
		t.Errorf("Unsubscribe = %v, want ErrUnsubscribeUnsupported", err)
	}
}

// TestMatchReturnsFreshSlice pins the documented aliasing contract: the
// slice returned by Match must not be overwritten by a later call.
func TestMatchReturnsFreshSlice(t *testing.T) {
	for name, m := range engines() {
		id1, err := m.Subscribe(boolexpr.Pred("a", predicate.Eq, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Subscribe(boolexpr.Pred("a", predicate.Eq, 2)); err != nil {
			t.Fatal(err)
		}
		first := m.Match(event.New().Set("a", 1))
		second := m.Match(event.New().Set("a", 2))
		if len(first) != 1 || first[0] != id1 {
			t.Errorf("%s: first match corrupted after second call: %v (second %v)", name, first, second)
		}
	}
}

// TestCountsAndName pins the bookkeeping part of the contract.
func TestCountsAndName(t *testing.T) {
	for name, m := range engines() {
		if m.Name() == "" {
			t.Errorf("%s: empty Name()", name)
		}
		if m.NumSubscriptions() != 0 || m.NumUnits() != 0 {
			t.Errorf("%s: fresh engine not empty", name)
		}
		base := m.MemBytes()
		id, err := m.Subscribe(boolexpr.NewOr(
			boolexpr.Pred("a", predicate.Eq, 1),
			boolexpr.Pred("b", predicate.Eq, 2),
		))
		if err != nil {
			t.Fatal(err)
		}
		if m.NumSubscriptions() != 1 {
			t.Errorf("%s: NumSubscriptions = %d, want 1", name, m.NumSubscriptions())
		}
		if m.NumUnits() < m.NumSubscriptions() {
			t.Errorf("%s: NumUnits %d < NumSubscriptions %d", name, m.NumUnits(), m.NumSubscriptions())
		}
		if m.MemBytes() <= base {
			t.Errorf("%s: MemBytes did not grow on Subscribe", name)
		}
		if err := m.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
		if m.NumSubscriptions() != 0 {
			t.Errorf("%s: NumSubscriptions after Unsubscribe = %d", name, m.NumSubscriptions())
		}
	}
}
