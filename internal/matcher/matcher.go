// Package matcher defines the engine interface shared by the non-canonical
// matcher (internal/core) and the counting baselines (internal/counting).
//
// All engines operate in the paper's two phases. Phase one (predicate
// matching) is shared infrastructure: engines are constructed over a common
// predicate.Registry and index.Index, so a fulfilled-predicate set drawn for
// an event is meaningful to every engine — exactly the experimental setup of
// paper §4, which measures phase two only ("the first phases use the same
// indexes in the same way in both approaches").
package matcher

import (
	"errors"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// SubID identifies a registered (original, pre-transformation) subscription
// within an engine.
type SubID uint64

// Errors common to engine implementations.
var (
	// ErrUnknownSubscription is returned by Unsubscribe for IDs that are not
	// currently registered.
	ErrUnknownSubscription = errors.New("matcher: unknown subscription id")

	// ErrUnsubscribeUnsupported is returned by engines configured without
	// unsubscription support (the paper's memory-friendly counting
	// configuration, §3.3).
	ErrUnsubscribeUnsupported = errors.New("matcher: engine configured without unsubscription support")
)

// Matcher is a two-phase filtering engine.
//
// Implementations are safe for concurrent use.
type Matcher interface {
	// Name identifies the algorithm (used in benchmark output).
	Name() string

	// Subscribe registers a subscription and returns its ID.
	Subscribe(expr boolexpr.Expr) (SubID, error)

	// Unsubscribe removes a subscription.
	Unsubscribe(id SubID) error

	// Match runs both phases and returns the IDs of all subscriptions the
	// event fulfils. The returned slice is freshly allocated.
	Match(ev event.Event) []SubID

	// MatchPredicates runs phase two only, taking the fulfilled-predicate
	// set as input. This is the operation the paper's experiments time.
	MatchPredicates(fulfilled []predicate.ID) []SubID

	// NumSubscriptions returns the number of registered original
	// subscriptions.
	NumSubscriptions() int

	// NumUnits returns the number of internally stored filtering units:
	// subscription trees for the non-canonical engine, conjunctive
	// (post-DNF) subscriptions for the counting engines. The ratio
	// NumUnits/NumSubscriptions is the transformation blow-up.
	NumUnits() int

	// MemBytes estimates the resident memory of all engine-owned phase-two
	// structures, excluding the shared registry and index.
	MemBytes() int
}
