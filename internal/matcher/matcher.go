// Package matcher defines the engine interface shared by the non-canonical
// matcher (internal/core) and the counting baselines (internal/counting).
//
// All engines operate in the paper's two phases. Phase one (predicate
// matching) is shared infrastructure: engines are constructed over a common
// predicate.Registry and index.Index, so a fulfilled-predicate set drawn for
// an event is meaningful to every engine — exactly the experimental setup of
// paper §4, which measures phase two only ("the first phases use the same
// indexes in the same way in both approaches").
package matcher

import (
	"errors"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// SubID identifies a registered (original, pre-transformation) subscription
// within an engine.
type SubID uint64

// Errors common to engine implementations.
var (
	// ErrUnknownSubscription is returned by Unsubscribe for IDs that are not
	// currently registered.
	ErrUnknownSubscription = errors.New("matcher: unknown subscription id")

	// ErrUnsubscribeUnsupported is returned by engines configured without
	// unsubscription support (the paper's memory-friendly counting
	// configuration, §3.3).
	ErrUnsubscribeUnsupported = errors.New("matcher: engine configured without unsubscription support")
)

// Matcher is a two-phase filtering engine.
//
// # Concurrency contract
//
// Implementations are safe for concurrent use. Match results reflect some
// store state covered by the call's lifetime: a subscription whose
// registration races a Match may or may not appear in that result, but
// every subscription registered before the call began and not removed must
// be decided exactly as its Boolean expression evaluates.
//
// The non-canonical engine (internal/core) additionally provides a
// genuinely concurrent read path: any number of in-flight
// Match/MatchPredicates calls proceed at once, and Subscribe/Unsubscribe
// exclude them only for the duration of the store mutation (an
// RWMutex-guarded store with pooled per-call match scratch). The counting
// baselines serialise all operations behind one mutex — they share per-call
// hit/count vectors and exist for the paper's comparisons, not for serving
// traffic — so code that needs parallel matching must use the non-canonical
// engine.
//
// The sharded engine (internal/shard) partitions subscriptions across N
// core engines — each with a private registry, index and lock — encoding
// the shard index in the high bits of SubID. Subscribe/Unsubscribe then
// write-lock a single shard, and Match fans out over all of them, so
// churn excludes only 1/N of the matching work.
//
// Engines constructed over a *shared* predicate.Registry and index.Index
// (the benchmarking setup of paper §4) synchronise only their own store:
// while one sharing engine mutates via Subscribe/Unsubscribe, no other
// sharing engine may run at all. Single-engine deployments — the broker —
// are unaffected; they own their registry and index.
type Matcher interface {
	// Name identifies the algorithm (used in benchmark output).
	Name() string

	// Subscribe registers a subscription and returns its ID.
	Subscribe(expr boolexpr.Expr) (SubID, error)

	// Unsubscribe removes a subscription.
	Unsubscribe(id SubID) error

	// Match runs both phases and returns the IDs of all subscriptions the
	// event fulfils. The returned slice is freshly allocated.
	Match(ev event.Event) []SubID

	// MatchBatch runs both phases for every event and returns the
	// per-event match sets, aligned with evs. Results are equivalent to
	// len(evs) sequential Match calls against an unchanging store, but the
	// engine amortises its per-call envelope over the batch: one lock
	// acquisition (and, for the sharded engine, one shard fan-out) covers
	// all events, so every event in a batch observes the same store state.
	// The rows are caller-owned but may share one backing arena: appending
	// to a row is safe (each row's capacity is capped, so growth
	// reallocates), while writes past a row's length are not.
	MatchBatch(evs []event.Event) [][]SubID

	// MatchPredicates runs phase two only, taking the fulfilled-predicate
	// set as input. This is the operation the paper's experiments time.
	MatchPredicates(fulfilled []predicate.ID) []SubID

	// NumSubscriptions returns the number of registered original
	// subscriptions.
	NumSubscriptions() int

	// NumUnits returns the number of internally stored filtering units:
	// subscription trees for the non-canonical engine, conjunctive
	// (post-DNF) subscriptions for the counting engines. The ratio
	// NumUnits/NumSubscriptions is the transformation blow-up.
	NumUnits() int

	// MemBytes estimates the resident memory of all engine-owned phase-two
	// structures, excluding the shared registry and index.
	MemBytes() int
}
