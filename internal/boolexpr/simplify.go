package boolexpr

// Simplify applies cheap structural rewrites that never change semantics:
//
//   - flatten nested conjunctions/disjunctions (binary → n-ary, paper §3.1)
//   - collapse single-child And/Or
//   - eliminate double negation
//   - deduplicate structurally identical siblings (idempotence)
//   - absorption: A ∧ (A ∨ B) → A and A ∨ (A ∧ B) → A
//
// The paper notes that current matching approaches "do not optimise
// subscriptions"; Simplify is the modest optimisation pass applied before
// registration in this implementation, and the ablation benches measure its
// effect.
func Simplify(e Expr) Expr {
	switch t := e.(type) {
	case Leaf:
		return t
	case Not:
		x := Simplify(t.X)
		if inner, ok := x.(Not); ok {
			return inner.X
		}
		return Not{X: x}
	case And:
		xs := simplifyChildren(t.Xs, true)
		xs = dedupSiblings(xs)
		xs = absorb(xs, true)
		if len(xs) == 1 {
			return xs[0]
		}
		return And{Xs: xs}
	case Or:
		xs := simplifyChildren(t.Xs, false)
		xs = dedupSiblings(xs)
		xs = absorb(xs, false)
		if len(xs) == 1 {
			return xs[0]
		}
		return Or{Xs: xs}
	default:
		return e
	}
}

// simplifyChildren simplifies each child and flattens same-operator nesting.
func simplifyChildren(xs []Expr, isAnd bool) []Expr {
	out := make([]Expr, 0, len(xs))
	for _, x := range xs {
		s := Simplify(x)
		switch c := s.(type) {
		case And:
			if isAnd {
				out = append(out, c.Xs...)
				continue
			}
		case Or:
			if !isAnd {
				out = append(out, c.Xs...)
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

func dedupSiblings(xs []Expr) []Expr {
	out := xs[:0]
	for _, x := range xs {
		dup := false
		for _, y := range out {
			if Equal(x, y) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// absorb removes siblings made redundant by absorption. For an And parent
// (isAnd=true): a sibling that is an Or containing some other sibling is
// redundant (A ∧ (A ∨ B) = A). Symmetrically for Or parents.
func absorb(xs []Expr, isAnd bool) []Expr {
	if len(xs) < 2 {
		return xs
	}
	keep := make([]bool, len(xs))
	for i := range keep {
		keep[i] = true
	}
	for i, x := range xs {
		var inner []Expr
		switch c := x.(type) {
		case Or:
			if isAnd {
				inner = c.Xs
			}
		case And:
			if !isAnd {
				inner = c.Xs
			}
		}
		if inner == nil {
			continue
		}
		for j, y := range xs {
			if i == j || !keep[i] {
				continue
			}
			// If y (kept sibling) appears inside x's operand list, x is
			// absorbed by y.
			for _, z := range inner {
				if Equal(y, z) {
					keep[i] = false
					break
				}
			}
		}
	}
	out := xs[:0]
	for i, x := range xs {
		if keep[i] {
			out = append(out, x)
		}
	}
	return out
}
