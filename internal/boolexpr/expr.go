// Package boolexpr defines the abstract syntax of subscriptions: arbitrary
// Boolean combinations (AND, OR, NOT) of predicates.
//
// The paper's central argument contrasts two treatments of such expressions:
// evaluating them directly (the non-canonical engine, internal/core) versus
// rewriting them into disjunctive normal form and registering each disjunct
// as a conjunctive subscription (the counting baselines, internal/counting).
// This package supplies both: the AST with direct evaluation, and the
// NNF/DNF transformations with their (worst-case exponential) size costs.
package boolexpr

import (
	"strings"

	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// Expr is a node of a subscription expression tree. Expressions are
// immutable once built; all transformations return new trees.
type Expr interface {
	// Eval evaluates the expression against an event by evaluating each
	// predicate leaf on the event's attributes.
	Eval(e event.Event) bool

	// EvalWith evaluates the expression under an arbitrary truth assignment
	// for predicates. It is the reference semantics that the encoded-tree
	// evaluator (internal/subtree) and the DNF rewrite must preserve.
	EvalWith(assign func(p predicate.P) bool) bool

	// String renders the expression in subscription-language syntax; the
	// output re-parses to an equivalent expression (internal/sublang).
	String() string

	// precedence for printing: Or < And < Not/Leaf.
	prec() int
}

// Leaf wraps a single predicate.
type Leaf struct {
	Pred predicate.P
}

// And is an n-ary conjunction. Binary operators are treated as n-ary ones,
// compacting subscription trees (paper §3.1).
type And struct {
	Xs []Expr
}

// Or is an n-ary disjunction.
type Or struct {
	Xs []Expr
}

// Not negates its operand.
type Not struct {
	X Expr
}

// NewLeaf builds a predicate leaf.
func NewLeaf(p predicate.P) Leaf { return Leaf{Pred: p} }

// Pred is shorthand for NewLeaf(predicate.New(attr, op, operand)).
func Pred(attr string, op predicate.Op, operand any) Leaf {
	return Leaf{Pred: predicate.New(attr, op, operand)}
}

// NewAnd conjoins the operands, flattening nested Ands.
func NewAnd(xs ...Expr) Expr {
	flat := make([]Expr, 0, len(xs))
	for _, x := range xs {
		if a, ok := x.(And); ok {
			flat = append(flat, a.Xs...)
		} else {
			flat = append(flat, x)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return And{Xs: flat}
}

// NewOr disjoins the operands, flattening nested Ors.
func NewOr(xs ...Expr) Expr {
	flat := make([]Expr, 0, len(xs))
	for _, x := range xs {
		if o, ok := x.(Or); ok {
			flat = append(flat, o.Xs...)
		} else {
			flat = append(flat, x)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Or{Xs: flat}
}

// NewNot negates x, collapsing double negation.
func NewNot(x Expr) Expr {
	if n, ok := x.(Not); ok {
		return n.X
	}
	return Not{X: x}
}

func (l Leaf) Eval(e event.Event) bool { return l.Pred.Eval(e) }
func (a And) Eval(e event.Event) bool {
	for _, x := range a.Xs {
		if !x.Eval(e) {
			return false
		}
	}
	return true
}
func (o Or) Eval(e event.Event) bool {
	for _, x := range o.Xs {
		if x.Eval(e) {
			return true
		}
	}
	return false
}
func (n Not) Eval(e event.Event) bool { return !n.X.Eval(e) }

func (l Leaf) EvalWith(assign func(predicate.P) bool) bool { return assign(l.Pred) }
func (a And) EvalWith(assign func(predicate.P) bool) bool {
	for _, x := range a.Xs {
		if !x.EvalWith(assign) {
			return false
		}
	}
	return true
}
func (o Or) EvalWith(assign func(predicate.P) bool) bool {
	for _, x := range o.Xs {
		if x.EvalWith(assign) {
			return true
		}
	}
	return false
}
func (n Not) EvalWith(assign func(predicate.P) bool) bool { return !n.X.EvalWith(assign) }

func (Leaf) prec() int { return 3 }
func (Not) prec() int  { return 2 }
func (And) prec() int  { return 1 }
func (Or) prec() int   { return 0 }

func (l Leaf) String() string { return l.Pred.String() }

func (a And) String() string { return joinChildren(a.Xs, " and ", a.prec()) }
func (o Or) String() string  { return joinChildren(o.Xs, " or ", o.prec()) }

func (n Not) String() string {
	if n.X.prec() < n.prec() {
		return "not (" + n.X.String() + ")"
	}
	return "not " + n.X.String()
}

func joinChildren(xs []Expr, sep string, prec int) string {
	if len(xs) == 0 {
		// Empty And is vacuously true, empty Or vacuously false; neither is
		// constructible through the public constructors but render something
		// parseable-adjacent for debugging.
		return "()"
	}
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteString(sep)
		}
		if x.prec() < prec {
			b.WriteByte('(')
			b.WriteString(x.String())
			b.WriteByte(')')
		} else {
			b.WriteString(x.String())
		}
	}
	return b.String()
}

// Walk calls fn for every node in depth-first pre-order until fn returns
// false.
func Walk(e Expr, fn func(Expr) bool) {
	walk(e, fn)
}

func walk(e Expr, fn func(Expr) bool) bool {
	if !fn(e) {
		return false
	}
	switch t := e.(type) {
	case And:
		for _, x := range t.Xs {
			if !walk(x, fn) {
				return false
			}
		}
	case Or:
		for _, x := range t.Xs {
			if !walk(x, fn) {
				return false
			}
		}
	case Not:
		return walk(t.X, fn)
	}
	return true
}

// Leaves returns every predicate occurrence in the expression, left to
// right. Duplicates are preserved.
func Leaves(e Expr) []predicate.P {
	var ps []predicate.P
	Walk(e, func(x Expr) bool {
		if l, ok := x.(Leaf); ok {
			ps = append(ps, l.Pred)
		}
		return true
	})
	return ps
}

// Size returns the number of nodes in the expression tree.
func Size(e Expr) int {
	n := 0
	Walk(e, func(Expr) bool { n++; return true })
	return n
}

// Depth returns the height of the expression tree (a single leaf has
// depth 1).
func Depth(e Expr) int {
	switch t := e.(type) {
	case Leaf:
		return 1
	case Not:
		return 1 + Depth(t.X)
	case And:
		return 1 + maxDepth(t.Xs)
	case Or:
		return 1 + maxDepth(t.Xs)
	default:
		return 0
	}
}

func maxDepth(xs []Expr) int {
	m := 0
	for _, x := range xs {
		if d := Depth(x); d > m {
			m = d
		}
	}
	return m
}

// Equal reports structural equality (same shape, same predicates in the
// same order).
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case Leaf:
		y, ok := b.(Leaf)
		return ok && samePred(x.Pred, y.Pred)
	case Not:
		y, ok := b.(Not)
		return ok && Equal(x.X, y.X)
	case And:
		y, ok := b.(And)
		return ok && equalSlices(x.Xs, y.Xs)
	case Or:
		y, ok := b.(Or)
		return ok && equalSlices(x.Xs, y.Xs)
	default:
		return false
	}
}

func equalSlices(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func samePred(a, b predicate.P) bool {
	return a.Attr == b.Attr && a.Op == b.Op && a.Operand.Key() == b.Operand.Key()
}

// Clone returns a deep copy of the expression.
func Clone(e Expr) Expr {
	switch t := e.(type) {
	case Leaf:
		return t
	case Not:
		return Not{X: Clone(t.X)}
	case And:
		xs := make([]Expr, len(t.Xs))
		for i, x := range t.Xs {
			xs[i] = Clone(x)
		}
		return And{Xs: xs}
	case Or:
		xs := make([]Expr, len(t.Xs))
		for i, x := range t.Xs {
			xs[i] = Clone(x)
		}
		return Or{Xs: xs}
	default:
		return nil
	}
}

// ZeroSatisfiable reports whether the expression evaluates to true under the
// all-false assignment (no predicate fulfilled). Subscriptions with this
// property can match events that fulfil none of their predicates — e.g.
// `not (a = 1)` — so candidate-driven matchers must always evaluate them
// (see internal/core).
func ZeroSatisfiable(e Expr) bool {
	return e.EvalWith(func(predicate.P) bool { return false })
}
