package boolexpr

import (
	"errors"
	"math/rand"
	"testing"

	"noncanon/internal/predicate"
)

func TestToNNFPushesNegation(t *testing.T) {
	// not(a < 5 and b = 1) → (not a < 5) or (not b = 1); negation stays on
	// the literal, it is NOT folded into the operator.
	e := NewNot(NewAnd(Pred("a", predicate.Lt, 5), Pred("b", predicate.Eq, 1)))
	nnf := ToNNF(e)
	want := NewOr(Not{X: Pred("a", predicate.Lt, 5)}, Not{X: Pred("b", predicate.Eq, 1)})
	if !Equal(nnf, want) {
		t.Errorf("NNF = %s, want %s", nnf, want)
	}
	// Not nodes may only sit directly above leaves.
	Walk(nnf, func(x Expr) bool {
		if n, ok := x.(Not); ok {
			if _, leaf := n.X.(Leaf); !leaf {
				t.Errorf("Not above non-leaf survives NNF: %s", nnf)
			}
		}
		return true
	})
}

func TestToNNFDoubleNegation(t *testing.T) {
	e := Not{X: Not{X: Pred("a", predicate.Gt, 1)}}
	nnf := ToNNF(e)
	want := Pred("a", predicate.Gt, 1)
	if !Equal(nnf, want) {
		t.Errorf("NNF = %s, want %s", nnf, want)
	}
	// Triple negation leaves one Not.
	e3 := Not{X: Not{X: Not{X: Pred("a", predicate.Gt, 1)}}}
	if !Equal(ToNNF(e3), Not{X: Pred("a", predicate.Gt, 1)}) {
		t.Errorf("triple-negation NNF = %s", ToNNF(e3))
	}
}

func TestDNFFig1(t *testing.T) {
	// Fig. 1 subscription: DNF has 3*3 = 9 disjuncts of 2 predicates each,
	// exactly as the paper states ("s results in 9 disjunctions").
	e := NewAnd(
		NewOr(Pred("a", predicate.Gt, 10), Pred("a", predicate.Le, 5), Pred("b", predicate.Eq, 1)),
		NewOr(Pred("c", predicate.Le, 20), Pred("c", predicate.Eq, 30), Pred("d", predicate.Eq, 5)),
	)
	d, err := ToDNF(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 9 {
		t.Fatalf("DNF size = %d, want 9", len(d))
	}
	for _, c := range d {
		if len(c) != 2 {
			t.Errorf("disjunct size = %d, want 2: %v", len(c), c)
		}
		if !c.AllPositive() {
			t.Errorf("unexpected negative literal in %v", c)
		}
	}
	if got := DNFSize(e); got != 9 {
		t.Errorf("DNFSize = %d, want 9", got)
	}
	if got := d.NumPredicates(); got != 18 {
		t.Errorf("NumPredicates = %d, want 18", got)
	}
	if !d.AllPositive() {
		t.Error("AllPositive = false for positive expression")
	}
}

func TestDNFPaperTransformedCounts(t *testing.T) {
	// Table 1: |p| ∈ {6,8,10} predicates as AND of OR-pairs transform into
	// 2^(|p|/2) ∈ {8,16,32} conjunctions of |p|/2 predicates.
	for _, np := range []int{6, 8, 10} {
		pairs := make([]Expr, np/2)
		for i := range pairs {
			a := "a" + string(rune('0'+i))
			pairs[i] = NewOr(Pred(a, predicate.Gt, 2*i), Pred(a, predicate.Le, 2*i+1))
		}
		e := NewAnd(pairs...)
		d, err := ToDNF(e, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 << (np / 2)
		if len(d) != want {
			t.Errorf("|p|=%d: DNF size = %d, want %d", np, len(d), want)
		}
		for _, c := range d {
			if len(c) != np/2 {
				t.Errorf("|p|=%d: disjunct size = %d, want %d", np, len(c), np/2)
			}
		}
	}
}

func TestToDNFLimit(t *testing.T) {
	pairs := make([]Expr, 10)
	for i := range pairs {
		a := "a" + string(rune('0'+i))
		pairs[i] = NewOr(Pred(a, predicate.Gt, 0), Pred(a, predicate.Le, -1))
	}
	e := NewAnd(pairs...) // 2^10 = 1024 disjuncts
	if _, err := ToDNF(e, 100); !errors.Is(err, ErrDNFTooLarge) {
		t.Errorf("err = %v, want ErrDNFTooLarge", err)
	}
	if d, err := ToDNF(e, 1024); err != nil || len(d) != 1024 {
		t.Errorf("DNF at limit: len=%d err=%v", len(d), err)
	}
}

func TestDNFNegativeLiterals(t *testing.T) {
	e := NewNot(Pred("s", predicate.Contains, "x"))
	d, err := ToDNF(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || len(d[0]) != 1 || !d[0][0].Neg {
		t.Fatalf("DNF = %v, want single negated literal", d)
	}
	if d.AllPositive() {
		t.Error("AllPositive must be false")
	}
	if got, want := d[0][0].String(), `not s contains "x"`; got != want {
		t.Errorf("literal String = %q, want %q", got, want)
	}
}

func TestDNFContradictionDropped(t *testing.T) {
	p := Pred("a", predicate.Eq, 1)
	// a=1 and not a=1 → unsatisfiable → empty DNF.
	e := NewAnd(p, NewNot(p))
	d, err := ToDNF(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 0 {
		t.Errorf("DNF = %v, want empty (unsatisfiable)", d)
	}
	// (a=1 or b=2) and not a=1 → {b=2, ¬a=1}.
	e2 := NewAnd(NewOr(p, Pred("b", predicate.Eq, 2)), NewNot(p))
	d2, err := ToDNF(e2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) != 1 || len(d2[0]) != 2 {
		t.Errorf("DNF = %v, want one disjunct of two literals", d2)
	}
}

func TestDNFDedup(t *testing.T) {
	// (a=1 or a=1) and a=1 → one disjunct {a=1}.
	p := Pred("a", predicate.Eq, 1)
	e := NewAnd(NewOr(p, p), p)
	d, err := ToDNF(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || len(d[0]) != 1 {
		t.Errorf("DNF = %v, want single {a=1}", d)
	}
}

func TestComplementLiterals(t *testing.T) {
	mk := func(op predicate.Op) DNF {
		return DNF{Conjunction{{Pred: predicate.New("a", op, 5), Neg: true}}}
	}
	wants := map[predicate.Op]predicate.Op{
		predicate.Eq: predicate.Ne,
		predicate.Ne: predicate.Eq,
		predicate.Lt: predicate.Ge,
		predicate.Le: predicate.Gt,
		predicate.Gt: predicate.Le,
		predicate.Ge: predicate.Lt,
	}
	for op, comp := range wants {
		out, err := ComplementLiterals(mk(op))
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		if got := out[0][0]; got.Neg || got.Pred.Op != comp {
			t.Errorf("complement of ¬(a %s 5) = %s, want a %s 5", op, got, comp)
		}
	}
	for _, op := range []predicate.Op{predicate.Prefix, predicate.Suffix, predicate.Contains, predicate.Exists} {
		if _, err := ComplementLiterals(mk(op)); !errors.Is(err, ErrNotNegatable) {
			t.Errorf("op %s: err = %v, want ErrNotNegatable", op, err)
		}
	}
	// Positive literals pass through untouched.
	d := DNF{Conjunction{{Pred: predicate.New("a", predicate.Prefix, "x")}}}
	out, err := ComplementLiterals(d)
	if err != nil || out[0][0].Neg || out[0][0].Pred.Op != predicate.Prefix {
		t.Errorf("positive literal mangled: %v, %v", out, err)
	}
}

func TestDNFEvalAgainstASTProperty(t *testing.T) {
	// Semantics preservation: for random expressions (including NOT over
	// arbitrary subtrees) and random assignments, DNF.Eval == Expr.EvalWith.
	// This is the correctness core of the canonical baseline path.
	rng := rand.New(rand.NewSource(99))
	cfg := RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true, Domain: 20}
	checked := 0
	for i := 0; i < 400; i++ {
		e := RandomExpr(rng, cfg)
		d, err := ToDNF(e, 1<<16)
		if errors.Is(err, ErrDNFTooLarge) {
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		checked++
		for trial := 0; trial < 20; trial++ {
			// Random truth assignment keyed on the predicate fingerprint so
			// that duplicated predicates receive a consistent value.
			seed := rng.Int63()
			assign := func(p predicate.P) bool {
				h := int64(0)
				for _, b := range []byte(p.String()) {
					h = h*131 + int64(b)
				}
				return (h^seed)%3 == 0
			}
			if got, want := d.Eval(assign), e.EvalWith(assign); got != want {
				t.Fatalf("iter %d: DNF=%v AST=%v\nexpr: %s", i, got, want, e)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d expressions checked; generator too explosive", checked)
	}
}

func TestNNFEvalPreservedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := RandomConfig{MaxDepth: 5, MaxFanout: 3, AllowNot: true, Domain: 10}
	for i := 0; i < 400; i++ {
		e := RandomExpr(rng, cfg)
		nnf := ToNNF(e)
		ev := randomEvent(rng)
		if got, want := nnf.Eval(ev), e.Eval(ev); got != want {
			t.Fatalf("iter %d: NNF=%v orig=%v\nexpr: %s\nnnf: %s\nev: %s", i, got, want, e, nnf, ev)
		}
	}
}

func TestDNFEvalOnEventsProperty(t *testing.T) {
	// DNF evaluation under the event-derived assignment equals direct AST
	// evaluation — including events with missing attributes, which is
	// exactly the case operator complementation would get wrong.
	rng := rand.New(rand.NewSource(17))
	cfg := RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true, Domain: 20}
	for i := 0; i < 300; i++ {
		e := RandomExpr(rng, cfg)
		d, err := ToDNF(e, 1<<16)
		if err != nil {
			continue
		}
		ev := randomEvent(rng)
		assign := func(p predicate.P) bool { return p.Eval(ev) }
		if got, want := d.Eval(assign), e.Eval(ev); got != want {
			t.Fatalf("iter %d: DNF=%v AST=%v\nexpr: %s\nev: %s", i, got, want, e, ev)
		}
	}
}

func TestDNFSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true}
	for i := 0; i < 200; i++ {
		e := RandomExpr(rng, cfg)
		size := DNFSize(e)
		d, err := ToDNF(e, 1<<18)
		if err != nil {
			continue
		}
		// Dedup and contradiction-dropping can only shrink the DNF.
		if len(d) > size {
			t.Fatalf("materialised DNF %d > computed size %d for %s", len(d), size, e)
		}
	}
}

func TestDNFExprRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true, Domain: 20}
	for i := 0; i < 100; i++ {
		e := RandomExpr(rng, cfg)
		d, err := ToDNF(e, 1<<14)
		if err != nil {
			continue
		}
		back := d.Expr()
		if back == nil {
			// Unsatisfiable: original must be false everywhere we try.
			for trial := 0; trial < 20; trial++ {
				if ev := randomEvent(rng); e.Eval(ev) {
					t.Fatalf("iter %d: empty DNF but expr true on %s: %s", i, ev, e)
				}
			}
			continue
		}
		for trial := 0; trial < 20; trial++ {
			ev := randomEvent(rng)
			if back.Eval(ev) != e.Eval(ev) {
				t.Fatalf("iter %d: round-tripped DNF differs on %s\nexpr: %s\nback: %s", i, ev, e, back)
			}
		}
	}
}

func TestEmptyDNFExpr(t *testing.T) {
	if (DNF{}).Expr() != nil {
		t.Error("empty DNF should convert to nil Expr")
	}
}
