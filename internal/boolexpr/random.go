package boolexpr

import (
	"math/rand"
	"strconv"

	"noncanon/internal/predicate"
)

// RandomConfig controls RandomExpr.
type RandomConfig struct {
	// MaxDepth bounds tree height (≥1). Depth 1 yields a single leaf.
	MaxDepth int
	// MaxFanout bounds the child count of And/Or nodes (≥2).
	MaxFanout int
	// AllowNot permits Not nodes.
	AllowNot bool
	// NegatableOnly restricts leaf operators to the complement-closed set
	// {=, !=, <, <=, >, >=} so that the expression is DNF-transformable.
	NegatableOnly bool
	// Attrs is the attribute-name pool; defaults to a0..a7.
	Attrs []string
	// Domain is the operand value range [0, Domain); defaults to 100.
	Domain int
}

func (c RandomConfig) withDefaults() RandomConfig {
	if c.MaxDepth < 1 {
		c.MaxDepth = 4
	}
	if c.MaxFanout < 2 {
		c.MaxFanout = 4
	}
	if len(c.Attrs) == 0 {
		c.Attrs = make([]string, 8)
		for i := range c.Attrs {
			c.Attrs[i] = "a" + strconv.Itoa(i)
		}
	}
	if c.Domain <= 0 {
		c.Domain = 100
	}
	return c
}

var negatableOps = []predicate.Op{
	predicate.Eq, predicate.Ne, predicate.Lt, predicate.Le, predicate.Gt, predicate.Ge,
}

var allOps = append(append([]predicate.Op{}, negatableOps...),
	predicate.Prefix, predicate.Suffix, predicate.Contains, predicate.Exists)

// RandomExpr generates a random subscription expression. It is used by the
// property-based tests to cross-check the three evaluators (AST, DNF,
// encoded tree) and by fuzz-style workload generation.
func RandomExpr(rng *rand.Rand, cfg RandomConfig) Expr {
	cfg = cfg.withDefaults()
	return randomNode(rng, cfg, cfg.MaxDepth)
}

func randomNode(rng *rand.Rand, cfg RandomConfig, depth int) Expr {
	if depth <= 1 {
		return randomLeaf(rng, cfg)
	}
	roll := rng.Intn(10)
	switch {
	case roll < 3:
		return randomLeaf(rng, cfg)
	case roll < 6:
		return NewAnd(randomChildren(rng, cfg, depth)...)
	case roll < 9:
		return NewOr(randomChildren(rng, cfg, depth)...)
	default:
		if cfg.AllowNot {
			return NewNot(randomNode(rng, cfg, depth-1))
		}
		return NewAnd(randomChildren(rng, cfg, depth)...)
	}
}

func randomChildren(rng *rand.Rand, cfg RandomConfig, depth int) []Expr {
	n := 2 + rng.Intn(cfg.MaxFanout-1)
	xs := make([]Expr, n)
	for i := range xs {
		xs[i] = randomNode(rng, cfg, depth-1)
	}
	return xs
}

func randomLeaf(rng *rand.Rand, cfg RandomConfig) Expr {
	ops := allOps
	if cfg.NegatableOnly {
		ops = negatableOps
	}
	op := ops[rng.Intn(len(ops))]
	attr := cfg.Attrs[rng.Intn(len(cfg.Attrs))]
	switch op {
	case predicate.Prefix, predicate.Suffix, predicate.Contains:
		return Pred(attr, op, "s"+strconv.Itoa(rng.Intn(cfg.Domain)))
	case predicate.Exists:
		return Pred(attr, op, nil)
	default:
		if rng.Intn(4) == 0 {
			return Pred(attr, op, float64(rng.Intn(cfg.Domain))+0.5)
		}
		return Pred(attr, op, rng.Intn(cfg.Domain))
	}
}
