package boolexpr

import (
	"math/rand"
	"testing"

	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// exampleExpr builds the paper's Fig. 1 subscription:
// (a > 10 ∨ a ≤ 5 ∨ b = 1) ∧ (c ≤ 20 ∨ c = 30 ∨ d = 5).
func exampleExpr() Expr {
	return NewAnd(
		NewOr(Pred("a", predicate.Gt, 10), Pred("a", predicate.Le, 5), Pred("b", predicate.Eq, 1)),
		NewOr(Pred("c", predicate.Le, 20), Pred("c", predicate.Eq, 30), Pred("d", predicate.Eq, 5)),
	)
}

func TestEvalFig1(t *testing.T) {
	e := exampleExpr()
	tests := []struct {
		ev   event.Event
		want bool
	}{
		{event.New().Set("a", 11).Set("c", 15), true},
		{event.New().Set("a", 3).Set("c", 30), true},
		{event.New().Set("b", 1).Set("d", 5), true},
		{event.New().Set("a", 7).Set("c", 15), false},  // left OR fails
		{event.New().Set("a", 11).Set("c", 25), false}, // right OR fails
		{event.New(), false},
	}
	for i, tt := range tests {
		if got := e.Eval(tt.ev); got != tt.want {
			t.Errorf("case %d: Eval(%s) = %v, want %v", i, tt.ev, got, tt.want)
		}
	}
}

func TestConstructorsFlatten(t *testing.T) {
	a := NewAnd(Pred("a", predicate.Eq, 1), NewAnd(Pred("b", predicate.Eq, 2), Pred("c", predicate.Eq, 3)))
	and, ok := a.(And)
	if !ok || len(and.Xs) != 3 {
		t.Fatalf("NewAnd did not flatten: %v", a)
	}
	o := NewOr(NewOr(Pred("a", predicate.Eq, 1), Pred("b", predicate.Eq, 2)), Pred("c", predicate.Eq, 3))
	or, ok := o.(Or)
	if !ok || len(or.Xs) != 3 {
		t.Fatalf("NewOr did not flatten: %v", o)
	}
}

func TestConstructorsSingleChildCollapse(t *testing.T) {
	l := Pred("a", predicate.Eq, 1)
	if _, ok := NewAnd(l).(Leaf); !ok {
		t.Error("NewAnd of one child should collapse to the child")
	}
	if _, ok := NewOr(l).(Leaf); !ok {
		t.Error("NewOr of one child should collapse to the child")
	}
}

func TestNewNotDoubleNegation(t *testing.T) {
	l := Pred("a", predicate.Eq, 1)
	if !Equal(NewNot(NewNot(l)), l) {
		t.Error("not not x should collapse to x")
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		e    Expr
		want string
	}{
		{Pred("a", predicate.Gt, 10), "a > 10"},
		{exampleExpr(), "(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)"},
		{NewNot(Pred("a", predicate.Eq, 1)), "not a = 1"},
		{NewNot(NewAnd(Pred("a", predicate.Eq, 1), Pred("b", predicate.Eq, 2))), "not (a = 1 and b = 2)"},
		{NewOr(NewAnd(Pred("a", predicate.Eq, 1), Pred("b", predicate.Eq, 2)), Pred("c", predicate.Eq, 3)),
			"a = 1 and b = 2 or c = 3"},
		{Pred("s", predicate.Prefix, "AB"), `s prefix "AB"`},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestWalkAndLeaves(t *testing.T) {
	e := exampleExpr()
	if got := Size(e); got != 9 { // 1 And + 2 Or + 6 leaves
		t.Errorf("Size = %d, want 9", got)
	}
	ls := Leaves(e)
	if len(ls) != 6 {
		t.Fatalf("Leaves = %d, want 6", len(ls))
	}
	if ls[0].Attr != "a" || ls[5].Attr != "d" {
		t.Errorf("leaf order wrong: first=%s last=%s", ls[0], ls[5])
	}
	// Early termination.
	n := 0
	Walk(e, func(Expr) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Walk visited %d nodes after early stop, want 3", n)
	}
}

func TestDepth(t *testing.T) {
	if d := Depth(Pred("a", predicate.Eq, 1)); d != 1 {
		t.Errorf("leaf depth = %d", d)
	}
	if d := Depth(exampleExpr()); d != 3 {
		t.Errorf("fig1 depth = %d, want 3", d)
	}
	if d := Depth(NewNot(exampleExpr())); d != 4 {
		t.Errorf("not(fig1) depth = %d, want 4", d)
	}
}

func TestEqualAndClone(t *testing.T) {
	e := exampleExpr()
	c := Clone(e)
	if !Equal(e, c) {
		t.Error("clone must equal original")
	}
	if Equal(e, Pred("a", predicate.Gt, 10)) {
		t.Error("different shapes must differ")
	}
	other := NewAnd(
		NewOr(Pred("a", predicate.Gt, 10), Pred("a", predicate.Le, 5), Pred("b", predicate.Eq, 2)),
		NewOr(Pred("c", predicate.Le, 20), Pred("c", predicate.Eq, 30), Pred("d", predicate.Eq, 5)),
	)
	if Equal(e, other) {
		t.Error("different operand must differ")
	}
	// Numeric unification: b = 1 equals b = 1.0.
	if !Equal(Pred("b", predicate.Eq, 1), Pred("b", predicate.Eq, 1.0)) {
		t.Error("1 and 1.0 operands should be structurally equal")
	}
}

func TestZeroSatisfiable(t *testing.T) {
	if ZeroSatisfiable(exampleExpr()) {
		t.Error("fig1 is not zero-satisfiable")
	}
	if !ZeroSatisfiable(NewNot(Pred("a", predicate.Eq, 1))) {
		t.Error("not(a=1) is zero-satisfiable")
	}
	e := NewOr(Pred("a", predicate.Eq, 1), NewNot(Pred("b", predicate.Eq, 2)))
	if !ZeroSatisfiable(e) {
		t.Error("a=1 or not(b=2) is zero-satisfiable")
	}
}

func TestEvalWithMatchesEval(t *testing.T) {
	// EvalWith under the event-derived assignment must agree with Eval.
	rng := rand.New(rand.NewSource(7))
	cfg := RandomConfig{MaxDepth: 5, AllowNot: true}
	for i := 0; i < 300; i++ {
		e := RandomExpr(rng, cfg)
		ev := randomEvent(rng)
		direct := e.Eval(ev)
		viaAssign := e.EvalWith(func(p predicate.P) bool { return p.Eval(ev) })
		if direct != viaAssign {
			t.Fatalf("iter %d: Eval=%v EvalWith=%v for %s on %s", i, direct, viaAssign, e, ev)
		}
	}
}

func randomEvent(rng *rand.Rand) event.Event {
	ev := event.New()
	for i := 0; i < 8; i++ {
		if rng.Intn(2) == 0 {
			continue // leave some attributes absent
		}
		attr := "a" + string(rune('0'+i))
		if rng.Intn(4) == 0 {
			ev = ev.Set(attr, "s"+string(rune('0'+rng.Intn(10))))
		} else {
			ev = ev.Set(attr, rng.Intn(100))
		}
	}
	return ev
}

func TestRandomExprRespectsConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		e := RandomExpr(rng, RandomConfig{MaxDepth: 3, MaxFanout: 3, NegatableOnly: true})
		if d := Depth(e); d > 3 {
			t.Fatalf("depth %d exceeds max 3: %s", d, e)
		}
		Walk(e, func(x Expr) bool {
			switch n := x.(type) {
			case Not:
				t.Fatalf("Not generated with AllowNot=false: %s", e)
			case Leaf:
				switch n.Pred.Op {
				case predicate.Prefix, predicate.Suffix, predicate.Contains, predicate.Exists:
					t.Fatalf("non-negatable op with NegatableOnly: %s", n.Pred)
				}
			}
			return true
		})
	}
}
