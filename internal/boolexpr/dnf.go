package boolexpr

import (
	"errors"
	"fmt"
	"math"

	"noncanon/internal/predicate"
)

// Errors returned by the canonicalisation pipeline.
var (
	// ErrNotNegatable marks literals whose negation has no complementary
	// operator (the substring family and exists). The canonical baselines,
	// which require positive conjunctive predicates, cannot register such
	// subscriptions; the non-canonical engine handles them natively — one of
	// the paper's expressiveness arguments.
	ErrNotNegatable = errors.New("boolexpr: predicate operator not negatable")

	// ErrDNFTooLarge is returned when the DNF would exceed the configured
	// disjunct limit. DNFs are worst-case exponential in the original
	// expression size (paper §1, §2).
	ErrDNFTooLarge = errors.New("boolexpr: DNF exceeds disjunct limit")

	// ErrNegativeLiteral is returned by engines that only support positive
	// conjunctive subscriptions when handed a DNF containing negated
	// literals.
	ErrNegativeLiteral = errors.New("boolexpr: negative literal in conjunction")
)

// Literal is a possibly-negated predicate occurrence. Negation is kept
// explicit rather than folded into the operator: rewriting ¬(a > 5) as
// a ≤ 5 silently changes semantics for events where a is absent or not
// numeric (the complement is false there, the true negation is true).
type Literal struct {
	Pred predicate.P
	Neg  bool
}

// Eval evaluates the literal under a truth assignment of its predicate.
func (l Literal) Eval(assign func(predicate.P) bool) bool {
	v := assign(l.Pred)
	if l.Neg {
		return !v
	}
	return v
}

// String renders the literal.
func (l Literal) String() string {
	if l.Neg {
		return "not " + l.Pred.String()
	}
	return l.Pred.String()
}

// Conjunction is one DNF disjunct: literals understood as their conjunction.
// Canonical matchers accept only all-positive conjunctions.
type Conjunction []Literal

// AllPositive reports whether the conjunction has no negated literal.
func (c Conjunction) AllPositive() bool {
	for _, l := range c {
		if l.Neg {
			return false
		}
	}
	return true
}

// Preds returns the predicates of the conjunction, in order.
func (c Conjunction) Preds() []predicate.P {
	ps := make([]predicate.P, len(c))
	for i, l := range c {
		ps[i] = l.Pred
	}
	return ps
}

// DNF is a disjunction of conjunctions.
type DNF []Conjunction

// ToNNF rewrites the expression into negation normal form: NOT nodes are
// pushed down through AND/OR by De Morgan's laws until they sit directly
// above predicate leaves. The rewrite is exactly semantics-preserving under
// any truth assignment (no operator complementation is performed).
func ToNNF(e Expr) Expr {
	return toNNF(e, false)
}

func toNNF(e Expr, negated bool) Expr {
	switch t := e.(type) {
	case Leaf:
		if !negated {
			return t
		}
		return Not{X: t}
	case Not:
		return toNNF(t.X, !negated)
	case And:
		xs := nnfChildren(t.Xs, negated)
		if negated {
			return NewOr(xs...)
		}
		return NewAnd(xs...)
	case Or:
		xs := nnfChildren(t.Xs, negated)
		if negated {
			return NewAnd(xs...)
		}
		return NewOr(xs...)
	default:
		return e
	}
}

func nnfChildren(xs []Expr, negated bool) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = toNNF(x, negated)
	}
	return out
}

// DNFSize computes the number of disjuncts the DNF of e will have before
// deduplication, without materialising it. The count saturates at
// math.MaxInt. This is the paper's "exponential in size (worst case)"
// quantity used for the memory analysis (experiment M1).
func DNFSize(e Expr) int {
	return dnfSize(ToNNF(e))
}

func dnfSize(e Expr) int {
	switch t := e.(type) {
	case Leaf:
		return 1
	case Not: // literal: Not sits directly above a leaf in NNF
		return 1
	case Or:
		n := 0
		for _, x := range t.Xs {
			n = satAdd(n, dnfSize(x))
		}
		return n
	case And:
		n := 1
		for _, x := range t.Xs {
			n = satMul(n, dnfSize(x))
		}
		return n
	default:
		return 0
	}
}

func satAdd(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}

// ToDNF converts an arbitrary expression into disjunctive normal form over
// literals. The transformation is exactly what canonical pub/sub matchers
// require (paper §2): each resulting Conjunction is registered as a separate
// conjunctive subscription.
//
// maxDisjuncts bounds the blow-up; pass 0 for no limit. Duplicate literals
// inside one conjunction are merged, conjunctions containing a literal and
// its negation are dropped as unsatisfiable, and duplicate conjunctions are
// removed.
func ToDNF(e Expr, maxDisjuncts int) (DNF, error) {
	nnf := ToNNF(e)
	if maxDisjuncts > 0 {
		if n := dnfSize(nnf); n > maxDisjuncts {
			return nil, fmt.Errorf("%w: %d > %d", ErrDNFTooLarge, n, maxDisjuncts)
		}
	}
	return dedupConjunctions(dnfOf(nnf)), nil
}

func dnfOf(e Expr) DNF {
	switch t := e.(type) {
	case Leaf:
		return DNF{Conjunction{{Pred: t.Pred}}}
	case Not:
		// NNF guarantees the operand is a leaf.
		if l, ok := t.X.(Leaf); ok {
			return DNF{Conjunction{{Pred: l.Pred, Neg: true}}}
		}
		return dnfOf(toNNF(t, false))
	case Or:
		var out DNF
		for _, x := range t.Xs {
			out = append(out, dnfOf(x)...)
		}
		return out
	case And:
		out := DNF{Conjunction{}}
		for _, x := range t.Xs {
			sub := dnfOf(x)
			next := make(DNF, 0, len(out)*len(sub))
			for _, a := range out {
				for _, b := range sub {
					if m, ok := mergeConjunction(a, b); ok {
						next = append(next, m)
					}
				}
			}
			out = next
		}
		return out
	default:
		return nil
	}
}

func literalKey(l Literal) string {
	k := l.Pred.String()
	if l.Neg {
		return "!" + k
	}
	return k
}

// mergeConjunction concatenates two conjunctions, dropping duplicate
// literals. ok=false marks an unsatisfiable result (contains p and ¬p).
func mergeConjunction(a, b Conjunction) (Conjunction, bool) {
	out := make(Conjunction, len(a), len(a)+len(b))
	copy(out, a)
	for _, l := range b {
		dup := false
		for _, m := range out {
			if samePred(l.Pred, m.Pred) {
				if l.Neg != m.Neg {
					return nil, false // p ∧ ¬p ≡ false
				}
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out, true
}

func dedupConjunctions(d DNF) DNF {
	if len(d) < 2 {
		return d
	}
	seen := make(map[string]bool, len(d))
	out := d[:0]
	for _, c := range d {
		k := conjKey(c)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

// conjKey builds an order-insensitive fingerprint of a conjunction.
func conjKey(c Conjunction) string {
	keys := make([]string, len(c))
	for i, l := range c {
		keys[i] = literalKey(l)
	}
	// Insertion sort: conjunctions are small (paper: 3-5 predicates).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for _, k := range keys {
		out += k + "\x00"
	}
	return out
}

// Eval evaluates the DNF under a truth assignment: true iff some conjunction
// has all literals fulfilled. It is the reference semantics for the counting
// baselines.
func (d DNF) Eval(assign func(predicate.P) bool) bool {
	for _, c := range d {
		all := true
		for _, l := range c {
			if !l.Eval(assign) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// Expr converts the DNF back into an expression tree (an Or of Ands with Not
// wrapped around negated literals). An empty DNF — an unsatisfiable
// expression — converts to nil.
func (d DNF) Expr() Expr {
	if len(d) == 0 {
		return nil
	}
	ors := make([]Expr, len(d))
	for i, c := range d {
		ands := make([]Expr, len(c))
		for j, l := range c {
			var x Expr = Leaf{Pred: l.Pred}
			if l.Neg {
				x = Not{X: x}
			}
			ands[j] = x
		}
		ors[i] = NewAnd(ands...)
	}
	return NewOr(ors...)
}

// NumPredicates returns the total literal occurrences across all disjuncts —
// the quantity that multiplies the counting algorithm's memory.
func (d DNF) NumPredicates() int {
	n := 0
	for _, c := range d {
		n += len(c)
	}
	return n
}

// AllPositive reports whether no conjunction contains a negated literal.
func (d DNF) AllPositive() bool {
	for _, c := range d {
		if !c.AllPositive() {
			return false
		}
	}
	return true
}

// complementOp returns the complementary operator, e.g. ¬(a < 5) ⇒ a ≥ 5.
func complementOp(op predicate.Op) (predicate.Op, bool) {
	switch op {
	case predicate.Eq:
		return predicate.Ne, true
	case predicate.Ne:
		return predicate.Eq, true
	case predicate.Lt:
		return predicate.Ge, true
	case predicate.Le:
		return predicate.Gt, true
	case predicate.Gt:
		return predicate.Le, true
	case predicate.Ge:
		return predicate.Lt, true
	default:
		return 0, false
	}
}

// ComplementLiterals rewrites every negated literal into a positive
// predicate with the complementary operator: ¬(a < 5) becomes a ≥ 5.
//
// CAUTION: this is the *strong* negation semantics. It differs from logical
// negation on events where the attribute is absent or of an incomparable
// type (both ¬(a<5) variants are then true logically, but a≥5 is false).
// It is only sound for workloads whose events always carry every referenced
// attribute with a comparable type — which holds for the paper's synthetic
// workloads. Literals whose operator has no complement yield
// ErrNotNegatable.
func ComplementLiterals(d DNF) (DNF, error) {
	out := make(DNF, len(d))
	for i, c := range d {
		nc := make(Conjunction, len(c))
		for j, l := range c {
			if !l.Neg {
				nc[j] = l
				continue
			}
			op, ok := complementOp(l.Pred.Op)
			if !ok {
				return nil, fmt.Errorf("%w: not (%s)", ErrNotNegatable, l.Pred)
			}
			nc[j] = Literal{Pred: predicate.P{Attr: l.Pred.Attr, Sym: l.Pred.Sym, Op: op, Operand: l.Pred.Operand}}
		}
		out[i] = nc
	}
	return out, nil
}
