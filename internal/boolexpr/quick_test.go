package boolexpr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"noncanon/internal/predicate"
)

// genExpr adapts RandomExpr to testing/quick's Generator interface so that
// expression invariants can be stated as quick.Check properties.
type genExpr struct {
	E    Expr
	Seed int64
}

// Generate implements quick.Generator.
func (genExpr) Generate(r *rand.Rand, size int) reflect.Value {
	cfg := RandomConfig{
		MaxDepth:  2 + size%4,
		MaxFanout: 3,
		AllowNot:  true,
		Domain:    20,
	}
	return reflect.ValueOf(genExpr{E: RandomExpr(r, cfg), Seed: r.Int63()})
}

// assignFor derives a deterministic truth assignment from a seed, keyed on
// the predicate fingerprint (duplicated predicates get consistent values).
func assignFor(seed int64) func(predicate.P) bool {
	return func(p predicate.P) bool {
		h := seed
		for _, b := range []byte(p.String()) {
			h = h*131 + int64(b)
		}
		return h%3 == 0
	}
}

func TestQuickSimplifyPreservesSemantics(t *testing.T) {
	f := func(g genExpr) bool {
		s := Simplify(g.E)
		assign := assignFor(g.Seed)
		return s.EvalWith(assign) == g.E.EvalWith(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimplifyNeverGrows(t *testing.T) {
	f := func(g genExpr) bool {
		return Size(Simplify(g.E)) <= Size(g.E)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickNNFShapeAndSemantics(t *testing.T) {
	f := func(g genExpr) bool {
		nnf := ToNNF(g.E)
		// Shape: Not only directly above leaves.
		ok := true
		Walk(nnf, func(x Expr) bool {
			if n, isNot := x.(Not); isNot {
				if _, leaf := n.X.(Leaf); !leaf {
					ok = false
					return false
				}
			}
			return true
		})
		if !ok {
			return false
		}
		assign := assignFor(g.Seed)
		return nnf.EvalWith(assign) == g.E.EvalWith(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneEqualIndependent(t *testing.T) {
	f := func(g genExpr) bool {
		c := Clone(g.E)
		return Equal(g.E, c) && Size(c) == Size(g.E) && Depth(c) == Depth(g.E)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDNFSoundness(t *testing.T) {
	f := func(g genExpr) bool {
		d, err := ToDNF(g.E, 1<<14)
		if err != nil {
			return true // blow-up guard tripped; nothing to check
		}
		assign := assignFor(g.Seed)
		return d.Eval(assign) == g.E.EvalWith(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickZeroSatConsistency(t *testing.T) {
	// ZeroSatisfiable must equal evaluation under the all-false assignment,
	// before and after every transformation.
	f := func(g genExpr) bool {
		allFalse := func(predicate.P) bool { return false }
		want := g.E.EvalWith(allFalse)
		if ZeroSatisfiable(g.E) != want {
			return false
		}
		if ZeroSatisfiable(Simplify(g.E)) != want {
			return false
		}
		return ZeroSatisfiable(ToNNF(g.E)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
