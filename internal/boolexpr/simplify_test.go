package boolexpr

import (
	"math/rand"
	"testing"

	"noncanon/internal/predicate"
)

func TestSimplifyFlattens(t *testing.T) {
	inner := And{Xs: []Expr{Pred("a", predicate.Eq, 1), Pred("b", predicate.Eq, 2)}}
	e := And{Xs: []Expr{inner, Pred("c", predicate.Eq, 3)}}
	s := Simplify(e)
	and, ok := s.(And)
	if !ok || len(and.Xs) != 3 {
		t.Fatalf("Simplify did not flatten: %s", s)
	}
}

func TestSimplifySingleChild(t *testing.T) {
	e := And{Xs: []Expr{Pred("a", predicate.Eq, 1)}}
	if _, ok := Simplify(e).(Leaf); !ok {
		t.Error("single-child And should collapse")
	}
	o := Or{Xs: []Expr{Pred("a", predicate.Eq, 1)}}
	if _, ok := Simplify(o).(Leaf); !ok {
		t.Error("single-child Or should collapse")
	}
}

func TestSimplifyDoubleNegation(t *testing.T) {
	e := Not{X: Not{X: Pred("a", predicate.Eq, 1)}}
	if _, ok := Simplify(e).(Leaf); !ok {
		t.Errorf("double negation should vanish: %s", Simplify(e))
	}
}

func TestSimplifyIdempotence(t *testing.T) {
	p := Pred("a", predicate.Eq, 1)
	e := And{Xs: []Expr{p, p, Pred("b", predicate.Eq, 2), p}}
	s := Simplify(e)
	and, ok := s.(And)
	if !ok || len(and.Xs) != 2 {
		t.Fatalf("duplicate siblings not removed: %s", s)
	}
	// a or a → a
	if _, ok := Simplify(Or{Xs: []Expr{p, p}}).(Leaf); !ok {
		t.Error("a or a should collapse to a")
	}
}

func TestSimplifyAbsorption(t *testing.T) {
	a := Pred("a", predicate.Eq, 1)
	b := Pred("b", predicate.Eq, 2)
	// a and (a or b) → a
	e := And{Xs: []Expr{a, Or{Xs: []Expr{a, b}}}}
	if got := Simplify(e); !Equal(got, a) {
		t.Errorf("a and (a or b) = %s, want a = 1", got)
	}
	// a or (a and b) → a
	e2 := Or{Xs: []Expr{a, And{Xs: []Expr{a, b}}}}
	if got := Simplify(e2); !Equal(got, a) {
		t.Errorf("a or (a and b) = %s, want a = 1", got)
	}
}

func TestSimplifyPreservesSemanticsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := RandomConfig{MaxDepth: 5, MaxFanout: 4, AllowNot: true}
	for i := 0; i < 500; i++ {
		e := RandomExpr(rng, cfg)
		s := Simplify(e)
		for trial := 0; trial < 10; trial++ {
			ev := randomEvent(rng)
			if s.Eval(ev) != e.Eval(ev) {
				t.Fatalf("iter %d: Simplify changed semantics\nbefore: %s\nafter: %s\nev: %s", i, e, s, ev)
			}
		}
		if Size(s) > Size(e) {
			t.Fatalf("iter %d: Simplify grew the tree: %d → %d", i, Size(e), Size(s))
		}
	}
}

func TestSimplifyIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cfg := RandomConfig{MaxDepth: 5, MaxFanout: 4, AllowNot: true}
	for i := 0; i < 300; i++ {
		s := Simplify(RandomExpr(rng, cfg))
		ss := Simplify(s)
		if !Equal(s, ss) {
			t.Fatalf("iter %d: Simplify not idempotent\nonce: %s\ntwice: %s", i, s, ss)
		}
	}
}
