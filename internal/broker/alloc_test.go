//go:build !race

// Allocation budgets for the //nclint:hotpath-annotated publish pipeline,
// the dynamic half of the hot-path gate (nclint's hotpath rule is the
// static half). Race instrumentation changes allocation counts, so these
// run only in unraced builds. EXPERIMENTS.md records the budgets.

package broker

import (
	"fmt"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/obs"
	"noncanon/internal/predicate"
)

// warmedBroker returns a broker with nsubs no-op subscribers (some
// matching the returned event) that has already published once, so every
// pool and growth table is warm.
func warmedBroker(tb testing.TB, nsubs int) (*Broker, event.Event) {
	return warmedBrokerOpts(tb, Options{QueueSize: 4 * nsubs}, nsubs)
}

func warmedBrokerOpts(tb testing.TB, opts Options, nsubs int) (*Broker, event.Event) {
	tb.Helper()
	opts.QueueSize = 4 * nsubs
	b := New(opts)
	for i := 0; i < nsubs; i++ {
		expr := boolexpr.NewAnd(
			boolexpr.Pred("sym", predicate.Eq, fmt.Sprintf("S%d", i%4)),
			boolexpr.Pred("price", predicate.Gt, i%50),
		)
		if _, err := b.Subscribe(expr, func(event.Event) {}); err != nil {
			tb.Fatal(err)
		}
	}
	tb.Cleanup(func() { b.Close() })
	ev := event.New().Set("sym", "S1").Set("price", 99)
	n, err := b.Publish(ev)
	if err != nil {
		tb.Fatal(err)
	}
	if n == 0 {
		tb.Fatal("warm-up event matches nothing; budget would be vacuous")
	}
	return b, ev
}

// TestPublishAllocBudget: after warm-up a Publish performs at most one
// allocation. The match-result slice is pooled (matchBuf + MatchInto) and
// Retain on an owned event is free, so the budget is pure headroom for
// the runtime's occasional channel-send bookkeeping (sudog reuse makes
// steady-state sends allocation-free).
func TestPublishAllocBudget(t *testing.T) {
	b, ev := warmedBroker(t, 100)
	const budget = 1
	avg := testing.AllocsPerRun(200, func() {
		n, err := b.Publish(ev)
		if err != nil || n == 0 {
			t.Fatalf("publish: n=%d err=%v", n, err)
		}
	})
	if avg > budget {
		t.Errorf("Publish allocates %.1f per run, budget %d", avg, budget)
	}
}

// TestPublishBatchAllocBudget: a batch stays within four allocations
// regardless of batch size — the counts slice, the engine's row index and
// shared result arena, and one slot of headroom — so batching's
// amortisation promise now holds at the allocator level too.
func TestPublishBatchAllocBudget(t *testing.T) {
	b, ev := warmedBroker(t, 100)
	const batch = 16
	evs := make([]event.Event, batch)
	for i := range evs {
		evs[i] = ev
	}
	if _, err := b.PublishBatch(evs); err != nil { // warm the arena hint
		t.Fatal(err)
	}
	const budget = 4
	avg := testing.AllocsPerRun(100, func() {
		counts, err := b.PublishBatch(evs)
		if err != nil || len(counts) != batch {
			t.Fatalf("publish batch: counts=%d err=%v", len(counts), err)
		}
	})
	if avg > budget {
		t.Errorf("PublishBatch(%d) allocates %.1f per run, budget %d", batch, avg, budget)
	}
}

// TestPublishInstrumentedAllocBudget: turning on an exported metrics
// registry — counters, latency histograms, the trace-ready clock — must
// not add a single allocation to Publish. The obs increment path is
// atomic adds and time.Now, all allocation-free; this pins that metrics
// can never quietly reintroduce hot-path garbage.
func TestPublishInstrumentedAllocBudget(t *testing.T) {
	b, ev := warmedBrokerOpts(t, Options{Metrics: obs.NewRegistry()}, 100)
	const budget = 1 // identical to the un-instrumented budget
	avg := testing.AllocsPerRun(200, func() {
		n, err := b.Publish(ev)
		if err != nil || n == 0 {
			t.Fatalf("publish: n=%d err=%v", n, err)
		}
	})
	if avg > budget {
		t.Errorf("instrumented Publish allocates %.1f per run, budget %d", avg, budget)
	}
}

// TestPublishBatchInstrumentedAllocBudget mirrors the batch budget with
// metrics on: still 4.
func TestPublishBatchInstrumentedAllocBudget(t *testing.T) {
	b, ev := warmedBrokerOpts(t, Options{Metrics: obs.NewRegistry()}, 100)
	const batch = 16
	evs := make([]event.Event, batch)
	for i := range evs {
		evs[i] = ev
	}
	if _, err := b.PublishBatch(evs); err != nil { // warm the arena hint
		t.Fatal(err)
	}
	const budget = 4
	avg := testing.AllocsPerRun(100, func() {
		counts, err := b.PublishBatch(evs)
		if err != nil || len(counts) != batch {
			t.Fatalf("publish batch: counts=%d err=%v", len(counts), err)
		}
	})
	if avg > budget {
		t.Errorf("instrumented PublishBatch(%d) allocates %.1f per run, budget %d", batch, avg, budget)
	}
}
