package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// dagBand returns nested covering filters: within a category, a higher
// rank is strictly wider and provably covers every lower rank.
func dagBand(cat, rank int) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(cat)),
		boolexpr.Pred("price", predicate.Lt, int64(10*(rank+1))),
	)
}

// dagChurnFilter mixes covering chains (dagBand) with the PR 2 aggregate
// filters (identical-duplicate pressure) so the script exercises interning,
// covering attach, demotion and promotion together.
func dagChurnFilter(rng *rand.Rand) boolexpr.Expr {
	if rng.Intn(2) == 0 {
		return dagBand(rng.Intn(3), pickSkewed(rng))
	}
	return aggFilter(pickSkewed(rng))
}

// TestDAGAggregateDifferential drives a DAG-aggregated broker, a
// key-interning broker and a flat broker through one interleaved
// subscribe/unsubscribe/publish script, with a naive boolexpr oracle
// (evaluate every live subscription's filter against every event) as
// ground truth: per-event enqueue counts and final (subscriber, event)
// delivery multisets must be identical across all four.
func TestDAGAggregateDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			plain := New(Options{QueueSize: 4096, Shards: shards})
			agg := New(Options{QueueSize: 4096, Shards: shards, Aggregate: true})
			dagb := New(Options{QueueSize: 4096, Shards: shards, AggregateDAG: true})
			defer plain.Close()
			defer agg.Close()
			defer dagb.Close()

			var recPlain, recAgg, recDAG recorder
			rng := rand.New(rand.NewSource(77))
			type entry struct {
				p, a, d *Subscription
				expr    boolexpr.Expr
			}
			live := map[string]entry{}
			var liveTags []string
			var oracle []aggDelivery
			seq := int64(0)

			publish := func(step int, evs ...event.Event) {
				var np, na, nd int
				if len(evs) == 1 {
					var err error
					if np, err = plain.Publish(evs[0]); err != nil {
						t.Fatal(err)
					}
					if na, err = agg.Publish(evs[0]); err != nil {
						t.Fatal(err)
					}
					if nd, err = dagb.Publish(evs[0]); err != nil {
						t.Fatal(err)
					}
				} else {
					cp, err := plain.PublishBatch(evs)
					if err != nil {
						t.Fatal(err)
					}
					ca, err := agg.PublishBatch(evs)
					if err != nil {
						t.Fatal(err)
					}
					cd, err := dagb.PublishBatch(evs)
					if err != nil {
						t.Fatal(err)
					}
					for i := range evs {
						np += cp[i]
						na += ca[i]
						nd += cd[i]
					}
				}
				want := 0
				for tag, e := range live {
					for _, ev := range evs {
						if e.expr.Eval(ev) {
							want++
							s, _ := ev.Get("seq")
							oracle = append(oracle, aggDelivery{tag: tag, seq: s.Int()})
						}
					}
				}
				if np != want || na != want || nd != want {
					t.Fatalf("step %d: oracle wants %d deliveries; plain %d, agg %d, dag %d",
						step, want, np, na, nd)
				}
			}

			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // subscribe
					tag := fmt.Sprintf("s%d", step)
					f := dagChurnFilter(rng)
					sp, err := plain.Subscribe(f, recPlain.handler(tag))
					if err != nil {
						t.Fatal(err)
					}
					sa, err := agg.Subscribe(f, recAgg.handler(tag))
					if err != nil {
						t.Fatal(err)
					}
					sd, err := dagb.Subscribe(f, recDAG.handler(tag))
					if err != nil {
						t.Fatal(err)
					}
					live[tag] = entry{p: sp, a: sa, d: sd, expr: f}
					liveTags = append(liveTags, tag)
				case op < 6 && len(liveTags) > 0: // unsubscribe
					i := rng.Intn(len(liveTags))
					tag := liveTags[i]
					liveTags[i] = liveTags[len(liveTags)-1]
					liveTags = liveTags[:len(liveTags)-1]
					e := live[tag]
					delete(live, tag)
					for _, s := range []*Subscription{e.p, e.a, e.d} {
						if err := s.Unsubscribe(); err != nil {
							t.Fatal(err)
						}
					}
				case op < 7: // publish a small batch
					evs := make([]event.Event, 3)
					for i := range evs {
						seq++
						evs[i] = event.New().
							Set("cat", int64(rng.Intn(10))).
							Set("price", int64(rng.Intn(120))).
							Set("seq", seq)
					}
					publish(step, evs...)
				default: // publish one event
					seq++
					publish(step, event.New().
						Set("cat", int64(rng.Intn(10))).
						Set("price", int64(rng.Intn(120))).
						Set("seq", seq))
				}
			}

			st := dagb.Stats()
			if st.Dropped != 0 {
				t.Fatalf("drops invalidate the multiset comparison: %d", st.Dropped)
			}
			if st.FrontierFilters > st.DistinctFilters {
				t.Errorf("FrontierFilters %d > DistinctFilters %d", st.FrontierFilters, st.DistinctFilters)
			}
			if st.DistinctFilters > st.Subscriptions {
				t.Errorf("DistinctFilters %d > Subscriptions %d", st.DistinctFilters, st.Subscriptions)
			}
			if st.Subscriptions > 20 && st.FrontierFilters == st.DistinctFilters {
				t.Error("covering never attached a subscription; the script lost its teeth")
			}

			plain.Close()
			agg.Close()
			dagb.Close()
			want := (&recorder{seen: oracle}).sorted()
			for name, rec := range map[string]*recorder{"plain": &recPlain, "agg": &recAgg, "dag": &recDAG} {
				got := rec.sorted()
				if len(got) != len(want) {
					t.Fatalf("%s delivered %d events, oracle wants %d", name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s delivery %d = %+v, oracle wants %+v", name, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestDAGAggregateConcurrentChurn hammers nested covering filters with
// concurrent subscribe/publish/unsubscribe; under -race this pins the
// locking around poset mutation, promotion and the delivery walk, and the
// final state must be empty.
func TestDAGAggregateConcurrentChurn(t *testing.T) {
	b := New(Options{QueueSize: 256, AggregateDAG: true})
	defer b.Close()

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				s, err := b.Subscribe(dagBand(rng.Intn(2), rng.Intn(4)), func(event.Event) {})
				if err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(2) == 0 {
					if _, err := b.Publish(event.New().Set("cat", int64(rng.Intn(2))).Set("price", int64(rng.Intn(50)))); err != nil {
						t.Error(err)
						return
					}
				}
				if err := s.Unsubscribe(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := b.Stats(); st.Subscriptions != 0 || st.DistinctFilters != 0 || st.FrontierFilters != 0 || st.CoveredSubscribers != 0 {
		t.Errorf("after churn: %+v, want empty broker", st)
	}
}

// TestDAGPromoteBeforeRetract pins the delivery-continuity contract: a
// covered subscription keeps receiving matching events across the
// unsubscribe of the frontier filter that covered it.
func TestDAGPromoteBeforeRetract(t *testing.T) {
	b := New(Options{AggregateDAG: true})
	defer b.Close()

	var mu sync.Mutex
	counts := map[string]int{}
	handler := func(tag string) Handler {
		return func(event.Event) {
			mu.Lock()
			counts[tag]++
			mu.Unlock()
		}
	}

	broad, err := b.Subscribe(dagBand(1, 9), handler("broad"))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := b.Subscribe(dagBand(1, 0), handler("narrow"))
	if err != nil {
		t.Fatal(err)
	}
	if narrow.ID() != 0 {
		t.Fatalf("covered subscription has engine ID %d, want 0", narrow.ID())
	}
	if st := b.Stats(); st.FrontierFilters != 1 || st.DistinctFilters != 2 || st.CoveredSubscribers != 1 {
		t.Fatalf("covered attach: %+v", st)
	}

	ev := event.New().Set("cat", int64(1)).Set("price", int64(5))
	if n, _ := b.Publish(ev); n != 2 {
		t.Fatalf("Publish → %d, want both subscribers", n)
	}

	// Retracting the covering frontier filter must promote the covered one
	// into the engine; events keep flowing.
	if err := broad.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.FrontierFilters != 1 || st.DistinctFilters != 1 || st.CoveredSubscribers != 0 {
		t.Fatalf("after promotion: %+v", st)
	}
	if narrow.ID() == 0 {
		t.Fatal("promoted subscription still reports no engine entry")
	}
	if n, _ := b.Publish(ev); n != 1 {
		t.Fatalf("Publish after promotion → %d, want 1", n)
	}
	if err := narrow.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Subscriptions != 0 || st.FrontierFilters != 0 || st.DistinctFilters != 0 {
		t.Fatalf("after teardown: %+v", st)
	}

	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if counts["broad"] != 1 || counts["narrow"] != 2 {
		t.Errorf("deliveries = %v, want broad:1 narrow:2", counts)
	}
}

// TestStatsFilterAccountingSplit pins the DistinctFilters/FrontierFilters
// split across the three aggregation modes: without aggregation both equal
// the subscriber count; with key interning both equal the distinct-filter
// count; with DAG aggregation DistinctFilters keeps counting distinct live
// filters while FrontierFilters counts only engine entries.
func TestStatsFilterAccountingSplit(t *testing.T) {
	t.Run("off", func(t *testing.T) {
		b := New(Options{})
		defer b.Close()
		for i := 0; i < 3; i++ {
			if _, err := b.Subscribe(aggFilter(1), func(event.Event) {}); err != nil {
				t.Fatal(err)
			}
		}
		st := b.Stats()
		if st.DistinctFilters != 3 || st.FrontierFilters != 3 || st.CoveredSubscribers != 0 {
			t.Errorf("off: %+v, want DistinctFilters=FrontierFilters=3", st)
		}
	})
	t.Run("aggregate", func(t *testing.T) {
		b := New(Options{Aggregate: true})
		defer b.Close()
		for i := 0; i < 3; i++ {
			if _, err := b.Subscribe(aggFilter(1), func(event.Event) {}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := b.Subscribe(aggFilter(2), func(event.Event) {}); err != nil {
			t.Fatal(err)
		}
		st := b.Stats()
		if st.DistinctFilters != 2 || st.FrontierFilters != 2 {
			t.Errorf("aggregate: %+v, want DistinctFilters=FrontierFilters=2", st)
		}
		if st.AggregatedSubscribers != 2 {
			t.Errorf("aggregate: AggregatedSubscribers = %d, want 2", st.AggregatedSubscribers)
		}
	})
	t.Run("dag", func(t *testing.T) {
		b := New(Options{AggregateDAG: true})
		defer b.Close()
		// One covering chain (3 distinct filters, 1 frontier) plus one
		// duplicate of the narrowest (interned, not a new filter).
		for rank := 0; rank < 3; rank++ {
			if _, err := b.Subscribe(dagBand(1, rank), func(event.Event) {}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := b.Subscribe(dagBand(1, 0), func(event.Event) {}); err != nil {
			t.Fatal(err)
		}
		st := b.Stats()
		if st.Subscriptions != 4 {
			t.Fatalf("dag: %+v, want 4 subscriptions", st)
		}
		if st.DistinctFilters != 3 {
			t.Errorf("dag: DistinctFilters = %d, want 3 (interned duplicate is not distinct)", st.DistinctFilters)
		}
		if st.FrontierFilters != 1 {
			t.Errorf("dag: FrontierFilters = %d, want 1 (only the widest band holds an engine entry)", st.FrontierFilters)
		}
		if st.CoveredSubscribers != 3 {
			t.Errorf("dag: CoveredSubscribers = %d, want 3 (two narrow filters, one duplicated)", st.CoveredSubscribers)
		}
		if st.AggregatedSubscribers != 1 {
			t.Errorf("dag: AggregatedSubscribers = %d, want 1 (the interned duplicate)", st.AggregatedSubscribers)
		}
	})
}
