package broker

import (
	"fmt"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// BenchmarkPublish measures end-to-end publication (match + enqueue) with
// 1000 subscriptions of which ~10 match each event.
func BenchmarkPublish(b *testing.B) {
	br := New(Options{QueueSize: 1024})
	defer br.Close()
	for i := 0; i < 1000; i++ {
		expr := boolexpr.NewAnd(
			boolexpr.Pred("bucket", predicate.Eq, i/10),
			boolexpr.NewOr(
				boolexpr.Pred("price", predicate.Gt, i),
				boolexpr.Pred("price", predicate.Le, i-500),
			),
		)
		if _, err := br.Subscribe(expr, func(event.Event) {}); err != nil {
			b.Fatal(err)
		}
	}
	evs := make([]event.Event, 32)
	for i := range evs {
		evs[i] = event.New().Set("bucket", i%100).Set("price", 2000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Publish(evs[i%len(evs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishParallel measures the same publication path with
// GOMAXPROCS concurrent publishers. Publish holds only read locks, so on
// multi-core hardware per-op time should shrink with the core count.
func BenchmarkPublishParallel(b *testing.B) {
	br := New(Options{QueueSize: 1024})
	defer br.Close()
	for i := 0; i < 1000; i++ {
		expr := boolexpr.NewAnd(
			boolexpr.Pred("bucket", predicate.Eq, i/10),
			boolexpr.NewOr(
				boolexpr.Pred("price", predicate.Gt, i),
				boolexpr.Pred("price", predicate.Le, i-500),
			),
		)
		if _, err := br.Subscribe(expr, func(event.Event) {}); err != nil {
			b.Fatal(err)
		}
	}
	evs := make([]event.Event, 32)
	for i := range evs {
		evs[i] = event.New().Set("bucket", i%100).Set("price", 2000)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := br.Publish(evs[i%len(evs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkSubscribeUnsubscribe measures registration churn.
func BenchmarkSubscribeUnsubscribe(b *testing.B) {
	br := New(Options{})
	defer br.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expr := boolexpr.Pred("a", predicate.Gt, i)
		sub, err := br.Subscribe(expr, func(event.Event) {})
		if err != nil {
			b.Fatal(err)
		}
		if err := sub.Unsubscribe(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishBatch measures the batched publication path at several
// batch sizes over the BenchmarkPublish workload; per-op time is per
// event, so the delta against BenchmarkPublish is the amortised envelope.
func BenchmarkPublishBatch(b *testing.B) {
	for _, size := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			br := New(Options{QueueSize: 1024})
			defer br.Close()
			for i := 0; i < 1000; i++ {
				expr := boolexpr.NewAnd(
					boolexpr.Pred("bucket", predicate.Eq, i/10),
					boolexpr.NewOr(
						boolexpr.Pred("price", predicate.Gt, i),
						boolexpr.Pred("price", predicate.Le, i-500),
					),
				)
				if _, err := br.Subscribe(expr, func(event.Event) {}); err != nil {
					b.Fatal(err)
				}
			}
			evs := make([]event.Event, size)
			for i := range evs {
				evs[i] = event.New().Set("bucket", i%100).Set("price", 2000)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				if _, err := br.PublishBatch(evs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
