package broker

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
)

// The batched-publish differential property: over any workload —
// sharded or unsharded, with subscribe/unsubscribe churn interleaved —
// PublishBatch delivers exactly the same multiset of (subscriber, event)
// pairs as sequential Publish, and returns the same per-event counts.
//
// Events carry a unique "seq" attribute so deliveries are attributable;
// queues are sized so nothing is dropped (drops are timing-dependent and
// would make the multisets incomparable), and the zero-drop assumption is
// asserted at the end.

// delivery is one delivered (logical subscriber, event sequence) pair.
type delivery struct {
	sub int
	seq int64
}

// recordingBroker wraps a broker whose handlers record every delivery.
type recordingBroker struct {
	b  *Broker
	mu sync.Mutex
	// got is the delivered multiset: (subscriber, seq) → count.
	got  map[delivery]int
	subs []*Subscription // by logical index; nil after unsubscribe
}

func newRecordingBroker(opts Options) *recordingBroker {
	return &recordingBroker{b: New(opts), got: map[delivery]int{}}
}

// subscribe registers expression x as the next logical subscriber.
func (r *recordingBroker) subscribe(t *testing.T, x boolexpr.Expr) {
	t.Helper()
	i := len(r.subs)
	sub, err := r.b.Subscribe(x, func(ev event.Event) {
		v, ok := ev.Get("seq")
		if !ok {
			t.Errorf("delivered event without seq: %s", ev)
			return
		}
		r.mu.Lock()
		r.got[delivery{sub: i, seq: v.Int()}]++
		r.mu.Unlock()
	})
	if err != nil {
		t.Fatalf("subscribe %d: %v", i, err)
	}
	r.subs = append(r.subs, sub)
}

func (r *recordingBroker) unsubscribe(t *testing.T, i int) {
	t.Helper()
	if r.subs[i] == nil {
		return
	}
	if err := r.subs[i].Unsubscribe(); err != nil {
		t.Fatalf("unsubscribe %d: %v", i, err)
	}
	r.subs[i] = nil
}

// diffEvent draws a random event over the RandomExpr attribute pool,
// tagged with the unique sequence number.
func diffEvent(rng *rand.Rand, seq int64) event.Event {
	ev := event.New().Set("seq", seq)
	for i := 0; i < 6; i++ {
		attr := fmt.Sprintf("a%d", i)
		switch rng.Intn(6) {
		case 0: // absent
		case 1:
			ev = ev.Set(attr, rng.Intn(100))
		case 2:
			ev = ev.Set(attr, float64(rng.Intn(100))+0.5)
		case 3:
			ev = ev.Set(attr, "s"+fmt.Sprint(rng.Intn(50)))
		case 4:
			ev = ev.Set(attr, rng.Intn(2) == 0)
		default:
			ev = ev.Set(attr, rng.Intn(10))
		}
	}
	return ev
}

// compare closes both brokers (draining all queues) and asserts the
// delivered multisets are identical and nothing was dropped.
func compare(t *testing.T, batched, single *recordingBroker) {
	t.Helper()
	if err := batched.b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := single.b.Close(); err != nil {
		t.Fatal(err)
	}
	if d := batched.b.Stats().Dropped; d != 0 {
		t.Fatalf("batched broker dropped %d events; differential comparison needs zero drops (raise QueueSize)", d)
	}
	if d := single.b.Stats().Dropped; d != 0 {
		t.Fatalf("single broker dropped %d events; differential comparison needs zero drops (raise QueueSize)", d)
	}
	if len(batched.got) == 0 {
		t.Fatal("no deliveries at all; differential test is vacuous")
	}
	for k, n := range batched.got {
		if single.got[k] != n {
			t.Fatalf("delivery %+v: batched %d times, single %d times", k, n, single.got[k])
		}
	}
	for k, n := range single.got {
		if batched.got[k] != n {
			t.Fatalf("delivery %+v: single %d times, batched %d times", k, n, batched.got[k])
		}
	}
}

// TestPublishBatchDifferential drives identical randomized workloads —
// subscription rounds, interleaved unsubscription churn, batches of
// varying size (including empty and single-event ones) — through
// PublishBatch on one broker and sequential Publish on another, and
// requires identical per-event counts and identical delivered multisets.
func TestPublishBatchDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, seed := range []int64{1, 2} {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				t.Parallel()
				opts := Options{QueueSize: 4096, Shards: shards}
				batched := newRecordingBroker(opts)
				single := newRecordingBroker(opts)
				rng := rand.New(rand.NewSource(seed))
				cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3, AllowNot: true}

				var seq int64
				const rounds, subsPerRound = 6, 15
				for r := 0; r < rounds; r++ {
					for i := 0; i < subsPerRound; i++ {
						x := boolexpr.RandomExpr(rng, cfg)
						batched.subscribe(t, x)
						single.subscribe(t, x)
					}
					// Churn: retire ~1/4 of the live population in both brokers.
					for i := range batched.subs {
						if batched.subs[i] != nil && rng.Intn(4) == 0 {
							batched.unsubscribe(t, i)
							single.unsubscribe(t, i)
						}
					}
					// A few batches of varying size; 0 and 1 are always hit.
					for _, size := range []int{0, 1, rng.Intn(7), 8 + rng.Intn(25)} {
						evs := make([]event.Event, size)
						for i := range evs {
							seq++
							evs[i] = diffEvent(rng, seq)
						}
						counts, err := batched.b.PublishBatch(evs)
						if err != nil {
							t.Fatalf("PublishBatch: %v", err)
						}
						if len(counts) != len(evs) {
							t.Fatalf("PublishBatch returned %d counts for %d events", len(counts), len(evs))
						}
						for i, ev := range evs {
							n, err := single.b.Publish(ev)
							if err != nil {
								t.Fatalf("Publish: %v", err)
							}
							if n != counts[i] {
								t.Fatalf("round %d event %d: batch count %d, single count %d", r, i, counts[i], n)
							}
						}
					}
				}
				if got := batched.b.Stats().Batches; got == 0 {
					t.Error("Stats.Batches not counted")
				}
				compare(t, batched, single)
			})
		}
	}
}

// TestPublishBatchConcurrentDifferential runs the same property with
// several goroutines batching concurrently (the store quiescent during
// the publish phase, so counts stay comparable): every goroutine's
// batches go through PublishBatch on one broker and sequential Publish on
// the other, under -race.
func TestPublishBatchConcurrentDifferential(t *testing.T) {
	opts := Options{QueueSize: 4096, Shards: 4}
	batched := newRecordingBroker(opts)
	single := newRecordingBroker(opts)
	rng := rand.New(rand.NewSource(7))
	cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3, AllowNot: true}
	for i := 0; i < 50; i++ {
		x := boolexpr.RandomExpr(rng, cfg)
		batched.subscribe(t, x)
		single.subscribe(t, x)
	}

	const workers, batchesPerWorker, batchSize = 4, 12, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + int64(w)))
			for bi := 0; bi < batchesPerWorker; bi++ {
				evs := make([]event.Event, batchSize)
				for i := range evs {
					// Disjoint per-worker sequence spaces keep seqs unique.
					seq := int64(w)*1_000_000 + int64(bi)*batchSize + int64(i)
					evs[i] = diffEvent(rng, seq)
				}
				counts, err := batched.b.PublishBatch(evs)
				if err != nil {
					t.Errorf("worker %d: PublishBatch: %v", w, err)
					return
				}
				for i, ev := range evs {
					n, err := single.b.Publish(ev)
					if err != nil {
						t.Errorf("worker %d: Publish: %v", w, err)
						return
					}
					if n != counts[i] {
						t.Errorf("worker %d batch %d event %d: batch count %d, single %d", w, bi, i, counts[i], n)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	compare(t, batched, single)
}

// TestPublishBatchUnderChurnRace exercises PublishBatch racing real
// Subscribe/Unsubscribe churn and plain Publish on the same broker. With
// a mutating store no exact multiset is defined; the test pins the parts
// that are: per-batch result shape, monotone bookkeeping, and (via -race)
// the absence of data races on the coalesced enqueue path.
func TestPublishBatchUnderChurnRace(t *testing.T) {
	b := New(Options{QueueSize: 64, Shards: 4})
	defer b.Close()
	rng := rand.New(rand.NewSource(3))
	cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3, AllowNot: true}
	for i := 0; i < 30; i++ {
		if _, err := b.Subscribe(boolexpr.RandomExpr(rng, cfg), func(event.Event) {}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(4))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sub, err := b.Subscribe(boolexpr.RandomExpr(rng, cfg), func(event.Event) {})
			if err != nil {
				t.Errorf("churn subscribe: %v", err)
				return
			}
			if err := sub.Unsubscribe(); err != nil {
				t.Errorf("churn unsubscribe: %v", err)
				return
			}
		}
	}()

	var pubWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		pubWG.Add(1)
		go func(w int) {
			defer pubWG.Done()
			rng := rand.New(rand.NewSource(10 + int64(w)))
			for i := 0; i < 60; i++ {
				evs := make([]event.Event, 1+rng.Intn(16))
				for j := range evs {
					evs[j] = diffEvent(rng, int64(w*10000+i*100+j))
				}
				counts, err := b.PublishBatch(evs)
				if err != nil {
					t.Errorf("PublishBatch: %v", err)
					return
				}
				if len(counts) != len(evs) {
					t.Errorf("got %d counts for %d events", len(counts), len(evs))
					return
				}
				if _, err := b.Publish(evs[0]); err != nil {
					t.Errorf("Publish: %v", err)
					return
				}
			}
		}(w)
	}
	pubWG.Wait()
	close(stop)
	churnWG.Wait()

	st := b.Stats()
	if st.Published == 0 || st.Batches == 0 {
		t.Errorf("no publishes recorded: %+v", st)
	}
}
