package broker

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

func TestSubscribeHandlerDelivery(t *testing.T) {
	b := New(Options{})
	defer b.Close()

	var got atomic.Int64
	sub, err := b.Subscribe(boolexpr.Pred("price", predicate.Gt, 100), func(ev event.Event) {
		got.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := b.Publish(event.New().Set("price", 150)); err != nil || n != 1 {
		t.Fatalf("Publish = %d, %v", n, err)
	}
	if n, err := b.Publish(event.New().Set("price", 50)); err != nil || n != 0 {
		t.Fatalf("non-matching Publish = %d, %v", n, err)
	}
	waitFor(t, func() bool { return got.Load() == 1 }, "handler not invoked")
	if sub.Dropped() != 0 {
		t.Errorf("Dropped = %d", sub.Dropped())
	}
}

func TestSubscribeChanDelivery(t *testing.T) {
	b := New(Options{})
	defer b.Close()

	sub, ch, err := b.SubscribeChan(boolexpr.Pred("sym", predicate.Eq, "A"))
	if err != nil {
		t.Fatal(err)
	}
	want := event.New().Set("sym", "A").Set("px", 10)
	if _, err := b.Publish(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-ch:
		if !got.Equal(want) {
			t.Errorf("received %s, want %s", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event received")
	}
	// Unsubscribe closes the channel after drain.
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-ch; open {
		t.Error("channel should be closed after Unsubscribe")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := New(Options{})
	defer b.Close()

	var got atomic.Int64
	sub, err := b.Subscribe(boolexpr.Pred("a", predicate.Eq, 1), func(event.Event) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(event.New().Set("a", 1))
	waitFor(t, func() bool { return got.Load() == 1 }, "first event not delivered")

	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if n, _ := b.Publish(event.New().Set("a", 1)); n != 0 {
		t.Errorf("Publish after unsubscribe enqueued %d", n)
	}
	if b.NumSubscriptions() != 0 {
		t.Errorf("NumSubscriptions = %d", b.NumSubscriptions())
	}
	// Idempotent.
	if err := sub.Unsubscribe(); err != nil {
		t.Errorf("second Unsubscribe: %v", err)
	}
}

func TestMultipleSubscribersFanout(t *testing.T) {
	b := New(Options{})
	defer b.Close()

	const n = 20
	var mu sync.Mutex
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		i := i
		threshold := i * 10
		_, err := b.Subscribe(boolexpr.Pred("v", predicate.Gt, threshold), func(event.Event) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// v=95 matches thresholds 0..90 → subscribers 0..9.
	if got, _ := b.Publish(event.New().Set("v", 95)); got != 10 {
		t.Fatalf("Publish matched %d, want 10", got)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(counts) == 10
	}, "fanout incomplete")
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 10; i++ {
		if counts[i] != 1 {
			t.Errorf("subscriber %d received %d events", i, counts[i])
		}
	}
}

func TestSlowConsumerDropsNotBlocks(t *testing.T) {
	b := New(Options{QueueSize: 2})
	defer b.Close()

	block := make(chan struct{})
	var handled atomic.Int64
	sub, err := b.Subscribe(boolexpr.Pred("a", predicate.Eq, 1), func(event.Event) {
		<-block
		handled.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Queue capacity 2 + 1 in-flight in the handler; publish 10, the rest
	// must drop without blocking Publish.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			b.Publish(event.New().Set("a", 1))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on slow consumer")
	}
	waitFor(t, func() bool { return sub.Dropped() > 0 }, "no drops recorded")
	close(block)
	waitFor(t, func() bool {
		return handled.Load()+int64(sub.Dropped()) == 10
	}, "handled+dropped should account for all events")
	if st := b.Stats(); st.Dropped != sub.Dropped() {
		t.Errorf("broker dropped %d, subscription %d", st.Dropped, sub.Dropped())
	}
}

func TestCloseWaitsAndRejects(t *testing.T) {
	b := New(Options{})
	var got atomic.Int64
	_, err := b.Subscribe(boolexpr.Pred("a", predicate.Eq, 1), func(event.Event) {
		time.Sleep(10 * time.Millisecond)
		got.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Publish(event.New().Set("a", 1))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Close must have waited for the in-flight delivery.
	if got.Load() != 1 {
		t.Errorf("delivered = %d after Close, want 1", got.Load())
	}
	if _, err := b.Publish(event.New().Set("a", 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after Close err = %v", err)
	}
	if _, err := b.Subscribe(boolexpr.Pred("a", predicate.Eq, 1), func(event.Event) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after Close err = %v", err)
	}
	// Idempotent.
	if err := b.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	if _, err := b.Subscribe(boolexpr.Pred("a", predicate.Eq, 1), nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := b.Subscribe(nil, func(event.Event) {}); err == nil {
		t.Error("nil expression accepted")
	}
}

func TestStats(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	_, ch, err := b.SubscribeChan(boolexpr.Pred("a", predicate.Gt, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Publish(event.New().Set("a", i)) // a>0 matches for i>=1 → 4 events
	}
	for i := 0; i < 4; i++ {
		<-ch
	}
	st := b.Stats()
	if st.Published != 5 || st.Delivered != 4 || st.Subscriptions != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New(Options{QueueSize: 256})
	defer b.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sub, err := b.Subscribe(boolexpr.Pred("x", predicate.Gt, w*100+i), func(event.Event) {})
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := sub.Unsubscribe(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := b.Publish(event.New().Set("x", i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b.NumSubscriptions() != 200 {
		t.Errorf("NumSubscriptions = %d, want 200", b.NumSubscriptions())
	}
}

// TestShardedBrokerDelivery pins the Shards option end to end: a sharded
// broker delivers exactly like a single-engine broker, with churn and
// publishes racing across shards.
func TestShardedBrokerDelivery(t *testing.T) {
	b := New(Options{QueueSize: 256, Shards: 4})
	defer b.Close()

	var hits [8]atomic.Int64
	for i := range hits {
		i := i
		if _, err := b.Subscribe(boolexpr.Pred("k", predicate.Eq, i), func(event.Event) {
			hits[i].Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.NumSubscriptions() != len(hits) {
		t.Fatalf("NumSubscriptions = %d, want %d", b.NumSubscriptions(), len(hits))
	}
	for i := range hits {
		if n, err := b.Publish(event.New().Set("k", i)); err != nil || n != 1 {
			t.Fatalf("Publish k=%d = %d, %v", i, n, err)
		}
	}
	for i := range hits {
		i := i
		waitFor(t, func() bool { return hits[i].Load() == 1 },
			"sharded delivery missing for k="+string(rune('0'+i)))
	}
}

// TestShardedBrokerConcurrentChurn is TestConcurrentPublishSubscribe over
// a sharded engine: subscription churn on some shards must never corrupt
// delivery bookkeeping on others.
func TestShardedBrokerConcurrentChurn(t *testing.T) {
	b := New(Options{QueueSize: 256, Shards: 4})
	defer b.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sub, err := b.Subscribe(boolexpr.Pred("x", predicate.Gt, w*100+i), func(event.Event) {})
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := sub.Unsubscribe(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := b.Publish(event.New().Set("x", i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b.NumSubscriptions() != 200 {
		t.Errorf("NumSubscriptions = %d, want 200", b.NumSubscriptions())
	}
}
