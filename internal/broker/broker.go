// Package broker implements a single-process publish/subscribe broker on
// top of the non-canonical matching engine: subscribers register Boolean
// subscriptions and receive matching events asynchronously.
//
// Delivery model: every subscriber owns a bounded queue drained by a
// dedicated goroutine. Publish never blocks on a slow subscriber — when a
// queue is full the event is dropped for that subscriber and counted
// (Subscription.Dropped), which is the standard back-pressure posture for
// notification services. Close stops intake and waits for all delivery
// goroutines to drain.
//
// Concurrency: Publish holds only read locks end to end — the broker's
// subscriber map and the engine's subscription store are both
// RWMutex-guarded — so concurrent publishers match and enqueue in parallel;
// Subscribe/Unsubscribe briefly exclude them while mutating the store.
//
// Scaling: with Options.Shards > 1 the broker partitions its subscriptions
// across that many independent engine shards (internal/shard).
// Subscribe/Unsubscribe then write-lock a single shard, so subscription
// churn stalls only 1/N of each publication's matching work, and a single
// Publish matches on up to GOMAXPROCS cores.
//
// Aggregation: with Options.Aggregate the broker interns filters by their
// canonical key (internal/cover): subscribers with identical filters share
// one engine subscription fanning out to all of them, so engine size — and
// therefore matching work — tracks the number of *distinct* filters rather
// than the number of subscribers. Unsubscribe decrements the share count
// and only the last subscriber detaches the engine entry. Under
// filter-popularity skew (many users wanting the same feeds) this is the
// difference between an engine of millions of entries and one of
// thousands; Stats.DistinctFilters and Stats.AggregatedSubscribers make
// the effect observable.
//
// DAG aggregation: Options.AggregateDAG goes further and maintains the
// covering poset of live filters (internal/cover/dag): a subscription whose
// filter is provably covered by a live one (cover.Covers) attaches beneath
// it without touching the engine, so engine size tracks the covering
// *frontier* — the uncovered-maximal filters — rather than even the
// distinct-filter count. Delivery stays exact: events matching a frontier
// entry are re-checked against each covered descendant's own filter (with
// sound subtree pruning — an event that fails a filter fails everything it
// covers) before fan-out. Unsubscribing a frontier filter promotes its
// orphaned descendants back into the engine *before* the dying entry is
// retracted, mirroring the overlay's re-flood-before-retract rule, so
// matching never gaps. Stats.FrontierFilters and Stats.CoveredSubscribers
// make the additional saving observable.
package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/cover"
	"noncanon/internal/cover/dag"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/obs"
	"noncanon/internal/predicate"
	"noncanon/internal/shard"
	"noncanon/internal/subtree"
)

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("broker: closed")

// DefaultQueueSize is the per-subscriber event queue capacity.
const DefaultQueueSize = 64

// MaxShards re-exports the largest permitted shard count, so broker
// frontends can validate Options.Shards without reaching into the engine
// layers themselves.
const MaxShards = shard.MaxShards

// EngineConfig builds the engine options for Options.Engine from the two
// user-facing knobs, keeping subtree encodings and core options a broker
// concern: commands and servers configure engines through this function
// instead of importing internal/core and internal/subtree.
func EngineConfig(compact, reorder bool) core.Options {
	enc := subtree.PaperEncoding
	if compact {
		enc = subtree.CompactEncoding
	}
	return core.Options{Encoding: enc, Reorder: reorder}
}

// Handler consumes delivered events. Handlers run on the subscription's
// delivery goroutine; a slow handler delays (and eventually drops) only its
// own subscription's events.
type Handler func(ev event.Event)

// Options configures a broker.
type Options struct {
	// QueueSize is the per-subscriber queue capacity
	// (default DefaultQueueSize).
	QueueSize int
	// Shards partitions subscriptions across this many independent engine
	// shards (default 1: a single non-canonical engine). See
	// internal/shard for the SubID layout and concurrency win.
	Shards int
	// Aggregate interns filters by canonical key (cover.Key): subscribers
	// with identical filters share one engine subscription, so engine size
	// tracks distinct filters instead of subscriber count. Delivery
	// semantics are unchanged — every subscriber still receives every
	// matching event on its own queue.
	Aggregate bool
	// AggregateDAG additionally maintains the covering poset of live
	// filters (internal/cover/dag): only frontier (uncovered-maximal)
	// filters occupy engine entries, covered subscriptions attach beneath
	// them and are re-checked against their own filter at delivery.
	// Implies Aggregate's key interning. Delivery semantics are unchanged.
	AggregateDAG bool
	// Engine configures the underlying non-canonical engine(s).
	Engine core.Options
	// Metrics, when set, is the obs registry the broker's instruments live
	// in (counters, live gauges, and the match/publish latency
	// histograms). Nil keeps a private registry: Stats still works, the
	// counters cost exactly what they always did (one atomic add), and the
	// latency clock — two time.Now calls per publish — stays off.
	Metrics *obs.Registry
}

// engine is the subset of matcher.Matcher the broker drives; both
// core.Engine and shard.Engine satisfy it.
type engine interface {
	Subscribe(expr boolexpr.Expr) (matcher.SubID, error)
	Unsubscribe(id matcher.SubID) error
	Match(ev event.Event) []matcher.SubID
	MatchInto(ev event.Event, out []matcher.SubID) []matcher.SubID
	MatchBatch(evs []event.Event) [][]matcher.SubID
	NumSubscriptions() int
}

// matchBuf is the pooled result buffer of the publish path: MatchInto
// appends into its recycled slice, so a steady-state Publish allocates no
// match-result storage at all.
type matchBuf struct {
	ids []matcher.SubID
}

// Broker routes published events to matching subscribers.
type Broker struct {
	opts Options
	eng  engine

	mu     sync.RWMutex
	groups map[matcher.SubID]*filterGroup // engine entry → attached subscribers
	byKey  map[string]*filterGroup        // intern table (Aggregate without DAG)
	dag    *dag.DAG                       // covering poset (AggregateDAG only)
	nsubs  int                            // live subscriber count
	// covered is the number of live subscribers attached to non-frontier
	// poset nodes (AggregateDAG only); guarded by mu.
	covered int
	closed  bool

	wg sync.WaitGroup

	// Activity instruments (internal/obs handles; a private registry when
	// Options.Metrics is nil, so incrementing costs one atomic either way).
	published  *obs.Counter
	batches    *obs.Counter
	delivered  *obs.Counter
	dropped    *obs.Counter
	aggregated *obs.Counter // subscribes deduped onto an existing filter

	// congestedSubs gauges how many live subscriptions are currently
	// congested (dropped an event and have not yet drained); Congested
	// derives the broker-wide backpressure signal from it.
	congestedSubs *obs.Gauge

	// timed gates the latency clock: true only with an exported registry
	// (Options.Metrics set), so the un-instrumented publish path pays no
	// time.Now calls. Even then only every latencySampleEvery-th Publish
	// is clocked (latencyTick selects it): three clock reads cost more
	// than the whole instrument budget on a small store, and systematic
	// 1-in-8 sampling preserves the quantiles while amortising the clock
	// to nothing. Batch calls are always clocked — the batch already
	// amortises the reads.
	timed          bool
	latencyTick    atomic.Uint64
	matchLatency   *obs.Histogram
	publishLatency *obs.Histogram

	// matchPool recycles *matchBuf values across Publish calls.
	matchPool sync.Pool
}

// latencySampleEvery is the Publish latency-clock sampling interval; it
// must be a power of two (the hot path masks, not divides).
const latencySampleEvery = 8

// filterGroup is the fan-out set of every subscriber that registered the
// (canonically) same filter. Without aggregation each group has exactly
// one member. Under plain aggregation each group owns one engine entry;
// under DAG aggregation the group hangs off its poset node (node.Data
// points back here) and id names an engine entry only while the node is
// on the covering frontier.
type filterGroup struct {
	id      matcher.SubID
	key     string    // intern key; "" when aggregation is off
	node    *dag.Node // covering-poset node (AggregateDAG only)
	members []*Subscription
}

// remove detaches s in O(1) via its stored member index and reports
// whether it was attached. Mass unsubscribe of a hot aggregated filter
// happens under the broker write lock, so removal must not scan the
// group's (possibly huge) member list.
func (g *filterGroup) remove(s *Subscription) bool {
	i := s.gidx
	if i < 0 || i >= len(g.members) || g.members[i] != s {
		return false
	}
	last := len(g.members) - 1
	moved := g.members[last]
	g.members[i] = moved
	moved.gidx = i
	g.members[last] = nil
	g.members = g.members[:last]
	s.gidx = -1
	return true
}

// Subscription is a live registration with its delivery pipeline.
type Subscription struct {
	b       *Broker
	g       *filterGroup // owning group; guarded by b.mu
	gidx    int          // index in its filterGroup's members; guarded by b.mu
	queue   chan event.Event
	out     chan event.Event // non-nil for channel subscriptions
	dropped atomic.Uint64

	// congested flips on when a publish drops for this subscription and
	// off once the delivery goroutine drains the queue to a quarter of its
	// capacity (hysteresis, so the gauge doesn't flap at the boundary).
	congested atomic.Bool

	cancelOnce sync.Once
}

// markCongested records a queue-full drop in the broker-wide gauge.
func (s *Subscription) markCongested() {
	if s.congested.CompareAndSwap(false, true) {
		s.b.congestedSubs.Add(1)
	}
}

// maybeClearCongested drops the congestion mark once the queue has drained
// below a quarter of its capacity; called from the delivery goroutine.
func (s *Subscription) maybeClearCongested() {
	if s.congested.Load() && len(s.queue) <= cap(s.queue)/4 {
		s.clearCongested()
	}
}

// clearCongested unconditionally removes this subscription from the gauge
// (drain threshold reached, unsubscribe, or broker close).
func (s *Subscription) clearCongested() {
	if s.congested.CompareAndSwap(true, false) {
		s.b.congestedSubs.Add(-1)
	}
}

// New builds an empty broker.
func New(opts Options) *Broker {
	if opts.QueueSize <= 0 {
		opts.QueueSize = DefaultQueueSize
	}
	var eng engine
	if opts.Shards > 1 {
		eng = shard.New(shard.Options{Shards: opts.Shards, Engine: opts.Engine})
	} else {
		eng = core.New(predicate.NewRegistry(), index.New(), opts.Engine)
	}
	b := &Broker{
		opts:   opts,
		eng:    eng,
		groups: make(map[matcher.SubID]*filterGroup, 64),
	}
	if opts.AggregateDAG {
		b.dag = dag.New() // the poset owns the intern table in this mode
	} else if opts.Aggregate {
		b.byKey = make(map[string]*filterGroup, 64)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// Causes before effects (obs snapshots read newest-registered first):
	// published precedes delivered/dropped, so a registry snapshot cannot
	// show a delivery whose publication it missed.
	b.published = reg.Counter("broker_published_total")
	b.batches = reg.Counter("broker_batches_total")
	b.aggregated = reg.Counter("broker_aggregated_total")
	b.delivered = reg.Counter("broker_delivered_total")
	b.dropped = reg.Counter("broker_dropped_total")
	b.congestedSubs = reg.Gauge("broker_congested_subscriptions")
	b.matchLatency = reg.Histogram("broker_match_latency_seconds")
	b.publishLatency = reg.Histogram("broker_publish_latency_seconds")
	b.timed = opts.Metrics != nil
	if b.timed {
		// Live structure gauges, computed at scrape time under the broker
		// lock (scrapes are cold-path; Registry.Snapshot runs callbacks
		// with no registry lock held).
		reg.GaugeFunc("broker_subscriptions", func() int64 {
			return int64(b.NumSubscriptions())
		})
		reg.GaugeFunc("broker_engine_entries", func() int64 {
			st := b.Stats()
			return int64(st.FrontierFilters)
		})
	}
	return b
}

// Subscribe registers an expression with a handler. The handler runs on a
// dedicated goroutine owned by the subscription.
func (b *Broker) Subscribe(expr boolexpr.Expr, h Handler) (*Subscription, error) {
	if h == nil {
		return nil, fmt.Errorf("broker: nil handler")
	}
	s, err := b.subscribe(expr, nil)
	if err != nil {
		return nil, err
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for ev := range s.queue {
			h(ev)
			b.delivered.Inc()
			s.maybeClearCongested()
		}
	}()
	return s, nil
}

// SubscribeChan registers an expression and returns a receive channel. The
// channel is closed after Unsubscribe (or broker Close) once queued events
// are drained.
func (b *Broker) SubscribeChan(expr boolexpr.Expr) (*Subscription, <-chan event.Event, error) {
	out := make(chan event.Event, b.opts.QueueSize)
	s, err := b.subscribe(expr, out)
	if err != nil {
		return nil, nil, err
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer close(out)
		for ev := range s.queue {
			out <- ev
			b.delivered.Inc()
			s.maybeClearCongested()
		}
	}()
	return s, out, nil
}

func (b *Broker) subscribe(expr boolexpr.Expr, out chan event.Event) (*Subscription, error) {
	var key string
	if b.opts.Aggregate || b.opts.AggregateDAG {
		// Key computation walks the expression; do it outside the lock.
		key = cover.Key(expr)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	var g *filterGroup
	var err error
	if b.dag != nil {
		g, err = b.subscribeDAG(key, expr)
	} else {
		if b.opts.Aggregate {
			g = b.byKey[key]
		}
		if g == nil {
			var id matcher.SubID
			id, err = b.eng.Subscribe(expr)
			if err == nil {
				g = &filterGroup{id: id, key: key}
				b.groups[id] = g
				if b.opts.Aggregate {
					b.byKey[key] = g
				}
			}
		} else {
			b.aggregated.Inc()
		}
	}
	if err != nil {
		return nil, err
	}
	s := &Subscription{
		b:     b,
		g:     g,
		gidx:  len(g.members),
		queue: make(chan event.Event, b.opts.QueueSize),
		out:   out,
	}
	g.members = append(g.members, s)
	b.nsubs++
	if b.dag != nil && !g.node.Frontier() {
		b.covered++
	}
	return s, nil
}

// subscribeDAG interns the filter into the covering poset and keeps the
// engine equal to the frontier. Caller holds the write lock and appends
// the new member afterwards. Ordering: a brand-new frontier filter enters
// the engine before any entries it demotes are retracted, so matching
// never gaps.
func (b *Broker) subscribeDAG(key string, expr boolexpr.Expr) (*filterGroup, error) {
	res := b.dag.AddKeyed(key, expr)
	g, _ := res.Node.Data.(*filterGroup)
	if g == nil {
		g = &filterGroup{key: key, node: res.Node}
		res.Node.Data = g
	}
	if res.New && res.Frontier {
		id, err := b.eng.Subscribe(expr)
		if err != nil {
			// Roll back the insert; Release re-promotes anything the
			// failed node demoted, and their engine entries were never
			// touched, so the broker is back to its prior state.
			b.dag.Release(res.Node)
			res.Node.Data = nil
			return nil, err
		}
		g.id = id
		b.groups[id] = g
	}
	if !res.New {
		b.aggregated.Inc()
	}
	for _, f := range res.Demoted {
		fg := f.Data.(*filterGroup)
		delete(b.groups, fg.id)
		_ = b.eng.Unsubscribe(fg.id)
		fg.id = 0
		b.covered += len(fg.members)
	}
	return g, nil
}

// ID returns the engine subscription ID. With Options.Aggregate,
// subscribers sharing a filter share the ID — it names the engine entry,
// not the subscriber. With Options.AggregateDAG a covered subscription has
// no engine entry of its own and ID reports 0 until (if ever) its filter
// is promoted to the covering frontier.
func (s *Subscription) ID() matcher.SubID {
	s.b.mu.RLock()
	defer s.b.mu.RUnlock()
	return s.g.id
}

// Dropped returns how many events were discarded because this
// subscription's queue was full.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Unsubscribe removes the subscription and ends its delivery goroutine
// after draining queued events. Under aggregation the shared engine entry
// is detached only when the last attached subscriber unsubscribes; under
// DAG aggregation a dying frontier filter first promotes its orphaned
// covered descendants into the engine, then retracts, so matching never
// gaps. It is idempotent.
func (s *Subscription) Unsubscribe() error {
	var err error
	didCancel := false
	s.cancelOnce.Do(func() {
		didCancel = true
		b := s.b
		b.mu.Lock()
		// After Close the broker already detached everyone; skip the
		// bookkeeping (Close's own cancelOnce pass handles the queue).
		if !b.closed && s.g.remove(s) {
			b.nsubs--
			g := s.g
			if b.dag != nil {
				err = b.unsubscribeDAG(g)
			} else if len(g.members) == 0 {
				delete(b.groups, g.id)
				if g.key != "" {
					delete(b.byKey, g.key)
				}
				err = b.eng.Unsubscribe(g.id)
			}
		}
		b.mu.Unlock()
		// No publisher can hold s.queue once the group membership is gone
		// (Publish enqueues under the read lock), so closing is safe.
		close(s.queue)
		s.clearCongested()
	})
	if !didCancel {
		return nil
	}
	return err
}

// unsubscribeDAG releases one reference on g's poset node after a member
// detached. When the node dies, children orphaned by its departure are
// subscribed (promoted to the frontier) *before* the dying entry is
// retracted. Caller holds the write lock.
func (b *Broker) unsubscribeDAG(g *filterGroup) error {
	if !g.node.Frontier() {
		b.covered--
	}
	res := b.dag.Release(g.node)
	if !res.Died {
		return nil
	}
	var err error
	for _, c := range res.Promoted {
		cg := c.Data.(*filterGroup)
		id, serr := b.eng.Subscribe(c.Expr())
		if serr != nil {
			err = serr
			continue
		}
		cg.id = id
		b.groups[id] = cg
		b.covered -= len(cg.members)
	}
	if res.WasFrontier {
		delete(b.groups, g.id)
		if uerr := b.eng.Unsubscribe(g.id); uerr != nil && err == nil {
			err = uerr
		}
	}
	g.node.Data = nil
	return err
}

// Publish matches the event and enqueues it to every matching subscriber.
// It returns the number of subscribers the event was enqueued for and
// never blocks on slow consumers. Publish runs entirely under read locks,
// so any number of publishers proceed concurrently.
//
//nclint:hotpath
func (b *Broker) Publish(ev event.Event) (int, error) {
	var start time.Time
	timed := b.timed && b.latencyTick.Add(1)&(latencySampleEvery-1) == 0
	if timed {
		start = time.Now()
	}
	// Subscriber queues outlive any frame buffer, so a borrowed event
	// (zero-copy wire decode) must take ownership of its strings before
	// the first enqueue. For owned events — the common case — Retain is a
	// free no-op.
	ev = ev.Retain()
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return 0, ErrClosed
	}
	b.published.Inc()
	n := 0
	var visited map[*dag.Node]bool
	mb, _ := b.matchPool.Get().(*matchBuf)
	if mb == nil {
		mb = &matchBuf{}
	}
	matched := b.eng.MatchInto(ev, mb.ids[:0])
	if timed {
		b.matchLatency.Observe(time.Since(start))
	}
	for _, id := range matched {
		g, ok := b.groups[id]
		if !ok {
			continue
		}
		for _, s := range g.members {
			select {
			case s.queue <- ev:
				n++
			default:
				s.dropped.Add(1)
				b.dropped.Inc()
				s.markCongested()
			}
		}
		if g.node != nil && len(g.node.Children()) > 0 {
			var dn int
			dn, visited = b.enqueueCovered(g.node, ev, visited)
			n += dn
		}
	}
	mb.ids = matched
	b.matchPool.Put(mb)
	if timed {
		b.publishLatency.Observe(time.Since(start))
	}
	return n, nil
}

// enqueueCovered fans a frontier match out to the matching covered
// descendants of the node's poset subtree. A frontier hit does not imply
// the covered filters match — coverage is one-way — so each descendant is
// re-checked against its own filter; a failing node soundly prunes its
// whole subtree (everything it covers matches a subset of what it does).
//
// visited dedups nodes with multiple parents and must be shared across
// every frontier root matched by the *same* event (two frontier entries
// can cover a common descendant) but never across events; it is allocated
// lazily on the first multi-parent node, so chain- and tree-shaped posets
// walk allocation-light. Caller holds the read lock.
func (b *Broker) enqueueCovered(root *dag.Node, ev event.Event, visited map[*dag.Node]bool) (int, map[*dag.Node]bool) {
	n := 0
	stack := append(make([]*dag.Node, 0, 16), root.Children()...)
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(c.Parents()) > 1 {
			if visited == nil {
				visited = make(map[*dag.Node]bool)
			}
			if visited[c] {
				continue
			}
			visited[c] = true
		}
		if !c.Expr().Eval(ev) {
			continue
		}
		g := c.Data.(*filterGroup)
		for _, s := range g.members {
			select {
			case s.queue <- ev:
				n++
			default:
				s.dropped.Add(1)
				b.dropped.Inc()
				s.markCongested()
			}
		}
		stack = append(stack, c.Children()...)
	}
	return n, visited
}

// PublishBatch matches and enqueues a batch of events, amortising the
// per-event envelope: the broker's read lock and the engine's matching
// pass (for the sharded engine, one shard fan-out instead of one per
// event) are taken once for the whole batch, and every event's matches
// are enqueued from that single pass.
//
// It returns the per-event enqueue counts, aligned with evs; counts[i]
// equals what Publish(evs[i]) would have returned. Like Publish it never
// blocks on slow consumers: events beyond a subscriber's queue are
// dropped and counted (Subscription.Dropped, Stats.Dropped), and
// Stats.Published grows by len(evs).
//
//nclint:hotpath
func (b *Broker) PublishBatch(evs []event.Event) ([]int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	counts := make([]int, len(evs))
	if len(evs) == 0 {
		return counts, nil
	}
	var start time.Time
	if b.timed {
		start = time.Now()
	}
	b.published.Add(uint64(len(evs)))
	b.batches.Inc()
	matches := b.eng.MatchBatch(evs)
	if b.timed {
		b.matchLatency.Observe(time.Since(start))
	}
	for i, ids := range matches {
		if len(ids) == 0 {
			continue
		}
		// Like Publish: a borrowed event must own its strings before the
		// first enqueue (free for owned events). Only matched events pay
		// even the check.
		ev := evs[i].Retain()
		var visited map[*dag.Node]bool // per event, shared across its roots
		for _, id := range ids {
			g, ok := b.groups[id]
			if !ok {
				continue
			}
			for _, s := range g.members {
				select {
				case s.queue <- ev:
					counts[i]++
				default:
					s.dropped.Add(1)
					b.dropped.Inc()
					s.markCongested()
				}
			}
			if g.node != nil && len(g.node.Children()) > 0 {
				var dn int
				dn, visited = b.enqueueCovered(g.node, ev, visited)
				counts[i] += dn
			}
		}
	}
	if b.timed {
		// One observation per batch call: batch latency is the quantity a
		// batch-tuning operator wants, and per-event division is done better
		// by the reader than by the hot path.
		b.publishLatency.Observe(time.Since(start))
	}
	return counts, nil
}

// Congested reports whether the broker as a whole is backed up: at least
// one subscription is congested and congested subscriptions are at least
// half the live population. One slow subscriber among many is its own
// problem (its events drop, others flow); when congestion is the norm the
// broker is oversubscribed and publishers should back off — frontends
// (netbroker) translate this into a busy/retry-after reply.
func (b *Broker) Congested() bool {
	c := b.congestedSubs.Value()
	if c == 0 {
		return false
	}
	b.mu.RLock()
	n := b.nsubs
	b.mu.RUnlock()
	return 2*c >= int64(n)
}

// NumSubscriptions returns the live subscriber count (not the engine entry
// count; see Stats.DistinctFilters for that).
func (b *Broker) NumSubscriptions() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.nsubs
}

// Stats is a broker activity snapshot. Published counts events (a batch
// of n grows it by n); Batches counts PublishBatch calls; Dropped counts
// per-subscriber queue-full discards from both publish paths.
//
// The two filter gauges answer different questions and only coincide in
// some modes:
//
//   - DistinctFilters counts live canonically-distinct filters (one per
//     cover.Key class, with provably-equivalent classes merged under DAG
//     aggregation). Without any aggregation it equals Subscriptions.
//   - FrontierFilters counts live engine entries. With plain aggregation
//     it equals DistinctFilters (every distinct filter is an entry); with
//     DAG aggregation it counts only the covering frontier, and
//     DistinctFilters − FrontierFilters is the number of distinct filters
//     riding covered beneath it.
//
// AggregatedSubscribers counts Subscribe calls over the broker's lifetime
// that were deduplicated onto an already-live filter (identical or, under
// DAG aggregation, provably equivalent). CoveredSubscribers is the current
// number of subscribers attached to covered (non-frontier) filters.
type Stats struct {
	Subscriptions         int
	DistinctFilters       int
	FrontierFilters       int
	CoveredSubscribers    int
	AggregatedSubscribers uint64
	Published             uint64
	Batches               uint64
	Delivered             uint64
	Dropped               uint64
	// CongestedSubscribers is the current number of subscriptions whose
	// queue overflowed and has not yet drained; see Broker.Congested.
	CongestedSubscribers int
}

// Stats returns a snapshot of broker activity.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	subs, frontier, covered := b.nsubs, len(b.groups), b.covered
	distinct := frontier
	if b.dag != nil {
		distinct = b.dag.Len()
	}
	b.mu.RUnlock()
	// Effects before causes: delivered/dropped are read before published,
	// so a snapshot taken mid-storm never shows deliveries outrunning the
	// publications that produced them.
	st := Stats{
		Subscriptions:        subs,
		DistinctFilters:      distinct,
		FrontierFilters:      frontier,
		CoveredSubscribers:   covered,
		CongestedSubscribers: int(b.congestedSubs.Value()),
	}
	st.Delivered = b.delivered.Value()
	st.Dropped = b.dropped.Value()
	st.AggregatedSubscribers = b.aggregated.Value()
	st.Batches = b.batches.Value()
	st.Published = b.published.Value()
	return st
}

// Close stops intake, cancels all subscriptions and waits for delivery
// goroutines to drain. Subsequent Publish/Subscribe calls fail with
// ErrClosed. Close is idempotent.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	var remaining []*Subscription
	for _, g := range b.groups {
		remaining = append(remaining, g.members...)
	}
	// Covered subscribers hold no engine entry and therefore no groups
	// slot; collect them off the poset (frontier nodes are already in).
	if b.dag != nil {
		for _, n := range b.dag.Nodes() {
			if g, ok := n.Data.(*filterGroup); ok && !n.Frontier() {
				remaining = append(remaining, g.members...)
			}
		}
	}
	// Publish is locked out for good (closed flag), so the groups can go;
	// in-flight Unsubscribe calls see the closed flag and no-op.
	b.groups = make(map[matcher.SubID]*filterGroup)
	if b.byKey != nil {
		b.byKey = make(map[string]*filterGroup)
	}
	if b.dag != nil {
		b.dag = dag.New()
	}
	b.nsubs = 0
	b.covered = 0
	b.mu.Unlock()

	for _, s := range remaining {
		s.cancelOnce.Do(func() {
			close(s.queue)
			s.clearCongested()
		})
	}
	b.wg.Wait()
	return nil
}
