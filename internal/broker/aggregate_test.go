package broker

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// aggFilter returns one of n distinct filters; callers picking the same i
// must aggregate onto one engine entry.
func aggFilter(i int) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(i)),
		boolexpr.NewOr(
			boolexpr.Pred("price", predicate.Lt, int64(10*i+10)),
			boolexpr.Pred("price", predicate.Gt, int64(90)),
		),
	)
}

func TestAggregateSharesEngineEntries(t *testing.T) {
	b := New(Options{Aggregate: true})
	defer b.Close()

	var mu sync.Mutex
	got := map[int]int{} // subscriber tag → deliveries
	handler := func(tag int) Handler {
		return func(event.Event) {
			mu.Lock()
			got[tag]++
			mu.Unlock()
		}
	}

	// Ten subscribers over two distinct filters; commuted duplicates must
	// intern onto the same entry.
	subs := make([]*Subscription, 0, 10)
	for tag := 0; tag < 10; tag++ {
		expr := aggFilter(tag % 2)
		if tag%3 == 0 {
			// Same filter, different tree shape: And children commuted.
			and := expr.(boolexpr.And)
			expr = boolexpr.NewAnd(and.Xs[1], and.Xs[0])
		}
		s, err := b.Subscribe(expr, handler(tag))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}

	st := b.Stats()
	if st.Subscriptions != 10 {
		t.Errorf("Subscriptions = %d, want 10", st.Subscriptions)
	}
	if st.DistinctFilters != 2 {
		t.Errorf("DistinctFilters = %d, want 2", st.DistinctFilters)
	}
	if st.AggregatedSubscribers != 8 {
		t.Errorf("AggregatedSubscribers = %d, want 8", st.AggregatedSubscribers)
	}

	// An event matching filter 0 must reach every attached subscriber once.
	n, err := b.Publish(event.New().Set("cat", 0).Set("price", 5))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("Publish enqueued for %d subscribers, want 5", n)
	}
	b.Close()
	mu.Lock()
	defer mu.Unlock()
	for tag := 0; tag < 10; tag += 2 {
		if got[tag] != 1 {
			t.Errorf("subscriber %d deliveries = %d, want 1", tag, got[tag])
		}
	}
	for tag := 1; tag < 10; tag += 2 {
		if got[tag] != 0 {
			t.Errorf("subscriber %d deliveries = %d, want 0", tag, got[tag])
		}
	}
	_ = subs
}

func TestAggregateRefcountedUnsubscribe(t *testing.T) {
	b := New(Options{Aggregate: true})
	defer b.Close()

	var mu sync.Mutex
	counts := map[string]int{}
	sub := func(tag string) *Subscription {
		s, err := b.Subscribe(aggFilter(1), func(event.Event) {
			mu.Lock()
			counts[tag]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := sub("one"), sub("two")
	if s1.ID() != s2.ID() {
		t.Fatalf("aggregated subscribers got distinct engine IDs %d, %d", s1.ID(), s2.ID())
	}
	if st := b.Stats(); st.DistinctFilters != 1 {
		t.Fatalf("DistinctFilters = %d, want 1", st.DistinctFilters)
	}

	ev := event.New().Set("cat", 1).Set("price", 100)
	if n, _ := b.Publish(ev); n != 2 {
		t.Fatalf("Publish → %d, want 2", n)
	}
	// First unsubscribe must keep the engine entry alive for the second.
	if err := s1.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.DistinctFilters != 1 || st.Subscriptions != 1 {
		t.Fatalf("after first unsubscribe: %+v", st)
	}
	if n, _ := b.Publish(ev); n != 1 {
		t.Fatalf("Publish after first unsubscribe → %d, want 1", n)
	}
	// Second (idempotent) unsubscribe detaches the engine entry.
	if err := s1.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.DistinctFilters != 0 || st.Subscriptions != 0 {
		t.Fatalf("after both unsubscribes: %+v", st)
	}
	if n, _ := b.Publish(ev); n != 0 {
		t.Fatalf("Publish after all unsubscribes → %d, want 0", n)
	}

	b.Close()
	mu.Lock()
	defer mu.Unlock()
	if counts["one"] != 1 || counts["two"] != 2 {
		t.Errorf("deliveries = %v, want one:1 two:2", counts)
	}
}

func TestAggregateChanSubscription(t *testing.T) {
	b := New(Options{Aggregate: true})
	defer b.Close()
	s1, ch1, err := b.SubscribeChan(aggFilter(3))
	if err != nil {
		t.Fatal(err)
	}
	_, ch2, err := b.SubscribeChan(aggFilter(3))
	if err != nil {
		t.Fatal(err)
	}
	ev := event.New().Set("cat", 3).Set("price", 0)
	if n, _ := b.Publish(ev); n != 2 {
		t.Fatalf("Publish → %d, want 2", n)
	}
	if got := <-ch1; !got.Equal(ev) {
		t.Error("ch1 got wrong event")
	}
	if got := <-ch2; !got.Equal(ev) {
		t.Error("ch2 got wrong event")
	}
	if err := s1.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-ch1; open {
		t.Error("ch1 still open after unsubscribe")
	}
}

func TestStatsWithoutAggregation(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	for i := 0; i < 4; i++ {
		if _, err := b.Subscribe(aggFilter(1), func(event.Event) {}); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.DistinctFilters != 4 {
		t.Errorf("without aggregation DistinctFilters = %d, want 4 (one engine entry per subscriber)", st.DistinctFilters)
	}
	if st.AggregatedSubscribers != 0 {
		t.Errorf("AggregatedSubscribers = %d, want 0", st.AggregatedSubscribers)
	}
}

// aggDelivery is one (subscriber, event) observation for multiset
// comparison.
type aggDelivery struct {
	tag string
	seq int64
}

// recorder collects deliveries across subscribers of one broker.
type recorder struct {
	mu   sync.Mutex
	seen []aggDelivery
}

func (r *recorder) handler(tag string) Handler {
	return func(ev event.Event) {
		seq, _ := ev.Get("seq")
		r.mu.Lock()
		r.seen = append(r.seen, aggDelivery{tag: tag, seq: seq.Int()})
		r.mu.Unlock()
	}
}

func (r *recorder) sorted() []aggDelivery {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]aggDelivery(nil), r.seen...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].tag != out[j].tag {
			return out[i].tag < out[j].tag
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// pickSkewed draws a filter index with heavy popularity skew: two thirds of
// the draws land on the two most popular filters.
func pickSkewed(rng *rand.Rand) int {
	if rng.Intn(3) > 0 {
		return rng.Intn(2)
	}
	return rng.Intn(10)
}

// TestAggregateDifferential drives an aggregated and an unaggregated broker
// through the same interleaved churn-and-publish script (Zipf-skewed
// duplicate filters, interleaved unsubscribes) and requires the exact same
// per-event match counts and the exact same (subscriber, event) delivery
// multisets.
func TestAggregateDifferential(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			plain := New(Options{QueueSize: 4096, Shards: shards})
			agg := New(Options{QueueSize: 4096, Shards: shards, Aggregate: true})
			defer plain.Close()
			defer agg.Close()

			var recPlain, recAgg recorder
			rng := rand.New(rand.NewSource(99))
			type pair struct{ p, a *Subscription }
			live := map[string]pair{}
			var liveTags []string
			seq := int64(0)

			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // subscribe a (often duplicate) filter
					tag := fmt.Sprintf("s%d", step)
					f := aggFilter(pickSkewed(rng))
					sp, err := plain.Subscribe(f, recPlain.handler(tag))
					if err != nil {
						t.Fatal(err)
					}
					sa, err := agg.Subscribe(f, recAgg.handler(tag))
					if err != nil {
						t.Fatal(err)
					}
					live[tag] = pair{p: sp, a: sa}
					liveTags = append(liveTags, tag)
				case op < 6 && len(liveTags) > 0: // unsubscribe a random one
					i := rng.Intn(len(liveTags))
					tag := liveTags[i]
					liveTags[i] = liveTags[len(liveTags)-1]
					liveTags = liveTags[:len(liveTags)-1]
					pr := live[tag]
					delete(live, tag)
					if err := pr.p.Unsubscribe(); err != nil {
						t.Fatal(err)
					}
					if err := pr.a.Unsubscribe(); err != nil {
						t.Fatal(err)
					}
				default: // publish
					seq++
					ev := event.New().
						Set("cat", int64(rng.Intn(10))).
						Set("price", int64(rng.Intn(120))).
						Set("seq", seq)
					np, err := plain.Publish(ev)
					if err != nil {
						t.Fatal(err)
					}
					na, err := agg.Publish(ev)
					if err != nil {
						t.Fatal(err)
					}
					if np != na {
						t.Fatalf("step %d: plain enqueued %d, aggregated %d", step, np, na)
					}
				}
			}

			stPlain, stAgg := plain.Stats(), agg.Stats()
			if stPlain.Subscriptions != stAgg.Subscriptions {
				t.Errorf("subscriber counts diverged: %d vs %d", stPlain.Subscriptions, stAgg.Subscriptions)
			}
			if stAgg.DistinctFilters > stAgg.Subscriptions {
				t.Errorf("DistinctFilters %d > Subscriptions %d", stAgg.DistinctFilters, stAgg.Subscriptions)
			}
			if stAgg.Subscriptions > 0 && stAgg.DistinctFilters == stPlain.DistinctFilters &&
				stAgg.AggregatedSubscribers == 0 {
				t.Error("aggregation never shared a filter; the script lost its teeth")
			}
			if stPlain.Dropped != 0 || stAgg.Dropped != 0 {
				t.Fatalf("drops invalidate the multiset comparison: plain %d, agg %d",
					stPlain.Dropped, stAgg.Dropped)
			}

			// Drain delivery goroutines, then compare multisets.
			plain.Close()
			agg.Close()
			dp, da := recPlain.sorted(), recAgg.sorted()
			if len(dp) != len(da) {
				t.Fatalf("delivery counts differ: plain %d, aggregated %d", len(dp), len(da))
			}
			for i := range dp {
				if dp[i] != da[i] {
					t.Fatalf("delivery %d differs: plain %+v, aggregated %+v", i, dp[i], da[i])
				}
			}
		})
	}
}

// TestAggregateConcurrentChurn hammers one popular filter with concurrent
// subscribe/unsubscribe/publish from many goroutines; run under -race this
// pins the locking of the group fan-out, and the final state must be
// empty.
func TestAggregateConcurrentChurn(t *testing.T) {
	b := New(Options{QueueSize: 256, Aggregate: true})
	defer b.Close()

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				s, err := b.Subscribe(aggFilter(rng.Intn(3)), func(event.Event) {})
				if err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(2) == 0 {
					if _, err := b.Publish(event.New().Set("cat", int64(rng.Intn(3))).Set("price", int64(rng.Intn(120)))); err != nil {
						t.Error(err)
						return
					}
				}
				if err := s.Unsubscribe(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := b.Stats(); st.Subscriptions != 0 || st.DistinctFilters != 0 {
		t.Errorf("after churn: %+v, want empty broker", st)
	}
}
