package value

import (
	"math"
	"testing"
)

// TestKeyStringIntFloatBoundary pins the ±2^53 canonicalisation edge:
// strictly inside the boundary an integer and the equal float intern to
// the same key string (3 and 3.0 are the same operand), while at and
// beyond ±2^53 integers keep exact keys — there the float path rounds and
// the two operand kinds stop being interchangeable.
func TestKeyStringIntFloatBoundary(t *testing.T) {
	const b = int64(1) << 53 // 9007199254740992

	collide := []int64{0, 1, -1, 3, b - 1, -(b - 1)}
	for _, i := range collide {
		ik, fk := OfInt(i).KeyString(), OfFloat(float64(i)).KeyString()
		if ik != fk {
			t.Errorf("inside boundary: OfInt(%d)=%q, OfFloat=%q — must collide", i, ik, fk)
		}
		if ik[0] != 'n' {
			t.Errorf("inside boundary: OfInt(%d)=%q must use the numeric rendering", i, ik)
		}
	}

	distinct := []int64{b, -b, b + 1, -(b + 1), math.MaxInt64, math.MinInt64}
	for _, i := range distinct {
		ik, fk := OfInt(i).KeyString(), OfFloat(float64(i)).KeyString()
		if ik == fk {
			t.Errorf("at/outside boundary: OfInt(%d) and OfFloat both render %q — must stay distinct", i, ik)
		}
		if ik[0] != 'i' {
			t.Errorf("at/outside boundary: OfInt(%d)=%q must use the exact integer rendering", i, ik)
		}
	}

	// The claim underlying the distinction: 2^53+1 and 2^53 are equal as
	// floats but different integers; conflating them would intern
	// semantically different predicates together.
	if OfInt(b).KeyString() == OfInt(b+1).KeyString() {
		t.Error("2^53 and 2^53+1 interned together")
	}
}

// TestKeyStringNaN: every NaN bit pattern shares one key string — the
// documented deliberate exception, safe because Compare cannot tell NaNs
// apart either.
func TestKeyStringNaN(t *testing.T) {
	nans := []float64{
		math.NaN(),
		math.Float64frombits(0x7ff8000000000001), // quiet, different payload
		math.Float64frombits(0xfff8000000000042), // sign bit set
	}
	want := OfFloat(math.NaN()).KeyString()
	for _, f := range nans {
		if got := OfFloat(f).KeyString(); got != want {
			t.Errorf("NaN bits %#x renders %q, want %q", math.Float64bits(f), got, want)
		}
	}
	if OfFloat(math.NaN()).KeyString() == OfFloat(0).KeyString() {
		t.Error("NaN and 0 must not collide")
	}
}

// TestKeyStringInfinities: ±Inf are ordinary, distinct numeric keys.
func TestKeyStringInfinities(t *testing.T) {
	pos := OfFloat(math.Inf(1)).KeyString()
	neg := OfFloat(math.Inf(-1)).KeyString()
	if pos == neg {
		t.Errorf("+Inf and -Inf share key string %q", pos)
	}
	if pos == OfFloat(math.MaxFloat64).KeyString() {
		t.Error("+Inf collides with MaxFloat64")
	}
	if neg == OfFloat(-math.MaxFloat64).KeyString() {
		t.Error("-Inf collides with -MaxFloat64")
	}
}

// TestKeyStringSignedZero: -0 normalises to +0 — one predicate, not two.
func TestKeyStringSignedZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if got, want := OfFloat(negZero).KeyString(), OfFloat(0).KeyString(); got != want {
		t.Errorf("-0 renders %q, +0 renders %q — must normalise", got, want)
	}
	if OfFloat(negZero).KeyString() != OfInt(0).KeyString() {
		t.Error("-0.0 and integer 0 must collide inside the boundary")
	}
}

// TestKeyStringKindPrefixesDisjoint: values that render identically as
// literals stay distinct across kinds via the prefix.
func TestKeyStringKindPrefixesDisjoint(t *testing.T) {
	vals := map[string]string{
		"int 1":           OfInt(1).KeyString(),
		"string \"1\"":    OfString("1").KeyString(),
		"bool true":       OfBool(true).KeyString(),
		"string \"true\"": OfString("true").KeyString(),
		"invalid":         Value{}.KeyString(),
	}
	seen := map[string]string{}
	for name, ks := range vals {
		if prev, dup := seen[ks]; dup {
			t.Errorf("%s and %s share key string %q", name, prev, ks)
		}
		seen[ks] = name
	}
}

// TestKeyStringAgreesWithKeyOnEdges: the string rendering must stay in
// lockstep with Key equality on every edge case above (the property the
// interning layers rely on).
func TestKeyStringAgreesWithKeyOnEdges(t *testing.T) {
	const b = int64(1) << 53
	vals := []Value{
		OfInt(0), OfFloat(0), OfFloat(math.Copysign(0, -1)),
		OfInt(b - 1), OfFloat(float64(b - 1)),
		OfInt(b), OfFloat(float64(b)), OfInt(b + 1),
		OfInt(-b), OfFloat(-float64(b)), OfInt(-b - 1),
		OfFloat(math.Inf(1)), OfFloat(math.Inf(-1)),
		OfFloat(math.NaN()), OfFloat(math.Float64frombits(0xfff8000000000001)),
		OfString(""), OfString("0"), OfBool(false), OfBool(true), {},
	}
	for _, a := range vals {
		for _, c := range vals {
			keyEq := a.Key() == c.Key()
			strEq := a.KeyString() == c.KeyString()
			// NaNs: distinct bit-pattern Keys share a string by design.
			aNaN := a.Kind() == Float && math.IsNaN(a.Float())
			cNaN := c.Kind() == Float && math.IsNaN(c.Float())
			if aNaN && cNaN {
				if !strEq {
					t.Errorf("NaN values render differently: %q vs %q", a.KeyString(), c.KeyString())
				}
				continue
			}
			if keyEq != strEq {
				t.Errorf("Key/KeyString disagree for %#v vs %#v: keyEq=%v strEq=%v", a, c, keyEq, strEq)
			}
		}
	}
}
