// Package value defines the typed values carried by event attributes and
// predicate operands.
//
// The pub/sub data model is deliberately small: 64-bit integers, 64-bit
// floats, strings and booleans. Integers and floats compare against each
// other numerically (an event attribute price=10 fulfils the predicate
// price < 10.5), which mirrors the behaviour of the numeric domains used in
// the paper's experiments.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// Value kinds. Invalid is the zero Kind so that the zero Value is
// recognisably empty.
const (
	Invalid Kind = iota
	Int
	Float
	String
	Bool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is an immutable typed scalar. The zero Value is invalid and matches
// no predicate.
type Value struct {
	kind Kind
	num  uint64 // int64 bits, float64 bits, or 0/1 for bool
	str  string
}

// OfInt returns an integer Value.
func OfInt(v int64) Value { return Value{kind: Int, num: uint64(v)} }

// OfFloat returns a floating-point Value.
func OfFloat(v float64) Value { return Value{kind: Float, num: math.Float64bits(v)} }

// OfString returns a string Value.
func OfString(v string) Value { return Value{kind: String, str: v} }

// OfBool returns a boolean Value.
func OfBool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: Bool, num: n}
}

// Of converts a native Go value into a Value. Supported inputs are the Go
// integer types, float32/float64, string and bool; any other type yields an
// invalid Value.
func Of(v any) Value {
	switch x := v.(type) {
	case int:
		return OfInt(int64(x))
	case int8:
		return OfInt(int64(x))
	case int16:
		return OfInt(int64(x))
	case int32:
		return OfInt(int64(x))
	case int64:
		return OfInt(x)
	case uint:
		return OfInt(int64(x))
	case uint8:
		return OfInt(int64(x))
	case uint16:
		return OfInt(int64(x))
	case uint32:
		return OfInt(int64(x))
	case float32:
		return OfFloat(float64(x))
	case float64:
		return OfFloat(x)
	case string:
		return OfString(x)
	case bool:
		return OfBool(x)
	case Value:
		return x
	default:
		return Value{}
	}
}

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds data.
func (v Value) IsValid() bool { return v.kind != Invalid }

// Int returns the integer payload. It is only meaningful when Kind()==Int.
func (v Value) Int() int64 { return int64(v.num) }

// Float returns the floating-point payload. It is only meaningful when
// Kind()==Float.
func (v Value) Float() float64 { return math.Float64frombits(v.num) }

// Str returns the string payload. It is only meaningful when Kind()==String.
func (v Value) Str() string { return v.str }

// Bool returns the boolean payload. It is only meaningful when Kind()==Bool.
func (v Value) Bool() bool { return v.num != 0 }

// IsNumeric reports whether the value is an Int or Float.
func (v Value) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// AsFloat converts a numeric value to float64. Non-numeric values yield
// (0, false).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case Int:
		return float64(int64(v.num)), true
	case Float:
		return math.Float64frombits(v.num), true
	default:
		return 0, false
	}
}

// Equal reports whether two values are equal. Int and Float values compare
// numerically (OfInt(3).Equal(OfFloat(3)) is true); values of incomparable
// kinds are unequal.
func (v Value) Equal(w Value) bool {
	c, ok := v.Compare(w)
	return ok && c == 0
}

// Compare orders two values. It returns -1, 0 or +1 when v sorts before,
// equal to, or after w, and ok=false when the two kinds are not comparable
// (e.g. a string against an int, or either value invalid). Numeric kinds
// compare with each other; exact integer comparison is used when both sides
// are Int.
func (v Value) Compare(w Value) (cmp int, ok bool) {
	switch {
	case v.kind == Int && w.kind == Int:
		a, b := int64(v.num), int64(w.num)
		return order(a, b), true
	case v.IsNumeric() && w.IsNumeric():
		a, _ := v.AsFloat()
		b, _ := w.AsFloat()
		return order(a, b), true
	case v.kind == String && w.kind == String:
		switch {
		case v.str < w.str:
			return -1, true
		case v.str > w.str:
			return 1, true
		default:
			return 0, true
		}
	case v.kind == Bool && w.kind == Bool:
		return order(v.num, w.num), true
	default:
		return 0, false
	}
}

func order[T int64 | uint64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Key returns a canonical comparable representation usable as a map key.
// Numerically equal Int and Float values map to the same key so that
// predicate deduplication treats price=3 and price=3.0 as one predicate.
func (v Value) Key() Key {
	switch v.kind {
	case Int:
		// Integers strictly inside ±2^53 share the float's key so that 3
		// and 3.0 collide; outside (and at exactly ±2^53) ints are keyed
		// exactly, because there Int and Float operands stop being
		// interchangeable: Compare(Int(2^53+1), Float(2^53)) rounds to
		// "equal" on the float path while Compare against Int(2^53) is
		// exactly "greater", so conflating the operand kinds at the
		// boundary would intern semantically different predicates.
		i := int64(v.num)
		f := float64(i)
		if int64(f) == i && f > -(1<<53) && f < 1<<53 {
			return Key{kind: Float, num: math.Float64bits(f)}
		}
		return Key{kind: Int, num: v.num}
	case Float:
		f := math.Float64frombits(v.num)
		if f == 0 {
			// Normalise -0 and +0.
			return Key{kind: Float, num: 0}
		}
		return Key{kind: Float, num: v.num}
	case String:
		return Key{kind: String, str: v.str}
	case Bool:
		return Key{kind: Bool, num: v.num}
	default:
		return Key{}
	}
}

// Key is a comparable, canonicalised image of a Value, suitable for use as a
// Go map key.
type Key struct {
	kind Kind
	num  uint64
	str  string
}

// KeyString renders the canonical Key as a short prefixed string, for
// embedding in composite string keys (e.g. subscription-filter interning,
// internal/cover). Equal Keys always yield equal strings; distinct Keys
// yield distinct strings, with one deliberate exception — every NaN
// bit-pattern shares a string, which is safe because Compare cannot tell
// NaNs apart. Deriving the rendering from Key keeps it in lockstep with
// the registry's interning semantics (3 and 3.0 collide, -0 normalises).
func (v Value) KeyString() string {
	k := v.Key()
	switch k.kind {
	case Int:
		return "i" + strconv.FormatInt(int64(k.num), 10)
	case Float:
		return "n" + strconv.FormatFloat(math.Float64frombits(k.num), 'g', -1, 64)
	case String:
		return "s" + strconv.Quote(k.str)
	case Bool:
		if k.num != 0 {
			return "b1"
		}
		return "b0"
	default:
		return "x"
	}
}

// String renders the value as a literal in the subscription language: quoted
// strings, bare numerals, true/false.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return strconv.FormatInt(int64(v.num), 10)
	case Float:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case String:
		return strconv.Quote(v.str)
	case Bool:
		return strconv.FormatBool(v.num != 0)
	default:
		return "<invalid>"
	}
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string {
	return fmt.Sprintf("value.Of(%s)", v.String())
}

// MemBytes estimates the resident size of the value in bytes: the struct
// itself plus string payload. Used by the memory model (experiment M1).
func (v Value) MemBytes() int {
	const structSize = 8 /* num */ + 16 /* string header */ + 1 /* kind */ + 7 /* padding */
	return structSize + len(v.str)
}
