package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{Invalid, "invalid"},
		{Int, "int"},
		{Float, "float"},
		{String, "string"},
		{Bool, "bool"},
		{Kind(99), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := OfInt(-42); v.Kind() != Int || v.Int() != -42 {
		t.Errorf("OfInt(-42) = %v", v)
	}
	if v := OfFloat(2.5); v.Kind() != Float || v.Float() != 2.5 {
		t.Errorf("OfFloat(2.5) = %v", v)
	}
	if v := OfString("hi"); v.Kind() != String || v.Str() != "hi" {
		t.Errorf("OfString(hi) = %v", v)
	}
	if v := OfBool(true); v.Kind() != Bool || !v.Bool() {
		t.Errorf("OfBool(true) = %v", v)
	}
	if v := OfBool(false); v.Bool() {
		t.Errorf("OfBool(false).Bool() = true")
	}
}

func TestOfConversions(t *testing.T) {
	tests := []struct {
		in   any
		kind Kind
	}{
		{int(1), Int},
		{int8(1), Int},
		{int16(1), Int},
		{int32(1), Int},
		{int64(1), Int},
		{uint(1), Int},
		{uint8(1), Int},
		{uint16(1), Int},
		{uint32(1), Int},
		{float32(1.5), Float},
		{float64(1.5), Float},
		{"s", String},
		{true, Bool},
		{OfInt(7), Int},
		{struct{}{}, Invalid},
		{nil, Invalid},
	}
	for _, tt := range tests {
		if got := Of(tt.in).Kind(); got != tt.kind {
			t.Errorf("Of(%#v).Kind() = %v, want %v", tt.in, got, tt.kind)
		}
	}
}

func TestZeroValueInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Error("zero Value should be invalid")
	}
	if v.IsNumeric() {
		t.Error("zero Value should not be numeric")
	}
	if _, ok := v.AsFloat(); ok {
		t.Error("zero Value should not convert to float")
	}
	if _, ok := v.Compare(OfInt(1)); ok {
		t.Error("zero Value should not compare")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		cmp  int
		ok   bool
	}{
		{"int<int", OfInt(1), OfInt(2), -1, true},
		{"int=int", OfInt(2), OfInt(2), 0, true},
		{"int>int", OfInt(3), OfInt(2), 1, true},
		{"int vs float", OfInt(1), OfFloat(1.5), -1, true},
		{"float vs int equal", OfFloat(2), OfInt(2), 0, true},
		{"float<float", OfFloat(-1.5), OfFloat(0), -1, true},
		{"string<string", OfString("a"), OfString("b"), -1, true},
		{"string=string", OfString("ab"), OfString("ab"), 0, true},
		{"string>string", OfString("c"), OfString("b"), 1, true},
		{"bool false<true", OfBool(false), OfBool(true), -1, true},
		{"bool equal", OfBool(true), OfBool(true), 0, true},
		{"string vs int", OfString("1"), OfInt(1), 0, false},
		{"bool vs int", OfBool(true), OfInt(1), 0, false},
		{"invalid vs invalid", Value{}, Value{}, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cmp, ok := tt.a.Compare(tt.b)
			if ok != tt.ok || (ok && cmp != tt.cmp) {
				t.Errorf("Compare(%v,%v) = (%d,%v), want (%d,%v)", tt.a, tt.b, cmp, ok, tt.cmp, tt.ok)
			}
		})
	}
}

func TestLargeIntExactCompare(t *testing.T) {
	// Values beyond float64's 2^53 precision must still compare exactly
	// when both sides are Int.
	a := OfInt(1 << 60)
	b := OfInt(1<<60 + 1)
	cmp, ok := a.Compare(b)
	if !ok || cmp != -1 {
		t.Errorf("Compare(2^60, 2^60+1) = (%d,%v), want (-1,true)", cmp, ok)
	}
}

func TestEqual(t *testing.T) {
	if !OfInt(3).Equal(OfFloat(3)) {
		t.Error("3 should equal 3.0")
	}
	if OfInt(3).Equal(OfString("3")) {
		t.Error("3 should not equal \"3\"")
	}
	if !OfString("x").Equal(OfString("x")) {
		t.Error("identical strings should be equal")
	}
}

func TestKeyCanonicalisation(t *testing.T) {
	if OfInt(3).Key() != OfFloat(3).Key() {
		t.Error("Key(3) != Key(3.0): numeric keys must unify")
	}
	if OfInt(3).Key() == OfInt(4).Key() {
		t.Error("distinct ints must have distinct keys")
	}
	if OfFloat(0).Key() != OfFloat(math.Copysign(0, -1)).Key() {
		t.Error("+0 and -0 must share a key")
	}
	if OfString("3").Key() == OfInt(3).Key() {
		t.Error("string \"3\" must not collide with int 3")
	}
	big := int64(1<<60 + 1)
	if OfInt(big).Key() == OfFloat(float64(big)).Key() {
		t.Error("int beyond 2^53 must not be keyed as its lossy float image")
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{OfInt(-5), "-5"},
		{OfFloat(1.25), "1.25"},
		{OfString(`a"b`), `"a\"b"`},
		{OfBool(true), "true"},
		{Value{}, "<invalid>"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestMemBytes(t *testing.T) {
	if OfInt(1).MemBytes() <= 0 {
		t.Error("MemBytes must be positive")
	}
	short, long := OfString("a"), OfString("aaaaaaaaaa")
	if long.MemBytes() <= short.MemBytes() {
		t.Error("longer strings must report more memory")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := OfInt(a), OfInt(b)
		ab, ok1 := va.Compare(vb)
		ba, ok2 := vb.Compare(va)
		return ok1 && ok2 && ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEqualConsistencyProperty(t *testing.T) {
	// Equal values must share a Key; distinct keys imply non-equal values.
	f := func(a, b float64, ai, bi int64) bool {
		vals := []Value{OfFloat(a), OfFloat(b), OfInt(ai), OfInt(bi)}
		for _, x := range vals {
			for _, y := range vals {
				if x.Equal(y) && x.Key() != y.Key() {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := OfInt(7).AsFloat(); !ok || f != 7 {
		t.Errorf("OfInt(7).AsFloat() = (%v,%v)", f, ok)
	}
	if f, ok := OfFloat(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("OfFloat(2.5).AsFloat() = (%v,%v)", f, ok)
	}
	if _, ok := OfString("x").AsFloat(); ok {
		t.Error("string AsFloat should fail")
	}
	if _, ok := OfBool(true).AsFloat(); ok {
		t.Error("bool AsFloat should fail")
	}
}

func TestKeyStringMatchesKey(t *testing.T) {
	// KeyString must be in lockstep with Key: equal keys ⇒ equal strings,
	// distinct keys ⇒ distinct strings (NaN payloads excepted — Compare
	// cannot tell NaNs apart, so sharing a string is deliberate).
	vals := []Value{
		OfInt(0), OfInt(3), OfInt(-3), OfFloat(3), OfFloat(3.5), OfFloat(0),
		OfFloat(math.Copysign(0, -1)), OfInt(1 << 53), OfFloat(1 << 53),
		OfInt(-(1 << 53)), OfFloat(-(1 << 53)), OfInt(1<<53 - 1), OfFloat(1<<53 - 1),
		OfInt(1<<53 + 1), OfString(""), OfString("x"), OfString("3"),
		OfBool(true), OfBool(false), {},
	}
	for _, a := range vals {
		for _, b := range vals {
			sameKey := a.Key() == b.Key()
			sameStr := a.KeyString() == b.KeyString()
			if sameKey != sameStr {
				t.Errorf("Key/KeyString disagree: %#v vs %#v (key equal %v, string %q vs %q)",
					a, b, sameKey, a.KeyString(), b.KeyString())
			}
		}
	}
}

func TestKeyBoundaryIntFloatDistinct(t *testing.T) {
	// At exactly ±2^53 the Int and Float operands are semantically
	// different (Int(2^53+1) float-compares equal to Float(2^53) but
	// exact-compares greater than Int(2^53)), so they must NOT intern
	// together; strictly inside the window they must.
	if OfInt(1<<53).Key() == OfFloat(1<<53).Key() {
		t.Error("Int(2^53) and Float(2^53) intern together")
	}
	if OfInt(-(1 << 53)).Key() == OfFloat(-(1 << 53)).Key() {
		t.Error("Int(-2^53) and Float(-2^53) intern together")
	}
	if OfInt(1<<53-1).Key() != OfFloat(1<<53-1).Key() {
		t.Error("Int(2^53-1) and Float(2^53-1) do not intern together")
	}
	if OfInt(3).Key() != OfFloat(3).Key() {
		t.Error("3 and 3.0 do not intern together")
	}
}
