package cover

import (
	"sort"

	"noncanon/internal/boolexpr"
	"noncanon/internal/predicate"
)

// This file is the candidate-filter support surface for internal/cover/dag:
// cheap per-filter facts that bound which pairs Covers could possibly prove,
// so the covering DAG probes a small candidate set per insert instead of
// scanning every live filter.
//
// The facts are *exact with respect to this package's prover* — they are
// computed by calling the prover itself on derived queries — so a candidate
// filter built from them is lossless: if Covers(a, b) would return true,
// then a is guaranteed to be in the candidate set computed for b (see the
// losslessness argument on each function). dag's differential tests pit the
// filtered implementation against a scan-everything oracle to hold this.

// probeLeaf is a satisfiable equality on a reserved attribute name that no
// realistic filter constrains. Implications against it separate the proof
// routes that need the partner expression from those that do not:
//
//   - implies(e, probe) can only succeed through e's own unsatisfiability
//     (an infeasible conjunction implies anything), never through probe;
//   - implies(probe, e) can only succeed through sub-proofs that ignore the
//     antecedent entirely, i.e. e is provably a tautology.
//
// If a filter does constrain the reserved attribute the probes may report
// spurious positives, which only *widens* candidate sets — never unsound.
var probeLeaf = boolexpr.Pred("\x00cover.probe", predicate.Eq, 0)

// SelfUnsat reports that the prover can show e unsatisfiable from e alone.
// Such a filter is covered by *every* filter (Covers(a, e) is true for any
// a), so dag must treat every live node as a candidate parent for it.
func SelfUnsat(e boolexpr.Expr) bool {
	if e == nil {
		return false
	}
	return implies(e, probeLeaf)
}

// Tautology reports that the prover can show e matches every event. Such a
// filter covers *every* filter (Covers(e, b) is true for any b), so dag
// must keep it in every candidate-parent set.
func Tautology(e boolexpr.Expr) bool {
	if e == nil {
		return false
	}
	return implies(probeLeaf, e)
}

// Pin is a provable point constraint: the filter admits only events whose
// attribute Attr equals the operand rendered (canonically) as Val. Val uses
// value.KeyString, the same canonicalisation Key interns by, so numerically
// equal Int/Float pins unify.
type Pin struct {
	Attr string
	Val  string
}

// RequiredPins returns the equality leaves on e's top-level conjunction
// spine (a lone equality leaf counts as its own spine). These are exactly
// the conjuncts the prover *must* discharge to prove Covers(e, b) for any
// b: implies(b, And(xs)) demands implies(b, x) for every conjunct x, nested
// Ands are recursed into, and an equality leaf can only be discharged by
// proving b pins the attribute to that operand (or by b's own
// unsatisfiability, which SelfUnsat flags separately).
//
// Losslessness: if Covers(e, b) is provable and b is not SelfUnsat, then
// every Pin in RequiredPins(e) appears in ProvablePins(b). dag therefore
// indexes e under one required pin and looks nodes up by b's provable pins.
// An Or (or non-equality) spine yields no required pins; those filters go
// into dag's always-scanned loose set.
func RequiredPins(e boolexpr.Expr) []Pin {
	var out []Pin
	var walk func(x boolexpr.Expr)
	walk = func(x boolexpr.Expr) {
		switch t := x.(type) {
		case boolexpr.Leaf:
			if t.Pred.Op == predicate.Eq {
				out = append(out, Pin{Attr: t.Pred.Attr, Val: t.Pred.Operand.KeyString()})
			}
		case boolexpr.And:
			for _, c := range t.Xs {
				walk(c)
			}
		}
	}
	walk(e)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Val < out[j].Val
	})
	return dedupPins(out)
}

// ProvablePins returns every point constraint the prover can derive from e:
// each returned Pin (x, v) satisfies implies(e, x = v). Candidate pin
// values are drawn from e's own leaf operands on the attribute — the only
// values a satisfiable expression can be pinned to, since a pin proof needs
// the operand as an interval endpoint or equality point — and each
// candidate is then verified by the real prover, so the result is exact
// with respect to it by construction.
func ProvablePins(e boolexpr.Expr) []Pin {
	if e == nil {
		return nil
	}
	seen := make(map[Pin]bool)
	var cands []boolexpr.Leaf
	for _, p := range boolexpr.Leaves(e) {
		if p.Op == predicate.Exists {
			continue // Eval ignores the operand; it pins nothing
		}
		pin := Pin{Attr: p.Attr, Val: p.Operand.KeyString()}
		if seen[pin] {
			continue
		}
		seen[pin] = true
		cands = append(cands, boolexpr.NewLeaf(predicate.P{Attr: p.Attr, Sym: p.Sym, Op: predicate.Eq, Operand: p.Operand}))
	}
	var out []Pin
	for i, leaf := range cands {
		if implies(e, leaf) {
			out = append(out, Pin{Attr: cands[i].Pred.Attr, Val: cands[i].Pred.Operand.KeyString()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Val < out[j].Val
	})
	return dedupPins(out)
}

func dedupPins(pins []Pin) []Pin {
	uniq := pins[:0]
	for i, p := range pins {
		if i == 0 || p != pins[i-1] {
			uniq = append(uniq, p)
		}
	}
	return uniq
}
