package cover

import (
	"math/rand"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/predicate"
)

func pinOf(attr string, v any) Pin {
	return Pin{Attr: attr, Val: predicate.New(attr, predicate.Eq, v).Operand.KeyString()}
}

func TestRequiredPins(t *testing.T) {
	eq := func(attr string, v any) boolexpr.Expr { return boolexpr.Pred(attr, predicate.Eq, v) }
	lt := func(attr string, v any) boolexpr.Expr { return boolexpr.Pred(attr, predicate.Lt, v) }
	cases := []struct {
		name string
		e    boolexpr.Expr
		want []Pin
	}{
		{"lone eq leaf", eq("cat", 3), []Pin{pinOf("cat", 3)}},
		{"and spine", boolexpr.NewAnd(eq("cat", 3), lt("price", 10)), []Pin{pinOf("cat", 3)}},
		{"nested and flattens", boolexpr.NewAnd(boolexpr.NewAnd(eq("a", 1), eq("b", 2)), lt("c", 3)), nil}, // length checked below
		{"or spine pins nothing", boolexpr.NewOr(eq("cat", 3), lt("price", 10)), nil},
		{"not pins nothing", boolexpr.NewNot(eq("cat", 3)), nil},
		{"non-eq leaf pins nothing", lt("price", 10), nil},
	}
	for _, tc := range cases {
		got := RequiredPins(tc.e)
		switch tc.name {
		case "nested and flattens":
			if len(got) != 2 {
				t.Errorf("%s: got %v, want 2 pins", tc.name, got)
			}
		default:
			if len(got) != len(tc.want) {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				continue
			}
			for i := range got {
				if got[i].Attr != tc.want[i].Attr {
					t.Errorf("%s: pin %d attr %q, want %q", tc.name, i, got[i].Attr, tc.want[i].Attr)
				}
			}
		}
	}
}

func TestProvablePinsDerivedEquality(t *testing.T) {
	// x>=3 AND x<=3 pins x to 3 without a syntactic equality conjunct.
	e := boolexpr.NewAnd(
		boolexpr.Pred("x", predicate.Ge, 3),
		boolexpr.Pred("x", predicate.Le, 3),
	)
	pins := ProvablePins(e)
	found := false
	for _, p := range pins {
		if p.Attr == "x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ProvablePins(%s) = %v; want a pin on x", e, pins)
	}
}

func TestSelfUnsatAndTautology(t *testing.T) {
	unsat := boolexpr.NewAnd(
		boolexpr.Pred("x", predicate.Lt, 3),
		boolexpr.Pred("x", predicate.Gt, 5),
	)
	if !SelfUnsat(unsat) {
		t.Errorf("SelfUnsat(%s) = false, want true", unsat)
	}
	sat := boolexpr.Pred("x", predicate.Lt, 3)
	if SelfUnsat(sat) {
		t.Errorf("SelfUnsat(%s) = true, want false", sat)
	}
	if Tautology(sat) {
		t.Errorf("Tautology(%s) = true, want false", sat)
	}
	tauto := boolexpr.NewNot(unsat)
	if !Tautology(tauto) {
		t.Errorf("Tautology(%s) = false, want true", tauto)
	}
}

// TestProbeSoundnessProperty replays random events against flagged
// expressions: a SelfUnsat filter must match nothing, a Tautology must
// match everything (including events with absent attributes).
func TestProbeSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cfg := boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true, Domain: 10}
	unsatSeen, tautoSeen := 0, 0
	for i := 0; i < 4000; i++ {
		e := boolexpr.RandomExpr(rng, cfg)
		su, ta := SelfUnsat(e), Tautology(e)
		if !su && !ta {
			continue
		}
		for j := 0; j < 40; j++ {
			ev := randomEvent(rng, 10)
			if su {
				unsatSeen++
				if e.Eval(ev) {
					t.Fatalf("SelfUnsat(%s) but event %v matches", e, ev)
				}
			}
			if ta {
				tautoSeen++
				if !e.Eval(ev) {
					t.Fatalf("Tautology(%s) but event %v does not match", e, ev)
				}
			}
		}
	}
	if unsatSeen == 0 || tautoSeen == 0 {
		t.Logf("coverage: unsat checks %d, tautology checks %d", unsatSeen, tautoSeen)
	}
}

// TestCandidateFilterLossless is the keystone of dag's attribute-indexed
// candidate filter: whenever the prover can prove Covers(a, b), either b
// is SelfUnsat (dag then scans every node) or every required pin of a is
// among b's provable pins (dag then finds a in the pin bucket; when a has
// no required pins it sits in the always-scanned loose set). A violation
// here means dag could silently skip a provable coverer.
func TestCandidateFilterLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	cfg := boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true, Domain: 12}
	checked := 0
	for i := 0; i < 6000; i++ {
		a, b := derivePair(rng, cfg)
		if !Covers(a, b) || SelfUnsat(b) {
			continue
		}
		req := RequiredPins(a)
		if len(req) == 0 {
			continue // loose: always a candidate
		}
		checked++
		prov := make(map[Pin]bool)
		for _, p := range ProvablePins(b) {
			prov[p] = true
		}
		for _, p := range req {
			if !prov[p] {
				t.Fatalf("lossy candidate filter: Covers(%s, %s) but required pin %v not provable from coveree", a, b, p)
			}
		}
	}
	if checked == 0 {
		t.Fatal("property vacuous: no covering pair with required pins seen")
	}
}
