package dag_test

import (
	"math"
	"math/rand"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/cover"
	"noncanon/internal/cover/dag"
	"noncanon/internal/predicate"
	"noncanon/internal/sublang"
)

// fuzzPool is the filter universe FuzzDAGChurn draws from: parsed
// subscription-language filters spanning covering chains, equalities,
// string ops, Or/Not shapes — plus filters built around the adversarial
// numerics (NaN, ±Inf, ±2^53 boundaries) that the cover prover refuses to
// reason about, so the poset is exercised where proofs go dark.
func fuzzPool(tb testing.TB) []boolexpr.Expr {
	tb.Helper()
	srcs := []string{
		`cat = 1 and price < 10`,
		`cat = 1 and price < 100`,
		`cat = 1 and price < 1000`,
		`cat = 2 and price < 100`,
		`cat = 1`,
		`price < 100`,
		`price < 10`,
		`price >= 100`,
		`cat = 1 and (price < 10 or price > 90)`,
		`(cat = 1 and price < 10) or (cat = 2 and price < 10)`,
		`not (price < 10)`,
		`sym prefix "AB" and price < 50`,
		`sym prefix "ABC"`,
		`exists price`,
		`cat = 1 and price < 5 and price > 7`, // unsatisfiable conjunction
		`price < 3 or price >= 3`,             // near-tautology on price
		`cat != 1 and cat = 1`,                // unsatisfiable equality pair
	}
	pool := make([]boolexpr.Expr, 0, len(srcs)+8)
	for _, s := range srcs {
		e, err := sublang.Parse(s)
		if err != nil {
			tb.Fatalf("pool filter %q: %v", s, err)
		}
		pool = append(pool, e)
	}
	// PR 4's adversarial numerics, as operands the prover must survive.
	for _, v := range []any{
		math.NaN(), math.Inf(1), math.Inf(-1),
		int64(1) << 53, int64(1)<<53 + 1, -(int64(1) << 53),
		float64(int64(1) << 53), -float64(int64(1) << 53),
	} {
		pool = append(pool,
			boolexpr.NewAnd(
				boolexpr.Pred("cat", predicate.Eq, int64(1)),
				boolexpr.NewLeaf(predicate.New("price", predicate.Lt, v)),
			),
		)
	}
	return pool
}

// FuzzDAGChurn drives insert/remove sequences from fuzzed bytes against a
// naive recompute-the-frontier oracle. After every operation the poset's
// structural invariants must hold; periodically (and at the end) the
// frontier is compared against a full pairwise Covers scan and the
// frontier-walk match set is compared against brute-force evaluation.
func FuzzDAGChurn(f *testing.F) {
	f.Add([]byte{0, 2, 4, 6, 1, 3}, int64(1))
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 3, 5, 7}, int64(7))
	f.Add([]byte{8, 10, 12, 14, 9, 11, 13, 15, 0, 1}, int64(42))
	f.Add([]byte{28, 30, 32, 34, 36, 29, 31, 33}, int64(99))
	f.Add([]byte{16, 18, 20, 22, 24, 26, 17, 19, 21, 23, 25, 27}, int64(-5))

	f.Fuzz(func(t *testing.T, ops []byte, evSeed int64) {
		if len(ops) > 96 {
			ops = ops[:96] // prover calls are not free; bound one exec
		}
		pool := fuzzPool(t)
		rng := rand.New(rand.NewSource(evSeed))
		d := dag.New()
		var live []*dag.Node

		check := func(step int, full bool) {
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if d.Refs() != len(live) {
				t.Fatalf("step %d: refs %d, live %d", step, d.Refs(), len(live))
			}
			if !full {
				return
			}
			// Naive frontier recompute: maximality both ways.
			nodes := d.Nodes()
			for _, b := range nodes {
				var coverer *dag.Node
				for _, a := range nodes {
					if a != b && cover.Covers(a.Expr(), b.Expr()) {
						coverer = a
						break
					}
				}
				if coverer == nil && !b.Frontier() {
					t.Fatalf("step %d: node %q uncovered but demoted", step, b.Key())
				}
				if coverer != nil && b.Frontier() && !reachable(b, coverer) {
					t.Fatalf("step %d: frontier node %q provably covered by %q", step, b.Key(), coverer.Key())
				}
			}
			// Delivery equivalence on replayed events.
			for i := 0; i < 8; i++ {
				ev := churnEvent(rng)
				got := dagMatch(d, ev)
				for _, n := range nodes {
					if want := n.Expr().Eval(ev); got[n] != want {
						t.Fatalf("step %d: node %q frontier-walk match %v, brute force %v (event %v)",
							step, n.Key(), got[n], want, ev)
					}
				}
			}
		}

		for step, b := range ops {
			if b&1 == 0 || len(live) == 0 {
				res := d.Add(pool[int(b>>1)%len(pool)])
				live = append(live, res.Node)
			} else {
				i := int(b>>1) % len(live)
				d.Release(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			check(step, step%16 == 15)
		}
		check(len(ops), true)
	})
}
