package dag_test

import (
	"math/rand"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/cover"
	"noncanon/internal/cover/dag"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// bandFilter mirrors the bench covering workload: category-pinned price
// bands where, within a category, a wider band provably covers every
// narrower one.
func bandFilter(cat, width int) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(cat)),
		boolexpr.Pred("price", predicate.Lt, int64(width)),
	)
}

func TestNestedBandsTrackFrontier(t *testing.T) {
	d := dag.New()

	broad := d.Add(bandFilter(1, 100))
	if !broad.New || !broad.Frontier {
		t.Fatalf("first insert: got %+v, want new frontier node", broad)
	}
	narrow := d.Add(bandFilter(1, 10))
	if !narrow.New || narrow.Frontier {
		t.Fatalf("covered insert: got New=%v Frontier=%v, want new covered node", narrow.New, narrow.Frontier)
	}
	if got := d.FrontierLen(); got != 1 {
		t.Fatalf("FrontierLen = %d, want 1", got)
	}

	// A broader band demotes the current frontier entry.
	broadest := d.Add(bandFilter(1, 1000))
	if !broadest.Frontier || len(broadest.Demoted) != 1 || broadest.Demoted[0] != broad.Node {
		t.Fatalf("broadest insert: Frontier=%v Demoted=%v", broadest.Frontier, broadest.Demoted)
	}
	if got := d.FrontierLen(); got != 1 {
		t.Fatalf("FrontierLen after demotion = %d, want 1", got)
	}

	// Other categories do not interact.
	other := d.Add(bandFilter(2, 10))
	if !other.Frontier {
		t.Fatal("distinct category should join the frontier")
	}

	// Dropping the broadest promotes the mid band (its only recorded
	// parent chain root) back into the frontier before the caller
	// retracts the dying entry.
	rel := d.Release(broadest.Node)
	if !rel.Died || !rel.WasFrontier {
		t.Fatalf("release broadest: %+v", rel)
	}
	if len(rel.Promoted) == 0 {
		t.Fatalf("release broadest promoted nothing; frontier gapped")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInterningAndRefcounts(t *testing.T) {
	d := dag.New()
	a := d.Add(bandFilter(1, 10))
	b := d.Add(bandFilter(1, 10))
	if b.New || b.Node != a.Node {
		t.Fatalf("identical filter created a second node")
	}
	if d.Refs() != 2 || a.Node.Refs() != 2 {
		t.Fatalf("refs = %d/%d, want 2/2", d.Refs(), a.Node.Refs())
	}
	if r := d.Release(a.Node); r.Died {
		t.Fatal("node died with a live reference")
	}
	if r := d.Release(a.Node); !r.Died || !r.WasFrontier {
		t.Fatal("last release did not retire the node")
	}
	if d.Len() != 0 || d.Refs() != 0 {
		t.Fatalf("empty dag has Len=%d Refs=%d", d.Len(), d.Refs())
	}
}

func TestEquivalenceMerges(t *testing.T) {
	// Same matched set, different canonical keys: the second insert must
	// alias onto the first node, not demote it into a cycle.
	plain := boolexpr.Pred("x", predicate.Lt, 10)
	padded := boolexpr.NewOr(
		boolexpr.Pred("x", predicate.Lt, 10),
		boolexpr.NewAnd(boolexpr.Pred("y", predicate.Gt, 6), boolexpr.Pred("y", predicate.Lt, 5)),
	)
	if cover.Key(plain) == cover.Key(padded) {
		t.Fatal("test needs distinct canonical keys")
	}
	d := dag.New()
	a := d.Add(plain)
	b := d.Add(padded)
	if b.New || b.Node != a.Node {
		t.Fatalf("provably equivalent filter did not merge: New=%v", b.New)
	}
	if d.Len() != 1 || d.FrontierLen() != 1 || a.Node.Refs() != 2 {
		t.Fatalf("after merge: Len=%d FrontierLen=%d Refs=%d", d.Len(), d.FrontierLen(), a.Node.Refs())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- randomized property battery -------------------------------------

// churnPool builds a deterministic mixed filter pool: covering band
// chains, loose range filters, Or-shapes and fully random expressions.
func churnPool(rng *rand.Rand, size int) []boolexpr.Expr {
	cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3, AllowNot: true, Domain: 8}
	pool := make([]boolexpr.Expr, 0, size)
	for i := 0; len(pool) < size; i++ {
		switch i % 4 {
		case 0:
			pool = append(pool, bandFilter(i%5, 1<<(uint(i/5)%10)))
		case 1:
			pool = append(pool, boolexpr.Pred("price", predicate.Lt, int64(rng.Intn(64))))
		case 2:
			pool = append(pool, boolexpr.NewOr(bandFilter(rng.Intn(5), rng.Intn(100)), bandFilter(rng.Intn(5), rng.Intn(100))))
		default:
			pool = append(pool, boolexpr.RandomExpr(rng, cfg))
		}
	}
	return pool
}

// churnEvent draws events that hit the pool's attributes (cat/price) and
// the RandomExpr attribute space.
func churnEvent(rng *rand.Rand) event.Event {
	ev := event.New()
	if rng.Intn(4) > 0 {
		ev = ev.Set("cat", int64(rng.Intn(5)))
	}
	if rng.Intn(4) > 0 {
		ev = ev.Set("price", int64(rng.Intn(1024)))
	}
	for i := 0; i < 3; i++ {
		if rng.Intn(2) == 0 {
			ev = ev.Set("a"+string(rune('0'+rng.Intn(8))), int64(rng.Intn(8)))
		}
	}
	return ev
}

// dagMatch computes the matched node set the broker's delivery walk would
// produce: frontier nodes that match expand into children, a failing node
// prunes its subtree.
func dagMatch(d *dag.DAG, ev event.Event) map[*dag.Node]bool {
	out := make(map[*dag.Node]bool)
	visited := make(map[*dag.Node]bool)
	var walk func(n *dag.Node)
	walk = func(n *dag.Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		if !n.Expr().Eval(ev) {
			return // sound prune: every covered descendant matches a subset
		}
		out[n] = true
		for _, c := range n.Children() {
			walk(c)
		}
	}
	for _, n := range d.Nodes() {
		if n.Frontier() {
			walk(n)
		}
	}
	return out
}

// reachable reports whether target can be reached from n via child edges
// (recomputed from the public API, independent of dag's internals).
func reachable(n, target *dag.Node) bool {
	if n == target {
		return true
	}
	seen := map[*dag.Node]bool{}
	stack := []*dag.Node{n}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		for _, c := range x.Children() {
			if c == target {
				return true
			}
			stack = append(stack, c)
		}
	}
	return false
}

// checkMaximality asserts the frontier is exactly the maximal elements of
// the proven covering relation: an uncovered-maximal node must be
// frontier (no over-demotion, unconditionally), and a frontier node must
// have no live proven coverer — except the documented degenerate corner
// where recording that edge would have closed a proof-asymmetry cycle
// among semantically equal nodes, which the skipped edge's reachability
// witnesses.
func checkMaximality(t *testing.T, d *dag.DAG) {
	t.Helper()
	nodes := d.Nodes()
	for _, b := range nodes {
		coverer := (*dag.Node)(nil)
		for _, a := range nodes {
			if a == b {
				continue
			}
			if cover.Covers(a.Expr(), b.Expr()) {
				coverer = a
				break
			}
		}
		if coverer == nil && !b.Frontier() {
			t.Fatalf("node %q has no live coverer but is not frontier", b.Key())
		}
		if coverer != nil && b.Frontier() && !reachable(b, coverer) {
			t.Fatalf("frontier node %q is provably covered by live %q (no cycle exemption)", b.Key(), coverer.Key())
		}
	}
}

// TestDAGChurnProperties drives random subscribe/unsubscribe sequences
// and, after every operation, checks the full poset invariant suite:
// structural consistency + acyclicity + frontier reachability
// (CheckInvariants), refcount totals, match-set equivalence against brute
// force, and (periodically, it is quadratic with prover calls)
// frontier-equals-maximal-elements.
func TestDAGChurnProperties(t *testing.T) {
	seeds := []int64{1, 7, 101, 20260808}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Logf("seed %d (re-run by editing seeds in TestDAGChurnProperties)", seed)
		rng := rand.New(rand.NewSource(seed))
		pool := churnPool(rng, 40)
		d := dag.New()
		type handle struct{ n *dag.Node }
		var live []handle
		steps := 600
		if testing.Short() {
			steps = 200
		}
		for step := 0; step < steps; step++ {
			if len(live) == 0 || rng.Intn(100) < 55 {
				res := d.Add(pool[rng.Intn(len(pool))])
				live = append(live, handle{res.Node})
			} else {
				i := rng.Intn(len(live))
				d.Release(live[i].n)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if d.Refs() != len(live) {
				t.Fatalf("seed %d step %d: refs %d, live subscriptions %d", seed, step, d.Refs(), len(live))
			}
			if step%20 == 0 {
				ev := churnEvent(rng)
				got := dagMatch(d, ev)
				for _, n := range d.Nodes() {
					want := n.Expr().Eval(ev)
					if got[n] != want {
						t.Fatalf("seed %d step %d: node %q match=%v via frontier walk, brute force %v (event %v)",
							seed, step, n.Key(), got[n], want, ev)
					}
				}
			}
			if step%100 == 99 {
				checkMaximality(t, d)
			}
		}
		checkMaximality(t, d)
	}
}
