// Package dag maintains an incremental covering poset over live filters.
//
// Nodes are interned filters (one node per cover.Key equivalence class,
// plus merged provably-equivalent classes), edges record proven coverage:
// an edge parent→child means cover.Covers(parent, child) — every event the
// child matches, the parent matches too. The *frontier* is the set of
// uncovered-maximal nodes; it is exactly the set of filters a broker needs
// to register with its matching engine, because every covered node is
// reachable from some frontier node and soundness of each stored edge
// chains by transitivity of ⊆ (even where the prover could not prove the
// composite implication directly).
//
// Inserts do not scan all live nodes. cover.RequiredPins/ProvablePins/
// SelfUnsat/Tautology bound which pairs the prover could possibly relate,
// and the DAG indexes nodes by those facts so an insert probes a small
// candidate set. The candidate filter is lossless with respect to the
// prover (see internal/cover/probe.go); dag's differential tests hold it
// against a scan-everything oracle.
//
// The structure is not safe for concurrent use; callers (internal/broker)
// guard it with their own lock.
package dag

import (
	"fmt"
	"sort"

	"noncanon/internal/boolexpr"
	"noncanon/internal/cover"
)

// maxParents bounds how many proven parents an insert records before the
// candidate scan stops. One parent is enough to decide covered-vs-frontier;
// the extras make unsubscribe cheaper (an orphan with a surviving parent
// needs no rescan). The cap keeps dense workloads — a narrow filter covered
// by hundreds of broader ones — from storing quadratic edges. Scans visit
// candidates in insertion order, so the recorded parents are deterministic.
const maxParents = 4

// Node is one live filter class in the poset.
type Node struct {
	seq      int64
	keys     []string // cover.Key aliases interned to this node (≥1)
	expr     boolexpr.Expr
	refs     int
	parents  []*Node
	children []*Node
	frontier bool

	// candidate-index metadata, fixed at insert
	reqPins   []cover.Pin
	provPins  []cover.Pin
	absorbing bool // cover.SelfUnsat: covered by everything

	// Data is an arbitrary caller payload (the broker hangs its fan-out
	// group here so delivery needs no map lookups).
	Data any
}

// Expr returns the node's representative filter.
func (n *Node) Expr() boolexpr.Expr { return n.expr }

// Key returns the node's primary interning key (the key it was first
// inserted under; equivalence merges alias further keys to the node).
func (n *Node) Key() string { return n.keys[0] }

// Frontier reports whether the node is uncovered-maximal (holds an engine
// entry when driven by the broker).
func (n *Node) Frontier() bool { return n.frontier }

// Refs returns the node's live subscription count.
func (n *Node) Refs() int { return n.refs }

// Children returns the node's covered children. The slice is the DAG's
// internal storage: callers may iterate (the broker's delivery DFS does,
// under its read lock) but must not mutate or retain it across DAG ops.
func (n *Node) Children() []*Node { return n.children }

// Parents returns the node's recorded proven coverers (internal storage;
// same caveats as Children). Empty iff the node is frontier.
func (n *Node) Parents() []*Node { return n.parents }

// AddResult describes the effect of an Add on the frontier.
type AddResult struct {
	Node *Node
	// New is true when a node was created (first subscription for this
	// filter class); false when the key or a proven-equivalent node was
	// already live and only its refcount grew.
	New bool
	// Frontier is the node's status after the insert. A caller keeping an
	// engine in sync subscribes the node's expr iff New && Frontier.
	Frontier bool
	// Demoted lists previously-frontier nodes now covered (by the new
	// node); their engine entries must be retracted *after* any new entry
	// is added so matching never gaps.
	Demoted []*Node
}

// ReleaseResult describes the effect of a Release on the frontier.
type ReleaseResult struct {
	// Died is true when the last reference was released and the node left
	// the poset.
	Died bool
	// WasFrontier is true when the dying node held frontier status (its
	// engine entry must be retracted *after* subscribing Promoted).
	WasFrontier bool
	// Promoted lists children orphaned by the death that rejoined the
	// frontier (no other proven parent survives).
	Promoted []*Node
}

// DAG is the incremental covering poset. The zero value is not usable; use
// New.
type DAG struct {
	byKey map[string]*Node // every alias key → its node
	nodes []*Node          // live nodes in insertion order
	seq   int64
	refs  int
	front int // frontier node count

	// candidate index (see parentCandidates/frontierCandidates)
	loose     []*Node               // nodes with no required pins: always candidate parents
	reqBucket map[cover.Pin][]*Node // nodes keyed by their first required pin
	provPin   map[cover.Pin][]*Node // nodes keyed by every provable pin
	absorbing []*Node               // SelfUnsat nodes: candidate children of anything
}

// New returns an empty covering poset.
func New() *DAG {
	return &DAG{
		byKey:     make(map[string]*Node),
		reqBucket: make(map[cover.Pin][]*Node),
		provPin:   make(map[cover.Pin][]*Node),
	}
}

// Len returns the number of live filter classes (distinct live filters).
func (d *DAG) Len() int { return len(d.nodes) }

// FrontierLen returns the number of frontier nodes (engine entries).
func (d *DAG) FrontierLen() int { return d.front }

// Refs returns the total live subscription count across all nodes.
func (d *DAG) Refs() int { return d.refs }

// Nodes returns the live nodes in insertion order (fresh slice).
func (d *DAG) Nodes() []*Node { return append([]*Node(nil), d.nodes...) }

// Add interns expr under its cover.Key and returns the resulting node and
// frontier effects. Equivalent to AddKeyed(cover.Key(expr), expr).
func (d *DAG) Add(expr boolexpr.Expr) AddResult {
	return d.AddKeyed(cover.Key(expr), expr)
}

// AddKeyed interns expr under key (which must be cover.Key(expr), computed
// by the caller — typically outside its broker lock) and increments the
// node's refcount. If the key is unknown, the poset is updated: the new
// node either merges into a proven-equivalent live node, attaches under
// proven coverers, or joins the frontier, demoting any frontier nodes it
// provably covers.
func (d *DAG) AddKeyed(key string, expr boolexpr.Expr) AddResult {
	if n, ok := d.byKey[key]; ok {
		n.refs++
		d.refs++
		return AddResult{Node: n, Frontier: n.frontier}
	}

	absorbing := cover.SelfUnsat(expr)
	provPins := cover.ProvablePins(expr)

	// Probe candidate parents in insertion order. A mutual cover is a
	// provably equivalent live node: merge instead of creating a node
	// (leaving both live would demote each under the other and the class
	// could fall off the frontier entirely).
	var parents []*Node
	for _, c := range d.parentCandidates(absorbing, provPins) {
		if !cover.Covers(c.expr, expr) {
			continue
		}
		if cover.Covers(expr, c.expr) {
			c.keys = append(c.keys, key)
			d.byKey[key] = c
			c.refs++
			d.refs++
			return AddResult{Node: c, Frontier: c.frontier}
		}
		parents = append(parents, c)
		if len(parents) == maxParents {
			break
		}
	}

	d.seq++
	n := &Node{
		seq:       d.seq,
		keys:      []string{key},
		expr:      expr,
		refs:      1,
		parents:   parents,
		frontier:  len(parents) == 0,
		reqPins:   cover.RequiredPins(expr),
		provPins:  provPins,
		absorbing: absorbing,
	}
	d.byKey[key] = n
	d.nodes = append(d.nodes, n)
	d.refs++
	d.index(n)
	for _, p := range parents {
		p.children = append(p.children, n)
	}
	if n.frontier {
		d.front++
	}

	// Demote frontier nodes the new one provably covers. This runs even
	// when n itself lands covered: the demoted node is then reachable from
	// the frontier through n's own parents, and leaving it maximal would
	// violate frontier minimality. The reachability guard skips the edge
	// in the degenerate case where proof asymmetry around a semantically
	// equal cycle would close a loop (see addEdge).
	var demoted []*Node
	for _, f := range d.frontierCandidates(n) {
		if f == n || !f.frontier || !cover.Covers(expr, f.expr) {
			continue
		}
		if !d.addEdge(n, f) {
			continue
		}
		f.frontier = false
		d.front--
		demoted = append(demoted, f)
	}
	return AddResult{Node: n, New: true, Frontier: n.frontier, Demoted: demoted}
}

// Release decrements n's refcount. When the last reference goes, the node
// leaves the poset: children that lose their only recorded parent are
// re-scanned for surviving coverers and promoted to the frontier if none
// remain — the returned ordering contract (subscribe Promoted before
// retracting the dead node's entry) mirrors the overlay's
// re-flood-before-retract rule so matching never gaps.
func (d *DAG) Release(n *Node) ReleaseResult {
	if n.refs <= 0 {
		panic("dag: Release of dead node")
	}
	n.refs--
	d.refs--
	if n.refs > 0 {
		return ReleaseResult{}
	}

	// Unlink n everywhere first so rescans below cannot pick it.
	for _, k := range n.keys {
		delete(d.byKey, k)
	}
	removeNode(&d.nodes, n)
	d.unindex(n)
	for _, p := range n.parents {
		removeNode(&p.children, n)
	}

	res := ReleaseResult{Died: true, WasFrontier: n.frontier}
	if n.frontier {
		d.front--
	}
	for _, c := range n.children {
		removeNode(&c.parents, n)
		if len(c.parents) > 0 || c.frontier {
			continue
		}
		// Orphaned: look for surviving coverers beyond the capped parent
		// set recorded at insert. addEdge re-checks reachability so a
		// rescan between mutually-equivalent survivors cannot close a
		// cycle.
		for _, p := range d.parentCandidates(c.absorbing, c.provPins) {
			if p == c || !cover.Covers(p.expr, c.expr) {
				continue
			}
			if !d.addEdge(p, c) {
				continue
			}
			if len(c.parents) == maxParents {
				break
			}
		}
		if len(c.parents) == 0 {
			c.frontier = true
			d.front++
			res.Promoted = append(res.Promoted, c)
		}
	}
	n.children = nil
	n.parents = nil
	return res
}

// addEdge records proven coverage parent→child unless the edge would close
// a cycle, i.e. parent is reachable from child through existing edges.
// Cycles are only possible among semantically equal nodes whose pairwise
// proofs all point one way (mutual proofs merge at insert), a degenerate
// corner of the prover's incompleteness; skipping the edge there keeps the
// graph acyclic and is sound — it can only leave a node on the frontier
// that a complete prover would have demoted.
func (d *DAG) addEdge(parent, child *Node) bool {
	if reaches(child, parent) {
		return false
	}
	parent.children = append(parent.children, child)
	child.parents = append(child.parents, parent)
	return true
}

// reaches reports whether target is reachable from n via child edges.
func reaches(n, target *Node) bool {
	if n == target {
		return true
	}
	var visited map[*Node]bool
	stack := append([]*Node(nil), n.children...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == target {
			return true
		}
		if len(x.children) == 0 {
			continue
		}
		if visited == nil {
			visited = make(map[*Node]bool)
		}
		if visited[x] {
			continue
		}
		visited[x] = true
		stack = append(stack, x.children...)
	}
	return false
}

// parentCandidates returns, in insertion order, every live node that could
// possibly cover a filter with the given probe facts. Losslessness (per
// internal/cover/probe.go): a provable coverer either has no required pins
// (loose — includes every provable tautology), or each of its required
// pins is provable from the coveree, or the coveree is absorbing (then
// anything covers it, so all nodes are candidates).
func (d *DAG) parentCandidates(absorbing bool, provPins []cover.Pin) []*Node {
	if absorbing {
		return d.nodes
	}
	if len(provPins) == 0 {
		return d.loose
	}
	cands := d.loose
	merged := false
	for _, pin := range provPins {
		bucket := d.reqBucket[pin]
		if len(bucket) == 0 {
			continue
		}
		if !merged {
			cands = append(append(make([]*Node, 0, len(cands)+len(bucket)), cands...), bucket...)
			merged = true
		} else {
			cands = append(cands, bucket...)
		}
	}
	if !merged {
		return cands
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	return cands
}

// frontierCandidates returns every live node that n could possibly cover
// (callers still filter to frontier status). A provable coveree either
// proves each of n's required pins (found via the provable-pin index), or
// is absorbing (covered by anything). When n has no required pins, nothing
// restricts its coverees and the scan is the full node list.
func (d *DAG) frontierCandidates(n *Node) []*Node {
	if len(n.reqPins) == 0 {
		return d.nodes
	}
	cands := d.provPin[n.reqPins[0]]
	if len(d.absorbing) == 0 {
		return cands
	}
	out := append(append(make([]*Node, 0, len(cands)+len(d.absorbing)), cands...), d.absorbing...)
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return dedupNodes(out)
}

func (d *DAG) index(n *Node) {
	if len(n.reqPins) == 0 {
		d.loose = append(d.loose, n)
	} else {
		d.reqBucket[n.reqPins[0]] = append(d.reqBucket[n.reqPins[0]], n)
	}
	for _, pin := range n.provPins {
		d.provPin[pin] = append(d.provPin[pin], n)
	}
	if n.absorbing {
		d.absorbing = append(d.absorbing, n)
	}
}

func (d *DAG) unindex(n *Node) {
	if len(n.reqPins) == 0 {
		removeNode(&d.loose, n)
	} else {
		removeFromBucket(d.reqBucket, n.reqPins[0], n)
	}
	for _, pin := range n.provPins {
		removeFromBucket(d.provPin, pin, n)
	}
	if n.absorbing {
		removeNode(&d.absorbing, n)
	}
}

// removeNode deletes n from s preserving order (insertion order is the
// determinism contract for candidate scans).
func removeNode(s *[]*Node, n *Node) {
	for i, x := range *s {
		if x == n {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}

func removeFromBucket(m map[cover.Pin][]*Node, pin cover.Pin, n *Node) {
	b := m[pin]
	removeNode(&b, n)
	if len(b) == 0 {
		delete(m, pin)
	} else {
		m[pin] = b
	}
}

func dedupNodes(s []*Node) []*Node {
	out := s[:0]
	for i, n := range s {
		if i == 0 || n != s[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// CheckInvariants verifies the poset's structural invariants and returns a
// descriptive error on the first violation. It is exact (no prover calls)
// and cheap enough for tests to run after every operation:
//
//   - refcount totals and node/frontier counters match the stored graph;
//   - edges are consistent (parent lists mirror child lists) and acyclic;
//   - a node is frontier iff it has no recorded parents;
//   - every covered node is reachable from some frontier node.
func (d *DAG) CheckInvariants() error {
	refs, front := 0, 0
	seen := make(map[*Node]bool, len(d.nodes))
	for _, n := range d.nodes {
		seen[n] = true
	}
	if len(seen) != len(d.nodes) {
		return fmt.Errorf("dag: duplicate node in live list")
	}
	for _, n := range d.nodes {
		refs += n.refs
		if n.refs <= 0 {
			return fmt.Errorf("dag: live node %q with refs=%d", n.Key(), n.refs)
		}
		if n.frontier {
			front++
		}
		if n.frontier != (len(n.parents) == 0) {
			return fmt.Errorf("dag: node %q frontier=%v with %d parents", n.Key(), n.frontier, len(n.parents))
		}
		for _, p := range n.parents {
			if !seen[p] {
				return fmt.Errorf("dag: node %q has dead parent", n.Key())
			}
			if !containsNode(p.children, n) {
				return fmt.Errorf("dag: parent %q missing child %q", p.Key(), n.Key())
			}
		}
		for _, c := range n.children {
			if !seen[c] {
				return fmt.Errorf("dag: node %q has dead child", n.Key())
			}
			if !containsNode(c.parents, n) {
				return fmt.Errorf("dag: child %q missing parent %q", c.Key(), n.Key())
			}
		}
		for _, k := range n.keys {
			if d.byKey[k] != n {
				return fmt.Errorf("dag: key %q not aliased to its node", k)
			}
		}
	}
	if refs != d.refs {
		return fmt.Errorf("dag: refs counter %d, stored %d", d.refs, refs)
	}
	if front != d.front {
		return fmt.Errorf("dag: frontier counter %d, stored %d", d.front, front)
	}
	if len(d.byKey) < len(d.nodes) {
		return fmt.Errorf("dag: %d keys for %d nodes", len(d.byKey), len(d.nodes))
	}

	// Acyclicity + frontier reachability in one pass: every node must be
	// reachable from a frontier node, and the DFS must never revisit a
	// node on the current path.
	reached := make(map[*Node]bool, len(d.nodes))
	onPath := make(map[*Node]bool)
	var dfs func(n *Node) error
	dfs = func(n *Node) error {
		if onPath[n] {
			return fmt.Errorf("dag: cycle through %q", n.Key())
		}
		if reached[n] {
			return nil
		}
		reached[n] = true
		onPath[n] = true
		for _, c := range n.children {
			if err := dfs(c); err != nil {
				return err
			}
		}
		onPath[n] = false
		return nil
	}
	for _, n := range d.nodes {
		if n.frontier {
			if err := dfs(n); err != nil {
				return err
			}
		}
	}
	for _, n := range d.nodes {
		if !reached[n] {
			return fmt.Errorf("dag: covered node %q unreachable from frontier", n.Key())
		}
	}
	return nil
}

func containsNode(s []*Node, n *Node) bool {
	for _, x := range s {
		if x == n {
			return true
		}
	}
	return false
}
