package cover

import (
	"math/rand"
	"testing"

	"noncanon/internal/boolexpr"
)

// FuzzCovers is the differential soundness fuzzer for the covering test:
// from two generator seeds and a pairing mode it derives a random
// non-canonical expression pair (a, b), and whenever Covers(a, b) claims
// the relation, it replays random events and asserts that none matches b
// without matching a. Any counterexample is an outright soundness bug —
// incompleteness (false negatives) is permitted, unsoundness never.
//
// The same inputs also cross-check Key: expressions that intern to the
// same key must match exactly the same events.
//
// Seeds beyond the inline f.Add corpus are checked in under
// testdata/fuzz/FuzzCovers.
func FuzzCovers(f *testing.F) {
	for mode := 0; mode < 6; mode++ {
		f.Add(int64(1), int64(2), uint8(mode), int64(3))
	}
	f.Add(int64(42), int64(42), uint8(0), int64(7))
	f.Add(int64(-9), int64(1<<40), uint8(3), int64(0))
	f.Fuzz(func(t *testing.T, seedA, seedB int64, mode uint8, evSeed int64) {
		cfgA := boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true, Domain: 16}
		cfgB := cfgA
		if mode&0x40 != 0 {
			cfgB.MaxDepth = 2 // asymmetric shapes
		}
		x := boolexpr.RandomExpr(rand.New(rand.NewSource(seedA)), cfgA)
		y := boolexpr.RandomExpr(rand.New(rand.NewSource(seedB)), cfgB)

		var a, b boolexpr.Expr
		switch mode % 6 {
		case 0:
			a, b = x, y
		case 1:
			a, b = boolexpr.NewOr(x, y), x
		case 2:
			a, b = x, boolexpr.NewAnd(x, y)
		case 3:
			a, b = boolexpr.NewNot(x), boolexpr.NewNot(boolexpr.NewOr(x, y))
		case 4:
			a, b = boolexpr.NewAnd(x, y), boolexpr.NewAnd(y, x)
		default:
			a, b = x, x
		}

		covers := Covers(a, b)
		sameKey := Key(a) == Key(b)
		if !covers && !sameKey {
			return
		}
		erng := rand.New(rand.NewSource(evSeed))
		for i := 0; i < 64; i++ {
			ev := randomEvent(erng, 16)
			am, bm := a.Eval(ev), b.Eval(ev)
			if covers && bm && !am {
				t.Fatalf("unsound cover: Covers(a, b) but event matches b only\n  a: %s\n  b: %s\n  event: %v",
					a, b, ev)
			}
			if sameKey && am != bm {
				t.Fatalf("unsound key: Key(a) == Key(b) but event differs\n  a: %s\n  b: %s\n  event: %v",
					a, b, ev)
			}
		}
	})
}
