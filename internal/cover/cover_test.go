package cover

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
	"noncanon/internal/sublang"
)

func parse(t *testing.T, s string) boolexpr.Expr {
	t.Helper()
	x, err := sublang.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return x
}

// TestCoversProvable pins relations the test must prove: each pair here is
// a real covering that the abstract domains are expected to find.
func TestCoversProvable(t *testing.T) {
	cases := [][2]string{
		// Reflexivity and trivial weakening.
		{`price < 10`, `price < 10`},
		{`price < 10`, `price < 5`},
		{`price <= 10`, `price < 10`},
		{`price > 3`, `price > 3.5`},
		{`price >= 4`, `price > 4`},
		{`price != 7`, `price = 3 and price > 0`}, // the > conjunct excludes NaN
		{`price <= 10`, `price = 10`},
		{`price = 3`, `price = 3.0`},
		{`exists price`, `price > 10`},
		{`exists price`, `price != 1`},
		// Or-weakening: a broader disjunction covers each branch.
		{`price < 10 or price > 90`, `price < 10`},
		{`price < 10 or price > 90`, `price < 5 or price > 95`},
		{`price < 10 or sym = "A"`, `price < 10 and sym = "A"`},
		// And-strengthening: more conjuncts are covered by fewer.
		{`price < 10`, `price < 10 and sym = "A"`},
		{`price < 10 and sym = "A"`, `sym = "A" and price < 5 and vol > 3`},
		// Conjoined interval reasoning on one attribute.
		{`price != 9`, `price > 5 and price < 8`},
		{`price > 0`, `price > 2 and price < 8`},
		{`price <= 10`, `price = 3 and sym = "A"`},
		{`price < 10`, `price = 3 and price > 0 and sym = "A"`},
		// String family.
		{`sym prefix "AB"`, `sym prefix "ABC"`},
		{`sym suffix "Z"`, `sym suffix "XYZ"`},
		{`sym contains "BC"`, `sym contains "ABCD"`},
		{`sym contains "BC"`, `sym prefix "ABC"`},
		{`sym contains "BC"`, `sym suffix "ABC"`},
		{`sym contains "BC"`, `sym = "ABCD"`},
		{`sym prefix "AB"`, `sym = "ABCD"`},
		{`sym >= "AB"`, `sym prefix "ABC"`},
		{`sym != "Q"`, `sym prefix "AB"`},
		// Negation.
		{`not price < 3`, `price > 5`},
		{`not price = 3`, `price > 5`},
		{`not (price > 5)`, `not (price > 5 or sym = "A")`},
		{`not (price > 5 and sym = "A")`, `not price > 5`},
		{`not price < 3`, `not price < 4`}, // contrapositive of < weakening
		{`not (price <= 5)`, `price > 5 and sym = "A"`},
		// And/Or commutativity via structural paths.
		{`sym = "A" and price < 10`, `price < 10 and sym = "A"`},
		{`price < 10 or sym = "A"`, `sym = "A" or price < 10`},
		// Unsatisfiable subscriber is covered by anything.
		{`vol = 1`, `price > 5 and price < 3`},
		{`vol = 1`, `sym = "A" and sym prefix "B"`},
		{`vol = 1`, `sym = "A" and price < 10 and sym = "B"`},
	}
	for _, c := range cases {
		a, b := parse(t, c[0]), parse(t, c[1])
		if !Covers(a, b) {
			t.Errorf("Covers(%q, %q) = false, want provable", c[0], c[1])
		}
	}
}

// TestCoversRejected pins relations that do NOT hold semantically: a sound
// test must return false (a true here is an outright soundness bug, not
// incompleteness).
func TestCoversRejected(t *testing.T) {
	cases := [][2]string{
		{`price < 5`, `price < 10`},
		{`price < 10`, `price <= 10`},
		{`price = 3`, `price <= 3`},
		{`price != 3`, `price != 4`},
		{`price > 5`, `vol > 5`},
		{`price > 5 and sym = "A"`, `price > 5`},
		{`price < 10`, `price < 5 or vol > 3`},
		{`sym prefix "ABC"`, `sym prefix "AB"`},
		{`sym contains "ABCD"`, `sym contains "BC"`},
		{`sym prefix "AB"`, `sym contains "AB"`}, // contains admits "XAB"
		{`price > 10`, `exists price`},
		{`price > 5`, `not price <= 5`}, // missing attr matches the Not only
		{`not price < 4`, `not price < 3`},
		{`price = 3`, `price = 3 or vol = 1`},
		{`exists price`, `exists vol`},
		// NaN event values satisfy every non-strict numeric comparison
		// (value.Compare yields 0 against NaN) while failing every strict
		// one, so none of these hold: the event price=NaN matches b only.
		{`price < 10`, `price <= 9`},
		{`price != 7`, `price = 3`},
		{`price < 10`, `price = 3 and sym = "A"`},
		{`vol = 1`, `price = 2 and price = 3`},
		{`vol = 1`, `price <= 2 and price >= 3`},
	}
	for _, c := range cases {
		a, b := parse(t, c[0]), parse(t, c[1])
		if Covers(a, b) {
			t.Errorf("Covers(%q, %q) = true, but the relation does not hold", c[0], c[1])
		}
	}
}

func TestCoversNil(t *testing.T) {
	x := parse(t, `price < 5`)
	if Covers(nil, x) || Covers(x, nil) || Covers(nil, nil) {
		t.Error("nil expressions must not cover or be covered")
	}
}

// adversarialNumerics are the event values where value.Compare's order is
// exact no longer: NaN (compares "equal" to everything numeric), ±Inf,
// and the ±2^53 boundary where Int/Int comparisons are exact but
// Int/Float ones round. Soundness must hold for them too — the domain
// handles them by refusing to reason, and the property tests inject them
// to prove it.
var adversarialNumerics = []any{
	math.NaN(), math.Inf(1), math.Inf(-1),
	int64(1) << 53, int64(1)<<53 + 1, -(int64(1) << 53), -(int64(1)<<53 + 1),
	float64(int64(1) << 53), -float64(int64(1) << 53),
}

// randomEvent draws an event over the RandomExpr attribute pool, mixing
// kinds — including the adversarial numerics — and deliberately leaving
// some attributes absent so the missing-attribute semantics of Not and
// Exists are exercised.
func randomEvent(rng *rand.Rand, domain int) event.Event {
	ev := event.New()
	for i := 0; i < 8; i++ {
		switch rng.Intn(6) {
		case 0: // absent
		case 1:
			ev = ev.Set("a"+strconv.Itoa(i), rng.Intn(domain))
		case 2:
			ev = ev.Set("a"+strconv.Itoa(i), float64(rng.Intn(domain))+0.5)
		case 3:
			ev = ev.Set("a"+strconv.Itoa(i), rng.Intn(2) == 0)
		case 4:
			ev = ev.Set("a"+strconv.Itoa(i), adversarialNumerics[rng.Intn(len(adversarialNumerics))])
		default:
			// Strings from the operand pool plus noise, so prefix/suffix/
			// contains predicates both hit and miss.
			s := "s" + strconv.Itoa(rng.Intn(domain))
			switch rng.Intn(3) {
			case 0:
				s = s + "x"
			case 1:
				s = "x" + s
			}
			ev = ev.Set("a"+strconv.Itoa(i), s)
		}
	}
	return ev
}

// derivePair builds an (a, b) candidate with a high chance of a genuine
// covering relation, so the soundness property is exercised on positive
// verdicts rather than a sea of false ones.
func derivePair(rng *rand.Rand, cfg boolexpr.RandomConfig) (a, b boolexpr.Expr) {
	x := boolexpr.RandomExpr(rng, cfg)
	y := boolexpr.RandomExpr(rng, cfg)
	switch rng.Intn(6) {
	case 0: // identical
		return x, x
	case 1: // a is an Or-weakening of b
		return boolexpr.NewOr(x, y), x
	case 2: // b is an And-strengthening of a
		return x, boolexpr.NewAnd(x, y)
	case 3: // complement pair
		return boolexpr.NewNot(x), boolexpr.NewNot(boolexpr.NewOr(x, y))
	case 4: // unrelated random pair
		return x, y
	default: // random pair sharing structure
		return boolexpr.NewAnd(x, y), boolexpr.NewAnd(y, x)
	}
}

// TestCoversSoundnessProperty is the pinned soundness property:
// Covers(a, b) ⇒ every random event matching b matches a, over randomized
// non-canonical expressions (And/Or/Not, all operator families).
func TestCoversSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := boolexpr.RandomConfig{MaxDepth: 4, MaxFanout: 3, AllowNot: true, Domain: 20}
	const pairs = 3000
	covered := 0
	for i := 0; i < pairs; i++ {
		a, b := derivePair(rng, cfg)
		if !Covers(a, b) {
			continue
		}
		covered++
		for j := 0; j < 60; j++ {
			ev := randomEvent(rng, 20)
			if b.Eval(ev) && !a.Eval(ev) {
				t.Fatalf("unsound: Covers(%s, %s) but event %v matches b only", a, b, ev)
			}
		}
	}
	if covered < pairs/10 {
		t.Errorf("only %d/%d pairs proved covered; the test lost its teeth", covered, pairs)
	}
	t.Logf("proved %d/%d covering pairs", covered, pairs)
}

// TestCoversTransitivityProperty: covering is a preorder; whenever the test
// proves a ⊇ b and b ⊇ c it must never be possible to observe an event in
// c but not a.
func TestCoversTransitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3, AllowNot: true, Domain: 12}
	for i := 0; i < 800; i++ {
		c := boolexpr.RandomExpr(rng, cfg)
		b := boolexpr.NewOr(c, boolexpr.RandomExpr(rng, cfg))
		a := boolexpr.NewOr(b, boolexpr.RandomExpr(rng, cfg))
		if Covers(a, b) && Covers(b, c) {
			for j := 0; j < 40; j++ {
				ev := randomEvent(rng, 12)
				if c.Eval(ev) && !a.Eval(ev) {
					t.Fatalf("transitive unsoundness: %s ⊉ %s via %s on %v", a, c, b, ev)
				}
			}
		}
	}
}

func TestKeyEquivalences(t *testing.T) {
	same := [][2]string{
		{`price < 10 and sym = "A"`, `sym = "A" and price < 10`},
		{`price < 10 or sym = "A"`, `sym = "A" or price < 10`},
		{`price < 10 and price < 10`, `price < 10`},
		{`not not price < 10`, `price < 10`},
		{`price = 3`, `price = 3.0`},
		{`a = 1 and (b = 2 and c = 3)`, `(a = 1 and b = 2) and c = 3`},
		{`a = 1 or (b = 2 or c = 3)`, `(a = 1 or b = 2) or c = 3`},
	}
	for _, c := range same {
		a, b := parse(t, c[0]), parse(t, c[1])
		if Key(a) != Key(b) {
			t.Errorf("Key(%q) = %q != Key(%q) = %q", c[0], Key(a), c[1], Key(b))
		}
	}
	diff := [][2]string{
		{`price < 10`, `price <= 10`},
		{`price < 10`, `vol < 10`},
		{`price < 10 and sym = "A"`, `price < 10 or sym = "A"`},
		{`price = 3`, `price = 4`},
		{`sym = "A"`, `sym = "a"`},
		{`not price < 10`, `price < 10`},
		{`exists price`, `exists vol`},
	}
	for _, c := range diff {
		a, b := parse(t, c[0]), parse(t, c[1])
		if Key(a) == Key(b) {
			t.Errorf("Key(%q) == Key(%q) = %q, want distinct", c[0], c[1], Key(a))
		}
	}
}

func TestKeyExistsIgnoresOperand(t *testing.T) {
	a := boolexpr.NewLeaf(predicate.New("price", predicate.Exists, 5))
	b := boolexpr.NewLeaf(predicate.New("price", predicate.Exists, nil))
	if Key(a) != Key(b) {
		t.Errorf("Exists keys differ: %q vs %q", Key(a), Key(b))
	}
}

func TestKeyNegativeZero(t *testing.T) {
	a := boolexpr.NewLeaf(predicate.New("price", predicate.Eq, math.Copysign(0, -1)))
	b := boolexpr.NewLeaf(predicate.New("price", predicate.Eq, 0))
	if Key(a) != Key(b) {
		t.Errorf("-0 and 0 keys differ: %q vs %q", Key(a), Key(b))
	}
}

// TestKeySoundnessProperty: equal keys must mean equal matched event sets.
func TestKeySoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := boolexpr.RandomConfig{MaxDepth: 3, MaxFanout: 3, AllowNot: true, Domain: 8}
	byKey := map[string]boolexpr.Expr{}
	for i := 0; i < 4000; i++ {
		x := boolexpr.RandomExpr(rng, cfg)
		k := Key(x)
		prev, ok := byKey[k]
		if !ok {
			byKey[k] = x
			continue
		}
		for j := 0; j < 40; j++ {
			ev := randomEvent(rng, 8)
			if prev.Eval(ev) != x.Eval(ev) {
				t.Fatalf("key collision with different semantics: %s vs %s (key %q) on %v",
					prev, x, k, ev)
			}
		}
	}
}

// TestKeyDeterministic: Key must not depend on map iteration or other
// per-run state.
func TestKeyDeterministic(t *testing.T) {
	x := parse(t, `(a = 1 or b = 2 or c prefix "s") and not d > 3 and exists e`)
	k := Key(x)
	for i := 0; i < 10; i++ {
		if Key(boolexpr.Clone(x)) != k {
			t.Fatal("Key is not deterministic across clones")
		}
	}
}

// TestCoversLargeNumericBoundary is the regression test for the 2^53
// soundness hole: value.Compare compares Int/Int exactly but Int/Float
// through float64, so its order is not transitive across kinds once
// magnitudes reach 2^53 — e.g. Int(2^53+1) compares equal to Float(2^53)
// but greater than Int(2^53). The domain must refuse to reason there.
func TestCoversLargeNumericBoundary(t *testing.T) {
	const big = int64(1) << 53 // 9007199254740992
	bigF := float64(big)

	// The original counterexample: the domain used to pin the covered
	// filter to Float(2^53), "equal" to Int(2^53+1) on the float path,
	// while the event Int(2^53) matches the covered filter but not the
	// coverer (exact Int comparison).
	a := boolexpr.NewLeaf(predicate.New("a", predicate.Eq, big+1))
	b := boolexpr.NewAnd(
		boolexpr.NewLeaf(predicate.New("a", predicate.Ge, bigF)),
		boolexpr.NewLeaf(predicate.New("a", predicate.Le, bigF)),
	)
	if Covers(a, b) {
		t.Errorf("unsound: Covers(a=2^53+1, 2^53.0<=a<=2^53.0) — event a=Int(2^53) matches b only")
	}

	// Exactly ±2^53 is already untrustworthy: Int(2^53+1) is "≤ Float(2^53)"
	// on the float path but "> Int(2^53)" exactly.
	le := boolexpr.NewLeaf(predicate.New("a", predicate.Le, big))
	leF := boolexpr.NewLeaf(predicate.New("a", predicate.Le, bigF))
	if Covers(le, leF) || Covers(leF, le) {
		t.Errorf("unsound: Le reasoning at the 2^53 boundary — event a=Int(2^53+1) distinguishes the operand kinds")
	}

	// Safely inside the boundary, reasoning must still work.
	inside := boolexpr.NewLeaf(predicate.New("a", predicate.Lt, big-2))
	wider := boolexpr.NewLeaf(predicate.New("a", predicate.Lt, float64(big-1)))
	if !Covers(wider, inside) {
		t.Errorf("Covers(a < 2^53-1.0, a < 2^53-2) = false, want provable")
	}

	// And the events the old bug lost must actually route: whenever
	// Covers holds for ±big operands, verify against the critical values.
	crit := []any{big - 1, big, big + 1, bigF, -big, -(big + 1), float64(-big)}
	ops := []predicate.Op{predicate.Eq, predicate.Ne, predicate.Lt, predicate.Le, predicate.Gt, predicate.Ge}
	for _, opA := range ops {
		for _, vA := range crit {
			for _, opB := range ops {
				for _, vB := range crit {
					pa := boolexpr.NewLeaf(predicate.New("a", opA, vA))
					pb := boolexpr.NewLeaf(predicate.New("a", opB, vB))
					if !Covers(pa, pb) {
						continue
					}
					for _, ev := range crit {
						e := event.New().Set("a", ev)
						if pb.Eval(e) && !pa.Eval(e) {
							t.Fatalf("unsound at boundary: Covers(%s, %s) but event a=%v matches b only",
								pa, pb, ev)
						}
					}
				}
			}
		}
	}
}
