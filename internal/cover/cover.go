// Package cover decides relationships between subscription filters without
// canonicalizing either side — the natural sequel to the paper's thesis
// that filters are best kept and processed in non-canonical form.
//
// Two facilities are provided:
//
//   - Covers(a, b): a sound-but-incomplete covering test — true means every
//     event matching b also matches a, so a broker (or overlay link) that
//     already carries a need not process b separately. The test recurses
//     through And/Or/Not directly on the expression trees, never expanding
//     to DNF, and reasons about leaves via a per-attribute abstract domain
//     (intervals for the ordered operators, excluded points for !=,
//     required prefix/suffix/substrings for the string family). "False"
//     always means "could not prove it", which is safe: callers simply
//     forgo an optimisation.
//
//   - Key(e): a canonical interning key for exact-duplicate detection.
//     Key(a) == Key(b) implies a and b match exactly the same events
//     (children of And/Or are sorted and deduplicated, double negation is
//     collapsed, numerically equal Int/Float operands unify), so engine
//     entries can be shared between subscribers with identical filters.
//
// Both are used by the broker's aggregation layer (internal/broker,
// Options.Aggregate) and the overlay's covering-based subscription
// forwarding (internal/overlay, Config.Cover) — the SIENA-style pruning
// that stops flooding a subscription past a link that already carries a
// covering one.
//
// Complexity: Covers explores pairs of subtrees, worst-case product of the
// two tree sizes per And/Or level; subscription trees are small (the
// paper's workloads use 6–10 leaves), so the test is microseconds in
// practice. It allocates only the per-attribute domains.
package cover

import (
	"sort"
	"strconv"
	"strings"

	"noncanon/internal/boolexpr"
	"noncanon/internal/predicate"
)

// Covers reports whether filter a covers filter b: every event matching b
// also matches a (sat(b) ⊆ sat(a)). The test is sound but incomplete —
// false means the relation could not be proven, not that it does not hold.
func Covers(a, b boolexpr.Expr) bool {
	if a == nil || b == nil {
		return false
	}
	return implies(b, a)
}

// implies reports (soundly) that every event satisfying p satisfies q.
func implies(p, q boolexpr.Expr) bool {
	if boolexpr.Equal(p, q) {
		return true
	}
	// Complete decompositions: a disjunction implies q iff every disjunct
	// does; p implies a conjunction iff it implies every conjunct. These
	// are exact, so their verdict is final for the sub-proofs they spawn.
	if o, ok := p.(boolexpr.Or); ok {
		for _, x := range o.Xs {
			if !implies(x, q) {
				return false
			}
		}
		return true
	}
	if a, ok := q.(boolexpr.And); ok {
		for _, y := range a.Xs {
			if !implies(p, y) {
				return false
			}
		}
		return true
	}
	// Incomplete sound rules: any that fires proves the implication.
	if a, ok := p.(boolexpr.And); ok {
		doms, feasible := conjDomains(a.Xs)
		if !feasible {
			return true // p is unsatisfiable: implies anything
		}
		// A single conjunct stronger than q suffices.
		for _, x := range a.Xs {
			if implies(x, q) {
				return true
			}
		}
		// Leaf conjuncts on q's attribute may entail q jointly even when
		// none does alone (a > 5 and a < 8 implies a != 9).
		if l, ok := q.(boolexpr.Leaf); ok {
			if d := doms[l.Pred.Attr]; d != nil && d.entails(l.Pred) {
				return true
			}
		}
	}
	if o, ok := q.(boolexpr.Or); ok {
		// Implying a single disjunct suffices.
		for _, y := range o.Xs {
			if implies(p, y) {
				return true
			}
		}
		return false
	}
	if n, ok := q.(boolexpr.Not); ok {
		// p ⇒ ¬y exactly when p and y share no event.
		return disjoint(p, n.X)
	}
	if lp, ok := p.(boolexpr.Leaf); ok {
		if lq, ok := q.(boolexpr.Leaf); ok {
			return leafImplies(lp.Pred, lq.Pred)
		}
	}
	return false
}

// disjoint reports (soundly) that no event satisfies both p and q.
func disjoint(p, q boolexpr.Expr) bool {
	// Complement rules are exact: ¬x is disjoint from q iff q ⊆ x.
	if n, ok := p.(boolexpr.Not); ok {
		return implies(q, n.X)
	}
	if n, ok := q.(boolexpr.Not); ok {
		return implies(p, n.X)
	}
	// Disjunction decomposes exactly.
	if o, ok := p.(boolexpr.Or); ok {
		for _, x := range o.Xs {
			if !disjoint(x, q) {
				return false
			}
		}
		return true
	}
	if o, ok := q.(boolexpr.Or); ok {
		for _, y := range o.Xs {
			if !disjoint(p, y) {
				return false
			}
		}
		return true
	}
	// p and q are now Leaf or And. Pool their top-level leaf conjuncts: an
	// event satisfying both satisfies all of them, so one contradictory
	// attribute domain proves disjointness (a > 5 vs a < 3).
	leaves := appendLeafConjuncts(nil, p)
	leaves = appendLeafConjuncts(leaves, q)
	if !leavesFeasible(leaves) {
		return true
	}
	// One conjunct disjoint from the other side suffices.
	if a, ok := p.(boolexpr.And); ok {
		for _, x := range a.Xs {
			if disjoint(x, q) {
				return true
			}
		}
	}
	if a, ok := q.(boolexpr.And); ok {
		for _, y := range a.Xs {
			if disjoint(p, y) {
				return true
			}
		}
	}
	return false
}

func leafImplies(p, q predicate.P) bool {
	if p.Attr != q.Attr {
		return false
	}
	var d dom
	if !d.conjoin(p) {
		return true // unsatisfiable leaf implies anything
	}
	return d.entails(q)
}

// conjDomains folds the leaf conjuncts of an And into per-attribute
// domains. feasible=false means some attribute's constraints are
// contradictory, i.e. the whole conjunction is unsatisfiable. Non-leaf
// conjuncts are ignored, which only widens the domains (sound).
func conjDomains(xs []boolexpr.Expr) (doms map[string]*dom, feasible bool) {
	for _, x := range xs {
		l, ok := x.(boolexpr.Leaf)
		if !ok {
			continue
		}
		if doms == nil {
			doms = make(map[string]*dom, 4)
		}
		d := doms[l.Pred.Attr]
		if d == nil {
			d = &dom{}
			doms[l.Pred.Attr] = d
		}
		if !d.conjoin(l.Pred) {
			return nil, false
		}
	}
	return doms, true
}

func appendLeafConjuncts(dst []predicate.P, e boolexpr.Expr) []predicate.P {
	switch t := e.(type) {
	case boolexpr.Leaf:
		return append(dst, t.Pred)
	case boolexpr.And:
		for _, x := range t.Xs {
			if l, ok := x.(boolexpr.Leaf); ok {
				dst = append(dst, l.Pred)
			}
		}
	}
	return dst
}

func leavesFeasible(ps []predicate.P) bool {
	doms := make(map[string]*dom, 4)
	for _, p := range ps {
		d := doms[p.Attr]
		if d == nil {
			d = &dom{}
			doms[p.Attr] = d
		}
		if !d.conjoin(p) {
			return false
		}
	}
	return true
}

// Key returns a canonical interning key for the expression. Structurally
// equivalent filters — modulo And/Or child order, duplicate children,
// double negation and Int/Float operand unification — share a key, and
// Key(a) == Key(b) guarantees that a and b match exactly the same events.
// The key is an opaque string suitable as a map key.
func Key(e boolexpr.Expr) string {
	if e == nil {
		return ""
	}
	return keyOf(e)
}

func keyOf(e boolexpr.Expr) string {
	switch t := e.(type) {
	case boolexpr.Leaf:
		return leafKey(t.Pred)
	case boolexpr.Not:
		if inner, ok := t.X.(boolexpr.Not); ok {
			return keyOf(inner.X) // ¬¬x ≡ x
		}
		return "!" + keyOf(t.X)
	case boolexpr.And:
		return naryKey('&', t.Xs)
	case boolexpr.Or:
		return naryKey('|', t.Xs)
	default:
		return "?"
	}
}

// naryKey canonicalises an n-ary And/Or: nested nodes of the same operator
// are flattened, children keys sorted and deduplicated (commutativity and
// idempotence preserve the matched event set), and a single surviving
// child collapses to itself.
func naryKey(op byte, xs []boolexpr.Expr) string {
	keys := make([]string, 0, len(xs))
	var collect func(xs []boolexpr.Expr)
	collect = func(xs []boolexpr.Expr) {
		for _, x := range xs {
			switch t := x.(type) {
			case boolexpr.And:
				if op == '&' {
					collect(t.Xs)
					continue
				}
			case boolexpr.Or:
				if op == '|' {
					collect(t.Xs)
					continue
				}
			}
			keys = append(keys, keyOf(x))
		}
	}
	collect(xs)
	sort.Strings(keys)
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			uniq = append(uniq, k)
		}
	}
	if len(uniq) == 1 {
		return uniq[0]
	}
	return string(op) + "(" + strings.Join(uniq, ",") + ")"
}

// leafKey renders a predicate unambiguously: the attribute is quoted (so
// separators inside names cannot collide) and the operand is rendered
// through value.KeyString — the same canonicalisation the predicate
// registry interns by, so filter interning can never disagree with
// predicate interning.
func leafKey(p predicate.P) string {
	if p.Op == predicate.Exists {
		// Eval ignores the operand of Exists entirely.
		return "p:" + strconv.Quote(p.Attr) + ":exists"
	}
	return "p:" + strconv.Quote(p.Attr) + ":" + p.Op.String() + ":" + p.Operand.KeyString()
}
