package cover

import (
	"math"
	"strings"

	"noncanon/internal/predicate"
	"noncanon/internal/value"
)

// class partitions operand values by mutual comparability: value.Compare
// succeeds exactly within a class (Int and Float compare with each other,
// strings with strings, bools with bools). Every predicate operator except
// Exists requires the event value to be comparable with — or, for the
// substring family, of the same String kind as — its operand, so a
// conjunction whose operands span two classes admits no value at all.
type class uint8

const (
	classAny class = iota // unconstrained (only Exists conjuncts seen)
	classNum
	classStr
	classBool
)

func classOf(v value.Value) (class, bool) {
	switch v.Kind() {
	case value.Int, value.Float:
		return classNum, true
	case value.String:
		return classStr, true
	case value.Bool:
		return classBool, true
	default:
		return 0, false
	}
}

// dom is the per-attribute abstract domain: a conservative constraint on the
// value an event must carry for one attribute. Conjoining predicates only
// ever OVER-approximates — the concretisation γ(dom) always contains every
// value admitted by the conjoined predicates — so the two conclusions drawn
// from a dom are sound:
//
//   - entails(q): γ(dom) ⊆ sat(q), hence the conjunction implies q;
//   - conjoin returning false: γ(dom) = ∅, hence the conjunction is
//     unsatisfiable (and implies anything).
//
// The domain tracks an interval for the ordered operators (within one
// comparability class), required prefix/suffix/substrings for the string
// family, and excluded points for !=. Constraints it cannot represent are
// dropped, which widens γ and stays sound.
type dom struct {
	cls class

	// noNaN records that some conjoined predicate provably excludes a NaN
	// event value. value.Compare returns (0, ok) for NaN against any
	// number, so NaN satisfies every NON-strict numeric comparison
	// (=, <=, >=) and fails every strict one (<, >, !=): a numeric
	// conjunction therefore admits NaN — outside any real interval —
	// unless a Lt/Gt/Ne conjunct kills it. While NaN may inhabit γ, the
	// domain must not entail strict/Ne predicates (NaN would violate
	// them) nor conclude emptiness from interval contradictions (NaN
	// satisfies both sides of `x <= 5 and x >= 10`).
	noNaN bool

	lower, upper             value.Value
	lowerOK, upperOK         bool
	lowerStrict, upperStrict bool

	pre   string // required prefix, valid when preOK
	preOK bool
	suf   string // required suffix, valid when sufOK
	sufOK bool
	subs  []string // required substrings

	excluded []value.Value // != points
}

// untrustedNumeric reports whether a numeric operand must be excluded from
// domain reasoning. Two regions of value.Compare's order cannot support
// sound operand-to-operand conclusions:
//
//   - NaN: the order is degenerate (everything compares "equal" to it);
//   - magnitudes ≥ 2^53 (including ±Inf): Int/Int comparisons are exact
//     while Int/Float ones round through float64, so the order stops
//     being transitive across kinds — e.g. Int(2^53+1) compares equal to
//     Float(2^53) but greater than Int(2^53), which would let the domain
//     "prove" implications the engine then contradicts.
//
// Operands strictly inside (−2^53, 2^53) are exact on every comparison
// path, so conclusions drawn among them transfer to arbitrary event
// values. Everything else is dropped by conjoin and rejected by entails —
// widening, never unsound.
func untrustedNumeric(v value.Value) bool {
	f, ok := v.AsFloat()
	if !ok {
		return false // not numeric; other guards decide
	}
	return math.IsNaN(f) || math.Abs(f) >= 1<<53
}

// conjoin intersects predicate p into the domain. It reports false only
// when the domain is now provably empty — no single value satisfies all
// conjoined predicates — which is a licence to conclude anything from the
// conjunction. Unrepresentable constraints are dropped (sound: the domain
// only widens).
func (d *dom) conjoin(p predicate.P) bool {
	if p.Op == predicate.Exists {
		return true // presence only; no value constraint
	}
	c, ok := classOf(p.Operand)
	if !ok {
		// Invalid operand: the comparison can never succeed, so the
		// predicate matches nothing.
		return false
	}
	switch p.Op {
	case predicate.Prefix, predicate.Suffix, predicate.Contains:
		if c != classStr {
			// The substring family demands a String operand; with any other
			// kind the predicate matches nothing.
			return false
		}
	}
	if d.cls == classAny {
		d.cls = c
	} else if d.cls != c {
		// Two operand classes: the event value would have to be comparable
		// with both, which no value is.
		return false
	}
	if untrustedNumeric(p.Operand) {
		return true // drop: see untrustedNumeric
	}
	switch p.Op {
	case predicate.Lt, predicate.Gt, predicate.Ne:
		// Strict comparisons and != fail on a NaN event value
		// (Compare yields c == 0), so they pin γ inside the reals.
		d.noNaN = true
	}
	switch p.Op {
	case predicate.Eq:
		if !d.tightenLower(p.Operand, false) || !d.tightenUpper(p.Operand, false) {
			return false
		}
		if c == classStr {
			if !d.requirePrefix(p.Operand.Str()) || !d.requireSuffix(p.Operand.Str()) {
				return false
			}
		}
	case predicate.Ne:
		d.excluded = append(d.excluded, p.Operand)
	case predicate.Lt:
		if !d.tightenUpper(p.Operand, true) {
			return false
		}
	case predicate.Le:
		if !d.tightenUpper(p.Operand, false) {
			return false
		}
	case predicate.Gt:
		if !d.tightenLower(p.Operand, true) {
			return false
		}
	case predicate.Ge:
		if !d.tightenLower(p.Operand, false) {
			return false
		}
	case predicate.Prefix:
		// A string starting with s is lexicographically >= s.
		if !d.requirePrefix(p.Operand.Str()) || !d.tightenLower(p.Operand, false) {
			return false
		}
	case predicate.Suffix:
		if !d.requireSuffix(p.Operand.Str()) {
			return false
		}
	case predicate.Contains:
		d.subs = append(d.subs, p.Operand.Str())
	default:
		// Unknown operator: matches nothing (predicate.EvalValue returns
		// false), so the conjunction is empty.
		return false
	}
	return d.feasible()
}

func (d *dom) tightenLower(v value.Value, strict bool) bool {
	if !d.lowerOK {
		d.lower, d.lowerStrict, d.lowerOK = v, strict, true
		return d.feasible()
	}
	c, ok := v.Compare(d.lower)
	if !ok {
		return true // cannot order: drop the new bound
	}
	if c > 0 || (c == 0 && strict && !d.lowerStrict) {
		d.lower, d.lowerStrict = v, strict
	}
	return d.feasible()
}

func (d *dom) tightenUpper(v value.Value, strict bool) bool {
	if !d.upperOK {
		d.upper, d.upperStrict, d.upperOK = v, strict, true
		return d.feasible()
	}
	c, ok := v.Compare(d.upper)
	if !ok {
		return true
	}
	if c < 0 || (c == 0 && strict && !d.upperStrict) {
		d.upper, d.upperStrict = v, strict
	}
	return d.feasible()
}

// requirePrefix intersects a required prefix: of two compatible prefixes the
// longer one subsumes the shorter; incompatible ones admit no string.
func (d *dom) requirePrefix(s string) bool {
	if !d.preOK {
		d.pre, d.preOK = s, true
		return d.feasible()
	}
	if strings.HasPrefix(d.pre, s) {
		return true
	}
	if strings.HasPrefix(s, d.pre) {
		d.pre = s
		return d.feasible()
	}
	return false
}

func (d *dom) requireSuffix(s string) bool {
	if !d.sufOK {
		d.suf, d.sufOK = s, true
		return d.feasible()
	}
	if strings.HasSuffix(d.suf, s) {
		return true
	}
	if strings.HasSuffix(s, d.suf) {
		d.suf = s
		return d.feasible()
	}
	return false
}

// feasible reports whether the domain still admits at least one value as
// far as it can tell; false is only returned on a definite contradiction.
func (d *dom) feasible() bool {
	if d.cls == classNum && !d.noNaN {
		// NaN satisfies every conjoined constraint (all are non-strict in
		// Compare's degenerate NaN order), so no interval contradiction
		// can empty the domain: `x = 2 and x = 3` still admits NaN.
		return true
	}
	if d.lowerOK && d.upperOK {
		c, ok := d.lower.Compare(d.upper)
		if ok {
			if c > 0 {
				return false
			}
			if c == 0 && (d.lowerStrict || d.upperStrict) {
				return false
			}
			if c == 0 && d.pinned() {
				// Single admissible point: check it against the point-wise
				// constraints.
				v := d.lower
				for _, x := range d.excluded {
					if v.Equal(x) {
						return false
					}
				}
				if d.cls == classStr {
					s := v.Str()
					if d.preOK && !strings.HasPrefix(s, d.pre) {
						return false
					}
					if d.sufOK && !strings.HasSuffix(s, d.suf) {
						return false
					}
					for _, sub := range d.subs {
						if !strings.Contains(s, sub) {
							return false
						}
					}
				}
			}
		}
	}
	// Class-extremum contradictions: nothing below the class minimum or
	// above the class maximum.
	switch d.cls {
	case classStr:
		if d.upperOK && d.upperStrict && d.upper.Str() == "" {
			return false // no string < ""
		}
	case classBool:
		if d.upperOK && d.upperStrict && !d.upper.Bool() {
			return false // no bool < false
		}
		if d.lowerOK && d.lowerStrict && d.lower.Bool() {
			return false // no bool > true
		}
		// classNum needs no extremum check: untrustedNumeric keeps ±Inf
		// (and anything ≥ 2^53) out of the interval bounds.
	}
	return true
}

// pinned reports whether the domain admits exactly the single value d.lower.
func (d *dom) pinned() bool {
	return d.lowerOK && d.upperOK && !d.lowerStrict && !d.upperStrict && d.lower.Equal(d.upper)
}

// entails reports whether every value admitted by the domain satisfies
// predicate q (on the same attribute). The caller guarantees that the
// attribute is present — every conjoined leaf, including Exists, requires
// presence — so Exists is entailed unconditionally.
func (d *dom) entails(q predicate.P) bool {
	if q.Op == predicate.Exists {
		return true
	}
	qc, ok := classOf(q.Operand)
	if !ok || untrustedNumeric(q.Operand) {
		return false
	}
	if d.cls != qc {
		// Either unconstrained (classAny: γ spans every class) or the
		// classes differ, in which case no admitted value can even be
		// compared with q's operand.
		return false
	}
	if qc == classNum && !d.noNaN {
		switch q.Op {
		case predicate.Lt, predicate.Gt, predicate.Ne:
			// γ may contain NaN, which fails every strict/!= comparison
			// while having satisfied the (non-strict) conjuncts.
			return false
		}
	}
	switch q.Op {
	case predicate.Eq:
		return d.pinned() && d.lower.Equal(q.Operand)
	case predicate.Ne:
		return d.excludes(q.Operand)
	case predicate.Lt:
		if !d.upperOK {
			return false
		}
		c, ok := d.upper.Compare(q.Operand)
		return ok && (c < 0 || (c == 0 && d.upperStrict))
	case predicate.Le:
		if !d.upperOK {
			return false
		}
		c, ok := d.upper.Compare(q.Operand)
		return ok && c <= 0
	case predicate.Gt:
		if !d.lowerOK {
			return false
		}
		c, ok := d.lower.Compare(q.Operand)
		return ok && (c > 0 || (c == 0 && d.lowerStrict))
	case predicate.Ge:
		if !d.lowerOK {
			return false
		}
		c, ok := d.lower.Compare(q.Operand)
		return ok && c >= 0
	case predicate.Prefix:
		return d.preOK && strings.HasPrefix(d.pre, q.Operand.Str())
	case predicate.Suffix:
		return d.sufOK && strings.HasSuffix(d.suf, q.Operand.Str())
	case predicate.Contains:
		y := q.Operand.Str()
		if d.preOK && strings.Contains(d.pre, y) {
			return true
		}
		if d.sufOK && strings.Contains(d.suf, y) {
			return true
		}
		for _, s := range d.subs {
			if strings.Contains(s, y) {
				return true
			}
		}
		return false
	}
	return false
}

// excludes reports whether the domain provably admits no value equal to y.
func (d *dom) excludes(y value.Value) bool {
	for _, x := range d.excluded {
		if x.Equal(y) {
			return true
		}
	}
	if d.lowerOK {
		if c, ok := y.Compare(d.lower); ok && (c < 0 || (c == 0 && d.lowerStrict)) {
			return true
		}
	}
	if d.upperOK {
		if c, ok := y.Compare(d.upper); ok && (c > 0 || (c == 0 && d.upperStrict)) {
			return true
		}
	}
	if d.cls == classStr && y.Kind() == value.String {
		s := y.Str()
		if d.preOK && !strings.HasPrefix(s, d.pre) {
			return true
		}
		if d.sufOK && !strings.HasSuffix(s, d.suf) {
			return true
		}
		for _, sub := range d.subs {
			if !strings.Contains(s, sub) {
				return true
			}
		}
	}
	return false
}
