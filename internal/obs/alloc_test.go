//go:build !race

package obs

import (
	"testing"
	"time"
)

// The whole point of obs is that instruments can sit on the match/publish
// spine without perturbing it: every increment-path operation is pinned
// at zero allocations. (AllocsPerRun is meaningless under -race, hence
// the build tag; CI runs both configurations.)
func TestIncrementPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(7) },
		"Gauge.Add":         func() { g.Add(-1) },
		"Histogram.Observe": func() { h.Observe(3 * time.Microsecond) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, budget 0", name, allocs)
		}
	}
}

// Handle lookup by name is read-locked but still allocation-free — a
// component that looks its counter up per batch (not per event) pays no
// allocation either.
func TestLookupAllocFree(t *testing.T) {
	r := NewRegistry()
	r.Counter("c")
	if allocs := testing.AllocsPerRun(1000, func() { r.Counter("c").Inc() }); allocs != 0 {
		t.Errorf("Counter lookup: %v allocs/op, budget 0", allocs)
	}
}
