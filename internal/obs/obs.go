// Package obs is the observability subsystem: a stdlib-only metrics
// registry whose increment path is allocation-free, an event-trace ring
// buffer, and an opt-in HTTP endpoint (Prometheus text format, expvar-style
// JSON, net/http/pprof).
//
// The paper's whole argument is quantitative — filtering cost per event,
// table size, flood counts — so the repro's components (broker, router,
// overlay, netoverlay) register their counters here instead of keeping
// ad-hoc atomic fields readable only at shutdown. Their public Stats
// snapshot structs are preserved as *views* over registry instruments, and
// the live registry adds what a shutdown report cannot: latency histograms
// (p50/p99 without stopping the world), per-peer queue gauges, and per-hop
// federation latency for sampled events.
//
// Hot-path discipline: Counter.Inc/Add, Gauge.Set/Add and
// Histogram.Observe are single atomic operations — no locks, no
// allocation, `//nclint:hotpath`-clean, pinned by AllocsPerRun budgets —
// so instruments can sit on the match/publish spine without perturbing
// the numbers they measure. Instrument *creation* (Registry.Counter and
// friends) takes the registry lock and may allocate; components create
// their handles once at construction, never per event.
//
// Snapshot coherence: Registry.Snapshot reads instruments in reverse
// registration order. Components register cause-counters before
// effect-counters (published before forwarded, say), so a snapshot reads
// the effect first and its cause after — any effect present in the
// snapshot has its cause counted too, and causal invariants like
// "Forwarded implies an earlier Publish" reconcile even while writers are
// mid-storm. Per-instrument reads stay individually atomic; the ordering
// is what makes the combination coherent.
//
// Architecture: only cmd/* and this package may import net/http (the arch
// policy pins this); engine packages stay pure compute and never import
// obs — the broker observes around the engine, not inside it.
package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 instrument.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//nclint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//nclint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//nclint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas decrement).
//
//nclint:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Kind tags an instrument for exposition.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
	// KindCounterFunc and KindGaugeFunc are computed at snapshot time from
	// a callback — the shape for values that already live elsewhere under
	// their own lock (spill-queue depths, say) and would be double
	// bookkeeping as stored instruments.
	KindCounterFunc
	KindGaugeFunc
)

// instrument is one registered name.
type instrument struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	cf   func() uint64
	gf   func() int64
}

// Registry is a namespace of instruments. All methods are safe for
// concurrent use; instrument handles returned by Counter/Gauge/Histogram
// are get-or-create, so components sharing a registry under the same name
// share the instrument (the overlay exploits this: every node's router
// writes the same counters, and network totals are one snapshot read).
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*instrument
	ordered []*instrument // registration order; Snapshot reads it backwards
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument, 32)}
}

// Counter returns the counter registered under name, creating it if
// needed. It panics if the name is already registered as another kind —
// instrument names are API, and a kind clash is a programming error worth
// failing loudly over.
func (r *Registry) Counter(name string) *Counter {
	ins := r.getOrCreate(name, KindCounter)
	return ins.c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	ins := r.getOrCreate(name, KindGauge)
	return ins.g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	ins := r.getOrCreate(name, KindHistogram)
	return ins.h
}

// CounterFunc registers a counter whose value is computed by fn at
// snapshot time. Re-registering a name replaces its callback (a
// reconnected peer re-claims its instrument).
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	ins := r.getOrCreate(name, KindCounterFunc)
	r.mu.Lock()
	ins.cf = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time. Re-registering a name replaces its callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	ins := r.getOrCreate(name, KindGaugeFunc)
	r.mu.Lock()
	ins.gf = fn
	r.mu.Unlock()
}

// Unregister removes an instrument (a detached peer's gauges, say).
// Unknown names are a no-op.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ins, ok := r.byName[name]
	if !ok {
		return
	}
	delete(r.byName, name)
	for i, o := range r.ordered {
		if o == ins {
			r.ordered = append(r.ordered[:i], r.ordered[i+1:]...)
			break
		}
	}
}

func (r *Registry) getOrCreate(name string, kind Kind) *instrument {
	r.mu.RLock()
	ins, ok := r.byName[name]
	r.mu.RUnlock()
	if ok {
		if ins.kind != kind {
			panic("obs: instrument " + name + " re-registered as a different kind")
		}
		return ins
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok = r.byName[name]; ok { // lost the creation race
		if ins.kind != kind {
			panic("obs: instrument " + name + " re-registered as a different kind")
		}
		return ins
	}
	ins = &instrument{name: name, kind: kind}
	switch kind {
	case KindCounter:
		ins.c = &Counter{}
	case KindGauge:
		ins.g = &Gauge{}
	case KindHistogram:
		ins.h = newHistogram()
	}
	r.byName[name] = ins
	r.ordered = append(r.ordered, ins)
	return ins
}

// Sample is one instrument's snapshot value. Exactly one of the value
// fields is meaningful, selected by Kind: counters use Value, gauges use
// GaugeValue, histograms use Hist.
type Sample struct {
	Name       string
	Kind       Kind
	Value      uint64
	GaugeValue int64
	Hist       HistogramSnapshot
}

// Snapshot reads every instrument. Values are read in reverse
// registration order (see the package comment on coherence) and returned
// in registration order, so displays stay cause-first while the read
// ordering keeps causal invariants intact.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	ordered := make([]*instrument, len(r.ordered))
	copy(ordered, r.ordered)
	r.mu.RUnlock()
	out := make([]Sample, len(ordered))
	for i := len(ordered) - 1; i >= 0; i-- {
		ins := ordered[i]
		s := Sample{Name: ins.name, Kind: ins.kind}
		switch ins.kind {
		case KindCounter:
			s.Value = ins.c.Value()
		case KindGauge:
			s.GaugeValue = ins.g.Value()
		case KindHistogram:
			s.Hist = ins.h.Snapshot()
		case KindCounterFunc:
			s.Value = ins.cf()
		case KindGaugeFunc:
			s.GaugeValue = ins.gf()
		}
		out[i] = s
	}
	return out
}

// Get returns the sample of one instrument by name; ok is false for
// unknown names. Reads are as atomic as Snapshot's per-instrument reads.
func (r *Registry) Get(name string) (Sample, bool) {
	r.mu.RLock()
	ins, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return Sample{}, false
	}
	s := Sample{Name: ins.name, Kind: ins.kind}
	switch ins.kind {
	case KindCounter:
		s.Value = ins.c.Value()
	case KindGauge:
		s.GaugeValue = ins.g.Value()
	case KindHistogram:
		s.Hist = ins.h.Snapshot()
	case KindCounterFunc:
		s.Value = ins.cf()
	case KindGaugeFunc:
		s.GaugeValue = ins.gf()
	}
	return s, true
}

// Len reports the registered instrument count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ordered)
}
