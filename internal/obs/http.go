package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Endpoint bundles what the operational HTTP surface exposes: the
// registry to scrape and (optionally) a trace ring to dump. The zero
// Ring is fine — /traces then reports an empty list.
type Endpoint struct {
	Registry *Registry
	Ring     *TraceRing
}

// NewMux builds the endpoint's routes on a fresh mux:
//
//	/metrics        Prometheus text format
//	/vars           expvar-style JSON over the same samples
//	/traces         recent sampled trace hops as JSON, oldest first
//	/debug/pprof/   the standard runtime profiles
//
// pprof is mounted on this private mux by hand rather than imported for
// its DefaultServeMux side effect, so nothing leaks onto the default mux
// and the endpoint only exists where explicitly served.
func (e Endpoint) NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, e.Registry.Snapshot())
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w, e.Registry.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var recs []TraceRecord
		if e.Ring != nil {
			recs = e.Ring.Recent()
		}
		fmt.Fprint(w, "[")
		for i, r := range recs {
			sep := ",\n "
			if i == 0 {
				sep = "\n "
			}
			fmt.Fprintf(w,
				"%s{\"trace_id\": %d, \"node\": %q, \"hops\": %d, \"origin_ns\": %d, \"arrival_ns\": %d, \"latency_ns\": %d}",
				sep, r.TraceID, r.Node, r.Hops, r.OriginNanos, r.ArrivalNanos, r.LatencyNanos)
		}
		fmt.Fprint(w, "\n]\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves the endpoint until the listener is
// closed. It returns the bound listener (so addr may use port 0 and the
// caller can read the real address) and never blocks; the serve loop's
// terminal error is discarded, as shutting the listener is the one way
// this is meant to stop.
func (e Endpoint) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: e.NewMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// Serve starts the operational endpoint for a registry with no trace
// ring — the common single-broker case.
func Serve(addr string, r *Registry) (net.Listener, error) {
	return Endpoint{Registry: r}.Serve(addr)
}
