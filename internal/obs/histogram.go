package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every histogram: bucket 0 holds
// observations below 1.024µs, buckets 1..22 are successive powers of two
// of nanoseconds (upper bound of bucket i is 2^(10+i) ns, so ~2µs, ~4µs,
// … up to ~4.29s), and bucket 23 is the overflow (+Inf) bucket. Fixed
// exponential buckets keep Observe a shift-and-add — no search, no
// configuration, no allocation — at a resolution (×2 per bucket) that is
// plenty for latency work where the interesting differences are orders of
// magnitude.
const NumBuckets = 24

// bucketBase is the log2 of bucket 0's upper bound in nanoseconds.
const bucketBase = 10

// BucketBound returns the upper bound of bucket i in nanoseconds; the
// last bucket is unbounded and reports the largest representable bound.
func BucketBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(bucketBase+i))
}

// bucketOf maps a duration in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	if ns < 1<<bucketBase {
		return 0 // negative clock skew lands here too, rather than panicking
	}
	i := bits.Len64(uint64(ns)) - bucketBase
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Histogram is a fixed-bucket latency histogram. Observe is a single
// bucket increment plus a sum add — lock-free, allocation-free — so it
// can sit directly on the publish/match spine. Quantiles are estimated
// from the bucket counts at read time; nothing stops the world.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
//
//nclint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Count is derived from the bucket counts read in one pass, so Count ==
// sum(Buckets) always holds within a snapshot.
type HistogramSnapshot struct {
	// Buckets[i] counts observations that fell in bucket i (per-bucket,
	// not cumulative; exposition accumulates).
	Buckets [NumBuckets]uint64
	// Count is the total observation count.
	Count uint64
	// Sum is the sum of all observed durations.
	Sum time.Duration
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	// Sum first, buckets after: an Observe racing the snapshot then shows
	// up in Sum before its bucket, keeping Sum ≥ what the buckets imply
	// rather than a mean that overshoots the data.
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank. It returns 0 for an empty
// histogram. The estimate is bounded by the bucket resolution: exact at
// bucket boundaries, within a factor of two inside a bucket — the right
// tool for "did p99 move an order of magnitude", not microsecond forensics.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if next >= target {
			lower := time.Duration(0)
			if i > 0 {
				lower = BucketBound(i - 1)
			}
			upper := BucketBound(i)
			if i == NumBuckets-1 {
				return lower // unbounded bucket: report its floor
			}
			frac := (target - cum) / float64(b)
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum = next
	}
	return BucketBound(NumBuckets - 2) // unreachable with Count > 0
}

// Mean returns the mean observed duration, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
