package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// splitLabels separates an instrument name like
// `netoverlay_peer_queue_bytes{peer="2"}` into the metric family name and
// its label block (empty when unlabeled). Registered names embed labels
// directly — the registry stays a flat namespace and exposition just has
// to group families for TYPE lines.
func splitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// WritePrometheus renders every instrument in Prometheus text format
// (version 0.0.4). Counters and counter-funcs become `counter` families,
// gauges `gauge`, histograms `histogram` with cumulative `le` buckets in
// seconds. Instruments sharing a family (labeled variants) get one TYPE
// line. Exposition is cold-path: it allocates freely.
func WritePrometheus(w io.Writer, samples []Sample) error {
	typed := make(map[string]bool, len(samples))
	for _, s := range samples {
		family, labels := splitLabels(s.Name)
		var err error
		switch s.Kind {
		case KindCounter, KindCounterFunc:
			if !typed[family] {
				typed[family] = true
				if _, err = fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s%s %d\n", family, labels, s.Value)
		case KindGauge, KindGaugeFunc:
			if !typed[family] {
				typed[family] = true
				if _, err = fmt.Fprintf(w, "# TYPE %s gauge\n", family); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s%s %d\n", family, labels, s.GaugeValue)
		case KindHistogram:
			if !typed[family] {
				typed[family] = true
				if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
					return err
				}
			}
			err = writePromHistogram(w, family, labels, s.Hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, family, labels string, h HistogramSnapshot) error {
	joiner := "{"
	if labels != "" {
		joiner = labels[:len(labels)-1] + ","
	}
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if i == NumBuckets-1 {
			if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", family, joiner, cum); err != nil {
				return err
			}
			break
		}
		le := float64(BucketBound(i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"%g\"} %d\n", family, joiner, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", family, labels, float64(h.Sum)/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count)
	return err
}

// WriteJSON renders the samples as one expvar-style JSON object, keyed by
// instrument name, sorted for stable output. Histograms expand to an
// object with count, sum, mean and the headline quantiles in nanoseconds.
func WriteJSON(w io.Writer, samples []Sample) error {
	sorted := make([]Sample, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, s := range sorted {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		var err error
		switch s.Kind {
		case KindCounter, KindCounterFunc:
			_, err = fmt.Fprintf(w, "%s%q: %d", sep, s.Name, s.Value)
		case KindGauge, KindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s%q: %d", sep, s.Name, s.GaugeValue)
		case KindHistogram:
			h := s.Hist
			_, err = fmt.Fprintf(w,
				"%s%q: {\"count\": %d, \"sum_ns\": %d, \"mean_ns\": %d, \"p50_ns\": %d, \"p99_ns\": %d}",
				sep, s.Name, h.Count, int64(h.Sum), int64(h.Mean()),
				int64(h.Quantile(0.5)), int64(h.Quantile(0.99)))
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}
