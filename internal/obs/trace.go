package obs

import "sync"

// TraceRecord is one hop of a sampled event's journey through the
// federation: broker node saw trace TraceID arrive Hops forwards away
// from its origin, ArrivalNanos-OriginNanos after it was published.
type TraceRecord struct {
	TraceID      uint64
	Node         string
	Hops         int
	OriginNanos  int64
	ArrivalNanos int64
	LatencyNanos int64
}

// TraceRing is a fixed-capacity ring of recent trace records. Writers
// overwrite the oldest record once full; Recent returns oldest-first.
// It is mutex-guarded rather than lock-free — traces are sampled (one in
// N events), so the ring is off the hot path by construction and clarity
// wins over cleverness here.
type TraceRing struct {
	mu    sync.Mutex
	buf   []TraceRecord
	next  int
	total uint64
}

// NewTraceRing builds a ring holding up to capacity records; capacity
// is clamped to at least 1.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceRecord, 0, capacity)}
}

// Record appends one hop record, evicting the oldest when full.
func (t *TraceRing) Record(rec TraceRecord) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, rec)
	} else {
		t.buf[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Recent returns a copy of the buffered records, oldest first.
func (t *TraceRing) Recent() []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}

// Total reports how many records have ever been written, including
// those since overwritten.
func (t *TraceRing) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
