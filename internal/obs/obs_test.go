package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentTotals hammers shared instruments from N
// goroutines and checks the final snapshot equals the expected totals —
// the registry's core contract, run under -race in CI.
func TestRegistryConcurrentTotals(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		perG       = 5000
	)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Mix handle reuse with name lookup: both must hit the same
			// instrument.
			cc := r.Counter("c")
			for j := 0; j < perG; j++ {
				c.Inc()
				cc.Add(2)
				g.Add(1)
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(goroutines*perG*3); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), int64(goroutines*perG); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	hs := h.Snapshot()
	if got, want := hs.Count, uint64(goroutines*perG); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var bucketSum uint64
	for _, b := range hs.Buckets {
		bucketSum += b
	}
	if bucketSum != hs.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, hs.Count)
	}
	// perG observations of 0..perG-1 µs per goroutine.
	wantSum := time.Duration(goroutines) * time.Duration(perG*(perG-1)/2) * time.Microsecond
	if hs.Sum != wantSum {
		t.Errorf("histogram sum = %v, want %v", hs.Sum, wantSum)
	}
}

func TestRegistryGetOrCreateSharing(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name returned distinct counters")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistrySnapshotAndGet(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(-3)
	r.Histogram("c").Observe(time.Millisecond)
	r.CounterFunc("d", func() uint64 { return 11 })
	r.GaugeFunc("e", func() int64 { return -5 })

	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot len = %d, want 5", len(snap))
	}
	// Registration order preserved in the returned slice.
	for i, want := range []string{"a", "b", "c", "d", "e"} {
		if snap[i].Name != want {
			t.Errorf("snap[%d].Name = %q, want %q", i, snap[i].Name, want)
		}
	}
	if snap[0].Value != 7 || snap[1].GaugeValue != -3 || snap[2].Hist.Count != 1 ||
		snap[3].Value != 11 || snap[4].GaugeValue != -5 {
		t.Errorf("snapshot values wrong: %+v", snap)
	}

	s, ok := r.Get("d")
	if !ok || s.Value != 11 {
		t.Errorf("Get(d) = %+v, %v", s, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get(nope) reported ok")
	}

	r.Unregister("b")
	r.Unregister("nope") // no-op
	if r.Len() != 4 {
		t.Errorf("Len after unregister = %d, want 4", r.Len())
	}
	if _, ok := r.Get("b"); ok {
		t.Error("unregistered instrument still visible")
	}
}

func TestCounterFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("f", func() uint64 { return 1 })
	r.CounterFunc("f", func() uint64 { return 2 })
	if s, _ := r.Get("f"); s.Value != 2 {
		t.Errorf("replaced CounterFunc = %d, want 2", s.Value)
	}
	r.GaugeFunc("g", func() int64 { return 1 })
	r.GaugeFunc("g", func() int64 { return -9 })
	if s, _ := r.Get("g"); s.GaugeValue != -9 {
		t.Errorf("replaced GaugeFunc = %d, want -9", s.GaugeValue)
	}
}

// TestHistogramBucketBoundaries pins the bucket mapping at the exact
// powers of two: a value equal to a bucket's upper bound lands in the
// next bucket (bounds are exclusive above).
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      time.Duration
		bucket int
	}{
		{0, 0},
		{-time.Second, 0}, // clock skew degrades gracefully
		{1023, 0},
		{1024, 1},
		{2047, 1},
		{2048, 2},
		{4096, 3},
		{time.Duration(1) << 31, 22},
		{time.Duration(1)<<32 - 1, 22},
		{time.Duration(1) << 32, 23}, // overflow bucket floor
		{time.Hour, 23},
	}
	for _, c := range cases {
		h := newHistogram()
		h.Observe(c.v)
		s := h.Snapshot()
		got := -1
		for i, b := range s.Buckets {
			if b == 1 {
				got = i
				break
			}
		}
		if got != c.bucket {
			t.Errorf("Observe(%d ns) landed in bucket %d, want %d", int64(c.v), got, c.bucket)
		}
	}
	if got := BucketBound(0); got != 1024 {
		t.Errorf("BucketBound(0) = %d, want 1024", got)
	}
	if got := BucketBound(NumBuckets - 1); got != time.Duration(1<<63-1) {
		t.Errorf("BucketBound(last) = %d, want max", got)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean not 0")
	}

	h := newHistogram()
	// 100 observations spread over two buckets: 50 at ~1.5µs (bucket 1),
	// 50 at ~3µs (bucket 2).
	for i := 0; i < 50; i++ {
		h.Observe(1536)
		h.Observe(3072)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// p25 interpolates inside bucket 1 [1024,2048); p99 inside bucket 2.
	if q := s.Quantile(0.25); q < 1024 || q >= 2048 {
		t.Errorf("p25 = %v, want within bucket 1", q)
	}
	if q := s.Quantile(0.99); q < 2048 || q >= 4096 {
		t.Errorf("p99 = %v, want within bucket 2", q)
	}
	if q := s.Quantile(-1); q != 0 && q >= 2048 {
		t.Errorf("clamped q<0 = %v", q)
	}
	if q := s.Quantile(2); q < 2048 {
		t.Errorf("clamped q>1 = %v, want in top bucket", q)
	}
	wantMean := time.Duration((1536*50 + 3072*50) / 100)
	if m := s.Mean(); m != wantMean {
		t.Errorf("mean = %v, want %v", m, wantMean)
	}

	// Mass in the overflow bucket reports its floor.
	ho := newHistogram()
	ho.Observe(time.Hour)
	if q := ho.Snapshot().Quantile(0.99); q != time.Duration(1)<<32 {
		t.Errorf("overflow-bucket quantile = %v, want 2^32 ns", q)
	}
}

func TestTraceRingWrap(t *testing.T) {
	ring := NewTraceRing(3)
	if got := ring.Recent(); len(got) != 0 {
		t.Fatalf("fresh ring has %d records", len(got))
	}
	for i := 1; i <= 5; i++ {
		ring.Record(TraceRecord{TraceID: uint64(i)})
	}
	got := ring.Recent()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i].TraceID != want {
			t.Errorf("Recent[%d] = %d, want %d (oldest first)", i, got[i].TraceID, want)
		}
	}
	if ring.Total() != 5 {
		t.Errorf("Total = %d, want 5", ring.Total())
	}
	if NewTraceRing(0).buf == nil {
		t.Error("clamped ring has nil buffer")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("broker_published_total").Add(42)
	r.Gauge(`netoverlay_peer_queue_bytes{peer="2"}`).Set(128)
	r.Gauge(`netoverlay_peer_queue_bytes{peer="3"}`).Set(256)
	h := r.Histogram("broker_publish_latency_seconds")
	h.Observe(1536) // bucket 1
	h.Observe(time.Hour)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE broker_published_total counter\n",
		"broker_published_total 42\n",
		"# TYPE netoverlay_peer_queue_bytes gauge\n",
		`netoverlay_peer_queue_bytes{peer="2"} 128` + "\n",
		`netoverlay_peer_queue_bytes{peer="3"} 256` + "\n",
		"# TYPE broker_publish_latency_seconds histogram\n",
		`broker_publish_latency_seconds_bucket{le="+Inf"} 2` + "\n",
		"broker_publish_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family even with two labeled gauges.
	if n := strings.Count(out, "# TYPE netoverlay_peer_queue_bytes"); n != 1 {
		t.Errorf("family TYPE line appears %d times", n)
	}
	// Cumulative le buckets: bucket 1 upper bound 2048ns = 2.048e-06s holds 1.
	if !strings.Contains(out, `le="2.048e-06"} 1`) {
		t.Errorf("cumulative bucket line missing in:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Gauge("a").Set(-1)
	r.Histogram("c").Observe(time.Millisecond)
	var b strings.Builder
	if err := WriteJSON(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "{") || !strings.HasSuffix(out, "}\n") {
		t.Errorf("not a JSON object: %q", out)
	}
	// Sorted keys: a before b before c.
	if !(strings.Index(out, `"a"`) < strings.Index(out, `"b"`) &&
		strings.Index(out, `"b"`) < strings.Index(out, `"c"`)) {
		t.Errorf("keys not sorted in %q", out)
	}
	for _, want := range []string{`"a": -1`, `"b": 1`, `"count": 1`, `"p99_ns"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %q in %q", want, out)
		}
	}
}

func TestEndpointServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("up").Inc()
	ring := NewTraceRing(8)
	ring.Record(TraceRecord{TraceID: 9, Node: "b1", Hops: 1, LatencyNanos: 500})

	ln, err := Endpoint{Registry: r, Ring: ring}.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "up 1") {
		t.Errorf("/metrics missing counter: %q", out)
	}
	if out := get("/vars"); !strings.Contains(out, `"up": 1`) {
		t.Errorf("/vars missing counter: %q", out)
	}
	if out := get("/traces"); !strings.Contains(out, `"trace_id": 9`) || !strings.Contains(out, `"node": "b1"`) {
		t.Errorf("/traces missing record: %q", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("pprof cmdline empty")
	}

	// The registry-only helper serves an empty trace list.
	ln2, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	resp, err := http.Get("http://" + ln2.Addr().String() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.TrimSpace(string(body)); got != "[\n]" {
		t.Errorf("empty /traces = %q", got)
	}
}
