package event

import (
	"testing"

	"noncanon/internal/value"
)

func TestNewAndSet(t *testing.T) {
	e := New().Set("price", 12).Set("sym", "ACME").Set("hot", true).Set("ratio", 1.5)
	if e.Len() != 4 {
		t.Fatalf("Len = %d, want 4", e.Len())
	}
	if v, ok := e.Get("price"); !ok || v.Int() != 12 {
		t.Errorf("price = %v,%v", v, ok)
	}
	if v, ok := e.Get("sym"); !ok || v.Str() != "ACME" {
		t.Errorf("sym = %v,%v", v, ok)
	}
	if !e.Has("hot") || e.Has("missing") {
		t.Error("Has misreports")
	}
}

func TestZeroEventSet(t *testing.T) {
	var e Event
	e = e.Set("a", 1)
	if !e.Has("a") {
		t.Error("Set on zero Event must initialise the map")
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d, want 1", e.Len())
	}
}

func TestSetDropsUnsupported(t *testing.T) {
	e := New().Set("bad", struct{}{})
	if e.Has("bad") {
		t.Error("unsupported types must be dropped")
	}
}

func TestFromMap(t *testing.T) {
	e := FromMap(map[string]any{"a": 1, "b": "x", "c": struct{}{}})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (unsupported dropped)", e.Len())
	}
	if v, _ := e.Get("a"); v.Kind() != value.Int {
		t.Error("a should be int")
	}
}

func TestAttrsSorted(t *testing.T) {
	e := New().Set("z", 1).Set("a", 2).Set("m", 3)
	got := e.Attrs()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("Attrs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Attrs = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	e := New().Set("a", 1).Set("b", 2).Set("c", 3)
	count := 0
	e.Range(func(string, value.Value) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("Range visited %d attrs after early stop, want 1", count)
	}
}

func TestCloneIndependence(t *testing.T) {
	e := New().Set("a", 1)
	c := e.Clone()
	c = c.Set("a", 2).Set("b", 3)
	if v, _ := e.Get("a"); v.Int() != 1 {
		t.Error("mutating clone leaked into original")
	}
	if e.Has("b") {
		t.Error("clone Set leaked new key into original")
	}
}

func TestEqual(t *testing.T) {
	a := New().Set("x", 1).Set("y", "s")
	b := New().Set("y", "s").Set("x", 1)
	if !a.Equal(b) {
		t.Error("order-independent equality failed")
	}
	c := New().Set("x", 1)
	if a.Equal(c) {
		t.Error("different lengths must be unequal")
	}
	d := New().Set("x", 2).Set("y", "s")
	if a.Equal(d) {
		t.Error("different values must be unequal")
	}
	e := New().Set("x", 1).Set("z", "s")
	if a.Equal(e) {
		t.Error("different keys must be unequal")
	}
	// Int/float numeric equality carries through.
	f := New().Set("x", 1.0).Set("y", "s")
	if !a.Equal(f) {
		t.Error("1 and 1.0 should be equal attribute values")
	}
}

func TestString(t *testing.T) {
	e := New().Set("b", 2).Set("a", "x")
	if got, want := e.String(), `{a="x", b=2}`; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestMemBytes(t *testing.T) {
	small := New().Set("a", 1)
	big := New().Set("a", 1).Set("b", "something-long-here")
	if small.MemBytes() <= 0 || big.MemBytes() <= small.MemBytes() {
		t.Errorf("MemBytes: small=%d big=%d", small.MemBytes(), big.MemBytes())
	}
}
