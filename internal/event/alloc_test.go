//go:build !race

package event

import "testing"

// The zero event is the common carrier for control frames and probes; it
// must cost nothing. Pinned here so the flat representation can't regress
// back to eager map allocation.
func TestZeroEventAllocBudget(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		e := New()
		if e.Len() != 0 {
			t.Fatal("zero event not empty")
		}
		if _, ok := e.Get("missing"); ok {
			t.Fatal("zero event has attributes")
		}
	})
	if allocs != 0 {
		t.Fatalf("zero event costs %.1f allocs/op, budget is 0", allocs)
	}
}

// Lookups on a populated event must not allocate either: Get is a binary
// search and GetSym a linear scan, both over the event's own storage.
func TestLookupAllocBudget(t *testing.T) {
	e := New().Set("sym", "ACME").Set("price", 42).Set("size", 7)
	sym := e.All()[2].Sym // "sym" sorts last
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := e.Get("price"); !ok {
			t.Fatal("price missing")
		}
		if _, ok := e.GetSym(sym, "sym"); !ok {
			t.Fatal("sym missing")
		}
		if e.Has("missing") {
			t.Fatal("phantom attribute")
		}
	})
	if allocs != 0 {
		t.Fatalf("lookups cost %.1f allocs/op, budget is 0", allocs)
	}
}

// Retain on an owned event is a free no-op — the broker calls it on every
// publish, so this is a hot-path budget, not a nicety.
func TestRetainOwnedAllocBudget(t *testing.T) {
	e := New().Set("sym", "ACME").Set("price", 42)
	allocs := testing.AllocsPerRun(100, func() {
		e = e.Retain()
	})
	if allocs != 0 {
		t.Fatalf("Retain on owned event costs %.1f allocs/op, budget is 0", allocs)
	}
}
