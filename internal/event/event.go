// Package event defines the event (notification message) model: a set of
// named, typed attributes published into the system and matched against
// subscriptions.
package event

import (
	"fmt"
	"sort"
	"strings"

	"noncanon/internal/value"
)

// Event is an immutable-by-convention collection of attribute→value pairs.
// Construct with New and the fluent Set calls, or FromMap. Matching never
// mutates an event, and events handed to subscribers must not be modified.
type Event struct {
	attrs map[string]value.Value
}

// New returns an empty event.
func New() Event {
	return Event{attrs: make(map[string]value.Value, 8)}
}

// FromMap builds an event from native Go values. Unsupported value types are
// dropped (they would never match any predicate anyway).
func FromMap(m map[string]any) Event {
	e := Event{attrs: make(map[string]value.Value, len(m))}
	for k, v := range m {
		if val := value.Of(v); val.IsValid() {
			e.attrs[k] = val
		}
	}
	return e
}

// Set assigns an attribute and returns the event for chaining. A nil-map
// (zero) event is upgraded to an initialised one so that
// `var e event.Event; e = e.Set(...)` works.
func (e Event) Set(attr string, v any) Event {
	if e.attrs == nil {
		e.attrs = make(map[string]value.Value, 8)
	}
	if val := value.Of(v); val.IsValid() {
		e.attrs[attr] = val
	}
	return e
}

// Get returns the value of an attribute; the second result reports presence.
func (e Event) Get(attr string) (value.Value, bool) {
	v, ok := e.attrs[attr]
	return v, ok
}

// Has reports whether the attribute is present.
func (e Event) Has(attr string) bool {
	_, ok := e.attrs[attr]
	return ok
}

// Len returns the number of attributes.
func (e Event) Len() int { return len(e.attrs) }

// Attrs returns the attribute names in sorted order. The slice is freshly
// allocated; callers may keep it.
func (e Event) Attrs() []string {
	names := make([]string, 0, len(e.attrs))
	for k := range e.attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Range calls fn for every attribute until fn returns false. Iteration order
// is unspecified.
func (e Event) Range(fn func(attr string, v value.Value) bool) {
	for k, v := range e.attrs {
		if !fn(k, v) {
			return
		}
	}
}

// Clone returns a deep copy. Events cross goroutine and broker boundaries,
// so the broker clones at trust boundaries per the
// copy-slices-and-maps-at-boundaries rule.
func (e Event) Clone() Event {
	c := Event{attrs: make(map[string]value.Value, len(e.attrs))}
	for k, v := range e.attrs {
		c.attrs[k] = v
	}
	return c
}

// Equal reports attribute-wise equality of two events.
func (e Event) Equal(o Event) bool {
	if len(e.attrs) != len(o.attrs) {
		return false
	}
	for k, v := range e.attrs {
		w, ok := o.attrs[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// String renders the event as {attr=value, ...} with sorted attributes.
func (e Event) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range e.Attrs() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, e.attrs[k])
	}
	b.WriteByte('}')
	return b.String()
}

// MemBytes estimates resident bytes of the event for the memory model.
func (e Event) MemBytes() int {
	const mapOverheadPerEntry = 48
	n := 0
	for k, v := range e.attrs {
		n += mapOverheadPerEntry + len(k) + v.MemBytes()
	}
	return n
}
