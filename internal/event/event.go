// Package event defines the event (notification message) model: a set of
// named, typed attributes published into the system and matched against
// subscriptions.
//
// Representation: an event is an immutable, name-sorted flat slice of
// attributes whose names carry their interned symbol (internal/intern), so
// the matching spine compares 32-bit symbols instead of hashing strings
// and iterates a contiguous array instead of walking map buckets. The
// zero Event is empty and allocates nothing.
//
// Ownership: events built locally (New/Set/FromMap/FromAttrs) own their
// strings. The wire decoder's aliasing mode builds *borrowed* events whose
// string bytes reference the frame buffer they were decoded from; anything
// that outlives the frame — subscriber delivery, durable references —
// must call Retain first, which coalesces the volatile strings into one
// owned allocation and is a no-op on events that already own their data.
package event

import (
	"fmt"
	"sort"
	"strings"

	"noncanon/internal/intern"
	"noncanon/internal/value"
)

// Attr is one attribute of an event. Sym is Name's interned symbol, or
// intern.None when the name was not in the table at construction time (the
// wire decoder never inserts); consumers must then fall back to comparing
// Name.
type Attr struct {
	Name string
	Sym  intern.Sym
	Val  value.Value
}

// Event is an immutable collection of attribute→value pairs, sorted by
// attribute name. Construct with New and the fluent Set calls, FromMap, or
// FromAttrs. Matching never mutates an event, and events handed to
// subscribers must not be modified.
type Event struct {
	attrs []Attr
	// borrowed marks events whose string bytes may alias a transient
	// buffer (zero-copy wire decode); Retain clears it by materialising
	// owned copies.
	borrowed bool
}

// New returns an empty event. It allocates nothing; storage appears on the
// first Set.
func New() Event { return Event{} }

// FromMap builds an event from native Go values. Unsupported value types
// are dropped (they would never match any predicate anyway).
func FromMap(m map[string]any) Event {
	attrs := make([]Attr, 0, len(m))
	for k, v := range m {
		if val := value.Of(v); val.IsValid() {
			attrs = append(attrs, Attr{Name: k, Sym: intern.Of(k), Val: val})
		}
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	return Event{attrs: attrs}
}

// FromAttrs builds an event taking ownership of attrs: the caller must not
// use the slice afterwards. Attributes with invalid values are dropped;
// out-of-order or duplicate names are normalised in place (for duplicates
// the last occurrence wins, matching repeated Set). Already-sorted input —
// the wire decoder's canonical case — is detected with one linear scan and
// causes no extra work. Sym fields are taken as given; intern.None is
// legal and means "compare by name".
func FromAttrs(attrs []Attr) Event {
	return Event{attrs: normalize(attrs)}
}

// FromBorrowedAttrs is FromAttrs for attribute strings that alias a
// transient buffer (the zero-copy wire decode path). The resulting event
// must be Retained before it outlives the buffer.
func FromBorrowedAttrs(attrs []Attr) Event {
	return Event{attrs: normalize(attrs), borrowed: true}
}

func normalize(attrs []Attr) []Attr {
	w := 0
	sorted := true
	for i := range attrs {
		if !attrs[i].Val.IsValid() {
			continue
		}
		if w > 0 && attrs[w-1].Name >= attrs[i].Name {
			sorted = false
		}
		attrs[w] = attrs[i]
		w++
	}
	attrs = attrs[:w]
	if sorted {
		return attrs
	}
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	w = 0
	for i := 0; i < len(attrs); {
		j := i
		for j+1 < len(attrs) && attrs[j+1].Name == attrs[i].Name {
			j++
		}
		attrs[w] = attrs[j] // last occurrence wins, like repeated Set
		w++
		i = j + 1
	}
	return attrs[:w]
}

// search returns the index of name in the sorted attrs, or its insertion
// point, with a presence flag.
func (e Event) search(name string) (int, bool) {
	lo, hi := 0, len(e.attrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.attrs[mid].Name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(e.attrs) && e.attrs[lo].Name == name
}

// Set assigns an attribute and returns the new event for chaining. Events
// are values: Set copies, so earlier copies never observe the change.
// Unsupported value types are dropped. Set interns the attribute name —
// it is the local-construction path; wire decode goes through FromAttrs.
func (e Event) Set(attr string, v any) Event {
	val := value.Of(v)
	if !val.IsValid() {
		return e
	}
	e = e.Retain() // owned strings before the copy can outlive a frame
	sym := intern.Of(attr)
	i, found := e.search(attr)
	if found {
		attrs := make([]Attr, len(e.attrs))
		copy(attrs, e.attrs)
		attrs[i].Sym = sym
		attrs[i].Val = val
		return Event{attrs: attrs}
	}
	attrs := make([]Attr, len(e.attrs)+1)
	copy(attrs, e.attrs[:i])
	attrs[i] = Attr{Name: attr, Sym: sym, Val: val}
	copy(attrs[i+1:], e.attrs[i:])
	return Event{attrs: attrs}
}

// Get returns the value of an attribute; the second result reports
// presence. Lookup is a binary search over the sorted attributes.
func (e Event) Get(attr string) (value.Value, bool) {
	if i, ok := e.search(attr); ok {
		return e.attrs[i].Val, true
	}
	return value.Value{}, false
}

// GetSym looks an attribute up by its interned symbol, with name fallback
// for attributes that carry no symbol (decoded before the name was ever
// interned, or built by hand). This is the predicate-evaluation path: for
// the typical small event a linear scan of 32-bit compares beats hashing.
func (e Event) GetSym(sym intern.Sym, name string) (value.Value, bool) {
	if sym == intern.None {
		return e.Get(name)
	}
	for i := range e.attrs {
		a := &e.attrs[i]
		if a.Sym == sym {
			return a.Val, true
		}
		if a.Sym == intern.None && a.Name == name {
			return a.Val, true
		}
	}
	return value.Value{}, false
}

// Has reports whether the attribute is present.
func (e Event) Has(attr string) bool {
	_, ok := e.search(attr)
	return ok
}

// Len returns the number of attributes.
func (e Event) Len() int { return len(e.attrs) }

// All returns the attributes in name-sorted order as a read-only view of
// the event's own storage: callers must not modify it. This is the hot
// iteration path (phase-one index dispatch).
func (e Event) All() []Attr { return e.attrs }

// Attrs returns the attribute names in sorted order. The slice is freshly
// allocated; callers may keep it.
func (e Event) Attrs() []string {
	names := make([]string, len(e.attrs))
	for i := range e.attrs {
		names[i] = e.attrs[i].Name
	}
	return names
}

// Range calls fn for every attribute until fn returns false, in sorted
// name order.
func (e Event) Range(fn func(attr string, v value.Value) bool) {
	for i := range e.attrs {
		if !fn(e.attrs[i].Name, e.attrs[i].Val) {
			return
		}
	}
}

// Borrowed reports whether the event's strings may still alias a decode
// buffer (no Retain yet). Owned events — everything not produced by the
// aliasing wire decode — report false.
func (e Event) Borrowed() bool { return e.borrowed }

// Retain returns an event guaranteed to own all its storage. For owned
// events it is a free no-op. For borrowed events it coalesces every
// volatile string — names without a symbol and string values — into one
// owned allocation and rewrites the attributes in place, so every copy of
// this event sharing the slice is repaired together; the caller must
// Retain before sharing an event across goroutines. This is the
// copy-on-keep contract of the zero-copy wire path: whoever lets an event
// outlive its frame buffer calls Retain first.
func (e Event) Retain() Event {
	if !e.borrowed {
		return e
	}
	total := 0
	for i := range e.attrs {
		a := &e.attrs[i]
		if a.Sym == intern.None {
			total += len(a.Name)
		}
		if a.Val.Kind() == value.String {
			total += len(a.Val.Str())
		}
	}
	if total > 0 {
		var b strings.Builder
		b.Grow(total)
		for i := range e.attrs {
			a := &e.attrs[i]
			if a.Sym == intern.None {
				b.WriteString(a.Name)
			}
			if a.Val.Kind() == value.String {
				b.WriteString(a.Val.Str())
			}
		}
		s := b.String()
		off := 0
		for i := range e.attrs {
			a := &e.attrs[i]
			if a.Sym == intern.None {
				a.Name = s[off : off+len(a.Name)]
				off += len(a.Name)
			}
			if a.Val.Kind() == value.String {
				l := len(a.Val.Str())
				a.Val = value.OfString(s[off : off+l])
				off += l
			}
		}
	}
	return Event{attrs: e.attrs}
}

// Clone returns a deep, owned copy. Events cross goroutine and broker
// boundaries, so the broker clones at trust boundaries per the
// copy-slices-and-maps-at-boundaries rule.
func (e Event) Clone() Event {
	if len(e.attrs) == 0 {
		return Event{}
	}
	attrs := make([]Attr, len(e.attrs))
	copy(attrs, e.attrs)
	c := Event{attrs: attrs, borrowed: e.borrowed}
	return c.Retain()
}

// Equal reports attribute-wise equality of two events. Names compare by
// symbol when both sides carry one.
func (e Event) Equal(o Event) bool {
	if len(e.attrs) != len(o.attrs) {
		return false
	}
	for i := range e.attrs {
		a, b := &e.attrs[i], &o.attrs[i]
		if a.Sym != intern.None && b.Sym != intern.None {
			if a.Sym != b.Sym {
				return false
			}
		} else if a.Name != b.Name {
			return false
		}
		if !a.Val.Equal(b.Val) {
			return false
		}
	}
	return true
}

// String renders the event as {attr=value, ...} with sorted attributes.
func (e Event) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range e.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", e.attrs[i].Name, e.attrs[i].Val)
	}
	b.WriteByte('}')
	return b.String()
}

// MemBytes estimates resident bytes of the event for the memory model.
func (e Event) MemBytes() int {
	// string header + symbol + padding; the flat layout replaces the old
	// per-entry map bucket overhead.
	const attrOverhead = 24
	n := 0
	for i := range e.attrs {
		n += attrOverhead + len(e.attrs[i].Name) + e.attrs[i].Val.MemBytes()
	}
	return n
}
