package event

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"noncanon/internal/intern"
	"noncanon/internal/value"
)

// mapOracle is the old map-backed event semantics, kept as an executable
// specification: repeated Set overwrites, invalid values are dropped,
// iteration is name-sorted.
type mapOracle map[string]value.Value

func (m mapOracle) set(attr string, v any) {
	if val := value.Of(v); val.IsValid() {
		m[attr] = val
	}
}

func (m mapOracle) sortedNames() []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// adversarialValues are the boundary payloads every representation change
// must survive: NaN, infinities, and the float/int equality cliff at 2^53.
var adversarialValues = []any{
	math.NaN(), math.Inf(1), math.Inf(-1),
	float64(1 << 53), float64(1<<53) + 2, -float64(1 << 53),
	int64(1 << 53), int64(1<<53) + 1, int64(-1 << 53),
	math.Copysign(0, -1), float64(0), int64(0),
	int64(math.MaxInt64), int64(math.MinInt64),
	"", "x", "\x00", "üben", true, false,
}

func randomPayload(rng *rand.Rand) any {
	return adversarialValues[rng.Intn(len(adversarialValues))]
}

// TestDifferentialMapOracle drives random Set sequences (with duplicate
// attribute names and adversarial numerics) through the flat event and the
// map oracle in lockstep and demands identical observable behavior.
func TestDifferentialMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	attrNames := []string{"a", "b", "price", "sym", "zz", "μ", ""}
	for trial := 0; trial < 500; trial++ {
		e := New()
		oracle := mapOracle{}
		for step := 0; step < rng.Intn(12); step++ {
			attr := attrNames[rng.Intn(len(attrNames))]
			v := randomPayload(rng)
			e = e.Set(attr, v)
			oracle.set(attr, v)
		}
		checkAgainstOracle(t, e, oracle)
		if t.Failed() {
			t.Fatalf("trial %d diverged", trial)
		}
	}
}

// TestDifferentialFromAttrs feeds FromAttrs unsorted, duplicated, and
// partially invalid attribute slices and checks it lands on the same event
// as replaying the slice through the oracle (last occurrence wins).
func TestDifferentialFromAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	attrNames := []string{"a", "b", "price", "sym"}
	for trial := 0; trial < 500; trial++ {
		var attrs []Attr
		oracle := mapOracle{}
		for step := 0; step < rng.Intn(10); step++ {
			attr := attrNames[rng.Intn(len(attrNames))]
			v := randomPayload(rng)
			val := value.Of(v)
			if rng.Intn(8) == 0 {
				val = value.Value{} // invalid: FromAttrs must drop it
			}
			if val.IsValid() {
				oracle.set(attr, v)
			}
			var sym intern.Sym
			if rng.Intn(2) == 0 {
				sym = intern.Of(attr)
			}
			attrs = append(attrs, Attr{Name: attr, Sym: sym, Val: val})
		}
		e := FromAttrs(attrs)
		checkAgainstOracle(t, e, oracle)
		if t.Failed() {
			t.Fatalf("trial %d diverged", trial)
		}
	}
}

func checkAgainstOracle(t *testing.T, e Event, oracle mapOracle) {
	t.Helper()
	if e.Len() != len(oracle) {
		t.Errorf("Len = %d, oracle has %d", e.Len(), len(oracle))
	}
	names := oracle.sortedNames()
	got := e.Attrs()
	if len(got) != len(names) {
		t.Errorf("Attrs = %v, want %v", got, names)
		return
	}
	for i, name := range names {
		if got[i] != name {
			t.Errorf("Attrs[%d] = %q, want %q", i, got[i], name)
		}
		v, ok := e.Get(name)
		if !ok {
			t.Errorf("Get(%q) missing", name)
			continue
		}
		want := oracle[name]
		// NaN != NaN under Equal? value.Equal treats NaN per its own
		// contract; compare by Key which is total.
		if v.Key() != want.Key() {
			t.Errorf("Get(%q) = %v, want %v", name, v, want)
		}
		if sym, lok := intern.Lookup(name); lok {
			sv, sok := e.GetSym(sym, name)
			if !sok || sv.Key() != want.Key() {
				t.Errorf("GetSym(%q) = %v,%v, want %v", name, sv, sok, want)
			}
		}
	}
	// Range order and content must mirror the sorted oracle.
	i := 0
	e.Range(func(attr string, v value.Value) bool {
		if i >= len(names) || attr != names[i] {
			t.Errorf("Range[%d] = %q, want %q", i, attr, names[i])
			return false
		}
		i++
		return true
	})
}

// TestGetSymLateIntern pins the Sym-0 fallback: an event built before a
// name is ever interned must still be found by a predicate that interned
// the name afterwards.
func TestGetSymLateIntern(t *testing.T) {
	name := fmt.Sprintf("late-interned-%d", rand.Int63())
	// Simulate wire decode of an unknown name: no symbol available.
	e := FromAttrs([]Attr{{Name: name, Sym: intern.None, Val: value.OfInt(7)}})
	// A subscription arrives and interns the name.
	sym := intern.Of(name)
	v, ok := e.GetSym(sym, name)
	if !ok || v.Int() != 7 {
		t.Fatalf("GetSym after late intern = %v,%v, want 7", v, ok)
	}
}
