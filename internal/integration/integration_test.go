// Package integration ties the layers together: parser → engines → broker →
// wire → TCP, and cross-checks the whole pipeline against reference
// semantics on randomised workloads.
package integration

import (
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/broker"
	"noncanon/internal/core"
	"noncanon/internal/counting"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/netbroker"
	"noncanon/internal/overlay"
	"noncanon/internal/predicate"
	"noncanon/internal/sublang"
	"noncanon/internal/workload"
)

// TestParseRegisterMatchAcrossEngines parses textual subscriptions, loads
// them into all three engines over a shared registry, and verifies full
// agreement with direct AST evaluation on a randomised event stream.
func TestParseRegisterMatchAcrossEngines(t *testing.T) {
	subTexts := []string{
		`(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)`,
		`sym = "ACME" and (price < 20 or price > 90)`,
		`a >= 3 and a <= 7`,
		`(b = 1 or b = 2) and (c = 3 or c = 4) and (d = 5 or d = 6)`,
		`exists e or a = 42`,
		`s prefix "AB" and s suffix "YZ"`,
	}
	reg := predicate.NewRegistry()
	idx := index.New()
	engines := []matcher.Matcher{
		core.New(reg, idx, core.Options{}),
		counting.New(reg, idx, counting.Options{Algorithm: counting.Classic}),
		counting.New(reg, idx, counting.Options{Algorithm: counting.Variant}),
	}
	type reg2 struct {
		expr boolexpr.Expr
		ids  []matcher.SubID
	}
	var regs []reg2
	for _, text := range subTexts {
		expr, err := sublang.Parse(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		r := reg2{expr: expr}
		for _, e := range engines {
			id, err := e.Subscribe(expr)
			if err != nil {
				t.Fatalf("%s on %q: %v", e.Name(), text, err)
			}
			r.ids = append(r.ids, id)
		}
		regs = append(regs, r)
	}

	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		ev := event.New()
		for _, attr := range []string{"a", "b", "c", "d"} {
			if rng.Intn(4) > 0 {
				ev = ev.Set(attr, rng.Intn(50))
			}
		}
		if rng.Intn(2) == 0 {
			ev = ev.Set("sym", []string{"ACME", "X"}[rng.Intn(2)]).Set("price", rng.Intn(100))
		}
		if rng.Intn(3) == 0 {
			ev = ev.Set("e", 1)
		}
		if rng.Intn(3) == 0 {
			ev = ev.Set("s", []string{"ABCYZ", "ABX", "QYZ"}[rng.Intn(3)])
		}
		for ei, e := range engines {
			got := map[matcher.SubID]bool{}
			for _, id := range e.Match(ev) {
				got[id] = true
			}
			for ri, r := range regs {
				want := r.expr.Eval(ev)
				if got[r.ids[ei]] != want {
					t.Fatalf("engine %s sub %d (%s) on %s: got %v want %v",
						e.Name(), ri, r.expr, ev, got[r.ids[ei]], want)
				}
			}
		}
	}
}

// TestWorkloadFullPipelineAgreement runs the Table 1 workload through the
// full two-phase Match of both engines using generated events.
func TestWorkloadFullPipelineAgreement(t *testing.T) {
	params := workload.Params{NumSubscriptions: 300, PredsPerSub: 8, Seed: 5}
	reg := predicate.NewRegistry()
	idx := index.New()
	nc := core.New(reg, idx, core.Options{})
	cl := counting.New(reg, idx, counting.Options{})
	ncIDs := make(map[matcher.SubID]int)
	clIDs := make(map[matcher.SubID]int)
	for i := 0; i < params.NumSubscriptions; i++ {
		expr := params.Sub(i)
		a, err := nc.Subscribe(expr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cl.Subscribe(expr)
		if err != nil {
			t.Fatal(err)
		}
		ncIDs[a] = i
		clIDs[b] = i
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		ev := params.Event(rng)
		got1 := map[int]bool{}
		for _, id := range nc.Match(ev) {
			got1[ncIDs[id]] = true
		}
		got2 := map[int]bool{}
		for _, id := range cl.Match(ev) {
			got2[clIDs[id]] = true
		}
		if len(got1) != len(got2) {
			t.Fatalf("trial %d: nc=%d cl=%d matches", trial, len(got1), len(got2))
		}
		for i := range got1 {
			if !got2[i] {
				t.Fatalf("trial %d: sub %d matched only by non-canonical", trial, i)
			}
		}
		// Spot-check against direct evaluation.
		for i := 0; i < 20; i++ {
			j := rng.Intn(params.NumSubscriptions)
			if params.Sub(j).Eval(ev) != got1[j] {
				t.Fatalf("trial %d: sub %d direct eval disagrees", trial, j)
			}
		}
	}
}

// TestBrokerOverTCPEndToEnd drives the full network stack: TCP server with
// embedded broker, two clients, subscription text over the wire, event
// push back.
func TestBrokerOverTCPEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := netbroker.NewServer(netbroker.ServerOptions{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	defer func() {
		srv.Close()
		<-done
	}()

	subscriber, err := netbroker.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer subscriber.Close()
	publisher, err := netbroker.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer publisher.Close()

	sub, err := subscriber.Subscribe(`(a > 10 or a <= 5 or b = 1) and (c <= 20 or c = 30 or d = 5)`)
	if err != nil {
		t.Fatal(err)
	}
	matching := event.New().Set("a", 3).Set("c", 30)
	if n, err := publisher.Publish(matching); err != nil || n != 1 {
		t.Fatalf("Publish = %d, %v", n, err)
	}
	if n, err := publisher.Publish(event.New().Set("a", 7).Set("c", 30)); err != nil || n != 0 {
		t.Fatalf("non-matching Publish = %d, %v", n, err)
	}
	select {
	case got := <-sub.C():
		if !got.Equal(matching) {
			t.Errorf("received %s, want %s", got, matching)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event over TCP")
	}
}

// TestOverlayVsSingleBroker publishes the same workload into a 1-broker
// "network" and a 9-broker tree; delivered counts must be identical — the
// overlay only changes placement, never matching semantics.
func TestOverlayVsSingleBroker(t *testing.T) {
	build := func(nodes int) (*overlay.Network, *atomic.Int64) {
		var nw *overlay.Network
		var err error
		if nodes == 1 {
			nw, err = overlay.New(1, nil, overlay.Config{})
		} else {
			nw, err = overlay.NewTree(nodes, 2, overlay.Config{})
		}
		if err != nil {
			t.Fatal(err)
		}
		var delivered atomic.Int64
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 50; i++ {
			expr := boolexpr.NewAnd(
				boolexpr.Pred("cat", predicate.Eq, rng.Intn(5)),
				boolexpr.NewOr(
					boolexpr.Pred("v", predicate.Lt, rng.Intn(40)),
					boolexpr.Pred("v", predicate.Gt, 60+rng.Intn(40)),
				),
			)
			at := overlay.NodeID(i % nodes)
			if _, err := nw.Subscribe(at, expr, func(event.Event) { delivered.Add(1) }); err != nil {
				t.Fatal(err)
			}
		}
		nw.Flush()
		return nw, &delivered
	}
	single, singleCount := build(1)
	defer single.Close()
	tree, treeCount := build(9)
	defer tree.Close()

	rng := rand.New(rand.NewSource(88))
	for i := 0; i < 300; i++ {
		ev := event.New().Set("cat", rng.Intn(5)).Set("v", rng.Intn(100))
		if err := single.Publish(0, ev); err != nil {
			t.Fatal(err)
		}
		if err := tree.Publish(overlay.NodeID(i%9), ev); err != nil {
			t.Fatal(err)
		}
	}
	single.Flush()
	tree.Flush()
	if singleCount.Load() != treeCount.Load() {
		t.Errorf("deliveries differ: single=%d tree=%d", singleCount.Load(), treeCount.Load())
	}
}

// TestChurnStability hammers a broker with subscribe/publish/unsubscribe
// churn and verifies the engine ends empty and consistent.
func TestChurnStability(t *testing.T) {
	br := broker.New(broker.Options{QueueSize: 64})
	defer br.Close()
	rng := rand.New(rand.NewSource(123))
	var live []*broker.Subscription
	var delivered atomic.Int64
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0:
			expr, err := sublang.Parse(fmt.Sprintf("x > %d and x < %d", rng.Intn(100), 100+rng.Intn(100)))
			if err != nil {
				t.Fatal(err)
			}
			s, err := br.Subscribe(expr, func(event.Event) { delivered.Add(1) })
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, s)
		case 1:
			if len(live) > 0 {
				i := rng.Intn(len(live))
				if err := live[i].Unsubscribe(); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			}
		default:
			if _, err := br.Publish(event.New().Set("x", rng.Intn(200))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range live {
		if err := s.Unsubscribe(); err != nil {
			t.Fatal(err)
		}
	}
	if br.NumSubscriptions() != 0 {
		t.Errorf("NumSubscriptions = %d after full churn", br.NumSubscriptions())
	}
}
