package overlay

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// band returns a filter matching cat = c ∧ price < hi. For a fixed c a
// larger hi covers a smaller one, giving the nested filters covering
// forwarding prunes.
func band(c, hi int) boolexpr.Expr {
	return boolexpr.NewAnd(
		boolexpr.Pred("cat", predicate.Eq, int64(c)),
		boolexpr.Pred("price", predicate.Lt, int64(hi)),
	)
}

func bandEvent(c, price int) event.Event {
	return event.New().Set("cat", int64(c)).Set("price", int64(price))
}

func TestCoverSuppressesFlood(t *testing.T) {
	nw, err := NewLine(5, Config{Cover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var wideN, narrowN int
	var mu sync.Mutex
	if _, err := nw.Subscribe(0, band(1, 100), func(event.Event) {
		mu.Lock()
		wideN++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	afterWide := nw.Stats()
	if afterWide.SubscriptionMsgs != 4 {
		t.Fatalf("wide flood crossed %d links, want 4", afterWide.SubscriptionMsgs)
	}

	// The narrower subscription must not be flooded at all: node 0's only
	// link already carries a coverer.
	if _, err := nw.Subscribe(0, band(1, 10), func(event.Event) {
		mu.Lock()
		narrowN++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	st := nw.Stats()
	if st.SubscriptionMsgs != afterWide.SubscriptionMsgs {
		t.Errorf("narrow subscription was flooded: %d -> %d link messages",
			afterWide.SubscriptionMsgs, st.SubscriptionMsgs)
	}
	if st.CoverSuppressed != 1 {
		t.Errorf("CoverSuppressed = %d, want 1", st.CoverSuppressed)
	}

	// Events published at the far end still reach the suppressed
	// subscriber: the wide filter attracts them across the tree.
	if err := nw.Publish(4, bandEvent(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := nw.Publish(4, bandEvent(1, 50)); err != nil { // wide only
		t.Fatal(err)
	}
	nw.Flush()
	mu.Lock()
	defer mu.Unlock()
	if wideN != 2 {
		t.Errorf("wide deliveries = %d, want 2", wideN)
	}
	if narrowN != 1 {
		t.Errorf("narrow deliveries = %d, want 1", narrowN)
	}
}

func TestCoverUnsubscribeRefloods(t *testing.T) {
	nw, err := NewLine(4, Config{Cover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var narrowN int
	var mu sync.Mutex
	wide, err := nw.Subscribe(0, band(1, 100), func(event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	if _, err := nw.Subscribe(0, band(1, 10), func(event.Event) {
		mu.Lock()
		narrowN++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	preUnsub := nw.Stats()
	if preUnsub.CoverSuppressed != 1 {
		t.Fatalf("setup: CoverSuppressed = %d, want 1", preUnsub.CoverSuppressed)
	}

	// Unsubscribing the coverer must re-flood the narrow filter so remote
	// events keep reaching it.
	if err := nw.Unsubscribe(wide); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	st := nw.Stats()
	// Per link: one re-flooded subscribe + one unsubscribe retraction,
	// across 3 links.
	if got := st.SubscriptionMsgs - preUnsub.SubscriptionMsgs; got != 6 {
		t.Errorf("re-flood link messages = %d, want 6", got)
	}
	if err := nw.Publish(3, bandEvent(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := nw.Publish(3, bandEvent(1, 50)); err != nil { // nobody left
		t.Fatal(err)
	}
	nw.Flush()
	mu.Lock()
	n := narrowN
	mu.Unlock()
	if n != 1 {
		t.Errorf("narrow deliveries after re-flood = %d, want 1", n)
	}
	// The wide-only event must no longer cross any link.
	st2 := nw.Stats()
	if got := st2.Forwarded - st.Forwarded; got != 3 {
		// Only the matching event travels the 3 links to node 0.
		t.Errorf("events crossed %d links, want 3", got)
	}
}

// TestCoverChainedRecovery pins the re-suppression path: with nested
// filters wide ⊇ mid ⊇ narrow all homed at node 0, unsubscribing wide must
// re-flood mid but re-suppress narrow under mid, not flood it.
func TestCoverChainedRecovery(t *testing.T) {
	nw, err := NewLine(3, Config{Cover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var midN, narrowN int
	var mu sync.Mutex
	wide, err := nw.Subscribe(0, band(1, 100), func(event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	if _, err := nw.Subscribe(0, band(1, 50), func(event.Event) {
		mu.Lock()
		midN++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Subscribe(0, band(1, 10), func(event.Event) {
		mu.Lock()
		narrowN++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	if st := nw.Stats(); st.CoverSuppressed != 2 {
		t.Fatalf("setup: CoverSuppressed = %d, want 2", st.CoverSuppressed)
	}

	if err := nw.Unsubscribe(wide); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	st := nw.Stats()
	// 2 initial suppressions + narrow re-suppressed under mid at node 0
	// + mid transiently re-suppressed at node 1, where the re-flood
	// overtakes wide's retraction (the ordering that keeps routing gapless).
	if st.CoverSuppressed != 4 {
		t.Errorf("CoverSuppressed = %d, want 4", st.CoverSuppressed)
	}
	if err := nw.Publish(2, bandEvent(1, 5)); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	mu.Lock()
	defer mu.Unlock()
	if midN != 1 || narrowN != 1 {
		t.Errorf("deliveries mid=%d narrow=%d, want 1/1", midN, narrowN)
	}
}

// coverRecorder accumulates (subscriber, event-seq) pairs.
type coverRecorder struct {
	mu   sync.Mutex
	seen map[string][]int64
}

func newCoverRecorder() *coverRecorder {
	return &coverRecorder{seen: map[string][]int64{}}
}

func (r *coverRecorder) handler(tag string) Handler {
	return func(ev event.Event) {
		v, _ := ev.Get("seq")
		r.mu.Lock()
		r.seen[tag] = append(r.seen[tag], v.Int())
		r.mu.Unlock()
	}
}

func (r *coverRecorder) snapshot() map[string][]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]int64, len(r.seen))
	for k, v := range r.seen {
		s := append([]int64(nil), v...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out[k] = s
	}
	return out
}

// TestCoverDifferential drives a covering and a plain overlay through the
// same interleaved subscribe/unsubscribe/publish script (quiescing between
// phases so both see identical routing states) and requires the exact
// same (subscriber, event) delivery multisets — while the covering network
// sends strictly fewer subscription link messages.
func TestCoverDifferential(t *testing.T) {
	const nodes = 13
	mk := func(cover bool) *Network {
		nw, err := NewTree(nodes, 2, Config{Cover: cover})
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	plain, covered := mk(false), mk(true)
	defer plain.Close()
	defer covered.Close()

	recPlain, recCover := newCoverRecorder(), newCoverRecorder()
	rng := rand.New(rand.NewSource(17))
	type pair struct{ p, c SubRef }
	live := map[string]pair{}
	var tags []string
	seq := int64(0)

	for round := 0; round < 30; round++ {
		// Churn phase: a burst of subscribes and unsubscribes.
		for i := 0; i < 12; i++ {
			if rng.Intn(3) < 2 || len(tags) == 0 {
				tag := fmt.Sprintf("r%dc%d", round, i)
				at := NodeID(rng.Intn(nodes))
				f := band(rng.Intn(3), 10*(1+rng.Intn(10)))
				rp, err := plain.Subscribe(at, f, recPlain.handler(tag))
				if err != nil {
					t.Fatal(err)
				}
				rc, err := covered.Subscribe(at, f, recCover.handler(tag))
				if err != nil {
					t.Fatal(err)
				}
				live[tag] = pair{p: rp, c: rc}
				tags = append(tags, tag)
			} else {
				i := rng.Intn(len(tags))
				tag := tags[i]
				tags[i] = tags[len(tags)-1]
				tags = tags[:len(tags)-1]
				pr := live[tag]
				delete(live, tag)
				if err := plain.Unsubscribe(pr.p); err != nil {
					t.Fatal(err)
				}
				if err := covered.Unsubscribe(pr.c); err != nil {
					t.Fatal(err)
				}
			}
		}
		plain.Flush()
		covered.Flush()

		// Publish phase against the quiesced routing state.
		for i := 0; i < 15; i++ {
			seq++
			ev := bandEvent(rng.Intn(3), rng.Intn(110)).Set("seq", seq)
			at := NodeID(rng.Intn(nodes))
			if err := plain.Publish(at, ev); err != nil {
				t.Fatal(err)
			}
			if err := covered.Publish(at, ev); err != nil {
				t.Fatal(err)
			}
		}
		plain.Flush()
		covered.Flush()
	}

	dp, dc := recPlain.snapshot(), recCover.snapshot()
	if len(dp) != len(dc) {
		t.Fatalf("subscriber sets differ: %d vs %d", len(dp), len(dc))
	}
	for tag, ps := range dp {
		cs := dc[tag]
		if len(ps) != len(cs) {
			t.Fatalf("subscriber %s: plain %d deliveries, covered %d", tag, len(ps), len(cs))
		}
		for i := range ps {
			if ps[i] != cs[i] {
				t.Fatalf("subscriber %s delivery %d: plain seq %d, covered seq %d", tag, i, ps[i], cs[i])
			}
		}
	}

	stPlain, stCover := plain.Stats(), covered.Stats()
	if stCover.CoverSuppressed == 0 {
		t.Error("covering never suppressed a flood; the script lost its teeth")
	}
	if stCover.SubscriptionMsgs >= stPlain.SubscriptionMsgs {
		t.Errorf("covering sent %d subscription messages, plain %d — no pruning",
			stCover.SubscriptionMsgs, stPlain.SubscriptionMsgs)
	}
	t.Logf("subscription link messages: plain %d, covered %d (suppressed %d)",
		stPlain.SubscriptionMsgs, stCover.SubscriptionMsgs, stCover.CoverSuppressed)
}
