package overlay

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"noncanon/internal/boolexpr"
	"noncanon/internal/event"
	"noncanon/internal/obs"
	"noncanon/internal/predicate"
)

func pred(attr string, op predicate.Op, v any) boolexpr.Expr {
	return boolexpr.Pred(attr, op, v)
}

func TestTopologyValidation(t *testing.T) {
	cfg := Config{}
	if _, err := New(0, nil, cfg); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(3, [][2]NodeID{{0, 1}}, cfg); !errors.Is(err, ErrNotATree) {
		t.Errorf("missing edge err = %v", err)
	}
	if _, err := New(3, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}}, cfg); !errors.Is(err, ErrNotATree) {
		t.Errorf("cycle err = %v", err)
	}
	if _, err := New(3, [][2]NodeID{{0, 1}, {0, 5}}, cfg); !errors.Is(err, ErrNotATree) {
		t.Errorf("out-of-range err = %v", err)
	}
	if _, err := NewTree(5, 0, cfg); err == nil {
		t.Error("fanout 0 accepted")
	}
	nw, err := New(1, nil, cfg)
	if err != nil {
		t.Fatalf("single node: %v", err)
	}
	nw.Close()
}

func TestLineEndToEndDelivery(t *testing.T) {
	nw, err := NewLine(5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var got atomic.Int64
	// Subscribe at one end, publish at the other.
	if _, err := nw.Subscribe(4, pred("price", predicate.Gt, 100), func(ev event.Event) {
		got.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	if err := nw.Publish(0, event.New().Set("price", 150)); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	if got.Load() != 1 {
		t.Fatalf("delivered = %d, want 1", got.Load())
	}
	st := nw.Stats()
	// The event crossed exactly 4 links.
	if st.Forwarded != 4 {
		t.Errorf("Forwarded = %d, want 4", st.Forwarded)
	}
	// Non-matching event is filtered at the publish broker: no forwards.
	if err := nw.Publish(0, event.New().Set("price", 50)); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	if st2 := nw.Stats(); st2.Forwarded != st.Forwarded {
		t.Errorf("non-matching event was forwarded: %d -> %d", st.Forwarded, st2.Forwarded)
	}
	if got.Load() != 1 {
		t.Errorf("delivered = %d after non-matching publish", got.Load())
	}
}

func TestLocalDeliveryNoForwarding(t *testing.T) {
	nw, err := NewStar(4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	var got atomic.Int64
	if _, err := nw.Subscribe(2, pred("a", predicate.Eq, 1), func(event.Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	// Publish at the subscriber's own broker.
	nw.Publish(2, event.New().Set("a", 1))
	nw.Flush()
	if got.Load() != 1 {
		t.Fatalf("delivered = %d", got.Load())
	}
	if st := nw.Stats(); st.Forwarded != 0 {
		t.Errorf("local publish forwarded %d copies", st.Forwarded)
	}
}

func TestStarFanoutToMultipleSubscribers(t *testing.T) {
	nw, err := NewStar(6, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var mu sync.Mutex
	gotBy := map[NodeID]int{}
	for _, at := range []NodeID{1, 2, 3} {
		at := at
		if _, err := nw.Subscribe(at, pred("topic", predicate.Eq, "x"), func(event.Event) {
			mu.Lock()
			gotBy[at]++
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Node 4 subscribes to something else.
	var other atomic.Int64
	if _, err := nw.Subscribe(4, pred("topic", predicate.Eq, "y"), func(event.Event) { other.Add(1) }); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	nw.Publish(5, event.New().Set("topic", "x"))
	nw.Flush()
	mu.Lock()
	defer mu.Unlock()
	for _, at := range []NodeID{1, 2, 3} {
		if gotBy[at] != 1 {
			t.Errorf("node %d delivered %d, want 1", at, gotBy[at])
		}
	}
	if other.Load() != 0 {
		t.Errorf("topic-y subscriber got %d events", other.Load())
	}
	// 5→hub, hub→{1,2,3}: 4 link crossings, not 5 (node 4 pruned).
	if st := nw.Stats(); st.Forwarded != 4 {
		t.Errorf("Forwarded = %d, want 4 (pruned fanout)", st.Forwarded)
	}
}

func TestUnsubscribeNetworkWide(t *testing.T) {
	nw, err := NewLine(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	var got atomic.Int64
	ref, err := nw.Subscribe(2, pred("a", predicate.Gt, 0), func(event.Event) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	nw.Publish(0, event.New().Set("a", 1))
	nw.Flush()
	if got.Load() != 1 {
		t.Fatalf("delivered = %d", got.Load())
	}
	if err := nw.Unsubscribe(ref); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	before := nw.Stats().Forwarded
	nw.Publish(0, event.New().Set("a", 1))
	nw.Flush()
	if got.Load() != 1 {
		t.Errorf("delivered after unsubscribe = %d", got.Load())
	}
	if after := nw.Stats().Forwarded; after != before {
		t.Errorf("event forwarded after unsubscribe: %d -> %d", before, after)
	}
	if err := nw.Unsubscribe(ref); !errors.Is(err, ErrUnknownSub) {
		t.Errorf("double unsubscribe err = %v", err)
	}
}

func TestComplexBooleanSubscriptionAcrossOverlay(t *testing.T) {
	nw, err := NewTree(7, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// The paper's Fig. 1 subscription registered at a leaf.
	expr := boolexpr.NewAnd(
		boolexpr.NewOr(pred("a", predicate.Gt, 10), pred("a", predicate.Le, 5), pred("b", predicate.Eq, 1)),
		boolexpr.NewOr(pred("c", predicate.Le, 20), pred("c", predicate.Eq, 30), pred("d", predicate.Eq, 5)),
	)
	var got atomic.Int64
	if _, err := nw.Subscribe(6, expr, func(event.Event) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	nw.Publish(3, event.New().Set("a", 3).Set("c", 30)) // matches
	nw.Publish(3, event.New().Set("a", 7).Set("c", 30)) // left OR fails
	nw.Publish(5, event.New().Set("b", 1).Set("d", 5))  // matches
	nw.Flush()
	if got.Load() != 2 {
		t.Errorf("delivered = %d, want 2", got.Load())
	}
}

func TestAPIValidation(t *testing.T) {
	nw, err := NewLine(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Subscribe(9, pred("a", predicate.Eq, 1), func(event.Event) {}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("bad node err = %v", err)
	}
	if _, err := nw.Subscribe(0, nil, func(event.Event) {}); err == nil {
		t.Error("nil expr accepted")
	}
	if _, err := nw.Subscribe(0, pred("a", predicate.Eq, 1), nil); err == nil {
		t.Error("nil handler accepted")
	}
	// Uncompilable subscription is rejected synchronously.
	xs := make([]boolexpr.Expr, 256)
	for i := range xs {
		xs[i] = pred("a", predicate.Eq, i)
	}
	if _, err := nw.Subscribe(0, boolexpr.And{Xs: xs}, func(event.Event) {}); err == nil {
		t.Error("uncompilable subscription accepted")
	}
	if err := nw.Publish(9, event.New()); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("bad publish node err = %v", err)
	}
	nw.Close()
	if _, err := nw.Subscribe(0, pred("a", predicate.Eq, 1), func(event.Event) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after close err = %v", err)
	}
	if err := nw.Publish(0, event.New()); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close err = %v", err)
	}
	if err := nw.Unsubscribe(SubRef{id: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Unsubscribe after close err = %v", err)
	}
	nw.Close() // idempotent
}

func TestManyEventsManySubscribersUnderRace(t *testing.T) {
	nw, err := NewTree(15, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	var delivered atomic.Int64
	for i := 0; i < 30; i++ {
		at := NodeID(i % 15)
		if _, err := nw.Subscribe(at, pred("v", predicate.Gt, i*10), func(event.Event) {
			delivered.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	nw.Flush()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := nw.Publish(NodeID((w*50+i)%15), event.New().Set("v", 145)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	nw.Flush()
	// v=145 matches thresholds 0..140 → subscriptions 0..14 → 15 matches
	// per event × 200 events.
	if got := delivered.Load(); got != 15*200 {
		t.Errorf("delivered = %d, want %d", got, 15*200)
	}
	if st := nw.Stats(); st.Published != 200 {
		t.Errorf("Published = %d", st.Published)
	}
}

// TestStatsCoherenceUnderChurn is the snapshot-coherence property: on a
// two-node line (one next-hop link per event, so every forward has a
// distinct publication behind it), concurrently sampled Stats must always
// reconcile — Forwarded ≤ Published and Delivered ≤ Published — because
// the whole snapshot comes from one registry read that reads effects
// before causes. Before the registry migration each field was an
// independently read atomic and a sampler could observe a forward whose
// publish it then missed. Run under -race in CI.
func TestStatsCoherenceUnderChurn(t *testing.T) {
	nw, err := NewLine(2, Config{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := nw.Subscribe(1, pred("k", predicate.Gt, int64(-1)), func(event.Event) {}); err != nil {
		t.Fatal(err)
	}
	nw.Flush()

	const publishers, perP = 4, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Uint64
	wg.Add(1)
	go func() { // sampler
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := nw.Stats()
			if st.Forwarded > st.Published {
				violations.Add(1)
				t.Errorf("incoherent snapshot: Forwarded %d > Published %d", st.Forwarded, st.Published)
				return
			}
			if st.Delivered > st.Published {
				violations.Add(1)
				t.Errorf("incoherent snapshot: Delivered %d > Published %d", st.Delivered, st.Published)
				return
			}
		}
	}()
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				ev := event.New().Set("k", int64(p*perP+i))
				if err := nw.Publish(0, ev); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	// Let the sampler see the whole storm, then stop it and wait for all
	// goroutines before checking totals at quiescence.
	nw.Flush()
	close(stop)
	wg.Wait()
	nw.Flush()
	st := nw.Stats()
	if st.Published != publishers*perP {
		t.Errorf("Published = %d, want %d", st.Published, publishers*perP)
	}
	if st.Forwarded != publishers*perP || st.Delivered != publishers*perP {
		t.Errorf("Forwarded/Delivered = %d/%d, want %d each", st.Forwarded, st.Delivered, publishers*perP)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d incoherent snapshots observed", violations.Load())
	}
}
