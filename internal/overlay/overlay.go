// Package overlay simulates a distributed broker network: one goroutine per
// broker, channel links, subscription flooding and reverse-path event
// routing — the peer-to-peer deployment the paper motivates ("in typical
// real world situations we will find peer-to-peer networks of less equipped
// machines, such as laptops and mobile devices to perform event filtering",
// §1). The routing state machine itself — next-hop tables, covering-pruned
// flooding, re-flood-before-retract ordering — lives in internal/router;
// this package supplies the in-process transport, internal/netoverlay the
// TCP one.
//
// Forwarding is deadlock-free by construction: a broker goroutine never
// blocks on a neighbour's inbox. Outbound messages go through a per-link
// flow-controlled spill queue drained by a writer goroutine, so the classic
// A↔B full-inbox cycle — each broker wedged mid-send into the other's full
// inbox, neither draining its own — cannot form, no matter how small
// Config.InboxSize is or how violent a registration storm gets. The queues
// are byte-bounded (Config.LinkHighWater): a link congested past its credit
// sheds event traffic (counted in Stats.Shed) rather than growing without
// limit, while subscription control traffic is never shed.
//
// Every broker runs the full non-canonical engine, so overlay scalability
// inherits the filtering scalability the paper argues for.
package overlay

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/obs"
	"noncanon/internal/predicate"
	"noncanon/internal/router"
	"noncanon/internal/subtree"
)

// NodeID identifies a broker in the overlay.
type NodeID int

// Handler consumes events delivered to a local subscriber. Handlers run on
// the owning broker's goroutine and must not block.
type Handler = router.Handler

// Errors returned by the network API.
var (
	ErrClosed      = errors.New("overlay: network closed")
	ErrUnknownNode = errors.New("overlay: unknown node")
	ErrUnknownSub  = errors.New("overlay: unknown subscription")
	ErrNotATree    = errors.New("overlay: topology must be a connected acyclic graph")
)

// DefaultInboxSize is the per-broker message queue capacity. Forwarding
// progress does not depend on it (see the package comment); it only bounds
// how far a broker's unprocessed backlog can grow before the spill queues
// feeding it absorb the rest.
const DefaultInboxSize = 1024

// DefaultLinkHighWater is the default per-link spill-queue congestion
// threshold in accounted bytes. The simulation default is generous — the
// point of the bound is surviving a pathological consumer, not throttling
// an in-process benchmark.
const DefaultLinkHighWater = 64 << 20

// MaxHops bounds event forwarding as a safety net; tree routing never
// reaches it. Events dropped here are counted in Stats.HopDropped.
const MaxHops = router.MaxHops

// Config tunes the simulation.
type Config struct {
	// InboxSize is the per-broker inbox capacity (default DefaultInboxSize).
	InboxSize int
	// Cover enables covering-based subscription forwarding: a subscription
	// is not flooded past a link that already carries a covering one, and
	// unsubscribing a coverer re-floods the filters it was shadowing.
	// Event routing is unaffected; delivery stays exactly-once.
	Cover bool
	// Engine configures each broker's matching engine.
	Engine core.Options
	// LinkHighWater is the per-link spill-queue congestion threshold in
	// accounted bytes (default DefaultLinkHighWater). A congested link
	// sheds event traffic, counted in Stats.Shed; subscription control
	// traffic is never shed.
	LinkHighWater int
	// LinkLowWater is the byte level a congested link must drain below to
	// regain credit (default LinkHighWater/2).
	LinkLowWater int
	// OnError, when non-nil, receives routing anomalies (a subscription a
	// broker failed to install, a duplicate flood suggesting a cycle) that
	// a federated deployment must observe rather than panic over. Called on
	// a broker goroutine; must not block. The anomalies are also counted in
	// Stats.InstallErrors.
	OnError func(at NodeID, err error)
	// Metrics, when set, is the obs registry the network's instruments live
	// in. Every node's router shares the registry (and therefore the
	// instruments), so network totals are one snapshot read; per-link
	// spill-queue gauges are registered too. Nil keeps a private registry —
	// Stats works either way. Give each Network its own registry: two
	// networks on one registry would merge their series.
	Metrics *obs.Registry
}

// SubRef names a subscription in the overlay.
type SubRef struct {
	id uint64
}

// Stats aggregates network activity.
type Stats struct {
	// Published counts Publish calls.
	Published uint64
	// Forwarded counts event copies sent over links.
	Forwarded uint64
	// Delivered counts local handler invocations.
	Delivered uint64
	// SubscriptionMsgs counts subscription-propagation link messages.
	SubscriptionMsgs uint64
	// CoverSuppressed counts subscription forwards pruned because the link
	// already carried a covering subscription (Config.Cover only).
	CoverSuppressed uint64
	// HopDropped counts events discarded at the MaxHops safety net; on a
	// tree topology it stays zero.
	HopDropped uint64
	// InstallErrors counts subscriptions a broker failed to install
	// mid-flood (see Config.OnError). Zero in correct deployments:
	// subscriptions are validated before flooding.
	InstallErrors uint64
	// Shed counts events dropped at congested spill queues
	// (Config.LinkHighWater); zero unless a link ran out of credit.
	Shed uint64
	// SpilledBytes is the cumulative accounted size of messages that went
	// through the spill queues.
	SpilledBytes uint64
}

// Network is a simulated broker overlay.
type Network struct {
	cfg   Config
	nodes []*node

	nextSub atomic.Uint64
	closed  atomic.Bool
	quit    chan struct{}
	wg      sync.WaitGroup

	// inflight counts messages queued anywhere in the network (inboxes and
	// spill queues). Flush waits on flushed until it reaches zero; Close
	// wakes waiters regardless.
	mu       sync.Mutex
	flushed  *sync.Cond
	inflight int64

	subOrigin sync.Map // sub id → NodeID, for Unsubscribe validation

	reg           *obs.Registry
	published     *obs.Counter
	installErrors *obs.Counter
}

type node struct {
	id    NodeID
	net   *Network
	inbox chan message
	eng   *core.Engine
	rt    *router.Router

	// neighbors[i] is a directly linked broker; revIdx[i] is this node's
	// position in that neighbor's neighbor list (so messages can tell the
	// receiver which of its links they arrived on).
	neighbors []*node
	revIdx    []int

	// out[i] is the spill queue toward neighbors[i], drained by one writer
	// goroutine per link. The broker goroutine only ever pushes here —
	// never into a neighbour's inbox — so it cannot be wedged by a
	// congested peer.
	out []*router.Queue[router.Msg]
}

// message is one inbox entry: a routing message plus the receiving link
// (-1 when injected through the API, which also carries the handler).
type message struct {
	m       router.Msg
	from    int
	handler Handler
}

// New builds a network of n brokers connected by the given undirected
// edges. The topology must be a connected tree (n-1 edges, no cycles).
func New(n int, edges [][2]NodeID, cfg Config) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("overlay: need at least one node, got %d", n)
	}
	if err := validateTree(n, edges); err != nil {
		return nil, err
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = DefaultInboxSize
	}
	if cfg.LinkHighWater <= 0 {
		cfg.LinkHighWater = DefaultLinkHighWater
	}
	nw := &Network{cfg: cfg, quit: make(chan struct{})}
	nw.reg = cfg.Metrics
	if nw.reg == nil {
		nw.reg = obs.NewRegistry()
	}
	// Published is the cause of everything the routers count; registering
	// it before any router exists means a registry snapshot (which reads
	// newest-registered first) reads every effect before it — the ordering
	// that keeps Published ≥ per-event forwards coherent mid-churn.
	nw.published = nw.reg.Counter("overlay_published_total")
	nw.installErrors = nw.reg.Counter("overlay_install_errors_total")
	nw.flushed = sync.NewCond(&nw.mu)
	nw.nodes = make([]*node, n)
	for i := range nw.nodes {
		reg := predicate.NewRegistry()
		idx := index.New()
		nw.nodes[i] = &node{
			id:    NodeID(i),
			net:   nw,
			inbox: make(chan message, cfg.InboxSize),
			eng:   core.New(reg, idx, cfg.Engine),
		}
	}
	for _, e := range edges {
		a, b := nw.nodes[e[0]], nw.nodes[e[1]]
		a.neighbors = append(a.neighbors, b)
		b.neighbors = append(b.neighbors, a)
		a.revIdx = append(a.revIdx, len(b.neighbors)-1)
		b.revIdx = append(b.revIdx, len(a.neighbors)-1)
	}
	for _, nd := range nw.nodes {
		nd.rt = router.New(router.Config{
			Links:     len(nd.neighbors),
			Cover:     cfg.Cover,
			Engine:    nd.eng,
			Transport: (*nodeTransport)(nd),
			Metrics:   nw.reg,
		})
		nd.out = make([]*router.Queue[router.Msg], len(nd.neighbors))
		for i := range nd.out {
			nd.out[i] = router.NewFlowQueue(router.EstimateMsgBytes, cfg.LinkHighWater, cfg.LinkLowWater)
		}
	}
	// Spill-queue aggregates and (for exported registries) per-link depth
	// gauges. Registered after the routers so a snapshot reads these
	// shed/spill effects before the published cause too.
	nw.reg.CounterFunc("overlay_shed_total", func() uint64 {
		var n uint64
		for _, nd := range nw.nodes {
			for _, q := range nd.out {
				n += q.Stats().Shed
			}
		}
		return n
	})
	nw.reg.CounterFunc("overlay_spilled_bytes_total", func() uint64 {
		var n uint64
		for _, nd := range nw.nodes {
			for _, q := range nd.out {
				n += q.Stats().SpilledBytes
			}
		}
		return n
	})
	if cfg.Metrics != nil {
		for _, nd := range nw.nodes {
			for i := range nd.out {
				q := nd.out[i]
				name := fmt.Sprintf("overlay_link_queue_bytes{node=%q,link=%q}",
					fmt.Sprint(int(nd.id)), fmt.Sprint(int(nd.neighbors[i].id)))
				nw.reg.GaugeFunc(name, func() int64 { return int64(q.Stats().Bytes) })
			}
		}
	}
	for _, nd := range nw.nodes {
		nw.wg.Add(1)
		go nd.run()
		for i := range nd.out {
			nw.wg.Add(1)
			go nd.drainLink(i)
		}
	}
	return nw, nil
}

// NewLine builds a chain 0-1-2-…-(n-1).
func NewLine(n int, cfg Config) (*Network, error) {
	edges := make([][2]NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]NodeID{NodeID(i - 1), NodeID(i)})
	}
	return New(n, edges, cfg)
}

// NewStar builds a hub-and-spoke topology with node 0 as the hub.
func NewStar(n int, cfg Config) (*Network, error) {
	edges := make([][2]NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]NodeID{0, NodeID(i)})
	}
	return New(n, edges, cfg)
}

// NewTree builds a complete k-ary tree with n nodes rooted at 0.
func NewTree(n, fanout int, cfg Config) (*Network, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("overlay: fanout must be >= 1, got %d", fanout)
	}
	edges := make([][2]NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]NodeID{NodeID((i - 1) / fanout), NodeID(i)})
	}
	return New(n, edges, cfg)
}

func validateTree(n int, edges [][2]NodeID) error {
	if len(edges) != n-1 {
		return fmt.Errorf("%w: %d nodes need %d edges, got %d", ErrNotATree, n, n-1, len(edges))
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := int(e[0]), int(e[1])
		if a < 0 || a >= n || b < 0 || b >= n {
			return fmt.Errorf("%w: edge %v out of range", ErrNotATree, e)
		}
		ra, rb := find(a), find(b)
		if ra == rb {
			return fmt.Errorf("%w: edge %v closes a cycle", ErrNotATree, e)
		}
		parent[ra] = rb
	}
	return nil
}

// NumNodes returns the broker count.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// Subscribe registers a subscription at broker `at`; the handler runs on
// that broker. The subscription is flooded through the overlay before
// Subscribe-concurrent publishes at distant brokers can see it; call Flush
// for a quiescent point.
func (nw *Network) Subscribe(at NodeID, expr boolexpr.Expr, h Handler) (SubRef, error) {
	if nw.closed.Load() {
		return SubRef{}, ErrClosed
	}
	if int(at) < 0 || int(at) >= len(nw.nodes) {
		return SubRef{}, fmt.Errorf("%w: %d", ErrUnknownNode, at)
	}
	if expr == nil {
		return SubRef{}, fmt.Errorf("overlay: nil subscription expression")
	}
	if h == nil {
		return SubRef{}, fmt.Errorf("overlay: nil handler")
	}
	// Validate compilability up front (with a throwaway interner) so that
	// installation cannot fail asynchronously mid-flood.
	var n predicate.ID
	if _, err := subtree.Compile(expr, func(predicate.P) predicate.ID { n++; return n }, subtree.Options{
		Encoding: nw.cfg.Engine.Encoding,
		Reorder:  nw.cfg.Engine.Reorder,
	}); err != nil {
		return SubRef{}, fmt.Errorf("overlay: invalid subscription: %w", err)
	}
	id := nw.nextSub.Add(1)
	nw.subOrigin.Store(id, at)
	nw.send(nw.nodes[at], message{m: router.Msg{Kind: router.Sub, SubID: id, Expr: expr}, from: -1, handler: h})
	return SubRef{id: id}, nil
}

// Unsubscribe removes a subscription network-wide.
func (nw *Network) Unsubscribe(ref SubRef) error {
	if nw.closed.Load() {
		return ErrClosed
	}
	origin, ok := nw.subOrigin.LoadAndDelete(ref.id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSub, ref.id)
	}
	nw.send(nw.nodes[origin.(NodeID)], message{m: router.Msg{Kind: router.Unsub, SubID: ref.id}, from: -1})
	return nil
}

// Publish injects an event at broker `at`.
func (nw *Network) Publish(at NodeID, ev event.Event) error {
	if nw.closed.Load() {
		return ErrClosed
	}
	if int(at) < 0 || int(at) >= len(nw.nodes) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, at)
	}
	nw.published.Inc()
	nw.send(nw.nodes[at], message{m: router.Msg{Kind: router.Event, Ev: ev}, from: -1})
	return nil
}

// send enqueues an API-injected message, tracking it for Flush quiescence.
// API callers may block on a full inbox; broker goroutines never call this
// (their sends go through spill queues), so the blocking cannot cycle.
func (nw *Network) send(to *node, m message) {
	nw.track(1)
	select {
	case to.inbox <- m:
	case <-nw.quit:
		nw.track(-1)
	}
}

// track adjusts the in-flight message count, waking Flush at zero.
func (nw *Network) track(delta int64) {
	nw.mu.Lock()
	nw.inflight += delta
	if nw.inflight == 0 {
		nw.flushed.Broadcast()
	}
	nw.mu.Unlock()
}

// Flush blocks until every in-flight message (including cascaded forwards)
// has been processed, or until the network is closed — messages still
// queued at Close are discarded, not processed, so waiting on them would
// spin forever.
func (nw *Network) Flush() {
	nw.mu.Lock()
	for nw.inflight != 0 && !nw.closed.Load() {
		nw.flushed.Wait()
	}
	nw.mu.Unlock()
}

// Stats returns an activity snapshot. Every node's router shares the
// network registry's instruments, so the totals come from ONE registry
// snapshot rather than a per-node sweep of independently read atomics —
// the snapshot's effect-before-cause read order is what lets counters
// reconcile (e.g. Published ≥ Forwarded on single-next-hop topologies)
// even while brokers are mid-storm.
func (nw *Network) Stats() Stats {
	var st Stats
	for _, s := range nw.reg.Snapshot() {
		switch s.Name {
		case "overlay_published_total":
			st.Published = s.Value
		case "overlay_install_errors_total":
			st.InstallErrors = s.Value
		case "overlay_shed_total":
			st.Shed = s.Value
		case "overlay_spilled_bytes_total":
			st.SpilledBytes = s.Value
		case "router_forwarded_total":
			st.Forwarded = s.Value
		case "router_delivered_total":
			st.Delivered = s.Value
		case "router_sub_msgs_total":
			st.SubscriptionMsgs = s.Value
		case "router_cover_suppressed_total":
			st.CoverSuppressed = s.Value
		case "router_hop_dropped_total":
			st.HopDropped = s.Value
		}
	}
	return st
}

// Close stops all brokers and waits for their goroutines. Queued messages
// are discarded; Flush calls in progress return.
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	close(nw.quit)
	for _, nd := range nw.nodes {
		for _, q := range nd.out {
			q.Close()
		}
	}
	nw.wg.Wait()
	nw.mu.Lock()
	nw.flushed.Broadcast()
	nw.mu.Unlock()
}

// nodeTransport adapts a node's spill queues to the router's non-blocking
// Transport: Send only ever pushes to a local flow-controlled queue.
// Control traffic (subscriptions, retractions) always enqueues so routing
// state stays consistent; events go through Offer and are shed-and-counted
// when the link is out of credit.
type nodeTransport node

func (t *nodeTransport) Send(link int, m router.Msg) {
	nd := (*node)(t)
	nd.net.track(1)
	if m.Kind == router.Event {
		if !nd.out[link].Offer(m) {
			nd.net.track(-1)
		}
		return
	}
	nd.out[link].Push(m)
}

// run is the broker goroutine: it drains the inbox through the router and
// never blocks on any other broker's state.
func (nd *node) run() {
	defer nd.net.wg.Done()
	for {
		select {
		case m := <-nd.inbox:
			nd.handle(m)
			nd.net.track(-1)
		case <-nd.net.quit:
			return
		}
	}
}

// drainLink is the writer goroutine for one link: it moves spill-queue
// messages into the neighbour's inbox. Blocking here is harmless — the
// queue behind it is unbounded and the broker goroutine stays free to keep
// draining its own inbox, which is what unblocks the neighbour in turn.
func (nd *node) drainLink(i int) {
	defer nd.net.wg.Done()
	nb := nd.neighbors[i]
	from := nd.revIdx[i]
	for {
		m, ok := nd.out[i].Pop()
		if !ok {
			return
		}
		select {
		case nb.inbox <- message{m: m, from: from}:
		case <-nd.net.quit:
			nd.net.track(-1)
			return
		}
	}
}

func (nd *node) handle(msg message) {
	switch msg.m.Kind {
	case router.Sub:
		installed, err := nd.rt.HandleSubscribe(msg.m.SubID, msg.m.Expr, msg.handler, msg.from)
		if err != nil {
			nd.anomaly(err)
			return
		}
		if !installed {
			// Duplicate flood: impossible on a tree, so it means the
			// topology has a cycle. Defensive rather than fatal.
			nd.anomaly(fmt.Errorf("overlay: node %d: duplicate subscription %d (cycle in topology?)", nd.id, msg.m.SubID))
		}
	case router.Unsub:
		nd.rt.HandleUnsubscribe(msg.m.SubID, msg.from)
	case router.Event:
		nd.rt.HandleEvent(msg.m.Ev, msg.m.Hops, msg.from)
	}
}

// anomaly surfaces a routing error as a counted stat plus the optional
// callback — a federated deployment cannot debug panics in a peer process.
func (nd *node) anomaly(err error) {
	nd.net.installErrors.Inc()
	if nd.net.cfg.OnError != nil {
		nd.net.cfg.OnError(nd.id, err)
	}
}
