// Package overlay simulates a distributed broker network: one goroutine per
// broker, channel links, subscription flooding and reverse-path event
// routing — the peer-to-peer deployment the paper motivates ("in typical
// real world situations we will find peer-to-peer networks of less equipped
// machines, such as laptops and mobile devices to perform event filtering",
// §1).
//
// Routing model (SIENA-style, specialised to acyclic topologies):
//
//   - A subscription registered at node S is flooded through the tree.
//     Every broker installs it in its local non-canonical engine and
//     remembers the link it arrived on — the next hop toward S.
//   - An event published at node O is matched at every broker it visits.
//     Local subscribers are notified; for remote matches the event is
//     forwarded once per distinct next-hop link (never back where it came
//     from). On a tree this delivers every matching subscription exactly
//     once while filtering prunes all branches without subscribers.
//
// With Config.Cover the flood is pruned by subscription covering
// (internal/cover): a broker does not forward a subscription over a link
// that already carries one covering it — events selected by the narrower
// filter are a subset of those the wider one already attracts, so routing
// stays exact while the flood shrinks. The suppressed subscription is
// remembered against its coverer; when the coverer is unsubscribed the
// broker re-floods the filters it was shadowing over that link (each
// re-checked against the remaining forwarded set, so a second coverer
// re-suppresses instead of re-flooding).
//
// Every broker runs the full non-canonical engine, so overlay scalability
// inherits the filtering scalability the paper argues for.
package overlay

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"noncanon/internal/boolexpr"
	"noncanon/internal/core"
	"noncanon/internal/cover"
	"noncanon/internal/event"
	"noncanon/internal/index"
	"noncanon/internal/matcher"
	"noncanon/internal/predicate"
	"noncanon/internal/subtree"
)

// NodeID identifies a broker in the overlay.
type NodeID int

// Handler consumes events delivered to a local subscriber. Handlers run on
// the owning broker's goroutine and must not block.
type Handler func(ev event.Event)

// Errors returned by the network API.
var (
	ErrClosed      = errors.New("overlay: network closed")
	ErrUnknownNode = errors.New("overlay: unknown node")
	ErrUnknownSub  = errors.New("overlay: unknown subscription")
	ErrNotATree    = errors.New("overlay: topology must be a connected acyclic graph")
)

// DefaultInboxSize is the per-broker message queue capacity.
const DefaultInboxSize = 1024

// MaxHops bounds event forwarding as a safety net; tree routing never
// reaches it.
const MaxHops = 255

// Config tunes the simulation.
type Config struct {
	// InboxSize is the per-broker inbox capacity (default DefaultInboxSize).
	InboxSize int
	// Cover enables covering-based subscription forwarding: a subscription
	// is not flooded past a link that already carries a covering one, and
	// unsubscribing a coverer re-floods the filters it was shadowing.
	// Event routing is unaffected; delivery stays exactly-once.
	Cover bool
	// Engine configures each broker's matching engine.
	Engine core.Options
}

// SubRef names a subscription in the overlay.
type SubRef struct {
	id uint64
}

// Stats aggregates network activity.
type Stats struct {
	// Published counts Publish calls.
	Published uint64
	// Forwarded counts event copies sent over links.
	Forwarded uint64
	// Delivered counts local handler invocations.
	Delivered uint64
	// SubscriptionMsgs counts subscription-propagation link messages.
	SubscriptionMsgs uint64
	// CoverSuppressed counts subscription forwards pruned because the link
	// already carried a covering subscription (Config.Cover only).
	CoverSuppressed uint64
}

// Network is a simulated broker overlay.
type Network struct {
	cfg   Config
	nodes []*node

	nextSub  atomic.Uint64
	inflight atomic.Int64
	closed   atomic.Bool
	quit     chan struct{}
	wg       sync.WaitGroup

	subOrigin sync.Map // sub id → NodeID, for Unsubscribe validation

	published     atomic.Uint64
	forwarded     atomic.Uint64
	delivered     atomic.Uint64
	subMsgSent    atomic.Uint64
	coverSuppress atomic.Uint64
}

type node struct {
	id    NodeID
	net   *Network
	inbox chan message
	eng   *core.Engine

	// neighbors[i] is a directly linked broker; revIdx[i] is this node's
	// position in that neighbor's neighbor list (so messages can tell the
	// receiver which of its links they arrived on).
	neighbors []*node
	revIdx    []int

	// routes maps overlay subscription IDs to their local registration.
	routes map[uint64]*route
	// byEngine maps engine subscription IDs back to routes after matching.
	byEngine map[matcher.SubID]*route

	// Covering state (Config.Cover only), indexed by link. fwd[i] holds
	// the subscriptions this node actually sent over link i; coveredBy[i]
	// maps a suppressed subscription to the forwarded one that shadows it,
	// and coverees[i] is the reverse index consulted on unsubscribe.
	fwd       []map[uint64]boolexpr.Expr
	coveredBy []map[uint64]uint64
	coverees  []map[uint64]map[uint64]struct{}
}

// route is a node's view of one overlay subscription.
type route struct {
	subID    uint64
	engineID matcher.SubID
	expr     boolexpr.Expr // kept for covering re-floods
	handler  Handler       // non-nil only at the subscriber's home broker
	nextHop  int           // link index toward the subscriber; -1 when local
}

type message struct {
	kind    msgKind
	from    int // receiver's link index the message arrived on; -1 = api
	subID   uint64
	expr    boolexpr.Expr
	handler Handler
	ev      event.Event
	hops    int
}

type msgKind uint8

const (
	msgSubscribe msgKind = iota + 1
	msgUnsubscribe
	msgEvent
)

// New builds a network of n brokers connected by the given undirected
// edges. The topology must be a connected tree (n-1 edges, no cycles).
func New(n int, edges [][2]NodeID, cfg Config) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("overlay: need at least one node, got %d", n)
	}
	if err := validateTree(n, edges); err != nil {
		return nil, err
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = DefaultInboxSize
	}
	nw := &Network{cfg: cfg, quit: make(chan struct{})}
	nw.nodes = make([]*node, n)
	for i := range nw.nodes {
		reg := predicate.NewRegistry()
		idx := index.New()
		nw.nodes[i] = &node{
			id:       NodeID(i),
			net:      nw,
			inbox:    make(chan message, cfg.InboxSize),
			eng:      core.New(reg, idx, cfg.Engine),
			routes:   make(map[uint64]*route),
			byEngine: make(map[matcher.SubID]*route),
		}
	}
	for _, e := range edges {
		a, b := nw.nodes[e[0]], nw.nodes[e[1]]
		a.neighbors = append(a.neighbors, b)
		b.neighbors = append(b.neighbors, a)
		a.revIdx = append(a.revIdx, len(b.neighbors)-1)
		b.revIdx = append(b.revIdx, len(a.neighbors)-1)
	}
	if cfg.Cover {
		for _, nd := range nw.nodes {
			links := len(nd.neighbors)
			nd.fwd = make([]map[uint64]boolexpr.Expr, links)
			nd.coveredBy = make([]map[uint64]uint64, links)
			nd.coverees = make([]map[uint64]map[uint64]struct{}, links)
			for i := 0; i < links; i++ {
				nd.fwd[i] = make(map[uint64]boolexpr.Expr)
				nd.coveredBy[i] = make(map[uint64]uint64)
				nd.coverees[i] = make(map[uint64]map[uint64]struct{})
			}
		}
	}
	for _, nd := range nw.nodes {
		nw.wg.Add(1)
		go nd.run()
	}
	return nw, nil
}

// NewLine builds a chain 0-1-2-…-(n-1).
func NewLine(n int, cfg Config) (*Network, error) {
	edges := make([][2]NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]NodeID{NodeID(i - 1), NodeID(i)})
	}
	return New(n, edges, cfg)
}

// NewStar builds a hub-and-spoke topology with node 0 as the hub.
func NewStar(n int, cfg Config) (*Network, error) {
	edges := make([][2]NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]NodeID{0, NodeID(i)})
	}
	return New(n, edges, cfg)
}

// NewTree builds a complete k-ary tree with n nodes rooted at 0.
func NewTree(n, fanout int, cfg Config) (*Network, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("overlay: fanout must be >= 1, got %d", fanout)
	}
	edges := make([][2]NodeID, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]NodeID{NodeID((i - 1) / fanout), NodeID(i)})
	}
	return New(n, edges, cfg)
}

func validateTree(n int, edges [][2]NodeID) error {
	if len(edges) != n-1 {
		return fmt.Errorf("%w: %d nodes need %d edges, got %d", ErrNotATree, n, n-1, len(edges))
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := int(e[0]), int(e[1])
		if a < 0 || a >= n || b < 0 || b >= n {
			return fmt.Errorf("%w: edge %v out of range", ErrNotATree, e)
		}
		ra, rb := find(a), find(b)
		if ra == rb {
			return fmt.Errorf("%w: edge %v closes a cycle", ErrNotATree, e)
		}
		parent[ra] = rb
	}
	return nil
}

// NumNodes returns the broker count.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// Subscribe registers a subscription at broker `at`; the handler runs on
// that broker. The subscription is flooded through the overlay before
// Subscribe-concurrent publishes at distant brokers can see it; call Flush
// for a quiescent point.
func (nw *Network) Subscribe(at NodeID, expr boolexpr.Expr, h Handler) (SubRef, error) {
	if nw.closed.Load() {
		return SubRef{}, ErrClosed
	}
	if int(at) < 0 || int(at) >= len(nw.nodes) {
		return SubRef{}, fmt.Errorf("%w: %d", ErrUnknownNode, at)
	}
	if expr == nil {
		return SubRef{}, fmt.Errorf("overlay: nil subscription expression")
	}
	if h == nil {
		return SubRef{}, fmt.Errorf("overlay: nil handler")
	}
	// Validate compilability up front (with a throwaway interner) so that
	// installation cannot fail asynchronously mid-flood.
	var n predicate.ID
	if _, err := subtree.Compile(expr, func(predicate.P) predicate.ID { n++; return n }, subtree.Options{
		Encoding: nw.cfg.Engine.Encoding,
		Reorder:  nw.cfg.Engine.Reorder,
	}); err != nil {
		return SubRef{}, fmt.Errorf("overlay: invalid subscription: %w", err)
	}
	id := nw.nextSub.Add(1)
	nw.subOrigin.Store(id, at)
	nw.send(nw.nodes[at], message{kind: msgSubscribe, from: -1, subID: id, expr: expr, handler: h})
	return SubRef{id: id}, nil
}

// Unsubscribe removes a subscription network-wide.
func (nw *Network) Unsubscribe(ref SubRef) error {
	if nw.closed.Load() {
		return ErrClosed
	}
	origin, ok := nw.subOrigin.LoadAndDelete(ref.id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSub, ref.id)
	}
	nw.send(nw.nodes[origin.(NodeID)], message{kind: msgUnsubscribe, from: -1, subID: ref.id})
	return nil
}

// Publish injects an event at broker `at`.
func (nw *Network) Publish(at NodeID, ev event.Event) error {
	if nw.closed.Load() {
		return ErrClosed
	}
	if int(at) < 0 || int(at) >= len(nw.nodes) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, at)
	}
	nw.published.Add(1)
	nw.send(nw.nodes[at], message{kind: msgEvent, from: -1, ev: ev})
	return nil
}

// send enqueues a message, tracking it for Flush quiescence.
func (nw *Network) send(to *node, m message) {
	nw.inflight.Add(1)
	select {
	case to.inbox <- m:
	case <-nw.quit:
		nw.inflight.Add(-1)
	}
}

// Flush blocks until every in-flight message (including cascaded forwards)
// has been processed.
func (nw *Network) Flush() {
	for nw.inflight.Load() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
}

// Stats returns an activity snapshot.
func (nw *Network) Stats() Stats {
	return Stats{
		Published:        nw.published.Load(),
		Forwarded:        nw.forwarded.Load(),
		Delivered:        nw.delivered.Load(),
		SubscriptionMsgs: nw.subMsgSent.Load(),
		CoverSuppressed:  nw.coverSuppress.Load(),
	}
}

// Close stops all brokers and waits for their goroutines.
func (nw *Network) Close() {
	if nw.closed.Swap(true) {
		return
	}
	close(nw.quit)
	nw.wg.Wait()
}

func (nd *node) run() {
	defer nd.net.wg.Done()
	for {
		select {
		case m := <-nd.inbox:
			nd.handle(m)
			nd.net.inflight.Add(-1)
		case <-nd.net.quit:
			return
		}
	}
}

func (nd *node) handle(m message) {
	switch m.kind {
	case msgSubscribe:
		nd.handleSubscribe(m)
	case msgUnsubscribe:
		nd.handleUnsubscribe(m)
	case msgEvent:
		nd.handleEvent(m)
	}
}

func (nd *node) handleSubscribe(m message) {
	if _, dup := nd.routes[m.subID]; dup {
		return // already installed (defensive; cannot happen on a tree)
	}
	engineID, err := nd.eng.Subscribe(m.expr)
	if err != nil {
		// Subscriptions are validated at the home broker before flooding;
		// a failure here is a programming error worth surfacing loudly in
		// the simulation.
		panic(fmt.Sprintf("overlay: node %d: install subscription %d: %v", nd.id, m.subID, err))
	}
	r := &route{subID: m.subID, engineID: engineID, expr: m.expr, nextHop: m.from}
	if m.from == -1 {
		r.handler = m.handler
	}
	nd.routes[m.subID] = r
	nd.byEngine[engineID] = r
	// Flood to all other links.
	if nd.net.cfg.Cover {
		for i := range nd.neighbors {
			if i != m.from {
				nd.sendSubOverLink(i, m.subID, m.expr)
			}
		}
		return
	}
	fwd := message{kind: msgSubscribe, subID: m.subID, expr: m.expr}
	nd.forwardExcept(m.from, fwd, &nd.net.subMsgSent)
}

// sendSubOverLink forwards a subscription over one link unless a
// subscription already forwarded there covers it: the far side then
// already attracts a superset of the matching events toward this node, so
// routing stays exact and the flood is pruned. Suppressions are recorded
// so an unsubscribe of the coverer can re-flood them.
func (nd *node) sendSubOverLink(i int, subID uint64, expr boolexpr.Expr) {
	for tid, texpr := range nd.fwd[i] {
		if cover.Covers(texpr, expr) {
			nd.coveredBy[i][subID] = tid
			set := nd.coverees[i][tid]
			if set == nil {
				set = make(map[uint64]struct{})
				nd.coverees[i][tid] = set
			}
			set[subID] = struct{}{}
			nd.net.coverSuppress.Add(1)
			return
		}
	}
	nd.fwd[i][subID] = expr
	nd.net.subMsgSent.Add(1)
	nd.net.send(nd.neighbors[i], message{
		kind: msgSubscribe, from: nd.revIdx[i], subID: subID, expr: expr,
	})
}

func (nd *node) handleUnsubscribe(m message) {
	r, ok := nd.routes[m.subID]
	if !ok {
		return
	}
	delete(nd.routes, m.subID)
	delete(nd.byEngine, r.engineID)
	if err := nd.eng.Unsubscribe(r.engineID); err != nil {
		panic(fmt.Sprintf("overlay: node %d: remove subscription %d: %v", nd.id, m.subID, err))
	}
	if nd.net.cfg.Cover {
		for i := range nd.neighbors {
			if i != m.from {
				nd.unsubOverLink(i, m.subID)
			}
		}
		return
	}
	nd.forwardExcept(m.from, message{kind: msgUnsubscribe, subID: m.subID}, &nd.net.subMsgSent)
}

// unsubOverLink retracts a subscription from one link. Only subscriptions
// actually forwarded there need a link message; a suppressed one just
// clears its shadow bookkeeping. Retracting a forwarded subscription
// re-floods everything it was covering (in deterministic order), each
// re-checked against the remaining forwarded set so another coverer can
// re-suppress it.
//
// Ordering matters: the re-floods are sent BEFORE the retraction. The far
// side then briefly carries both the coverer and the re-flooded filters —
// which routes a single event copy anyway (next-hop links are
// deduplicated) — whereas the opposite order would open a window carrying
// neither, dropping events for stable subscribers.
func (nd *node) unsubOverLink(i int, subID uint64) {
	if _, sent := nd.fwd[i][subID]; !sent {
		if cid, covered := nd.coveredBy[i][subID]; covered {
			delete(nd.coveredBy[i], subID)
			if set := nd.coverees[i][cid]; set != nil {
				delete(set, subID)
				if len(set) == 0 {
					delete(nd.coverees[i], cid)
				}
			}
		}
		return
	}
	delete(nd.fwd[i], subID) // before re-flooding: no self-covering
	if shadowed := nd.coverees[i][subID]; len(shadowed) > 0 {
		delete(nd.coverees[i], subID)
		ids := make([]uint64, 0, len(shadowed))
		for sid := range shadowed {
			ids = append(ids, sid)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, sid := range ids {
			delete(nd.coveredBy[i], sid)
			if rr, live := nd.routes[sid]; live {
				nd.sendSubOverLink(i, sid, rr.expr)
			}
		}
	} else {
		delete(nd.coverees[i], subID)
	}
	nd.net.subMsgSent.Add(1)
	nd.net.send(nd.neighbors[i], message{
		kind: msgUnsubscribe, from: nd.revIdx[i], subID: subID,
	})
}

// forwardExcept sends m to every neighbor except the link it arrived on,
// setting from to the receiver's reverse link index.
func (nd *node) forwardExcept(except int, m message, counter *atomic.Uint64) {
	for i, nb := range nd.neighbors {
		if i == except {
			continue
		}
		m.from = nd.revIdx[i]
		counter.Add(1)
		nd.net.send(nb, m)
	}
}

func (nd *node) handleEvent(m message) {
	if m.hops >= MaxHops {
		return
	}
	matched := nd.eng.Match(m.ev)
	// Deliver locally; collect distinct next-hop links.
	var hopSet uint64 // bitset over link indexes; trees here have < 64 links/node
	var bigHops map[int]bool
	for _, engineID := range matched {
		r, ok := nd.byEngine[engineID]
		if !ok {
			continue
		}
		if r.nextHop == -1 {
			r.handler(m.ev)
			nd.net.delivered.Add(1)
			continue
		}
		if r.nextHop == m.from {
			continue // never bounce an event back (cannot happen on a tree)
		}
		if r.nextHop < 64 {
			hopSet |= 1 << uint(r.nextHop)
		} else {
			if bigHops == nil {
				bigHops = make(map[int]bool)
			}
			bigHops[r.nextHop] = true
		}
	}
	fwd := message{kind: msgEvent, ev: m.ev, hops: m.hops + 1}
	for i := range nd.neighbors {
		use := false
		if i < 64 {
			use = hopSet&(1<<uint(i)) != 0
		} else {
			use = bigHops[i]
		}
		if !use {
			continue
		}
		fwd.from = nd.revIdx[i]
		nd.net.forwarded.Add(1)
		nd.net.send(nd.neighbors[i], fwd)
	}
}
