package overlay

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"noncanon/internal/event"
)

// TestChurnStormExactlyOnce subjects the overlay to a subscribe/unsubscribe
// storm interleaved with a publish storm from multiple goroutines and
// asserts the core routing invariant: subscribers that are stable for the
// whole run receive every matching event exactly once — never zero, never
// twice — regardless of the churn around them. Run under -race this also
// pins the thread-safety of the API surface. Both the plain and the
// covering configuration are exercised.
func TestChurnStormExactlyOnce(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		cover bool
	}{
		{name: "plain", cover: false},
		{name: "cover", cover: true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			const (
				nodes      = 9
				stableSubs = 6
				events     = 400
				churners   = 3
				churnIters = 120
			)
			nw, err := NewTree(nodes, 2, Config{Cover: cfg.cover, InboxSize: 4096})
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()

			// Stable subscribers: one broad band per category so every event
			// in that category matches; delivery counts are per event seq.
			type counterMap struct {
				mu   sync.Mutex
				seen map[int64]int
			}
			counters := make([]*counterMap, stableSubs)
			for i := range counters {
				counters[i] = &counterMap{seen: map[int64]int{}}
			}
			for i := 0; i < stableSubs; i++ {
				cm := counters[i]
				_, err := nw.Subscribe(NodeID(i%nodes), band(i%3, 1000), func(ev event.Event) {
					v, _ := ev.Get("seq")
					cm.mu.Lock()
					cm.seen[v.Int()]++
					cm.mu.Unlock()
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			nw.Flush()

			// Storm: churners cycle volatile subscriptions (covering and
			// covered ones) while publishers inject every event once.
			var wg sync.WaitGroup
			var churnOps atomic.Int64
			stop := make(chan struct{})
			for c := 0; c < churners; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(c) + 100))
					for i := 0; i < churnIters; i++ {
						ref, err := nw.Subscribe(
							NodeID(rng.Intn(nodes)),
							band(rng.Intn(3), 10*(1+rng.Intn(12))),
							func(event.Event) {},
						)
						if err != nil {
							t.Error(err)
							return
						}
						if err := nw.Unsubscribe(ref); err != nil {
							t.Error(err)
							return
						}
						churnOps.Add(2)
						select {
						case <-stop:
							return
						default:
						}
					}
				}(c)
			}
			pubErr := make(chan error, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(7))
				for seq := int64(1); seq <= events; seq++ {
					ev := bandEvent(int(seq)%3, rng.Intn(900)).Set("seq", seq)
					if err := nw.Publish(NodeID(rng.Intn(nodes)), ev); err != nil {
						pubErr <- err
						return
					}
				}
			}()
			wg.Wait()
			close(stop)
			select {
			case err := <-pubErr:
				t.Fatal(err)
			default:
			}
			nw.Flush()

			// Every stable subscriber must have seen each of its category's
			// events exactly once.
			for i, cm := range counters {
				cat := i % 3
				cm.mu.Lock()
				for seq := int64(1); seq <= events; seq++ {
					want := 0
					if int(seq)%3 == cat {
						want = 1
					}
					if got := cm.seen[seq]; got != want {
						cm.mu.Unlock()
						t.Fatalf("stable subscriber %d: event %d delivered %d times, want %d (churn ops: %d)",
							i, seq, got, want, churnOps.Load())
					}
				}
				cm.mu.Unlock()
			}
			if churnOps.Load() == 0 {
				t.Error("no churn happened; the storm lost its teeth")
			}
		})
	}
}

// TestChurnUnsubscribeDuringFlood interleaves an unsubscribe directly
// behind its own subscribe (no quiescing) many times: the network must end
// every round with no routes left anywhere and deliver nothing afterwards.
func TestChurnUnsubscribeDuringFlood(t *testing.T) {
	for _, coverOn := range []bool{false, true} {
		t.Run(fmt.Sprintf("cover=%v", coverOn), func(t *testing.T) {
			nw, err := NewLine(6, Config{Cover: coverOn})
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()
			var delivered atomic.Int64
			for i := 0; i < 200; i++ {
				ref, err := nw.Subscribe(0, band(1, 100+i), func(event.Event) {
					delivered.Add(1)
				})
				if err != nil {
					t.Fatal(err)
				}
				// Immediately retract while the flood may still be in flight.
				if err := nw.Unsubscribe(ref); err != nil {
					t.Fatal(err)
				}
			}
			nw.Flush()
			for _, nd := range nw.nodes {
				if n := nd.rt.NumRoutes(); n != 0 {
					t.Fatalf("node %d still holds %d routes after churn", nd.id, n)
				}
				if nd.eng.NumSubscriptions() != 0 {
					t.Fatalf("node %d engine still holds %d subscriptions", nd.id, nd.eng.NumSubscriptions())
				}
				if coverOn {
					for i := 0; i < nd.rt.NumLinks(); i++ {
						fwd, covered, coverers := nd.rt.CoverState(i)
						if fwd != 0 || covered != 0 || coverers != 0 {
							t.Fatalf("node %d link %d covering state leaked: fwd=%d coveredBy=%d coverees=%d",
								nd.id, i, fwd, covered, coverers)
						}
					}
				}
			}
			if err := nw.Publish(5, bandEvent(1, 5)); err != nil {
				t.Fatal(err)
			}
			nw.Flush()
			if delivered.Load() != 0 {
				t.Errorf("delivered = %d events to unsubscribed handlers", delivered.Load())
			}
		})
	}
}
