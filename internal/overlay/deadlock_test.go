package overlay

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"noncanon/internal/event"
	"noncanon/internal/predicate"
)

// waitNumGoroutine polls until the goroutine count drops back to at most
// `want` (runtime cleanup is asynchronous) or the deadline passes, and
// returns the last observed count.
func waitNumGoroutine(want int, deadline time.Duration) int {
	var n int
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	return n
}

// assertNoGoroutineLeak fails the test if the goroutine count has not
// returned to its pre-network level (with slack for runtime helpers).
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	const slack = 2
	if n := waitNumGoroutine(before+slack, 5*time.Second); n > before+slack {
		t.Errorf("goroutine leak: %d before, %d after close", before, n)
	}
}

// TestRegistrationStormInboxOne is the deadlock regression test for the
// inbox cycle PR 4 papered over in the C1 benchmark: with InboxSize 1 on a
// line topology, any forwarding design where a broker goroutine blocks
// sending into a neighbour's inbox wedges immediately — node A mid-send
// into B's full inbox while B is mid-send into A's. The spill-queue
// forwarding must survive an unthrottled registration storm (plus
// unsubscribes and publishes, which ride the same links) without any
// quiescing, and deliver a correct routing state at the end.
func TestRegistrationStormInboxOne(t *testing.T) {
	for _, coverOn := range []bool{false, true} {
		name := "plain"
		if coverOn {
			name = "cover"
		}
		t.Run(name, func(t *testing.T) {
			goroutinesBefore := runtime.NumGoroutine()
			const (
				nodes   = 8
				storms  = 4
				perGoro = 300
			)
			nw, err := NewLine(nodes, Config{InboxSize: 1, Cover: coverOn})
			if err != nil {
				t.Fatal(err)
			}

			// The storm must finish well before the suite timeout; run it
			// under a watchdog so a deadlock reports as a failure here, not
			// as an opaque test-binary timeout panic.
			done := make(chan struct{})
			var delivered atomic.Int64
			type kept struct {
				ref SubRef
				at  NodeID
			}
			survivors := make([][]kept, storms)
			go func() {
				defer close(done)
				var wg sync.WaitGroup
				for g := 0; g < storms; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < perGoro; i++ {
							at := NodeID((g + i) % nodes)
							ref, err := nw.Subscribe(at, band(g%3, 10*(1+i%12)), func(event.Event) {
								delivered.Add(1)
							})
							if err != nil {
								t.Error(err)
								return
							}
							if i%3 == 0 {
								if err := nw.Unsubscribe(ref); err != nil {
									t.Error(err)
									return
								}
							} else {
								survivors[g] = append(survivors[g], kept{ref: ref, at: at})
							}
							if i%7 == 0 {
								if err := nw.Publish(at, bandEvent(g%3, 5)); err != nil {
									t.Error(err)
									return
								}
							}
						}
					}(g)
				}
				wg.Wait()
				nw.Flush()
			}()
			select {
			case <-done:
			case <-time.After(90 * time.Second):
				buf := make([]byte, 1<<20)
				t.Fatalf("registration storm deadlocked; goroutines:\n%s", buf[:runtime.Stack(buf, true)])
			}

			// The storm's survivors are fully routed. Without covering every
			// broker knows every live subscription; with it a broker at
			// least holds the survivors homed at itself (remote knowledge is
			// legitimately pruned by coverers).
			live := 0
			for _, ks := range survivors {
				live += len(ks)
			}
			for _, ks := range survivors {
				for _, k := range ks {
					if !nw.nodes[k.at].rt.HasRoute(k.ref.id) {
						t.Errorf("node %d lost surviving subscription %d", k.at, k.ref.id)
					}
				}
			}
			for _, nd := range nw.nodes {
				got := nd.rt.NumRoutes()
				if !coverOn && got != live {
					t.Errorf("node %d routes = %d, want %d", nd.id, got, live)
				}
				if coverOn && got > live {
					t.Errorf("node %d routes = %d > %d live", nd.id, got, live)
				}
			}
			if coverOn && nw.Stats().CoverSuppressed == 0 {
				t.Error("covering storm never suppressed a forward; the test lost its teeth")
			}
			if st := nw.Stats(); st.HopDropped != 0 || st.InstallErrors != 0 {
				t.Errorf("storm dropped or failed messages: %+v", st)
			}
			nw.Close()
			assertNoGoroutineLeak(t, goroutinesBefore)
		})
	}
}

// TestFlushReturnsAfterClose pins the Flush liveness fix: messages queued
// when the network closes are discarded, so a Flush that raced Close (or
// follows it) must return instead of spinning on an inflight count that
// will never reach zero.
func TestFlushReturnsAfterClose(t *testing.T) {
	nw, err := NewLine(4, Config{InboxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Park messages in the network: a slow handler wedges node 3's broker
	// goroutine while more publishes pile into inboxes and spill queues.
	block := make(chan struct{})
	var once sync.Once
	if _, err := nw.Subscribe(3, pred("p", predicate.Gt, 0), func(event.Event) {
		once.Do(func() { <-block })
	}); err != nil {
		t.Fatal(err)
	}
	nw.Flush()
	for i := 0; i < 64; i++ {
		if err := nw.Publish(0, event.New().Set("p", 1)); err != nil {
			t.Fatal(err)
		}
	}

	flushed := make(chan struct{})
	go func() {
		nw.Flush()
		close(flushed)
	}()
	select {
	case <-flushed:
		t.Fatal("Flush returned while messages were wedged in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(block) // free the handler so Close can join the broker goroutine
	nw.Close()
	select {
	case <-flushed:
	case <-time.After(10 * time.Second):
		t.Fatal("Flush still blocked after Close")
	}
	nw.Flush() // post-Close Flush returns immediately too
}

// TestCloseReleasesGoroutines asserts the broker and writer goroutines all
// exit on Close even with traffic still queued.
func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	nw, err := NewTree(15, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := nw.Subscribe(NodeID(i%15), band(i%3, 100), func(event.Event) {}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := nw.Publish(NodeID(i%15), bandEvent(i%3, 5)); err != nil {
			t.Fatal(err)
		}
	}
	nw.Close() // no Flush: close with work still in flight
	assertNoGoroutineLeak(t, before)
}
