package chaos

import (
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				io.Copy(nc, nc)
			}()
		}
	}()
	return ln.Addr().String()
}

func TestProxyRelayStallResume(t *testing.T) {
	proxy, err := NewProxy(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	nc, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	echo := func(msg string) error {
		if _, err := nc.Write([]byte(msg)); err != nil {
			return err
		}
		buf := make([]byte, len(msg))
		_, err := io.ReadFull(nc, buf)
		return err
	}
	if err := echo("hello"); err != nil {
		t.Fatalf("echo through proxy: %v", err)
	}

	// A stalled proxy keeps the connection open but moves nothing.
	proxy.Stall()
	if !proxy.Stalled() {
		t.Fatal("Stalled() = false after Stall")
	}
	if _, err := nc.Write([]byte("stuck")); err != nil {
		t.Fatalf("write into stalled proxy: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 5)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("read succeeded through a stalled proxy")
	}
	nc.SetReadDeadline(time.Time{})

	// Resume delivers the in-flight bytes rather than losing them.
	proxy.Resume()
	if _, err := io.ReadFull(nc, buf); err != nil || string(buf) != "stuck" {
		t.Fatalf("read after resume = %q, %v", buf, err)
	}

	// Sever drops the live connection but keeps the listener serving.
	proxy.Sever()
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("read succeeded on a severed connection")
	}
	nc2, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatalf("dial after sever: %v", err)
	}
	defer nc2.Close()
	nc = nc2
	if err := echo("again"); err != nil {
		t.Fatalf("echo after sever: %v", err)
	}
}

func TestOracleVerdicts(t *testing.T) {
	o := NewOracle()
	for seq := uint64(0); seq < 10; seq++ {
		o.Record(seq)
	}
	o.Record(3) // duplicate
	// 10..14 never delivered.
	v := o.Verify(0, 15)
	if v.Expected != 15 || v.Delivered != 9 || v.Missing != 5 || v.Duplicated != 1 {
		t.Fatalf("verdict = %+v", v)
	}
	if err := v.Err(); err == nil {
		t.Fatal("dirty verdict has nil Err")
	}
	if err := o.Verify(0, 3).Err(); err != nil {
		t.Fatalf("clean verdict Err = %v", err)
	}
	if n := o.Deliveries(3); n != 2 {
		t.Fatalf("Deliveries(3) = %d", n)
	}
}
