// Package chaos provides fault-injection plumbing for federation
// experiments: a stallable TCP proxy that simulates slow, frozen and
// half-open peers, and a delivery oracle that checks exactly-once delivery
// under faults.
//
// The proxy is deliberately dumb — it relays bytes and, when stalled,
// simply stops, keeping both TCP connections open but silent. That is
// exactly what a frozen process, a pulled cable or a dead machine without
// FIN looks like to the brokers on either side, which is the failure mode
// flow control and liveness probing exist for.
package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Proxy is a loopback TCP relay between clients and a target address.
// Stall freezes relaying in both directions without closing connections;
// Resume unfreezes; Sever drops live proxied connections (with FIN) while
// keeping the listener; Close tears everything down.
type Proxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	gate    chan struct{} // closed while running; fresh open chan while stalled
	stalled bool
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and relays every accepted
// connection to target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	open := make(chan struct{})
	close(open)
	p := &Proxy{
		ln:     ln,
		target: target,
		conns:  make(map[net.Conn]struct{}),
		gate:   open,
		done:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; dial this instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			nc.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			up.Close()
			return
		}
		p.conns[nc] = struct{}{}
		p.conns[up] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()
		go p.relay(up, nc)
		go p.relay(nc, up)
	}
}

// relay copies src to dst, pausing at the gate while the proxy is stalled.
// The pause sits between read and write, so in-flight bytes are delivered
// after Resume, not lost — a stall delays traffic, a Sever drops it.
func (p *Proxy) relay(dst, src net.Conn) {
	defer p.wg.Done()
	defer p.drop(dst, src)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			gate := p.gate
			p.mu.Unlock()
			select {
			case <-gate:
			case <-p.done:
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// drop closes one proxied connection pair and forgets it.
func (p *Proxy) drop(a, b net.Conn) {
	a.Close()
	b.Close()
	p.mu.Lock()
	delete(p.conns, a)
	delete(p.conns, b)
	p.mu.Unlock()
}

// Stall freezes the relay: connections stay open, no byte moves in either
// direction. To each side the peer looks alive but silent — the half-open
// failure mode. Idempotent.
func (p *Proxy) Stall() {
	p.mu.Lock()
	if !p.stalled && !p.closed {
		p.stalled = true
		p.gate = make(chan struct{})
	}
	p.mu.Unlock()
}

// Resume unfreezes a stalled relay; buffered in-flight bytes flow again.
// Idempotent.
func (p *Proxy) Resume() {
	p.mu.Lock()
	if p.stalled {
		p.stalled = false
		close(p.gate)
	}
	p.mu.Unlock()
}

// Stalled reports whether the relay is currently frozen.
func (p *Proxy) Stalled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stalled
}

// Sever closes every live proxied connection (the peers see FIN/RST) but
// keeps the listener, so new connections still relay — a link partition,
// not a proxy death.
func (p *Proxy) Sever() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for nc := range p.conns {
		conns = append(conns, nc)
	}
	p.mu.Unlock()
	for _, nc := range conns {
		nc.Close()
	}
}

// Close stops the listener and all relaying. Idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	err := p.ln.Close()
	p.Sever()
	p.wg.Wait()
	return err
}

// Oracle tracks per-sequence delivery counts so chaos runs can distinguish
// the acceptable fault losses (shed while congested, down while detached)
// from the unacceptable ones: duplicate delivery, or loss while healthy.
type Oracle struct {
	mu     sync.Mutex
	counts map[uint64]int
}

// NewOracle builds an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{counts: make(map[uint64]int)}
}

// Record notes one delivery of the sequence number.
func (o *Oracle) Record(seq uint64) {
	o.mu.Lock()
	o.counts[seq]++
	o.mu.Unlock()
}

// Deliveries returns how often seq was delivered.
func (o *Oracle) Deliveries(seq uint64) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counts[seq]
}

// Verdict summarises an exactly-once check over a sequence range.
type Verdict struct {
	Expected   int // sequence numbers checked
	Delivered  int // delivered exactly once
	Missing    int // never delivered
	Duplicated int // delivered more than once
}

// Err returns nil for a clean exactly-once verdict and a descriptive error
// otherwise.
func (v Verdict) Err() error {
	if v.Missing == 0 && v.Duplicated == 0 {
		return nil
	}
	return errors.New(v.String())
}

func (v Verdict) String() string {
	return fmt.Sprintf("chaos: of %d expected events %d delivered once, %d missing, %d duplicated",
		v.Expected, v.Delivered, v.Missing, v.Duplicated)
}

// Verify checks that every sequence number in [from, to) was delivered
// exactly once.
func (o *Oracle) Verify(from, to uint64) Verdict {
	o.mu.Lock()
	defer o.mu.Unlock()
	v := Verdict{Expected: int(to - from)}
	for seq := from; seq < to; seq++ {
		switch n := o.counts[seq]; {
		case n == 0:
			v.Missing++
		case n == 1:
			v.Delivered++
		default:
			v.Duplicated++
		}
	}
	return v
}
