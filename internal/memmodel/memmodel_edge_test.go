package memmodel

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestMultiplierEdgeCases pins the swap model at its boundaries: exactly
// at budget, one byte over, the degenerate budgets, and the asymptote.
func TestMultiplierEdgeCases(t *testing.T) {
	m := SwapModel{BudgetBytes: 1000, Penalty: 50}
	cases := []struct {
		name     string
		resident int
		want     float64
	}{
		{"zero resident", 0, 1},
		{"negative resident", -5, 1},
		{"exactly at budget", 1000, 1},
		{"one byte over", 1001, 1 + (1.0/1001.0)*49},
		{"double budget", 2000, 1 + 0.5*49},
	}
	for _, c := range cases {
		if got := m.Multiplier(c.resident); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Multiplier(%d) = %v, want %v", c.name, c.resident, got, c.want)
		}
	}

	// As resident → ∞ the multiplier approaches (but never reaches) the
	// full penalty: the swapped fraction tends to 1.
	huge := m.Multiplier(math.MaxInt32)
	if huge >= 50 || huge < 49.9 {
		t.Errorf("asymptote: Multiplier(MaxInt32) = %v, want just under 50", huge)
	}

	// Monotonicity over the bend.
	prev := 0.0
	for r := 900; r <= 3000; r += 100 {
		got := m.Multiplier(r)
		if got < prev {
			t.Fatalf("multiplier not monotone at %d: %v < %v", r, got, prev)
		}
		prev = got
	}
}

// TestMultiplierDegenerateParameters: zero/negative budgets disable the
// model, sub-1 penalties clamp to no slowdown.
func TestMultiplierDegenerateParameters(t *testing.T) {
	if got := (SwapModel{BudgetBytes: 0, Penalty: 50}).Multiplier(1 << 30); got != 1 {
		t.Errorf("zero budget must disable the model, got %v", got)
	}
	if got := (SwapModel{BudgetBytes: -1, Penalty: 50}).Multiplier(1 << 30); got != 1 {
		t.Errorf("negative budget must disable the model, got %v", got)
	}
	// Penalty below 1 would make swapping a speed-up; it clamps to 1.
	m := SwapModel{BudgetBytes: 100, Penalty: 0.25}
	if got := m.Multiplier(200); got != 1 {
		t.Errorf("sub-1 penalty must clamp to multiplier 1, got %v", got)
	}
}

// TestApplyEdgeCases: Apply scales durations through the same model.
func TestApplyEdgeCases(t *testing.T) {
	m := SwapModel{BudgetBytes: 100, Penalty: 3}
	if got := m.Apply(0, 1<<20); got != 0 {
		t.Errorf("zero duration must stay zero, got %v", got)
	}
	if got := m.Apply(time.Second, 50); got != time.Second {
		t.Errorf("under budget must be identity, got %v", got)
	}
	// 200 resident on 100 budget: f=0.5, multiplier 2.
	if got := m.Apply(time.Second, 200); got != 2*time.Second {
		t.Errorf("Apply(1s, 200) = %v, want 2s", got)
	}
}

// TestMaxSubscriptionsEdgeCases: extrapolation boundaries.
func TestMaxSubscriptionsEdgeCases(t *testing.T) {
	if got := MaxSubscriptions(1000, 0, 0); got != 0 {
		t.Errorf("zero per-sub cost: got %d, want 0", got)
	}
	if got := MaxSubscriptions(1000, 0, -2); got != 0 {
		t.Errorf("negative per-sub cost: got %d, want 0", got)
	}
	if got := MaxSubscriptions(1000, 1000, 4); got != 0 {
		t.Errorf("fixed overhead consumes the budget: got %d, want 0", got)
	}
	if got := MaxSubscriptions(1000, 2000, 4); got != 0 {
		t.Errorf("overhead above budget: got %d, want 0", got)
	}
	if got := MaxSubscriptions(1000, 200, 4); got != 200 {
		t.Errorf("(1000-200)/4: got %d, want 200", got)
	}
	// Fractional per-sub costs round down: only whole subscriptions fit.
	if got := MaxSubscriptions(10, 0, 3); got != 3 {
		t.Errorf("10/3 must floor to 3, got %d", got)
	}
}

// TestFormatBytesBoundaries: unit switchovers happen exactly at the
// binary prefixes.
func TestFormatBytesBoundaries(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{0, "0B"},
		{1023, "1023B"},
		{1024, "1.00KiB"},
		{1<<20 - 1, "1024.00KiB"},
		{1 << 20, "1.00MiB"},
		{1<<30 - 1, "1024.00MiB"},
		{1 << 30, "1.00GiB"},
		{PaperBudgetBytes, "512.00MiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

// TestPaperModelBytesEdgeCases: the analytic §3.3 formulas at zero and
// small counts, including the bit-vector ceiling division.
func TestPaperModelBytesEdgeCases(t *testing.T) {
	if got := PaperCountingBytes(0, 0, 0); got != 0 {
		t.Errorf("empty counting store: %d bytes, want 0", got)
	}
	// 1 unit, 1 predicate, 1 association: 1+1 vector bytes, 1 bit-vector
	// byte, 4 association bytes.
	if got := PaperCountingBytes(1, 1, 1); got != 1+1+1+4 {
		t.Errorf("counting(1,1,1) = %d, want 7", got)
	}
	// Bit vector rounds up per 8 predicates.
	if got, want := PaperCountingBytes(0, 8, 0), 1; got != want {
		t.Errorf("8 predicates need %d bit-vector bytes, want %d", got, want)
	}
	if got, want := PaperCountingBytes(0, 9, 0), 2; got != want {
		t.Errorf("9 predicates need %d bit-vector bytes, want %d", got, want)
	}
	if got := PaperNonCanonicalBytes(0, 0, 0); got != 0 {
		t.Errorf("empty non-canonical store: %d bytes, want 0", got)
	}
	// Location table is 12 bytes per subscription.
	if got := PaperNonCanonicalBytes(100, 3, 5); got != 100+3*12+5*4 {
		t.Errorf("nonCanonical(100,3,5) = %d", got)
	}
}

// TestReportEdgeCases: zero-subscription reports must not divide by zero,
// and the rendering carries every accounted column.
func TestReportEdgeCases(t *testing.T) {
	r := Report{Name: "empty"}
	if got := r.BytesPerSubscription(); got != 0 {
		t.Errorf("0 subs: BytesPerSubscription = %v, want 0", got)
	}
	if got := r.Total(); got != 0 {
		t.Errorf("empty total = %d", got)
	}
	r = Report{Name: "x", Subscriptions: 4, EngineBytes: 100, RegistryBytes: 10, IndexBytes: 5}
	if got := r.BytesPerSubscription(); got != 25 {
		t.Errorf("BytesPerSubscription = %v, want 25", got)
	}
	s := r.String()
	for _, frag := range []string{"x", "subs=4", "100B", "10B", "5B", "115B"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report row %q missing %q", s, frag)
		}
	}
}
