// Package memmodel provides memory accounting and the page-swap cost model
// used to reproduce the scalability experiments.
//
// The paper's testbed had 512 MB of physical memory; the sharp bends in
// Fig. 3 mark the subscription counts at which an algorithm's structures
// exceed physical memory and the operating system starts page swapping
// (§4.1). This reproduction runs on a simulator substrate rather than a
// 2005 machine, so the bends are reproduced analytically: engines report
// their resident structure sizes, and SwapModel converts "resident bytes
// over budget" into a matching-time multiplier.
//
// Model: once resident size R exceeds budget B, a fraction f = (R-B)/R of
// the engine's pages are swapped out. Assuming matching touches its
// structures roughly uniformly, the expected slowdown is
//
//	multiplier = 1 + f·(Penalty-1)
//
// where Penalty is the average cost ratio of a swapped access to a resident
// one. This first-order model ignores locality and thrashing dynamics; it
// reproduces what the paper's claims need — where each curve bends and in
// which order the three algorithms hit the wall (experiments M1, M2).
package memmodel

import (
	"fmt"
	"runtime"
	"time"
)

// PaperBudgetBytes is the paper's machine memory (Table 1: 512 MB).
const PaperBudgetBytes = 512 << 20

// DefaultPenalty is the default swapped-access cost ratio. Sequentially
// scanned vectors amortise disk latency over a page, so the effective
// per-access penalty is far below a raw disk/RAM latency ratio; 50× yields
// bend slopes comparable to Fig. 3.
const DefaultPenalty = 50.0

// SwapModel converts resident sizes into matching-time multipliers.
type SwapModel struct {
	// BudgetBytes is the physical memory available to filtering structures.
	BudgetBytes int
	// Penalty is the mean slowdown of an access that hits a swapped page.
	Penalty float64
}

// PaperModel returns the 512 MB / default-penalty model.
func PaperModel() SwapModel {
	return SwapModel{BudgetBytes: PaperBudgetBytes, Penalty: DefaultPenalty}
}

// Multiplier returns the matching-time factor for an engine whose filtering
// structures occupy residentBytes.
func (m SwapModel) Multiplier(residentBytes int) float64 {
	if m.BudgetBytes <= 0 || residentBytes <= m.BudgetBytes {
		return 1
	}
	f := float64(residentBytes-m.BudgetBytes) / float64(residentBytes)
	p := m.Penalty
	if p < 1 {
		p = 1
	}
	return 1 + f*(p-1)
}

// Apply scales a measured duration by the swap multiplier.
func (m SwapModel) Apply(d time.Duration, residentBytes int) time.Duration {
	return time.Duration(float64(d) * m.Multiplier(residentBytes))
}

// Report is a per-engine memory breakdown. Registry and index are shared
// phase-one structures; EngineBytes are the engine-owned phase-two
// structures that differ between algorithms.
type Report struct {
	Name          string
	Subscriptions int
	Units         int
	EngineBytes   int
	RegistryBytes int
	IndexBytes    int
}

// Total returns all accounted bytes.
func (r Report) Total() int {
	return r.EngineBytes + r.RegistryBytes + r.IndexBytes
}

// BytesPerSubscription returns the marginal engine memory per original
// subscription.
func (r Report) BytesPerSubscription() float64 {
	if r.Subscriptions == 0 {
		return 0
	}
	return float64(r.EngineBytes) / float64(r.Subscriptions)
}

// String renders the report as one table row.
func (r Report) String() string {
	return fmt.Sprintf("%-18s subs=%-10d units=%-10d engine=%s registry=%s index=%s total=%s",
		r.Name, r.Subscriptions, r.Units,
		FormatBytes(r.EngineBytes), FormatBytes(r.RegistryBytes),
		FormatBytes(r.IndexBytes), FormatBytes(r.Total()))
}

// MaxSubscriptions extrapolates how many original subscriptions fit into
// budget, given fixed overhead and marginal bytes per subscription. This is
// the capacity comparison behind the paper's "more than 4 times as many
// subscriptions" claim (§4.1).
func MaxSubscriptions(budgetBytes, fixedBytes int, perSub float64) int {
	if perSub <= 0 {
		return 0
	}
	rem := budgetBytes - fixedBytes
	if rem <= 0 {
		return 0
	}
	return int(float64(rem) / perSub)
}

// FormatBytes renders a byte count with a binary-prefix unit.
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// HeapInuseBytes measures the process's live heap after a garbage
// collection pass. It is the measurement-side complement of the analytic
// models above: chaos and stress experiments compare it before and during a
// fault to assert that a stalled consumer pins a bounded amount of memory.
// Forcing a GC makes the reading reflect live data, not floating garbage,
// at the cost of a pause — this is for experiments, not hot paths.
func HeapInuseBytes() int {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int(ms.HeapInuse)
}

// --- analytic paper models (§3.3) ---

// PaperCountingBytes computes the paper's memory model for the
// memory-friendly counting implementation: one byte each in the hit vector
// and subscription-predicate count vector per (transformed) subscription, a
// predicate bit vector, and the predicate-subscription association table
// with array storage (4-byte subscription ids).
func PaperCountingBytes(units, preds, assocEntries int) int {
	return units /*hit*/ + units /*count*/ + (preds+7)/8 + assocEntries*4
}

// PaperNonCanonicalBytes computes the paper's memory model for the
// non-canonical engine: encoded subscription trees, the subscription
// location table (id → loc, 4+8 bytes), and the association table.
func PaperNonCanonicalBytes(treeBytes, subs, assocEntries int) int {
	return treeBytes + subs*(4+8) + assocEntries*4
}
