package memmodel

import (
	"strings"
	"testing"
	"time"
)

func TestMultiplierBelowBudget(t *testing.T) {
	m := SwapModel{BudgetBytes: 1000, Penalty: 50}
	if got := m.Multiplier(500); got != 1 {
		t.Errorf("Multiplier(500) = %v, want 1", got)
	}
	if got := m.Multiplier(1000); got != 1 {
		t.Errorf("Multiplier(at budget) = %v, want 1", got)
	}
}

func TestMultiplierAboveBudget(t *testing.T) {
	m := SwapModel{BudgetBytes: 1000, Penalty: 51}
	// Half swapped: 1 + 0.5*50 = 26.
	if got := m.Multiplier(2000); got != 26 {
		t.Errorf("Multiplier(2000) = %v, want 26", got)
	}
	// Monotonically increasing in resident size.
	prev := 0.0
	for r := 1000; r <= 10000; r += 500 {
		mult := m.Multiplier(r)
		if mult < prev {
			t.Fatalf("Multiplier not monotone at %d: %v < %v", r, mult, prev)
		}
		prev = mult
	}
	// Asymptotically approaches Penalty.
	if got := m.Multiplier(1 << 40); got > 51 || got < 50 {
		t.Errorf("asymptotic multiplier = %v", got)
	}
}

func TestMultiplierDegenerateModels(t *testing.T) {
	if got := (SwapModel{}).Multiplier(1 << 30); got != 1 {
		t.Errorf("zero model should never penalise, got %v", got)
	}
	m := SwapModel{BudgetBytes: 100, Penalty: 0.5} // sub-1 penalty clamps to 1
	if got := m.Multiplier(200); got != 1 {
		t.Errorf("clamped penalty multiplier = %v, want 1", got)
	}
}

func TestApply(t *testing.T) {
	m := SwapModel{BudgetBytes: 1000, Penalty: 51}
	d := m.Apply(time.Second, 2000)
	if d != 26*time.Second {
		t.Errorf("Apply = %v, want 26s", d)
	}
	if d := m.Apply(time.Second, 10); d != time.Second {
		t.Errorf("Apply below budget = %v", d)
	}
}

func TestPaperModel(t *testing.T) {
	m := PaperModel()
	if m.BudgetBytes != 512<<20 {
		t.Errorf("budget = %d", m.BudgetBytes)
	}
	if m.Multiplier(256<<20) != 1 {
		t.Error("256MiB should fit in the paper machine")
	}
	if m.Multiplier(1<<30) <= 1 {
		t.Error("1GiB should swap on the paper machine")
	}
}

func TestReport(t *testing.T) {
	r := Report{
		Name: "counting", Subscriptions: 1000, Units: 8000,
		EngineBytes: 80_000, RegistryBytes: 10_000, IndexBytes: 5_000,
	}
	if r.Total() != 95_000 {
		t.Errorf("Total = %d", r.Total())
	}
	if r.BytesPerSubscription() != 80 {
		t.Errorf("BytesPerSubscription = %v", r.BytesPerSubscription())
	}
	s := r.String()
	for _, want := range []string{"counting", "subs=1000", "units=8000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if (Report{}).BytesPerSubscription() != 0 {
		t.Error("empty report BytesPerSubscription should be 0")
	}
}

func TestMaxSubscriptions(t *testing.T) {
	// 1000 budget, 100 fixed, 9 per sub → 100 subscriptions.
	if got := MaxSubscriptions(1000, 100, 9); got != 100 {
		t.Errorf("MaxSubscriptions = %d, want 100", got)
	}
	if got := MaxSubscriptions(100, 200, 9); got != 0 {
		t.Errorf("over-budget fixed = %d, want 0", got)
	}
	if got := MaxSubscriptions(1000, 0, 0); got != 0 {
		t.Errorf("zero perSub = %d, want 0", got)
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestPaperModels(t *testing.T) {
	// Counting: units dominate. 8 units × 2 vectors + 60 preds bit vector +
	// 30 assoc entries × 4.
	got := PaperCountingBytes(8, 60, 30)
	want := 8 + 8 + 8 + 120
	if got != want {
		t.Errorf("PaperCountingBytes = %d, want %d", got, want)
	}
	got = PaperNonCanonicalBytes(530, 10, 60)
	want = 530 + 10*12 + 240
	if got != want {
		t.Errorf("PaperNonCanonicalBytes = %d, want %d", got, want)
	}
}

func TestCountingVsNonCanonicalModelRatio(t *testing.T) {
	// The M1 claim at |p|=10: counting needs ≥4× the memory per original
	// subscription. Per original subscription: counting has 32 units of 5
	// predicates (160 assoc entries); non-canonical has 1 tree (~87B at
	// paper encoding) and 10 assoc entries.
	const subs = 100_000
	counting := PaperCountingBytes(32*subs, 10*subs, 32*5*subs)
	treeBytes := 87 * subs
	noncanon := PaperNonCanonicalBytes(treeBytes, subs, 10*subs)
	ratio := float64(counting) / float64(noncanon)
	if ratio < 4 {
		t.Errorf("counting/non-canonical memory ratio = %.2f, want >= 4 (paper §4.1)", ratio)
	}
}
