package arch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and typechecked module package.
type Package struct {
	// ImportPath is the full import path (e.g. noncanon/internal/core).
	ImportPath string
	// Dir is the package directory on disk.
	Dir string
	// Name is the package name ("main" for commands).
	Name string
	// GoFiles are the non-test Go source files (base names).
	GoFiles []string
	// Imports are the direct non-test imports.
	Imports []string
	// Files are the parsed sources, aligned with GoFiles.
	Files []*ast.File
	// Types is the typechecked package; nil when typechecking failed.
	Types *types.Package
	// Info carries use/selection/type facts for the rule passes.
	Info *types.Info
	// TypeErrs collects typechecking errors (empty on a building tree).
	TypeErrs []error

	allows allowIndex
}

// Module is a loaded set of packages sharing one FileSet.
type Module struct {
	// Path is the module path (e.g. noncanon).
	Path string
	// Dir is the module root directory.
	Dir string
	// Packages are the loaded packages, in go list order.
	Packages []*Package
	// Fset positions every parsed file.
	Fset *token.FileSet

	byPath map[string]*Package
}

// Pkg returns the package with the given import path, or nil.
func (m *Module) Pkg(path string) *Package { return m.byPath[path] }

// listJSON mirrors the `go list -json` fields the loader consumes.
type listJSON struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Module     *struct{ Path string }
}

// Load runs `go list -json patterns...` in dir, parses every listed module
// package and typechecks them in dependency order. Standard-library
// imports are typechecked from GOROOT source (no compiled export data or
// third-party loader needed), so Load works with exactly the toolchain
// that builds the tree.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	mod := &Module{Dir: dir, Fset: token.NewFileSet(), byPath: map[string]*Package{}}
	for _, m := range metas {
		if m.Standard || m.Name == "" {
			continue
		}
		if mod.Path == "" && m.Module != nil {
			mod.Path = m.Module.Path
		}
		p := &Package{
			ImportPath: m.ImportPath,
			Dir:        m.Dir,
			Name:       m.Name,
			GoFiles:    m.GoFiles,
			Imports:    m.Imports,
		}
		mod.Packages = append(mod.Packages, p)
		mod.byPath[p.ImportPath] = p
	}
	if mod.Path == "" {
		return nil, fmt.Errorf("arch: no module packages matched %v in %s", patterns, dir)
	}

	for _, p := range mod.Packages {
		if err := p.parse(mod.Fset); err != nil {
			return nil, err
		}
	}
	mod.typecheck()
	return mod, nil
}

// goList shells out to the go tool and decodes its JSON stream.
func goList(dir string, patterns []string) ([]listJSON, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("arch: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var metas []listJSON
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listJSON
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("arch: decode go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// parse reads the package's sources with comments and builds its
// //nclint:allow line index.
func (p *Package) parse(fset *token.FileSet) error {
	p.allows = allowIndex{}
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("arch: parse %s: %v", path, err)
		}
		p.Files = append(p.Files, f)
		lines := map[int]allowDirective{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if d, ok := parseAllow(text); ok {
					d.line = fset.Position(c.Pos()).Line
					lines[d.line] = d
				}
			}
		}
		if len(lines) > 0 {
			p.allows[path] = lines
		}
	}
	return nil
}

// typecheck checks every package in dependency order over a shared source
// importer, recording errors rather than failing: a tree that builds has
// none, and the rule passes degrade gracefully on one that does not.
func (m *Module) typecheck() {
	// The source importer compiles stdlib dependencies from GOROOT source;
	// disable cgo so packages like net resolve through their pure-Go paths.
	build.Default.CgoEnabled = false
	std := importer.ForCompiler(m.Fset, "source", nil)
	imp := &moduleImporter{mod: m, std: std}

	var check func(p *Package)
	seen := map[*Package]bool{}
	check = func(p *Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, dep := range p.Imports {
			if d := m.byPath[dep]; d != nil {
				check(d)
			}
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
		}
		tp, _ := conf.Check(p.ImportPath, m.Fset, p.Files, info)
		p.Types = tp
		p.Info = info
	}
	for _, p := range m.Packages {
		check(p)
	}
}

// moduleImporter resolves module-internal imports from the loaded set and
// everything else through the stdlib source importer.
type moduleImporter struct {
	mod *Module
	std types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p := mi.mod.byPath[path]; p != nil {
		if p.Types == nil {
			return nil, fmt.Errorf("arch: import cycle or unchecked package %s", path)
		}
		return p.Types, nil
	}
	return mi.std.Import(path)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := mi.mod.byPath[path]; p != nil {
		return mi.Import(path)
	}
	if from, ok := mi.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return mi.std.Import(path)
}
