package arch

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestAPILeakFixture pins the api-leak rule against the two-package wire
// fixture: every leak shape (parameter, result, exported field, method
// signature, package var) fires, and wire-as-representation stays legal.
func TestAPILeakFixture(t *testing.T) {
	mod := loadWireFixture(t)
	findings := CheckAPILeaks(mod, Policy{})

	var got []string
	for _, f := range findings {
		if f.Rule != "api-leak" {
			t.Errorf("unexpected rule %q in %v", f.Rule, f)
		}
		if !strings.Contains(f.Msg, "wire.Frame") {
			t.Errorf("finding should name the leaked type: %v", f)
		}
		// Msg opens with "exported <kind> <name> mentions ..."
		fields := strings.Fields(f.Msg)
		if len(fields) < 3 {
			t.Fatalf("unparseable message %q", f.Msg)
		}
		got = append(got, fields[1]+" "+fields[2])
	}
	sort.Strings(got)

	want := []string{"func Decode", "func Frames", "type Buffer", "type Queue", "var Last"}
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("api-leak findings mismatch:\n got  %v\n want %v", got, want)
	}
}

// TestAPILeakWireInAPIExemption: the same leaky package is legal once the
// policy marks it WireInAPI (as the real transports are).
func TestAPILeakWireInAPIExemption(t *testing.T) {
	mod := loadWireFixture(t)
	policy := Policy{Packages: map[string]PackageRule{
		"internal/engine": {Layer: "transport", WireInAPI: true},
	}}
	if findings := CheckAPILeaks(mod, policy); len(findings) != 0 {
		t.Errorf("WireInAPI package still reported: %v", findings)
	}
}

// TestAPILeakSkipsWirePackageItself: the wire package may of course
// export its own types.
func TestAPILeakSkipsWirePackageItself(t *testing.T) {
	mod := loadWireFixture(t)
	for _, f := range CheckAPILeaks(mod, Policy{}) {
		if f.Pkg == "example.com/m/internal/wire" {
			t.Errorf("wire package flagged for exporting wire types: %v", f)
		}
	}
}
