package arch

// This file IS the architecture: the layering DAG of the module, checked
// in as data. CheckLayering verifies the real import graph against it
// exactly — an import absent from Allow is a violation naming the
// forbidden edge, and an Allow entry no longer imported is a stale
// allowance that must be pruned. Adding a package or an edge therefore
// always means editing this table in the same change, which is the point:
// the layering is reviewed where it changes.
//
// Layers, bottom to top (labels are documentation; the edges are the law):
//
//	kernel     value, intern, index/btree, memmodel, substore
//	model      event, predicate
//	expr       boolexpr, subtree, matcher, cover, sublang, workload
//	engine     core, counting, index, shard
//	infra      obs (metrics/tracing; importable by service and above)
//	service    broker, router, overlay
//	transport  wire, netbroker, netoverlay
//	facade     . (package noncanon)
//	app        cmd/*, examples/*, bench
//	tools      arch, cmd/nclint
//
// Kernel through engine packages import stdlib and lower layers only, and
// additionally may not touch net, os, syscall, unsafe or reflect — they
// must stay pure compute so the matching core remains embeddable anywhere
// (the enabling property for the confidentiality- and semantics-aware
// extensions on the roadmap). internal/router is the transport-agnostic
// routing state machine: it may not import net, internal/wire or
// internal/netoverlay, so the same router keeps serving the in-process
// simulation and the TCP federation.
//
// Exposition rule: only cmd/* and internal/obs may import net/http. The
// service and transport layers record into obs instruments; whether those
// numbers are served over HTTP is a deployment decision made in main, so
// an HTTP server can never become a hidden dependency of the data path
// (enforced below via ForbidStd "net/http" on every package that
// legitimately imports net, and the broader "net" ban everywhere else).

// PackageRule pins one package's outgoing edges.
type PackageRule struct {
	// Layer is the documentation label of the package's layer.
	Layer string
	// Allow lists the module-relative import paths this package may
	// import. Anything else inside the module is a forbidden edge.
	Allow []string
	// Deny maps module-relative import paths to the reason the edge is
	// forbidden, for edges worth a named, specific error message. Deny is
	// redundant with absence from Allow but turns "undeclared edge" into
	// an explanation.
	Deny map[string]string
	// ForbidStd lists standard-library paths (exact or prefix) this
	// package may not import.
	ForbidStd []string
	// WireInAPI permits internal/wire types in the exported API. Only the
	// wire package itself and the two TCP transports carry frames in their
	// signatures; everyone else must keep wire types out of their API.
	WireInAPI bool
}

// Policy is a module's complete layering declaration.
type Policy struct {
	// Packages maps module-relative package paths ("." is the module
	// root) to their rule. Every package in the module must appear here.
	Packages map[string]PackageRule
}

// pureStd are the stdlib imports denied to pure-compute layers.
var pureStd = []string{"net", "os", "syscall", "unsafe", "reflect"}

// DefaultPolicy is the layering DAG of this module.
var DefaultPolicy = Policy{Packages: map[string]PackageRule{
	// --- kernel ---
	"internal/value": {Layer: "kernel", ForbidStd: pureStd},
	// The symbol table is process-global leaf state: nothing below it, and
	// it must stay pure compute like the rest of the kernel so interned
	// matching remains embeddable anywhere.
	"internal/intern":       {Layer: "kernel", ForbidStd: pureStd},
	"internal/index/btree": {Layer: "kernel", ForbidStd: pureStd},
	"internal/memmodel":    {Layer: "kernel", ForbidStd: pureStd},
	"internal/substore":    {Layer: "kernel"}, // file-backed store: os allowed

	// --- model ---
	"internal/event": {Layer: "model", ForbidStd: pureStd,
		Allow: []string{"internal/intern", "internal/value"}},
	"internal/predicate": {Layer: "model", ForbidStd: pureStd,
		Allow: []string{"internal/event", "internal/intern", "internal/value"}},

	// --- expr ---
	"internal/boolexpr": {Layer: "expr", ForbidStd: pureStd,
		Allow: []string{"internal/event", "internal/predicate"}},
	"internal/subtree": {Layer: "expr", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/predicate"}},
	"internal/matcher": {Layer: "expr", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/event", "internal/predicate"}},
	"internal/cover": {Layer: "expr", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/predicate", "internal/value"}},
	// The covering poset is pure subsumption bookkeeping over expressions:
	// it must stay compute-only (no net/os) and must not know about
	// engines or events — the broker maps its frontier onto engine entries.
	"internal/cover/dag": {Layer: "expr", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/cover"}},
	"internal/sublang": {Layer: "expr", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/predicate", "internal/value"}},
	"internal/workload": {Layer: "expr", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/event", "internal/predicate"}},

	// --- engine ---
	"internal/index": {Layer: "engine", ForbidStd: pureStd,
		Allow: []string{"internal/event", "internal/index/btree", "internal/intern", "internal/predicate", "internal/value"}},
	"internal/core": {Layer: "engine", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/event", "internal/index", "internal/matcher", "internal/predicate", "internal/subtree"}},
	"internal/counting": {Layer: "engine", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/event", "internal/index", "internal/matcher", "internal/predicate"}},
	"internal/shard": {Layer: "engine", ForbidStd: pureStd,
		Allow: []string{"internal/boolexpr", "internal/core", "internal/event", "internal/index", "internal/matcher", "internal/predicate"}},

	// --- infra ---
	// The observability subsystem is the one non-command package allowed
	// net/http (it IS the exposition endpoint); it depends on nothing in
	// the module so any layer above engine may record into it. Engine and
	// below stay obs-free: the broker observes around the engine.
	"internal/obs": {Layer: "infra"},

	// --- service ---
	"internal/broker": {Layer: "service", ForbidStd: []string{"net"},
		Allow: []string{"internal/boolexpr", "internal/core", "internal/cover", "internal/cover/dag", "internal/event", "internal/index", "internal/matcher", "internal/obs", "internal/predicate", "internal/shard", "internal/subtree"}},
	"internal/router": {Layer: "service", ForbidStd: []string{"net"},
		Allow: []string{"internal/boolexpr", "internal/core", "internal/cover", "internal/event", "internal/matcher", "internal/obs"},
		Deny: map[string]string{
			"internal/wire":       "router is transport-agnostic; frame encoding belongs to the transports",
			"internal/netoverlay": "router is transport-agnostic; it must keep serving the in-process overlay too",
		}},
	"internal/overlay": {Layer: "service", ForbidStd: []string{"net"},
		Allow: []string{"internal/boolexpr", "internal/core", "internal/event", "internal/index", "internal/obs", "internal/predicate", "internal/router", "internal/subtree"}},

	// --- transport (may dial/listen, but exposition stays in cmd/*) ---
	"internal/wire": {Layer: "transport", WireInAPI: true, ForbidStd: []string{"net/http"},
		Allow: []string{"internal/event", "internal/intern", "internal/value"}},
	"internal/netbroker": {Layer: "transport", WireInAPI: true, ForbidStd: []string{"net/http"},
		Allow: []string{"internal/broker", "internal/event", "internal/sublang", "internal/wire"}},
	"internal/netoverlay": {Layer: "transport", WireInAPI: true, ForbidStd: []string{"net/http"},
		Allow: []string{"internal/boolexpr", "internal/core", "internal/event", "internal/index", "internal/obs", "internal/predicate", "internal/router", "internal/sublang", "internal/subtree", "internal/wire"}},

	// --- facade ---
	".": {Layer: "facade", ForbidStd: []string{"net"},
		Allow: []string{"internal/boolexpr", "internal/broker", "internal/core", "internal/counting", "internal/event", "internal/index", "internal/matcher", "internal/obs", "internal/predicate", "internal/sublang", "internal/subtree"}},

	// --- app: commands reach internals only through their declared
	// service entry points (or the facade); engine guts are off limits ---
	"internal/bench": {Layer: "app",
		Allow: []string{"internal/boolexpr", "internal/broker", "internal/chaos", "internal/core", "internal/counting", "internal/event", "internal/index", "internal/matcher", "internal/memmodel", "internal/netbroker", "internal/netoverlay", "internal/obs", "internal/overlay", "internal/predicate", "internal/shard", "internal/subtree", "internal/wire", "internal/workload"}},
	// Fault-injection plumbing (stallable TCP relay + delivery oracle) for
	// chaos experiments and transport tests; pure stdlib, no module deps.
	"internal/chaos": {Layer: "app"},
	"cmd/ncbroker": {Layer: "app",
		Allow: []string{"internal/broker", "internal/netbroker", "internal/obs"},
		Deny: map[string]string{
			"internal/core":    "commands configure engines through broker.EngineConfig, not core.Options",
			"internal/subtree": "encoding selection is broker configuration, not command business",
		}},
	"cmd/ncoverlay": {Layer: "app",
		Allow: []string{"internal/event", "internal/netoverlay", "internal/obs", "internal/overlay", "internal/workload"}},
	"cmd/ncpub": {Layer: "app",
		Allow: []string{"internal/event", "internal/netbroker"}},
	"cmd/ncsub": {Layer: "app",
		Allow: []string{"internal/netbroker"}},
	"cmd/ncbench": {Layer: "app",
		Allow: []string{"internal/bench", "internal/memmodel"}},
	"examples/quickstart":  {Layer: "app", Allow: []string{"."}},
	"examples/auction":     {Layer: "app", Allow: []string{"."}},
	"examples/stockmon":    {Layer: "app", Allow: []string{"."}},
	"examples/overlaydemo": {Layer: "app", Allow: []string{"internal/event", "internal/overlay", "internal/sublang"}},
	"internal/integration": {Layer: "app"}, // test-only package

	// --- tools ---
	"internal/arch": {Layer: "tools"},
	"cmd/nclint":    {Layer: "tools", Allow: []string{"internal/arch"}},
}}
