package arch

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// CheckLayering verifies the module's import graph against the declared
// layering DAG, exactly: every module-internal import must be an allowed
// edge, denied edges report their reason, restricted stdlib groups are
// enforced, third-party dependencies are rejected wholesale (this module
// is stdlib-only by construction), undeclared packages must be added to
// the policy, and allowances no longer used must be pruned. It expects a
// whole-module load (`./...`).
func CheckLayering(mod *Module, policy Policy) []Finding {
	var out []Finding
	present := map[string]bool{}

	for _, p := range mod.Packages {
		rel := mod.rel(p.ImportPath)
		present[rel] = true
		rule, declared := policy.Packages[rel]
		if !declared {
			out = append(out, Finding{
				Rule: "layering", Pkg: p.ImportPath,
				Msg: fmt.Sprintf("package %s is not declared in the layering policy; add it to internal/arch/policy.go", rel),
			})
			continue
		}
		allowed := map[string]bool{}
		for _, a := range rule.Allow {
			allowed[a] = false // value becomes true once the edge is seen
		}
		for _, imp := range p.Imports {
			pos := mod.importPos(p, imp)
			switch {
			case mod.internal(imp):
				relImp := mod.rel(imp)
				if reason, denied := rule.Deny[relImp]; denied {
					out = append(out, Finding{
						Pos: pos, Rule: "layering", Pkg: p.ImportPath,
						Msg: fmt.Sprintf("forbidden edge %s -> %s: %s", rel, relImp, reason),
					})
					continue
				}
				if _, ok := allowed[relImp]; !ok {
					out = append(out, Finding{
						Pos: pos, Rule: "layering", Pkg: p.ImportPath,
						Msg: fmt.Sprintf("forbidden edge %s -> %s: not in the layering DAG (internal/arch/policy.go)", rel, relImp),
					})
					continue
				}
				allowed[relImp] = true
			case thirdParty(imp):
				out = append(out, Finding{
					Pos: pos, Rule: "layering", Pkg: p.ImportPath,
					Msg: fmt.Sprintf("third-party dependency %s: this module is stdlib-only", imp),
				})
			default: // stdlib
				for _, f := range rule.ForbidStd {
					if imp == f || strings.HasPrefix(imp, f+"/") {
						out = append(out, Finding{
							Pos: pos, Rule: "layering", Pkg: p.ImportPath,
							Msg: fmt.Sprintf("forbidden stdlib import %s in %s-layer package %s", imp, rule.Layer, rel),
						})
						break
					}
				}
			}
		}
		// A declared edge nobody uses is debt: the table must stay exact.
		var stale []string
		for a, used := range allowed {
			if !used {
				stale = append(stale, a)
			}
		}
		sort.Strings(stale)
		for _, a := range stale {
			out = append(out, Finding{
				Rule: "layering", Pkg: p.ImportPath,
				Msg: fmt.Sprintf("stale allowance %s -> %s: edge no longer exists, prune it from internal/arch/policy.go", rel, a),
			})
		}
	}

	// Policy entries for packages that no longer exist are stale too.
	var gone []string
	for rel := range policy.Packages {
		if !present[rel] {
			gone = append(gone, rel)
		}
	}
	sort.Strings(gone)
	for _, rel := range gone {
		out = append(out, Finding{
			Rule: "layering", Pkg: mod.Path,
			Msg: fmt.Sprintf("policy declares %s but no such package exists; prune it from internal/arch/policy.go", rel),
		})
	}
	return out
}

// rel maps a full import path to its module-relative form ("." for the
// module root).
func (m *Module) rel(importPath string) string {
	if importPath == m.Path {
		return "."
	}
	return strings.TrimPrefix(importPath, m.Path+"/")
}

// internal reports whether the import path belongs to this module.
func (m *Module) internal(importPath string) bool {
	return importPath == m.Path || strings.HasPrefix(importPath, m.Path+"/")
}

// thirdParty reports whether an import path names an external dependency:
// by convention stdlib paths have no dot in their first segment.
func thirdParty(importPath string) bool {
	first, _, _ := strings.Cut(importPath, "/")
	return strings.Contains(first, ".")
}

// importPos locates the import declaration of path within the package.
func (m *Module) importPos(p *Package, path string) token.Position {
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			if unq, err := strconv.Unquote(spec.Path.Value); err == nil && unq == path {
				return m.Fset.Position(spec.Pos())
			}
		}
	}
	return token.Position{}
}
