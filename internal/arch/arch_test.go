package arch

import (
	"go/token"
	"strings"
	"testing"
)

// TestRepositoryIsClean loads and typechecks the whole real module and
// runs every rule family over it: the tree this test ships in must be
// lint-clean, so CI catches a new violation in the same change that
// introduces it. This is the test behind `nclint ./...` exiting 0.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module source typecheck is slow; run without -short")
	}
	mod, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "noncanon" {
		t.Fatalf("loaded module %q, want noncanon", mod.Path)
	}
	for _, p := range mod.Packages {
		for _, terr := range p.TypeErrs {
			t.Errorf("typecheck %s: %v", p.ImportPath, terr)
		}
	}
	if t.Failed() {
		t.Fatal("tree does not typecheck; rule results would be unreliable")
	}
	for _, f := range Check(mod) {
		t.Errorf("finding on the real tree: %s", f)
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text    string
		ok      bool
		rule    string
		justify string
	}{
		{"nclint:allow lock-blocking -- handshake reply is buffered", true, "lock-blocking", "handshake reply is buffered"},
		{"nclint:allow hotpath", true, "hotpath", ""},
		{"  nclint:allow hotpath --   spaced   ", true, "hotpath", "spaced"},
		{"nclint:hotpath", false, "", ""},
		{"just a comment", false, "", ""},
	}
	for _, c := range cases {
		d, ok := parseAllow(c.text)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if ok && (d.rule != c.rule || d.justification != c.justify) {
			t.Errorf("parseAllow(%q) = (%q, %q), want (%q, %q)",
				c.text, d.rule, d.justification, c.rule, c.justify)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "layering", Pkg: "noncanon/internal/x", Msg: "boom"}
	if got := f.String(); got != "noncanon/internal/x: layering: boom" {
		t.Errorf("package-level finding renders %q", got)
	}
	f.Pos = token.Position{Filename: "x.go", Line: 3, Column: 2}
	if got := f.String(); !strings.HasPrefix(got, "x.go:3:2: layering:") {
		t.Errorf("positioned finding renders %q", got)
	}
}

func TestSortFindings(t *testing.T) {
	fs := []Finding{
		{Pkg: "b", Pos: token.Position{Filename: "f.go", Line: 9}},
		{Pkg: "a", Pos: token.Position{Filename: "g.go", Line: 1}},
		{Pkg: "a", Pos: token.Position{Filename: "f.go", Line: 5}},
		{Pkg: "a", Pos: token.Position{Filename: "f.go", Line: 2}},
	}
	SortFindings(fs)
	wantOrder := []struct {
		pkg  string
		file string
		line int
	}{{"a", "f.go", 2}, {"a", "f.go", 5}, {"a", "g.go", 1}, {"b", "f.go", 9}}
	for i, w := range wantOrder {
		if fs[i].Pkg != w.pkg || fs[i].Pos.Filename != w.file || fs[i].Pos.Line != w.line {
			t.Fatalf("after sort, index %d = %+v, want %+v", i, fs[i], w)
		}
	}
}

// TestAllowIndexAdjacentLineOnly: a directive two lines above the finding
// must not excuse it.
func TestAllowIndexAdjacentLineOnly(t *testing.T) {
	ai := allowIndex{"f.go": {10: {rule: "hotpath", justification: "why", line: 10}}}
	if ok, _ := ai.allowed("p", "hotpath", token.Position{Filename: "f.go", Line: 11}); !ok {
		t.Error("directive on the preceding line must excuse the finding")
	}
	if ok, _ := ai.allowed("p", "hotpath", token.Position{Filename: "f.go", Line: 10}); !ok {
		t.Error("directive on the same line must excuse the finding")
	}
	if ok, _ := ai.allowed("p", "hotpath", token.Position{Filename: "f.go", Line: 12}); ok {
		t.Error("directive two lines above must not excuse the finding")
	}
	if ok, _ := ai.allowed("p", "lock-blocking", token.Position{Filename: "f.go", Line: 11}); ok {
		t.Error("directive for another rule must not excuse the finding")
	}
}
