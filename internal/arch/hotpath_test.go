package arch

import (
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestHotPathFixture pins the hotpath rule against the checked-in
// violation package: each allocating construct fires exactly once, the
// presized/caller-owned/unannotated shapes stay silent, and the finding
// set is compared whole.
func TestHotPathFixture(t *testing.T) {
	mod, p := loadFixture(t, "hotviol")
	got := findingLines(CheckHotPaths(mod))

	want := wantLines(t, p, map[string][]string{
		"hotpath": {
			"fmt call on the hot path",
			"string += in a loop",
			"string + in a loop",
			"map literal allocates",
			"make(map) on the hot path",
			"map iteration on the hot path",
			"append to a bare var in a loop",
			"append to a literal-declared slice in a loop",
			"append to a capacity-less make in a loop",
			"fmt call with an unjustified allow directive",
		},
	})
	directiveLine := fixtureLine(t, p, "fmt call with an unjustified allow directive") - 1
	want = append(want, "directive@"+strconv.Itoa(directiveLine))
	sort.Strings(want)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("hotpath findings mismatch:\n got  %v\n want %v", got, want)
	}
}

// TestHotPathMessages checks findings name the construct and the function.
func TestHotPathMessages(t *testing.T) {
	mod, _ := loadFixture(t, "hotviol")
	byFrag := map[string]bool{}
	for _, f := range CheckHotPaths(mod) {
		byFrag[f.Msg] = true
	}
	for _, frag := range []string{
		"fmt.Sprintf allocates in hot-path function formats",
		"string concatenation in a loop allocates in hot-path function concatAssign",
		"map literal allocates in hot-path function mapLiteral",
		"make(map) allocates in hot-path function makesMap",
		"map iteration is unordered and cache-hostile in hot-path function rangesMap",
		"append grows out without a capacity hint in a loop in hot-path function growsVar",
	} {
		found := false
		for msg := range byFrag {
			if strings.Contains(msg, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no hotpath finding with message %q; got %v", frag, byFrag)
		}
	}
}
